package repro

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the four operations. Run everything with
//
//	go test -bench=. -benchmem
//
// and regenerate the full formatted tables with cmd/bench.

import (
	"fmt"
	"testing"

	"repro/internal/algos"
	"repro/internal/bsp"
	"repro/internal/datalog"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/gas"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/value"
	"repro/internal/withplus"
)

// benchNodes keeps each bench iteration in the millisecond range; scale up
// via cmd/bench for the full experiment.
const benchNodes = 400

func benchGraph(code string) *graph.Graph {
	d, err := dataset.ByCode(code)
	if err != nil {
		panic(err)
	}
	return d.Generate(benchNodes, 1)
}

// BenchmarkTable1Features covers Table 1 (feature-matrix construction).
func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := exp.Table1(); len(t.Rows) != 21 {
			b.Fatal("table 1 shape")
		}
	}
}

// BenchmarkUnionByUpdate covers Tables 4 and 5: the four union-by-update
// implementations under PageRank on the Web Google stand-in.
func BenchmarkUnionByUpdate(b *testing.B) {
	g := benchGraph("WG")
	for _, impl := range []ra.UBUImpl{ra.UBUFullOuter, ra.UBUMerge, ra.UBUUpdateFrom, ra.UBUReplace} {
		b.Run(impl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.OracleLike())
				if _, err := algos.RunPageRank(e, g, algos.Params{Iters: 15, UBU: impl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAntiJoin covers Tables 6 and 7: the three anti-join
// implementations under TopoSort.
func BenchmarkAntiJoin(b *testing.B) {
	g := graph.GenerateDAG(benchNodes, benchNodes*10, 3)
	for _, impl := range []ra.AntiJoinImpl{ra.AntiNotExists, ra.AntiLeftOuter, ra.AntiNotIn} {
		b.Run(impl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.OracleLike())
				if _, err := algos.RunTopoSort(e, g, algos.Params{Anti: impl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphAlgos covers Figs. 7 and 8: each benchmarked algorithm ×
// each profile on one undirected (YT) and one directed (WG) stand-in.
func BenchmarkGraphAlgos(b *testing.B) {
	for _, code := range []string{"YT", "WG"} {
		g := benchGraph(code)
		d, _ := dataset.ByCode(code)
		for _, a := range algos.Benchmarked() {
			if a.DirectedOnly && !d.Directed {
				continue
			}
			for _, prof := range engine.Profiles() {
				b.Run(fmt.Sprintf("%s/%s/%s", code, a.Code, prof.Name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e := engine.New(prof)
						if _, err := a.Run(e, g, algos.Params{Iters: 15, Seed: 1}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkIndexing covers Exp-A / Fig. 10: PageRank on the
// PostgreSQL-like profile with and without temp-table indexes.
func BenchmarkIndexing(b *testing.B) {
	g := benchGraph("WG")
	for _, withIdx := range []bool{false, true} {
		name := "noindex"
		if withIdx {
			name = "index"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.PostgresLike(withIdx))
				if _, err := algos.RunPageRank(e, g, algos.Params{Iters: 15}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVsGraphSystems covers Exp-B / Fig. 11: PageRank on the RDBMS
// path versus the PowerGraph-like, SociaLite-like, and Giraph-like
// engines.
func BenchmarkVsGraphSystems(b *testing.B) {
	g := benchGraph("WV")
	b.Run("rdbms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			if _, err := algos.RunPageRank(e, g, algos.Params{Iters: 15}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("powergraph-gas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gas.PageRank(g, 0.85, 15)
		}
	})
	b.Run("socialite-datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datalog.SocialitePageRank(g, 0.85, 15)
		}
	})
	b.Run("giraph-bsp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bsp.PageRank(g, 0.85, 15)
		}
	})
}

// BenchmarkWithVsWithPlus covers Exp-C / Fig. 12: plain-WITH PageRank
// (Fig. 9, partition by + distinct) versus WITH+ PageRank (Fig. 3).
func BenchmarkWithVsWithPlus(b *testing.B) {
	g := benchGraph("WG")
	b.Run("with-partitionby-distinct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.PostgresLike(true))
			if _, err := algos.RunLegacyPageRank(e, g, algos.Params{Iters: 14}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("withplus-union-by-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.PostgresLike(true))
			if _, err := algos.RunPageRank(e, g, algos.Params{Iters: 14}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCAPSP covers Exp-C / Fig. 13: depth-bounded linear TC and APSP
// by MM-join on the Wiki Vote stand-in.
func BenchmarkTCAPSP(b *testing.B) {
	// TC/APSP densify quadratically; the paper runs them on its smallest
	// dataset, and the bench uses a further-scaled Wiki Vote stand-in.
	small, _ := dataset.ByCode("WV")
	gSmall := small.Generate(benchNodes/4, 1)
	b.Run("tc-withplus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			if _, err := algos.RunTC(e, gSmall, algos.Params{Depth: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tc-with-postgres", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.PostgresLike(true))
			if _, err := algos.RunLegacyTC(e, gSmall, algos.Params{Depth: 4}, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("apsp-mmjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			if _, err := algos.RunAPSP(e, gSmall, algos.Params{Depth: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMVJoin micro-benchmarks the MV-join under the semirings the
// algorithms use (the inner loop of every iteration in Figs. 7/8).
func BenchmarkMVJoin(b *testing.B) {
	g := benchGraph("WG")
	eRel := g.EdgeRelation()
	vRel := g.NodeRelation(func(i int) float64 { return float64(i) })
	for _, sr := range []semiring.Semiring{semiring.PlusTimes(), semiring.MinPlus(), semiring.MaxTimes()} {
		b.Run(sr.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ra.MVJoin(eRel, vRel, ra.EdgeMat(), ra.NodeVec(), 0, 1, sr, ra.HashJoin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFusedMVJoin is the ablation for the iteration-aware executor:
// the materializing EquiJoin+GroupBy plan versus the fused kernel probing a
// prebuilt (cached) build-side index, serial and morsel-parallel. The fused
// rows also show what an iteration costs once the index build has been paid
// (the steady state of every iterative algorithm on the hash profiles).
func BenchmarkFusedMVJoin(b *testing.B) {
	g := benchGraph("WG")
	eRel := g.EdgeRelation()
	vRel := g.NodeRelation(func(i int) float64 { return float64(i) })
	sr := semiring.PlusTimes()
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ra.MVJoin(eRel, vRel, ra.EdgeMat(), ra.NodeVec(), 0, 1, sr, ra.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
	idx := relation.BuildHashIndex(eRel, []int{0})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("fused-workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ra.FusedMVJoin(eRel, vRel, idx, nil, ra.EdgeMat(), ra.NodeVec(), 1, sr, w, nil, nil)
			}
		})
	}
	dict := relation.BuildColumnDict(eRel, 1)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("fused-dict-workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ra.FusedMVJoin(eRel, vRel, idx, dict, ra.EdgeMat(), ra.NodeVec(), 1, sr, w, nil, nil)
			}
		})
	}
}

// BenchmarkJoinAlgorithms compares the physical joins behind the profiles
// (hash vs sort-merge vs index-merge), the mechanism driving Fig. 10.
func BenchmarkJoinAlgorithms(b *testing.B) {
	g := benchGraph("WG")
	eRel := g.EdgeRelation()
	vRel := g.NodeRelation(nil)
	eIdx := relation.BuildSortedIndex(eRel, []int{0})
	vIdx := relation.BuildSortedIndex(vRel, []int{0})
	specs := map[string]ra.EquiJoinSpec{
		"hash":        {LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin},
		"sort-merge":  {LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.SortMergeJoin},
		"index-merge": {LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.IndexMergeJoin, LeftIdx: eIdx, RightIdx: vIdx},
	}
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ra.EquiJoin(eRel, vRel, spec)
			}
		})
	}
}

// BenchmarkStorage measures the paged-versus-memory temp table gap (the
// Oracle-vs-DB2 mechanism).
func BenchmarkStorage(b *testing.B) {
	g := benchGraph("WG")
	rel := g.EdgeRelation()
	b.Run("mem-temp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			t, _ := e.CreateTemp("t", rel.Sch)
			if err := t.InsertRelation(rel); err != nil {
				b.Fatal(err)
			}
			if _, err := t.Materialize(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paged-temp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.DB2Like())
			t, _ := e.CreateTemp("t", rel.Sch)
			if err := t.InsertRelation(rel); err != nil {
				b.Fatal(err)
			}
			if _, err := t.Materialize(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWithPlusCompile measures parsing + Theorem 5.1 checking +
// compilation of a WITH+ statement (no execution).
func BenchmarkWithPlusCompile(b *testing.B) {
	// Uses value import to build the tiny catalog below.
	_ = value.Int(0)
	src := `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F)
  maxrecursion 4)
select F, T from TC`
	g := graph.New(3, true)
	g.AddEdge(0, 1, 1)
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.OracleLike())
		if _, err := e.LoadBase("E", g.EdgeRelation()); err != nil {
			b.Fatal(err)
		}
		p, err := prepareWith(e, src)
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// prepareWith wraps withplus.Prepare for the compile benchmark.
func prepareWith(e *engine.Engine, src string) (interface{ Cleanup() }, error) {
	p, err := withplus.Prepare(e, src)
	if err != nil {
		return nil, err
	}
	p.Cleanup()
	return p, nil
}

// BenchmarkParallelJoin is the ablation for the paper's future-work item
// "efficient join processing in parallel": serial hash join vs the
// partitioned probe at increasing worker counts, on a large self-join.
func BenchmarkParallelJoin(b *testing.B) {
	d, _ := dataset.ByCode("WG")
	g := d.Generate(1500, 1)
	eRel := g.EdgeRelation()
	spec := ra.EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: ra.HashJoin}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ra.EquiJoin(eRel, eRel, spec)
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ra.EquiJoinParallel(eRel, eRel, spec, w)
			}
		})
	}
}

// BenchmarkEarlySelection is the ablation for the SQL-level optimization
// the paper cites for path-oriented algorithms: reachability from one
// source via the full TC + filter versus the pushed-down selection.
func BenchmarkEarlySelection(b *testing.B) {
	g := graph.Generate(graph.GenSpec{N: 300, M: 900, Directed: true, Skew: 2.4, Seed: 5})
	b.Run("full-tc-then-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			if _, err := algos.RunTC(e, g, algos.Params{Depth: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("early-selection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.OracleLike())
			if _, err := algos.RunTCFrom(e, g, 0, algos.Params{Depth: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBufferPool sweeps the buffer-pool size on the paged profile:
// the thrashing regime is the paper's I/O-bound Orkut observation.
func BenchmarkBufferPool(b *testing.B) {
	g := benchGraph("WG")
	for _, frames := range []int{8, 64, 4096} {
		b.Run(fmt.Sprintf("frames-%d", frames), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.NewWithFrames(engine.DB2Like(), frames)
				if _, err := algos.RunPageRank(e, g, algos.Params{Iters: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
