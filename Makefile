# Convenience targets; see README.md.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# check runs the full verification gate: vet, tests, and a race-detector
# pass over the morsel-parallel executor packages.
check:
	./scripts/check.sh

bench:
	go test -bench . -benchtime 1x .
