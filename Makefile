# Convenience targets; see README.md.

.PHONY: build test check chaos soak bench

build:
	go build ./...

test:
	go test ./...

# check runs the full verification gate: vet, tests, and a race-detector
# pass over the morsel-parallel executor packages.
check:
	./scripts/check.sh

# chaos runs the resilience gate: fault-injection sweeps, crash recovery,
# and cancellation tests under -race, plus a short fuzz smoke.
chaos:
	./scripts/chaos.sh

# soak runs a time-bounded random concurrent DDL + recursion mix over one
# shared engine under -race; SOAK_MS sets the budget (default 5000).
soak:
	./scripts/soak.sh

bench:
	go test -bench . -benchtime 1x .
