package algos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

func topoSchema() schema.Schema {
	return schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "L", Type: value.KindInt},
	}
}

// RunTopoSort runs Eq. (13): level 0 is the nodes with no incoming edges;
// each round removes sorted nodes (anti-join), restricts the edges to
// unsorted sources, and sorts the nodes that lost all their in-edges.
// Nodes on or behind cycles are never sorted (their L is absent).
func RunTopoSort(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab := tbl("ts", "E"), tbl("ts", "V")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	if _, err := e.EnsureBase(vTab, func() *relation.Relation {
		return g.NodeRelation(nil)
	}); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	vt, err := e.Cat.Get(vTab)
	if err != nil {
		return nil, err
	}
	topoTab, v1Tab, e1Tab := tbl("ts", "Topo"), tbl("ts", "V1"), tbl("ts", "E1")
	if _, err := e.EnsureTemp(topoTab, topoSchema()); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(v1Tab, schema.Schema{{Name: "ID", Type: value.KindInt}}); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(e1Tab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	// Topo ← Π_{ID,0}(V ▷_{ID=E.T} E).
	roots, err := e.AntiJoin(vt, et, []int{0}, []int{1}, p.Anti)
	if err != nil {
		return nil, err
	}
	init, err := ra.Project(roots, []ra.OutCol{
		{Col: topoSchema()[0], Expr: ra.ColExpr(0)},
		{Col: topoSchema()[1], Expr: ra.ConstExpr(value.Int(0))},
	})
	if err != nil {
		return nil, err
	}
	if err := e.StoreInto(topoTab, init); err != nil {
		return nil, err
	}
	res := &Result{}
	for level := int64(1); ; level++ {
		start := time.Now()
		topoT, err := e.Cat.Get(topoTab)
		if err != nil {
			return nil, err
		}
		// V₁ ← V ▷ Topo: the unsorted nodes.
		v1Full, err := e.AntiJoin(vt, topoT, []int{0}, []int{0}, p.Anti)
		if err != nil {
			return nil, err
		}
		v1 := ra.ProjectCols(v1Full, []int{0})
		if err := e.StoreInto(v1Tab, v1); err != nil {
			return nil, err
		}
		v1T, err := e.Cat.Get(v1Tab)
		if err != nil {
			return nil, err
		}
		// E₁ ← Π_{F,T}(V₁ ⋈_{ID=E.F} E): edges out of unsorted nodes.
		j, err := e.Join(v1T, et, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		e1 := ra.ProjectCols(j, []int{1, 2, 3})
		e1.Sch = graph.EdgeSchema()
		if err := e.StoreInto(e1Tab, e1); err != nil {
			return nil, err
		}
		e1T, err := e.Cat.Get(e1Tab)
		if err != nil {
			return nil, err
		}
		// T_n ← (V₁ ▷_{ID=E₁.T} E₁) × L_n.
		tn, err := e.AntiJoin(v1T, e1T, []int{0}, []int{1}, p.Anti)
		if err != nil {
			return nil, err
		}
		if tn.Len() == 0 {
			res.trace(start, topoT.Rows())
			break
		}
		leveled, err := ra.Project(tn, []ra.OutCol{
			{Col: topoSchema()[0], Expr: ra.ColExpr(0)},
			{Col: topoSchema()[1], Expr: ra.ConstExpr(value.Int(level))},
		})
		if err != nil {
			return nil, err
		}
		// Topo ← Topo ∪ T_n.
		if err := e.AppendInto(topoTab, leveled); err != nil {
			return nil, err
		}
		cur, err := e.Rel(topoTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if int(level) > p.MaxRecursion {
			break
		}
	}
	var errR error
	res.Rel, errR = e.Rel(topoTab)
	return res, errR
}

// RunKCore iterates the paper's KC loop: keep nodes with degree > k in the
// current subgraph, restrict the edges to surviving endpoints, repeat until
// the edge set stabilizes. The result relation is V'(ID, vw=degree).
func RunKCore(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab := tbl("kc", "E")
	if err := loadEdges(e, g, eTab, true); err != nil {
		return nil, err
	}
	base, err := e.Rel(eTab)
	if err != nil {
		return nil, err
	}
	ecTab, vkTab := tbl("kc", "Ec"), tbl("kc", "Vk")
	if _, err := e.EnsureTemp(ecTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vkTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(ecTab, base); err != nil {
		return nil, err
	}
	res := &Result{}
	k := int64(p.K)
	var alive *relation.Relation
	for iter := 0; iter < p.MaxRecursion; iter++ {
		start := time.Now()
		ecT, err := e.Cat.Get(ecTab)
		if err != nil {
			return nil, err
		}
		prevEdges := ecT.Rows()
		ecRel, err := ecT.Materialize()
		if err != nil {
			return nil, err
		}
		// Degree per node (out-degree of the symmetrized edge set).
		deg, err := ra.GroupBy(ecRel, []int{0}, []ra.AggSpec{
			ra.Count(schema.Column{Name: "vw", Type: value.KindInt}, nil),
		})
		if err != nil {
			return nil, err
		}
		alive, err = ra.Select(deg, func(t relation.Tuple) (bool, error) {
			return t[1].AsInt() > k, nil
		})
		if err != nil {
			return nil, err
		}
		alive.Sch = graph.NodeSchema()
		if err := e.StoreInto(vkTab, alive); err != nil {
			return nil, err
		}
		vkT, err := e.Cat.Get(vkTab)
		if err != nil {
			return nil, err
		}
		// E' ← edges with both endpoints alive.
		j1, err := e.Join(ecT, vkT, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		e1 := ra.ProjectCols(j1, []int{0, 1, 2})
		e1.Sch = graph.EdgeSchema()
		if err := e.StoreInto(ecTab, e1); err != nil {
			return nil, err
		}
		ecT, err = e.Cat.Get(ecTab)
		if err != nil {
			return nil, err
		}
		j2, err := e.Join(ecT, vkT, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		e2 := ra.ProjectCols(j2, []int{0, 1, 2})
		e2.Sch = graph.EdgeSchema()
		if err := e.StoreInto(ecTab, e2); err != nil {
			return nil, err
		}
		res.trace(start, e2.Len())
		if e2.Len() == prevEdges {
			break
		}
	}
	res.Rel = alive
	return res, nil
}

// RunMIS runs the random-priority maximal-independent-set rounds: every
// remaining node draws a priority; strict local minima join the set; they
// and their neighbours are removed by anti-joins.
func RunMIS(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab := tbl("mis", "E")
	if err := loadEdges(e, g, eTab, true); err != nil {
		return nil, err
	}
	aliveTab, rTab, e1Tab, winTab := tbl("mis", "A"), tbl("mis", "R"), tbl("mis", "E1"), tbl("mis", "W")
	idSch := schema.Schema{{Name: "ID", Type: value.KindInt}}
	if _, err := e.EnsureTemp(aliveTab, idSch); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(rTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(e1Tab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(winTab, idSch); err != nil {
		return nil, err
	}
	allIDs := relation.New(idSch)
	for i := 0; i < g.N; i++ {
		allIDs.Append(relation.Tuple{value.Int(int64(i))})
	}
	if err := e.StoreInto(aliveTab, allIDs); err != nil {
		return nil, err
	}
	result := relation.New(idSch)
	res := &Result{}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	for iter := 0; ; iter++ {
		start := time.Now()
		aliveT, err := e.Cat.Get(aliveTab)
		if err != nil {
			return nil, err
		}
		if aliveT.Rows() == 0 {
			break
		}
		aliveRel, err := aliveT.Materialize()
		if err != nil {
			return nil, err
		}
		// R ← (ID, rand()) for remaining nodes.
		it := iter
		rRel, err := ra.Project(aliveRel, []ra.OutCol{
			{Col: graph.NodeSchema()[0], Expr: ra.ColExpr(0)},
			{Col: graph.NodeSchema()[1], Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Float(graph.Priority(p.Seed, it, int32(t[0].AsInt()))), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(rTab, rRel); err != nil {
			return nil, err
		}
		rT, err := e.Cat.Get(rTab)
		if err != nil {
			return nil, err
		}
		// E₁ ← edges with both endpoints alive.
		j1, err := e.Join(et, aliveT, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		e1 := ra.ProjectCols(j1, []int{0, 1, 2})
		e1.Sch = graph.EdgeSchema()
		if err := e.StoreInto(e1Tab, e1); err != nil {
			return nil, err
		}
		e1T, err := e.Cat.Get(e1Tab)
		if err != nil {
			return nil, err
		}
		j2, err := e.Join(e1T, aliveT, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		e2 := ra.ProjectCols(j2, []int{0, 1, 2})
		e2.Sch = graph.EdgeSchema()
		if err := e.StoreInto(e1Tab, e2); err != nil {
			return nil, err
		}
		e1T, err = e.Cat.Get(e1Tab)
		if err != nil {
			return nil, err
		}
		// Minimum neighbour priority per node: MV-join under (min, ·1).
		nmin, err := e.MVJoin(e1T, rT, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.MinTimes())
		if err != nil {
			return nil, err
		}
		// Winners: r(v) strictly below every live neighbour (or isolated).
		nIdx := relation.BuildHashIndex(nmin, []int{0})
		winners := relation.New(idSch)
		rRelM, err := rT.Materialize()
		if err != nil {
			return nil, err
		}
		for _, t := range rRelM.Tuples {
			rows := nIdx.Probe(t, []int{0})
			if len(rows) == 0 || t[1].AsFloat() < nmin.Tuples[rows[0]][1].AsFloat() {
				winners.Append(relation.Tuple{t[0]})
			}
		}
		if err := e.StoreInto(winTab, winners); err != nil {
			return nil, err
		}
		winT, err := e.Cat.Get(winTab)
		if err != nil {
			return nil, err
		}
		for _, t := range winners.Tuples {
			result.Append(t.Clone())
		}
		// Remove winners and their neighbours: two anti-joins.
		survivors, err := e.AntiJoin(aliveT, winT, []int{0}, []int{0}, p.Anti)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(aliveTab, survivors); err != nil {
			return nil, err
		}
		aliveT, err = e.Cat.Get(aliveTab)
		if err != nil {
			return nil, err
		}
		// Neighbours of winners: Π_T(E₁ ⋈_{F=ID} Winners).
		nj, err := e.Join(e1T, winT, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		neigh := ra.Distinct(ra.ProjectCols(nj, []int{1}))
		neigh.Sch = idSch
		if err := e.StoreInto(winTab, neigh); err != nil {
			return nil, err
		}
		winT, err = e.Cat.Get(winTab)
		if err != nil {
			return nil, err
		}
		survivors, err = e.AntiJoin(aliveT, winT, []int{0}, []int{0}, p.Anti)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(aliveTab, survivors); err != nil {
			return nil, err
		}
		res.trace(start, result.Len())
	}
	res.Rel = result
	return res, nil
}

func labelSchema() schema.Schema {
	return schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "lbl", Type: value.KindInt},
	}
}

// RunLP runs synchronous label propagation for p.Iters iterations: per
// node, the most frequent in-neighbour label (count aggregation, smallest
// label on ties) union-by-updates the label table.
func RunLP(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, lTab := tbl("lp", "E"), tbl("lp", "L")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(lTab, labelSchema()); err != nil {
		return nil, err
	}
	init := relation.New(labelSchema())
	for i := 0; i < g.N; i++ {
		l := int64(i)
		if g.Labels != nil {
			l = int64(g.Labels[i])
		}
		init.Append(relation.Tuple{value.Int(int64(i)), value.Int(l)})
	}
	if err := e.StoreInto(lTab, init); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	cntTab := tbl("lp", "Cnt")
	cntSch := schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "lbl", Type: value.KindInt},
		{Name: "cnt", Type: value.KindInt},
	}
	if _, err := e.EnsureTemp(cntTab, cntSch); err != nil {
		return nil, err
	}
	res := &Result{}
	for it := 0; it < p.Iters; it++ {
		start := time.Now()
		lT, err := e.Cat.Get(lTab)
		if err != nil {
			return nil, err
		}
		// (v, label-of-in-neighbour) pairs: E ⋈_{E.F=L.ID} L.
		j, err := e.Join(et, lT, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		// count per (E.T, lbl).
		cnt, err := ra.GroupBy(j, []int{1, 4}, []ra.AggSpec{
			ra.Count(cntSch[2], nil),
		})
		if err != nil {
			return nil, err
		}
		cnt.Sch = cntSch
		if err := e.StoreInto(cntTab, cnt); err != nil {
			return nil, err
		}
		// max count per node.
		mx, err := ra.GroupBy(cnt, []int{0}, []ra.AggSpec{
			ra.MaxAgg(schema.Column{Name: "mx", Type: value.KindInt}, ra.ColExpr(2)),
		})
		if err != nil {
			return nil, err
		}
		// pick the smallest label reaching the max count.
		cm := ra.EquiJoin(cnt, mx, ra.EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin})
		best, err := ra.Select(cm, func(t relation.Tuple) (bool, error) {
			return t[2].Equal(t[4]), nil
		})
		if err != nil {
			return nil, err
		}
		newL, err := ra.GroupBy(best, []int{0}, []ra.AggSpec{
			ra.MinAgg(labelSchema()[1], ra.ColExpr(1)),
		})
		if err != nil {
			return nil, err
		}
		newL.Sch = labelSchema()
		if _, err := e.UnionByUpdate(lTab, newL, []int{0}, p.UBU); err != nil {
			return nil, err
		}
		cur, err := e.Rel(lTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(lTab)
	return res, err
}

func matchSchema() schema.Schema {
	return schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "mate", Type: value.KindInt},
	}
}

// RunMNM runs the handshake maximal-node-matching: every live node points
// at its maximum-weight live neighbour (ties toward the smaller ID);
// mutual pointers pair up and leave; rounds repeat until no pair forms.
func RunMNM(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, wTab := tbl("mnm", "E"), tbl("mnm", "W")
	if err := loadEdges(e, g, eTab, true); err != nil {
		return nil, err
	}
	if _, err := e.EnsureBase(wTab, func() *relation.Relation {
		return g.NodeRelation(func(i int) float64 {
			if g.NodeW != nil {
				return g.NodeW[i]
			}
			return float64(i)
		})
	}); err != nil {
		return nil, err
	}
	aliveTab, e1Tab, chTab := tbl("mnm", "A"), tbl("mnm", "E1"), tbl("mnm", "Ch")
	idSch := schema.Schema{{Name: "ID", Type: value.KindInt}}
	if _, err := e.EnsureTemp(aliveTab, idSch); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(e1Tab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	chSch := schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
	}
	if _, err := e.EnsureTemp(chTab, chSch); err != nil {
		return nil, err
	}
	allIDs := relation.New(idSch)
	for i := 0; i < g.N; i++ {
		allIDs.Append(relation.Tuple{value.Int(int64(i))})
	}
	if err := e.StoreInto(aliveTab, allIDs); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	wT, err := e.Cat.Get(wTab)
	if err != nil {
		return nil, err
	}
	matches := relation.New(matchSchema())
	res := &Result{}
	for {
		start := time.Now()
		aliveT, err := e.Cat.Get(aliveTab)
		if err != nil {
			return nil, err
		}
		// E₁ ← live-live edges.
		j1, err := e.Join(et, aliveT, []int{0}, []int{0})
		if err != nil {
			return nil, err
		}
		e1 := ra.ProjectCols(j1, []int{0, 1, 2})
		e1.Sch = graph.EdgeSchema()
		if err := e.StoreInto(e1Tab, e1); err != nil {
			return nil, err
		}
		e1T, err := e.Cat.Get(e1Tab)
		if err != nil {
			return nil, err
		}
		j2, err := e.Join(e1T, aliveT, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		e2 := ra.ProjectCols(j2, []int{0, 1, 2})
		e2.Sch = graph.EdgeSchema()
		if err := e.StoreInto(e1Tab, e2); err != nil {
			return nil, err
		}
		e1T, err = e.Cat.Get(e1Tab)
		if err != nil {
			return nil, err
		}
		// Attach neighbour weights: E₁ ⋈_{T=W.ID} W → (F,T,ew,ID,w).
		wj, err := e.Join(e1T, wT, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		// max weight per source.
		mw, err := ra.GroupBy(wj, []int{0}, []ra.AggSpec{
			ra.MaxAgg(schema.Column{Name: "mw", Type: value.KindFloat}, ra.ColExpr(4)),
		})
		if err != nil {
			return nil, err
		}
		// choice(F) = min T among neighbours achieving the max weight.
		cmj := ra.EquiJoin(wj, mw, ra.EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin})
		top, err := ra.Select(cmj, func(t relation.Tuple) (bool, error) {
			return t[4].Equal(t[6]), nil
		})
		if err != nil {
			return nil, err
		}
		choice, err := ra.GroupBy(top, []int{0}, []ra.AggSpec{
			ra.MinAgg(chSch[1], ra.ColExpr(1)),
		})
		if err != nil {
			return nil, err
		}
		choice.Sch = chSch
		if err := e.StoreInto(chTab, choice); err != nil {
			return nil, err
		}
		chT, err := e.Cat.Get(chTab)
		if err != nil {
			return nil, err
		}
		// Mutual choices: c1 ⋈ c2 on (c1.F=c2.T ∧ c1.T=c2.F), F < T once.
		pj, err := e.Join(chT, chT, []int{0, 1}, []int{1, 0})
		if err != nil {
			return nil, err
		}
		pairs, err := ra.Select(pj, func(t relation.Tuple) (bool, error) {
			return t[0].AsInt() < t[1].AsInt(), nil
		})
		if err != nil {
			return nil, err
		}
		if pairs.Len() == 0 {
			res.trace(start, matches.Len())
			break
		}
		matched := relation.New(idSch)
		for _, t := range pairs.Tuples {
			matches.Append(relation.Tuple{t[0], t[1]})
			matches.Append(relation.Tuple{t[1], t[0]})
			matched.Append(relation.Tuple{t[0]})
			matched.Append(relation.Tuple{t[1]})
		}
		if err := e.StoreInto(chTab, padPairs(matched)); err != nil {
			return nil, err
		}
		chT, err = e.Cat.Get(chTab)
		if err != nil {
			return nil, err
		}
		survivors, err := e.AntiJoin(aliveT, chT, []int{0}, []int{0}, p.Anti)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(aliveTab, survivors); err != nil {
			return nil, err
		}
		res.trace(start, matches.Len())
	}
	res.Rel = matches
	return res, nil
}

// padPairs widens an (ID) relation to the (F,T) shape of the choice table
// so matched nodes can be anti-joined away through it.
func padPairs(ids *relation.Relation) *relation.Relation {
	out := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
	})
	for _, t := range ids.Tuples {
		out.Append(relation.Tuple{t[0], t[0]})
	}
	return out
}

// RunKS runs the paper's keyword search: each node keeps one indicator
// column per query label, ORed (max) with its out-neighbours' indicators
// for p.Depth rounds; nodes whose indicators are all 1 are the Steiner-tree
// roots. The result relation is (ID, b0..bq).
func RunKS(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	q := len(p.Query)
	eTab, kTab := tbl("ks", "E"), tbl("ks", "K")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	ksSch := schema.Schema{{Name: "ID", Type: value.KindInt}}
	for i := 0; i < q; i++ {
		ksSch = append(ksSch, schema.Column{Name: "b" + string(rune('0'+i)), Type: value.KindInt})
	}
	if _, err := e.EnsureTemp(kTab, ksSch); err != nil {
		return nil, err
	}
	init := relation.New(ksSch)
	for i := 0; i < g.N; i++ {
		t := make(relation.Tuple, q+1)
		t[0] = value.Int(int64(i))
		for qi, lbl := range p.Query {
			bit := int64(0)
			if g.Labels != nil && g.Labels[i] == lbl {
				bit = 1
			}
			t[qi+1] = value.Int(bit)
		}
		init.Append(t)
	}
	if err := e.StoreInto(kTab, init); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for it := 0; it < p.Depth; it++ {
		start := time.Now()
		kT, err := e.Cat.Get(kTab)
		if err != nil {
			return nil, err
		}
		// Collect out-neighbour indicators: E ⋈_{E.T=K.ID} K, group by E.F
		// with max per bit (pairwise OR).
		j, err := e.Join(et, kT, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		aggs := make([]ra.AggSpec, q)
		for qi := 0; qi < q; qi++ {
			aggs[qi] = ra.MaxAgg(ksSch[qi+1], ra.ColExpr(4+qi))
		}
		nb, err := ra.GroupBy(j, []int{0}, aggs)
		if err != nil {
			return nil, err
		}
		nb.Sch = ksSch
		// Merge with own indicators: max per bit over the full outer join.
		kRel, err := kT.Materialize()
		if err != nil {
			return nil, err
		}
		fo := ra.FullOuterJoin(kRel, nb, []int{0}, []int{0}, e.Gov())
		outs := []ra.OutCol{{Col: ksSch[0], Expr: func(t relation.Tuple) (value.Value, error) {
			return value.Coalesce(t[0], t[q+1]), nil
		}}}
		for qi := 1; qi <= q; qi++ {
			qi := qi
			outs = append(outs, ra.OutCol{Col: ksSch[qi], Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Max(t[qi], t[q+1+qi]), nil
			}})
		}
		merged, err := ra.Project(fo, outs)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(kTab, merged); err != nil {
			return nil, err
		}
		cur, err := e.Rel(kTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(kTab)
	return res, err
}
