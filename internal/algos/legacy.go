package algos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file implements the *plain* SQL'99 recursive WITH formulations the
// paper compares WITH+ against in Exp-C: the PostgreSQL-only PageRank of
// Fig. 9 (PARTITION BY + DISTINCT, accumulating one generation of tuples
// per iteration) and the Fig. 1 transitive closure under SQL'99
// working-table semantics.

func legacyPRSchema() schema.Schema {
	return schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "W", Type: value.KindFloat},
		{Name: "L", Type: value.KindInt},
	}
}

// RunLegacyPageRank executes Fig. 9: the recursive relation P(ID, W, L)
// accumulates a full generation of n tuples per iteration because plain
// WITH cannot update values — only PARTITION BY (keeping every joined row)
// plus DISTINCT (collapsing each group to one row per node) is allowed.
// Only the PostgreSQL-like profile supports this formulation (Table 1:
// DB2 lacks analytical functions in the recursive step; Oracle lacks
// DISTINCT). The result relation holds the L = p.Iters generation.
func RunLegacyPageRank(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	if e.Prof.Features.PartitionBy != "yes" || e.Prof.Features.Distinct != "yes" {
		return nil, &UnsupportedError{Profile: e.Prof.Name, Feature: "partition by + distinct in recursive WITH"}
	}
	eTab := tbl("lpr", "E")
	if err := loadNormalizedEdges(e, g, eTab); err != nil {
		return nil, err
	}
	accTab := tbl("lpr", "P")
	if _, err := e.EnsureTemp(accTab, legacyPRSchema()); err != nil {
		return nil, err
	}
	n := float64(g.N)
	init := relation.New(legacyPRSchema())
	for i := 0; i < g.N; i++ {
		init.Append(relation.Tuple{value.Int(int64(i)), value.Float(1 / n), value.Int(0)})
	}
	if err := e.StoreInto(accTab, init); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	working := init
	base := g.NodeRelation(func(int) float64 { return (1 - p.C) / n })
	for it := 1; it <= p.Iters; it++ {
		start := time.Now()
		// Working-table join: P ⋈ E on P.ID = E.F (the rows added last
		// iteration only, as SQL'99 prescribes).
		eRel, err := et.Materialize()
		if err != nil {
			return nil, err
		}
		joined := ra.EquiJoin(working, eRel, ra.EquiJoinSpec{
			LeftCols: []int{0}, RightCols: []int{0}, Algo: e.Prof.TempJoin,
		})
		e.CountJoin()
		// PARTITION BY E.T: every joined row is kept, annotated with the
		// partition sum — the mechanism that blows up the tuple count.
		part, err := ra.PartitionBy(joined, []int{4}, ra.Sum(
			schema.Column{Name: "s", Type: value.KindFloat},
			func(t relation.Tuple) (value.Value, error) {
				return value.Mul(t[1], t[5])
			}))
		if err != nil {
			return nil, err
		}
		level := it
		gen, err := ra.Project(part, []ra.OutCol{
			{Col: legacyPRSchema()[0], Expr: ra.ColExpr(4)},
			{Col: legacyPRSchema()[1], Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Float(p.C*t[6].AsFloat() + (1-p.C)/n), nil
			}},
			{Col: legacyPRSchema()[2], Expr: ra.ConstExpr(value.Int(int64(level)))},
		})
		if err != nil {
			return nil, err
		}
		// DISTINCT collapses each partition back to one row per node.
		gen = ra.Distinct(gen)
		// Nodes with no in-edges still need their generation row; plain
		// WITH handles this with an extra initial-style arm, modeled here
		// by completing against the base vector.
		completed, err := ra.UnionByUpdate(levelled(base, level), gen, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		if err := e.AppendInto(accTab, completed); err != nil {
			return nil, err
		}
		working = completed
		cur, err := e.Rel(accTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	acc, err := e.Rel(accTab)
	if err != nil {
		return nil, err
	}
	final, err := ra.Select(acc, func(t relation.Tuple) (bool, error) {
		return t[2].AsInt() == int64(p.Iters), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rel = ra.ProjectCols(final, []int{0, 1})
	return res, nil
}

// levelled widens a (ID, vw) vector to (ID, W, L) at the given level.
func levelled(v *relation.Relation, level int) *relation.Relation {
	out := relation.NewWithCap(legacyPRSchema(), v.Len())
	for _, t := range v.Tuples {
		out.Tuples = append(out.Tuples, relation.Tuple{t[0], t[1], value.Int(int64(level))})
	}
	return out
}

// RunLegacyTC executes Fig. 1 under SQL'99 semantics: the recursive
// reference sees the working table (last iteration's new rows); UNION
// (PostgreSQL) removes duplicates across iterations; UNION ALL (Oracle,
// DB2) cannot, so on cyclic data it only terminates via the depth bound —
// the reason the paper's Fig. 13 shows PostgreSQL only. dedup selects
// which behaviour to model.
func RunLegacyTC(e *engine.Engine, g *graph.Graph, p Params, dedup bool) (*Result, error) {
	depth := p.Depth
	p = p.Defaults(g)
	if depth > p.MaxRecursion {
		p.MaxRecursion = depth
	}
	eTab := tbl("ltc", "E")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	eRel, err := et.Materialize()
	if err != nil {
		return nil, err
	}
	pairSch := schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
	}
	pairs := ra.Distinct(ra.ProjectCols(eRel, []int{0, 1}))
	pairs.Sch = pairSch
	accTab := tbl("ltc", "TC")
	if _, err := e.EnsureTemp(accTab, pairSch); err != nil {
		return nil, err
	}
	if err := e.StoreInto(accTab, pairs); err != nil {
		return nil, err
	}
	working := pairs
	res := &Result{}
	for it := 1; depth <= 0 || it < depth; it++ {
		start := time.Now()
		joined := ra.EquiJoin(working, eRel, ra.EquiJoinSpec{
			LeftCols: []int{1}, RightCols: []int{0}, Algo: e.Prof.TempJoin,
		})
		e.CountJoin()
		next := ra.ProjectCols(joined, []int{0, 3})
		next.Sch = pairSch
		if dedup {
			acc, err := e.Rel(accTab)
			if err != nil {
				return nil, err
			}
			next = ra.Difference(ra.Distinct(next), acc)
		}
		if next.Len() == 0 {
			res.trace(start, mustLen(e, accTab))
			break
		}
		if err := e.AppendInto(accTab, next); err != nil {
			return nil, err
		}
		working = next
		res.trace(start, mustLen(e, accTab))
		if it >= p.MaxRecursion {
			break
		}
	}
	res.Rel, err = e.Rel(accTab)
	return res, err
}

func mustLen(e *engine.Engine, name string) int {
	r, err := e.Rel(name)
	if err != nil {
		return -1
	}
	return r.Len()
}

// UnsupportedError reports that an engine profile cannot express a query
// form (Table 1's ✗ cells).
type UnsupportedError struct {
	Profile string
	Feature string
}

func (e *UnsupportedError) Error() string {
	return "algos: " + e.Profile + " does not support " + e.Feature
}
