package algos

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/refimpl"
	"repro/internal/relation"
)

func testGraph(seed int64) *graph.Graph {
	return graph.Generate(graph.GenSpec{
		N: 60, M: 220, Directed: true, Skew: 2.2, Seed: seed,
		MaxNodeWeight: 20, NumLabels: 4,
	})
}

func testProfiles() []engine.Profile {
	return []engine.Profile{engine.OracleLike(), engine.DB2Like(), engine.PostgresLike(true)}
}

// vecMap converts a (ID, vw) relation into a map.
func vecMap(r *relation.Relation) map[int64]float64 {
	out := make(map[int64]float64, r.Len())
	for _, t := range r.Tuples {
		out[t[0].AsInt()] = t[1].AsFloat()
	}
	return out
}

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(Benchmarked()) != 10 {
		t.Fatalf("paper benchmarks 10 algorithms, registry heads %d", len(Benchmarked()))
	}
	codes := map[string]bool{}
	for _, a := range reg {
		if codes[a.Code] {
			t.Errorf("duplicate code %s", a.Code)
		}
		codes[a.Code] = true
		if a.Run == nil {
			t.Errorf("%s has no runner", a.Code)
		}
	}
	for _, want := range []string{"SSSP", "WCC", "PR", "HITS", "TS", "KC", "MIS", "LP", "MNM", "KS"} {
		if _, err := ByCode(want); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	if _, err := ByCode("NOPE"); err == nil {
		t.Error("unknown code should error")
	}
	// Table 2 metadata spot checks.
	pr, _ := ByCode("PR")
	if pr.Agg != "sum" || !pr.Linear {
		t.Error("PR row of Table 2 wrong")
	}
	hits, _ := ByCode("HITS")
	if !hits.Nonlinear {
		t.Error("HITS needs nonlinear recursion")
	}
	ts, _ := ByCode("TS")
	if !ts.DirectedOnly || ts.Agg != "-" {
		t.Error("TS metadata wrong")
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := testGraph(1)
	want := refimpl.BFS(g, 0)
	for _, prof := range testProfiles() {
		res, err := RunBFS(engine.New(prof), g, Params{Source: 0})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := vecMap(res.Rel)
		if len(got) != g.N {
			t.Fatalf("%s: vector has %d entries", prof.Name, len(got))
		}
		for v, w := range want {
			if got[int64(v)] != w {
				t.Fatalf("%s: BFS[%d]=%v, want %v", prof.Name, v, got[int64(v)], w)
			}
		}
	}
}

func TestWCCMatchesReference(t *testing.T) {
	g := testGraph(2)
	want := refimpl.WCC(g)
	for _, prof := range testProfiles() {
		res, err := RunWCC(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := vecMap(res.Rel)
		for v, lbl := range want {
			if int64(got[int64(v)]) != lbl {
				t.Fatalf("%s: WCC[%d]=%v, want %d", prof.Name, v, got[int64(v)], lbl)
			}
		}
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g := testGraph(3)
	// Vary the edge weights so min-plus is non-trivial.
	for i := range g.Edges {
		g.Edges[i].W = float64(1 + (i*7)%5)
	}
	want := refimpl.BellmanFord(g, 0)
	for _, prof := range testProfiles() {
		res, err := RunSSSP(engine.New(prof), g, Params{Source: 0})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := vecMap(res.Rel)
		for v, d := range want {
			gv := got[int64(v)]
			if gv != d && !(math.IsInf(gv, 1) && math.IsInf(d, 1)) {
				t.Fatalf("%s: dist[%d]=%v, want %v", prof.Name, v, gv, d)
			}
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(4)
	want := refimpl.PageRank(g, 0.85, 15)
	for _, prof := range testProfiles() {
		res, err := RunPageRank(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := vecMap(res.Rel)
		if res.Iterations != 15 {
			t.Errorf("%s: iterations = %d", prof.Name, res.Iterations)
		}
		for v, w := range want {
			if math.Abs(got[int64(v)]-w) > 1e-9 {
				t.Fatalf("%s: PR[%d]=%v, want %v", prof.Name, v, got[int64(v)], w)
			}
		}
	}
}

func TestRWRMatchesReference(t *testing.T) {
	g := testGraph(5)
	restart := make([]float64, g.N)
	restart[3] = 1
	want := refimpl.RWR(g, 0.85, restart, 15)
	res, err := RunRWR(engine.New(engine.OracleLike()), g, Params{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := vecMap(res.Rel)
	for v, w := range want {
		if math.Abs(got[int64(v)]-w) > 1e-9 {
			t.Fatalf("RWR[%d]=%v, want %v", v, got[int64(v)], w)
		}
	}
}

func TestHITSMatchesReference(t *testing.T) {
	g := testGraph(6)
	wantHub, wantAuth := refimpl.HITS(g, 15)
	for _, prof := range testProfiles() {
		res, err := RunHITS(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if res.Rel.Len() != g.N {
			t.Fatalf("%s: H has %d rows", prof.Name, res.Rel.Len())
		}
		for _, tu := range res.Rel.Tuples {
			id := tu[0].AsInt()
			if math.Abs(tu[1].AsFloat()-wantHub[id]) > 1e-9 {
				t.Fatalf("%s: hub[%d]=%v, want %v", prof.Name, id, tu[1], wantHub[id])
			}
			if math.Abs(tu[2].AsFloat()-wantAuth[id]) > 1e-9 {
				t.Fatalf("%s: auth[%d]=%v, want %v", prof.Name, id, tu[2], wantAuth[id])
			}
		}
	}
}

func TestTopoSortMatchesReference(t *testing.T) {
	g := graph.GenerateDAG(80, 240, 7)
	want := refimpl.TopoSort(g)
	for _, prof := range testProfiles() {
		res, err := RunTopoSort(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		if len(got) != g.N {
			t.Fatalf("%s: sorted %d of %d nodes", prof.Name, len(got), g.N)
		}
		for v, l := range want {
			if got[int64(v)] != int64(l) {
				t.Fatalf("%s: level[%d]=%d, want %d", prof.Name, v, got[int64(v)], l)
			}
		}
	}
}

func TestTopoSortSkipsCycles(t *testing.T) {
	g := graph.New(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1) // cycle
	g.AddEdge(2, 3, 1)
	res, err := RunTopoSort(engine.New(engine.OracleLike()), g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, tu := range res.Rel.Tuples {
		got[tu[0].AsInt()] = tu[1].AsInt()
	}
	if len(got) != 2 || got[2] != 0 || got[3] != 1 {
		t.Errorf("cycle handling wrong: %v", got)
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	g := testGraph(8)
	want := refimpl.KCore(g, 5)
	wantCount := 0
	for _, a := range want {
		if a {
			wantCount++
		}
	}
	for _, prof := range testProfiles() {
		res, err := RunKCore(engine.New(prof), g, Params{K: 5})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]bool{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = true
		}
		if len(got) != wantCount {
			t.Fatalf("%s: %d core nodes, want %d", prof.Name, len(got), wantCount)
		}
		for v, alive := range want {
			if got[int64(v)] != alive {
				t.Fatalf("%s: core[%d]=%v, want %v", prof.Name, v, got[int64(v)], alive)
			}
		}
	}
}

func TestMISMatchesReference(t *testing.T) {
	g := testGraph(9)
	want := refimpl.MIS(g, 42)
	for _, prof := range testProfiles() {
		res, err := RunMIS(engine.New(prof), g, Params{Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]bool{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = true
		}
		for v, in := range want {
			if got[int64(v)] != in {
				t.Fatalf("%s: MIS[%d]=%v, want %v", prof.Name, v, got[int64(v)], in)
			}
		}
	}
}

func TestLPMatchesReference(t *testing.T) {
	g := testGraph(10)
	want := refimpl.LabelPropagation(g, 15)
	for _, prof := range testProfiles() {
		res, err := RunLP(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		for v, l := range want {
			if got[int64(v)] != int64(l) {
				t.Fatalf("%s: label[%d]=%d, want %d", prof.Name, v, got[int64(v)], l)
			}
		}
	}
}

func TestMNMMatchesReference(t *testing.T) {
	g := testGraph(11)
	want := refimpl.MNM(g)
	for _, prof := range testProfiles() {
		res, err := RunMNM(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		for v, mate := range want {
			gm, ok := got[int64(v)]
			if mate < 0 {
				if ok {
					t.Fatalf("%s: node %d should be unmatched, got %d", prof.Name, v, gm)
				}
				continue
			}
			if gm != mate {
				t.Fatalf("%s: match[%d]=%d, want %d", prof.Name, v, gm, mate)
			}
		}
	}
}

func TestKSMatchesReference(t *testing.T) {
	g := testGraph(12)
	query := []int32{0, 1, 2}
	want := refimpl.KeywordSearch(g, query, 4)
	for _, prof := range testProfiles() {
		res, err := RunKS(engine.New(prof), g, Params{Query: query, Depth: 4})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]bool{}
		for _, tu := range res.Rel.Tuples {
			full := true
			for i := 1; i < len(tu); i++ {
				if tu[i].AsInt() != 1 {
					full = false
					break
				}
			}
			got[tu[0].AsInt()] = full
		}
		for v, root := range want {
			if got[int64(v)] != root {
				t.Fatalf("%s: root[%d]=%v, want %v", prof.Name, v, got[int64(v)], root)
			}
		}
	}
}

func TestTCMatchesReference(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 30, M: 70, Directed: true, Skew: 2.0, Seed: 13})
	for _, depth := range []int{0, 3} {
		want := refimpl.TransitiveClosure(g, depth)
		res, err := RunTC(engine.New(engine.OracleLike()), g, Params{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()<<32|tu[1].AsInt()] = true
		}
		if len(got) != len(want) {
			t.Fatalf("depth %d: |TC| = %d, want %d", depth, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("depth %d: missing pair %d→%d", depth, k>>32, k&0xffffffff)
			}
		}
	}
}

func TestAPSPAndFloydWarshallMatchReference(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 25, M: 70, Directed: true, Skew: 2.0, Seed: 14})
	for i := range g.Edges {
		g.Edges[i].W = float64(1 + (i*3)%4)
	}
	want := refimpl.FloydWarshall(g)
	// Unbounded APSP (depth = N) and Floyd-Warshall both converge to it.
	resA, err := RunAPSP(engine.New(engine.OracleLike()), g, Params{Depth: g.N + 1})
	if err != nil {
		t.Fatal(err)
	}
	resF, err := RunFloydWarshall(engine.New(engine.DB2Like()), g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{resA, resF} {
		got := map[int64]float64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()<<32|tu[1].AsInt()] = tu[2].AsFloat()
		}
		for i := 0; i < g.N; i++ {
			for j := 0; j < g.N; j++ {
				if i == j || math.IsInf(want[i][j], 1) {
					continue
				}
				key := int64(i)<<32 | int64(j)
				if gv, ok := got[key]; !ok || gv != want[i][j] {
					t.Fatalf("d(%d,%d)=%v, want %v", i, j, got[key], want[i][j])
				}
			}
		}
	}
	// Floyd-Warshall (squaring) needs ~log2(n) iterations, far fewer than APSP.
	if resF.Iterations >= resA.Iterations && resA.Iterations > 4 {
		t.Errorf("nonlinear recursion should converge faster: FW %d vs APSP %d",
			resF.Iterations, resA.Iterations)
	}
}

func TestSimRankMatchesReference(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 15, M: 35, Directed: true, Skew: 2.0, Seed: 15})
	want := refimpl.SimRank(g, 0.2, 5)
	res, err := RunSimRank(engine.New(engine.OracleLike()), g, Params{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]float64{}
	for _, tu := range res.Rel.Tuples {
		got[tu[0].AsInt()<<32|tu[1].AsInt()] = tu[2].AsFloat()
	}
	for a := 0; a < g.N; a++ {
		for b := 0; b < g.N; b++ {
			w := want[a][b]
			gv := got[int64(a)<<32|int64(b)]
			if math.Abs(gv-w) > 1e-9 {
				t.Fatalf("s(%d,%d)=%v, want %v", a, b, gv, w)
			}
		}
	}
}

func TestDiameterEstimate(t *testing.T) {
	g := graph.New(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	res, err := RunDiameter(engine.New(engine.OracleLike()), g, Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Errorf("eccentricity estimate = %d, want 3", res.Iterations)
	}
}

func TestAlgorithmsAgreeAcrossUBUAndAntiImpls(t *testing.T) {
	g := testGraph(16)
	e := engine.New(engine.OracleLike())
	ref, err := RunPageRank(e, g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ubu := range []ra.UBUImpl{ra.UBUMerge, ra.UBUUpdateFrom, ra.UBUReplace} {
		res, err := RunPageRank(engine.New(engine.OracleLike()), g, Params{UBU: ubu})
		if err != nil {
			t.Fatalf("%s: %v", ubu, err)
		}
		if !res.Rel.Equal(ref.Rel) {
			t.Errorf("PR with %s differs", ubu)
		}
	}
	dag := graph.GenerateDAG(60, 200, 17)
	tsRef, err := RunTopoSort(engine.New(engine.OracleLike()), dag, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, anti := range []ra.AntiJoinImpl{ra.AntiNotExists, ra.AntiNotIn} {
		res, err := RunTopoSort(engine.New(engine.OracleLike()), dag, Params{Anti: anti})
		if err != nil {
			t.Fatalf("%s: %v", anti, err)
		}
		if !res.Rel.Equal(tsRef.Rel) {
			t.Errorf("TS with %s differs", anti)
		}
	}
}

func TestResultTraces(t *testing.T) {
	g := testGraph(18)
	res, err := RunPageRank(engine.New(engine.OracleLike()), g, Params{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 5 || len(res.IterRows) != 5 {
		t.Fatalf("traces: %d times, %d rows", len(res.IterTimes), len(res.IterRows))
	}
	for i, rows := range res.IterRows {
		if rows != g.N {
			t.Errorf("iter %d: recursive relation has %d rows, want n=%d", i, rows, g.N)
		}
	}
}

func TestTCFromEarlySelection(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 40, M: 110, Directed: true, Skew: 2.0, Seed: 91})
	full, err := RunTC(engine.New(engine.OracleLike()), g, Params{Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	eFrom := engine.New(engine.OracleLike())
	from, err := RunTCFrom(eFrom, g, 0, Params{Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Early selection = σ_{F=0} of the full closure.
	want := map[int64]bool{}
	for _, tu := range full.Rel.Tuples {
		if tu[0].AsInt() == 0 {
			want[tu[1].AsInt()] = true
		}
	}
	got := map[int64]bool{}
	for _, tu := range from.Rel.Tuples {
		if tu[0].AsInt() != 0 {
			t.Fatalf("early-selection result has foreign source: %v", tu)
		}
		got[tu[1].AsInt()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("reachable = %d, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("missing reachable node %d", v)
		}
	}
	// The optimization's point: vastly fewer tuples flow through the join.
	if from.Rel.Len() >= full.Rel.Len() {
		t.Errorf("early selection should shrink the closure: %d vs %d", from.Rel.Len(), full.Rel.Len())
	}
}

func TestEngineWithTinyBufferPoolStillCorrect(t *testing.T) {
	// A thrashing buffer pool must not change results, only cost.
	g := testGraph(92)
	want := refimpl.PageRank(g, 0.85, 8)
	e := engine.NewWithFrames(engine.DB2Like(), 4)
	res, err := RunPageRank(e, g, Params{Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := vecMap(res.Rel)
	for v, w := range want {
		if math.Abs(got[int64(v)]-w) > 1e-9 {
			t.Fatalf("tiny pool changed results at %d", v)
		}
	}
	if e.Disk().Reads == 0 {
		t.Error("tiny pool should hit the disk")
	}
}
