package algos

import "fmt"

// This file collects the paper's WITH+ statements as parameterized SQL
// texts (Figs. 1, 3, 5, 6 and companions), runnable through the withplus
// pipeline against base tables E(F,T,ew) / En(F,T,ew normalized) /
// V(ID,vw). They are what cmd/gsql scripts and the examples use, and the
// withplus tests verify them against the reference implementations.

// TCSQL is the Fig. 1 transitive closure with the Exp-C depth bound
// (depth 0 omits the bound). maxrecursion counts loop iterations, and each
// iteration extends the closure by one join, so a bound of d covers paths
// of up to d+1 edges.
func TCSQL(depth int) string {
	bound := ""
	if depth > 0 {
		bound = fmt.Sprintf("\n  maxrecursion %d", depth)
	}
	return fmt.Sprintf(`
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F)%s)
select F, T from TC`, bound)
}

// PageRankSQL is Fig. 3 with the dangling-complete left-outer-join form
// (nodes without in-edges take (1-c)/n instead of staying at their
// initialization), over the out-degree-normalized edge table En.
func PageRankSQL(n, iters int, c float64) string {
	return fmt.Sprintf(`
with
P(ID, W) as (
  (select V.ID, 1.0 / %[1]d from V)
  union by update ID
  (select V.ID, %[3]g * coalesce(s.w, 0.0) + %[4]g / %[1]d
   from V left outer join
     (select E.T tid, sum(W * ew) w from P, En E where P.ID = E.F group by E.T) s
   on V.ID = s.tid)
  maxrecursion %[2]d)
select ID, W from P`, n, iters, c, 1-c)
}

// PageRankFig3SQL is Fig. 3 verbatim (zero-initialized; nodes without
// in-edges stay at 0 — the paper's exact formulation).
func PageRankFig3SQL(n, iters int, c float64) string {
	return fmt.Sprintf(`
with
P(ID, W) as (
  (select V.ID, 0.0 from V)
  union by update ID
  (select E.T, %[3]g * sum(W * ew) + %[4]g / %[1]d from P, En E
   where P.ID = E.F group by E.T)
  maxrecursion %[2]d)
select ID, W from P`, n, iters, c, 1-c)
}

// TopoSortSQL is Fig. 5 verbatim.
func TopoSortSQL() string {
	return `
with
Topo(ID, L) as (
  (select ID, 0 from V
   where ID not in select E.T from E)
  union all
  (select ID, L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1 as
       select V.ID from V
       where ID not in select ID from Topo;
     E_1 as
       select E.F, E.T from V_1, E
       where V_1.ID = E.F;
     T_n as
       select ID, L from V_1, L_n
       where ID not in select T from E_1;))
select ID, L from Topo`
}

// HITSSQL is Fig. 6 with dangling-complete authority/hub vectors (left
// outer joins keep nodes with no in-/out-edges at value 0, matching the
// matrix formulation of Eq. (12)).
func HITSSQL(iters int) string {
	return fmt.Sprintf(`
with
H(ID, h, a) as (
  (select ID, 1.0, 1.0 from V)
  union by update
  (select R_ha.ID, h2 / sqrt(nh), a2 / sqrt(na)
   from R_ha, R_n
   computed by
     H_h as select ID, h from H;
     R_a as
       select V.ID, coalesce(s.aa, 0.0) a2 from V left outer join
         (select E.T tid, sum(h * ew) aa from H_h, E where H_h.ID = E.F group by E.T) s
       on V.ID = s.tid;
     R_h as
       select V.ID, coalesce(s.hh, 0.0) h2 from V left outer join
         (select E.F fid, sum(a2 * ew) hh from R_a, E where R_a.ID = E.T group by E.F) s
       on V.ID = s.fid;
     R_ha as select R_h.ID ID, h2, a2 from R_h, R_a where R_h.ID = R_a.ID;
     R_n(nh, na) as select sum(h2 * h2), sum(a2 * a2) from R_ha;)
  maxrecursion %d)
select ID, h, a from H`, iters)
}

// SSSPSQL is the Eq. (7) Bellman-Ford with the min(old, new) relaxation
// guard, from the given source. Unreached nodes keep the 1e18 sentinel.
func SSSPSQL(source int) string {
	return fmt.Sprintf(`
with
D(ID, dist) as (
  (select ID, 0.0 from V where ID = %[1]d)
  union all
  (select ID, 1e18 from V where ID <> %[1]d)
  union by update ID
  (select D.ID, least(D.dist, s.nd) from D,
     (select E.T tid, min(dist + ew) nd from D, E where D.ID = E.F group by E.T) s
   where D.ID = s.tid))
select ID, dist from D`, source)
}

// WCCSQL computes weakly-connected components (Eq. (6)) assuming the edge
// table already holds both directions (load a symmetrized graph, or union
// the transpose into E). Labels start as node IDs and the minimum floods.
func WCCSQL() string {
	return `
with
C(ID, lbl) as (
  (select ID, ID from V)
  union by update ID
  (select C.ID, least(C.lbl, s.m) from C,
     (select E.T tid, min(lbl * ew) m from C, E where C.ID = E.F group by E.T) s
   where C.ID = s.tid))
select ID, lbl from C`
}

// BFSSQL is Eq. (5): reachability flags from the source under (max, *).
func BFSSQL(source int) string {
	return fmt.Sprintf(`
with
R(ID, vw) as (
  (select ID, 1.0 from V where ID = %[1]d)
  union all
  (select ID, 0.0 from V where ID <> %[1]d)
  union by update ID
  (select R.ID, greatest(R.vw, s.m) from R,
     (select E.T tid, max(vw * ew) m from R, E where R.ID = E.F group by E.T) s
   where R.ID = s.tid))
select ID, vw from R`, source)
}

// LPSQL is Label-Propagation as a pure WITH+ statement over base tables E
// and VL(ID, lbl): per iteration, computed-by tables build the
// per-(node, label) counts, the per-node maximum count, and the smallest
// label reaching it, which union-by-updates the label table — the paper's
// count-aggregation row of Table 2.
func LPSQL(iters int) string {
	return fmt.Sprintf(`
with
L(ID, lbl) as (
  (select ID, lbl from VL)
  union by update ID
  (select ID, lbl from Best
   computed by
     Cnt(ID, lbl, c) as
       select E.T, L.lbl, count(*) from L, E
       where L.ID = E.F group by E.T, L.lbl;
     Mx(ID, mx) as select ID, max(c) from Cnt group by ID;
     Best(ID, lbl) as
       select Cnt.ID, min(Cnt.lbl) from Cnt, Mx
       where Cnt.ID = Mx.ID and Cnt.c = Mx.mx group by Cnt.ID;)
  maxrecursion %d)
select ID, lbl from L`, iters)
}

// KCoreSQL is the paper's KC loop as a pure WITH+ statement over a
// symmetrized edge table E: the recursive relation is the surviving edge
// set, replaced wholesale each iteration (the attribute-less
// union-by-update) after restricting both endpoints to nodes of degree > k.
func KCoreSQL(k int) string {
	return fmt.Sprintf(`
with
Ec(F, T) as (
  (select F, T from E)
  union by update
  (select F, T from E2
   computed by
     Deg(ID, d) as select F, count(*) from Ec group by F;
     Vk as select ID from Deg where d > %d;
     E1 as select Ec.F, Ec.T from Ec, Vk where Ec.F = Vk.ID;
     E2 as select E1.F, E1.T from E1, Vk where E1.T = Vk.ID;))
select distinct F from Ec`, k)
}

// KSSQL is Keyword-Search as a WITH+ statement: per-keyword indicator
// columns are ORed (via greatest/max) with out-neighbours' indicators for
// `depth` rounds. The initial indicators come from a base table
// KInit(ID, b0, b1, b2) the caller loads from the node labels.
func KSSQL(depth int) string {
	return fmt.Sprintf(`
with
K(ID, b0, b1, b2) as (
  (select ID, b0, b1, b2 from KInit)
  union by update ID
  (select K.ID, greatest(K.b0, s.m0), greatest(K.b1, s.m1), greatest(K.b2, s.m2)
   from K, (select E.F fid, max(b0) m0, max(b1) m1, max(b2) m2
            from K, E where K.ID = E.T group by E.F) s
   where K.ID = s.fid)
  maxrecursion %d)
select ID, b0, b1, b2 from K`, depth)
}
