package algos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// loadNormalizedEdges loads E with ew = 1/outdeg(F) — the stochastic matrix
// PageRank-family algorithms multiply by.
func loadNormalizedEdges(e *engine.Engine, g *graph.Graph, name string) error {
	_, err := e.EnsureBase(name, func() *relation.Relation {
		deg := g.OutDegrees()
		r := relation.NewWithCap(graph.EdgeSchema(), g.M())
		for _, ed := range g.Edges {
			r.Tuples = append(r.Tuples, relation.Tuple{
				value.Int(int64(ed.F)), value.Int(int64(ed.T)),
				value.Float(1.0 / float64(deg[ed.F])),
			})
		}
		return r
	})
	return err
}

// RunPageRank runs Eq. (9) for p.Iters fixed iterations:
// vw ← c·Σ_in(vw·ew) + (1−c)/n over the out-degree-normalized edges,
// starting from the uniform vector. Nodes without in-edges take the base
// value (1−c)/n (the dangling-free completion the f₁(·) formula implies;
// Fig. 3's zero-initialized variant leaves them at 0, which we note in
// EXPERIMENTS.md).
func RunPageRank(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab := tbl("pr", "E"), tbl("pr", "V")
	if err := loadNormalizedEdges(e, g, eTab); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	n := float64(g.N)
	init := g.NodeRelation(func(int) float64 { return 1 / n })
	if err := e.StoreInto(vTab, init); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	base := g.NodeRelation(func(int) float64 { return (1 - p.C) / n })
	for it := 0; it < p.Iters; it++ {
		start := time.Now()
		vt, err := e.Cat.Get(vTab)
		if err != nil {
			return nil, err
		}
		mv, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
		if err != nil {
			return nil, err
		}
		scaled, err := ra.Project(mv, []ra.OutCol{
			{Col: schema.Column{Name: "ID", Type: value.KindInt}, Expr: ra.ColExpr(0)},
			{Col: schema.Column{Name: "vw", Type: value.KindFloat}, Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Float(p.C*t[1].AsFloat() + (1-p.C)/n), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		merged, err := ra.UnionByUpdate(base, scaled, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		if _, err := e.UnionByUpdate(vTab, merged, []int{0}, p.UBU); err != nil {
			return nil, err
		}
		cur, err := e.Rel(vTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(vTab)
	return res, err
}

// RunRWR runs Random-Walk-with-Restart (Eq. (10)):
// vw ← c·Σ_in(vw·ew) + (1−c)·P.vw, where the restart distribution P is
// concentrated on p.Source (the usual personalization) unless the caller
// pre-loads a "rwr_P" base table.
func RunRWR(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab, pTab := tbl("rwr", "E"), tbl("rwr", "V"), tbl("rwr", "P")
	if err := loadNormalizedEdges(e, g, eTab); err != nil {
		return nil, err
	}
	if _, err := e.EnsureBase(pTab, func() *relation.Relation {
		return g.NodeRelation(func(i int) float64 {
			if int32(i) == p.Source {
				return 1
			}
			return 0
		})
	}); err != nil {
		return nil, err
	}
	pRel, err := e.Rel(pTab)
	if err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(vTab, pRel); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	// base = (1-c) * P : what a node receives with no in-edges.
	base, err := ra.Project(pRel, []ra.OutCol{
		{Col: schema.Column{Name: "ID", Type: value.KindInt}, Expr: ra.ColExpr(0)},
		{Col: schema.Column{Name: "vw", Type: value.KindFloat}, Expr: func(t relation.Tuple) (value.Value, error) {
			return value.Float((1 - p.C) * t[1].AsFloat()), nil
		}},
	})
	if err != nil {
		return nil, err
	}
	pIdx := relation.BuildHashIndex(pRel, []int{0})
	res := &Result{}
	for it := 0; it < p.Iters; it++ {
		start := time.Now()
		vt, err := e.Cat.Get(vTab)
		if err != nil {
			return nil, err
		}
		mv, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
		if err != nil {
			return nil, err
		}
		// f2 + (1-c)·P.vw for nodes with in-edges.
		scaled, err := ra.Project(mv, []ra.OutCol{
			{Col: schema.Column{Name: "ID", Type: value.KindInt}, Expr: ra.ColExpr(0)},
			{Col: schema.Column{Name: "vw", Type: value.KindFloat}, Expr: func(t relation.Tuple) (value.Value, error) {
				restart := 0.0
				if rows := pIdx.Probe(t, []int{0}); len(rows) == 1 {
					restart = pRel.Tuples[rows[0]][1].AsFloat()
				}
				return value.Float(p.C*t[1].AsFloat() + (1-p.C)*restart), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		merged, err := ra.UnionByUpdate(base, scaled, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		if _, err := e.UnionByUpdate(vTab, merged, []int{0}, p.UBU); err != nil {
			return nil, err
		}
		cur, err := e.Rel(vTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(vTab)
	return res, err
}

// safeNormalize returns x/sqrt(norm), or 0 when the norm vanishes (an
// edgeless graph), matching the reference implementation's guard.
func safeNormalize(x, norm value.Value) value.Value {
	s := value.Sqrt(norm)
	if s.IsNull() || s.AsFloat() == 0 {
		return value.Float(0)
	}
	return value.Float(x.AsFloat() / s.AsFloat())
}

func hitsSchema() schema.Schema {
	return schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "h", Type: value.KindFloat},
		{Name: "a", Type: value.KindFloat},
	}
}

// RunHITS runs Eq. (12) for p.Iters iterations: authorities from previous
// hubs, hubs from new authorities, then joint 2-norm normalization — the
// paper's showcase of mutual recursion folded into one recursive relation
// H(ID, h, a).
func RunHITS(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, hTab := tbl("hits", "E"), tbl("hits", "H")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(hTab, hitsSchema()); err != nil {
		return nil, err
	}
	init := relation.New(hitsSchema())
	for i := 0; i < g.N; i++ {
		init.Append(relation.Tuple{value.Int(int64(i)), value.Float(1), value.Float(1)})
	}
	if err := e.StoreInto(hTab, init); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	zeros := g.NodeRelation(func(int) float64 { return 0 })
	res := &Result{}
	hhTab, raTab := tbl("hits", "Hh"), tbl("hits", "Ra")
	if _, err := e.EnsureTemp(hhTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(raTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	for it := 0; it < p.Iters; it++ {
		start := time.Now()
		hRel, err := e.Rel(hTab)
		if err != nil {
			return nil, err
		}
		// H_h ← Π_{ID,h} H (the previous hubs).
		hh := ra.ProjectCols(hRel, []int{0, 1})
		hh.Sch = graph.NodeSchema()
		if err := e.StoreInto(hhTab, hh); err != nil {
			return nil, err
		}
		hhT, err := e.Cat.Get(hhTab)
		if err != nil {
			return nil, err
		}
		// R_a: a(v) = Σ_{u→v} h(u)·ew — MV-join on E.F, grouped by E.T,
		// completed with zeros so every node has an authority value.
		raRel, err := e.MVJoin(et, hhT, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
		if err != nil {
			return nil, err
		}
		raFull, err := ra.UnionByUpdate(zeros, raRel, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(raTab, raFull); err != nil {
			return nil, err
		}
		raT, err := e.Cat.Get(raTab)
		if err != nil {
			return nil, err
		}
		// R_h: h(u) = Σ_{u→v} a(v)·ew — MV-join on E.T, grouped by E.F.
		rhRel, err := e.MVJoin(et, raT, ra.EdgeMat(), ra.NodeVec(), 1, 0, semiring.PlusTimes())
		if err != nil {
			return nil, err
		}
		rhFull, err := ra.UnionByUpdate(zeros, rhRel, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		// R_ha ← R_h ⋈ R_a on ID.
		rha := ra.EquiJoin(rhFull, raFull, ra.EquiJoinSpec{
			LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin,
		})
		// R_n ← (sum(h·h), sum(a·a)) — a single normalization tuple.
		rn, err := ra.GroupBy(rha, nil, []ra.AggSpec{
			ra.Sum(schema.Column{Name: "nh", Type: value.KindFloat}, func(t relation.Tuple) (value.Value, error) {
				return value.Float(t[1].AsFloat() * t[1].AsFloat()), nil
			}),
			ra.Sum(schema.Column{Name: "na", Type: value.KindFloat}, func(t relation.Tuple) (value.Value, error) {
				return value.Float(t[3].AsFloat() * t[3].AsFloat()), nil
			}),
		})
		if err != nil {
			return nil, err
		}
		// H ← Π_{ID, h/sqrt(nh), a/sqrt(na)} (R_ha × R_n).
		prod := ra.Product(rha, rn)
		newH, err := ra.Project(prod, []ra.OutCol{
			{Col: hitsSchema()[0], Expr: ra.ColExpr(0)},
			{Col: hitsSchema()[1], Expr: func(t relation.Tuple) (value.Value, error) {
				return safeNormalize(t[1], t[4]), nil
			}},
			{Col: hitsSchema()[2], Expr: func(t relation.Tuple) (value.Value, error) {
				return safeNormalize(t[3], t[5]), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		if _, err := e.UnionByUpdate(hTab, newH, []int{0}, p.UBU); err != nil {
			return nil, err
		}
		cur, err := e.Rel(hTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(hTab)
	return res, err
}

// RunSimRank runs Eq. (11) for p.Iters iterations over the in-degree
// normalized edge matrix Ŵ: K ← max((1−c)·ŴᵀKŴ, I), with the similarity
// matrix K as a sparse (F,T,ew) relation. Intended for small graphs (the
// matrix densifies), as the paper's Table 2 entry.
func RunSimRank(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	if p.C == 0.85 {
		p.C = 0.2 // SimRank customarily uses a small decay toward I
	}
	eTab, kTab := tbl("sr", "E"), tbl("sr", "K")
	if _, err := e.EnsureBase(eTab, func() *relation.Relation {
		indeg := g.InDegrees()
		r := relation.NewWithCap(graph.EdgeSchema(), g.M())
		for _, ed := range g.Edges {
			r.Tuples = append(r.Tuples, relation.Tuple{
				value.Int(int64(ed.F)), value.Int(int64(ed.T)),
				value.Float(1.0 / float64(indeg[ed.T])),
			})
		}
		return r
	}); err != nil {
		return nil, err
	}
	ident := relation.New(graph.EdgeSchema())
	for i := 0; i < g.N; i++ {
		ident.Append(relation.Tuple{value.Int(int64(i)), value.Int(int64(i)), value.Float(1)})
	}
	if _, err := e.EnsureTemp(kTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(kTab, ident); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	r1Tab := tbl("sr", "R1")
	if _, err := e.EnsureTemp(r1Tab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	sr := semiring.PlusTimes()
	res := &Result{}
	for it := 0; it < p.Iters; it++ {
		start := time.Now()
		kt, err := e.Cat.Get(kTab)
		if err != nil {
			return nil, err
		}
		// R1 ← K·Ŵ : join K.T = E.F, group by (K.F, E.T).
		r1, err := e.MMJoin(kt, et, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, sr)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(r1Tab, r1); err != nil {
			return nil, err
		}
		r1T, err := e.Cat.Get(r1Tab)
		if err != nil {
			return nil, err
		}
		// R2 ← Ŵᵀ·R1 : join E.F = R1.F, group by (E.T, R1.T).
		r2, err := e.MMJoin(et, r1T, ra.EdgeMat(), ra.EdgeMat(), 0, 1, 0, 1, sr)
		if err != nil {
			return nil, err
		}
		scaled, err := ra.Project(r2, []ra.OutCol{
			{Col: graph.EdgeSchema()[0], Expr: ra.ColExpr(0)},
			{Col: graph.EdgeSchema()[1], Expr: ra.ColExpr(1)},
			{Col: graph.EdgeSchema()[2], Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Float((1 - p.C) * t[2].AsFloat()), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		// K ← max((1-c)·R2, I): the identity overrides the diagonal.
		newK, err := ra.UnionByUpdate(scaled, ident, []int{0, 1}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		if _, err := e.UnionByUpdate(kTab, newK, nil, ra.UBUReplace); err != nil {
			return nil, err
		}
		cur, err := e.Rel(kTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
	}
	res.Rel, err = e.Rel(kTab)
	return res, err
}
