package algos

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/refimpl"
)

// twoCliques builds two well-separated communities joined by one bridge.
func twoCliques(k int) *graph.Graph {
	g := graph.New(2*k, false)
	for a := int32(0); a < int32(k); a++ {
		for b := a + 1; b < int32(k); b++ {
			g.AddUndirected(a, b, 1)
			g.AddUndirected(a+int32(k), b+int32(k), 1)
		}
	}
	g.AddUndirected(0, int32(k), 1) // bridge
	return g
}

func TestMarkovClusteringFindsCommunities(t *testing.T) {
	g := twoCliques(5)
	want := refimpl.MarkovClustering(g, 2, 1e-6, 50)
	for _, prof := range testProfiles() {
		res, err := RunMarkovClustering(engine.New(prof), g, Params{MaxRecursion: 50})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		if len(got) != g.N {
			t.Fatalf("%s: clustered %d of %d nodes", prof.Name, len(got), g.N)
		}
		// Communities must match the reference exactly up to relabeling:
		// nodes in one clique share a cluster; the two cliques differ.
		for a := 0; a < g.N; a++ {
			for b := a + 1; b < g.N; b++ {
				sameRef := want[a] == want[b]
				sameGot := got[int64(a)] == got[int64(b)]
				if sameRef != sameGot {
					t.Fatalf("%s: pair (%d,%d) grouping differs from reference", prof.Name, a, b)
				}
			}
		}
	}
}

func TestMarkovClusteringReferenceSeparatesCliques(t *testing.T) {
	g := twoCliques(5)
	c := refimpl.MarkovClustering(g, 2, 1e-6, 50)
	if c[0] == c[5] {
		t.Error("bridged cliques should split into two clusters")
	}
	for i := 1; i < 5; i++ {
		if c[i] != c[0] || c[i+5] != c[5] {
			t.Errorf("clique members split: %v", c)
		}
	}
}

func TestKTrussMatchesReference(t *testing.T) {
	// A 5-clique with a dangling path: the clique is a 4-truss (each edge
	// in 3 triangles); the path survives no truss with k >= 3.
	g := graph.New(8, false)
	for a := int32(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.AddUndirected(a, b, 1)
		}
	}
	g.AddUndirected(4, 5, 1)
	g.AddUndirected(5, 6, 1)
	g.AddUndirected(6, 7, 1)
	for _, k := range []int{3, 4, 5} {
		want := refimpl.KTruss(g, k)
		res, err := RunKTruss(engine.New(engine.OracleLike()), g, Params{K: k, MaxRecursion: 20})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()<<32|tu[1].AsInt()] = true
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d edges, want %d", k, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("k=%d: missing edge %d-%d", k, key>>32, key&0xffffffff)
			}
		}
	}
	// k=6 empties a 5-clique.
	res, err := RunKTruss(engine.New(engine.OracleLike()), g, Params{K: 6, MaxRecursion: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 0 {
		t.Errorf("6-truss of a 5-clique should be empty, got %d edges", res.Rel.Len())
	}
}

func TestKTrussOnRandomGraph(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 40, M: 200, Directed: false, Skew: 2.0, Seed: 31})
	want := refimpl.KTruss(g, 4)
	res, err := RunKTruss(engine.New(engine.DB2Like()), g, Params{K: 4, MaxRecursion: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, tu := range res.Rel.Tuples {
		got[tu[0].AsInt()<<32|tu[1].AsInt()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("edges = %d, want %d", len(got), len(want))
	}
}

func TestBisimulationMatchesReference(t *testing.T) {
	// A balanced binary tree: all leaves are bisimilar, all depth-1 nodes
	// are bisimilar, and so on.
	g := graph.New(7, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(2, 5, 1)
	g.AddEdge(2, 6, 1)
	want, rounds := refimpl.Bisimulation(g)
	if rounds < 2 {
		t.Fatalf("refinement rounds = %d", rounds)
	}
	// Expected partition: {0}, {1,2}, {3,4,5,6}.
	if want[1] != want[2] || want[3] != want[6] || want[0] == want[1] || want[1] == want[3] {
		t.Fatalf("reference partition wrong: %v", want)
	}
	for _, prof := range testProfiles() {
		res, err := RunBisimulation(engine.New(prof), g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		for v := range want {
			if got[int64(v)] != want[v] {
				t.Fatalf("%s: block[%d] = %d, want %d", prof.Name, v, got[int64(v)], want[v])
			}
		}
	}
}

func TestBisimulationWithLabelsAndRandomGraphs(t *testing.T) {
	for seed := int64(40); seed < 43; seed++ {
		g := graph.Generate(graph.GenSpec{N: 50, M: 150, Directed: true, Skew: 2.0, Seed: seed, NumLabels: 3})
		want, _ := refimpl.Bisimulation(g)
		res, err := RunBisimulation(engine.New(engine.OracleLike()), g, Params{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]int64{}
		for _, tu := range res.Rel.Tuples {
			got[tu[0].AsInt()] = tu[1].AsInt()
		}
		for v := range want {
			if got[int64(v)] != want[v] {
				t.Fatalf("seed %d: block[%d] = %d, want %d", seed, v, got[int64(v)], want[v])
			}
		}
	}
}

func TestExtensionRegistryEntries(t *testing.T) {
	for _, code := range []string{"MCL", "KT", "BSIM"} {
		a, err := ByCode(code)
		if err != nil {
			t.Fatalf("%s missing: %v", code, err)
		}
		if !a.Nonlinear {
			t.Errorf("%s should be nonlinear (Table 2)", code)
		}
	}
}
