package algos

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/withplus"
)

// Differential gates for the vectorized batch kernels, mirroring
// TestCSRVsHashAllAlgos: every algorithm, on every profile, must produce
// byte-identical output with the kernels enabled (default) and disabled
// (DisableVectorized forces the row-at-a-time closures everywhere). The
// suite runs both tiers the algorithms exist at — the native runners
// (fused MV-/MM-join kernels, which bypass the SQL executor) and the
// paper's WITH+ query texts (which run every SELECT through it).

// TestVectorVsRowAllAlgos runs the native benchmarked runners. These call
// the fused engine kernels directly, so the vectorized executor is not on
// their hot path — the test pins exactly that: identical bytes either way,
// and no batch dispatched from any native runner under either setting.
// The SQL-text half below is where the kernels actually engage.
func TestVectorVsRowAllAlgos(t *testing.T) {
	g := testGraph(5)
	p := Params{Iters: 8, K: 2} // the test graph's 5-core is empty; K=2 keeps KC non-trivial
	for _, prof := range testProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			for _, a := range Benchmarked() {
				run := func(disable bool) (string, *engine.Engine) {
					e := engine.New(prof)
					e.DisableVectorized = disable
					res, err := a.Run(e, g, p)
					if err != nil {
						t.Fatalf("%s (vector=%v): %v", a.Code, !disable, err)
					}
					return fp(res), e
				}
				on, eOn := run(false)
				off, eOff := run(true)
				if on != off {
					t.Errorf("%s: vectorized path diverged from row path (%d vs %d bytes)",
						a.Code, len(on), len(off))
				}
				// TopoSort legitimately yields no rows on a cyclic graph.
				if on == "" && a.Code != "TS" {
					t.Errorf("%s returned no rows", a.Code)
				}
				if eOff.Cnt.VectorizedBatches != 0 {
					t.Errorf("%s: DisableVectorized engine dispatched %d batches", a.Code, eOff.Cnt.VectorizedBatches)
				}
				if eOn.Cnt.VectorizedBatches != 0 {
					t.Errorf("%s: native runner dispatched %d batches; it now crosses the SQL tier — move it to the SQL-text half of this suite", a.Code, eOn.Cnt.VectorizedBatches)
				}
			}
		})
	}
}

// loadAlgoDB loads E(F,T,ew), the out-degree-normalized En, and V(ID,vw) —
// the base tables the query-text library runs against.
func loadAlgoDB(t *testing.T, eng *engine.Engine, g *graph.Graph) {
	t.Helper()
	if _, err := eng.LoadBase("E", g.EdgeRelation()); err != nil {
		t.Fatal(err)
	}
	deg := g.OutDegrees()
	norm := graph.New(g.N, g.Directed)
	for _, e := range g.Edges {
		norm.AddEdge(e.F, e.T, 1/float64(deg[e.F]))
	}
	if _, err := eng.LoadBase("En", norm.EdgeRelation()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LoadBase("V", g.NodeRelation(nil)); err != nil {
		t.Fatal(err)
	}
	labels := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "lbl", Type: value.KindInt},
	})
	for i := 0; i < g.N; i++ {
		labels.AppendVals(value.Int(int64(i)), value.Int(int64(g.Labels[i])))
	}
	if _, err := eng.LoadBase("VL", labels); err != nil {
		t.Fatal(err)
	}
	// Keyword indicators for KSSQL: bit k set when the node carries label k.
	initRel := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "b0", Type: value.KindInt},
		{Name: "b1", Type: value.KindInt},
		{Name: "b2", Type: value.KindInt},
	})
	for i := 0; i < g.N; i++ {
		row := relation.Tuple{value.Int(int64(i)), value.Int(0), value.Int(0), value.Int(0)}
		if g.Labels[i] < 3 {
			row[g.Labels[i]+1] = value.Int(1)
		}
		initRel.Append(row)
	}
	if _, err := eng.LoadBase("KInit", initRel); err != nil {
		t.Fatal(err)
	}
}

// TestVectorVsRowSQLAlgos runs the paper's WITH+ query texts through the
// full withplus pipeline on every profile with the batch kernels on and
// off. Every SELECT in these programs crosses the SQL executor, so here
// the counters carry the proof: the default engines must dispatch batches
// and the disabled engines must not — the differential can't degrade into
// comparing row against row.
func TestVectorVsRowSQLAlgos(t *testing.T) {
	g := testGraph(5)
	queries := []struct {
		code string
		src  string
	}{
		{"TC", TCSQL(3)},
		{"PR", PageRankSQL(g.N, 6, 0.85)},
		{"HITS", HITSSQL(4)},
		{"TS", TopoSortSQL()},
		{"SSSP", SSSPSQL(0)},
		{"WCC", WCCSQL()},
		{"BFS", BFSSQL(0)},
		{"LP", LPSQL(6)},
		{"KC", KCoreSQL(2)},
		{"KS", KSSQL(3)},
	}
	for _, prof := range testProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			var onBatches, offBatches int64
			for _, q := range queries {
				run := func(disable bool) (string, *engine.Engine) {
					e := engine.New(prof)
					e.DisableVectorized = disable
					loadAlgoDB(t, e, g)
					res, _, err := withplus.Run(e, q.src)
					if err != nil {
						t.Fatalf("%s (vector=%v): %v", q.code, !disable, err)
					}
					return fp(&Result{Rel: res}), e
				}
				on, eOn := run(false)
				off, eOff := run(true)
				if on != off {
					t.Errorf("%s: vectorized path diverged from row path (%d vs %d bytes)",
						q.code, len(on), len(off))
				}
				if on == "" {
					t.Errorf("%s returned no rows", q.code)
				}
				onBatches += eOn.Cnt.VectorizedBatches
				offBatches += eOff.Cnt.VectorizedBatches
			}
			if onBatches == 0 {
				t.Error("no query dispatched a batch: the differential compared row against row")
			}
			if offBatches != 0 {
				t.Errorf("DisableVectorized engines dispatched %d batches, want 0", offBatches)
			}
		})
	}
}
