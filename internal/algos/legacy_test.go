package algos

import (
	"errors"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/refimpl"
)

func TestLegacyPageRankMatchesReference(t *testing.T) {
	g := testGraph(21)
	want := refimpl.PageRank(g, 0.85, 10)
	e := engine.New(engine.PostgresLike(true))
	res, err := RunLegacyPageRank(e, g, Params{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := vecMap(res.Rel)
	if len(got) != g.N {
		t.Fatalf("final generation has %d rows", len(got))
	}
	for v, w := range want {
		if math.Abs(got[int64(v)]-w) > 1e-9 {
			t.Fatalf("legacy PR[%d] = %v, want %v", v, got[int64(v)], w)
		}
	}
}

func TestLegacyPageRankAccumulatesTuples(t *testing.T) {
	// Fig. 12(b): plain WITH accumulates ~n tuples per iteration while
	// WITH+ stays at n.
	g := testGraph(22)
	e := engine.New(engine.PostgresLike(false))
	res, err := RunLegacyPageRank(e, g, Params{Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterRows) != 8 {
		t.Fatalf("iterations = %d", len(res.IterRows))
	}
	for i := 1; i < len(res.IterRows); i++ {
		if res.IterRows[i] != res.IterRows[i-1]+g.N {
			t.Fatalf("iteration %d rows %d, want +n growth from %d", i, res.IterRows[i], res.IterRows[i-1])
		}
	}
	plus, err := RunPageRank(engine.New(engine.PostgresLike(false)), g, Params{Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range plus.IterRows {
		if rows != g.N {
			t.Fatalf("WITH+ should stay at n rows, got %d", rows)
		}
	}
	if last := res.IterRows[len(res.IterRows)-1]; last != 9*g.N {
		t.Errorf("plain WITH accumulated %d rows, want %d", last, 9*g.N)
	}
}

func TestLegacyPageRankUnsupportedProfiles(t *testing.T) {
	g := testGraph(23)
	for _, prof := range []engine.Profile{engine.OracleLike(), engine.DB2Like()} {
		_, err := RunLegacyPageRank(engine.New(prof), g, Params{Iters: 3})
		var ue *UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s should reject Fig. 9 (got %v)", prof.Name, err)
		}
	}
}

func TestLegacyTCMatchesReference(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 25, M: 60, Directed: true, Skew: 2.0, Seed: 24})
	want := refimpl.TransitiveClosure(g, 0)
	e := engine.New(engine.PostgresLike(false))
	res, err := RunLegacyTC(e, g, Params{Depth: 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, tu := range res.Rel.Tuples {
		got[tu[0].AsInt()<<32|tu[1].AsInt()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("|TC| = %d, want %d", len(got), len(want))
	}
}

func TestLegacyTCWithoutDedupNeedsDepthBound(t *testing.T) {
	// A cycle: UNION ALL semantics never converge; only the depth bound
	// stops the recursion — exactly why DB2/Oracle "take too long" in
	// Exp-C.
	g := graph.New(3, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	e := engine.New(engine.OracleLike())
	res, err := RunLegacyTC(e, g, Params{Depth: 6}, false)
	if err != nil {
		t.Fatal(err)
	}
	// 3 initial + 3 per iteration × 5 iterations = 18 accumulated rows.
	if res.Rel.Len() != 18 {
		t.Errorf("union all accumulation = %d rows, want 18", res.Rel.Len())
	}
	dedup, err := RunLegacyTC(engine.New(engine.PostgresLike(false)), g, Params{Depth: 6}, true)
	if err != nil {
		t.Fatal(err)
	}
	if dedup.Rel.Len() != 9 {
		t.Errorf("union dedup = %d rows, want 9", dedup.Rel.Len())
	}
}
