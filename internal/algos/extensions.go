package algos

import (
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// This file implements the remaining Table 2 algorithms as relational
// programs: Markov-Clustering (MM-join + sum), K-truss (count), and
// Graph-Bisimulation (nonlinear partition refinement).

// RunMarkovClustering runs MCL over the column-normalized undirected
// adjacency matrix (with self-loops) stored as M(F,T,ew): expansion is an
// MM-join under (+,·), inflation raises entries to p.C (default exponent
// 2) and renormalizes columns, entries below 1e-6 are pruned. The result
// relation maps (ID, cluster), where a cluster is named by its attractor
// row.
func RunMarkovClustering(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	r := 2.0 // the standard inflation exponent
	const eps = 1e-6
	mTab := tbl("mcl", "M")
	// Build the symmetrized matrix with self loops, column normalized.
	init := relation.New(graph.EdgeSchema())
	type cell struct{ f, t int32 }
	seen := map[cell]bool{}
	add := func(f, t int32) {
		if !seen[cell{f, t}] {
			seen[cell{f, t}] = true
			init.Append(relation.Tuple{value.Int(int64(f)), value.Int(int64(t)), value.Float(1)})
		}
	}
	for i := int32(0); int(i) < g.N; i++ {
		add(i, i)
	}
	for _, ed := range g.Edges {
		if ed.F != ed.T {
			add(ed.F, ed.T)
			add(ed.T, ed.F)
		}
	}
	norm, err := normalizeColumns(init)
	if err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(mTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(mTab, norm); err != nil {
		return nil, err
	}
	res := &Result{}
	for it := 0; it < p.MaxRecursion; it++ {
		start := time.Now()
		mt, err := e.Cat.Get(mTab)
		if err != nil {
			return nil, err
		}
		prev, err := mt.Materialize()
		if err != nil {
			return nil, err
		}
		prev = prev.Clone()
		// Expansion: M ← M·M (nonlinear MM-join).
		sq, err := e.MMJoin(mt, mt, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, semiring.PlusTimes())
		if err != nil {
			return nil, err
		}
		// Inflation: entrywise power then column normalization + pruning.
		inflated, err := ra.Project(sq, []ra.OutCol{
			{Col: graph.EdgeSchema()[0], Expr: ra.ColExpr(0)},
			{Col: graph.EdgeSchema()[1], Expr: ra.ColExpr(1)},
			{Col: graph.EdgeSchema()[2], Expr: func(t relation.Tuple) (value.Value, error) {
				return value.Float(math.Pow(t[2].AsFloat(), r)), nil
			}},
		})
		if err != nil {
			return nil, err
		}
		normed, err := normalizeColumns(inflated)
		if err != nil {
			return nil, err
		}
		pruned, err := ra.Select(normed, func(t relation.Tuple) (bool, error) {
			return t[2].AsFloat() >= eps, nil
		})
		if err != nil {
			return nil, err
		}
		final, err := normalizeColumns(pruned)
		if err != nil {
			return nil, err
		}
		if _, err := e.UnionByUpdate(mTab, final, nil, ra.UBUReplace); err != nil {
			return nil, err
		}
		cur, err := e.Rel(mTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if matricesClose(prev, cur, 1e-9) {
			break
		}
	}
	m, err := e.Rel(mTab)
	if err != nil {
		return nil, err
	}
	// Cluster per column: the row with the column's maximum mass.
	maxPer, err := ra.GroupBy(m, []int{1}, []ra.AggSpec{
		ra.MaxAgg(schema.Column{Name: "mx", Type: value.KindFloat}, ra.ColExpr(2)),
	})
	if err != nil {
		return nil, err
	}
	jm := ra.EquiJoin(m, maxPer, ra.EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: ra.HashJoin})
	top, err := ra.Select(jm, func(t relation.Tuple) (bool, error) {
		return t[2].Equal(t[4]), nil
	})
	if err != nil {
		return nil, err
	}
	clusters, err := ra.GroupBy(top, []int{1}, []ra.AggSpec{
		ra.MinAgg(schema.Column{Name: "cluster", Type: value.KindInt}, ra.ColExpr(0)),
	})
	if err != nil {
		return nil, err
	}
	clusters.Sch = schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "cluster", Type: value.KindInt},
	}
	res.Rel = clusters
	return res, nil
}

// normalizeColumns divides every entry by its column sum.
func normalizeColumns(m *relation.Relation) (*relation.Relation, error) {
	sums, err := ra.GroupBy(m, []int{1}, []ra.AggSpec{
		ra.Sum(schema.Column{Name: "s", Type: value.KindFloat}, ra.ColExpr(2)),
	})
	if err != nil {
		return nil, err
	}
	j := ra.EquiJoin(m, sums, ra.EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: ra.HashJoin})
	return ra.Project(j, []ra.OutCol{
		{Col: graph.EdgeSchema()[0], Expr: ra.ColExpr(0)},
		{Col: graph.EdgeSchema()[1], Expr: ra.ColExpr(1)},
		{Col: graph.EdgeSchema()[2], Expr: func(t relation.Tuple) (value.Value, error) {
			return value.Div(t[2], t[4])
		}},
	})
}

func matricesClose(a, b *relation.Relation, tol float64) bool {
	am := map[int64]float64{}
	for _, t := range a.Tuples {
		am[t[0].AsInt()<<32|t[1].AsInt()] = t[2].AsFloat()
	}
	bm := map[int64]float64{}
	for _, t := range b.Tuples {
		bm[t[0].AsInt()<<32|t[1].AsInt()] = t[2].AsFloat()
	}
	for k, v := range am {
		if math.Abs(bm[k]-v) > tol {
			return false
		}
	}
	for k, v := range bm {
		if math.Abs(am[k]-v) > tol {
			return false
		}
	}
	return true
}

// RunKTruss iteratively removes edges with triangle support below k-2:
// support is a count aggregation over the two-hop join E ⋈ E ⋈ E (the
// paper's K-truss row). The result relation holds the surviving canonical
// undirected edges (F < T).
func RunKTruss(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab := tbl("ktruss", "E")
	if err := loadEdges(e, g, eTab, true); err != nil {
		return nil, err
	}
	cur, err := e.Rel(eTab)
	if err != nil {
		return nil, err
	}
	curTab := tbl("ktruss", "Ec")
	if _, err := e.EnsureTemp(curTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(curTab, ra.Distinct(cur)); err != nil {
		return nil, err
	}
	need := int64(p.K - 2)
	res := &Result{}
	for it := 0; it < p.MaxRecursion; it++ {
		start := time.Now()
		ct, err := e.Cat.Get(curTab)
		if err != nil {
			return nil, err
		}
		before := ct.Rows()
		// Two-hop paths a→b→c...
		hop, err := e.Join(ct, ct, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		// ...closed by an a→c edge: triangle per (a,b).
		closedTab := tbl("ktruss", "Hop")
		hopAC := ra.ProjectCols(hop, []int{0, 1, 4})
		hopAC.Sch = schema.Schema{
			{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
			{Name: "C", Type: value.KindInt},
		}
		if _, err := e.EnsureTemp(closedTab, hopAC.Sch); err != nil {
			return nil, err
		}
		if err := e.StoreInto(closedTab, hopAC); err != nil {
			return nil, err
		}
		hT, err := e.Cat.Get(closedTab)
		if err != nil {
			return nil, err
		}
		closed, err := e.Join(hT, ct, []int{0, 2}, []int{0, 1})
		if err != nil {
			return nil, err
		}
		support, err := ra.GroupBy(closed, []int{0, 1}, []ra.AggSpec{
			ra.Count(schema.Column{Name: "sup", Type: value.KindInt}, nil),
		})
		if err != nil {
			return nil, err
		}
		strong, err := ra.Select(support, func(t relation.Tuple) (bool, error) {
			return t[2].AsInt() >= need, nil
		})
		if err != nil {
			return nil, err
		}
		// Keep only edges whose support qualifies (semi-join); edges with
		// zero triangles vanish from `support` entirely, so the semi-join
		// against `strong` removes them too.
		curRel, err := ct.Materialize()
		if err != nil {
			return nil, err
		}
		kept := ra.SemiJoin(curRel, strong, []int{0, 1}, []int{0, 1}, e.Gov())
		if err := e.StoreInto(curTab, kept); err != nil {
			return nil, err
		}
		res.trace(start, kept.Len())
		if kept.Len() == before {
			break
		}
	}
	final, err := e.Rel(curTab)
	if err != nil {
		return nil, err
	}
	canon, err := ra.Select(final, func(t relation.Tuple) (bool, error) {
		return t[0].AsInt() < t[1].AsInt(), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rel = ra.ProjectCols(canon, []int{0, 1})
	return res, nil
}

// RunBisimulation refines the block partition until two nodes share a
// block iff they agree on label and successor-block set. Successor sets
// are summarized by an order-independent sum of block-id hashes over the
// DISTINCT successor blocks — a count/sum aggregation formulation of the
// paper's Graph-Bisimulation row. The result relation is (ID, block).
func RunBisimulation(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, bTab := tbl("bisim", "E"), tbl("bisim", "B")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	bSch := schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "blk", Type: value.KindInt},
	}
	if _, err := e.EnsureTemp(bTab, bSch); err != nil {
		return nil, err
	}
	init := relation.New(bSch)
	for i := 0; i < g.N; i++ {
		b := int64(0)
		if g.Labels != nil {
			b = int64(g.Labels[i])
		}
		init.Append(relation.Tuple{value.Int(int64(i)), value.Int(b)})
	}
	initCanon, err := canonicalBlocks(init)
	if err != nil {
		return nil, err
	}
	if err := e.StoreInto(bTab, initCanon); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for it := 0; it < p.MaxRecursion; it++ {
		start := time.Now()
		bt, err := e.Cat.Get(bTab)
		if err != nil {
			return nil, err
		}
		prev, err := bt.Materialize()
		if err != nil {
			return nil, err
		}
		prev = prev.Clone()
		// Successor blocks per node: distinct (E.F, blk(E.T)).
		j, err := e.Join(et, bt, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		succ := ra.Distinct(ra.ProjectCols(j, []int{0, 4}))
		// Signature: sum of hashes of distinct successor blocks.
		sig, err := ra.GroupBy(succ, []int{0}, []ra.AggSpec{
			// The golden-ratio offset keeps mix64 nonzero for block 0, so a
			// successor set {0} differs from the empty set (signature 0).
			ra.Sum(schema.Column{Name: "sig", Type: value.KindInt}, func(t relation.Tuple) (value.Value, error) {
				return value.Int(int64(mix64(uint64(t[1].AsInt()) + 0x9e3779b97f4a7c15))), nil
			}),
		})
		if err != nil {
			return nil, err
		}
		// Complete nodes with no successors (signature 0).
		zero, err := ra.Project(prev, []ra.OutCol{
			{Col: schema.Column{Name: "ID", Type: value.KindInt}, Expr: ra.ColExpr(0)},
			{Col: schema.Column{Name: "sig", Type: value.KindInt}, Expr: ra.ConstExpr(value.Int(0))},
		})
		if err != nil {
			return nil, err
		}
		sigFull, err := ra.UnionByUpdate(zero, sig, []int{0}, ra.UBUFullOuter, e.Gov())
		if err != nil {
			return nil, err
		}
		// (ID, blk, sig) → new block = min ID per (blk, sig) group.
		trip := ra.EquiJoin(prev, sigFull, ra.EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin})
		groups, err := ra.GroupBy(trip, []int{1, 3}, []ra.AggSpec{
			ra.MinAgg(schema.Column{Name: "nb", Type: value.KindInt}, ra.ColExpr(0)),
		})
		if err != nil {
			return nil, err
		}
		joined := ra.EquiJoin(trip, groups, ra.EquiJoinSpec{LeftCols: []int{1, 3}, RightCols: []int{0, 1}, Algo: ra.HashJoin})
		next := ra.ProjectCols(joined, []int{0, 6})
		next.Sch = bSch
		if _, err := e.UnionByUpdate(bTab, next, []int{0}, ra.UBUFullOuter); err != nil {
			return nil, err
		}
		cur, err := e.Rel(bTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if cur.Equal(prev) {
			break
		}
	}
	res.Rel, err = e.Rel(bTab)
	return res, err
}

// canonicalBlocks rewrites block labels to the smallest member ID.
func canonicalBlocks(b *relation.Relation) (*relation.Relation, error) {
	mins, err := ra.GroupBy(b, []int{1}, []ra.AggSpec{
		ra.MinAgg(schema.Column{Name: "m", Type: value.KindInt}, ra.ColExpr(0)),
	})
	if err != nil {
		return nil, err
	}
	j := ra.EquiJoin(b, mins, ra.EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: ra.HashJoin})
	out := ra.ProjectCols(j, []int{0, 3})
	out.Sch = b.Sch
	return out, nil
}

// mix64 is SplitMix64's finalizer: a strong 64-bit hash for block ids.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
