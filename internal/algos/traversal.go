package algos

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// guardedMVStep computes one "V ← guard(V, Eᵀ·V)" iteration: the MV-join of
// Eq. (5)/(6)/(7) followed by an elementwise fold with the previous vector
// (the relaxation that keeps min/max monotone), returning the relation to
// union-by-update into V.
func guardedMVStep(e *engine.Engine, eTab, vTab string, sr semiring.Semiring) (*relation.Relation, error) {
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	vt, err := e.Cat.Get(vTab)
	if err != nil {
		return nil, err
	}
	// Join E.F = V.ID, group by E.T: values flow along edge direction.
	mv, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, sr)
	if err != nil {
		return nil, err
	}
	// Fold with the previous V on ID: guard = ⊕(new, old).
	old, err := vt.Materialize()
	if err != nil {
		return nil, err
	}
	joined := ra.EquiJoin(mv, old, ra.EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: ra.HashJoin})
	return ra.Project(joined, []ra.OutCol{
		{Col: schema.Column{Name: "ID", Type: value.KindInt}, Expr: ra.ColExpr(0)},
		{Col: schema.Column{Name: "vw", Type: value.KindFloat}, Expr: func(t relation.Tuple) (value.Value, error) {
			return sr.Plus(t[1], t[3]), nil
		}},
	})
}

// vectorFixpoint drives a guarded MV-join loop until V stops changing or
// maxIter is hit, union-by-updating V each round.
func vectorFixpoint(e *engine.Engine, eTab, vTab string, sr semiring.Semiring, p Params) (*Result, error) {
	res := &Result{}
	for iter := 0; iter < p.MaxRecursion; iter++ {
		start := time.Now()
		step, err := guardedMVStep(e, eTab, vTab, sr)
		if err != nil {
			return nil, err
		}
		// The changed-row delta is the convergence signal: no cloned
		// previous image, no full-vector compare.
		changed, err := e.UnionByUpdate(vTab, step, []int{0}, p.UBU)
		if err != nil {
			return nil, err
		}
		cur, err := e.Rel(vTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if changed.Len() == 0 {
			break
		}
	}
	var err error
	res.Rel, err = e.Rel(vTab)
	return res, err
}

// RunBFS computes reachability from p.Source (Eq. (5)): vw=1 spreads along
// edges under the (max, *) semiring.
func RunBFS(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab := tbl("bfs", "E"), tbl("bfs", "V")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	init := g.NodeRelation(func(i int) float64 {
		if int32(i) == p.Source {
			return 1
		}
		return 0
	})
	if err := e.StoreInto(vTab, init); err != nil {
		return nil, err
	}
	return vectorFixpoint(e, eTab, vTab, semiring.MaxTimes(), p)
}

// RunWCC computes weakly-connected components (Eq. (6)): vw starts as the
// node ID and the minimum label floods the (symmetrized) edges.
func RunWCC(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab := tbl("wcc", "E"), tbl("wcc", "V")
	if err := loadEdges(e, g, eTab, true); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	init := g.NodeRelation(func(i int) float64 { return float64(i) })
	if err := e.StoreInto(vTab, init); err != nil {
		return nil, err
	}
	return vectorFixpoint(e, eTab, vTab, semiring.MinTimes(), p)
}

// RunSSSP computes single-source shortest distances by Bellman-Ford
// (Eq. (7)) under the (min, +) semiring; unreached nodes stay +Inf.
func RunSSSP(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, vTab := tbl("sssp", "E"), tbl("sssp", "V")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(vTab, graph.NodeSchema()); err != nil {
		return nil, err
	}
	init := relation.New(graph.NodeSchema())
	for i := 0; i < g.N; i++ {
		w := value.Inf()
		if int32(i) == p.Source {
			w = value.Float(0)
		}
		init.Append(relation.Tuple{value.Int(int64(i)), w})
	}
	if err := e.StoreInto(vTab, init); err != nil {
		return nil, err
	}
	return vectorFixpoint(e, eTab, vTab, semiring.MinPlus(), p)
}

// RunTC computes the bounded transitive closure of Fig. 1 semi-naively:
// Δ ← Π(Δ ⋈ E) − TC; TC ← TC ∪ Δ, up to p.Depth joins (the Exp-C
// recursion-depth threshold; 0 means run to the true fixpoint).
func RunTC(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	depth := p.Depth // 0 means unbounded; capture before Defaults fills it
	p = p.Defaults(g)
	if depth > p.MaxRecursion {
		p.MaxRecursion = depth
	}
	eTab := tbl("tc", "E")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	edgesRel, err := et.Materialize()
	if err != nil {
		return nil, err
	}
	pairSch := schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
	}
	pairs := ra.Distinct(ra.ProjectCols(edgesRel, []int{0, 1}))
	pairs.Sch = pairSch
	tcTab, dTab := tbl("tc", "TC"), tbl("tc", "Delta")
	if _, err := e.EnsureTemp(tcTab, pairSch); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(dTab, pairSch); err != nil {
		return nil, err
	}
	if err := e.StoreInto(tcTab, pairs); err != nil {
		return nil, err
	}
	if err := e.StoreInto(dTab, pairs); err != nil {
		return nil, err
	}
	res := &Result{}
	for iter := 1; depth <= 0 || iter < depth; iter++ {
		start := time.Now()
		dt, err := e.Cat.Get(dTab)
		if err != nil {
			return nil, err
		}
		joined, err := e.Join(dt, et, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		next := ra.Distinct(ra.ProjectCols(joined, []int{0, 3}))
		next.Sch = pairSch
		tcRel, err := e.Rel(tcTab)
		if err != nil {
			return nil, err
		}
		delta := ra.Difference(next, tcRel)
		if delta.Len() == 0 {
			res.trace(start, tcRel.Len())
			break
		}
		if err := e.AppendInto(tcTab, delta); err != nil {
			return nil, err
		}
		if err := e.StoreInto(dTab, delta); err != nil {
			return nil, err
		}
		cur, err := e.Rel(tcTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if iter >= p.MaxRecursion {
			break
		}
	}
	res.Rel, err = e.Rel(tcTab)
	return res, err
}

// RunAPSP computes depth-bounded all-pairs shortest paths by linear
// recursion with MM-join (Exp-C): D ← min(D, D ⋈ E) under (min, +).
func RunAPSP(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, dTab := tbl("apsp", "E"), tbl("apsp", "D")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	base, err := et.Materialize()
	if err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(dTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(dTab, base); err != nil {
		return nil, err
	}
	sr := semiring.MinPlus()
	res := &Result{}
	for iter := 1; iter < p.Depth; iter++ {
		start := time.Now()
		dt, err := e.Cat.Get(dTab)
		if err != nil {
			return nil, err
		}
		prev, err := dt.Materialize()
		if err != nil {
			return nil, err
		}
		prev = prev.Clone()
		ext, err := e.MMJoin(dt, et, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, sr)
		if err != nil {
			return nil, err
		}
		// D ← min(D, ext) elementwise, keeping new pairs.
		merged, err := minMergePairs(prev, ext)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(dTab, merged); err != nil {
			return nil, err
		}
		cur, err := e.Rel(dTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if cur.Equal(prev) {
			break
		}
	}
	res.Rel, err = e.Rel(dTab)
	return res, err
}

// RunFloydWarshall computes all-pairs shortest paths by the nonlinear
// recursion of Eq. (8): E ← min(E, E ⋈ E) under (min, +), squaring path
// lengths each iteration (converges in ⌈log₂ n⌉ rounds).
func RunFloydWarshall(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	eTab, dTab := tbl("fw", "E"), tbl("fw", "D")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	base, err := e.Rel(eTab)
	if err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(dTab, graph.EdgeSchema()); err != nil {
		return nil, err
	}
	if err := e.StoreInto(dTab, base); err != nil {
		return nil, err
	}
	sr := semiring.MinPlus()
	res := &Result{}
	for iter := 0; iter < p.MaxRecursion; iter++ {
		start := time.Now()
		dt, err := e.Cat.Get(dTab)
		if err != nil {
			return nil, err
		}
		prev, err := dt.Materialize()
		if err != nil {
			return nil, err
		}
		prev = prev.Clone()
		// Nonlinear: the recursive relation joins itself (E₁ ⋈ E₂).
		sq, err := e.MMJoin(dt, dt, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, sr)
		if err != nil {
			return nil, err
		}
		merged, err := minMergePairs(prev, sq)
		if err != nil {
			return nil, err
		}
		if err := e.StoreInto(dTab, merged); err != nil {
			return nil, err
		}
		cur, err := e.Rel(dTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if cur.Equal(prev) {
			break
		}
	}
	res.Rel, err = e.Rel(dTab)
	return res, err
}

// minMergePairs merges two (F,T,ew) relations keeping the minimum weight
// per pair — the elementwise min of two sparse matrices.
func minMergePairs(a, b *relation.Relation) (*relation.Relation, error) {
	all := ra.UnionAll(a, b)
	out, err := ra.GroupBy(all, []int{0, 1}, []ra.AggSpec{
		ra.MinAgg(schema.Column{Name: "ew", Type: value.KindFloat}, ra.ColExpr(2)),
	})
	if err != nil {
		return nil, fmt.Errorf("algos: min-merging pair relations: %w", err)
	}
	out.Sch = graph.EdgeSchema()
	return out, nil
}

// RunDiameter estimates the diameter via a relational BFS from sample
// sources: the number of iterations the reachability frontier keeps
// growing is the eccentricity. The result relation holds one row
// (ID=sample source, vw=eccentricity); Iterations carries the estimate.
func RunDiameter(e *engine.Engine, g *graph.Graph, p Params) (*Result, error) {
	p = p.Defaults(g)
	r, err := RunBFS(e, g, p)
	if err != nil {
		return nil, err
	}
	ecc := r.Iterations - 1 // last iteration observes no change
	if ecc < 0 {
		ecc = 0
	}
	out := relation.New(graph.NodeSchema())
	out.Append(relation.Tuple{value.Int(int64(p.Source)), value.Float(float64(ecc))})
	return &Result{Rel: out, Iterations: ecc, IterTimes: r.IterTimes, IterRows: r.IterRows}, nil
}

// RunTCFrom computes the single-source reachability closure with the
// paper's "early selection" optimization (Section 4.3, citing Ordonez's
// Teradata work): the selection σ_{F=source} is pushed into the
// initialization so every iteration joins only the source's frontier,
// instead of computing the full TC and filtering afterwards. The result
// relation holds (source, T) pairs.
func RunTCFrom(e *engine.Engine, g *graph.Graph, source int32, p Params) (*Result, error) {
	depth := p.Depth
	p = p.Defaults(g)
	if depth > p.MaxRecursion {
		p.MaxRecursion = depth
	}
	eTab := tbl("tcs", "E")
	if err := loadEdges(e, g, eTab, false); err != nil {
		return nil, err
	}
	et, err := e.Cat.Get(eTab)
	if err != nil {
		return nil, err
	}
	edgesRel, err := et.Materialize()
	if err != nil {
		return nil, err
	}
	pairSch := schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
	}
	// Early selection: only the source's out-edges seed the recursion.
	init, err := ra.Select(edgesRel, func(t relation.Tuple) (bool, error) {
		return t[0].AsInt() == int64(source), nil
	})
	if err != nil {
		return nil, err
	}
	pairs := ra.Distinct(ra.ProjectCols(init, []int{0, 1}))
	pairs.Sch = pairSch
	tcTab, dTab := tbl("tcs", "TC"), tbl("tcs", "Delta")
	if _, err := e.EnsureTemp(tcTab, pairSch); err != nil {
		return nil, err
	}
	if _, err := e.EnsureTemp(dTab, pairSch); err != nil {
		return nil, err
	}
	if err := e.StoreInto(tcTab, pairs); err != nil {
		return nil, err
	}
	if err := e.StoreInto(dTab, pairs); err != nil {
		return nil, err
	}
	res := &Result{}
	for iter := 1; depth <= 0 || iter < depth; iter++ {
		start := time.Now()
		dt, err := e.Cat.Get(dTab)
		if err != nil {
			return nil, err
		}
		joined, err := e.Join(dt, et, []int{1}, []int{0})
		if err != nil {
			return nil, err
		}
		next := ra.Distinct(ra.ProjectCols(joined, []int{0, 3}))
		next.Sch = pairSch
		tcRel, err := e.Rel(tcTab)
		if err != nil {
			return nil, err
		}
		delta := ra.Difference(next, tcRel)
		if delta.Len() == 0 {
			res.trace(start, tcRel.Len())
			break
		}
		if err := e.AppendInto(tcTab, delta); err != nil {
			return nil, err
		}
		if err := e.StoreInto(dTab, delta); err != nil {
			return nil, err
		}
		cur, err := e.Rel(tcTab)
		if err != nil {
			return nil, err
		}
		res.trace(start, cur.Len())
		if iter >= p.MaxRecursion {
			break
		}
	}
	res.Rel, err = e.Rel(tcTab)
	return res, err
}
