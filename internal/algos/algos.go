// Package algos implements the paper's graph algorithms as relational
// programs over the engine: each algorithm is the "algebra + while" program
// of Section 4.3, executed the way the WITH+ compiler's PSM procedures
// execute it — temporary tables per step, MV-/MM-joins, anti-joins, and
// union-by-update between iterations.
package algos

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ra"
	"repro/internal/relation"
)

// Params carries the knobs the paper's experiments vary.
type Params struct {
	Source int32 // SSSP / BFS source node
	C      float64
	Iters  int // fixed iterations for PR / HITS / LP (paper: 15)
	K      int // K-core threshold (paper: 10 on Orkut, 5 elsewhere)
	Seed   int64
	Query  []int32 // KS keyword labels (paper: 3 labels)
	Depth  int     // KS depth (paper: 4); also TC/APSP recursion bound
	// MaxRecursion caps fixpoint loops (the paper's maxrecursion hint);
	// 0 means a dataset-sized default.
	MaxRecursion int
	// UBU selects the union-by-update implementation (default: full outer
	// join, the paper's winner).
	UBU ra.UBUImpl
	// Anti selects the anti-join implementation (default: left outer join,
	// used by the paper after Exp-1).
	Anti ra.AntiJoinImpl
}

// Defaults fills in the paper's standard parameter values.
func (p Params) Defaults(g *graph.Graph) Params {
	if p.C == 0 {
		p.C = 0.85
	}
	if p.Iters == 0 {
		p.Iters = 15
	}
	if p.K == 0 {
		p.K = 5
	}
	if p.Depth == 0 {
		p.Depth = 4
	}
	if p.Query == nil {
		p.Query = []int32{0, 1, 2}
	}
	if p.MaxRecursion == 0 {
		p.MaxRecursion = g.N + 1
	}
	// p.UBU and p.Anti default to the paper's post-Exp-1 choices via their
	// zero values (full outer join; left outer join).
	return p
}

// Result is an algorithm run: the final recursive relation plus
// per-iteration traces used by the Exp-C figures.
type Result struct {
	Rel        *relation.Relation
	Iterations int
	IterTimes  []time.Duration
	IterRows   []int // rows of the recursive relation after each iteration
}

func (r *Result) trace(start time.Time, rows int) {
	r.Iterations++
	r.IterTimes = append(r.IterTimes, time.Since(start))
	r.IterRows = append(r.IterRows, rows)
}

// RunFunc executes one algorithm on an engine for a graph.
type RunFunc func(e *engine.Engine, g *graph.Graph, p Params) (*Result, error)

// Algorithm describes one entry of the paper's Table 2 plus its runner.
type Algorithm struct {
	Code         string // the paper's abbreviation (PR, WCC, ...)
	Name         string
	Agg          string // aggregation used ("-" for none), per Table 2
	Linear       bool   // expressible with linear recursion
	Nonlinear    bool   // needs (or is shown with) nonlinear recursion
	Ops          []string
	DirectedOnly bool // TopoSort is skipped on the undirected datasets
	Run          RunFunc
}

// Registry returns the algorithms in the paper's benchmark order: the 10
// algorithms of Section 7 first, then the extras covered by Table 2 /
// Exp-C (TC, BFS, APSP, Floyd-Warshall, RWR, SimRank, Diameter).
func Registry() []Algorithm {
	return []Algorithm{
		{Code: "SSSP", Name: "Bellman-Ford", Agg: "min", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunSSSP},
		{Code: "WCC", Name: "Connected-Component", Agg: "min", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunWCC},
		{Code: "PR", Name: "PageRank", Agg: "sum", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunPageRank},
		{Code: "HITS", Name: "HITS", Agg: "sum", Nonlinear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunHITS},
		{Code: "TS", Name: "TopoSort", Agg: "-", Nonlinear: true, DirectedOnly: true,
			Ops: []string{"anti-join"}, Run: RunTopoSort},
		{Code: "KC", Name: "K-core", Agg: "count", Nonlinear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunKCore},
		{Code: "MIS", Name: "Maximal-Independent-Set", Agg: "max/min", Nonlinear: true,
			Ops: []string{"MV-join", "anti-join"}, Run: RunMIS},
		{Code: "LP", Name: "Label-Propagation", Agg: "count", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunLP},
		{Code: "MNM", Name: "Maximal-Node-Matching", Agg: "max/min", Nonlinear: true,
			Ops: []string{"MV-join", "anti-join"}, Run: RunMNM},
		{Code: "KS", Name: "Keyword-Search", Agg: "max", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunKS},

		{Code: "TC", Name: "Transitive-Closure", Agg: "-", Linear: true, Nonlinear: true,
			Ops: []string{}, Run: RunTC},
		{Code: "BFS", Name: "BFS", Agg: "max", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunBFS},
		{Code: "APSP", Name: "All-Pairs-Shortest-Path", Agg: "min", Linear: true,
			Ops: []string{"MM-join", "union-by-update"}, Run: RunAPSP},
		{Code: "FW", Name: "Floyd-Warshall", Agg: "min", Nonlinear: true,
			Ops: []string{"MM-join", "union-by-update"}, Run: RunFloydWarshall},
		{Code: "RWR", Name: "Random-Walk-with-Restart", Agg: "sum", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunRWR},
		{Code: "SR", Name: "SimRank", Agg: "sum", Linear: true,
			Ops: []string{"MM-join", "union-by-update"}, Run: RunSimRank},
		{Code: "DIAM", Name: "Diameter-Estimation", Agg: "-", Linear: true,
			Ops: []string{"MV-join", "union-by-update"}, Run: RunDiameter},
		{Code: "MCL", Name: "Markov-Clustering", Agg: "sum", Nonlinear: true,
			Ops: []string{"MM-join", "union-by-update"}, Run: RunMarkovClustering},
		{Code: "KT", Name: "K-truss", Agg: "count", Nonlinear: true,
			Ops: []string{"MV-join", "anti-join"}, Run: RunKTruss},
		{Code: "BSIM", Name: "Graph-Bisimulation", Agg: "-", Nonlinear: true,
			Ops: []string{"union-by-update"}, Run: RunBisimulation},
	}
}

// ByCode returns the registered algorithm with the given code.
func ByCode(code string) (Algorithm, error) {
	for _, a := range Registry() {
		if a.Code == code {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("algos: unknown algorithm %q", code)
}

// Benchmarked returns the 10 algorithms of the paper's Figs. 7 and 8.
func Benchmarked() []Algorithm {
	return Registry()[:10]
}

// table names are unique per algorithm so one engine can host several runs.
func tbl(algo, name string) string { return algo + "_" + name }

// loadEdges loads E(F,T,ew) as a base table (symmetrized when sym is set),
// reusing the table if the same algorithm already loaded it.
func loadEdges(e *engine.Engine, g *graph.Graph, name string, sym bool) error {
	_, err := e.EnsureBase(name, func() *relation.Relation {
		src := g
		if sym {
			src = g.Symmetrize()
		}
		return src.EdgeRelation()
	})
	return err
}
