package algos

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

// fp renders a result relation byte-for-byte: tab-separated values, one
// tuple per line, in engine output order. The CSR access path must be a
// pure physical swap — identical bytes to the hash path, not just
// identical sets — because its stable counting sort preserves the hash
// index's ascending-row probe order.
func fp(res *Result) string {
	if res == nil || res.Rel == nil {
		return ""
	}
	var b strings.Builder
	for _, tu := range res.Rel.Tuples {
		for i, v := range tu {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCSRVsHashAllAlgos is the differential gate for the CSR access path:
// the paper's 10 benchmarked algorithms, on every profile, must produce
// byte-identical output with the CSR path enabled (default) and disabled
// (DisableCSR forces the cached hash index everywhere). The oracle/db2
// runs additionally assert that the default engines really did serve
// joins from CSRs and the disabled engines never touched one, so the
// test can't degrade into comparing hash against hash.
func TestCSRVsHashAllAlgos(t *testing.T) {
	g := testGraph(5)
	p := Params{Iters: 8, K: 2} // the test graph's 5-core is empty; K=2 keeps KC non-trivial
	for _, prof := range testProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			var onBuilds, offBuilds int64
			for _, a := range Benchmarked() {
				run := func(disable bool) (string, *engine.Engine) {
					e := engine.New(prof)
					e.DisableCSR = disable
					res, err := a.Run(e, g, p)
					if err != nil {
						t.Fatalf("%s (csr=%v): %v", a.Code, !disable, err)
					}
					return fp(res), e
				}
				on, eOn := run(false)
				off, eOff := run(true)
				if on != off {
					t.Errorf("%s: CSR path diverged from hash path (%d vs %d bytes)",
						a.Code, len(on), len(off))
				}
				// TopoSort legitimately yields no rows on a cyclic graph.
				if on == "" && a.Code != "TS" {
					t.Errorf("%s returned no rows", a.Code)
				}
				onBuilds += eOn.Cnt.CSRBuilds
				offBuilds += eOff.Cnt.CSRBuilds
			}
			if prof.Name != "postgres" && onBuilds == 0 {
				t.Error("no algorithm built a CSR: the differential compared hash against hash")
			}
			if offBuilds != 0 {
				t.Errorf("DisableCSR engines built %d CSRs, want 0", offBuilds)
			}
		})
	}
}
