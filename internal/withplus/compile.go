package withplus

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/psm"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/sql"
)

// Trace records per-iteration progress of a WITH+ execution, used by the
// Exp-C figures (running time and accumulated tuples per iteration).
type Trace struct {
	Iterations int
	IterTimes  []time.Duration
	IterRows   []int
	// CycleDetected reports that a union/union-all iteration re-derived
	// tuples already in the recursive relation — the condition Oracle's
	// CYCLE clause warns about (Table 1, category E). The semi-naive
	// evaluation drops such tuples, so the recursion still terminates.
	CycleDetected bool
	// DeltaEnabled reports that at least one recursive branch was rewritten
	// to read the Δ frontier working table instead of the full recursive
	// relation (delta-driven semi-naive evaluation).
	DeltaEnabled bool
	// BranchModes records, per recursive branch, whether it runs against
	// the Δ frontier or falls back to full evaluation — and why (e.g.
	// "Q2: Δ frontier", "Q3: full evaluation (nonlinear recursion ...)").
	BranchModes []string
	// DeltaRows is aligned with IterRows: the number of rows each branch
	// evaluation actually changed (appended or updated) in that step.
	DeltaRows []int
}

// Program is a checked, compiled WITH+ statement bound to an engine.
type Program struct {
	With *sql.WithStmt
	Proc *psm.Proc

	eng       *engine.Engine
	exec      *sql.Exec
	trace     *Trace
	changed   bool // did the last iteration change R?
	recursive []bool

	// Delta-driven semi-naive state. branchDelta marks the recursive
	// branches statically proven safe to read the Δ frontier (see
	// FrontierReason); when any branch qualifies, deltaTab names the Δ
	// working table refreshed once per iteration from pending — the union
	// of the changed rows every branch produced this iteration. recSet is
	// the seeded distinct-set over R that makes the append-side Difference
	// O(Δ) instead of O(|R|) per iteration; deltaSums accumulates per-branch
	// changed rows for the EXPLAIN ANALYZE plan annotation.
	branchDelta []bool
	anyDelta    bool
	deltaTab    string
	recSet      *ra.TupleSet
	pending     *relation.Relation
	deltaSums   []int64

	// analyze mode (RunAnalyzed): every compiled SELECT runs through
	// sql.Exec.RunAnalyzed and its annotated plan is merged into the
	// per-section accumulator, collapsing the loop's iterations into one
	// tree per subquery.
	analyze   bool
	plans     map[string]*obs.PlanNode
	planOrder []string
}

// Prepare parses, checks (Theorem 5.1), and compiles src into a PSM
// procedure over eng.
func Prepare(eng *engine.Engine, src string) (*Program, error) {
	w, err := sql.ParseWith(src)
	if err != nil {
		return nil, err
	}
	return PrepareStmt(eng, w)
}

// PrepareStmt checks and compiles an already-parsed statement.
func PrepareStmt(eng *engine.Engine, w *sql.WithStmt) (*Program, error) {
	if err := Check(w); err != nil {
		return nil, err
	}
	if eng.Cat.Has(w.RecName) {
		return nil, fmt.Errorf("withplus: recursive relation %q collides with an existing table", w.RecName)
	}
	p := &Program{
		With:  w,
		eng:   eng,
		exec:  sql.NewExec(eng),
		trace: &Trace{},
	}
	p.recursive = make([]bool, len(w.Branches))
	for i, br := range w.Branches {
		p.recursive[i] = branchReferencesRec(br, w.RecName)
	}
	p.planFrontier()
	p.Proc = p.buildProc()
	return p, nil
}

// planFrontier decides, per recursive branch, whether semi-naive evaluation
// may read the Δ frontier (FrontierReason) and records the decision — and
// the fallback reason when not — in Trace.BranchModes.
func (p *Program) planFrontier() {
	w := p.With
	p.branchDelta = make([]bool, len(w.Branches))
	p.deltaSums = make([]int64, len(w.Branches))
	deltaTab := w.RecName + "__delta"
	for i := range w.Branches {
		if !p.recursive[i] {
			continue
		}
		reason := FrontierReason(w, i)
		switch {
		case reason != "":
			p.trace.BranchModes = append(p.trace.BranchModes,
				fmt.Sprintf("Q%d: full evaluation (%s)", i+1, reason))
		case p.eng.DisableDelta:
			p.trace.BranchModes = append(p.trace.BranchModes,
				fmt.Sprintf("Q%d: full evaluation (delta evaluation disabled)", i+1))
		case p.eng.Cat.Has(deltaTab):
			p.trace.BranchModes = append(p.trace.BranchModes,
				fmt.Sprintf("Q%d: full evaluation (Δ working table %s collides with an existing table)", i+1, deltaTab))
		default:
			p.branchDelta[i] = true
			p.anyDelta = true
			p.trace.BranchModes = append(p.trace.BranchModes,
				fmt.Sprintf("Q%d: Δ frontier", i+1))
		}
	}
	if p.anyDelta {
		p.deltaTab = deltaTab
	}
	p.trace.DeltaEnabled = p.anyDelta
}

// Run calls the compiled procedure and evaluates the final query.
func (p *Program) Run() (*relation.Relation, *Trace, error) {
	if err := p.Proc.Call(p.eng); err != nil {
		return nil, nil, err
	}
	out, err := p.runQuery(p.With.Final, "final query")
	if err != nil {
		return nil, nil, err
	}
	return out, p.trace, nil
}

// runQuery evaluates one compiled SELECT, merging its annotated plan into
// the named section when the program runs in analyze mode. Sections are
// stable across iterations (one per subquery), so a 15-iteration loop
// renders as one tree with loops=15 rather than 15 trees.
func (p *Program) runQuery(s *sql.SelectStmt, section string) (*relation.Relation, error) {
	if !p.analyze {
		return p.exec.Run(s)
	}
	r, plan, err := p.exec.RunAnalyzed(s)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if cur, ok := p.plans[section]; ok {
			cur.Merge(plan)
		} else {
			p.plans[section] = plan
			p.planOrder = append(p.planOrder, section)
		}
	}
	return r, nil
}

// AnalysisSection is one subquery's merged plan tree within an Analysis.
type AnalysisSection struct {
	Title string
	Plan  *obs.PlanNode
}

// Analysis is the EXPLAIN ANALYZE result of a WITH+ statement: the compiled
// procedure with per-statement execution stats, the per-iteration trace, and
// one merged plan tree per subquery (initialization, computed-by, recursive,
// and final), with Loops counting how many iterations ran each tree.
type Analysis struct {
	Proc     *psm.Proc
	Stats    *psm.ProcStats
	Trace    *Trace
	Sections []AnalysisSection
	Dur      time.Duration
}

// Render draws the full EXPLAIN ANALYZE report: the annotated procedure
// followed by each subquery's plan tree.
func (a *Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (total time %s)\n", a.Dur.Round(time.Microsecond))
	b.WriteString(a.Proc.StringWithStats(a.Stats))
	b.WriteString("\n")
	for _, s := range a.Sections {
		fmt.Fprintf(&b, "\n%s:\n%s", s.Title, s.Plan.Render())
	}
	return b.String()
}

// RunAnalyzed executes the program with full instrumentation: every PSM
// statement is timed, every compiled SELECT builds an annotated plan tree,
// and per-iteration trees are merged per subquery. The result relation is
// returned together with the analysis.
func (p *Program) RunAnalyzed() (*relation.Relation, *Analysis, error) {
	p.analyze = true
	p.plans = map[string]*obs.PlanNode{}
	p.planOrder = nil
	defer func() { p.analyze = false }()
	t0 := time.Now()
	stats, err := p.Proc.CallWithStats(p.eng)
	if err != nil {
		return nil, nil, err
	}
	out, err := p.runQuery(p.With.Final, "final query")
	if err != nil {
		return nil, nil, err
	}
	for i := range p.With.Branches {
		if !p.recursive[i] {
			continue
		}
		if plan, ok := p.plans[fmt.Sprintf("recursive subquery Q%d", i+1)]; ok {
			plan.Extra = fmt.Sprintf("delta_rows=%d", p.deltaSums[i])
		}
	}
	a := &Analysis{Proc: p.Proc, Stats: stats, Trace: p.trace, Dur: time.Since(t0)}
	for _, k := range p.planOrder {
		a.Sections = append(a.Sections, AnalysisSection{Title: k, Plan: p.plans[k]})
	}
	return out, a, nil
}

// Cleanup drops the temporary tables the program created so the engine can
// run another statement with the same relation names.
func (p *Program) Cleanup() {
	for _, name := range p.eng.Cat.TempNames() {
		if name == p.With.RecName || name == p.deltaTab || isComputedName(p.With, name) {
			_ = p.eng.Cat.Drop(name)
		}
	}
}

func isComputedName(w *sql.WithStmt, name string) bool {
	for _, br := range w.Branches {
		for _, def := range br.Computed {
			if def.Name == name {
				return true
			}
		}
	}
	return false
}

// buildProc emits the Algorithm 1 shape: initialize R from the
// non-recursive subqueries, then loop { refresh computed-by tables;
// evaluate recursive subqueries; union / union-by-update into R; exit when
// no subquery changed R }.
func (p *Program) buildProc() *psm.Proc {
	w := p.With
	var steps []psm.Stmt

	// Initialization: evaluate init branches (with their computed-by
	// tables) and create R from the union of their results.
	steps = append(steps, &psm.Do{
		Label: fmt.Sprintf("initialize %s from %d initialization subquery(ies)", w.RecName, countFalse(p.recursive)),
		Fn:    p.initRec,
	})

	var body []psm.Stmt
	body = append(body, &psm.Do{
		Label: "begin iteration (reset change flags)",
		Fn: func(ctx *psm.Ctx) error {
			p.changed = false
			return nil
		},
	})
	for i, br := range w.Branches {
		if !p.recursive[i] {
			continue
		}
		for _, def := range br.Computed {
			def := def
			body = append(body, &psm.InsertSelect{
				Table:    def.Name,
				Truncate: true,
				Label:    fmt.Sprintf("computed by %s", def.Name),
				Query: func(ctx *psm.Ctx) (*relation.Relation, error) {
					return p.evalComputed(def)
				},
			})
		}
		i := i
		br := br
		marker := ""
		if p.branchDelta[i] {
			marker = " (Δ frontier)"
		}
		body = append(body, &psm.Do{
			Label: fmt.Sprintf("evaluate recursive subquery Q%d%s and %s into %s", i+1, marker, w.Ops[i-1], w.RecName),
			Fn: func(ctx *psm.Ctx) error {
				return p.stepBranch(ctx, i, br)
			},
		})
	}
	if p.anyDelta {
		// Advance the frontier: Δ becomes exactly the rows this iteration
		// added to R, so next iteration's rewritten branches probe only the
		// new work. Runs before the exit test — when nothing changed the
		// (empty) refresh is the loop's last write.
		body = append(body, &psm.InsertSelect{
			Table:    p.deltaTab,
			Truncate: true,
			Label:    fmt.Sprintf("new rows of %s this iteration (advance Δ frontier)", w.RecName),
			Query: func(ctx *psm.Ctx) (*relation.Relation, error) {
				d := p.pending
				p.pending = nil
				if d == nil {
					cur, err := p.eng.Rel(w.RecName)
					if err != nil {
						return nil, err
					}
					d = &relation.Relation{Sch: cur.Sch}
				}
				return d, nil
			},
		})
	}
	body = append(body, &psm.ExitIf{
		Label: "no recursive subquery changed " + w.RecName,
		Cond: func(ctx *psm.Ctx) (bool, error) {
			return !p.changed, nil
		},
	})
	steps = append(steps, &psm.Loop{Body: body, MaxIter: w.MaxRec})
	return &psm.Proc{Name: "F_" + w.RecName, Steps: steps}
}

func countFalse(bs []bool) int {
	n := 0
	for _, b := range bs {
		if !b {
			n++
		}
	}
	return n
}

// initRec evaluates the initialization branches and creates the recursive
// temp table with the declared column names.
func (p *Program) initRec(ctx *psm.Ctx) error {
	w := p.With
	var acc *relation.Relation
	for i, br := range w.Branches {
		if p.recursive[i] {
			continue
		}
		for _, def := range br.Computed {
			r, err := p.evalComputed(def)
			if err != nil {
				return err
			}
			if _, err := p.eng.EnsureTemp(def.Name, r.Sch); err != nil {
				return err
			}
			if err := p.eng.StoreInto(def.Name, r); err != nil {
				return err
			}
		}
		r, err := p.runQuery(br.Query, fmt.Sprintf("initialization subquery Q%d", i+1))
		if err != nil {
			return err
		}
		if acc == nil {
			acc = r
			continue
		}
		if !acc.Sch.UnionCompatible(r.Sch) {
			return fmt.Errorf("withplus: initialization subqueries disagree on arity (%d vs %d)", acc.Sch.Arity(), r.Sch.Arity())
		}
		acc = ra.UnionAll(acc, r)
	}
	if acc == nil {
		return fmt.Errorf("withplus: no initialization subquery")
	}
	sch := acc.Sch
	if len(w.RecCols) > 0 {
		if len(w.RecCols) != sch.Arity() {
			return fmt.Errorf("withplus: %s declares %d columns but initialization yields %d", w.RecName, len(w.RecCols), sch.Arity())
		}
		sch = make(schema.Schema, len(w.RecCols))
		for i, name := range w.RecCols {
			sch[i] = schema.Column{Name: name, Type: acc.Sch[i].Type}
		}
	}
	acc = &relation.Relation{Sch: sch, Tuples: acc.Tuples}
	ctx.SetRows(int64(acc.Len()))
	if _, err := p.eng.EnsureTemp(w.RecName, sch); err != nil {
		return err
	}
	if err := p.eng.StoreInto(w.RecName, acc); err != nil {
		return err
	}
	// Seed the semi-naive machinery: the distinct-set over R makes the
	// append-side Difference O(Δ), and Δ0 = R0 so the first iteration's
	// rewritten branches see every initial row.
	p.recSet = nil
	p.pending = nil
	for i := range p.deltaSums {
		p.deltaSums[i] = 0
	}
	if !p.eng.DisableDelta && p.hasUnionRecursive() {
		p.recSet = ra.NewTupleSet(acc)
	}
	if p.anyDelta {
		if _, err := p.eng.EnsureTemp(p.deltaTab, sch); err != nil {
			return err
		}
		if err := p.eng.StoreInto(p.deltaTab, acc); err != nil {
			return err
		}
	}
	return nil
}

// hasUnionRecursive reports whether any recursive branch accumulates by
// union / union all (the only ops the seeded distinct-set accelerates).
func (p *Program) hasUnionRecursive() bool {
	for i := range p.With.Branches {
		if p.recursive[i] && p.With.Ops[i-1] != sql.WithUnionByUpdate {
			return true
		}
	}
	return false
}

// evalComputed evaluates one computed-by definition, applying its declared
// column names.
func (p *Program) evalComputed(def sql.ComputedDef) (*relation.Relation, error) {
	r, err := p.runQuery(def.Query, "computed by "+def.Name)
	if err != nil {
		return nil, err
	}
	if len(def.Cols) > 0 {
		if len(def.Cols) != r.Sch.Arity() {
			return nil, fmt.Errorf("withplus: %s declares %d columns but its query yields %d", def.Name, len(def.Cols), r.Sch.Arity())
		}
		sch := make(schema.Schema, len(def.Cols))
		for i, name := range def.Cols {
			sch[i] = schema.Column{Name: name, Type: r.Sch[i].Type}
		}
		r = &relation.Relation{Sch: sch, Tuples: r.Tuples}
	}
	if !p.eng.Cat.Has(def.Name) {
		if _, err := p.eng.EnsureTemp(def.Name, r.Sch); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// stepBranch evaluates one recursive subquery and folds it into R by the
// statement's set operation, updating the change flag and trace. Each
// branch starts with a governor checkpoint, so a cancelled or over-budget
// run stops at a statement boundary even when the loop body is long.
func (p *Program) stepBranch(ctx *psm.Ctx, i int, br sql.WithBranch) error {
	w := p.With
	if err := p.eng.Gov().Check(); err != nil {
		return err
	}
	start := time.Now()
	if p.branchDelta[i] {
		// Frontier rewrite: bind the recursive relation's name to the Δ
		// working table for this evaluation only, so every scan of R in the
		// branch reads last iteration's new rows instead of all of R.
		d, err := p.eng.Rel(p.deltaTab)
		if err != nil {
			return err
		}
		p.exec.Override[w.RecName] = d
		p.exec.Delta[w.RecName] = true
		defer func() {
			delete(p.exec.Override, w.RecName)
			delete(p.exec.Delta, w.RecName)
		}()
	}
	q, err := p.runQuery(br.Query, fmt.Sprintf("recursive subquery Q%d", i+1))
	if err != nil {
		return err
	}
	ctx.SetRows(int64(q.Len()))
	before, err := p.eng.Rel(w.RecName)
	if err != nil {
		return err
	}
	changed := false
	deltaRows := 0
	switch w.Ops[i-1] {
	case sql.WithUnionByUpdate:
		// The engine's UBU reports the changed-row delta directly — no
		// cloned previous image, no full-vector compare.
		var ubuDelta *relation.Relation
		if len(w.UBUCols) == 0 {
			// Attribute-less form: replace R wholesale (DROP/ALTER).
			ubuDelta, err = p.eng.UnionByUpdate(w.RecName, retag(q, before.Sch), nil, ra.UBUReplace)
		} else {
			keys := make([]int, len(w.UBUCols))
			for ki, c := range w.UBUCols {
				idx := before.Sch.IndexOf(c)
				if idx < 0 {
					return fmt.Errorf("withplus: union by update key %q is not a column of %s", c, w.RecName)
				}
				keys[ki] = idx
			}
			ubuDelta, err = p.eng.UnionByUpdate(w.RecName, retag(q, before.Sch), keys, ra.UBUFullOuter)
		}
		if err != nil {
			return err
		}
		deltaRows = ubuDelta.Len()
		changed = deltaRows > 0
	default:
		// union / union all accumulate; the with+ implementation is
		// semi-naive (Exp-C): only rows not already in R are appended. The
		// seeded distinct-set remembers R across iterations, so the
		// Difference costs O(|dedup|) probes, not O(|R|) rebuild work.
		dedup := ra.Distinct(retag(q, before.Sch))
		var delta *relation.Relation
		if p.recSet != nil {
			delta = p.recSet.DiffAdd(dedup)
		} else {
			delta = ra.Difference(dedup, before)
		}
		if delta.Len() < dedup.Len() {
			p.trace.CycleDetected = true
		}
		deltaRows = delta.Len()
		if delta.Len() > 0 {
			if err := p.eng.AppendInto(w.RecName, delta); err != nil {
				return err
			}
			changed = true
			if p.anyDelta {
				if p.pending == nil {
					p.pending = delta
				} else {
					p.pending = ra.UnionAll(p.pending, delta)
				}
			}
		}
	}
	if changed {
		p.changed = true
	}
	cur, err := p.eng.Rel(w.RecName)
	if err != nil {
		return err
	}
	p.trace.Iterations++
	p.trace.IterTimes = append(p.trace.IterTimes, time.Since(start))
	p.trace.IterRows = append(p.trace.IterRows, cur.Len())
	p.trace.DeltaRows = append(p.trace.DeltaRows, deltaRows)
	p.deltaSums[i] += int64(deltaRows)
	return nil
}

// retag gives the query result the recursive relation's schema so union
// and update steps line up positionally.
func retag(r *relation.Relation, sch schema.Schema) *relation.Relation {
	if r.Sch.Arity() != sch.Arity() {
		return r // let the engine report the arity error
	}
	return &relation.Relation{Sch: sch, Tuples: r.Tuples}
}

// Run parses, checks, compiles, and executes a WITH+ statement in one call.
func Run(eng *engine.Engine, src string) (*relation.Relation, *Trace, error) {
	p, err := Prepare(eng, src)
	if err != nil {
		return nil, nil, err
	}
	defer p.Cleanup()
	return p.Run()
}
