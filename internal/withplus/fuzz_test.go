package withplus

import (
	"testing"

	"repro/internal/sql"
)

// FuzzWithCheck: arbitrary WITH+ texts must parse-or-error and check-or-
// error without panicking.
func FuzzWithCheck(f *testing.F) {
	seeds := []string{
		"with R(a) as ((select 1)) select a from R",
		"with TC(F, T) as ((select F, T from E) union all (select TC.F, E.T from TC, E where TC.T = E.F) maxrecursion 3) select F, T from TC",
		"with P(ID, W) as ((select ID, 0.0 from V) union by update ID (select T, sum(W * ew) from P, E where P.ID = E.F group by T)) select ID from P",
		"with H(a) as ((select 1 from V) union all (select a from X computed by X as select a + 1 x from H;)) select a from H",
		"with R as ((select 1) union by update (select 2 from R))) select 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		w, err := sql.ParseWith(input)
		if err != nil {
			return
		}
		_ = Check(w)
	})
}
