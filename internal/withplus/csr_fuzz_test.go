package withplus

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sql"
)

// ordered renders a relation byte-for-byte in engine output order. Unlike
// multiset, it does not sort: the CSR access path is a physical swap under
// the hash-join plan and must reproduce the hash path's exact row order.
func ordered(r *relation.Relation) string {
	var b strings.Builder
	for _, tu := range r.Tuples {
		for i, v := range tu {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzCSRVsHash cross-checks the CSR adjacency access path against the
// cached-hash-index path on arbitrary WITH+ texts: whenever both modes
// execute successfully, they must produce byte-identical results — same
// rows in the same order, not just the same set.
func FuzzCSRVsHash(f *testing.F) {
	seeds := []string{
		"with TC(F, T) as ((select F, T from E) union all (select TC.F, E.T from TC, E where TC.T = E.F) maxrecursion 3) select F, T from TC",
		"with R(a) as ((select F from E) union all (select E.T from R, E where R.a = E.F)) select a from R",
		"with R(a) as ((select F from E) union all (select a.a from R a, R b where a.a = b.a) maxrecursion 2) select a from R",
		"with P(ID, W) as ((select ID, 0.0 from V) union by update ID (select E.T, sum(W * ew) from P, E where P.ID = E.F group by E.T) maxrecursion 3) select ID from P",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := cycleGraph(6)
	f.Fuzz(func(t *testing.T, input string) {
		w, err := sql.ParseWith(input)
		if err != nil {
			return
		}
		// Clamp runaway recursion so the fuzzer spends time on variety.
		if w.MaxRec == 0 || w.MaxRec > 6 {
			w.MaxRec = 6
		}
		run := func(disable bool) (string, error) {
			eng := engine.New(engine.OracleLike())
			eng.DisableCSR = disable
			if _, err := eng.LoadBase("E", g.EdgeRelation()); err != nil {
				return "", err
			}
			if _, err := eng.LoadBase("V", g.NodeRelation(nil)); err != nil {
				return "", err
			}
			p, err := PrepareStmt(eng, w)
			if err != nil {
				return "", err
			}
			defer p.Cleanup()
			out, _, err := p.Run()
			if err != nil {
				return "", err
			}
			return ordered(out), nil
		}
		gotCSR, errCSR := run(false)
		gotHash, errHash := run(true)
		if errCSR != nil || errHash != nil {
			// Agreement is only required when both modes complete.
			return
		}
		if gotCSR != gotHash {
			t.Fatalf("csr and hash paths differ on %q: %d vs %d bytes",
				input, len(gotCSR), len(gotHash))
		}
	})
}
