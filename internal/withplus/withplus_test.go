package withplus

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/refimpl"
	"repro/internal/sql"
)

// loadGraphDB loads E(F,T,ew), En (out-degree normalized), and V(ID,vw)
// base tables for a graph.
func loadGraphDB(t *testing.T, eng *engine.Engine, g *graph.Graph) {
	t.Helper()
	if _, err := eng.LoadBase("E", g.EdgeRelation()); err != nil {
		t.Fatal(err)
	}
	deg := g.OutDegrees()
	norm := graph.New(g.N, g.Directed)
	for _, e := range g.Edges {
		norm.AddEdge(e.F, e.T, 1/float64(deg[e.F]))
	}
	if _, err := eng.LoadBase("En", norm.EdgeRelation()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LoadBase("V", g.NodeRelation(nil)); err != nil {
		t.Fatal(err)
	}
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), int32((i+1)%n), 1)
		if i%3 == 0 {
			g.AddEdge(int32(i), int32((i+2)%n), 1)
		}
	}
	return g
}

func TestParseWithFig3(t *testing.T) {
	src := `
with
P(ID, W) as (
  (select V.ID, 0.0 from V)
  union by update ID
  (select E.T, 0.85 * sum(W * ew) + 0.15 from P, E
   where P.ID = E.F group by E.T)
  maxrecursion 10)
select ID, W from P`
	w, err := sql.ParseWith(src)
	if err != nil {
		t.Fatal(err)
	}
	if w.RecName != "P" || len(w.RecCols) != 2 || w.MaxRec != 10 {
		t.Errorf("header: %+v", w)
	}
	if len(w.Branches) != 2 || len(w.Ops) != 1 || w.Ops[0] != sql.WithUnionByUpdate {
		t.Errorf("branches/ops wrong")
	}
	if len(w.UBUCols) != 1 || w.UBUCols[0] != "ID" {
		t.Errorf("ubu cols: %v", w.UBUCols)
	}
	if !w.HasUBU() {
		t.Error("HasUBU")
	}
	if err := Check(w); err != nil {
		t.Errorf("Fig 3 must check: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"with as (select 1) select 1",
		"with R as select 1",
		"with R(a as (select 1) select 1",
		"with R as ((select 1) union by update maxrecursion x) select 1",
		"with R as ((select a from t) union all select a from r2 computed by as select 1) select 1",
	}
	for _, src := range bad {
		if _, err := sql.ParseWith(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

func TestCheckRestrictions(t *testing.T) {
	check := func(src string) error {
		w, err := sql.ParseWith(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return Check(w)
	}
	// First subquery references R: no initialization.
	if err := check("with R(a) as ((select a from R) union all (select a from R, E where a = F)) select a from R"); err == nil {
		t.Error("missing initialization must fail")
	}
	// Initialization after recursion.
	if err := check("with R(a) as ((select F from E) union all (select a from R, E where a = F) union all (select T from E)) select a from R"); err == nil {
		t.Error("init after recursive must fail")
	}
	// UBU with three branches.
	if err := check("with R(a,b) as ((select F, T from E) union by update a (select a, b from R) union by update a (select a, b from R)) select a from R"); err == nil {
		t.Error("double union by update must fail")
	}
	// Computed-by self reference.
	if err := check(`with R(a) as ((select F from E) union all
		(select a from X computed by X as select a from X)) select a from R`); err == nil {
		t.Error("computed-by cycle must fail")
	}
	// Computed-by forward reference.
	if err := check(`with R(a) as ((select F from E) union all
		(select x from A computed by A as select y x from B; B as select a y from R)) select a from R`); err == nil {
		t.Error("forward computed-by reference must fail")
	}
	// A valid TC is accepted.
	if err := check("with TC(F, T) as ((select F, T from E) union all (select TC.F, E.T from TC, E where TC.T = E.F)) select F, T from TC"); err != nil {
		t.Errorf("TC must check: %v", err)
	}
}

func TestTCThroughWithPlus(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 25, M: 60, Directed: true, Skew: 2.0, Seed: 9})
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, trace, err := Run(eng, `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F))
select F, T from TC`)
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.TransitiveClosure(g, 0)
	if out.Len() != len(want) {
		t.Fatalf("|TC| = %d, want %d", out.Len(), len(want))
	}
	for _, tu := range out.Tuples {
		if !want[tu[0].AsInt()<<32|tu[1].AsInt()] {
			t.Fatalf("extra pair %v", tu)
		}
	}
	if trace.Iterations < 2 {
		t.Errorf("trace iterations = %d", trace.Iterations)
	}
}

func TestPageRankFig3Converges(t *testing.T) {
	// Fig. 3 verbatim (0-initialized) with c=0.5: on a graph where every
	// node has an in-edge it converges to the true PageRank fixpoint.
	g := cycleGraph(12)
	want := refimpl.PageRank(g, 0.5, 80)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	n := g.N
	src := fmt.Sprintf(`
with
P(ID, W) as (
  (select V.ID, 0.0 from V)
  union by update ID
  (select E.T, 0.5 * sum(W * ew) + 0.5 / %d from P, En E
   where P.ID = E.F group by E.T)
  maxrecursion 80)
select ID, W from P`, n)
	out, trace, err := Run(eng, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("rows = %d", out.Len())
	}
	for _, tu := range out.Tuples {
		if math.Abs(tu[1].AsFloat()-want[tu[0].AsInt()]) > 1e-9 {
			t.Fatalf("PR[%v] = %v, want %v", tu[0], tu[1], want[tu[0].AsInt()])
		}
	}
	// The loop may exit before maxrecursion once the float fixpoint is
	// bit-exact (the paper's R-unchanged exit condition).
	if trace.Iterations < 20 || trace.Iterations > 80 {
		t.Errorf("iterations = %d", trace.Iterations)
	}
}

// pageRankCompleteSQL is the dangling-complete formulation used by the
// experiments: a left outer join against V keeps every node in P so each
// iteration equals the textbook PageRank step exactly.
func pageRankCompleteSQL(n, iters int, c float64) string {
	return fmt.Sprintf(`
with
P(ID, W) as (
  (select V.ID, 1.0 / %[1]d from V)
  union by update ID
  (select V.ID, %[3]g * coalesce(s.w, 0.0) + %[4]g / %[1]d
   from V left outer join
     (select E.T tid, sum(W * ew) w from P, En E where P.ID = E.F group by E.T) s
   on V.ID = s.tid)
  maxrecursion %[2]d)
select ID, W from P`, n, iters, c, 1-c)
}

func TestPageRankExactThroughWithPlus(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 40, M: 150, Directed: true, Skew: 2.1, Seed: 11})
	want := refimpl.PageRank(g, 0.85, 15)
	for _, prof := range []engine.Profile{engine.OracleLike(), engine.DB2Like(), engine.PostgresLike(true)} {
		eng := engine.New(prof)
		loadGraphDB(t, eng, g)
		out, trace, err := Run(eng, pageRankCompleteSQL(g.N, 15, 0.85))
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		for _, tu := range out.Tuples {
			if math.Abs(tu[1].AsFloat()-want[tu[0].AsInt()]) > 1e-9 {
				t.Fatalf("%s: PR[%v] = %v, want %v", prof.Name, tu[0], tu[1], want[tu[0].AsInt()])
			}
		}
		if trace.Iterations != 15 {
			t.Errorf("%s: iterations = %d", prof.Name, trace.Iterations)
		}
	}
}

func TestTopoSortFig5ThroughWithPlus(t *testing.T) {
	g := graph.GenerateDAG(40, 120, 13)
	want := refimpl.TopoSort(g)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, `
with
Topo(ID, L) as (
  (select ID, 0 from V
   where ID not in select E.T from E)
  union all
  (select ID, L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1 as
       select V.ID from V
       where ID not in select ID from Topo;
     E_1 as
       select E.F, E.T from V_1, E
       where V_1.ID = E.F;
     T_n as
       select ID, L from V_1, L_n
       where ID not in select T from E_1;))
select ID, L from Topo`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, tu := range out.Tuples {
		got[tu[0].AsInt()] = tu[1].AsInt()
	}
	if len(got) != g.N {
		t.Fatalf("sorted %d of %d", len(got), g.N)
	}
	for v, l := range want {
		if got[int64(v)] != int64(l) {
			t.Fatalf("level[%d] = %d, want %d", v, got[int64(v)], l)
		}
	}
}

func TestHITSFig6ThroughWithPlus(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 30, M: 110, Directed: true, Skew: 2.0, Seed: 17})
	wantHub, wantAuth := refimpl.HITS(g, 10)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	// Fig. 6 with dangling-complete authority/hub vectors (left outer
	// joins keep nodes with no in-/out-edges at 0, matching the reference).
	out, trace, err := Run(eng, `
with
H(ID, h, a) as (
  (select ID, 1.0, 1.0 from V)
  union by update
  (select R_ha.ID, h2 / sqrt(nh), a2 / sqrt(na)
   from R_ha, R_n
   computed by
     H_h as select ID, h from H;
     R_a as
       select V.ID, coalesce(s.aa, 0.0) a2 from V left outer join
         (select E.T tid, sum(h * ew) aa from H_h, E where H_h.ID = E.F group by E.T) s
       on V.ID = s.tid;
     R_h as
       select V.ID, coalesce(s.hh, 0.0) h2 from V left outer join
         (select E.F fid, sum(a2 * ew) hh from R_a, E where R_a.ID = E.T group by E.F) s
       on V.ID = s.fid;
     R_ha as select R_h.ID ID, h2, a2 from R_h, R_a where R_h.ID = R_a.ID;
     R_n(nh, na) as select sum(h2 * h2), sum(a2 * a2) from R_ha;)
  maxrecursion 10)
select ID, h, a from H`)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Iterations != 10 {
		t.Errorf("iterations = %d", trace.Iterations)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		if math.Abs(tu[1].AsFloat()-wantHub[id]) > 1e-9 {
			t.Fatalf("hub[%d] = %v, want %v", id, tu[1], wantHub[id])
		}
		if math.Abs(tu[2].AsFloat()-wantAuth[id]) > 1e-9 {
			t.Fatalf("auth[%d] = %v, want %v", id, tu[2], wantAuth[id])
		}
	}
}

func TestSSSPThroughWithPlus(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 35, M: 120, Directed: true, Skew: 2.0, Seed: 19})
	for i := range g.Edges {
		g.Edges[i].W = float64(1 + i%4)
	}
	want := refimpl.BellmanFord(g, 0)
	eng := engine.New(engine.DB2Like())
	loadGraphDB(t, eng, g)
	// Relaxation with the guard min(old, new) via least().
	out, _, err := Run(eng, `
with
D(ID, dist) as (
  (select ID, 1e18 from V where ID <> 0)
  union all
  (select ID, 0.0 from V where ID = 0)
  union by update ID
  (select D.ID, least(D.dist, s.nd) from D,
     (select E.T tid, min(dist + ew) nd from D, E where D.ID = E.F group by E.T) s
   where D.ID = s.tid))
select ID, dist from D`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		w := want[id]
		got := tu[1].AsFloat()
		if math.IsInf(w, 1) {
			if got < 1e17 {
				t.Fatalf("dist[%d] = %v, want unreachable", id, got)
			}
			continue
		}
		if got != w {
			t.Fatalf("dist[%d] = %v, want %v", id, got, w)
		}
	}
}

func TestProcRendering(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	g := cycleGraph(5)
	loadGraphDB(t, eng, g)
	p, err := Prepare(eng, `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F)
  maxrecursion 3)
select F, T from TC`)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Proc.String()
	for _, want := range []string{"create procedure F_TC", "loop (maxrecursion 3)", "exit when", "initialize TC"} {
		if !strings.Contains(s, want) {
			t.Errorf("proc rendering missing %q:\n%s", want, s)
		}
	}
	if _, _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	p.Cleanup()
	if eng.Cat.Has("TC") {
		t.Error("cleanup should drop the recursive temp table")
	}
}

func TestNameCollision(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, cycleGraph(4))
	_, err := Prepare(eng, "with E(F, T) as ((select F, T from V)) select F from E")
	if err == nil {
		t.Error("recursive relation colliding with base table must fail")
	}
}

func TestMaxRecursionBoundsRunawayQuery(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, cycleGraph(4))
	// R grows forever without the bound (select n+1 pattern of Section 6).
	out, trace, err := Run(eng, `
with R(n) as (
  (select 0 from V where ID = 0)
  union all
  (select n + 1 from R)
  maxrecursion 7)
select n from R`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 8 { // 0..7
		t.Errorf("rows = %d, want 8", out.Len())
	}
	if trace.Iterations != 7 {
		t.Errorf("iterations = %d, want 7", trace.Iterations)
	}
}

func TestUnionDistinctSemantics(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, cycleGraph(6))
	// UNION (PostgreSQL-style) dedupes, so a cyclic TC still terminates
	// without maxrecursion.
	out, _, err := Run(eng, `
with TC(F, T) as (
  (select F, T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select F, T from TC`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 36 { // cycle + chords: every node reaches every node
		t.Errorf("|TC| = %d, want 36", out.Len())
	}
}

func TestCycleDetection(t *testing.T) {
	// A 3-cycle: TC re-derives existing pairs, which Oracle's CYCLE clause
	// would flag; the semi-naive evaluation still terminates.
	g := graph.New(3, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	_, trace, err := Run(eng, `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F))
select F, T from TC`)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.CycleDetected {
		t.Error("cycle should be detected on cyclic data")
	}
	// A DAG raises no cycle warning.
	dag := graph.GenerateDAG(20, 40, 81)
	eng2 := engine.New(engine.OracleLike())
	loadGraphDB(t, eng2, dag)
	_, trace2, err := Run(eng2, `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select TC.F, E.T from TC, E where TC.T = E.F))
select F, T from TC`)
	if err != nil {
		t.Fatal(err)
	}
	// Semi-naive over the FULL relation re-derives shorter paths, so even
	// DAGs may re-derive pairs; only assert the cyclic case above and that
	// the DAG run terminated.
	_ = trace2
}

func TestMultipleRecursiveBranches(t *testing.T) {
	// Two recursive subqueries under union all (allowed by with+ though
	// DB2 is the only stock engine that permits it — Table 1 category B):
	// reachability over a union of two edge relations, each extended by
	// its own branch.
	eng := engine.New(engine.OracleLike())
	g1 := graph.New(6, true)
	g1.AddEdge(0, 1, 1)
	g1.AddEdge(1, 2, 1)
	loadGraphDB(t, eng, g1)
	// Second edge set E2 continues where E stops.
	e2 := graph.New(6, true)
	e2.AddEdge(2, 3, 1)
	e2.AddEdge(3, 4, 1)
	if _, err := eng.LoadBase("E2", e2.EdgeRelation()); err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(eng, `
with R(F, T) as (
  (select F, T from E)
  union all
  (select R.F, E.T from R, E where R.T = E.F)
  union all
  (select R.F, E2.T from R, E2 where R.T = E2.F))
select F, T from R`)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[[2]int64]bool{}
	for _, tu := range out.Tuples {
		pairs[[2]int64{tu[0].AsInt(), tu[1].AsInt()}] = true
	}
	// 0 reaches 4 only through both edge sets interleaved.
	if !pairs[[2]int64{0, 4}] {
		t.Errorf("0 should reach 4 via E then E2: %v", pairs)
	}
	if !pairs[[2]int64{0, 2}] || !pairs[[2]int64{1, 3}] {
		t.Errorf("intermediate pairs missing: %v", pairs)
	}
}

func TestMutualRecursionFoldedIntoOneRelation(t *testing.T) {
	// The paper's approach to mutual recursion (Section 6): fold Hub and
	// Authority into a single relation H(ID, h, a) instead of two mutually
	// referencing CTEs — the HITS query is the flagship; here a smaller
	// even/odd-distance folding: D(ID, even, odd) over a path graph.
	eng := engine.New(engine.OracleLike())
	g := graph.New(5, true)
	for i := int32(0); i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, `
with D(ID, ev, od) as (
  (select ID, 1.0, 0.0 from V where ID = 0)
  union all
  (select ID, 0.0, 0.0 from V where ID <> 0)
  union by update ID
  (select D.ID, greatest(D.ev, s.se), greatest(D.od, s.so) from D,
     (select E.T tid, max(od * ew) se, max(ev * ew) so
      from D, E where D.ID = E.F group by E.T) s
   where D.ID = s.tid))
select ID, ev, od from D`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		wantEven := id%2 == 0
		if (tu[1].AsFloat() == 1) != wantEven {
			t.Errorf("node %d even-reachability = %v, want %v", id, tu[1], wantEven)
		}
		if (tu[2].AsFloat() == 1) != !wantEven {
			t.Errorf("node %d odd-reachability = %v, want %v", id, tu[2], !wantEven)
		}
	}
}
