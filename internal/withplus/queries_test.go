package withplus

import (
	"math"
	"testing"

	"repro/internal/algos"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/refimpl"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// These tests run the query-text library (the paper's figures as SQL)
// through the full parse → check → PSM → execute pipeline and compare
// against the reference implementations.

func TestTCSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 20, M: 45, Directed: true, Skew: 2.0, Seed: 51})
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	for _, depth := range []int{0, 3} {
		out, _, err := Run(eng, algos.TCSQL(depth))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		// WITH+ TC reaches the full fixpoint with maxrecursion 0
		// (unbounded); a bound of d covers paths of up to d+1 edges.
		wantDepth := 0
		if depth > 0 {
			wantDepth = depth + 1
		}
		want := refimpl.TransitiveClosure(g, wantDepth)
		if out.Len() != len(want) {
			t.Fatalf("depth %d: |TC| = %d, want %d", depth, out.Len(), len(want))
		}
		eng = engine.New(engine.OracleLike())
		loadGraphDB(t, eng, g)
	}
}

func TestPageRankSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 30, M: 120, Directed: true, Skew: 2.0, Seed: 52})
	want := refimpl.PageRank(g, 0.85, 12)
	eng := engine.New(engine.PostgresLike(true))
	loadGraphDB(t, eng, g)
	out, trace, err := Run(eng, algos.PageRankSQL(g.N, 12, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Iterations != 12 {
		t.Errorf("iterations = %d", trace.Iterations)
	}
	for _, tu := range out.Tuples {
		if math.Abs(tu[1].AsFloat()-want[tu[0].AsInt()]) > 1e-9 {
			t.Fatalf("PR[%v] = %v, want %v", tu[0], tu[1], want[tu[0].AsInt()])
		}
	}
}

func TestPageRankFig3SQLQueryText(t *testing.T) {
	// The verbatim Fig. 3 form parses, checks, and runs; nodes without
	// in-edges stay at 0 (the formulation's own semantics).
	g := graph.New(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(0, 2, 1)
	// node 3 has no in-edges.
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, algos.PageRankFig3SQL(g.N, 10, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int64]float64{}
	for _, tu := range out.Tuples {
		vals[tu[0].AsInt()] = tu[1].AsFloat()
	}
	if vals[3] != 0 {
		t.Errorf("Fig. 3 zero-init: node without in-edges = %v, want 0", vals[3])
	}
	if vals[1] <= 0 {
		t.Errorf("reached node should have positive rank: %v", vals[1])
	}
}

func TestTopoSortSQLQueryText(t *testing.T) {
	g := graph.GenerateDAG(30, 90, 53)
	want := refimpl.TopoSort(g)
	eng := engine.New(engine.DB2Like())
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, algos.TopoSortSQL())
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, tu := range out.Tuples {
		got[tu[0].AsInt()] = tu[1].AsInt()
	}
	for v, l := range want {
		if got[int64(v)] != int64(l) {
			t.Fatalf("level[%d] = %d, want %d", v, got[int64(v)], l)
		}
	}
}

func TestHITSSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 20, M: 70, Directed: true, Skew: 2.0, Seed: 54})
	wantHub, wantAuth := refimpl.HITS(g, 8)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, algos.HITSSQL(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		if math.Abs(tu[1].AsFloat()-wantHub[id]) > 1e-9 || math.Abs(tu[2].AsFloat()-wantAuth[id]) > 1e-9 {
			t.Fatalf("HITS[%d] = (%v, %v), want (%v, %v)", id, tu[1], tu[2], wantHub[id], wantAuth[id])
		}
	}
}

func TestSSSPSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 25, M: 80, Directed: true, Skew: 2.0, Seed: 55})
	for i := range g.Edges {
		g.Edges[i].W = float64(1 + i%3)
	}
	want := refimpl.BellmanFord(g, 2)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, algos.SSSPSQL(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		got := tu[1].AsFloat()
		if math.IsInf(want[id], 1) {
			if got < 1e17 {
				t.Fatalf("dist[%d] = %v, want unreachable", id, got)
			}
			continue
		}
		if got != want[id] {
			t.Fatalf("dist[%d] = %v, want %v", id, got, want[id])
		}
	}
}

func TestWCCSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 40, M: 60, Directed: true, Skew: 2.0, Seed: 56})
	want := refimpl.WCC(g)
	// WCCSQL needs both directions in E.
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g.Symmetrize())
	out, _, err := Run(eng, algos.WCCSQL())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		if tu[1].AsInt() != want[tu[0].AsInt()] {
			t.Fatalf("label[%v] = %v, want %d", tu[0], tu[1], want[tu[0].AsInt()])
		}
	}
}

func TestBFSSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 30, M: 60, Directed: true, Skew: 2.0, Seed: 57})
	want := refimpl.BFS(g, 0)
	eng := engine.New(engine.PostgresLike(false))
	loadGraphDB(t, eng, g)
	out, _, err := Run(eng, algos.BFSSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		if tu[1].AsFloat() != want[tu[0].AsInt()] {
			t.Fatalf("reach[%v] = %v, want %v", tu[0], tu[1], want[tu[0].AsInt()])
		}
	}
}

func TestLPSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 35, M: 120, Directed: true, Skew: 2.0, Seed: 58, NumLabels: 4})
	want := refimpl.LabelPropagation(g, 10)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	labels := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "lbl", Type: value.KindInt},
	})
	for i := 0; i < g.N; i++ {
		labels.AppendVals(value.Int(int64(i)), value.Int(int64(g.Labels[i])))
	}
	if _, err := eng.LoadBase("VL", labels); err != nil {
		t.Fatal(err)
	}
	out, trace, err := Run(eng, algos.LPSQL(10))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Iterations > 10 {
		t.Errorf("iterations = %d", trace.Iterations)
	}
	got := map[int64]int64{}
	for _, tu := range out.Tuples {
		got[tu[0].AsInt()] = tu[1].AsInt()
	}
	for v, l := range want {
		if got[int64(v)] != int64(l) {
			t.Fatalf("label[%d] = %d, want %d", v, got[int64(v)], l)
		}
	}
}

func TestKCoreSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 50, M: 260, Directed: false, Skew: 2.2, Seed: 59})
	want := refimpl.KCore(g, 5)
	eng := engine.New(engine.DB2Like())
	loadGraphDB(t, eng, g) // already symmetric (undirected generator)
	out, _, err := Run(eng, algos.KCoreSQL(5))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, tu := range out.Tuples {
		got[tu[0].AsInt()] = true
	}
	for v, alive := range want {
		if got[int64(v)] != alive {
			t.Fatalf("core[%d] = %v, want %v", v, got[int64(v)], alive)
		}
	}
}

func TestKSSQLQueryText(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 40, M: 120, Directed: true, Skew: 2.0, Seed: 60, NumLabels: 5})
	query := []int32{0, 1, 2}
	want := refimpl.KeywordSearch(g, query, 4)
	eng := engine.New(engine.PostgresLike(true))
	loadGraphDB(t, eng, g)
	initRel := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "b0", Type: value.KindInt},
		{Name: "b1", Type: value.KindInt},
		{Name: "b2", Type: value.KindInt},
	})
	for i := 0; i < g.N; i++ {
		row := relation.Tuple{value.Int(int64(i)), value.Int(0), value.Int(0), value.Int(0)}
		for qi, q := range query {
			if g.Labels[i] == q {
				row[qi+1] = value.Int(1)
			}
		}
		initRel.Append(row)
	}
	if _, err := eng.LoadBase("KInit", initRel); err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(eng, algos.KSSQL(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out.Tuples {
		id := tu[0].AsInt()
		full := tu[1].AsInt() == 1 && tu[2].AsInt() == 1 && tu[3].AsInt() == 1
		if full != want[id] {
			t.Fatalf("root[%d] = %v, want %v", id, full, want[id])
		}
	}
}
