package withplus

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/algos"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/sql"
	"repro/internal/value"
)

// These tests pin the delta-driven semi-naive evaluation: for every WITH+
// query in the algorithm library, frontier evaluation (default) and full
// re-evaluation (DisableDelta) must reach the same fixpoint on all three
// engine profiles; branches that cannot soundly read the Δ frontier must
// provably fall back with the reason recorded in the trace.

// multiset renders a relation as a sorted bag of tuple strings, so results
// can be compared across evaluation modes regardless of row order.
func multiset(r *relation.Relation) []string {
	out := make([]string, 0, r.Len())
	for _, tu := range r.Tuples {
		var b strings.Builder
		for i, v := range tu {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%v", v)
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

func equalMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deltaCase is one algorithm query plus its data loader.
type deltaCase struct {
	name  string
	query string
	load  func(t *testing.T, eng *engine.Engine)
}

func deltaCases() []deltaCase {
	dir := graph.Generate(graph.GenSpec{N: 24, M: 60, Directed: true, Skew: 2.0, Seed: 71, NumLabels: 4})
	dag := graph.GenerateDAG(24, 70, 72)
	und := graph.Generate(graph.GenSpec{N: 30, M: 140, Directed: false, Skew: 2.2, Seed: 73})
	loadDir := func(t *testing.T, eng *engine.Engine) { loadGraphDB(t, eng, dir) }
	return []deltaCase{
		{"TC", algos.TCSQL(0), loadDir},
		{"TC-depth", algos.TCSQL(3), loadDir},
		{"PR", algos.PageRankSQL(dir.N, 8, 0.85), loadDir},
		{"PR-fig3", algos.PageRankFig3SQL(dir.N, 8, 0.85), loadDir},
		{"TopoSort", algos.TopoSortSQL(), func(t *testing.T, eng *engine.Engine) { loadGraphDB(t, eng, dag) }},
		{"HITS", algos.HITSSQL(6), loadDir},
		{"SSSP", algos.SSSPSQL(0), loadDir},
		{"WCC", algos.WCCSQL(), func(t *testing.T, eng *engine.Engine) { loadGraphDB(t, eng, dir.Symmetrize()) }},
		{"BFS", algos.BFSSQL(0), loadDir},
		{"LP", algos.LPSQL(8), func(t *testing.T, eng *engine.Engine) {
			loadGraphDB(t, eng, dir)
			labels := relation.New(schema.Schema{
				{Name: "ID", Type: value.KindInt}, {Name: "lbl", Type: value.KindInt},
			})
			for i := 0; i < dir.N; i++ {
				labels.AppendVals(value.Int(int64(i)), value.Int(int64(dir.Labels[i])))
			}
			if _, err := eng.LoadBase("VL", labels); err != nil {
				t.Fatal(err)
			}
		}},
		{"KCore", algos.KCoreSQL(5), func(t *testing.T, eng *engine.Engine) { loadGraphDB(t, eng, und) }},
		{"KS", algos.KSSQL(4), func(t *testing.T, eng *engine.Engine) {
			loadGraphDB(t, eng, dir)
			initRel := relation.New(schema.Schema{
				{Name: "ID", Type: value.KindInt},
				{Name: "b0", Type: value.KindInt},
				{Name: "b1", Type: value.KindInt},
				{Name: "b2", Type: value.KindInt},
			})
			for i := 0; i < dir.N; i++ {
				row := relation.Tuple{value.Int(int64(i)), value.Int(0), value.Int(0), value.Int(0)}
				for qi, q := range []int32{0, 1, 2} {
					if dir.Labels[i] == q {
						row[qi+1] = value.Int(1)
					}
				}
				initRel.Append(row)
			}
			if _, err := eng.LoadBase("KInit", initRel); err != nil {
				t.Fatal(err)
			}
		}},
	}
}

// TestDeltaVsFullAllAlgos runs every algorithm query under frontier
// evaluation and full re-evaluation on each profile and compares the final
// relations as multisets. Iteration counts are NOT compared: with several
// recursive branches, full evaluation sees sibling rows one iteration
// earlier than delta evaluation, so the two modes may need a different
// number of loop passes to reach the (identical) fixpoint.
func TestDeltaVsFullAllAlgos(t *testing.T) {
	profs := []engine.Profile{engine.OracleLike(), engine.DB2Like(), engine.PostgresLike(true)}
	for _, c := range deltaCases() {
		for _, prof := range profs {
			t.Run(c.name+"/"+prof.Name, func(t *testing.T) {
				run := func(disable bool) ([]string, *Trace) {
					eng := engine.New(prof)
					eng.DisableDelta = disable
					c.load(t, eng)
					out, tr, err := Run(eng, c.query)
					if err != nil {
						t.Fatalf("disable=%v: %v", disable, err)
					}
					return multiset(out), tr
				}
				gotDelta, trDelta := run(false)
				gotFull, trFull := run(true)
				if trFull.DeltaEnabled {
					t.Error("DisableDelta run still reports DeltaEnabled")
				}
				if !equalMultiset(gotDelta, gotFull) {
					t.Fatalf("delta (%d rows, enabled=%v) and full (%d rows) fixpoints differ",
						len(gotDelta), trDelta.DeltaEnabled, len(gotFull))
				}
			})
		}
	}
}

// TestFrontierModeTC pins the rewrite actually firing: transitive closure
// is linear accumulation, so its recursive branch reads the Δ frontier and
// the trace carries per-iteration delta rows.
func TestFrontierModeTC(t *testing.T) {
	g := cycleGraph(12)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, tr, err := Run(eng, algos.TCSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty closure")
	}
	if !tr.DeltaEnabled {
		t.Fatal("TC should run with the frontier rewrite enabled")
	}
	found := false
	for _, m := range tr.BranchModes {
		if strings.Contains(m, "Δ frontier") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Δ-frontier branch in modes %v", tr.BranchModes)
	}
	if len(tr.DeltaRows) != tr.Iterations {
		t.Fatalf("DeltaRows has %d entries for %d iterations", len(tr.DeltaRows), tr.Iterations)
	}
	total := 0
	for _, d := range tr.DeltaRows {
		total += d
	}
	// Every appended row is counted exactly once across the iterations
	// (the initial rows are seeded, not derived).
	if got, _ := eng.Rel("E"); total != out.Len()-got.Len() {
		t.Errorf("delta rows sum to %d, want %d", total, out.Len()-got.Len())
	}
}

// TestDisableDeltaReportsMode pins the -nodelta baseline's trace: the
// branch is rewritable, but the engine knob forces full evaluation.
func TestDisableDeltaReportsMode(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	eng.DisableDelta = true
	loadGraphDB(t, eng, cycleGraph(8))
	_, tr, err := Run(eng, algos.TCSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeltaEnabled {
		t.Error("DisableDelta run reports DeltaEnabled")
	}
	found := false
	for _, m := range tr.BranchModes {
		if strings.Contains(m, "delta evaluation disabled") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected disabled-mode reason in %v", tr.BranchModes)
	}
}

// TestNonlinearRecursionFallsBack: a branch with two references to the
// recursive relation cannot read the Δ frontier (an old row may pair with
// a new one); it must run in full-evaluation mode with the reason traced,
// and still compute the correct closure.
func TestNonlinearRecursionFallsBack(t *testing.T) {
	nonlinear := `
with TC(F, T) as (
  (select F, T from E)
  union all
  (select a.F, b.T from TC a, TC b where a.T = b.F))
select F, T from TC`
	g := cycleGraph(10)
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, g)
	out, tr, err := Run(eng, nonlinear)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeltaEnabled {
		t.Error("nonlinear recursion must not enable the frontier rewrite")
	}
	found := false
	for _, m := range tr.BranchModes {
		if strings.Contains(m, "nonlinear recursion (2 references to TC)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected nonlinear fallback reason in %v", tr.BranchModes)
	}
	// The nonlinear form computes the same closure as the linear one.
	eng2 := engine.New(engine.OracleLike())
	loadGraphDB(t, eng2, g)
	want, _, err := Run(eng2, algos.TCSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	if !equalMultiset(multiset(out), multiset(want)) {
		t.Fatalf("nonlinear closure has %d rows, linear %d", out.Len(), want.Len())
	}
}

// TestComputedByRecursionFallsBack: recursion reached through computed-by
// relations (TopoSort's mutual-recursion encoding) is not linear in the
// branch query itself, so it must fall back to full evaluation.
func TestComputedByRecursionFallsBack(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	loadGraphDB(t, eng, graph.GenerateDAG(20, 55, 74))
	_, tr, err := Run(eng, algos.TopoSortSQL())
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeltaEnabled {
		t.Error("computed-by recursion must not enable the frontier rewrite")
	}
	found := false
	for _, m := range tr.BranchModes {
		if strings.Contains(m, "through computed-by relation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected computed-by fallback reason in %v", tr.BranchModes)
	}
}

// TestFrontierReasonTable exercises the static classifier directly on the
// remaining non-monotone constructs (negation, aggregation, limit).
func TestFrontierReasonTable(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"ubu",
			"with R(a) as ((select F from E) union by update a (select R.a from R, E where R.a = E.F)) select a from R",
			"union by update"},
		{"negation",
			"with R(a) as ((select F from E) union all (select E.T from E where E.T not in select a from R)) select a from R",
			"appears under negation"},
		{"aggregate",
			"with R(a) as ((select F from E) union all (select max(E.T) from R, E where R.a = E.F)) select a from R",
			"not frontier-distributive"},
		{"limit",
			"with R(a) as ((select F from E) union all (select E.T from R, E where R.a = E.F limit 5)) select a from R",
			"limit is not monotone"},
		{"linear",
			"with R(a) as ((select F from E) union all (select E.T from R, E where R.a = E.F)) select a from R",
			""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := sql.ParseWith(c.src)
			if err != nil {
				t.Fatal(err)
			}
			// The recursive branch is always the second one in these forms.
			got := FrontierReason(w, 1)
			if c.want == "" {
				if got != "" {
					t.Fatalf("want rewritable, got reason %q", got)
				}
				return
			}
			if !strings.Contains(got, c.want) {
				t.Fatalf("reason %q does not mention %q", got, c.want)
			}
		})
	}
}

// FuzzDeltaVsFull cross-checks frontier evaluation against full
// re-evaluation on arbitrary WITH+ texts: whenever both modes execute
// successfully, they must agree on the final relation.
func FuzzDeltaVsFull(f *testing.F) {
	seeds := []string{
		"with TC(F, T) as ((select F, T from E) union all (select TC.F, E.T from TC, E where TC.T = E.F) maxrecursion 3) select F, T from TC",
		"with R(a) as ((select F from E) union all (select E.T from R, E where R.a = E.F)) select a from R",
		"with R(a) as ((select F from E) union all (select a.a from R a, R b where a.a = b.a) maxrecursion 2) select a from R",
		"with P(ID, W) as ((select ID, 0.0 from V) union by update ID (select E.T, sum(W * ew) from P, E where P.ID = E.F group by E.T) maxrecursion 3) select ID from P",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := cycleGraph(6)
	f.Fuzz(func(t *testing.T, input string) {
		w, err := sql.ParseWith(input)
		if err != nil {
			return
		}
		// Clamp runaway recursion so the fuzzer spends time on variety.
		if w.MaxRec == 0 || w.MaxRec > 6 {
			w.MaxRec = 6
		}
		run := func(disable bool) ([]string, error) {
			eng := engine.New(engine.OracleLike())
			eng.DisableDelta = disable
			if _, err := eng.LoadBase("E", g.EdgeRelation()); err != nil {
				return nil, err
			}
			if _, err := eng.LoadBase("V", g.NodeRelation(nil)); err != nil {
				return nil, err
			}
			p, err := PrepareStmt(eng, w)
			if err != nil {
				return nil, err
			}
			defer p.Cleanup()
			out, _, err := p.Run()
			if err != nil {
				return nil, err
			}
			return multiset(out), nil
		}
		gotDelta, errDelta := run(false)
		gotFull, errFull := run(true)
		if errDelta != nil || errFull != nil {
			// Agreement is only required when both modes complete.
			return
		}
		if !equalMultiset(gotDelta, gotFull) {
			t.Fatalf("delta and full fixpoints differ on %q: %d vs %d rows",
				input, len(gotDelta), len(gotFull))
		}
	})
}
