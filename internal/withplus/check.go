// Package withplus implements the semantics of the enhanced recursive WITH
// clause (Section 6): validation of the paper's restrictions, the
// XY-stratification check of Theorem 5.1 (via the datalog package), and
// compilation to a SQL/PSM procedure (Algorithm 1) executed on the engine.
package withplus

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/sql"
)

// Check validates a WITH+ statement:
//
//  1. structural restrictions — a single recursive relation; union by
//     update used at most once and never mixed with union all; at least one
//     initialization branch and, for union by update, exactly one recursive
//     branch; computed-by definitions cycle-free and only referencing
//     earlier definitions;
//  2. the dependency graph has a single recursive cycle; and
//  3. the program's Datalog encoding is XY-stratified (Theorem 5.1).
func Check(w *sql.WithStmt) error {
	if w.RecName == "" {
		return fmt.Errorf("withplus: missing recursive relation name")
	}
	if len(w.Branches) == 0 {
		return fmt.Errorf("withplus: no subqueries")
	}
	ubuCount := 0
	for _, op := range w.Ops {
		if op == sql.WithUnionByUpdate {
			ubuCount++
		}
	}
	if ubuCount > 1 {
		return fmt.Errorf("withplus: union by update may appear only once (the update is not unique otherwise)")
	}
	recursive := make([]bool, len(w.Branches))
	firstRecursive := -1
	recursiveCount := 0
	for i, br := range w.Branches {
		recursive[i] = branchReferencesRec(br, w.RecName)
		if recursive[i] {
			recursiveCount++
			if firstRecursive < 0 {
				firstRecursive = i
			}
		}
		if !recursive[i] && firstRecursive >= 0 {
			return fmt.Errorf("withplus: initialization subqueries must precede recursive subqueries")
		}
	}
	if firstRecursive == 0 {
		return fmt.Errorf("withplus: the first subquery must initialize %s without referring to it", w.RecName)
	}
	if ubuCount == 1 {
		// The paper allows any number of initialization subqueries but only
		// one recursive subquery with union by update, joined by it.
		if recursiveCount != 1 {
			return fmt.Errorf("withplus: union by update takes exactly one recursive subquery, got %d", recursiveCount)
		}
		if w.Ops[firstRecursive-1] != sql.WithUnionByUpdate {
			return fmt.Errorf("withplus: union by update must introduce the recursive subquery")
		}
	}
	// computed-by blocks: each definition may reference only base tables,
	// the recursive relation, and earlier definitions of the same block.
	for bi, br := range w.Branches {
		defined := map[string]bool{}
		for _, def := range br.Computed {
			if defined[def.Name] {
				return fmt.Errorf("withplus: duplicate computed-by relation %q", def.Name)
			}
			for _, ref := range sql.ReferencedTables(def.Query) {
				if ref == def.Name {
					return fmt.Errorf("withplus: computed-by relation %q must be cycle free", def.Name)
				}
				if laterDef(br.Computed, def.Name, ref) {
					return fmt.Errorf("withplus: computed-by relation %q refers to later definition %q (forward references only)", def.Name, ref)
				}
			}
			defined[def.Name] = true
		}
		if len(br.Computed) > 0 && !recursive[bi] && branchComputedReferencesRec(br, w.RecName) {
			return fmt.Errorf("withplus: initialization subquery %d reaches %s through computed by", bi+1, w.RecName)
		}
	}
	prog := buildDatalog(w, recursive)
	g := datalog.BuildDependencyGraph(prog)
	if n := g.RecursiveCycleCount(); n > 1 {
		return fmt.Errorf("withplus: %d recursive cycles in the dependency graph; only one is allowed", n)
	}
	if err := datalog.IsXYStratified(prog); err != nil {
		return fmt.Errorf("withplus: not XY-stratified: %w", err)
	}
	return nil
}

func laterDef(defs []sql.ComputedDef, current, ref string) bool {
	seenCurrent := false
	for _, d := range defs {
		if d.Name == current {
			seenCurrent = true
			continue
		}
		if seenCurrent && d.Name == ref {
			return true
		}
	}
	return false
}

// branchReferencesRec reports whether a branch query (or any of its
// computed-by definitions) references the recursive relation.
func branchReferencesRec(br sql.WithBranch, rec string) bool {
	if refTables(br.Query, rec) {
		return true
	}
	return branchComputedReferencesRec(br, rec)
}

func branchComputedReferencesRec(br sql.WithBranch, rec string) bool {
	for _, def := range br.Computed {
		if refTables(def.Query, rec) {
			return true
		}
	}
	return false
}

func refTables(s *sql.SelectStmt, name string) bool {
	for _, r := range sql.ReferencedTables(s) {
		if r == name {
			return true
		}
	}
	return false
}

// FrontierReason decides, for one recursive branch, whether semi-naive
// evaluation may rewrite it to read the Δ frontier instead of the full
// recursive relation. It returns "" when the rewrite is sound, else the
// reason for falling back to full evaluation (surfaced in Trace.BranchModes).
//
// The rewrite is sound exactly for linear, monotone accumulation: every new
// row derivable from R_k but not from R_{k-1} must be derivable from some row
// of Δ_k = R_k − R_{k-1}. A single occurrence of R in a branch free of
// non-monotone constructs guarantees that — Q(R_{k-1} ∪ Δ_k) = Q(R_{k-1}) ∪
// Q(Δ_k) for linear Q, and Q(R_{k-1}) was already appended by the previous
// iteration. Nonlinear branches (two occurrences) can pair an old row with a
// new one, which Δ alone cannot produce; union-by-update branches rewrite
// the whole vector each step; negation, aggregation, and LIMIT are not
// monotone in R.
func FrontierReason(w *sql.WithStmt, i int) string {
	rec := w.RecName
	br := w.Branches[i]
	if i > 0 && w.Ops[i-1] == sql.WithUnionByUpdate {
		return "union by update rewrites the whole vector each iteration"
	}
	for _, def := range br.Computed {
		if sql.CountTableRefs(def.Query, rec) > 0 {
			return fmt.Sprintf("recursion reaches %s through computed-by relation %s", rec, def.Name)
		}
	}
	if n := sql.CountTableRefs(br.Query, rec); n != 1 {
		return fmt.Sprintf("nonlinear recursion (%d references to %s)", n, rec)
	}
	if br.Query.UsesNegation(rec) {
		return fmt.Sprintf("%s appears under negation", rec)
	}
	if br.Query.HasAggregatesDeep() {
		return "aggregation over the recursive branch is not frontier-distributive"
	}
	if br.Query.HasLimitDeep() {
		return "limit is not monotone"
	}
	return ""
}

// buildDatalog encodes the WITH+ statement as the XY Datalog program of
// Theorem 5.1's second proof step: per iteration, computed-by relations and
// the recursive branch results live at stage s(T), while references to the
// recursive relation read stage T; union-by-update adds the carry-forward
// rule with the negated source.
func buildDatalog(w *sql.WithStmt, recursive []bool) *datalog.Program {
	var rules []datalog.Rule
	edb := map[string]bool{}
	localNames := map[string]bool{w.RecName: true}
	for i, br := range w.Branches {
		if recursive[i] {
			for _, def := range br.Computed {
				localNames[def.Name] = true
			}
			localNames[qPred(i)] = true
		}
	}
	mkBody := func(q *sql.SelectStmt, stage func(name string) datalog.Term) []datalog.Literal {
		var body []datalog.Literal
		hasAgg := q.HasAggregates()
		for _, ref := range sql.ReferencedTables(q) {
			lit := datalog.Literal{Negated: q.UsesNegation(ref)}
			if localNames[ref] {
				lit.Atom = datalog.Atom{Pred: ref, Args: []datalog.Term{datalog.V("X"), stage(ref)}}
				lit.Aggregated = hasAgg
			} else {
				lit.Atom = datalog.Atom{Pred: ref, Args: []datalog.Term{datalog.V("X")}}
				edb[ref] = true
			}
			body = append(body, lit)
		}
		if len(body) == 0 {
			body = append(body, datalog.Literal{Atom: datalog.Atom{Pred: "__dual", Args: []datalog.Term{datalog.V("X")}}})
			edb["__dual"] = true
		}
		return body
	}
	recStage := func(name string) datalog.Term {
		if name == w.RecName {
			return datalog.T("T") // read the previous stage
		}
		return datalog.ST("T") // computed-by siblings live at the new stage
	}
	// anchor keeps Definition 9.3 satisfied for within-stage chains (the
	// paper's R_i(s(T)) :- R_j(s(T)) rules): every Y-rule is anchored at the
	// previous stage of the recursive relation, which is what the PSM loop
	// reads when the iteration starts.
	anchor := func(body []datalog.Literal) []datalog.Literal {
		for _, l := range body {
			if len(l.Atom.Args) == 2 && l.Atom.Args[1].Kind == datalog.TermTemporalVar {
				return body
			}
		}
		return append(body, datalog.Literal{
			Atom: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.T("T")}},
		})
	}
	for i, br := range w.Branches {
		if !recursive[i] {
			// Initialization: an X-rule seeding the recursive relation.
			rules = append(rules, datalog.Rule{
				Head: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.T("T")}},
				Body: mkBody(br.Query, func(string) datalog.Term { return datalog.T("T") }),
			})
			continue
		}
		for _, def := range br.Computed {
			rules = append(rules, datalog.Rule{
				Head: datalog.Atom{Pred: def.Name, Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
				Body: anchor(mkBody(def.Query, recStage)),
			})
		}
		// The branch result Q_i at stage s(T).
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: qPred(i), Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
			Body: anchor(mkBody(br.Query, recStage)),
		})
		if w.HasUBU() {
			// R(s(T)) :- Q(s(T));  R(s(T)) :- R(T), ¬Q(s(T)).
			rules = append(rules,
				datalog.Rule{
					Head: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
					Body: anchor([]datalog.Literal{{Atom: datalog.Atom{Pred: qPred(i), Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}}}}),
				},
				datalog.Rule{
					Head: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
					Body: []datalog.Literal{
						{Atom: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.T("T")}}},
						{Atom: datalog.Atom{Pred: qPred(i), Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}}, Negated: true},
					},
				})
		} else {
			// Accumulation: R(s(T)) :- Q(s(T)); R(s(T)) :- R(T).
			rules = append(rules,
				datalog.Rule{
					Head: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
					Body: anchor([]datalog.Literal{{Atom: datalog.Atom{Pred: qPred(i), Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}}}}),
				},
				datalog.Rule{
					Head: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.ST("T")}},
					Body: []datalog.Literal{{Atom: datalog.Atom{Pred: w.RecName, Args: []datalog.Term{datalog.V("X"), datalog.T("T")}}}},
				})
		}
	}
	names := make([]string, 0, len(edb))
	for n := range edb {
		names = append(names, n)
	}
	return datalog.NewProgram(rules, names...)
}

func qPred(i int) string { return fmt.Sprintf("__q%d", i) }
