package schema

import (
	"errors"
	"testing"

	"repro/internal/value"
)

func edgeSchema() Schema {
	return Schema{
		{Table: "E", Name: "F", Type: value.KindInt},
		{Table: "E", Name: "T", Type: value.KindInt},
		{Table: "E", Name: "ew", Type: value.KindFloat},
	}
}

func TestColumnString(t *testing.T) {
	if got := (Column{Table: "E", Name: "F"}).String(); got != "E.F" {
		t.Errorf("got %q", got)
	}
	if got := (Column{Name: "F"}).String(); got != "F" {
		t.Errorf("got %q", got)
	}
}

func TestColsAndNames(t *testing.T) {
	s := Cols(value.KindInt, "a", "b")
	if s.Arity() != 2 || s[0].Name != "a" || s[1].Type != value.KindInt {
		t.Errorf("Cols built %v", s)
	}
	ns := s.Names()
	if len(ns) != 2 || ns[0] != "a" || ns[1] != "b" {
		t.Errorf("Names = %v", ns)
	}
}

func TestSchemaString(t *testing.T) {
	s := edgeSchema()
	want := "(E.F INT, E.T INT, E.ew FLOAT)"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestResolveQualified(t *testing.T) {
	s := edgeSchema()
	i, err := s.Resolve("E", "T")
	if err != nil || i != 1 {
		t.Errorf("Resolve(E,T) = %d, %v", i, err)
	}
	_, err = s.Resolve("X", "T")
	var nf *ErrNotFound
	if !errors.As(err, &nf) {
		t.Errorf("Resolve(X,T) err = %v, want ErrNotFound", err)
	}
}

func TestResolveBareAndAmbiguous(t *testing.T) {
	s := edgeSchema().Concat(Schema{{Table: "V", Name: "ID", Type: value.KindInt}})
	i, err := s.Resolve("", "ID")
	if err != nil || i != 3 {
		t.Errorf("Resolve(ID) = %d, %v", i, err)
	}
	dup := edgeSchema().Concat(edgeSchema().Qualify("E2"))
	_, err = dup.Resolve("", "F")
	var amb *ErrAmbiguous
	if !errors.As(err, &amb) {
		t.Errorf("expected ambiguous, got %v", err)
	}
	// Qualified resolution disambiguates.
	i, err = dup.Resolve("E2", "F")
	if err != nil || i != 3 {
		t.Errorf("Resolve(E2.F) = %d, %v", i, err)
	}
}

func TestIndexOfAndMustIndex(t *testing.T) {
	s := edgeSchema()
	if s.IndexOf("ew") != 2 || s.IndexOf("zz") != -1 {
		t.Error("IndexOf wrong")
	}
	if s.MustIndex("F") != 0 {
		t.Error("MustIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on missing column")
		}
	}()
	s.MustIndex("nope")
}

func TestProjectConcatQualify(t *testing.T) {
	s := edgeSchema()
	p := s.Project([]int{2, 0})
	if p.Arity() != 2 || p[0].Name != "ew" || p[1].Name != "F" {
		t.Errorf("Project = %v", p)
	}
	c := s.Concat(Cols(value.KindInt, "x"))
	if c.Arity() != 4 || c[3].Name != "x" {
		t.Errorf("Concat = %v", c)
	}
	q := s.Qualify("E1")
	if q[0].Table != "E1" || s[0].Table != "E" {
		t.Error("Qualify should copy, not mutate")
	}
}

func TestRenameCols(t *testing.T) {
	s := Cols(value.KindInt, "a", "b")
	r := s.RenameCols([]string{"x", "y"})
	if r[0].Name != "x" || r[1].Name != "y" || s[0].Name != "a" {
		t.Errorf("RenameCols = %v (orig %v)", r, s)
	}
	defer func() {
		if recover() == nil {
			t.Error("RenameCols should panic on arity mismatch")
		}
	}()
	s.RenameCols([]string{"only"})
}

func TestEqualAndUnionCompatible(t *testing.T) {
	a := Cols(value.KindInt, "a", "b")
	b := Cols(value.KindInt, "a", "b").Qualify("T")
	if !a.Equal(b) {
		t.Error("qualifiers should not affect Equal")
	}
	c := Cols(value.KindFloat, "a", "b")
	if a.Equal(c) {
		t.Error("types should affect Equal")
	}
	if !a.UnionCompatible(c) {
		t.Error("same arity should be union compatible")
	}
	if a.UnionCompatible(Cols(value.KindInt, "a")) {
		t.Error("different arity should not be union compatible")
	}
}
