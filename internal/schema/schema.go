// Package schema describes the shape of relations: ordered, typed, and
// optionally table-qualified columns.
//
// Column resolution follows SQL scoping: a reference "T.c" matches only
// columns qualified with table (or alias) T, while a bare "c" matches any
// column named c and is ambiguous if several qualify.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Column is one attribute of a relation.
type Column struct {
	Table string     // qualifier (table name or alias); may be empty
	Name  string     // attribute name
	Type  value.Kind // declared type (KindNull means untyped/any)
}

// String renders the column as [table.]name.
func (c Column) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Schema is an ordered list of columns.
type Schema []Column

// New builds an unqualified schema from name:type pairs.
func New(cols ...Column) Schema { return Schema(cols) }

// Cols is a convenience constructor for unqualified columns of one type.
func Cols(t value.Kind, names ...string) Schema {
	s := make(Schema, len(names))
	for i, n := range names {
		s[i] = Column{Name: n, Type: t}
	}
	return s
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s) }

// Names returns the bare column names in order.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i, c := range s {
		ns[i] = c.Name
	}
	return ns
}

// String renders the schema as (a INT, b FLOAT, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ErrAmbiguous is returned by Resolve when a bare name matches several
// columns.
type ErrAmbiguous struct{ Name string }

func (e *ErrAmbiguous) Error() string {
	return fmt.Sprintf("schema: ambiguous column reference %q", e.Name)
}

// ErrNotFound is returned by Resolve when no column matches.
type ErrNotFound struct{ Table, Name string }

func (e *ErrNotFound) Error() string {
	if e.Table != "" {
		return fmt.Sprintf("schema: no column %s.%s", e.Table, e.Name)
	}
	return fmt.Sprintf("schema: no column %q", e.Name)
}

// Resolve finds the index of the column referenced by (table, name).
// If table is empty the bare name must be unambiguous.
func (s Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if c.Name != name {
			continue
		}
		if table != "" {
			if c.Table == table {
				return i, nil
			}
			continue
		}
		if found >= 0 {
			return -1, &ErrAmbiguous{Name: name}
		}
		found = i
	}
	if found < 0 {
		return -1, &ErrNotFound{Table: table, Name: name}
	}
	return found, nil
}

// IndexOf returns the index of the first column with the given bare name,
// or -1. Use Resolve for SQL-correct lookup.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is IndexOf that panics if the column is missing; for internal
// construction of fixed-shape relations.
func (s Schema) MustIndex(name string) int {
	i := s.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("schema: missing column %q in %s", name, s))
	}
	return i
}

// Project returns a schema containing the columns at the given indexes.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// Concat returns the concatenation s ++ o (used by joins and products).
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// Qualify returns a copy with every column's Table set to q (the rename
// operation ρ at the relation level).
func (s Schema) Qualify(q string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		c.Table = q
		out[i] = c
	}
	return out
}

// RenameCols returns a copy with the bare column names replaced by names.
// It panics if the arities differ; callers validate first.
func (s Schema) RenameCols(names []string) Schema {
	if len(names) != len(s) {
		panic(fmt.Sprintf("schema: rename arity %d != %d", len(names), len(s)))
	}
	out := make(Schema, len(s))
	for i, c := range s {
		c.Name = names[i]
		out[i] = c
	}
	return out
}

// Equal reports whether two schemas have the same column names and types
// (qualifiers are ignored: union compatibility in SQL is positional).
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i].Name != o[i].Name || s[i].Type != o[i].Type {
			return false
		}
	}
	return true
}

// UnionCompatible reports whether two schemas have the same arity (SQL set
// operations are positional; types may widen between int and float).
func (s Schema) UnionCompatible(o Schema) bool { return len(s) == len(o) }
