// Package netfault injects client-side network misbehavior for serving-tier
// chaos tests: slow-loris request writes, mid-stream disconnects, and
// stalled response reads. It extends the storage fault plans of the
// resilience PR to the wire — where storage.FaultPlan proves the engine
// survives a disk that fails at every operation index, a netfault.Plan
// proves the server survives a peer that fails at every protocol position.
//
// The package also provides PipeListener, a net.Listener over synchronous
// in-memory pipes: a pipe write blocks until the peer reads, so
// backpressure tests (write deadlines against a stalled reader) are
// deterministic instead of depending on kernel socket buffer sizes.
package netfault

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Plan describes how a wrapped connection misbehaves. The zero value is a
// faithful connection.
type Plan struct {
	// WriteDelay sleeps this long before each written chunk — with a small
	// WriteChunk this is a slow-loris client trickling its request.
	WriteDelay time.Duration
	// WriteChunk splits writes into chunks of at most this many bytes
	// (0 = write whole buffers).
	WriteChunk int
	// CloseAfterWriteBytes closes the connection after this many request
	// bytes have been written (0 = never): a client dying mid-request.
	CloseAfterWriteBytes int
	// CloseAfterReadBytes closes the connection after this many response
	// bytes have been read (0 = never): a client dying mid-response.
	CloseAfterReadBytes int
}

// Conn wraps a net.Conn with a fault plan.
type Conn struct {
	net.Conn
	plan  Plan
	wrote int
	read  int
}

// Wrap applies the plan to an existing connection.
func Wrap(c net.Conn, p Plan) *Conn { return &Conn{Conn: c, plan: p} }

// Dial connects to addr and applies the plan.
func Dial(addr string, p Plan) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(c, p), nil
}

// Write implements net.Conn, applying chunking, per-chunk delay, and the
// mid-request disconnect.
func (c *Conn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		chunk := b[written:]
		if c.plan.WriteChunk > 0 && len(chunk) > c.plan.WriteChunk {
			chunk = chunk[:c.plan.WriteChunk]
		}
		if lim := c.plan.CloseAfterWriteBytes; lim > 0 && c.wrote+len(chunk) > lim {
			chunk = chunk[:lim-c.wrote]
		}
		if c.plan.WriteDelay > 0 {
			time.Sleep(c.plan.WriteDelay)
		}
		if len(chunk) > 0 {
			n, err := c.Conn.Write(chunk)
			written += n
			c.wrote += n
			if err != nil {
				return written, err
			}
		}
		if lim := c.plan.CloseAfterWriteBytes; lim > 0 && c.wrote >= lim {
			c.Conn.Close()
			return written, fmt.Errorf("netfault: closed after %d written bytes: %w", c.wrote, io.ErrClosedPipe)
		}
	}
	return written, nil
}

// Read implements net.Conn, applying the mid-response disconnect.
func (c *Conn) Read(b []byte) (int, error) {
	if lim := c.plan.CloseAfterReadBytes; lim > 0 {
		if c.read >= lim {
			c.Conn.Close()
			return 0, fmt.Errorf("netfault: closed after %d read bytes: %w", c.read, io.ErrClosedPipe)
		}
		if rem := lim - c.read; len(b) > rem {
			b = b[:rem]
		}
	}
	n, err := c.Conn.Read(b)
	c.read += n
	if lim := c.plan.CloseAfterReadBytes; lim > 0 && c.read >= lim {
		c.Conn.Close()
		if err == nil {
			err = fmt.Errorf("netfault: closed after %d read bytes: %w", c.read, io.ErrClosedPipe)
		}
	}
	return n, err
}

// PipeListener is a net.Listener whose connections are synchronous
// in-memory pipes: Dial hands the server side to Accept and returns the
// client side. Writes block until the peer reads, making backpressure
// deterministic.
type PipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

// NewPipeListener returns an open pipe listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

// Dial connects a new client to the listener.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.conns <- srv:
		return client, nil
	case <-l.done:
		client.Close()
		srv.Close()
		return nil, fmt.Errorf("netfault: pipe listener closed")
	}
}

// Accept implements net.Listener.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("netfault: pipe listener closed: %w", net.ErrClosed)
	}
}

// Close implements net.Listener.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// pipeAddr is the listener's synthetic address.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }
