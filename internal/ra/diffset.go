package ra

import (
	"repro/internal/relation"
)

// TupleSet is a persistent membership set over the rows accumulated into a
// growing relation. Difference builds its hash set from the full right-hand
// side on every call — O(|R|) per iteration when R is the recursive relation
// of a WITH+ loop. A TupleSet is seeded once from the initial rows and then
// extended with each iteration's delta, so the semi-naive append path pays
// O(|Δ|) probes per iteration regardless of how large R has grown.
//
// Added tuples are shared, not cloned: callers hand over ownership and must
// not mutate them afterwards (the same contract relation.Append documents).
type TupleSet struct {
	acc  *relation.Relation
	idx  *relation.HashIndex
	cols []int
}

// NewTupleSet returns a set seeded with the distinct tuples of seed.
func NewTupleSet(seed *relation.Relation) *TupleSet {
	acc := relation.NewWithCap(seed.Sch, seed.Len())
	s := &TupleSet{acc: acc, cols: allCols(seed)}
	s.idx = relation.BuildHashIndex(acc, s.cols)
	for _, t := range seed.Tuples {
		s.add(t)
	}
	return s
}

// add inserts t if absent, reporting whether it was new.
func (s *TupleSet) add(t relation.Tuple) bool {
	if s.idx.Contains(t, s.cols) {
		return false
	}
	s.acc.Append(t)
	s.idx.Add(s.acc.Len() - 1)
	return true
}

// Len returns the number of distinct tuples in the set.
func (s *TupleSet) Len() int { return s.acc.Len() }

// Contains reports membership; tuples of a different arity are never
// members.
func (s *TupleSet) Contains(t relation.Tuple) bool {
	return len(t) == len(s.cols) && s.idx.Contains(t, s.cols)
}

// DiffAdd returns the tuples of r not already in the set, inserting them as
// it goes: Difference(r, accumulated) plus the accumulation step, in one
// O(|r|) pass. In-batch duplicates are collapsed (the first occurrence wins),
// matching Difference-after-Distinct semantics.
func (s *TupleSet) DiffAdd(r *relation.Relation) *relation.Relation {
	if r.Sch.Arity() != s.acc.Sch.Arity() {
		// Shape mismatch: the set cannot hold these rows. Fall back to a
		// plain Difference and let the caller's append raise the schema
		// error, matching the non-seeded path's behavior.
		return Difference(r, s.acc)
	}
	out := relation.New(r.Sch)
	for _, t := range r.Tuples {
		if s.add(t) {
			out.Append(t)
		}
	}
	return out
}
