package ra

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

func col(name string) schema.Column { return schema.Column{Name: name, Type: value.KindFloat} }

func TestGroupBySumMinMaxCountAvg(t *testing.T) {
	r := rel(ints("g", "v"),
		[]int64{1, 10}, []int64{1, 20}, []int64{2, 5}, []int64{2, 7}, []int64{2, 3})
	got, err := GroupBy(r, []int{0}, []AggSpec{
		Sum(col("s"), ColExpr(1)),
		MinAgg(col("mn"), ColExpr(1)),
		MaxAgg(col("mx"), ColExpr(1)),
		Count(col("c"), nil),
		Avg(col("a"), ColExpr(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("groups = %d", got.Len())
	}
	for _, tu := range got.Tuples {
		switch tu[0].AsInt() {
		case 1:
			if tu[1].AsInt() != 30 || tu[2].AsInt() != 10 || tu[3].AsInt() != 20 || tu[4].AsInt() != 2 || tu[5].AsFloat() != 15 {
				t.Errorf("group 1 aggregates wrong: %v", tu)
			}
		case 2:
			if tu[1].AsInt() != 15 || tu[2].AsInt() != 3 || tu[3].AsInt() != 7 || tu[4].AsInt() != 3 || tu[5].AsFloat() != 5 {
				t.Errorf("group 2 aggregates wrong: %v", tu)
			}
		default:
			t.Errorf("unexpected group %v", tu)
		}
	}
}

func TestGroupByNullHandling(t *testing.T) {
	r := relation.New(ints("g", "v"))
	r.AppendVals(value.Int(1), value.Null)
	r.AppendVals(value.Int(1), value.Int(4))
	r.AppendVals(value.Int(2), value.Null)
	got, err := GroupBy(r, []int{0}, []AggSpec{
		Sum(col("s"), ColExpr(1)),
		Count(col("cv"), ColExpr(1)),
		Count(col("cstar"), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range got.Tuples {
		switch tu[0].AsInt() {
		case 1:
			if tu[1].AsInt() != 4 || tu[2].AsInt() != 1 || tu[3].AsInt() != 2 {
				t.Errorf("group 1: %v", tu)
			}
		case 2:
			if !tu[1].IsNull() || tu[2].AsInt() != 0 || tu[3].AsInt() != 1 {
				t.Errorf("group 2 (all-null values): %v", tu)
			}
		}
	}
}

func TestGroupByGlobalAggregateOnEmptyInput(t *testing.T) {
	r := relation.New(ints("v"))
	got, err := GroupBy(r, nil, []AggSpec{Count(col("c"), nil), Sum(col("s"), ColExpr(0))})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.At(0)[0].AsInt() != 0 || !got.At(0)[1].IsNull() {
		t.Errorf("global agg on empty input: %v", got)
	}
	// But a grouped aggregate over empty input has no groups.
	got2, err := GroupBy(r, []int{0}, []AggSpec{Count(col("c"), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 0 {
		t.Errorf("grouped agg on empty input should be empty: %v", got2)
	}
}

func TestGroupByNullKeysGroupTogether(t *testing.T) {
	r := relation.New(ints("g", "v"))
	r.AppendVals(value.Null, value.Int(1))
	r.AppendVals(value.Null, value.Int(2))
	got, err := GroupBy(r, []int{0}, []AggSpec{Sum(col("s"), ColExpr(1))})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.At(0)[1].AsInt() != 3 {
		t.Errorf("NULL keys should form one group: %v", got)
	}
}

func TestSemiringAggMinPlusZeroForEmptyishGroups(t *testing.T) {
	r := rel(ints("g", "v"), []int64{1, 5}, []int64{1, 3})
	sr := semiring.MinPlus()
	got, err := GroupBy(r, []int{0}, []AggSpec{SemiringAgg(col("m"), sr, ColExpr(1))})
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0)[1].AsInt() != 3 {
		t.Errorf("min fold = %v", got.At(0)[1])
	}
	// Global semiring agg over empty input yields the semiring Zero.
	empty := relation.New(ints("v"))
	got2, err := GroupBy(empty, nil, []AggSpec{SemiringAgg(col("m"), sr, ColExpr(0))})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got2.At(0)[0].AsFloat(), 1) {
		t.Errorf("empty min-plus fold should be +Inf, got %v", got2.At(0)[0])
	}
}

func TestPartitionByKeepsEveryTuple(t *testing.T) {
	r := rel(ints("g", "v"), []int64{1, 10}, []int64{1, 20}, []int64{2, 5})
	got, err := PartitionBy(r, []int{0}, Sum(col("s"), ColExpr(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("partition by must keep all rows, got %d", got.Len())
	}
	for _, tu := range got.Tuples {
		wantSum := int64(30)
		if tu[0].AsInt() == 2 {
			wantSum = 5
		}
		if tu[2].AsInt() != wantSum {
			t.Errorf("row %v: want partition sum %d", tu, wantSum)
		}
	}
	if got.Sch.Arity() != 3 {
		t.Error("partition by appends one column")
	}
}

func TestGroupByPreservesFirstSeenOrder(t *testing.T) {
	r := rel(ints("g"), []int64{5}, []int64{2}, []int64{5}, []int64{9})
	got, err := GroupBy(r, []int{0}, []AggSpec{Count(col("c"), nil)})
	if err != nil {
		t.Fatal(err)
	}
	order := []int64{5, 2, 9}
	for i, want := range order {
		if got.At(i)[0].AsInt() != want {
			t.Errorf("group order[%d] = %v, want %d", i, got.At(i)[0], want)
		}
	}
}
