package ra

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/value"
)

// This file implements the worst-case-optimal multiway join (generic join):
// instead of folding a cyclic pattern through binary joins — whose
// intermediates can exceed the final result by the AGM gap (the 2-path
// blowup of triangle counting) — the operator fixes a variable elimination
// order and extends one variable at a time, intersecting the candidate sets
// of every atom that constrains the variable. Each level iterates the
// smallest candidate set and probes the rest, which is exactly the
// leapfrog/generic-join intersection and achieves the AGM worst-case bound.
//
// The per-atom candidate sets reuse the engine's existing dict-encoded
// access paths: a binary atom whose two join variables line up with a cached
// relation.CSR walks the CSR's ColumnDict codes and per-source edge blocks
// directly (no per-query build at all); every other atom gets a view-private
// hash trie built once per execution, keyed level by level in elimination
// order. Match semantics are value.Equal throughout — NULL equals NULL,
// numerics compare across int/float — identical to the engine's hash joins,
// so the operator is a drop-in replacement for a binary join tree over the
// same atoms: it emits, for every full variable binding, the cross product
// of each atom's matching rows, preserving exact bag multiplicities.

// WCOJVarCol binds one atom column to a join variable. A variable may appear
// on several columns of the same atom (transitively-implied same-relation
// equalities); such rows match only when all its columns agree.
type WCOJVarCol struct {
	Var int // variable id, in [0, WCOJSpec.NumVars)
	Col int // column index into the atom's relation
}

// WCOJAtom is one relation of the cyclic join core with its variable
// bindings. CSR optionally carries a cached adjacency index whose
// (SrcCol, DstCol) matches the atom's two variables in elimination order;
// when it covers the relation it replaces the trie build entirely.
type WCOJAtom struct {
	Rel     *relation.Relation
	VarCols []WCOJVarCol
	CSR     *relation.CSR
}

// WCOJSpec is a full multiway-join instance: the atoms, the number of
// variables, and the elimination order (a permutation of [0, NumVars)).
// Every variable must be bound by at least one atom.
type WCOJSpec struct {
	Atoms   []WCOJAtom
	NumVars int
	Order   []int
	Gov     *govern.Governor
}

// WCOJStats reports the work done by one execution: Builds counts hash
// tries constructed (CSR-backed atoms contribute zero — their sorted backing
// is the cached CSR, charged through the engine's CSR counters), Probes
// counts candidate-value intersection probes across all levels.
type WCOJStats struct {
	Builds int64
	Probes int64
}

// wcojLevel is one trie level of an atom: the columns carrying the level's
// variable (usually one).
type wcojLevel struct {
	vr   int
	cols []int
}

// trieNode is one node of an atom's hash trie. keys holds the distinct
// child values in first-seen row order (the deterministic iteration order);
// bucket maps a value hash to candidate key positions; kids parallels keys
// on interior levels; leafRows parallels keys on the last level, holding the
// matching relation rows per key.
type trieNode struct {
	keys     []value.Value
	bucket   map[uint64][]int32
	kids     []*trieNode
	leafRows [][]int32
}

func newTrieNode() *trieNode {
	return &trieNode{bucket: make(map[uint64][]int32)}
}

// child returns the position of v among the node's keys, or -1.
func (n *trieNode) child(v value.Value) int32 {
	h := value.HashCombine(0, v)
	for _, cand := range n.bucket[h] {
		if n.keys[cand].Equal(v) {
			return cand
		}
	}
	return -1
}

// put returns the position of v, inserting it if absent.
func (n *trieNode) put(v value.Value) int32 {
	if pos := n.child(v); pos >= 0 {
		return pos
	}
	pos := int32(len(n.keys))
	n.keys = append(n.keys, v)
	h := value.HashCombine(0, v)
	n.bucket[h] = append(n.bucket[h], pos)
	return pos
}

// atomState is the per-atom execution state: its levels in elimination
// order, and either a trie with a descent path or a CSR with the bound
// source ordinal and its lazily grouped edge block.
type atomState struct {
	rel    *relation.Relation
	levels []wcojLevel

	// trie path: path[d] is the node after binding d levels (path[0] = root).
	root *trieNode
	path []*trieNode

	// CSR fast path (binary atoms only).
	csr    *relation.CSR
	ord    int32 // bound source ordinal after level 0
	block  *csrBlock
	blocks []*csrBlock // memoized per source ordinal
	dstPos int32       // bound position in block.dsts after level 1
}

// csrBlock is one source ordinal's edges grouped by target ordinal: dsts in
// first-seen edge order, rows[k] the relation rows whose target is dsts[k].
type csrBlock struct {
	dsts []int32
	rows [][]int32
	pos  map[int32]int32 // target ordinal -> index into dsts
}

// levelsFor groups an atom's VarCols into per-variable levels ordered by the
// variables' positions in the elimination order.
func levelsFor(a WCOJAtom, pos []int) []wcojLevel {
	byVar := make(map[int][]int)
	var vars []int
	for _, vc := range a.VarCols {
		if _, seen := byVar[vc.Var]; !seen {
			vars = append(vars, vc.Var)
		}
		byVar[vc.Var] = append(byVar[vc.Var], vc.Col)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && pos[vars[j]] < pos[vars[j-1]]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	levels := make([]wcojLevel, len(vars))
	for i, vr := range vars {
		levels[i] = wcojLevel{vr: vr, cols: byVar[vr]}
	}
	return levels
}

// usableCSR reports whether the atom's CSR can serve as its sorted backing:
// a two-level single-column-per-level atom whose (SrcCol, DstCol) are the
// level columns in elimination order, covering the relation, with the
// target dictionary present.
func usableCSR(a WCOJAtom, levels []wcojLevel) bool {
	return a.CSR != nil && len(levels) == 2 &&
		len(levels[0].cols) == 1 && len(levels[1].cols) == 1 &&
		a.CSR.SrcCol == levels[0].cols[0] && a.CSR.DstCol == levels[1].cols[0] &&
		a.CSR.Dst != nil && a.CSR.Covers(a.Rel)
}

// buildTrie constructs the atom's hash trie. Rows whose columns disagree
// within a level (a variable on two columns with different values) can never
// match and are dropped at build time.
func buildTrie(rel *relation.Relation, levels []wcojLevel) *trieNode {
	root := newTrieNode()
rows:
	for row, tu := range rel.Tuples {
		n := root
		for d, lv := range levels {
			v := tu[lv.cols[0]]
			for _, c := range lv.cols[1:] {
				if !tu[c].Equal(v) {
					continue rows
				}
			}
			pos := n.put(v)
			if d == len(levels)-1 {
				for int(pos) >= len(n.leafRows) {
					n.leafRows = append(n.leafRows, nil)
				}
				n.leafRows[pos] = append(n.leafRows[pos], int32(row))
				break
			}
			for int(pos) >= len(n.kids) {
				n.kids = append(n.kids, nil)
			}
			if n.kids[pos] == nil {
				n.kids[pos] = newTrieNode()
			}
			n = n.kids[pos]
		}
	}
	return root
}

// blockFor lazily groups one source ordinal's edges by target ordinal,
// walking the CSR main block then the tail chain (ascending row order, the
// same order a trie build over the rows would see them).
func (a *atomState) blockFor(ord int32) *csrBlock {
	if int(ord) < len(a.blocks) && a.blocks[ord] != nil {
		return a.blocks[ord]
	}
	b := &csrBlock{pos: make(map[int32]int32)}
	c := a.csr
	add := func(dst, row int32) {
		k, ok := b.pos[dst]
		if !ok {
			k = int32(len(b.dsts))
			b.pos[dst] = k
			b.dsts = append(b.dsts, dst)
			b.rows = append(b.rows, nil)
		}
		b.rows[k] = append(b.rows[k], row)
	}
	if int(ord)+1 < len(c.Offsets) {
		for e := c.Offsets[ord]; e < c.Offsets[ord+1]; e++ {
			add(c.Targets[e], c.Rows[e])
		}
	}
	if int(ord) < len(c.TailHead) {
		for e := c.TailHead[ord]; e >= 0; e = c.TailNext[e] {
			add(c.TailTargets[e], c.TailRows[e])
		}
	}
	if int(ord) >= len(a.blocks) {
		grown := make([]*csrBlock, ord+1)
		copy(grown, a.blocks)
		a.blocks = grown
	}
	a.blocks[ord] = b
	return b
}

// count returns the number of distinct candidate values the atom offers at
// its depth-th level (all earlier levels bound).
func (a *atomState) count(depth int) int {
	if a.csr != nil {
		if depth == 0 {
			return a.csr.NumSrc()
		}
		return len(a.block.dsts)
	}
	return len(a.path[depth].keys)
}

// iterate calls f for each distinct candidate value at the atom's depth-th
// level, in deterministic first-seen order; f returning false stops early.
func (a *atomState) iterate(depth int, f func(v value.Value) bool) {
	if a.csr != nil {
		if depth == 0 {
			for _, k := range a.csr.Src.Keys {
				if !f(k) {
					return
				}
			}
			return
		}
		for _, d := range a.block.dsts {
			if !f(a.csr.Dst.Keys[d]) {
				return
			}
		}
		return
	}
	for _, k := range a.path[depth].keys {
		if !f(k) {
			return
		}
	}
}

// descend binds the atom's depth-th level to v, reporting whether any row
// matches. A successful descend must be undone with ascend.
func (a *atomState) descend(depth int, v value.Value) bool {
	if a.csr != nil {
		if depth == 0 {
			ord, ok := a.csr.SrcOrd(v)
			if !ok {
				return false
			}
			a.ord = ord
			a.block = a.blockFor(ord)
			return len(a.block.dsts) > 0
		}
		dst, ok := a.csr.Dst.Lookup(v)
		if !ok {
			return false
		}
		k, ok := a.block.pos[dst]
		if !ok {
			return false
		}
		a.dstPos = k
		return true
	}
	n := a.path[depth]
	pos := n.child(v)
	if pos < 0 {
		return false
	}
	if depth == len(a.levels)-1 {
		a.path = append(a.path, n) // leaf: stay, rows() reads n.rows via child pos
		a.dstPos = pos
		return true
	}
	a.path = append(a.path, n.kids[pos])
	return true
}

// ascend undoes the most recent successful descend.
func (a *atomState) ascend(depth int) {
	if a.csr != nil {
		if depth == 0 {
			a.block = nil
		}
		return
	}
	a.path = a.path[:len(a.path)-1]
}

// matchRows returns the atom's matching relation rows once all its levels
// are bound.
func (a *atomState) matchRows() []int32 {
	if a.csr != nil {
		return a.block.rows[a.dstPos]
	}
	leaf := a.path[len(a.path)-1]
	// The leaf descend parked the node itself with dstPos = key position;
	// interior tries store per-key row lists only at the last level, so the
	// rows live on the child-key granularity: rebuild via kids when present.
	return leaf.rowsAt(a.dstPos)
}

// rowsAt returns the rows recorded under key position pos of a leaf-level
// node.
func (n *trieNode) rowsAt(pos int32) []int32 {
	return n.leafRows[pos]
}

// WCOJ executes the generic-join multiway intersection and returns the
// joined relation — schema and bag contents identical to the equivalent
// binary join tree over the same atoms — plus the work counters. The spec
// must be well-formed (every variable bound by an atom, Order a permutation
// of the variables); malformed specs panic, as they indicate a planner bug.
func WCOJ(spec WCOJSpec) (*relation.Relation, WCOJStats) {
	var stats WCOJStats
	if len(spec.Atoms) == 0 {
		panic("ra: WCOJ with no atoms")
	}
	pos := make([]int, spec.NumVars)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range spec.Order {
		if v < 0 || v >= spec.NumVars || pos[v] >= 0 {
			panic(fmt.Sprintf("ra: WCOJ order is not a permutation: %v", spec.Order))
		}
		pos[v] = i
	}
	if len(spec.Order) != spec.NumVars {
		panic(fmt.Sprintf("ra: WCOJ order %v does not cover %d vars", spec.Order, spec.NumVars))
	}

	sch := spec.Atoms[0].Rel.Sch
	for _, a := range spec.Atoms[1:] {
		sch = sch.Concat(a.Rel.Sch)
	}
	out := relation.New(sch)

	atoms := make([]*atomState, len(spec.Atoms))
	// atomsAt[v] lists (atom, level) pairs whose level binds variable v; by
	// ordering each atom's levels along the elimination order, every earlier
	// level of the atom is already bound when the driver reaches v.
	type lvlRef struct {
		atom  int
		level int
	}
	atomsAt := make([][]lvlRef, spec.NumVars)
	for i, a := range spec.Atoms {
		st := &atomState{rel: a.Rel, levels: levelsFor(a, pos)}
		if usableCSR(a, st.levels) {
			st.csr = a.CSR
		} else {
			st.root = buildTrie(a.Rel, st.levels)
			st.path = []*trieNode{st.root}
			stats.Builds++
		}
		atoms[i] = st
		for d, lv := range st.levels {
			atomsAt[lv.vr] = append(atomsAt[lv.vr], lvlRef{atom: i, level: d})
		}
	}
	for v := 0; v < spec.NumVars; v++ {
		if len(atomsAt[v]) == 0 {
			panic(fmt.Sprintf("ra: WCOJ variable %d bound by no atom", v))
		}
	}

	arity := sch.Arity()
	scratch := make(relation.Tuple, arity)
	starts := make([]int, len(spec.Atoms)+1)
	for i, a := range spec.Atoms {
		starts[i+1] = starts[i] + a.Rel.Sch.Arity()
	}

	// emit walks the per-atom match lists, appending the cross product.
	var emit func(atom int)
	emit = func(atom int) {
		if atom == len(atoms) {
			spec.Gov.MustStep(1)
			out.Tuples = append(out.Tuples, append(relation.Tuple(nil), scratch...))
			return
		}
		a := atoms[atom]
		seg := scratch[starts[atom]:starts[atom+1]]
		for _, row := range a.matchRows() {
			copy(seg, a.rel.Tuples[row])
			emit(atom + 1)
		}
	}

	var solve func(depth int)
	solve = func(depth int) {
		if depth == len(spec.Order) {
			emit(0)
			return
		}
		v := spec.Order[depth]
		refs := atomsAt[v]
		// Generic join: iterate the smallest candidate set, probe the rest.
		it := refs[0]
		best := atoms[it.atom].count(it.level)
		for _, r := range refs[1:] {
			if c := atoms[r.atom].count(r.level); c < best {
				best, it = c, r
			}
		}
		atoms[it.atom].iterate(it.level, func(cand value.Value) bool {
			spec.Gov.MustStep(1)
			bound := 0
			ok := true
			for _, r := range refs {
				stats.Probes++
				if !atoms[r.atom].descend(r.level, cand) {
					ok = false
					break
				}
				bound++
			}
			if ok {
				solve(depth + 1)
			}
			for k := 0; k < bound; k++ {
				atoms[refs[k].atom].ascend(refs[k].level)
			}
			return true
		})
	}
	solve(0)
	return out, stats
}
