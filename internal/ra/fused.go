package ra

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// This file implements the fused aggregate-join kernels: MV-join (Eq. (4))
// and MM-join (Eq. (3)) computed without materializing the equi-join
// intermediate. The classic plan — EquiJoin followed by GroupBy — allocates
// one output tuple per matching edge only to feed it straight into the
// group hash table; the fused kernels probe a (typically cached) build-side
// hash index and fold the ⊙-products directly into the groups under ⊕.
// The output is bag-equal to the EquiJoin+GroupBy plan: identical for the
// discrete semirings (min, max, or), and equal up to float-summation
// reordering for (+, *).
//
// Both kernels accept a worker count for a morsel-parallel probe: the probe
// side is split into fixed-size morsels claimed off an atomic counter
// (Leis et al.'s morsel-driven scheduling), each worker folds into a
// private group table, and the partials merge under ⊕ — valid because ⊕ is
// commutative and associative with Zero as identity.

// probeMorsel is the number of probe-side tuples a worker claims at a time.
// Small enough to balance skewed buckets, large enough that the atomic
// claim is not the bottleneck.
const probeMorsel = 256

// groupTable accumulates ⊕-folds keyed by 1- or 2-column group keys, in
// first-seen order, mirroring GroupBy+SemiringAgg semantics exactly: a
// group is created for every matching join tuple (even if its product is
// NULL), NULL products are skipped (SQL aggregate semantics), and a group
// that never saw a non-NULL product yields the semiring's Zero.
//
// The table is open-addressed (linear probing over a power-of-two slot
// array) rather than a Go map: the fold runs once per matching edge, and at
// that rate the runtime map's hashing and bucket indirection dominate the
// probe loop.
type groupTable struct {
	sr      semiring.Semiring
	mask    uint64
	table   []int32 // slot -> group ordinal, -1 = empty
	hashes  []uint64
	keys    []relation.Tuple
	vals    []value.Value
	started []bool
	// arena is the current backing chunk for group-key tuples: keys are
	// carved out of it with full slice expressions instead of one
	// relation.Tuple allocation per new group. Chunks are abandoned (still
	// referenced by their keys) when full.
	arena []value.Value
	// scratch is the per-worker ordinal buffer the CSR kernels batch-encode
	// a morsel's source IDs into; the table is a per-worker object, so the
	// buffer is reused across that worker's morsels.
	scratch []int32
}

// keyArenaChunk is the group-key arena's chunk capacity in values.
const keyArenaChunk = 2048

// internKey copies a 1- or 2-column group key into the arena and returns the
// tuple view over it.
func (g *groupTable) internKey(k0, k1 value.Value, wide bool) relation.Tuple {
	n := 1
	if wide {
		n = 2
	}
	if cap(g.arena)-len(g.arena) < n {
		g.arena = make([]value.Value, 0, keyArenaChunk)
	}
	at := len(g.arena)
	g.arena = append(g.arena, k0)
	if wide {
		g.arena = append(g.arena, k1)
	}
	return relation.Tuple(g.arena[at : at+n : at+n])
}

// scratchOrds returns the worker's ordinal scratch buffer, sized to n.
func (g *groupTable) scratchOrds(n int) []int32 {
	if cap(g.scratch) < n {
		g.scratch = make([]int32, n)
	}
	return g.scratch[:n]
}

func newGroupTable(sr semiring.Semiring, capHint int) *groupTable {
	size := uint64(16)
	for int(size)/2 < capHint {
		size <<= 1
	}
	g := &groupTable{sr: sr, mask: size - 1, table: make([]int32, size)}
	for i := range g.table {
		g.table[i] = -1
	}
	return g
}

// slot returns the group ordinal for the key (k0) or (k0, k1), creating the
// group (at the semiring's Zero, not started) when absent.
func (g *groupTable) slot(k0, k1 value.Value, wide bool) int32 {
	h := value.HashCombine(0, k0)
	if wide {
		h = value.HashCombine(h, k1)
	}
	for i := h & g.mask; ; i = (i + 1) & g.mask {
		s := g.table[i]
		if s < 0 {
			s = int32(len(g.keys))
			g.keys = append(g.keys, g.internKey(k0, k1, wide))
			g.hashes = append(g.hashes, h)
			g.vals = append(g.vals, g.sr.Zero)
			g.started = append(g.started, false)
			g.table[i] = s
			if uint64(len(g.keys))*2 > uint64(len(g.table)) {
				g.grow()
			}
			return s
		}
		if g.hashes[s] == h {
			k := g.keys[s]
			if k[0].Equal(k0) && (!wide || k[1].Equal(k1)) {
				return s
			}
		}
	}
}

// grow doubles the slot array and re-places every group by its stored hash.
func (g *groupTable) grow() {
	size := uint64(len(g.table)) * 2
	g.mask = size - 1
	g.table = make([]int32, size)
	for i := range g.table {
		g.table[i] = -1
	}
	for s, h := range g.hashes {
		i := h & g.mask
		for g.table[i] >= 0 {
			i = (i + 1) & g.mask
		}
		g.table[i] = int32(s)
	}
}

// fold adds one ⊙-product under the group key (k0) or (k0, k1); wide
// selects the key arity.
func (g *groupTable) fold(k0, k1 value.Value, wide bool, v value.Value) {
	slot := g.slot(k0, k1, wide)
	if v.IsNull() {
		return
	}
	if !g.started[slot] {
		g.vals[slot] = v
		g.started[slot] = true
		return
	}
	g.vals[slot] = g.sr.Plus(g.vals[slot], v)
}

// merge folds another table's groups into g (the ⊕-combine of parallel
// partials). A group that never started contributes only its existence.
func (g *groupTable) merge(o *groupTable) {
	wide := false
	if len(o.keys) > 0 {
		wide = len(o.keys[0]) == 2
	}
	for i, k := range o.keys {
		var k1 value.Value
		if wide {
			k1 = k[1]
		}
		if !o.started[i] {
			g.fold(k[0], k1, wide, value.Null)
			continue
		}
		g.fold(k[0], k1, wide, o.vals[i])
	}
}

// relation emits the groups in first-seen order under the given schema.
func (g *groupTable) relation(sch schema.Schema) *relation.Relation {
	out := relation.NewWithCap(sch, len(g.keys))
	for i, k := range g.keys {
		t := make(relation.Tuple, 0, len(k)+1)
		t = append(t, k...)
		t = append(t, g.vals[i])
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// denseGroups is the groupTable specialized for a dictionary-encoded group
// key: group ordinals come from a ColumnDict on the build side, so a fold is
// an array access instead of a hash-and-compare. Groups exist only once
// touched by a matching join tuple (live), preserving GroupBy's semantics —
// a build-side row that never joins contributes no group.
type denseGroups struct {
	sr      semiring.Semiring
	vals    []value.Value
	started []bool
	live    []bool
	order   []int32 // live ordinals in first-touch order
	scratch []int32 // per-worker ordinal buffer for the CSR resolve pass
}

// scratchOrds returns the worker's ordinal scratch buffer, sized to n.
func (d *denseGroups) scratchOrds(n int) []int32 {
	if cap(d.scratch) < n {
		d.scratch = make([]int32, n)
	}
	return d.scratch[:n]
}

func newDenseGroups(sr semiring.Semiring, groups int) *denseGroups {
	return &denseGroups{
		sr:      sr,
		vals:    make([]value.Value, groups),
		started: make([]bool, groups),
		live:    make([]bool, groups),
	}
}

// fold adds one ⊙-product under the group ordinal, with the same NULL
// semantics as groupTable.fold.
func (d *denseGroups) fold(g int32, v value.Value) {
	if !d.live[g] {
		d.live[g] = true
		d.vals[g] = d.sr.Zero
		d.order = append(d.order, g)
	}
	if v.IsNull() {
		return
	}
	if !d.started[g] {
		d.vals[g] = v
		d.started[g] = true
		return
	}
	d.vals[g] = d.sr.Plus(d.vals[g], v)
}

// merge folds another partial's live groups into d under ⊕.
func (d *denseGroups) merge(o *denseGroups) {
	for _, g := range o.order {
		if !o.started[g] {
			d.fold(g, value.Null)
			continue
		}
		d.fold(g, o.vals[g])
	}
}

// relation emits the live groups in first-touch order, resolving ordinals
// back to key values through the dictionary.
func (d *denseGroups) relation(keys []value.Value, sch schema.Schema) *relation.Relation {
	out := relation.NewWithCap(sch, len(d.order))
	for _, g := range d.order {
		out.Tuples = append(out.Tuples, relation.Tuple{keys[g], d.vals[g]})
	}
	return out
}

// runMorselsDense mirrors runMorsels for the dictionary-encoded fold.
func runMorselsDense(n, workers, groups int, sr semiring.Semiring, gov *govern.Governor, probe func(dg *denseGroups, lo, hi int)) *denseGroups {
	if workers <= 1 || n < 2*workers {
		dg := newDenseGroups(sr, groups)
		for lo := 0; lo < n; lo += probeMorsel {
			hi := lo + probeMorsel
			if hi > n {
				hi = n
			}
			gov.MustStep(hi - lo)
			probe(dg, lo, hi)
		}
		return dg
	}
	var cursor int64
	partials := make([]*denseGroups, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dg := newDenseGroups(sr, groups)
			for {
				lo := int(atomic.AddInt64(&cursor, probeMorsel)) - probeMorsel
				if lo >= n {
					break
				}
				hi := lo + probeMorsel
				if hi > n {
					hi = n
				}
				// Drain on governor stop; never panic off the statement
				// goroutine.
				if gov.Step(hi-lo) != nil {
					break
				}
				probe(dg, lo, hi)
			}
			partials[w] = dg
		}(w)
	}
	wg.Wait()
	gov.MustOK()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc.merge(p)
	}
	return acc
}

// runMorsels drives the morsel-parallel probe: probe-side rows [0, n) are
// claimed in fixed-size morsels off an atomic cursor; each worker folds
// into a private group table and the partials merge in worker order. The
// governor is consulted once per morsel: the serial path aborts (recovered
// at the engine boundary), workers drain and the statement goroutine
// re-raises via MustOK after the join.
func runMorsels(n, workers int, sr semiring.Semiring, gov *govern.Governor, probe func(gt *groupTable, lo, hi int)) *groupTable {
	if workers <= 1 || n < 2*workers {
		gt := newGroupTable(sr, n)
		for lo := 0; lo < n; lo += probeMorsel {
			hi := lo + probeMorsel
			if hi > n {
				hi = n
			}
			gov.MustStep(hi - lo)
			probe(gt, lo, hi)
		}
		return gt
	}
	var cursor int64
	partials := make([]*groupTable, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gt := newGroupTable(sr, n/workers)
			for {
				lo := int(atomic.AddInt64(&cursor, probeMorsel)) - probeMorsel
				if lo >= n {
					break
				}
				hi := lo + probeMorsel
				if hi > n {
					hi = n
				}
				if gov.Step(hi-lo) != nil {
					break
				}
				probe(gt, lo, hi)
			}
			partials[w] = gt
		}(w)
	}
	wg.Wait()
	gov.MustOK()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc.merge(p)
	}
	return acc
}

// FusedMVJoin computes the MV-join aggregate (Eq. (4)) by probing idx — a
// hash index on a's aJoin column, normally served from the catalog's
// version-keyed cache — with every c tuple, folding a.W ⊙ c.W into the
// group on a.aKeep. Because the index lives on the matrix side, an
// immutable edge table is built once and probed by each iteration's fresh
// vector, inverting the build/probe roles of the EquiJoin+GroupBy plan
// (which rebuilt on the vector every iteration). idx must index a on
// exactly {aJoin}.
//
// dict optionally dictionary-encodes a's aKeep column (cached alongside the
// index); when present and covering a, the fold becomes a dense-array
// accumulate — no group hashing or key comparison per matched edge. A nil
// or mismatched dict falls back to the hashed group table.
//
// sp, when non-nil, receives the kernel's probe wall time, worker count and
// morsel count; nil skips every clock read.
func FusedMVJoin(a, c *relation.Relation, idx *relation.HashIndex, dict *relation.ColumnDict, ac MatCols, cc VecCols, aKeep int, sr semiring.Semiring, workers int, gov *govern.Governor, sp *obs.Span) *relation.Relation {
	if sp != nil {
		defer observeFused(sp, c.Len(), workers)(time.Now())
	}
	probeCols := []int{cc.ID}
	sch := schema.Schema{
		{Name: "ID", Type: a.Sch[aKeep].Type},
		{Name: "vw", Type: value.KindFloat},
	}
	if dict != nil && dict.Col == aKeep && len(dict.Ords) == a.Len() {
		ords := dict.Ords
		dg := runMorselsDense(c.Len(), workers, len(dict.Keys), sr, gov, func(dg *denseGroups, lo, hi int) {
			for _, ct := range c.Tuples[lo:hi] {
				idx.ProbeEach(ct, probeCols, func(row int) bool {
					at := a.Tuples[row]
					dg.fold(ords[row], sr.Times(at[ac.W], ct[cc.W]))
					return true
				})
			}
		})
		return dg.relation(dict.Keys, sch)
	}
	gt := runMorsels(c.Len(), workers, sr, gov, func(gt *groupTable, lo, hi int) {
		for _, ct := range c.Tuples[lo:hi] {
			idx.ProbeEach(ct, probeCols, func(row int) bool {
				at := a.Tuples[row]
				gt.fold(at[aKeep], value.Value{}, false, sr.Times(at[ac.W], ct[cc.W]))
				return true
			})
		}
	})
	return gt.relation(sch)
}

// FusedMMJoin computes the MM-join aggregate (Eq. (3)) with the same
// fusion. idx is a hash index on the build side's join column: with
// idxOnLeft false it indexes b on {bJoin} and the probe scans a (the
// EquiJoin build/probe orientation); with idxOnLeft true it indexes a on
// {aJoin} and the probe scans b — the engine picks the side whose index
// survives across iterations (the analyzed base table). The ⊙-product
// argument order is a.W ⊙ b.W either way, so non-commutative ⊙ is safe.
// sp is as in FusedMVJoin.
func FusedMMJoin(a, b *relation.Relation, idx *relation.HashIndex, idxOnLeft bool, ac, bc MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring, workers int, gov *govern.Governor, sp *obs.Span) *relation.Relation {
	if sp != nil {
		probeLen := a.Len()
		if idxOnLeft {
			probeLen = b.Len()
		}
		defer observeFused(sp, probeLen, workers)(time.Now())
	}
	var gt *groupTable
	if idxOnLeft {
		probeCols := []int{bJoin}
		gt = runMorsels(b.Len(), workers, sr, gov, func(gt *groupTable, lo, hi int) {
			for _, bt := range b.Tuples[lo:hi] {
				idx.ProbeEach(bt, probeCols, func(row int) bool {
					at := a.Tuples[row]
					gt.fold(at[aKeep], bt[bKeep], true, sr.Times(at[ac.W], bt[bc.W]))
					return true
				})
			}
		})
	} else {
		probeCols := []int{aJoin}
		gt = runMorsels(a.Len(), workers, sr, gov, func(gt *groupTable, lo, hi int) {
			for _, at := range a.Tuples[lo:hi] {
				idx.ProbeEach(at, probeCols, func(row int) bool {
					bt := b.Tuples[row]
					gt.fold(at[aKeep], bt[bKeep], true, sr.Times(at[ac.W], bt[bc.W]))
					return true
				})
			}
		})
	}
	return gt.relation(schema.Schema{
		{Name: "F", Type: a.Sch[aKeep].Type},
		{Name: "T", Type: b.Sch[bKeep].Type},
		{Name: "ew", Type: value.KindFloat},
	})
}

// observeFused records a fused kernel's probe shape into sp. It is called
// only on the observed path (sp != nil): the returned closure is deferred
// with time.Now() captured at kernel entry, so the unobserved path pays a
// single nil check and no clock read.
func observeFused(sp *obs.Span, probeLen, workers int) func(time.Time) {
	return func(t0 time.Time) {
		sp.ProbeDur = time.Since(t0)
		if workers <= 1 {
			workers = 1
		}
		sp.Workers = workers
		sp.Morsels = int64((probeLen + probeMorsel - 1) / probeMorsel)
	}
}
