package ra

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func pairRel(pairs ...[2]int64) *relation.Relation {
	r := relation.New(schema.Cols(value.KindInt, "a", "b"))
	for _, p := range pairs {
		r.AppendVals(value.Int(p[0]), value.Int(p[1]))
	}
	return r
}

func TestTupleSetDiffAdd(t *testing.T) {
	s := NewTupleSet(pairRel([2]int64{1, 1}, [2]int64{2, 2}, [2]int64{1, 1}))
	if s.Len() != 2 {
		t.Fatalf("seed should dedup: len = %d, want 2", s.Len())
	}
	if !s.Contains(relation.Tuple{value.Int(1), value.Int(1)}) {
		t.Error("seeded tuple missing")
	}
	// One old row, one new row appearing twice: the delta is the new row
	// once (Difference-after-Distinct semantics).
	d := s.DiffAdd(pairRel([2]int64{2, 2}, [2]int64{3, 3}, [2]int64{3, 3}))
	if d.Len() != 1 || d.Tuples[0][0].AsInt() != 3 {
		t.Fatalf("DiffAdd delta = %v, want just (3,3)", d.Tuples)
	}
	if s.Len() != 3 {
		t.Fatalf("set should have absorbed the delta: len = %d, want 3", s.Len())
	}
	// A second pass with the same rows is empty: the set persists.
	if d2 := s.DiffAdd(pairRel([2]int64{3, 3})); d2.Len() != 0 {
		t.Fatalf("re-adding known rows produced %d rows", d2.Len())
	}
}

func TestTupleSetArityMismatch(t *testing.T) {
	s := NewTupleSet(pairRel([2]int64{1, 1}))
	if s.Contains(relation.Tuple{value.Int(1)}) {
		t.Error("shorter tuple must not be a member")
	}
	narrow := relation.New(schema.Cols(value.KindInt, "x"))
	narrow.AppendVals(value.Int(9))
	// Mismatched arity degrades to a plain Difference without touching
	// (or crashing) the set.
	if d := s.DiffAdd(narrow); d.Len() != 1 {
		t.Fatalf("mismatched DiffAdd returned %d rows, want 1", d.Len())
	}
	if s.Len() != 1 {
		t.Fatalf("mismatched DiffAdd mutated the set: len = %d", s.Len())
	}
}

// The satellite's proof obligation: with a seeded set, each iteration of a
// growing accumulation costs O(|Δ|); with plain Difference it costs O(|R|)
// because the membership hash is rebuilt from the full accumulated relation
// every time. The two benchmarks run the same iteration schedule — |R| grows
// by a constant-size delta per round — so their ns/op gap is the rebuild.
const (
	diffBenchRounds = 200
	diffBenchDelta  = 32
)

func benchDeltas() []*relation.Relation {
	ds := make([]*relation.Relation, diffBenchRounds)
	for i := range ds {
		d := relation.NewWithCap(schema.Cols(value.KindInt, "a", "b"), diffBenchDelta)
		for j := 0; j < diffBenchDelta; j++ {
			v := int64(i*diffBenchDelta + j)
			d.AppendVals(value.Int(v), value.Int(v))
		}
		ds[i] = d
	}
	return ds
}

func BenchmarkSeededDiff(b *testing.B) {
	deltas := benchDeltas()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewTupleSet(deltas[0])
		for _, d := range deltas[1:] {
			if out := s.DiffAdd(d); out.Len() != diffBenchDelta {
				b.Fatalf("delta len = %d", out.Len())
			}
		}
	}
}

func BenchmarkFullDiff(b *testing.B) {
	deltas := benchDeltas()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc := deltas[0].Clone()
		for _, d := range deltas[1:] {
			out := Difference(d, acc)
			if out.Len() != diffBenchDelta {
				b.Fatalf("delta len = %d", out.Len())
			}
			for _, t := range out.Tuples {
				acc.Append(t)
			}
		}
	}
}

// TestSeededDiffMatchesFullDiff ties the benchmarks together: both
// strategies yield identical per-round deltas.
func TestSeededDiffMatchesFullDiff(t *testing.T) {
	deltas := benchDeltas()[:8]
	s := NewTupleSet(deltas[0])
	acc := deltas[0].Clone()
	for round, d := range deltas[1:] {
		// Mix in some already-seen rows to exercise the dedup path.
		probe := d.Clone()
		for _, old := range acc.Tuples[:4] {
			probe.Append(old.Clone())
		}
		want := Difference(probe, acc)
		got := s.DiffAdd(probe)
		if fmt.Sprint(multisetInts(got)) != fmt.Sprint(multisetInts(want)) {
			t.Fatalf("round %d: seeded %v != full %v", round, got.Tuples, want.Tuples)
		}
		for _, tu := range want.Tuples {
			acc.Append(tu)
		}
	}
}

func multisetInts(r *relation.Relation) map[int64]int {
	m := map[int64]int{}
	for _, tu := range r.Tuples {
		m[tu[0].AsInt()]++
	}
	return m
}
