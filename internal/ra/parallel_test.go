package ra

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/value"
)

func TestEquiJoinParallelAgreesWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for trial := 0; trial < 10; trial++ {
			r := randRel(rng, 2, 300, 20)
			s := randRel(rng, 2, 100, 20)
			spec := EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin}
			serial := EquiJoin(r, s, spec)
			par := EquiJoinParallel(r, s, spec, workers)
			if !serial.Equal(par) {
				t.Fatalf("workers=%d trial=%d: parallel join differs (%d vs %d rows)",
					workers, trial, par.Len(), serial.Len())
			}
		}
	}
}

func TestEquiJoinParallelSmallInputFallsBack(t *testing.T) {
	r := rel(ints("k"), []int64{1}, []int64{2})
	s := rel(ints("k"), []int64{1})
	out := EquiJoinParallel(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}}, 8)
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
}

func TestSemiringGroupByParallelAgreesWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	sr := semiring.PlusTimes()
	expr := func(tu relation.Tuple) (value.Value, error) {
		return value.Float(tu[1].AsFloat()), nil
	}
	plus := func(a, b relation.Tuple) error {
		a[1] = sr.Plus(a[1], b[1])
		return nil
	}
	for _, workers := range []int{0, 1, 3, 8} {
		for trial := 0; trial < 10; trial++ {
			r := randRel(rng, 2, 400, 15)
			agg := SemiringAgg(col("v"), sr, expr)
			serial, err := GroupBy(r, []int{0}, []AggSpec{agg})
			if err != nil {
				t.Fatal(err)
			}
			par, err := SemiringGroupByParallel(r, []int{0}, agg, plus, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !serial.Equal(par) {
				t.Fatalf("workers=%d: parallel group-by differs\n%s\nvs\n%s", workers, par, serial)
			}
		}
	}
}

func TestSemiringGroupByParallelMinSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	sr := semiring.MinPlus()
	expr := func(tu relation.Tuple) (value.Value, error) { return tu[1], nil }
	plus := func(a, b relation.Tuple) error {
		a[1] = sr.Plus(a[1], b[1])
		return nil
	}
	r := randRel(rng, 2, 500, 10)
	agg := SemiringAgg(col("v"), sr, expr)
	serial, err := GroupBy(r, []int{0}, []AggSpec{agg})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SemiringGroupByParallel(r, []int{0}, agg, plus, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par) {
		t.Fatal("min-plus parallel group-by differs")
	}
}

func TestSemiringGroupByParallelEmpty(t *testing.T) {
	r := relation.New(ints("g", "v"))
	agg := SemiringAgg(col("v"), semiring.PlusTimes(), ColExpr(1))
	out, err := SemiringGroupByParallel(r, []int{0}, agg, func(a, b relation.Tuple) error { return nil }, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty input gave %d groups", out.Len())
	}
}

// TestMergeGroupPartialsSharedKeysManyWorkers is the merge-path regression
// test: with more than two workers and every group key present in every
// partition, each partial beyond the first must ⊕-fold into an accumulator
// tuple the merge already owns — and keys that first appear late force the
// accumulator (and its hash index) to grow mid-merge. A merge that aliased
// partial tuples into the accumulator, or probed a stale index snapshot,
// would double-count or drop groups here.
func TestMergeGroupPartialsSharedKeysManyWorkers(t *testing.T) {
	sr := semiring.PlusTimes()
	r := relation.New(ints("g", "v"))
	const workers = 6
	// 600 rows split 100 per worker: keys 0..9 appear in every partition;
	// key 100+w appears only in partition w, at its end.
	for w := 0; w < workers; w++ {
		for i := 0; i < 99; i++ {
			r.Append(relation.Tuple{value.Int(int64(i % 10)), value.Int(1)})
		}
		r.Append(relation.Tuple{value.Int(int64(100 + w)), value.Int(1)})
	}
	expr := func(tu relation.Tuple) (value.Value, error) { return value.Float(tu[1].AsFloat()), nil }
	plus := func(a, b relation.Tuple) error {
		a[1] = sr.Plus(a[1], b[1])
		return nil
	}
	agg := SemiringAgg(col("v"), sr, expr)
	serial, err := GroupBy(r, []int{0}, []AggSpec{agg})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SemiringGroupByParallel(r, []int{0}, agg, plus, workers)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par) {
		t.Fatalf("merge with shared keys differs:\n%s\nvs\n%s", par, serial)
	}
	// The merged result must own its tuples: mutating it must not write
	// through into the source relation's tuples.
	for _, pt := range par.Tuples {
		pt[1] = value.Float(-1)
	}
	for _, rt := range r.Tuples {
		if rt[1].Equal(value.Float(-1)) {
			t.Fatal("merge aliased accumulator tuples into the input relation")
		}
	}
}
