package ra

import (
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file holds the vectorized operator kernels: batch-at-a-time
// counterparts of Select, Project, and GroupBy that evaluate expressions
// over a relation.Chunk (one closure dispatch per batch per AST node, tight
// loops inside) instead of one closure tree per row. Predicates refine a
// selection vector, so σ costs index passes rather than per-row tuple
// clones; projections assemble their output tuples from one flat value
// array; and the integer-keyed group-by replaces the per-row hash-bucket
// probe with dense or map-based group ids. Every kernel is semantically
// exact against its row counterpart — the SQL layer's differential fuzz
// (FuzzVectorVsRow) and the algos differential suite pin that — and
// anything a kernel cannot express runs the row closure inside a batch
// loop (the row fallback), never a different semantics.

// VecExpr evaluates an expression over a chunk, filling out[i] with the
// value for the chunk's i-th live row. len(out) must equal ch.Len().
type VecExpr func(ch *relation.Chunk, out []value.Value) error

// VecPred refines a chunk to the selection vector (physical row indexes,
// ascending) of live rows satisfying the predicate. UNKNOWN (NULL) filters
// the row out, as SQL WHERE does.
type VecPred func(ch *relation.Chunk) ([]int32, error)

// CmpOp is a comparison operator for the selection kernels.
type CmpOp uint8

// The comparison operators, matching SQL's =, <>, <, <=, >, >=.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// CmpOpFromString maps a SQL comparison token to its CmpOp.
func CmpOpFromString(op string) (CmpOp, bool) {
	switch op {
	case "=":
		return CmpEq, true
	case "<>":
		return CmpNe, true
	case "<":
		return CmpLt, true
	case "<=":
		return CmpLe, true
	case ">":
		return CmpGt, true
	case ">=":
		return CmpGe, true
	}
	return 0, false
}

// holds reports whether a three-way comparison result satisfies the op.
func (op CmpOp) holds(c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	}
	return c >= 0
}

// VecColExpr reads column i for every live row.
func VecColExpr(i int) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		rel := ch.Rel
		if ch.Sel == nil {
			for r := range out {
				out[r] = rel.Tuples[r][i]
			}
			return nil
		}
		for r, row := range ch.Sel {
			out[r] = rel.Tuples[row][i]
		}
		return nil
	}
}

// VecConstExpr fills v for every live row.
func VecConstExpr(v value.Value) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		for i := range out {
			out[i] = v
		}
		return nil
	}
}

// VecFallbackExpr runs a row expression inside a batch loop — the row
// fallback for expression shapes without a dedicated kernel.
func VecFallbackExpr(e Expr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		for i := range out {
			v, err := e(ch.Row(i))
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
}

// evalPair evaluates both operand buffers of a binary kernel. The left
// operand lands in out (the caller's buffer, overwritten by the combine
// loop anyway), so each binary node allocates one scratch buffer, not two.
func evalPair(ch *relation.Chunk, l, r VecExpr, out []value.Value) ([]value.Value, []value.Value, error) {
	if err := l(ch, out); err != nil {
		return nil, nil, err
	}
	rb := make([]value.Value, len(out))
	if err := r(ch, rb); err != nil {
		return nil, nil, err
	}
	return out, rb, nil
}

// VecArith builds the kernel for +, -, *, /, % with the row path's exact
// semantics (numeric promotion, NULL propagation, div/mod-by-zero → NULL,
// non-numeric operands → error).
func VecArith(op string, l, r VecExpr) VecExpr {
	var f func(a, b value.Value) (value.Value, error)
	switch op {
	case "+":
		f = value.Add
	case "-":
		f = value.Sub
	case "*":
		f = value.Mul
	case "/":
		f = value.Div
	default:
		f = value.Mod
	}
	return func(ch *relation.Chunk, out []value.Value) error {
		lb, rb, err := evalPair(ch, l, r, out)
		if err != nil {
			return err
		}
		for i := range out {
			v, err := f(lb[i], rb[i])
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
}

// VecArithCols is the typed arithmetic kernel for column ⊕ column: when
// both columns extract dense it computes directly on the unboxed vectors
// (no operand buffers, no per-element numericPair checks); otherwise it
// runs the generic kernel. Division by zero yields NULL, as value.Div does;
// %, whose row semantics truncate floats through AsInt, stays typed only
// for int⊕int.
func VecArithCols(op string, lcol, rcol int, generic VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		lv, rv := ch.ColVec(lcol), ch.ColVec(rcol)
		if !lv.Dense() || !rv.Dense() {
			return generic(ch, out)
		}
		if lv.Kind == value.KindInt && rv.Kind == value.KindInt {
			if f := intArith(op); f != nil {
				li, ri := lv.Ints, rv.Ints
				if ch.Sel == nil {
					for i := range out {
						out[i] = f(li[i], ri[i])
					}
				} else {
					for i, row := range ch.Sel {
						out[i] = f(li[row], ri[row])
					}
				}
				return nil
			}
			// Int "/" promotes to float below, like value.Div.
		} else if op == "%" {
			return generic(ch, out)
		}
		f := floatArith(op)
		if f == nil {
			return generic(ch, out)
		}
		lf, rf := denseFloats(lv), denseFloats(rv)
		if ch.Sel == nil {
			for i := range out {
				out[i] = f(lf(int32(i)), rf(int32(i)))
			}
		} else {
			for i, row := range ch.Sel {
				out[i] = f(lf(row), rf(row))
			}
		}
		return nil
	}
}

// VecArithColConst is the typed arithmetic kernel for column ⊕ constant
// (colLeft) or constant ⊕ column. Non-numeric or NULL constants run the
// generic kernel, whose per-value semantics (NULL propagation, type errors)
// are the row path's.
func VecArithColConst(op string, col int, k value.Value, colLeft bool, generic VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		cv := ch.ColVec(col)
		if !cv.Dense() || !k.IsNumeric() {
			return generic(ch, out)
		}
		if cv.Kind == value.KindInt && k.K == value.KindInt {
			if f := intArith(op); f != nil {
				ints, ki := cv.Ints, k.I
				app := func(v int64) value.Value { return f(v, ki) }
				if !colLeft {
					app = func(v int64) value.Value { return f(ki, v) }
				}
				if ch.Sel == nil {
					for i := range out {
						out[i] = app(ints[i])
					}
				} else {
					for i, row := range ch.Sel {
						out[i] = app(ints[row])
					}
				}
				return nil
			}
		} else if op == "%" {
			return generic(ch, out)
		}
		f := floatArith(op)
		if f == nil {
			return generic(ch, out)
		}
		cf, kf := denseFloats(cv), k.AsFloat()
		app := func(row int32) value.Value { return f(cf(row), kf) }
		if !colLeft {
			app = func(row int32) value.Value { return f(kf, cf(row)) }
		}
		if ch.Sel == nil {
			for i := range out {
				out[i] = app(int32(i))
			}
		} else {
			for i, row := range ch.Sel {
				out[i] = app(row)
			}
		}
		return nil
	}
}

// intArith returns the unboxed int⊕int combine for ops whose row semantics
// stay integral (nil for "/" — value.Div always promotes to float).
func intArith(op string) func(a, b int64) value.Value {
	switch op {
	case "+":
		return func(a, b int64) value.Value { return value.Int(a + b) }
	case "-":
		return func(a, b int64) value.Value { return value.Int(a - b) }
	case "*":
		return func(a, b int64) value.Value { return value.Int(a * b) }
	case "%":
		return func(a, b int64) value.Value {
			if b == 0 {
				return value.Null
			}
			return value.Int(a % b)
		}
	}
	return nil
}

// floatArith returns the unboxed float combine matching value.*'s promoted
// semantics (nil for "%").
func floatArith(op string) func(a, b float64) value.Value {
	switch op {
	case "+":
		return func(a, b float64) value.Value { return value.Float(a + b) }
	case "-":
		return func(a, b float64) value.Value { return value.Float(a - b) }
	case "*":
		return func(a, b float64) value.Value { return value.Float(a * b) }
	case "/":
		return func(a, b float64) value.Value {
			if b == 0 {
				return value.Null
			}
			return value.Float(a / b)
		}
	}
	return nil
}

// VecCompareExpr builds the boolean-producing comparison kernel (for
// comparisons nested under OR/NOT, where a selection kernel does not
// apply). NULL operands yield NULL, per three-valued logic.
func VecCompareExpr(op CmpOp, l, r VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		lb, rb, err := evalPair(ch, l, r, out)
		if err != nil {
			return err
		}
		for i := range out {
			lv, rv := lb[i], rb[i]
			if lv.IsNull() || rv.IsNull() {
				out[i] = value.Null
				continue
			}
			out[i] = value.Bool(op.holds(lv.Compare(rv)))
		}
		return nil
	}
}

// VecAnd is SQL three-valued AND over two boolean buffers.
func VecAnd(l, r VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		lb, rb, err := evalPair(ch, l, r, out)
		if err != nil {
			return err
		}
		for i := range out {
			lv, rv := lb[i], rb[i]
			switch {
			case !lv.IsNull() && !lv.AsBool() || !rv.IsNull() && !rv.AsBool():
				out[i] = value.Bool(false)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null
			default:
				out[i] = value.Bool(true)
			}
		}
		return nil
	}
}

// VecOr is SQL three-valued OR over two boolean buffers.
func VecOr(l, r VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		lb, rb, err := evalPair(ch, l, r, out)
		if err != nil {
			return err
		}
		for i := range out {
			lv, rv := lb[i], rb[i]
			switch {
			case !lv.IsNull() && lv.AsBool() || !rv.IsNull() && rv.AsBool():
				out[i] = value.Bool(true)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null
			default:
				out[i] = value.Bool(false)
			}
		}
		return nil
	}
}

// VecNot negates a boolean buffer; NULL stays NULL.
func VecNot(x VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		if err := x(ch, out); err != nil {
			return err
		}
		for i, v := range out {
			if v.IsNull() {
				continue
			}
			out[i] = value.Bool(!v.AsBool())
		}
		return nil
	}
}

// VecNeg arithmetic-negates a buffer with value.Neg's semantics.
func VecNeg(x VecExpr) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		if err := x(ch, out); err != nil {
			return err
		}
		for i, v := range out {
			nv, err := value.Neg(v)
			if err != nil {
				return err
			}
			out[i] = nv
		}
		return nil
	}
}

// VecIsNull builds IS [NOT] NULL over a buffer.
func VecIsNull(x VecExpr, negated bool) VecExpr {
	return func(ch *relation.Chunk, out []value.Value) error {
		if err := x(ch, out); err != nil {
			return err
		}
		for i, v := range out {
			out[i] = value.Bool(v.IsNull() != negated)
		}
		return nil
	}
}

// appendSel builds a refined selection vector from the chunk's live rows.
func appendSel(ch *relation.Chunk, keep func(pos int, row int32) bool) []int32 {
	sel := make([]int32, 0, ch.Len())
	if ch.Sel == nil {
		for row := range ch.Rel.Tuples {
			if keep(row, int32(row)) {
				sel = append(sel, int32(row))
			}
		}
		return sel
	}
	for pos, row := range ch.Sel {
		if keep(pos, row) {
			sel = append(sel, row)
		}
	}
	return sel
}

// SelCompareColConst is the hot selection kernel: column ⋈ constant. A
// dense int or float column against a numeric constant runs a tight typed
// loop; anything else compares the boxed column values directly — still one
// dispatch per batch. A NULL constant keeps no rows (the comparison is
// UNKNOWN everywhere).
func SelCompareColConst(col int, op CmpOp, k value.Value) VecPred {
	return func(ch *relation.Chunk) ([]int32, error) {
		if k.IsNull() {
			return []int32{}, nil
		}
		cv := ch.ColVec(col)
		switch {
		case cv.Kind == value.KindInt && k.K == value.KindInt:
			ki := k.I
			return appendSel(ch, func(_ int, row int32) bool {
				return op.holds(cmpInt(cv.Ints[row], ki))
			}), nil
		case cv.Kind == value.KindInt && k.K == value.KindFloat:
			kf := k.F
			return appendSel(ch, func(_ int, row int32) bool {
				return op.holds(cmpFloat(float64(cv.Ints[row]), kf))
			}), nil
		case cv.Kind == value.KindFloat && k.IsNumeric():
			kf := k.AsFloat()
			return appendSel(ch, func(_ int, row int32) bool {
				return op.holds(cmpFloat(cv.Floats[row], kf))
			}), nil
		}
		tuples := ch.Rel.Tuples
		return appendSel(ch, func(_ int, row int32) bool {
			v := tuples[row][col]
			return !v.IsNull() && op.holds(v.Compare(k))
		}), nil
	}
}

// SelCompareColCol is the column ⋈ column selection kernel, typed when both
// columns extracted densely with the same numeric shape.
func SelCompareColCol(lcol, rcol int, op CmpOp) VecPred {
	return func(ch *relation.Chunk) ([]int32, error) {
		lv, rv := ch.ColVec(lcol), ch.ColVec(rcol)
		switch {
		case lv.Kind == value.KindInt && rv.Kind == value.KindInt:
			return appendSel(ch, func(_ int, row int32) bool {
				return op.holds(cmpInt(lv.Ints[row], rv.Ints[row]))
			}), nil
		case lv.Dense() && rv.Dense():
			lf, rf := denseFloats(lv), denseFloats(rv)
			return appendSel(ch, func(_ int, row int32) bool {
				return op.holds(cmpFloat(lf(row), rf(row)))
			}), nil
		}
		tuples := ch.Rel.Tuples
		return appendSel(ch, func(_ int, row int32) bool {
			a, b := tuples[row][lcol], tuples[row][rcol]
			return !a.IsNull() && !b.IsNull() && op.holds(a.Compare(b))
		}), nil
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// denseFloats adapts a dense column to float reads for mixed int/float
// comparisons.
func denseFloats(v relation.ColVec) func(row int32) float64 {
	if v.Kind == value.KindInt {
		ints := v.Ints
		return func(row int32) float64 { return float64(ints[row]) }
	}
	floats := v.Floats
	return func(row int32) float64 { return floats[row] }
}

// SelCompare evaluates two expression buffers and keeps rows where the
// comparison holds and neither side is NULL — the general comparison
// selection kernel for computed operands.
func SelCompare(op CmpOp, l, r VecExpr) VecPred {
	return func(ch *relation.Chunk) ([]int32, error) {
		lb, rb, err := evalPair(ch, l, r, make([]value.Value, ch.Len()))
		if err != nil {
			return nil, err
		}
		return appendSel(ch, func(pos int, _ int32) bool {
			lv, rv := lb[pos], rb[pos]
			return !lv.IsNull() && !rv.IsNull() && op.holds(lv.Compare(rv))
		}), nil
	}
}

// SelFromExpr keeps rows whose boolean buffer value is true (UNKNOWN and
// false filter out) — the adapter from a computed boolean expression to a
// selection.
func SelFromExpr(e VecExpr) VecPred {
	return func(ch *relation.Chunk) ([]int32, error) {
		buf := make([]value.Value, ch.Len())
		if err := e(ch, buf); err != nil {
			return nil, err
		}
		return appendSel(ch, func(pos int, _ int32) bool {
			v := buf[pos]
			return !v.IsNull() && v.AsBool()
		}), nil
	}
}

// SelFallback runs a row predicate inside a batch loop.
func SelFallback(p Pred) VecPred {
	return func(ch *relation.Chunk) ([]int32, error) {
		var ferr error
		sel := appendSel(ch, func(_ int, row int32) bool {
			if ferr != nil {
				return false
			}
			ok, err := p(ch.Rel.Tuples[row])
			if err != nil {
				ferr = err
				return false
			}
			return ok
		})
		if ferr != nil {
			return nil, ferr
		}
		return sel, nil
	}
}

// AndSel composes selection kernels by refinement: each conjunct sees only
// the rows surviving the previous ones. Unlike the row path (which
// evaluates every conjunct on every row), later conjuncts never run on
// filtered rows — selections shrink monotonically, never resurface errors
// the row path would also raise on surviving rows.
func AndSel(ps ...VecPred) VecPred {
	if len(ps) == 1 {
		return ps[0]
	}
	return func(ch *relation.Chunk) ([]int32, error) {
		cur := ch
		var sel []int32
		for i, p := range ps {
			s, err := p(cur)
			if err != nil {
				return nil, err
			}
			sel = s
			if i < len(ps)-1 {
				cur = cur.Narrow(sel)
				if len(sel) == 0 {
					break
				}
			}
		}
		return sel, nil
	}
}

// SelectVec returns σ_pred(r) via selection-vector refinement; surviving
// tuples are shared with r, not cloned (see the aliasing contract in
// basic.go).
func SelectVec(r *relation.Relation, pred VecPred) (*relation.Relation, error) {
	ch := relation.FromRelation(r)
	sel, err := pred(ch)
	if err != nil {
		return nil, err
	}
	return ch.Narrow(sel).ToRelation(), nil
}

// VecOutCol names one computed output column of a vectorized projection.
type VecOutCol struct {
	Col  schema.Column
	Expr VecExpr
}

// ProjectVec is the batch projection: each output column evaluates into its
// own buffer (one kernel dispatch per column per batch), and the output
// tuples are assembled as windows over a single flat value array — one
// backing allocation instead of one per row.
func ProjectVec(r *relation.Relation, outs []VecOutCol) (*relation.Relation, error) {
	ch := relation.FromRelation(r)
	n, k := ch.Len(), len(outs)
	sch := make(schema.Schema, k)
	flat := make([]value.Value, n*k)
	scratch := make([]value.Value, n)
	for j, o := range outs {
		sch[j] = o.Col
		if err := o.Expr(ch, scratch); err != nil {
			return nil, err
		}
		for i, v := range scratch {
			flat[i*k+j] = v
		}
	}
	out := relation.NewWithCap(sch, n)
	for i := 0; i < n; i++ {
		out.Tuples = append(out.Tuples, flat[i*k:(i+1)*k:(i+1)*k])
	}
	return out, nil
}

// VecAggKind identifies a vectorizable aggregate.
type VecAggKind uint8

// The vectorizable aggregates, mirroring the row accumulators in agg.go.
const (
	VecSum VecAggKind = iota
	VecMin
	VecMax
	VecCount
	VecCountStar
	VecAvg
)

// VecAggSpec describes one aggregate output column for GroupByVec: the
// output column, the aggregate kind, and the argument kernel (nil for
// COUNT(*)).
type VecAggSpec struct {
	Col  schema.Column
	Kind VecAggKind
	Arg  VecExpr
}

// groupByVecDenseSlack caps how sparse an integer key domain may be before
// the dense group-id array gives way to a map: the array is worth its
// allocation while its size stays within a small factor of the row count.
const groupByVecDenseSlack = 1024

// GroupByVec is the vectorized X𝒢Y for integer-keyed (or keyless) grouping:
// group ids come from a dense array over the key range when the domain is
// compact, else from a single int64 map — never from the row path's per-row
// tuple-hash bucket chains — and each aggregate folds its argument buffer
// into per-group slots. Group order is first appearance and every
// accumulator mirrors its agg.go counterpart exactly (NULL-skipping folds,
// COUNT over non-NULLs, identity row for empty keyless input). handled
// reports whether the kernel applies: multi-column, non-integer, or
// NULL-bearing keys return handled == false and the caller falls back to
// the row GroupBy.
func GroupByVec(r *relation.Relation, groupCols []int, aggs []VecAggSpec) (out *relation.Relation, handled bool, err error) {
	if len(groupCols) > 1 {
		return nil, false, nil
	}
	ch := relation.FromRelation(r)
	n := ch.Len()
	var (
		groupIDs []int32
		nGroups  int
		keyOf    func(g int32) value.Value
	)
	if len(groupCols) == 0 {
		// One global group; per SQL an empty input still yields one identity
		// row.
		groupIDs = make([]int32, n)
		nGroups = 1
		keyOf = nil
	} else if n > 0 {
		cv := ch.ColVec(groupCols[0])
		if cv.Kind != value.KindInt {
			return nil, false, nil
		}
		keys := cv.Ints
		lo, hi := keys[0], keys[0]
		for _, k := range keys {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		groupIDs = make([]int32, n)
		var firstKey []int64
		if span := hi - lo + 1; span <= int64(2*n)+groupByVecDenseSlack {
			// Dense-integer keys: group ids by direct array lookup.
			ids := make([]int32, span)
			for i := range ids {
				ids[i] = -1
			}
			for i, k := range keys {
				id := ids[k-lo]
				if id < 0 {
					id = int32(nGroups)
					ids[k-lo] = id
					firstKey = append(firstKey, k)
					nGroups++
				}
				groupIDs[i] = id
			}
		} else {
			ids := make(map[int64]int32, n)
			for i, k := range keys {
				id, ok := ids[k]
				if !ok {
					id = int32(nGroups)
					ids[k] = id
					firstKey = append(firstKey, k)
					nGroups++
				}
				groupIDs[i] = id
			}
		}
		keyOf = func(g int32) value.Value { return value.Int(firstKey[g]) }
	}
	sch := r.Sch.Project(groupCols)
	for _, a := range aggs {
		sch = append(sch, a.Col)
	}
	results := make([][]value.Value, len(aggs))
	for ai, a := range aggs {
		res, err := foldVecAgg(ch, a, groupIDs, nGroups)
		if err != nil {
			return nil, true, err
		}
		results[ai] = res
	}
	out = relation.NewWithCap(sch, nGroups)
	width := len(groupCols) + len(aggs)
	flat := make([]value.Value, nGroups*width)
	for g := 0; g < nGroups; g++ {
		row := flat[g*width : (g+1)*width : (g+1)*width]
		j := 0
		if keyOf != nil {
			row[0] = keyOf(int32(g))
			j = 1
		}
		for ai := range aggs {
			row[j] = results[ai][g]
			j++
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, true, nil
}

// foldVecAgg evaluates one aggregate's argument buffer and folds it into
// per-group result slots with the row accumulators' exact semantics.
func foldVecAgg(ch *relation.Chunk, a VecAggSpec, groupIDs []int32, nGroups int) ([]value.Value, error) {
	n := ch.Len()
	var buf []value.Value
	if a.Arg != nil {
		buf = make([]value.Value, n)
		if err := a.Arg(ch, buf); err != nil {
			return nil, err
		}
	}
	res := make([]value.Value, nGroups) // zero Value is NULL — the fold identity
	switch a.Kind {
	case VecCountStar:
		counts := make([]int64, nGroups)
		for _, g := range groupIDs {
			counts[g]++
		}
		for g, c := range counts {
			res[g] = value.Int(c)
		}
	case VecCount:
		counts := make([]int64, nGroups)
		for i, g := range groupIDs {
			if !buf[i].IsNull() {
				counts[g]++
			}
		}
		for g, c := range counts {
			res[g] = value.Int(c)
		}
	case VecAvg:
		sums := make([]float64, nGroups)
		counts := make([]int64, nGroups)
		for i, g := range groupIDs {
			if v := buf[i]; !v.IsNull() {
				sums[g] += v.AsFloat()
				counts[g]++
			}
		}
		for g := range res {
			if counts[g] == 0 {
				res[g] = value.Null
			} else {
				res[g] = value.Float(sums[g] / float64(counts[g]))
			}
		}
	case VecSum:
		started := make([]bool, nGroups)
		for i, g := range groupIDs {
			v := buf[i]
			if v.IsNull() {
				continue // SQL aggregates skip NULLs
			}
			if !started[g] {
				res[g], started[g] = v, true
				continue
			}
			s, err := value.Add(res[g], v)
			if err != nil {
				// The row fold swallows the type error into NULL; mirror it.
				res[g] = value.Null
				continue
			}
			res[g] = s
		}
	case VecMin, VecMax:
		fold := value.Min
		if a.Kind == VecMax {
			fold = value.Max
		}
		started := make([]bool, nGroups)
		for i, g := range groupIDs {
			v := buf[i]
			if v.IsNull() {
				continue
			}
			if !started[g] {
				res[g], started[g] = v, true
				continue
			}
			res[g] = fold(res[g], v)
		}
	}
	return res, nil
}
