package ra

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

var allAlgos = []JoinAlgo{HashJoin, SortMergeJoin, IndexMergeJoin, NestedLoopJoin}

func TestEquiJoinAllAlgosAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := relation.New(ints("f", "t"))
		b := relation.New(ints("t", "w"))
		for i := 0; i < 60; i++ {
			a.AppendVals(value.Int(int64(rng.Intn(10))), value.Int(int64(rng.Intn(10))))
			b.AppendVals(value.Int(int64(rng.Intn(10))), value.Int(int64(rng.Intn(100))))
		}
		var results []*relation.Relation
		for _, algo := range allAlgos {
			results = append(results, EquiJoin(a, b, EquiJoinSpec{
				LeftCols: []int{1}, RightCols: []int{0}, Algo: algo,
			}))
		}
		for i := 1; i < len(results); i++ {
			if !results[0].Equal(results[i]) {
				t.Fatalf("trial %d: %s join disagrees with hash join (%d vs %d rows)",
					trial, allAlgos[i], results[i].Len(), results[0].Len())
			}
		}
	}
}

func TestEquiJoinBasic(t *testing.T) {
	e := rel(ints("f", "t"), []int64{1, 2}, []int64{2, 3}, []int64{1, 3})
	v := rel(ints("id", "w"), []int64{2, 20}, []int64{3, 30})
	got := EquiJoin(e, v, EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: HashJoin})
	wantRows(t, got, []int64{1, 2, 2, 20}, []int64{2, 3, 3, 30}, []int64{1, 3, 3, 30})
}

func TestIndexMergeJoinUsesProvidedIndexes(t *testing.T) {
	a := rel(ints("k", "x"), []int64{3, 0}, []int64{1, 1}, []int64{2, 2})
	b := rel(ints("k", "y"), []int64{2, 5}, []int64{1, 6})
	ai := relation.BuildSortedIndex(a, []int{0})
	bi := relation.BuildSortedIndex(b, []int{0})
	got := EquiJoin(a, b, EquiJoinSpec{
		LeftCols: []int{0}, RightCols: []int{0}, Algo: IndexMergeJoin,
		LeftIdx: ai, RightIdx: bi,
	})
	wantRows(t, got, []int64{1, 1, 1, 6}, []int64{2, 2, 2, 5})
}

func TestIndexMergeJoinStaleIndexFallsBack(t *testing.T) {
	a := rel(ints("k"), []int64{1})
	b := rel(ints("k"), []int64{1}, []int64{2})
	staleIdx := relation.BuildSortedIndex(b, []int{0})
	b.AppendVals(value.Int(1)) // index no longer covers b
	got := EquiJoin(a, b, EquiJoinSpec{
		LeftCols: []int{0}, RightCols: []int{0}, Algo: IndexMergeJoin, RightIdx: staleIdx,
	})
	if got.Len() != 2 {
		t.Errorf("stale index should be ignored; got %d rows", got.Len())
	}
}

func TestMergeJoinDuplicateBlocks(t *testing.T) {
	a := rel(ints("k"), []int64{1}, []int64{1}, []int64{2})
	b := rel(ints("k"), []int64{1}, []int64{1}, []int64{1})
	got := EquiJoin(a, b, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: SortMergeJoin})
	if got.Len() != 6 {
		t.Errorf("2x3 duplicate block should give 6 rows, got %d", got.Len())
	}
}

func TestThetaJoin(t *testing.T) {
	a := rel(ints("x"), []int64{1}, []int64{5})
	b := rel(ints("y"), []int64{3}, []int64{7})
	got, err := ThetaJoin(a, b, func(tu relation.Tuple) (bool, error) {
		return tu[0].AsInt() < tu[1].AsInt(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, []int64{1, 3}, []int64{1, 7}, []int64{5, 7})
}

func TestLeftOuterJoin(t *testing.T) {
	a := rel(ints("k", "x"), []int64{1, 10}, []int64{2, 20})
	b := rel(ints("k", "y"), []int64{1, 100})
	got := LeftOuterJoin(a, b, []int{0}, []int{0}, nil)
	if got.Len() != 2 {
		t.Fatalf("rows = %d", got.Len())
	}
	var padded relation.Tuple
	for _, tu := range got.Tuples {
		if tu[0].AsInt() == 2 {
			padded = tu
		}
	}
	if padded == nil || !padded[2].IsNull() || !padded[3].IsNull() {
		t.Errorf("unmatched row not NULL-padded: %v", padded)
	}
}

func TestFullOuterJoin(t *testing.T) {
	a := rel(ints("k", "x"), []int64{1, 10}, []int64{2, 20})
	b := rel(ints("k", "y"), []int64{2, 200}, []int64{3, 300})
	got := FullOuterJoin(a, b, []int{0}, []int{0}, nil)
	if got.Len() != 3 {
		t.Fatalf("rows = %d: %v", got.Len(), got)
	}
	counts := map[string]int{}
	for _, tu := range got.Tuples {
		switch {
		case tu[0].IsNull():
			counts["right-only"]++
			if tu[2].AsInt() != 3 {
				t.Errorf("right-only row wrong: %v", tu)
			}
		case tu[2].IsNull():
			counts["left-only"]++
			if tu[0].AsInt() != 1 {
				t.Errorf("left-only row wrong: %v", tu)
			}
		default:
			counts["both"]++
		}
	}
	if counts["both"] != 1 || counts["left-only"] != 1 || counts["right-only"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSemiJoin(t *testing.T) {
	a := rel(ints("k"), []int64{1}, []int64{2}, []int64{2}, []int64{3})
	b := rel(ints("k"), []int64{2}, []int64{2}, []int64{9})
	got := SemiJoin(a, b, []int{0}, []int{0}, nil)
	// Semi-join keeps bag multiplicity of the left side, never multiplies.
	wantRows(t, got, []int64{2}, []int64{2})
}

func TestJoinAlgoString(t *testing.T) {
	names := map[JoinAlgo]string{
		HashJoin: "hash", SortMergeJoin: "sort-merge",
		IndexMergeJoin: "index-merge", NestedLoopJoin: "nested-loop",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}
