// Package ra implements the relational algebra: the six basic operations
// (selection, projection, union, difference, Cartesian product, rename),
// θ-joins with several physical algorithms, group-by & aggregation, and the
// paper's four graph operations — MM-join, MV-join, anti-join, and
// union-by-update — each with the alternative SQL-level implementations the
// paper benchmarks (Section 7.1).
//
// Operators are eager: they take materialized relations and produce new
// materialized relations, mirroring the temp-table-per-step execution of the
// SQL/PSM procedures the WITH+ compiler emits.
//
// # Aliasing contract
//
// Operator inputs are immutable snapshots (catalog materializations clone at
// the storage boundary — Table.InsertRelation and View materialization copy
// tuples in and out — and no operator mutates a tuple it did not allocate;
// the one in-place fold, the parallel group-by merge, clones its accumulator
// rows first, see parallel.go). Operators may therefore SHARE surviving
// input tuples in their outputs instead of cloning them — Select, Limit, and
// the vectorized kernels do — but must never share the Tuples slice itself
// (Rename excepted: ρ is explicitly a shallow relabeling view): the output's
// row slice is always freshly allocated, so reordering or appending to a
// result cannot disturb its source. Operators that compute new values
// (Project, GroupBy, joins) allocate fresh tuples as before.
package ra

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Expr evaluates an expression against one tuple.
type Expr func(relation.Tuple) (value.Value, error)

// Pred evaluates a predicate against one tuple.
type Pred func(relation.Tuple) (bool, error)

// ColExpr returns an Expr reading column i.
func ColExpr(i int) Expr {
	return func(t relation.Tuple) (value.Value, error) { return t[i], nil }
}

// ConstExpr returns an Expr producing v.
func ConstExpr(v value.Value) Expr {
	return func(relation.Tuple) (value.Value, error) { return v, nil }
}

// Select returns σ_pred(r). Surviving tuples are shared with r, not cloned:
// inputs are immutable snapshots (see the aliasing contract in the package
// comment), so selection only costs the predicate and the output row slice.
func Select(r *relation.Relation, pred Pred) (*relation.Relation, error) {
	out := relation.New(r.Sch)
	for _, t := range r.Tuples {
		ok, err := pred(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Append(t)
		}
	}
	return out, nil
}

// ProjectCols returns Π over the given column indexes.
func ProjectCols(r *relation.Relation, cols []int) *relation.Relation {
	out := relation.NewWithCap(r.Sch.Project(cols), r.Len())
	for _, t := range r.Tuples {
		nt := make(relation.Tuple, len(cols))
		for i, c := range cols {
			nt[i] = t[c]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}

// OutCol names one computed output column of a generalized projection.
type OutCol struct {
	Col  schema.Column
	Expr Expr
}

// Project returns a generalized projection computing each output column's
// expression per tuple (SQL's select list).
func Project(r *relation.Relation, outs []OutCol) (*relation.Relation, error) {
	sch := make(schema.Schema, len(outs))
	for i, o := range outs {
		sch[i] = o.Col
	}
	out := relation.NewWithCap(sch, r.Len())
	for _, t := range r.Tuples {
		nt := make(relation.Tuple, len(outs))
		for i, o := range outs {
			v, err := o.Expr(t)
			if err != nil {
				return nil, err
			}
			nt[i] = v
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// Rename returns ρ: a shallow re-labeling of the relation with a new
// qualifier and optionally new column names (nil keeps the old names).
func Rename(r *relation.Relation, qualifier string, names []string) *relation.Relation {
	sch := r.Sch.Qualify(qualifier)
	if names != nil {
		sch = sch.RenameCols(names)
	}
	return &relation.Relation{Sch: sch, Tuples: r.Tuples}
}

// UnionAll returns r ⊎ s as a bag (SQL UNION ALL).
func UnionAll(r, s *relation.Relation) *relation.Relation {
	out := relation.NewWithCap(r.Sch, r.Len()+s.Len())
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, t.Clone())
	}
	for _, t := range s.Tuples {
		out.Tuples = append(out.Tuples, t.Clone())
	}
	return out
}

// Distinct removes duplicate tuples (SQL DISTINCT).
func Distinct(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Sch)
	seen := make(map[uint64][]relation.Tuple, r.Len())
	for _, t := range r.Tuples {
		h := t.Hash()
		dup := false
		for _, prev := range seen[h] {
			if prev.Equal(t) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := t.Clone()
		seen[h] = append(seen[h], c)
		out.Tuples = append(out.Tuples, c)
	}
	return out
}

// Union returns r ∪ s with duplicates removed (SQL UNION).
func Union(r, s *relation.Relation) *relation.Relation {
	return Distinct(UnionAll(r, s))
}

// Difference returns the set difference r − s.
func Difference(r, s *relation.Relation) *relation.Relation {
	all := make([]int, r.Sch.Arity())
	for i := range all {
		all[i] = i
	}
	idx := relation.BuildHashIndex(s, allCols(s))
	out := relation.New(r.Sch)
	for _, t := range r.Tuples {
		if !idx.Contains(t, all) {
			out.Append(t.Clone())
		}
	}
	return out
}

// Intersect returns r ∩ s (distinct tuples present in both).
func Intersect(r, s *relation.Relation) *relation.Relation {
	all := allCols(r)
	idx := relation.BuildHashIndex(s, allCols(s))
	out := relation.New(r.Sch)
	seen := make(map[uint64][]relation.Tuple)
	for _, t := range r.Tuples {
		if !idx.Contains(t, all) {
			continue
		}
		h := t.Hash()
		dup := false
		for _, prev := range seen[h] {
			if prev.Equal(t) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := t.Clone()
		seen[h] = append(seen[h], c)
		out.Tuples = append(out.Tuples, c)
	}
	return out
}

// Product returns the Cartesian product r × s.
func Product(r, s *relation.Relation) *relation.Relation {
	out := relation.NewWithCap(r.Sch.Concat(s.Sch), r.Len()*s.Len())
	for _, rt := range r.Tuples {
		for _, st := range s.Tuples {
			nt := make(relation.Tuple, 0, len(rt)+len(st))
			nt = append(nt, rt...)
			nt = append(nt, st...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// Limit returns the first n tuples of r, shared per the aliasing contract.
func Limit(r *relation.Relation, n int) *relation.Relation {
	if n > r.Len() {
		n = r.Len()
	}
	out := relation.NewWithCap(r.Sch, n)
	out.Tuples = append(out.Tuples, r.Tuples[:n]...)
	return out
}

// OrderBy sorts a copy of r by the given columns; desc[i] flips column i.
func OrderBy(r *relation.Relation, cols []int, desc []bool) *relation.Relation {
	out := r.Clone()
	less := func(a, b relation.Tuple) bool {
		for i, c := range cols {
			cmp := a[c].Compare(b[c])
			if len(desc) > i && desc[i] {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	}
	sort.SliceStable(out.Tuples, func(i, j int) bool {
		return less(out.Tuples[i], out.Tuples[j])
	})
	return out
}

func allCols(r *relation.Relation) []int {
	cols := make([]int, r.Sch.Arity())
	for i := range cols {
		cols[i] = i
	}
	return cols
}
