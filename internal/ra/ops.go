package ra

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// This file implements the paper's four operations (Section 4.1):
// MM-join, MV-join, anti-join, and union-by-update — including the
// alternative SQL-level implementations compared in Exp-1.

// MatCols locates the (F, T, ew) columns of a matrix relation.
type MatCols struct{ F, T, W int }

// VecCols locates the (ID, vw) columns of a vector relation.
type VecCols struct{ ID, W int }

// EdgeMat returns the standard column layout of an edge relation E(F,T,ew).
func EdgeMat() MatCols { return MatCols{F: 0, T: 1, W: 2} }

// NodeVec returns the standard column layout of a node relation V(ID,vw).
func NodeVec() VecCols { return VecCols{ID: 0, W: 1} }

// MMJoin computes the aggregate-join between two matrix relations
// (Eq. (3)): join a.aJoin = b.bJoin, then group by (a.aKeep, b.bKeep)
// aggregating ⊕ over a.W ⊙ b.W. For the textbook A·B, aJoin=A.T,
// aKeep=A.F, bJoin=B.F, bKeep=B.T.
func MMJoin(a, b *relation.Relation, ac, bc MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring, algo JoinAlgo) (*relation.Relation, error) {
	joined := EquiJoin(a, b, EquiJoinSpec{
		LeftCols: []int{aJoin}, RightCols: []int{bJoin}, Algo: algo,
	})
	bOff := a.Sch.Arity()
	prodExpr := func(t relation.Tuple) (value.Value, error) {
		return sr.Times(t[ac.W], t[bOff+bc.W]), nil
	}
	out, err := GroupBy(joined, []int{aKeep, bOff + bKeep}, []AggSpec{
		SemiringAgg(schema.Column{Name: "ew", Type: value.KindFloat}, sr, prodExpr),
	})
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "F", Type: a.Sch[aKeep].Type},
		{Name: "T", Type: b.Sch[bKeep].Type},
		{Name: "ew", Type: value.KindFloat},
	}
	return out, nil
}

// MVJoin computes the aggregate-join between a matrix relation and a vector
// relation (Eq. (4)): join a.aJoin = c.ID, group by a.aKeep aggregating
// ⊕ over a.W ⊙ c.W. With aJoin=A.T, aKeep=A.F this is A·C; with
// aJoin=A.F, aKeep=A.T it is Aᵀ·C (the direction BFS/PageRank use).
func MVJoin(a, c *relation.Relation, ac MatCols, cc VecCols, aJoin, aKeep int, sr semiring.Semiring, algo JoinAlgo) (*relation.Relation, error) {
	joined := EquiJoin(a, c, EquiJoinSpec{
		LeftCols: []int{aJoin}, RightCols: []int{cc.ID}, Algo: algo,
	})
	cOff := a.Sch.Arity()
	prodExpr := func(t relation.Tuple) (value.Value, error) {
		return sr.Times(t[ac.W], t[cOff+cc.W]), nil
	}
	out, err := GroupBy(joined, []int{aKeep}, []AggSpec{
		SemiringAgg(schema.Column{Name: "vw", Type: value.KindFloat}, sr, prodExpr),
	})
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "ID", Type: a.Sch[aKeep].Type},
		{Name: "vw", Type: value.KindFloat},
	}
	return out, nil
}

// AntiJoinImpl selects among the three SQL formulations of anti-join the
// paper compares (Tables 6 and 7).
type AntiJoinImpl int

// The anti-join implementations. The zero value is the paper's choice
// after Exp-1 (left outer join).
const (
	// AntiLeftOuter is "left outer join ... where s.key is null".
	AntiLeftOuter AntiJoinImpl = iota
	// AntiNotExists is "where not exists (select ... )" — a hash anti-join.
	AntiNotExists
	// AntiNotIn is "where r.key not in (select s.key ...)", the
	// null-aware anti-join (NAAJ): a NULL on either side changes results.
	AntiNotIn
)

// String names the implementation.
func (i AntiJoinImpl) String() string {
	switch i {
	case AntiNotExists:
		return "not exists"
	case AntiLeftOuter:
		return "left outer join"
	case AntiNotIn:
		return "not in"
	}
	return fmt.Sprintf("AntiJoinImpl(%d)", int(i))
}

// AntiJoin computes r ▷ s on key columns with the chosen implementation.
// All three agree when no NULL keys are present; AntiNotIn follows SQL's
// three-valued logic (any NULL in s empties the result; NULL r-keys are
// never returned). gov, when non-nil, makes every per-tuple loop a
// cooperative checkpoint.
func AntiJoin(r, s *relation.Relation, rCols, sCols []int, impl AntiJoinImpl, gov *govern.Governor) *relation.Relation {
	switch impl {
	case AntiLeftOuter:
		joined := LeftOuterJoin(r, s, rCols, sCols, gov)
		out := relation.New(r.Sch)
		nullProbe := r.Sch.Arity() + sCols[0]
		for _, t := range joined.Tuples {
			gov.MustStep(1)
			if t[nullProbe].IsNull() {
				out.Append(t[:r.Sch.Arity()].Clone())
			}
		}
		return out
	case AntiNotIn:
		out := relation.New(r.Sch)
		// NAAJ: if any s key is NULL, "x NOT IN (...)" is never true.
		idx := relation.BuildHashIndex(s, sCols)
		for _, st := range s.Tuples {
			for _, c := range sCols {
				if st[c].IsNull() {
					return out
				}
			}
		}
		for _, rt := range r.Tuples {
			gov.MustStep(1)
			nullKey := false
			for _, c := range rCols {
				if rt[c].IsNull() {
					nullKey = true
					break
				}
			}
			if nullKey {
				continue
			}
			if !idx.Contains(rt, rCols) {
				out.Append(rt.Clone())
			}
		}
		return out
	default: // AntiNotExists
		out := relation.New(r.Sch)
		idx := relation.BuildHashIndex(s, sCols)
		for _, rt := range r.Tuples {
			gov.MustStep(1)
			if !idx.Contains(rt, rCols) {
				out.Append(rt.Clone())
			}
		}
		return out
	}
}

// AntiJoinDef is the definitional form r − (r ⋉ s) built from the basic
// operations only; used to property-test the optimized implementations.
func AntiJoinDef(r, s *relation.Relation, rCols, sCols []int) *relation.Relation {
	return Difference(r, SemiJoin(r, s, rCols, sCols, nil))
}

// UBUImpl selects among the four implementations of union-by-update the
// paper compares (Tables 4 and 5).
type UBUImpl int

// The union-by-update implementations. The zero value is the paper's
// choice after Exp-1 (full outer join).
const (
	// UBUFullOuter is "full outer join + coalesce" (the winner in the
	// paper; used as the default in all later experiments).
	UBUFullOuter UBUImpl = iota
	// UBUMerge is the SQL MERGE statement: row-at-a-time matched
	// update / unmatched insert, with a duplicate check on the source.
	UBUMerge
	// UBUUpdateFrom is PostgreSQL's UPDATE ... FROM followed by an
	// insert of unmatched source rows; it skips the duplicate check.
	UBUUpdateFrom
	// UBUReplace implements the attribute-less form: drop the old
	// relation and rename the new one over it (DROP/ALTER TABLE).
	UBUReplace
)

// String names the implementation.
func (i UBUImpl) String() string {
	switch i {
	case UBUMerge:
		return "merge"
	case UBUFullOuter:
		return "full outer join"
	case UBUUpdateFrom:
		return "update from"
	case UBUReplace:
		return "drop/alter"
	}
	return fmt.Sprintf("UBUImpl(%d)", int(i))
}

// ErrDuplicateSource reports that two source tuples matched one target
// tuple — the case the paper disallows because the update would not be
// unique. Only UBUMerge checks for it, matching the engines' behaviour.
var ErrDuplicateSource = fmt.Errorf("ra: union-by-update source has duplicate keys")

// UnionByUpdate computes r ⊎_key s: tuples of r whose key matches a tuple of
// s take s's non-key values; unmatched tuples from both sides are kept.
// keyCols index both relations (schemas must be union-compatible).
// With impl == UBUReplace the key columns are ignored and the result is s
// (the paper's attribute-less form). gov, when non-nil, makes the join and
// coalesce/update loops cooperative checkpoints.
func UnionByUpdate(r, s *relation.Relation, keyCols []int, impl UBUImpl, gov *govern.Governor) (*relation.Relation, error) {
	out, _, err := unionByUpdate(r, s, keyCols, impl, gov, false)
	return out, err
}

// UnionByUpdateDelta computes r ⊎_key s like UnionByUpdate and additionally
// returns the changed-row delta: the result tuples that differ from their
// counterpart in r (updated in place) or have no counterpart (inserted). An
// empty delta means the operation was a no-op, so a fixpoint loop can use it
// for change detection without cloning r and bag-comparing the result — and
// the delta itself is the changed frontier a semi-naive iteration feeds
// forward.
func UnionByUpdateDelta(r, s *relation.Relation, keyCols []int, impl UBUImpl, gov *govern.Governor) (out, delta *relation.Relation, err error) {
	return unionByUpdate(r, s, keyCols, impl, gov, true)
}

func unionByUpdate(r, s *relation.Relation, keyCols []int, impl UBUImpl, gov *govern.Governor, wantDelta bool) (out, delta *relation.Relation, err error) {
	switch impl {
	case UBUReplace:
		out = s.Clone()
		if wantDelta {
			// The attribute-less form rewrites the whole relation; its delta
			// is everything when the content moved, nothing when it did not.
			if r.Equal(s) {
				delta = relation.New(r.Sch)
			} else {
				delta = out
			}
		}
		return out, delta, nil
	case UBUFullOuter:
		out, delta = ubuFullOuter(r, s, keyCols, gov, wantDelta)
		return out, delta, nil
	case UBUUpdateFrom:
		return ubuUpdateFrom(r, s, keyCols, false, gov, wantDelta)
	default:
		return ubuUpdateFrom(r, s, keyCols, true, gov, wantDelta)
	}
}

// ubuFullOuter: full outer join on the keys, then coalesce(s.*, r.*). With
// wantDelta it also collects the rows the coalesce actually changed: matched
// rows whose coalesced values differ from the r side, and unmatched s rows
// (whose r side is all-NULL padding). A row inserted from s with every column
// NULL is indistinguishable from its padding and escapes the delta — such a
// row has a NULL key, which the paper's union-by-update already disallows.
func ubuFullOuter(r, s *relation.Relation, keyCols []int, gov *govern.Governor, wantDelta bool) (out, delta *relation.Relation) {
	joined := FullOuterJoin(r, s, keyCols, keyCols, gov)
	arity := r.Sch.Arity()
	out = relation.NewWithCap(r.Sch, joined.Len())
	if wantDelta {
		delta = relation.New(r.Sch)
	}
	for _, t := range joined.Tuples {
		gov.MustStep(1)
		nt := make(relation.Tuple, arity)
		for i := 0; i < arity; i++ {
			nt[i] = value.Coalesce(t[arity+i], t[i])
		}
		out.Tuples = append(out.Tuples, nt)
		if wantDelta && !nt.Equal(t[:arity]) {
			delta.Tuples = append(delta.Tuples, nt)
		}
	}
	return out, delta
}

// ubuUpdateFrom: per-source-row matched update / unmatched insert on a copy
// of r. checkDup enables MERGE's duplicate-source detection (and models its
// extra bookkeeping cost). With wantDelta it collects the source rows that
// updated a matched row to a different value or were inserted.
func ubuUpdateFrom(r, s *relation.Relation, keyCols []int, checkDup bool, gov *govern.Governor, wantDelta bool) (out, delta *relation.Relation, err error) {
	out = r.Clone()
	if wantDelta {
		delta = relation.New(r.Sch)
	}
	idx := relation.BuildHashIndex(out, keyCols)
	var seen *relation.Relation
	var seenIdx *relation.HashIndex
	if checkDup {
		seen = relation.New(s.Sch.Project(keyCols))
		seenIdx = relation.BuildHashIndex(seen, allIdx(len(keyCols)))
	}
	for _, st := range s.Tuples {
		gov.MustStep(1)
		if checkDup {
			if seenIdx.Contains(st, keyCols) {
				return nil, nil, ErrDuplicateSource
			}
			key := make(relation.Tuple, len(keyCols))
			for i, c := range keyCols {
				key[i] = st[c]
			}
			seen.Append(key)
			seenIdx.Add(seen.Len() - 1)
		}
		// Multiple r may match a single s: all are updated (allowed). The
		// replacement keeps the key values, so the index stays valid.
		matchedAny := false
		changed := false
		idx.ProbeEach(st, keyCols, func(row int) bool {
			matchedAny = true
			if wantDelta && !changed && !out.Tuples[row].Equal(st) {
				changed = true
			}
			out.Tuples[row] = st.Clone()
			return true
		})
		if !matchedAny {
			out.Append(st.Clone())
			idx.Add(out.Len() - 1)
			changed = true
		}
		if wantDelta && changed {
			delta.Tuples = append(delta.Tuples, st.Clone())
		}
	}
	return out, delta, nil
}
