package ra

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// randomRel builds a relation with a mix of dense-int, float, and messy
// (NULL/string-bearing) columns to exercise both the typed kernels and the
// boxed fallbacks.
func randomRel(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New(schema.Schema{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "f", Type: value.KindFloat},
		{Name: "m", Type: value.KindInt},
	})
	for i := 0; i < n; i++ {
		var m value.Value
		switch rng.Intn(4) {
		case 0:
			m = value.Null
		case 1:
			m = value.Float(rng.Float64() * 10)
		case 2:
			m = value.Str(fmt.Sprintf("s%d", rng.Intn(5)))
		default:
			m = value.Int(int64(rng.Intn(10)))
		}
		r.Append(relation.Tuple{
			value.Int(int64(rng.Intn(20))),
			value.Int(int64(rng.Intn(20))),
			value.Float(rng.Float64() * 20),
			m,
		})
	}
	return r
}

// selectParity runs the row predicate and the vector kernel over r and
// requires identical surviving rows in order.
func selectParity(t *testing.T, r *relation.Relation, rowPred Pred, vecPred VecPred, label string) {
	t.Helper()
	want, rerr := Select(r, rowPred)
	got, verr := SelectVec(r, vecPred)
	if rerr != nil {
		// The vector path may legitimately skip errors on refined-away rows,
		// but these tests only use total predicates.
		t.Fatalf("%s: row path error: %v", label, rerr)
	}
	if verr != nil {
		t.Fatalf("%s: vector path error: %v", label, verr)
	}
	if want.Len() != got.Len() {
		t.Fatalf("%s: row kept %d rows, vector kept %d", label, want.Len(), got.Len())
	}
	for i := range want.Tuples {
		if !want.Tuples[i].Equal(got.Tuples[i]) {
			t.Fatalf("%s: row %d differs: row=%v vector=%v", label, i, want.Tuples[i], got.Tuples[i])
		}
	}
}

func TestSelCompareColConstParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRel(rng, 300)
	for _, tc := range []struct {
		col int
		op  CmpOp
		k   value.Value
	}{
		{0, CmpLt, value.Int(10)},      // dense int vs int
		{0, CmpGe, value.Float(9.5)},   // dense int vs float
		{2, CmpGt, value.Int(10)},      // dense float vs int
		{2, CmpLe, value.Float(12.25)}, // dense float vs float
		{3, CmpEq, value.Int(3)},       // messy column, boxed fallback
		{3, CmpNe, value.Str("s1")},    // messy column vs string
		{0, CmpEq, value.Null},         // NULL constant keeps nothing
	} {
		col, op, k := tc.col, tc.op, tc.k
		rowPred := func(tu relation.Tuple) (bool, error) {
			v := tu[col]
			return !v.IsNull() && !k.IsNull() && op.holds(v.Compare(k)), nil
		}
		selectParity(t, r, rowPred, SelCompareColConst(col, op, k),
			fmt.Sprintf("col%d op%d", col, op))
	}
}

func TestSelCompareColColParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := randomRel(rng, 300)
	for _, tc := range []struct{ l, rcol int }{
		{0, 1}, // int vs int
		{0, 2}, // int vs float (mixed dense)
		{2, 3}, // float vs messy (boxed)
	} {
		l, rc := tc.l, tc.rcol
		for _, op := range []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe} {
			op := op
			rowPred := func(tu relation.Tuple) (bool, error) {
				a, b := tu[l], tu[rc]
				return !a.IsNull() && !b.IsNull() && op.holds(a.Compare(b)), nil
			}
			selectParity(t, r, rowPred, SelCompareColCol(l, rc, op),
				fmt.Sprintf("col%d vs col%d op%d", l, rc, op))
		}
	}
}

func TestAndSelRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randomRel(rng, 300)
	vec := AndSel(
		SelCompareColConst(0, CmpGe, value.Int(5)),
		SelCompareColCol(0, 1, CmpLt),
		SelCompareColConst(2, CmpGt, value.Float(3)),
	)
	rowPred := func(tu relation.Tuple) (bool, error) {
		return tu[0].AsInt() >= 5 && tu[0].Compare(tu[1]) < 0 && tu[2].AsFloat() > 3, nil
	}
	selectParity(t, r, rowPred, vec, "three-conjunct refinement")

	// An early empty selection short-circuits the remaining conjuncts.
	boom := func(ch *relation.Chunk) ([]int32, error) {
		return nil, fmt.Errorf("must not run")
	}
	empty := AndSel(SelCompareColConst(0, CmpLt, value.Int(-1)), VecPred(boom))
	out, err := SelectVec(r, empty)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty refinement: len=%v err=%v", out, err)
	}
}

func TestSelFromExprAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := randomRel(rng, 200)
	// (a < b or m is null): OR forces the boolean-buffer adapter.
	vec := SelFromExpr(VecOr(
		VecCompareExpr(CmpLt, VecColExpr(0), VecColExpr(1)),
		VecIsNull(VecColExpr(3), false),
	))
	rowPred := func(tu relation.Tuple) (bool, error) {
		return tu[0].Compare(tu[1]) < 0 || tu[3].IsNull(), nil
	}
	selectParity(t, r, rowPred, vec, "or adapter")
	selectParity(t, r, rowPred, SelFallback(rowPred), "row fallback kernel")
}

func TestVecExprKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRel(rng, 200)
	ch := relation.FromRelation(r)
	// (a + f) * 2 through the arithmetic kernels vs direct evaluation.
	e := VecArith("*", VecArith("+", VecColExpr(0), VecColExpr(2)), VecConstExpr(value.Int(2)))
	out := make([]value.Value, ch.Len())
	if err := e(ch, out); err != nil {
		t.Fatal(err)
	}
	for i, tu := range r.Tuples {
		s, _ := value.Add(tu[0], tu[2])
		want, _ := value.Mul(s, value.Int(2))
		if !out[i].Equal(want) {
			t.Fatalf("row %d: got %v want %v", i, out[i], want)
		}
	}
	// Division by zero is NULL, not an error.
	dz := VecArith("/", VecColExpr(0), VecConstExpr(value.Int(0)))
	if err := dz(ch, out); err != nil {
		t.Fatalf("div by zero: %v", err)
	}
	if !out[0].IsNull() {
		t.Errorf("div by zero = %v, want NULL", out[0])
	}
	// Arithmetic on a string operand is an error, same as the row path.
	bad := VecArith("+", VecConstExpr(value.Str("x")), VecColExpr(0))
	if err := bad(ch, out); err == nil {
		t.Error("string arithmetic did not error")
	}
}

func TestProjectVecParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := randomRel(rng, 150)
	cols := []schema.Column{
		{Name: "a", Type: value.KindInt},
		{Name: "sum", Type: value.KindInt},
	}
	want, err := Project(r, []OutCol{
		{Col: cols[0], Expr: ColExpr(0)},
		{Col: cols[1], Expr: func(tu relation.Tuple) (value.Value, error) { return value.Add(tu[0], tu[1]) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ProjectVec(r, []VecOutCol{
		{Col: cols[0], Expr: VecColExpr(0)},
		{Col: cols[1], Expr: VecArith("+", VecColExpr(0), VecColExpr(1))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("projection mismatch\ngot:\n%swant:\n%s", got, want)
	}
}

// groupParity compares GroupByVec against the row GroupBy, requiring
// identical rows in identical (first-appearance) order.
func groupParity(t *testing.T, r *relation.Relation, groupCols []int, label string) {
	t.Helper()
	col := func(name string) schema.Column { return schema.Column{Name: name, Type: value.KindFloat} }
	rowSpecs := []AggSpec{
		Sum(col("s"), ColExpr(3)),
		MinAgg(col("mn"), ColExpr(2)),
		MaxAgg(col("mx"), ColExpr(2)),
		Count(schema.Column{Name: "c", Type: value.KindInt}, ColExpr(3)),
		Count(schema.Column{Name: "n", Type: value.KindInt}, nil),
		Avg(col("av"), ColExpr(2)),
	}
	vecSpecs := []VecAggSpec{
		{Col: col("s"), Kind: VecSum, Arg: VecColExpr(3)},
		{Col: col("mn"), Kind: VecMin, Arg: VecColExpr(2)},
		{Col: col("mx"), Kind: VecMax, Arg: VecColExpr(2)},
		{Col: schema.Column{Name: "c", Type: value.KindInt}, Kind: VecCount, Arg: VecColExpr(3)},
		{Col: schema.Column{Name: "n", Type: value.KindInt}, Kind: VecCountStar},
		{Col: col("av"), Kind: VecAvg, Arg: VecColExpr(2)},
	}
	want, err := GroupBy(r, groupCols, rowSpecs)
	if err != nil {
		t.Fatalf("%s: row group-by: %v", label, err)
	}
	got, handled, err := GroupByVec(r, groupCols, vecSpecs)
	if err != nil {
		t.Fatalf("%s: vector group-by: %v", label, err)
	}
	if !handled {
		t.Fatalf("%s: vector group-by did not handle an int-keyed grouping", label)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d groups vs %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if !want.Tuples[i].Equal(got.Tuples[i]) {
			t.Fatalf("%s: group row %d differs:\nrow:    %v\nvector: %v", label, i, want.Tuples[i], got.Tuples[i])
		}
	}
}

func TestGroupByVecParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	t.Run("dense keys", func(t *testing.T) {
		groupParity(t, randomRel(rng, 400), []int{0}, "dense")
	})
	t.Run("sparse keys", func(t *testing.T) {
		// Scatter the keys so the span blows past the dense-array budget.
		r := randomRel(rng, 400)
		for _, tu := range r.Tuples {
			tu[0] = value.Int(tu[0].AsInt() * 1_000_000)
		}
		groupParity(t, r, []int{0}, "sparse")
	})
	t.Run("keyless", func(t *testing.T) {
		groupParity(t, randomRel(rng, 400), nil, "keyless")
	})
	t.Run("keyless empty input yields identity row", func(t *testing.T) {
		groupParity(t, randomRel(rng, 0), nil, "keyless empty")
	})
	t.Run("keyed empty input yields no rows", func(t *testing.T) {
		groupParity(t, randomRel(rng, 0), []int{0}, "keyed empty")
	})
}

func TestGroupByVecUnhandledShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	r := randomRel(rng, 50)
	specs := []VecAggSpec{{Col: schema.Column{Name: "n", Type: value.KindInt}, Kind: VecCountStar}}
	if _, handled, _ := GroupByVec(r, []int{0, 1}, specs); handled {
		t.Error("multi-column keys must not be handled")
	}
	if _, handled, _ := GroupByVec(r, []int{2}, specs); handled {
		t.Error("float keys must not be handled")
	}
	if _, handled, _ := GroupByVec(r, []int{3}, specs); handled {
		t.Error("mixed/NULL-bearing keys must not be handled")
	}
}

func TestSelectVecSharesTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	r := randomRel(rng, 50)
	out, err := SelectVec(r, SelCompareColConst(0, CmpGe, value.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != r.Len() {
		t.Fatalf("kept %d of %d", out.Len(), r.Len())
	}
	if &out.Tuples[0][0] != &r.Tuples[0][0] {
		t.Error("SelectVec cloned surviving tuples; contract says share")
	}
}

func benchRel(n int) *relation.Relation {
	rng := rand.New(rand.NewSource(42))
	r := relation.New(schema.Schema{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "w", Type: value.KindFloat},
	})
	for i := 0; i < n; i++ {
		r.Append(relation.Tuple{
			value.Int(int64(rng.Intn(1000))),
			value.Int(int64(rng.Intn(1000))),
			value.Float(rng.Float64()),
		})
	}
	return r
}

// BenchmarkSelectVectorized pits the typed selection kernels against the
// row-at-a-time closure tree on the canonical hot filter
// (w > 0.5 and a <> b). check.sh runs it as a smoke; compare with
// -bench 'SelectVectorized|SelectRow'.
func BenchmarkSelectVectorized(b *testing.B) {
	r := benchRel(1 << 16)
	pred := AndSel(
		SelCompareColConst(2, CmpGt, value.Float(0.5)),
		SelCompareColCol(0, 1, CmpNe),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := SelectVec(r, pred)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkSelectRow(b *testing.B) {
	r := benchRel(1 << 16)
	pred := func(tu relation.Tuple) (bool, error) {
		return tu[2].AsFloat() > 0.5 && tu[0].AsInt() != tu[1].AsInt(), nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Select(r, pred)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkGroupByVectorized(b *testing.B) {
	r := benchRel(1 << 16)
	specs := []VecAggSpec{
		{Col: schema.Column{Name: "s", Type: value.KindFloat}, Kind: VecSum, Arg: VecColExpr(2)},
		{Col: schema.Column{Name: "n", Type: value.KindInt}, Kind: VecCountStar},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, handled, err := GroupByVec(r, []int{0}, specs)
		if err != nil || !handled {
			b.Fatalf("handled=%v err=%v", handled, err)
		}
	}
}

func BenchmarkGroupByRow(b *testing.B) {
	r := benchRel(1 << 16)
	specs := []AggSpec{
		Sum(schema.Column{Name: "s", Type: value.KindFloat}, ColExpr(2)),
		Count(schema.Column{Name: "n", Type: value.KindInt}, nil),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(r, []int{0}, specs); err != nil {
			b.Fatal(err)
		}
	}
}
