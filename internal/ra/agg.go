package ra

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// Accumulator folds tuples into one aggregate value.
type Accumulator interface {
	Add(t relation.Tuple) error
	Result() value.Value
}

// AggSpec describes one aggregate output column: a name for the output
// schema and a factory producing a fresh accumulator per group.
type AggSpec struct {
	Col schema.Column
	New func() Accumulator
}

type foldAcc struct {
	expr    Expr
	fold    func(acc, v value.Value) value.Value
	acc     value.Value
	started bool
	initial value.Value
}

func (a *foldAcc) Add(t relation.Tuple) error {
	v, err := a.expr(t)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if !a.started {
		a.acc = v
		a.started = true
		return nil
	}
	a.acc = a.fold(a.acc, v)
	return nil
}

func (a *foldAcc) Result() value.Value {
	if !a.started {
		return a.initial
	}
	return a.acc
}

// Sum aggregates ⅀ expr over the group; empty/NULL-only groups yield NULL.
func Sum(col schema.Column, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator {
		return &foldAcc{expr: expr, initial: value.Null,
			fold: func(acc, v value.Value) value.Value {
				r, err := value.Add(acc, v)
				if err != nil {
					return value.Null
				}
				return r
			}}
	}}
}

// MinAgg aggregates min(expr); empty groups yield NULL.
func MinAgg(col schema.Column, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator {
		return &foldAcc{expr: expr, initial: value.Null, fold: value.Min}
	}}
}

// MaxAgg aggregates max(expr); empty groups yield NULL.
func MaxAgg(col schema.Column, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator {
		return &foldAcc{expr: expr, initial: value.Null, fold: value.Max}
	}}
}

type countAcc struct {
	expr Expr // nil means COUNT(*)
	n    int64
}

func (a *countAcc) Add(t relation.Tuple) error {
	if a.expr == nil {
		a.n++
		return nil
	}
	v, err := a.expr(t)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) Result() value.Value { return value.Int(a.n) }

// Count aggregates COUNT(expr); pass a nil expr for COUNT(*).
func Count(col schema.Column, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator { return &countAcc{expr: expr} }}
}

type avgAcc struct {
	expr Expr
	sum  float64
	n    int64
}

func (a *avgAcc) Add(t relation.Tuple) error {
	v, err := a.expr(t)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.sum += v.AsFloat()
		a.n++
	}
	return nil
}

func (a *avgAcc) Result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	return value.Float(a.sum / float64(a.n))
}

// Avg aggregates the arithmetic mean of expr.
func Avg(col schema.Column, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator { return &avgAcc{expr: expr} }}
}

// SemiringAgg folds ⊕ over expr (which supplies the ⊙-products), starting
// from the semiring's Zero. It is the ⊕ of Eqs. (1) and (2).
func SemiringAgg(col schema.Column, sr semiring.Semiring, expr Expr) AggSpec {
	return AggSpec{Col: col, New: func() Accumulator {
		return &foldAcc{expr: expr, initial: sr.Zero, acc: sr.Zero,
			fold: sr.Plus}
	}}
}

// GroupBy computes X𝒢Y: group on groupCols, evaluate each aggregate per
// group. The output schema is the group columns followed by the aggregate
// columns. With empty groupCols the whole relation is one group (and, per
// SQL, an empty input still yields a single row of aggregate identities).
func GroupBy(r *relation.Relation, groupCols []int, aggs []AggSpec) (*relation.Relation, error) {
	sch := r.Sch.Project(groupCols)
	for _, a := range aggs {
		sch = append(sch, a.Col)
	}
	type group struct {
		key  relation.Tuple
		accs []Accumulator
	}
	newGroup := func(key relation.Tuple) *group {
		g := &group{key: key, accs: make([]Accumulator, len(aggs))}
		for i, a := range aggs {
			g.accs[i] = a.New()
		}
		return g
	}
	var order []*group
	buckets := make(map[uint64][]*group)
	for _, t := range r.Tuples {
		h := t.HashOn(groupCols)
		var g *group
		for _, cand := range buckets[h] {
			if cand.key.EqualOn(allIdx(len(groupCols)), t, groupCols) {
				g = cand
				break
			}
		}
		if g == nil {
			key := make(relation.Tuple, len(groupCols))
			for i, c := range groupCols {
				key[i] = t[c]
			}
			g = newGroup(key)
			buckets[h] = append(buckets[h], g)
			order = append(order, g)
		}
		for _, acc := range g.accs {
			if err := acc.Add(t); err != nil {
				return nil, err
			}
		}
	}
	if len(groupCols) == 0 && len(order) == 0 {
		order = append(order, newGroup(relation.Tuple{}))
	}
	out := relation.NewWithCap(sch, len(order))
	for _, g := range order {
		t := make(relation.Tuple, 0, len(g.key)+len(aggs))
		t = append(t, g.key...)
		for _, acc := range g.accs {
			t = append(t, acc.Result())
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// PartitionBy mimics the SQL window form "agg(...) OVER (PARTITION BY ...)":
// every input tuple appears in the output, extended with the aggregate of
// its partition. This is the only aggregation the stock RDBMSs allow inside
// a recursive WITH (Table 1, category D), and it is what the legacy
// PostgreSQL PageRank of Fig. 9 uses; unlike GROUP BY it emits one row per
// input tuple, which is why that formulation accumulates tuples.
func PartitionBy(r *relation.Relation, partCols []int, agg AggSpec) (*relation.Relation, error) {
	grouped, err := GroupBy(r, partCols, []AggSpec{agg})
	if err != nil {
		return nil, err
	}
	aggCol := len(partCols)
	idx := relation.BuildHashIndex(grouped, allIdx(len(partCols)))
	out := relation.NewWithCap(r.Sch.Concat(schema.Schema{agg.Col}), r.Len())
	for _, t := range r.Tuples {
		rows := idx.Probe(t, partCols)
		if len(rows) != 1 {
			return nil, fmt.Errorf("ra: partition lookup found %d groups", len(rows))
		}
		nt := make(relation.Tuple, 0, len(t)+1)
		nt = append(nt, t...)
		nt = append(nt, grouped.Tuples[rows[0]][aggCol])
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}
