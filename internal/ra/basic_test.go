package ra

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func ints(names ...string) schema.Schema { return schema.Cols(value.KindInt, names...) }

func rel(s schema.Schema, rows ...[]int64) *relation.Relation {
	r := relation.New(s)
	for _, row := range rows {
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			t[i] = value.Int(v)
		}
		r.Append(t)
	}
	return r
}

func wantRows(t *testing.T, got *relation.Relation, rows ...[]int64) {
	t.Helper()
	want := rel(got.Sch, rows...)
	if !got.Equal(want) {
		t.Errorf("relation mismatch\ngot:\n%swant:\n%s", got, want)
	}
}

func TestSelect(t *testing.T) {
	r := rel(ints("a", "b"), []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	got, err := Select(r, func(tu relation.Tuple) (bool, error) { return tu[0].AsInt() >= 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, []int64{2, 20}, []int64{3, 30})
	// Surviving tuples are shared per the aliasing contract, but the row
	// slice must be fresh: appending to the result cannot disturb the input.
	if &got.Tuples[0][0] != &r.Tuples[1][0] {
		t.Error("Select cloned surviving tuples; contract says share")
	}
	got.Tuples = append(got.Tuples[:1], got.Tuples[0])
	if r.Len() != 3 || r.At(2)[0].AsInt() != 3 {
		t.Error("Select shared the Tuples slice with its input")
	}
}

func TestProjectCols(t *testing.T) {
	r := rel(ints("a", "b", "c"), []int64{1, 2, 3}, []int64{4, 5, 6})
	got := ProjectCols(r, []int{2, 0})
	if got.Sch[0].Name != "c" || got.Sch[1].Name != "a" {
		t.Errorf("schema %v", got.Sch)
	}
	wantRows(t, got, []int64{3, 1}, []int64{6, 4})
}

func TestProjectExprs(t *testing.T) {
	r := rel(ints("a", "b"), []int64{1, 2}, []int64{3, 4})
	got, err := Project(r, []OutCol{
		{Col: schema.Column{Name: "sum", Type: value.KindInt}, Expr: func(tu relation.Tuple) (value.Value, error) {
			return value.Add(tu[0], tu[1])
		}},
		{Col: schema.Column{Name: "k", Type: value.KindInt}, Expr: ConstExpr(value.Int(7))},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, []int64{3, 7}, []int64{7, 7})
}

func TestRename(t *testing.T) {
	r := rel(ints("a", "b"), []int64{1, 2})
	got := Rename(r, "E1", []string{"x", "y"})
	if got.Sch[0].Table != "E1" || got.Sch[0].Name != "x" || got.Sch[1].Name != "y" {
		t.Errorf("schema %v", got.Sch)
	}
	if r.Sch[0].Name != "a" {
		t.Error("Rename must not mutate the input schema")
	}
}

func TestUnionAllAndUnion(t *testing.T) {
	a := rel(ints("x"), []int64{1}, []int64{2})
	b := rel(ints("x"), []int64{2}, []int64{3})
	all := UnionAll(a, b)
	wantRows(t, all, []int64{1}, []int64{2}, []int64{2}, []int64{3})
	u := Union(a, b)
	wantRows(t, u, []int64{1}, []int64{2}, []int64{3})
}

func TestDistinct(t *testing.T) {
	r := rel(ints("x", "y"), []int64{1, 1}, []int64{1, 1}, []int64{1, 2})
	wantRows(t, Distinct(r), []int64{1, 1}, []int64{1, 2})
}

func TestDifference(t *testing.T) {
	a := rel(ints("x"), []int64{1}, []int64{2}, []int64{3})
	b := rel(ints("x"), []int64{2})
	wantRows(t, Difference(a, b), []int64{1}, []int64{3})
	wantRows(t, Difference(b, a))
}

func TestIntersect(t *testing.T) {
	a := rel(ints("x"), []int64{1}, []int64{2}, []int64{2}, []int64{3})
	b := rel(ints("x"), []int64{2}, []int64{3}, []int64{4})
	wantRows(t, Intersect(a, b), []int64{2}, []int64{3})
}

func TestProduct(t *testing.T) {
	a := rel(ints("x"), []int64{1}, []int64{2})
	b := rel(ints("y"), []int64{10}, []int64{20})
	got := Product(a, b)
	wantRows(t, got, []int64{1, 10}, []int64{1, 20}, []int64{2, 10}, []int64{2, 20})
	if got.Sch.Arity() != 2 {
		t.Error("product schema should concat")
	}
}

func TestLimit(t *testing.T) {
	r := rel(ints("x"), []int64{1}, []int64{2}, []int64{3})
	if Limit(r, 2).Len() != 2 || Limit(r, 5).Len() != 3 || Limit(r, 0).Len() != 0 {
		t.Error("Limit lengths wrong")
	}
}

func TestOrderBy(t *testing.T) {
	r := rel(ints("a", "b"), []int64{2, 1}, []int64{1, 2}, []int64{2, 0})
	got := OrderBy(r, []int{0, 1}, []bool{false, true})
	if got.At(0)[0].AsInt() != 1 || got.At(1)[1].AsInt() != 1 || got.At(2)[1].AsInt() != 0 {
		t.Errorf("order wrong: %v", got)
	}
	// Input untouched.
	if r.At(0)[0].AsInt() != 2 {
		t.Error("OrderBy mutated input")
	}
}
