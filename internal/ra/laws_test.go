package ra

// Algebraic-law property tests: the equivalences a relational optimizer
// relies on must hold for the operator implementations.

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func randRel(rng *rand.Rand, cols int, rows int, domain int64) *relation.Relation {
	names := []string{"a", "b", "c", "d"}[:cols]
	r := relation.New(ints(names...))
	for i := 0; i < rows; i++ {
		t := make(relation.Tuple, cols)
		for c := range t {
			t[c] = value.Int(rng.Int63n(domain))
		}
		r.Append(t)
	}
	return r
}

func TestSelectionSplitsConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 50, 10)
		p1 := func(tu relation.Tuple) (bool, error) { return tu[0].AsInt() > 3, nil }
		p2 := func(tu relation.Tuple) (bool, error) { return tu[1].AsInt() < 7, nil }
		both := func(tu relation.Tuple) (bool, error) {
			a, _ := p1(tu)
			b, _ := p2(tu)
			return a && b, nil
		}
		lhs, err := Select(r, both)
		if err != nil {
			t.Fatal(err)
		}
		step1, err := Select(r, p1)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Select(step1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Equal(rhs) {
			t.Fatal("σ_{p∧q}(R) != σ_q(σ_p(R))")
		}
	}
}

func TestSelectionPushdownThroughJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 40, 8)
		s := randRel(rng, 2, 40, 8)
		spec := EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: HashJoin}
		// Predicate touching only the left side.
		p := func(tu relation.Tuple) (bool, error) { return tu[0].AsInt()%2 == 0, nil }
		joined := EquiJoin(r, s, spec)
		lhs, err := Select(joined, p)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := Select(r, p)
		if err != nil {
			t.Fatal(err)
		}
		rhs := EquiJoin(filtered, s, spec)
		if !lhs.Equal(rhs) {
			t.Fatal("σ_p(R ⋈ S) != σ_p(R) ⋈ S for left-only p")
		}
	}
}

func TestJoinCommutativityUpToColumnOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 30, 6)
		s := randRel(rng, 2, 30, 6)
		rs := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})
		sr := EquiJoin(s, r, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: SortMergeJoin})
		// Reorder sr's columns to rs's layout.
		srSwapped := ProjectCols(sr, []int{2, 3, 0, 1})
		if !rs.Equal(srSwapped) {
			t.Fatal("R ⋈ S != π(S ⋈ R)")
		}
	}
}

func TestUnionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 20; trial++ {
		a := randRel(rng, 1, 25, 9)
		b := randRel(rng, 1, 25, 9)
		c := randRel(rng, 1, 25, 9)
		// Commutativity.
		if !Union(a, b).Equal(Union(b, a)) {
			t.Fatal("union not commutative")
		}
		// Associativity.
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			t.Fatal("union not associative")
		}
		// UNION ALL preserves cardinalities.
		if UnionAll(a, b).Len() != a.Len()+b.Len() {
			t.Fatal("union all lost tuples")
		}
		// Idempotence of distinct.
		d := Distinct(a)
		if !Distinct(d).Equal(d) {
			t.Fatal("distinct not idempotent")
		}
	}
}

func TestDifferenceLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 20; trial++ {
		a := Distinct(randRel(rng, 1, 25, 9))
		b := Distinct(randRel(rng, 1, 25, 9))
		// A − B ⊆ A and disjoint from B.
		d := Difference(a, b)
		if Intersect(d, b).Len() != 0 {
			t.Fatal("difference overlaps subtrahend")
		}
		// (A − B) ∪ (A ∩ B) = A for sets.
		recon := Union(d, Intersect(a, b))
		if !recon.Equal(a) {
			t.Fatal("difference/intersection do not partition A")
		}
		// A − A = ∅.
		if Difference(a, a).Len() != 0 {
			t.Fatal("A − A != ∅")
		}
	}
}

func TestSemiAntiJoinPartitionR(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 40, 6)
		s := randRel(rng, 1, 10, 6)
		semi := SemiJoin(r, s, []int{0}, []int{0}, nil)
		anti := AntiJoin(r, s, []int{0}, []int{0}, AntiNotExists, nil)
		// Semi-join and anti-join partition R (bag semantics).
		if semi.Len()+anti.Len() != r.Len() {
			t.Fatalf("partition sizes %d + %d != %d", semi.Len(), anti.Len(), r.Len())
		}
		if !UnionAll(semi, anti).Equal(r) {
			t.Fatal("semi ∪ anti != R")
		}
	}
}

func TestOuterJoinContainsInnerJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 30, 5)
		s := randRel(rng, 2, 30, 5)
		inner := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})
		left := LeftOuterJoin(r, s, []int{0}, []int{0}, nil)
		full := FullOuterJoin(r, s, []int{0}, []int{0}, nil)
		// Non-padded rows of the outer joins equal the inner join.
		noNullLeft, err := Select(left, func(tu relation.Tuple) (bool, error) {
			return !tu[2].IsNull(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !noNullLeft.Equal(inner) {
			t.Fatal("left outer minus padding != inner")
		}
		noNullFull, err := Select(full, func(tu relation.Tuple) (bool, error) {
			return !tu[0].IsNull() && !tu[2].IsNull(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !noNullFull.Equal(inner) {
			t.Fatal("full outer minus padding != inner")
		}
		// Full outer covers every R row and every S row at least once.
		if full.Len() < r.Len() || full.Len() < s.Len() {
			t.Fatal("full outer join dropped rows")
		}
	}
}

func TestGroupByPartitionByConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, 2, 40, 5)
		agg := Sum(col("s"), ColExpr(1))
		grouped, err := GroupBy(r, []int{0}, []AggSpec{agg})
		if err != nil {
			t.Fatal(err)
		}
		part, err := PartitionBy(r, []int{0}, agg)
		if err != nil {
			t.Fatal(err)
		}
		// DISTINCT over partition-by's (key, agg) equals group-by — the
		// equivalence the paper's Fig. 9 PageRank depends on.
		proj := ProjectCols(part, []int{0, 2})
		if !Distinct(proj).Equal(grouped) {
			t.Fatal("distinct(partition by) != group by")
		}
	}
}

func TestUnionByUpdateAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	for trial := 0; trial < 20; trial++ {
		// Unique keys on both sides.
		mk := func(seed int64) *relation.Relation {
			r := relation.New(ints("k", "v"))
			used := map[int64]bool{}
			for i := 0; i < 20; i++ {
				k := rng.Int63n(30)
				if used[k] {
					continue
				}
				used[k] = true
				r.AppendVals(value.Int(k), value.Int(rng.Int63n(100)))
			}
			return r
		}
		r, s := mk(1), mk(2)
		out, err := UnionByUpdate(r, s, []int{0}, UBUFullOuter, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Idempotence: updating again with the same S changes nothing.
		out2, err := UnionByUpdate(out, s, []int{0}, UBUFullOuter, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(out2) {
			t.Fatal("union-by-update not idempotent for fixed S")
		}
		// Key set of the result = keys(R) ∪ keys(S).
		keys := Union(ProjectCols(r, []int{0}), ProjectCols(s, []int{0}))
		if out.Len() != keys.Len() {
			t.Fatalf("result keys %d != |keys(R) ∪ keys(S)| %d", out.Len(), keys.Len())
		}
	}
}
