package ra

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// randMatrix returns a random edge relation E(F,T,ew) over [0, nodes) with
// small-integer float weights — integer-valued so that (+, *) sums are exact
// in float64 regardless of fold order — and an occasional NULL weight to
// exercise the SQL skip-NULL aggregate path.
func randMatrix(rng *rand.Rand, nodes, edges int) *relation.Relation {
	e := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt},
		{Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	for i := 0; i < edges; i++ {
		w := value.Float(float64(1 + rng.Intn(5)))
		if rng.Intn(12) == 0 {
			w = value.Null
		}
		e.Append(relation.Tuple{
			value.Int(rng.Int63n(int64(nodes))),
			value.Int(rng.Int63n(int64(nodes))),
			w,
		})
	}
	return e
}

// randVector returns a random node relation V(ID,vw) covering most — not all —
// of [0, nodes), so some probes miss.
func randVector(rng *rand.Rand, nodes int) *relation.Relation {
	v := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "vw", Type: value.KindFloat},
	})
	for n := 0; n < nodes; n++ {
		if rng.Intn(5) == 0 {
			continue
		}
		v.Append(relation.Tuple{value.Int(int64(n)), value.Float(float64(rng.Intn(5)))})
	}
	return v
}

// groupsByKey flattens a group-by result (key columns then one aggregate)
// into a map for order-insensitive comparison.
func groupsByKey(r *relation.Relation, nKeys int) map[string]value.Value {
	m := make(map[string]value.Value, r.Len())
	for _, t := range r.Tuples {
		key := ""
		for i := 0; i < nKeys; i++ {
			key += t[i].String() + "|"
		}
		m[key] = t[nKeys]
	}
	return m
}

func aggEqual(a, b value.Value) bool {
	if a.Equal(b) {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return math.Abs(a.AsFloat()-b.AsFloat()) <= 1e-9
	}
	return false
}

func wantSameGroups(t *testing.T, label string, got, want *relation.Relation, nKeys int) {
	t.Helper()
	gm, wm := groupsByKey(got, nKeys), groupsByKey(want, nKeys)
	if len(gm) != len(wm) {
		t.Fatalf("%s: %d groups, want %d", label, len(gm), len(wm))
	}
	for k, wv := range wm {
		gv, ok := gm[k]
		if !ok {
			t.Fatalf("%s: missing group %q", label, k)
		}
		if !aggEqual(gv, wv) {
			t.Fatalf("%s: group %q = %v, want %v", label, k, gv, wv)
		}
	}
}

// TestFusedMVJoinEquivalence is the fused-kernel property test: for random
// graphs, every built-in semiring, both join directions (A·C and Aᵀ·C),
// serial as well as morsel-parallel probes, and both fold paths (hashed
// group table and dictionary-encoded dense fold), the fused MV-join must
// agree with the materializing EquiJoin+GroupBy plan.
func TestFusedMVJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, sr := range semiring.All() {
		for _, workers := range []int{1, 4} {
			for _, withDict := range []bool{false, true} {
				for _, dir := range []struct{ aJoin, aKeep int }{{1, 0}, {0, 1}} {
					for trial := 0; trial < 4; trial++ {
						a := randMatrix(rng, 30, 150)
						c := randVector(rng, 30)
						want, err := MVJoin(a, c, EdgeMat(), NodeVec(), dir.aJoin, dir.aKeep, sr, HashJoin)
						if err != nil {
							t.Fatal(err)
						}
						idx := relation.BuildHashIndex(a, []int{dir.aJoin})
						var dict *relation.ColumnDict
						if withDict {
							dict = relation.BuildColumnDict(a, dir.aKeep)
						}
						got := FusedMVJoin(a, c, idx, dict, EdgeMat(), NodeVec(), dir.aKeep, sr, workers, nil, nil)
						label := fmt.Sprintf("mv %s workers=%d dict=%v aJoin=%d trial=%d", sr.Name, workers, withDict, dir.aJoin, trial)
						wantSameGroups(t, label, got, want, 1)
					}
				}
			}
		}
	}
}

// TestFusedMMJoinEquivalence mirrors the MV property test for the MM-join
// kernel, covering both build-side orientations the engine may pick.
func TestFusedMMJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, sr := range semiring.All() {
		for _, workers := range []int{1, 4} {
			for _, idxOnLeft := range []bool{false, true} {
				for trial := 0; trial < 4; trial++ {
					a := randMatrix(rng, 25, 120)
					b := randMatrix(rng, 25, 120)
					// Textbook A·B: join a.T = b.F, keep (a.F, b.T).
					want, err := MMJoin(a, b, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, HashJoin)
					if err != nil {
						t.Fatal(err)
					}
					var idx *relation.HashIndex
					if idxOnLeft {
						idx = relation.BuildHashIndex(a, []int{1})
					} else {
						idx = relation.BuildHashIndex(b, []int{0})
					}
					got := FusedMMJoin(a, b, idx, idxOnLeft, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, workers, nil, nil)
					label := fmt.Sprintf("mm %s workers=%d idxOnLeft=%v trial=%d", sr.Name, workers, idxOnLeft, trial)
					wantSameGroups(t, label, got, want, 2)
				}
			}
		}
	}
}

// TestFusedNullProductStillCreatesGroup pins the subtle GroupBy semantics the
// fused kernels must mirror: a join match whose ⊙-product is NULL still
// creates its group, and a group that only ever saw NULL products yields the
// semiring's Zero (SQL aggregates skip NULLs; SemiringAgg starts from Zero).
func TestFusedNullProductStillCreatesGroup(t *testing.T) {
	sr := semiring.PlusTimes()
	a := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt},
		{Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	a.Append(relation.Tuple{value.Int(1), value.Int(9), value.Null})
	a.Append(relation.Tuple{value.Int(2), value.Int(9), value.Float(3)})
	c := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt},
		{Name: "vw", Type: value.KindFloat},
	})
	c.Append(relation.Tuple{value.Int(9), value.Float(2)})
	idx := relation.BuildHashIndex(a, []int{1})
	want, err := MVJoin(a, c, EdgeMat(), NodeVec(), 1, 0, sr, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	for _, dict := range []*relation.ColumnDict{nil, relation.BuildColumnDict(a, 0)} {
		got := FusedMVJoin(a, c, idx, dict, EdgeMat(), NodeVec(), 0, sr, 1, nil, nil)
		wantSameGroups(t, fmt.Sprintf("null-product dict=%v", dict != nil), got, want, 1)
		m := groupsByKey(got, 1)
		if v, ok := m["1|"]; !ok || !v.Equal(sr.Zero) {
			t.Fatalf("NULL-only group = %v (present=%v), want semiring Zero", v, ok)
		}
	}
}

// TestFusedMVJoinHonorsCachedIndexOnly asserts the kernel probes exactly the
// supplied index — rows appended to the relation after the index build must
// not appear (the engine guarantees freshness via the catalog's version-keyed
// cache, not the kernel).
func TestFusedMVJoinHonorsCachedIndexOnly(t *testing.T) {
	sr := semiring.PlusTimes()
	a := randMatrix(rand.New(rand.NewSource(83)), 10, 40)
	c := randVector(rand.New(rand.NewSource(84)), 10)
	idx := relation.BuildHashIndex(a, []int{1})
	before := FusedMVJoin(a, c, idx, nil, EdgeMat(), NodeVec(), 0, sr, 1, nil, nil)
	a.Append(relation.Tuple{value.Int(0), value.Int(0), value.Float(100)})
	after := FusedMVJoin(a, c, idx, nil, EdgeMat(), NodeVec(), 0, sr, 1, nil, nil)
	wantSameGroups(t, "stale-index probe", after, before, 1)
}
