package ra

import (
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

// This file implements the CSR variants of the fused aggregate-join kernels:
// the same MV-join (Eq. (4)) and MM-join (Eq. (3)) folds, but driven by a
// relation.CSR adjacency index instead of a hash index. Each morsel runs two
// passes: a resolve pass that batch-encodes the frontier's source IDs into
// ordinals (one dense-array load per tuple on integer node IDs), then an
// extend pass that folds each tuple's contiguous Offsets[s]:Offsets[s+1]
// block — sequential int32/Value array reads, no per-match hashing, key
// comparison, or bucket indirection.
//
// The morsel batches are deliberately NOT sorted by source ordinal: fold
// order must stay probe-row order so group first-touch order — and therefore
// the output bytes — match the hash-probe kernels exactly. A CSR block
// enumerates matches in ascending row order, which is precisely the order
// HashIndex.ProbeEach yields them in, so swapping the access path never
// reorders the output.

// FusedMVJoinCSR computes the MV-join aggregate of FusedMVJoin with csr as
// the access path over matrix a. csr must index a on {aJoin} with
// DstCol = aKeep and WCol = a's weight column, so the fold reads target
// ordinals and weights straight from the CSR arrays and never touches
// a.Tuples. The group dictionary is the CSR's own Dst dict — identical
// ordinal assignment to the catalog's cached ColumnDict on aKeep (both
// first-seen row order), so the output is byte-identical to FusedMVJoin's
// dense path. sp is as in FusedMVJoin.
func FusedMVJoinCSR(a, c *relation.Relation, csr *relation.CSR, cc VecCols, sr semiring.Semiring, workers int, gov *govern.Governor, sp *obs.Span) *relation.Relation {
	if sp != nil {
		defer observeFused(sp, c.Len(), workers)(time.Now())
	}
	sch := schema.Schema{
		{Name: "ID", Type: a.Sch[csr.DstCol].Type},
		{Name: "vw", Type: value.KindFloat},
	}
	offsets, targets, weights := csr.Offsets, csr.Targets, csr.Weights
	dg := runMorselsDense(c.Len(), workers, len(csr.Dst.Keys), sr, gov, func(dg *denseGroups, lo, hi int) {
		ords := dg.scratchOrds(hi - lo)
		for i, ct := range c.Tuples[lo:hi] {
			if ord, ok := csr.SrcOrd(ct[cc.ID]); ok {
				ords[i] = ord
			} else {
				ords[i] = -1
			}
		}
		for i, ct := range c.Tuples[lo:hi] {
			s := ords[i]
			if s < 0 {
				continue
			}
			cw := ct[cc.W]
			if int(s)+1 < len(offsets) {
				for e := offsets[s]; e < offsets[s+1]; e++ {
					dg.fold(targets[e], sr.Times(weights[e], cw))
				}
			}
			if int(s) < len(csr.TailHead) {
				for e := csr.TailHead[s]; e >= 0; e = csr.TailNext[e] {
					dg.fold(csr.TailTargets[e], sr.Times(csr.TailWeights[e], cw))
				}
			}
		}
	})
	return dg.relation(csr.Dst.Keys, sch)
}

// FusedMMJoinCSR computes the MM-join aggregate of FusedMMJoin with csr as
// the access path over the build side: with csrOnLeft false, csr indexes b
// on {bJoin} and the probe scans a; with csrOnLeft true, csr indexes a on
// {aJoin} and the probe scans b. The ⊙-product argument order is a.W ⊙ b.W
// either way. Group keys read the build side's tuples through csr.Rows — not
// the dict-encoded Targets — so key representations (and the output bytes)
// match the hash kernel exactly even when a key column mixes Int and Float
// spellings of the same value; weights come from the CSR's sequential
// Weights array, which copies the column verbatim. sp is as in FusedMVJoin.
func FusedMMJoinCSR(a, b *relation.Relation, csr *relation.CSR, csrOnLeft bool, ac, bc MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring, workers int, gov *govern.Governor, sp *obs.Span) *relation.Relation {
	if sp != nil {
		probeLen := a.Len()
		if csrOnLeft {
			probeLen = b.Len()
		}
		defer observeFused(sp, probeLen, workers)(time.Now())
	}
	offsets, rows, weights := csr.Offsets, csr.Rows, csr.Weights
	var gt *groupTable
	if csrOnLeft {
		gt = runMorsels(b.Len(), workers, sr, gov, func(gt *groupTable, lo, hi int) {
			ords := gt.scratchOrds(hi - lo)
			for i, bt := range b.Tuples[lo:hi] {
				if ord, ok := csr.SrcOrd(bt[bJoin]); ok {
					ords[i] = ord
				} else {
					ords[i] = -1
				}
			}
			for i, bt := range b.Tuples[lo:hi] {
				s := ords[i]
				if s < 0 {
					continue
				}
				bw := bt[bc.W]
				bk := bt[bKeep]
				if int(s)+1 < len(offsets) {
					for e := offsets[s]; e < offsets[s+1]; e++ {
						gt.fold(a.Tuples[rows[e]][aKeep], bk, true, sr.Times(weights[e], bw))
					}
				}
				if int(s) < len(csr.TailHead) {
					for e := csr.TailHead[s]; e >= 0; e = csr.TailNext[e] {
						gt.fold(a.Tuples[csr.TailRows[e]][aKeep], bk, true, sr.Times(csr.TailWeights[e], bw))
					}
				}
			}
		})
	} else {
		gt = runMorsels(a.Len(), workers, sr, gov, func(gt *groupTable, lo, hi int) {
			ords := gt.scratchOrds(hi - lo)
			for i, at := range a.Tuples[lo:hi] {
				if ord, ok := csr.SrcOrd(at[aJoin]); ok {
					ords[i] = ord
				} else {
					ords[i] = -1
				}
			}
			for i, at := range a.Tuples[lo:hi] {
				s := ords[i]
				if s < 0 {
					continue
				}
				aw := at[ac.W]
				ak := at[aKeep]
				if int(s)+1 < len(offsets) {
					for e := offsets[s]; e < offsets[s+1]; e++ {
						gt.fold(ak, b.Tuples[rows[e]][bKeep], true, sr.Times(aw, weights[e]))
					}
				}
				if int(s) < len(csr.TailHead) {
					for e := csr.TailHead[s]; e >= 0; e = csr.TailNext[e] {
						gt.fold(ak, b.Tuples[csr.TailRows[e]][bKeep], true, sr.Times(aw, csr.TailWeights[e]))
					}
				}
			}
		})
	}
	return gt.relation(schema.Schema{
		{Name: "F", Type: a.Sch[aKeep].Type},
		{Name: "T", Type: b.Sch[bKeep].Type},
		{Name: "ew", Type: value.KindFloat},
	})
}
