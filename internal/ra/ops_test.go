package ra

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

func matRel(entries [][3]float64) *relation.Relation {
	r := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	for _, e := range entries {
		r.AppendVals(value.Int(int64(e[0])), value.Int(int64(e[1])), value.Float(e[2]))
	}
	return r
}

func vecRel(entries [][2]float64) *relation.Relation {
	r := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat},
	})
	for _, e := range entries {
		r.AppendVals(value.Int(int64(e[0])), value.Float(e[1]))
	}
	return r
}

// denseMM computes A·B densely for cross-checking MM-join.
func denseMM(n int, a, b map[[2]int]float64, sr semiring.Semiring) map[[2]int]value.Value {
	out := make(map[[2]int]value.Value)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := sr.Zero
			touched := false
			for k := 0; k < n; k++ {
				av, aok := a[[2]int{i, k}]
				bv, bok := b[[2]int{k, j}]
				if aok && bok {
					acc = sr.Plus(acc, sr.Times(value.Float(av), value.Float(bv)))
					touched = true
				}
			}
			if touched {
				out[[2]int{i, j}] = acc
			}
		}
	}
	return out
}

func TestMMJoinMatchesDenseMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sr := range []semiring.Semiring{semiring.PlusTimes(), semiring.MinPlus(), semiring.MaxTimes()} {
		const n = 6
		a := make(map[[2]int]float64)
		b := make(map[[2]int]float64)
		for i := 0; i < 14; i++ {
			a[[2]int{rng.Intn(n), rng.Intn(n)}] = float64(rng.Intn(9) + 1)
			b[[2]int{rng.Intn(n), rng.Intn(n)}] = float64(rng.Intn(9) + 1)
		}
		var ae, be [][3]float64
		for k, v := range a {
			ae = append(ae, [3]float64{float64(k[0]), float64(k[1]), v})
		}
		for k, v := range b {
			be = append(be, [3]float64{float64(k[0]), float64(k[1]), v})
		}
		A, B := matRel(ae), matRel(be)
		got, err := MMJoin(A, B, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, HashJoin)
		if err != nil {
			t.Fatal(err)
		}
		want := denseMM(n, a, b, sr)
		if got.Len() != len(want) {
			t.Fatalf("%s: %d entries, want %d", sr.Name, got.Len(), len(want))
		}
		for _, tu := range got.Tuples {
			key := [2]int{int(tu[0].AsInt()), int(tu[1].AsInt())}
			w, ok := want[key]
			if !ok || tu[2].AsFloat() != w.AsFloat() {
				t.Errorf("%s: entry %v = %v, want %v", sr.Name, key, tu[2], w)
			}
		}
	}
}

func TestMVJoinMatchesDenseMultiply(t *testing.T) {
	// A·C with A over {0,1,2}: join on A.T=C.ID, group by A.F.
	A := matRel([][3]float64{{0, 1, 2}, {0, 2, 3}, {1, 2, 4}, {2, 0, 1}})
	C := vecRel([][2]float64{{0, 10}, {1, 20}, {2, 30}})
	sr := semiring.PlusTimes()
	got, err := MVJoin(A, C, EdgeMat(), NodeVec(), 1, 0, sr, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{0: 2*20 + 3*30, 1: 4 * 30, 2: 1 * 10}
	if got.Len() != len(want) {
		t.Fatalf("rows = %d", got.Len())
	}
	for _, tu := range got.Tuples {
		if want[tu[0].AsInt()] != tu[1].AsFloat() {
			t.Errorf("AC[%v] = %v, want %v", tu[0], tu[1], want[tu[0].AsInt()])
		}
	}
	// Transposed direction Aᵀ·C: join on A.F=C.ID, group by A.T.
	gotT, err := MVJoin(A, C, EdgeMat(), NodeVec(), 0, 1, sr, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	wantT := map[int64]float64{1: 2 * 10, 2: 3*10 + 4*20, 0: 1 * 30}
	for _, tu := range gotT.Tuples {
		if wantT[tu[0].AsInt()] != tu[1].AsFloat() {
			t.Errorf("AtC[%v] = %v, want %v", tu[0], tu[1], wantT[tu[0].AsInt()])
		}
	}
}

func TestMMJoinEqualsDefinitionalForm(t *testing.T) {
	// MM-join must equal group-by over the θ-join (Eq. (3)).
	rng := rand.New(rand.NewSource(17))
	var ae, be [][3]float64
	for i := 0; i < 25; i++ {
		ae = append(ae, [3]float64{float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(5) + 1)})
		be = append(be, [3]float64{float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(5) + 1)})
	}
	A, B := Distinct(matRel(ae)), Distinct(matRel(be))
	sr := semiring.PlusTimes()
	got, err := MMJoin(A, B, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, SortMergeJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Definitional: σ over × then group-by & aggregation.
	prod := Product(A, B)
	sel, err := Select(prod, func(tu relation.Tuple) (bool, error) {
		return tu[1].Equal(tu[3]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := GroupBy(sel, []int{0, 4}, []AggSpec{
		SemiringAgg(schema.Column{Name: "ew", Type: value.KindFloat}, sr,
			func(tu relation.Tuple) (value.Value, error) { return sr.Times(tu[2], tu[5]), nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(def) {
		t.Errorf("MM-join != definitional form:\n%s\nvs\n%s", got, def)
	}
}

func TestAntiJoinImplsAgreeWithoutNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		r := relation.New(ints("k", "x"))
		s := relation.New(ints("k"))
		for i := 0; i < 40; i++ {
			r.AppendVals(value.Int(int64(rng.Intn(15))), value.Int(int64(i)))
		}
		for i := 0; i < 10; i++ {
			s.AppendVals(value.Int(int64(rng.Intn(15))))
		}
		def := AntiJoinDef(r, s, []int{0}, []int{0})
		for _, impl := range []AntiJoinImpl{AntiNotExists, AntiLeftOuter, AntiNotIn} {
			got := AntiJoin(r, s, []int{0}, []int{0}, impl, nil)
			// Definitional form is a set; compare distinct versions.
			if !Distinct(got).Equal(Distinct(def)) {
				t.Fatalf("trial %d: %s anti-join disagrees with definition", trial, impl)
			}
		}
	}
}

func TestAntiJoinResultDisjointFromS(t *testing.T) {
	// The paper's independence property: anti-join output never semi-joins S.
	r := rel(ints("k"), []int64{1}, []int64{2}, []int64{3})
	s := rel(ints("k"), []int64{2})
	for _, impl := range []AntiJoinImpl{AntiNotExists, AntiLeftOuter, AntiNotIn} {
		got := AntiJoin(r, s, []int{0}, []int{0}, impl, nil)
		if SemiJoin(got, s, []int{0}, []int{0}, nil).Len() != 0 {
			t.Errorf("%s: result overlaps S", impl)
		}
	}
}

func TestAntiJoinNotInNullSemantics(t *testing.T) {
	r := relation.New(ints("k"))
	r.AppendVals(value.Int(1))
	r.AppendVals(value.Null)
	s := relation.New(ints("k"))
	s.AppendVals(value.Int(2))
	s.AppendVals(value.Null)
	// NOT IN against a set containing NULL is empty.
	if got := AntiJoin(r, s, []int{0}, []int{0}, AntiNotIn, nil); got.Len() != 0 {
		t.Errorf("not in with NULL in S should be empty, got %v", got)
	}
	// NOT EXISTS / left outer join don't have that trap: 1 doesn't match 2
	// and NULL doesn't equal anything, so both r rows survive... except the
	// hash path treats NULL=NULL as a group match; verify documented outcome.
	got := AntiJoin(r, s, []int{0}, []int{0}, AntiNotExists, nil)
	if got.Len() != 1 || got.At(0)[0].AsInt() != 1 {
		t.Errorf("not exists: %v", got)
	}
	// NULL r-key never qualifies for NOT IN even without NULL in S.
	s2 := rel(ints("k"), []int64{2})
	got2 := AntiJoin(r, s2, []int{0}, []int{0}, AntiNotIn, nil)
	if got2.Len() != 1 || got2.At(0)[0].AsInt() != 1 {
		t.Errorf("not in with NULL r-key: %v", got2)
	}
}

func ubuImpls() []UBUImpl { return []UBUImpl{UBUMerge, UBUFullOuter, UBUUpdateFrom} }

func TestUnionByUpdateBasic(t *testing.T) {
	r := rel(ints("id", "w"), []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	s := rel(ints("id", "w"), []int64{2, 99}, []int64{4, 40})
	for _, impl := range ubuImpls() {
		got, err := UnionByUpdate(r, s, []int{0}, impl, nil)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		wantRows(t, got, []int64{1, 10}, []int64{2, 99}, []int64{3, 30}, []int64{4, 40})
	}
}

func TestUnionByUpdateImplsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		r := relation.New(ints("id", "w"))
		s := relation.New(ints("id", "w"))
		usedR := map[int64]bool{}
		usedS := map[int64]bool{}
		for i := 0; i < 30; i++ {
			k := int64(rng.Intn(40))
			if !usedR[k] {
				usedR[k] = true
				r.AppendVals(value.Int(k), value.Int(int64(rng.Intn(100))))
			}
			k = int64(rng.Intn(40))
			if !usedS[k] {
				usedS[k] = true
				s.AppendVals(value.Int(k), value.Int(int64(rng.Intn(100))))
			}
		}
		var results []*relation.Relation
		for _, impl := range ubuImpls() {
			got, err := UnionByUpdate(r, s, []int{0}, impl, nil)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, impl, err)
			}
			results = append(results, got)
		}
		for i := 1; i < len(results); i++ {
			if !results[0].Equal(results[i]) {
				t.Fatalf("trial %d: %s disagrees with %s", trial, ubuImpls()[i], ubuImpls()[0])
			}
		}
	}
}

func TestUnionByUpdateContainsAllOfS(t *testing.T) {
	// The paper's independence property: the result must contain S.
	r := rel(ints("id", "w"), []int64{1, 1}, []int64{2, 2})
	s := rel(ints("id", "w"), []int64{2, 22}, []int64{5, 55})
	for _, impl := range ubuImpls() {
		got, _ := UnionByUpdate(r, s, []int{0}, impl, nil)
		if Difference(s, got).Len() != 0 {
			t.Errorf("%s: result does not contain S", impl)
		}
	}
}

func TestUnionByUpdateMergeDetectsDuplicateSource(t *testing.T) {
	r := rel(ints("id", "w"), []int64{1, 1})
	s := rel(ints("id", "w"), []int64{1, 2}, []int64{1, 3})
	_, err := UnionByUpdate(r, s, []int{0}, UBUMerge, nil)
	if !errors.Is(err, ErrDuplicateSource) {
		t.Errorf("merge should reject duplicate source keys, got %v", err)
	}
	// update-from does not check (PostgreSQL semantics).
	if _, err := UnionByUpdate(r, s, []int{0}, UBUUpdateFrom, nil); err != nil {
		t.Errorf("update from should not check duplicates: %v", err)
	}
}

func TestUnionByUpdateMultipleTargetsOneSource(t *testing.T) {
	// Multiple r matching one s is allowed: all are updated.
	r := rel(ints("id", "w"), []int64{1, 10}, []int64{1, 11})
	s := rel(ints("id", "w"), []int64{1, 99})
	for _, impl := range ubuImpls() {
		got, err := UnionByUpdate(r, s, []int{0}, impl, nil)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if got.Len() != 2 {
			t.Fatalf("%s: len=%d", impl, got.Len())
		}
		for _, tu := range got.Tuples {
			if tu[1].AsInt() != 99 {
				t.Errorf("%s: row not updated: %v", impl, tu)
			}
		}
	}
}

func TestUnionByUpdateReplace(t *testing.T) {
	r := rel(ints("id", "w"), []int64{1, 10})
	s := rel(ints("id", "w"), []int64{5, 50})
	got, err := UnionByUpdate(r, s, nil, UBUReplace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("replace should yield S: %v", got)
	}
	got.Tuples[0][0] = value.Int(7)
	if s.At(0)[0].AsInt() != 5 {
		t.Error("replace should clone, not alias")
	}
}

func TestUnionByUpdateDeltaReportsChangedRows(t *testing.T) {
	r := rel(ints("id", "w"), []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	// 2 updated to a new value, 3 "updated" to the same value (no change),
	// 4 inserted: the delta is {2,99} and {4,40}.
	s := rel(ints("id", "w"), []int64{2, 99}, []int64{3, 30}, []int64{4, 40})
	for _, impl := range ubuImpls() {
		out, delta, err := UnionByUpdateDelta(r, s, []int{0}, impl, nil)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		wantRows(t, out, []int64{1, 10}, []int64{2, 99}, []int64{3, 30}, []int64{4, 40})
		want := rel(ints("id", "w"), []int64{2, 99}, []int64{4, 40})
		if !delta.Equal(want) {
			t.Errorf("%s: delta = %v, want %v", impl, delta.Tuples, want.Tuples)
		}
	}
	// A no-op step has an empty delta — the convergence signal.
	for _, impl := range ubuImpls() {
		same := rel(ints("id", "w"), []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
		_, delta, err := UnionByUpdateDelta(r, same, []int{0}, impl, nil)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if delta.Len() != 0 {
			t.Errorf("%s: fixpoint step reported delta %v", impl, delta.Tuples)
		}
	}
	// Replace: delta is empty iff the new image equals the old as a bag.
	_, delta, err := UnionByUpdateDelta(r, r.Clone(), nil, UBUReplace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Len() != 0 {
		t.Errorf("replace with identical image reported delta %v", delta.Tuples)
	}
	s2 := rel(ints("id", "w"), []int64{9, 90})
	_, delta, err = UnionByUpdateDelta(r, s2, nil, UBUReplace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Len() != 1 {
		t.Errorf("replace with new image reported delta %v", delta.Tuples)
	}
}

func TestUBUImplString(t *testing.T) {
	names := map[UBUImpl]string{
		UBUMerge: "merge", UBUFullOuter: "full outer join",
		UBUUpdateFrom: "update from", UBUReplace: "drop/alter",
	}
	for impl, want := range names {
		if impl.String() != want {
			t.Errorf("%d.String() = %q", impl, impl.String())
		}
	}
	anti := map[AntiJoinImpl]string{
		AntiNotExists: "not exists", AntiLeftOuter: "left outer join", AntiNotIn: "not in",
	}
	for impl, want := range anti {
		if impl.String() != want {
			t.Errorf("anti %d.String() = %q", impl, impl.String())
		}
	}
}
