package ra

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// edgeRel builds a two-column INT relation qualified as q from (from, to)
// pairs.
func edgeRel(q string, edges [][2]int64) *relation.Relation {
	r := relation.New(schema.Cols(value.KindInt, "F", "T").Qualify(q))
	for _, e := range edges {
		r.AppendVals(value.Int(e[0]), value.Int(e[1]))
	}
	return r
}

// binaryTriangle computes the directed-triangle join E1 ⋈ E2 ⋈ E3 on
// E1.T=E2.F, E2.T=E3.F, E3.T=E1.F with the binary hash-join chain — the
// reference the WCOJ output must bag-equal.
func binaryTriangle(e1, e2, e3 *relation.Relation) *relation.Relation {
	p := EquiJoin(e1, e2, EquiJoinSpec{LeftCols: []int{1}, RightCols: []int{0}, Algo: HashJoin})
	// Close the cycle: p(E1.F,E1.T,E2.F,E2.T) ⋈ e3 on E2.T=E3.F and E3.T=E1.F.
	return EquiJoin(p, e3, EquiJoinSpec{LeftCols: []int{3, 0}, RightCols: []int{0, 1}, Algo: HashJoin})
}

// triangleSpec is the WCOJ lowering of the same pattern: vars a=E1.F=E3.T,
// b=E1.T=E2.F, c=E2.T=E3.F, elimination order a,b,c.
func triangleSpec(e1, e2, e3 *relation.Relation) WCOJSpec {
	return WCOJSpec{
		NumVars: 3,
		Order:   []int{0, 1, 2},
		Atoms: []WCOJAtom{
			{Rel: e1, VarCols: []WCOJVarCol{{Var: 0, Col: 0}, {Var: 1, Col: 1}}},
			{Rel: e2, VarCols: []WCOJVarCol{{Var: 1, Col: 0}, {Var: 2, Col: 1}}},
			{Rel: e3, VarCols: []WCOJVarCol{{Var: 2, Col: 0}, {Var: 0, Col: 1}}},
		},
	}
}

func TestWCOJTriangleMatchesBinary(t *testing.T) {
	edges := [][2]int64{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 2}, {1, 4}, {4, 1}, {3, 3}}
	e1, e2, e3 := edgeRel("E1", edges), edgeRel("E2", edges), edgeRel("E3", edges)
	want := binaryTriangle(e1, e2, e3)
	got, stats := WCOJ(triangleSpec(e1, e2, e3))
	if !got.Equal(want) {
		t.Fatalf("wcoj triangle != binary: got %d rows, want %d", got.Len(), want.Len())
	}
	if got.Sch.String() != want.Sch.String() {
		t.Fatalf("schema mismatch: got %s want %s", got.Sch, want.Sch)
	}
	if stats.Probes == 0 || stats.Builds != 3 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
}

func TestWCOJDuplicateRowsKeepMultiplicity(t *testing.T) {
	// Duplicate edges must multiply through exactly as in the binary chain.
	edges := [][2]int64{{1, 2}, {1, 2}, {2, 3}, {3, 1}}
	e1, e2, e3 := edgeRel("E1", edges), edgeRel("E2", edges), edgeRel("E3", edges)
	want := binaryTriangle(e1, e2, e3)
	got, _ := WCOJ(triangleSpec(e1, e2, e3))
	if !got.Equal(want) {
		t.Fatalf("duplicate multiplicities diverge: got %d rows, want %d", got.Len(), want.Len())
	}
	if got.Len() == 0 {
		t.Fatal("expected some triangles in the duplicate-edge graph")
	}
}

func TestWCOJCSRBackedMatchesTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var edges [][2]int64
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]int64{rng.Int63n(30), rng.Int63n(30)})
	}
	e1, e2, e3 := edgeRel("E1", edges), edgeRel("E2", edges), edgeRel("E3", edges)
	trie, tStats := WCOJ(triangleSpec(e1, e2, e3))

	spec := triangleSpec(e1, e2, e3)
	// E1 and E2 bind (F,T) in elimination order; E3 binds (T,F): its CSR
	// backing is the reversed adjacency.
	spec.Atoms[0].CSR = relation.BuildCSR(e1, 0, 1, -1)
	spec.Atoms[1].CSR = relation.BuildCSR(e2, 0, 1, -1)
	spec.Atoms[2].CSR = relation.BuildCSR(e3, 1, 0, -1)
	csr, cStats := WCOJ(spec)
	if !csr.Equal(trie) {
		t.Fatalf("csr-backed result diverges from trie: %d vs %d rows", csr.Len(), trie.Len())
	}
	if cStats.Builds != 0 {
		t.Fatalf("csr-backed atoms must not build tries, got %d builds", cStats.Builds)
	}
	if tStats.Builds != 3 {
		t.Fatalf("trie path should build 3 tries, got %d", tStats.Builds)
	}
}

func TestWCOJCSRShapeMismatchFallsBack(t *testing.T) {
	// A CSR whose (SrcCol, DstCol) does not line up with the elimination
	// order must be ignored, not misused.
	edges := [][2]int64{{1, 2}, {2, 3}, {3, 1}}
	e1, e2, e3 := edgeRel("E1", edges), edgeRel("E2", edges), edgeRel("E3", edges)
	spec := triangleSpec(e1, e2, e3)
	spec.Atoms[2].CSR = relation.BuildCSR(e3, 0, 1, -1) // wrong orientation for E3's (T,F) levels
	got, stats := WCOJ(spec)
	want := binaryTriangle(e1, e2, e3)
	if !got.Equal(want) {
		t.Fatalf("fallback result wrong: got %d rows, want %d", got.Len(), want.Len())
	}
	if stats.Builds != 3 {
		t.Fatalf("mismatched CSR should fall back to a trie build, got %d builds", stats.Builds)
	}
}

func TestWCOJRepeatedVariableOnOneAtom(t *testing.T) {
	// Pattern where one atom carries the same variable on both columns
	// (self-loops only): E1(a,a), E2(a,b), E3(b,a).
	edges := [][2]int64{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}}
	e1, e2, e3 := edgeRel("E1", edges), edgeRel("E2", edges), edgeRel("E3", edges)
	spec := WCOJSpec{
		NumVars: 2,
		Order:   []int{0, 1},
		Atoms: []WCOJAtom{
			{Rel: e1, VarCols: []WCOJVarCol{{Var: 0, Col: 0}, {Var: 0, Col: 1}}},
			{Rel: e2, VarCols: []WCOJVarCol{{Var: 0, Col: 0}, {Var: 1, Col: 1}}},
			{Rel: e3, VarCols: []WCOJVarCol{{Var: 1, Col: 0}, {Var: 0, Col: 1}}},
		},
	}
	got, _ := WCOJ(spec)
	// Reference: filter E1 to self-loops, then chain the binary joins.
	self := relation.New(e1.Sch)
	for _, tu := range e1.Tuples {
		if tu[0].Equal(tu[1]) {
			self.Append(tu)
		}
	}
	p := EquiJoin(self, e2, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})
	want := EquiJoin(p, e3, EquiJoinSpec{LeftCols: []int{3, 0}, RightCols: []int{0, 1}, Algo: HashJoin})
	if !got.Equal(want) {
		t.Fatalf("repeated-variable atom wrong: got %d rows, want %d", got.Len(), want.Len())
	}
}

func TestWCOJNullSemanticsMatchHashJoin(t *testing.T) {
	// NULL equals NULL under value.Equal — hash joins match NULL keys, so
	// the WCOJ path must too.
	mk := func(q string, pairs [][2]value.Value) *relation.Relation {
		r := relation.New(schema.Cols(value.KindInt, "F", "T").Qualify(q))
		for _, p := range pairs {
			r.AppendVals(p[0], p[1])
		}
		return r
	}
	n := value.Null
	pairs := [][2]value.Value{{value.Int(1), n}, {n, value.Int(1)}, {value.Int(1), value.Int(1)}, {n, n}}
	e1, e2, e3 := mk("E1", pairs), mk("E2", pairs), mk("E3", pairs)
	want := binaryTriangle(e1, e2, e3)
	got, _ := WCOJ(triangleSpec(e1, e2, e3))
	if !got.Equal(want) {
		t.Fatalf("NULL semantics diverge: got %d rows, want %d", got.Len(), want.Len())
	}
	if want.Len() == 0 {
		t.Fatal("reference should match NULL cycles")
	}
}

func TestWCOJRandomVsBinary(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := func(q string) *relation.Relation {
			m := rng.Intn(40)
			var edges [][2]int64
			for i := 0; i < m; i++ {
				edges = append(edges, [2]int64{rng.Int63n(8), rng.Int63n(8)})
			}
			return edgeRel(q, edges)
		}
		e1, e2, e3 := gen("E1"), gen("E2"), gen("E3")
		want := binaryTriangle(e1, e2, e3)
		got, _ := WCOJ(triangleSpec(e1, e2, e3))
		if !got.Equal(want) {
			t.Fatalf("seed %d: wcoj %d rows, binary %d rows", seed, got.Len(), want.Len())
		}
	}
}
