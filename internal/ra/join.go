package ra

import (
	"fmt"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/value"
)

// JoinAlgo selects the physical algorithm for an equi-join. The engine
// profiles map onto these: Oracle- and DB2-like profiles pick HashJoin for
// temp tables; the PostgreSQL-like profile picks SortMergeJoin (its
// optimizer lacks temp-table statistics, per Section 7 and Exp-A) and
// upgrades to IndexMergeJoin when a sorted index exists.
type JoinAlgo int

// The physical join algorithms.
const (
	HashJoin JoinAlgo = iota
	SortMergeJoin
	IndexMergeJoin
	NestedLoopJoin
)

// String names the algorithm.
func (a JoinAlgo) String() string {
	switch a {
	case HashJoin:
		return "hash"
	case SortMergeJoin:
		return "sort-merge"
	case IndexMergeJoin:
		return "index-merge"
	case NestedLoopJoin:
		return "nested-loop"
	}
	return fmt.Sprintf("JoinAlgo(%d)", int(a))
}

// EquiJoinSpec carries everything an equi-join needs: the key columns on
// each side, the algorithm, and optional pre-built indexes — sorted indexes
// standing in for B+-tree indexes on the temp tables (IndexMergeJoin), and
// a build-side hash index (HashJoin) served from the catalog's
// version-keyed cache so the build phase runs once per table version
// instead of once per join.
type EquiJoinSpec struct {
	LeftCols  []int
	RightCols []int
	Algo      JoinAlgo
	LeftIdx   *relation.SortedIndex // optional, used by IndexMergeJoin
	RightIdx  *relation.SortedIndex // optional, used by IndexMergeJoin
	RightHash *relation.HashIndex   // optional, used by HashJoin as the build side
	// RightCSR, when set and covering the right side on a single-column key,
	// replaces the hash build entirely: each left tuple resolves its key to a
	// source ordinal (one dense-array load for integer node IDs) and emits
	// the contiguous Rows block — the adjacency-extend access path. Match set
	// and order are identical to a hash probe, so the output bytes do not
	// change. Ignored when it does not cover the right side.
	RightCSR *relation.CSR

	// Gov, when set, makes the probe loops cooperative: each probe-side
	// tuple ticks the governor, so cancellation, deadlines, and row budgets
	// surface mid-join instead of only between operators. Serial loops
	// abort via govern.Abort (recovered at the engine boundary); parallel
	// workers poll and drain cleanly.
	Gov *govern.Governor

	// Span, when set, receives the join's phase breakdown: BuildDur and
	// ProbeDur (for hash joins, the build-side index construction vs. the
	// probe sweep; for merge joins, the sorting vs. the merge), and whether
	// the build side was a fresh index build or served from the spec's
	// cached index. Nil skips every clock read — the observability
	// overhead contract.
	Span *obs.Span
}

// EquiJoin computes r ⋈ s on the key columns using the requested algorithm.
// The output schema is r.Sch ++ s.Sch.
func EquiJoin(r, s *relation.Relation, spec EquiJoinSpec) *relation.Relation {
	switch spec.Algo {
	case SortMergeJoin, IndexMergeJoin:
		return mergeJoin(r, s, spec)
	case NestedLoopJoin:
		out := relation.New(r.Sch.Concat(s.Sch))
		for _, rt := range r.Tuples {
			spec.Gov.MustStep(1)
			for _, st := range s.Tuples {
				if rt.EqualOn(spec.LeftCols, st, spec.RightCols) {
					out.Tuples = append(out.Tuples, concatTuples(rt, st))
				}
			}
		}
		return out
	default:
		return hashJoin(r, s, spec)
	}
}

func hashJoin(r, s *relation.Relation, spec EquiJoinSpec) *relation.Relation {
	if csr := spec.RightCSR; csr != nil && len(spec.RightCols) == 1 &&
		csr.SrcCol == spec.RightCols[0] && csr.Covers(s) {
		return csrJoin(r, s, csr, spec)
	}
	out := relation.New(r.Sch.Concat(s.Sch))
	// Build on the right side, probe from the left.
	var t0 time.Time
	if spec.Span != nil {
		t0 = time.Now()
	}
	idx := buildSide(s, spec)
	if spec.Span != nil {
		spec.Span.BuildDur = time.Since(t0)
		t0 = time.Now()
	}
	for _, rt := range r.Tuples {
		spec.Gov.MustStep(1)
		idx.ProbeEach(rt, spec.LeftCols, func(row int) bool {
			out.Tuples = append(out.Tuples, concatTuples(rt, s.Tuples[row]))
			return true
		})
	}
	if spec.Span != nil {
		spec.Span.ProbeDur = time.Since(t0)
	}
	return out
}

// csrJoin is the equi-join over a CSR adjacency index on the right side: no
// build phase at all (the CSR is served from the catalog cache), and each
// probe reads a contiguous row block instead of scanning a hash bucket. The
// emitted tuples are byte-identical to hashJoin's — ascending right-row
// order per probe, left-to-right probe order — because a CSR block is the
// stable counting-sort image of the same match set a hash probe filters.
//
// The whole frontier is extended in two batched passes: a resolve pass maps
// every probe key to its source ordinal and sums the exact output
// cardinality from the offset deltas, then the extend pass copies the
// matched tuples into a single pre-sized value arena — two allocations for
// the entire join output instead of one per output tuple.
func csrJoin(r, s *relation.Relation, csr *relation.CSR, spec EquiJoinSpec) *relation.Relation {
	out := relation.New(r.Sch.Concat(s.Sch))
	var t0 time.Time
	if spec.Span != nil {
		spec.Span.Algo = "csr"
		t0 = time.Now()
	}
	lc := spec.LeftCols[0]
	offsets, rows := csr.Offsets, csr.Rows
	ords := make([]int32, r.Len())
	total := 0
	for i, rt := range r.Tuples {
		ord, ok := csr.SrcOrd(rt[lc])
		if !ok {
			ords[i] = -1
			continue
		}
		ords[i] = ord
		total += csr.Degree(ord)
	}
	arity := r.Sch.Arity() + s.Sch.Arity()
	arena := make([]value.Value, 0, total*arity)
	out.Tuples = make([]relation.Tuple, 0, total)
	emit := func(rt, st relation.Tuple) {
		if cap(arena)-len(arena) < len(rt)+len(st) {
			// Only reachable when tuple arity exceeds the schema arity the
			// pre-size assumed; start a fresh chunk rather than regrow.
			arena = make([]value.Value, 0, (len(rt)+len(st))*(total+1))
		}
		at := len(arena)
		arena = append(arena, rt...)
		arena = append(arena, st...)
		out.Tuples = append(out.Tuples, relation.Tuple(arena[at:len(arena):len(arena)]))
	}
	for i, rt := range r.Tuples {
		spec.Gov.MustStep(1)
		ord := ords[i]
		if ord < 0 {
			continue
		}
		if int(ord)+1 < len(offsets) {
			for e := offsets[ord]; e < offsets[ord+1]; e++ {
				emit(rt, s.Tuples[rows[e]])
			}
		}
		if int(ord) < len(csr.TailHead) {
			for e := csr.TailHead[ord]; e >= 0; e = csr.TailNext[e] {
				emit(rt, s.Tuples[csr.TailRows[e]])
			}
		}
	}
	if spec.Span != nil {
		spec.Span.ProbeDur = time.Since(t0)
	}
	return out
}

// buildSide returns the hash join's build-side index: the spec's prebuilt
// (cached) index when it covers s on the right key columns, else a fresh
// build. Coverage is identity of the rows, not of the header: the SQL
// resolver re-wraps materializations in re-qualified headers, so the cached
// index is also valid when s shares the indexed relation's backing rows
// (relation.SameRows — equal length over the same array).
func buildSide(s *relation.Relation, spec EquiJoinSpec) *relation.HashIndex {
	if idx := spec.RightHash; idx != nil && (idx.Rel() == s || relation.SameRows(idx.Rel(), s)) && equalCols(idx.Cols(), spec.RightCols) {
		// The engine already recorded whether this cached index was built
		// fresh this statement; only mark a hit when it did not.
		if spec.Span != nil && !spec.Span.IndexBuilt {
			spec.Span.IndexCacheHit = true
		}
		return idx
	}
	if spec.Span != nil {
		spec.Span.IndexBuilt = true
	}
	return relation.BuildHashIndex(s, spec.RightCols)
}

func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeJoin performs a sort-merge join. With IndexMergeJoin and a supplied
// SortedIndex for a side, that side is read in index order (no sort); other
// sides are sorted fresh each call — the repeated per-iteration sorting is
// precisely the PostgreSQL behaviour the paper's indexing experiment
// measures.
func mergeJoin(r, s *relation.Relation, spec EquiJoinSpec) *relation.Relation {
	var t0 time.Time
	if spec.Span != nil {
		t0 = time.Now()
	}
	lIdx := spec.LeftIdx
	if spec.Algo != IndexMergeJoin || lIdx == nil || lIdx.Len() != r.Len() {
		lIdx = relation.BuildSortedIndex(r, spec.LeftCols)
		if spec.Span != nil {
			spec.Span.IndexBuilt = true
		}
	} else if spec.Span != nil {
		spec.Span.IndexCacheHit = true
	}
	rIdx := spec.RightIdx
	if spec.Algo != IndexMergeJoin || rIdx == nil || rIdx.Len() != s.Len() {
		rIdx = relation.BuildSortedIndex(s, spec.RightCols)
	}
	if spec.Span != nil {
		spec.Span.BuildDur = time.Since(t0)
		t0 = time.Now()
	}
	out := relation.New(r.Sch.Concat(s.Sch))
	i, j := 0, 0
	for i < lIdx.Len() && j < rIdx.Len() {
		spec.Gov.MustStep(1)
		lt := lIdx.Tuple(i)
		rt := rIdx.Tuple(j)
		c := lt.CompareOn(spec.LeftCols, rt, spec.RightCols)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Expand the equal-key block on the right.
			jEnd := j
			for jEnd < rIdx.Len() && lt.CompareOn(spec.LeftCols, rIdx.Tuple(jEnd), spec.RightCols) == 0 {
				jEnd++
			}
			for ; i < lIdx.Len() && lIdx.Tuple(i).CompareOn(spec.LeftCols, rt, spec.RightCols) == 0; i++ {
				for k := j; k < jEnd; k++ {
					out.Tuples = append(out.Tuples, concatTuples(lIdx.Tuple(i), rIdx.Tuple(k)))
				}
			}
			j = jEnd
		}
	}
	if spec.Span != nil {
		spec.Span.ProbeDur = time.Since(t0)
	}
	return out
}

// ThetaJoin computes r ⋈_θ s with an arbitrary predicate over the
// concatenated tuple (nested-loop evaluation).
func ThetaJoin(r, s *relation.Relation, pred Pred) (*relation.Relation, error) {
	out := relation.New(r.Sch.Concat(s.Sch))
	for _, rt := range r.Tuples {
		for _, st := range s.Tuples {
			t := concatTuples(rt, st)
			ok, err := pred(t)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Tuples = append(out.Tuples, t)
			}
		}
	}
	return out, nil
}

// LeftOuterJoin computes r ⟕ s on key columns: unmatched r tuples are padded
// with NULLs on the s side. gov, when non-nil, makes the probe loop a
// cooperative checkpoint (see EquiJoinSpec.Gov).
func LeftOuterJoin(r, s *relation.Relation, lCols, rCols []int, gov *govern.Governor) *relation.Relation {
	out := relation.New(r.Sch.Concat(s.Sch))
	idx := relation.BuildHashIndex(s, rCols)
	pad := make(relation.Tuple, s.Sch.Arity())
	for i := range pad {
		pad[i] = value.Null
	}
	for _, rt := range r.Tuples {
		gov.MustStep(1)
		matchedAny := false
		idx.ProbeEach(rt, lCols, func(row int) bool {
			matchedAny = true
			out.Tuples = append(out.Tuples, concatTuples(rt, s.Tuples[row]))
			return true
		})
		if !matchedAny {
			out.Tuples = append(out.Tuples, concatTuples(rt, pad))
		}
	}
	return out
}

// FullOuterJoin computes r ⟗ s on key columns: unmatched tuples from either
// side are padded with NULLs on the other side. This is the implementation
// vehicle for union-by-update that the paper finds fastest (Tables 4 and 5).
// gov, when non-nil, checkpoints both probe sweeps.
func FullOuterJoin(r, s *relation.Relation, lCols, rCols []int, gov *govern.Governor) *relation.Relation {
	out := relation.New(r.Sch.Concat(s.Sch))
	idx := relation.BuildHashIndex(s, rCols)
	lPad := make(relation.Tuple, r.Sch.Arity())
	for i := range lPad {
		lPad[i] = value.Null
	}
	rPad := make(relation.Tuple, s.Sch.Arity())
	for i := range rPad {
		rPad[i] = value.Null
	}
	matched := make([]bool, s.Len())
	for _, rt := range r.Tuples {
		gov.MustStep(1)
		matchedAny := false
		idx.ProbeEach(rt, lCols, func(row int) bool {
			matchedAny = true
			matched[row] = true
			out.Tuples = append(out.Tuples, concatTuples(rt, s.Tuples[row]))
			return true
		})
		if !matchedAny {
			out.Tuples = append(out.Tuples, concatTuples(rt, rPad))
		}
	}
	for i, st := range s.Tuples {
		gov.MustStep(1)
		if !matched[i] {
			out.Tuples = append(out.Tuples, concatTuples(lPad, st))
		}
	}
	return out
}

// SemiJoin computes r ⋉ s: the r tuples that join with at least one s tuple.
func SemiJoin(r, s *relation.Relation, lCols, rCols []int, gov *govern.Governor) *relation.Relation {
	out := relation.New(r.Sch)
	idx := relation.BuildHashIndex(s, rCols)
	for _, rt := range r.Tuples {
		gov.MustStep(1)
		if idx.Contains(rt, lCols) {
			out.Append(rt.Clone())
		}
	}
	return out
}

func concatTuples(a, b relation.Tuple) relation.Tuple {
	t := make(relation.Tuple, 0, len(a)+len(b))
	t = append(t, a...)
	t = append(t, b...)
	return t
}
