package ra

import (
	"runtime"
	"sync"

	"repro/internal/relation"
)

// EquiJoinParallel is the paper's future-work direction ("efficient join
// processing in parallel", citing EmptyHeaded): a hash join whose probe
// phase is partitioned across workers over a shared read-only build-side
// index. workers <= 0 uses GOMAXPROCS. The output is the same bag as
// EquiJoin (order may differ).
func EquiJoinParallel(r, s *relation.Relation, spec EquiJoinSpec, workers int) *relation.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || r.Len() < 2*workers {
		spec.Algo = HashJoin
		return EquiJoin(r, s, spec)
	}
	// The shared read-only build side honors a prebuilt (cached) structure
	// the same way the serial hash join does: a covering CSR replaces the
	// index entirely, else the prebuilt (or fresh) hash index probes.
	var csr *relation.CSR
	var idx *relation.HashIndex
	if c := spec.RightCSR; c != nil && len(spec.RightCols) == 1 &&
		c.SrcCol == spec.RightCols[0] && c.Covers(s) {
		csr = c
		if spec.Span != nil {
			spec.Span.Algo = "csr"
		}
	} else {
		idx = buildSide(s, spec)
	}
	chunks := make([][]relation.Tuple, workers)
	var wg sync.WaitGroup
	per := (r.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > r.Len() {
			hi = r.Len()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []relation.Tuple
			emit := func(rt, st relation.Tuple) {
				nt := make(relation.Tuple, 0, len(rt)+len(st))
				nt = append(nt, rt...)
				nt = append(nt, st...)
				out = append(out, nt)
			}
			for _, rt := range r.Tuples[lo:hi] {
				// Workers never panic: on a governor stop (cancel,
				// deadline, budget) they drain and exit; the statement
				// goroutine re-raises after Wait.
				if spec.Gov.Step(1) != nil {
					break
				}
				if csr != nil {
					ord, ok := csr.SrcOrd(rt[spec.LeftCols[0]])
					if !ok {
						continue
					}
					if int(ord)+1 < len(csr.Offsets) {
						for e := csr.Offsets[ord]; e < csr.Offsets[ord+1]; e++ {
							emit(rt, s.Tuples[csr.Rows[e]])
						}
					}
					if int(ord) < len(csr.TailHead) {
						for e := csr.TailHead[ord]; e >= 0; e = csr.TailNext[e] {
							emit(rt, s.Tuples[csr.TailRows[e]])
						}
					}
					continue
				}
				idx.ProbeEach(rt, spec.LeftCols, func(row int) bool {
					emit(rt, s.Tuples[row])
					return true
				})
			}
			chunks[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	spec.Gov.MustOK()
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := relation.NewWithCap(r.Sch.Concat(s.Sch), total)
	for _, c := range chunks {
		out.Tuples = append(out.Tuples, c...)
	}
	return out
}

// SemiringGroupByParallel computes the group-by & ⊕-aggregation of the
// MM-/MV-join pattern in parallel: workers fold partitions into local hash
// tables, then the partials merge under ⊕ (valid because ⊕ is commutative
// and associative). Output groups appear in first-seen order of the merge.
func SemiringGroupByParallel(r *relation.Relation, groupCols []int, agg AggSpec, plus func(a, b relation.Tuple) error, workers int) (*relation.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || r.Len() < 2*workers {
		return GroupBy(r, groupCols, []AggSpec{agg})
	}
	partials := make([]*relation.Relation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (r.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > r.Len() {
			hi = r.Len()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := &relation.Relation{Sch: r.Sch, Tuples: r.Tuples[lo:hi]}
			partials[w], errs[w] = GroupBy(part, groupCols, []AggSpec{agg})
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc, err := mergeGroupPartials(partials, len(groupCols), plus)
	if err != nil {
		return nil, err
	}
	if acc == nil {
		return GroupBy(r, groupCols, []AggSpec{agg})
	}
	return acc, nil
}

// mergeGroupPartials folds per-worker partial group-by results into one
// relation under plus, in partial order. Returns nil when every partial is
// nil (empty input).
//
// Aliasing audit: the accumulator must own every tuple it indexes, because
// plus mutates the aggregate column in place. Partial tuples are therefore
// cloned both when seeding the accumulator and when appending unseen
// groups; the hash index holds the accumulator *Relation (not a snapshot of
// its tuple slice), so rows added after the index was built — and slice
// regrowth on append — stay visible to later probes, and the in-place plus
// never touches a key column, so bucket hashes stay valid as acc grows.
func mergeGroupPartials(partials []*relation.Relation, nKeys int, plus func(a, b relation.Tuple) error) (*relation.Relation, error) {
	keyIdx := make([]int, nKeys)
	for i := range keyIdx {
		keyIdx[i] = i
	}
	var acc *relation.Relation
	var idx *relation.HashIndex
	for _, part := range partials {
		if part == nil {
			continue
		}
		if acc == nil {
			acc = part.Clone()
			idx = relation.BuildHashIndex(acc, keyIdx)
			continue
		}
		for _, t := range part.Tuples {
			slot := -1
			idx.ProbeEach(t, keyIdx, func(row int) bool {
				slot = row
				return false
			})
			if slot < 0 {
				acc.Append(t.Clone())
				idx.Add(acc.Len() - 1)
				continue
			}
			if err := plus(acc.Tuples[slot], t); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}
