package ra

import (
	"runtime"
	"sync"

	"repro/internal/relation"
)

// EquiJoinParallel is the paper's future-work direction ("efficient join
// processing in parallel", citing EmptyHeaded): a hash join whose probe
// phase is partitioned across workers over a shared read-only build-side
// index. workers <= 0 uses GOMAXPROCS. The output is the same bag as
// EquiJoin (order may differ).
func EquiJoinParallel(r, s *relation.Relation, spec EquiJoinSpec, workers int) *relation.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || r.Len() < 2*workers {
		spec.Algo = HashJoin
		return EquiJoin(r, s, spec)
	}
	idx := relation.BuildHashIndex(s, spec.RightCols)
	chunks := make([][]relation.Tuple, workers)
	var wg sync.WaitGroup
	per := (r.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > r.Len() {
			hi = r.Len()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []relation.Tuple
			for _, rt := range r.Tuples[lo:hi] {
				for _, row := range idx.Probe(rt, spec.LeftCols) {
					st := s.Tuples[row]
					nt := make(relation.Tuple, 0, len(rt)+len(st))
					nt = append(nt, rt...)
					nt = append(nt, st...)
					out = append(out, nt)
				}
			}
			chunks[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := relation.NewWithCap(r.Sch.Concat(s.Sch), total)
	for _, c := range chunks {
		out.Tuples = append(out.Tuples, c...)
	}
	return out
}

// SemiringGroupByParallel computes the group-by & ⊕-aggregation of the
// MM-/MV-join pattern in parallel: workers fold partitions into local hash
// tables, then the partials merge under ⊕ (valid because ⊕ is commutative
// and associative). Output groups appear in first-seen order of the merge.
func SemiringGroupByParallel(r *relation.Relation, groupCols []int, agg AggSpec, plus func(a, b relation.Tuple) error, workers int) (*relation.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || r.Len() < 2*workers {
		return GroupBy(r, groupCols, []AggSpec{agg})
	}
	partials := make([]*relation.Relation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (r.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > r.Len() {
			hi = r.Len()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := &relation.Relation{Sch: r.Sch, Tuples: r.Tuples[lo:hi]}
			partials[w], errs[w] = GroupBy(part, groupCols, []AggSpec{agg})
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Merge partials: fold each partial group into the accumulated table.
	var acc *relation.Relation
	keyIdx := make([]int, len(groupCols))
	for i := range keyIdx {
		keyIdx[i] = i
	}
	var idx *relation.HashIndex
	for _, part := range partials {
		if part == nil {
			continue
		}
		if acc == nil {
			acc = part.Clone()
			idx = relation.BuildHashIndex(acc, keyIdx)
			continue
		}
		for _, t := range part.Tuples {
			rows := idx.Probe(t, keyIdx)
			if len(rows) == 0 {
				acc.Append(t.Clone())
				idx.Add(acc.Len() - 1)
				continue
			}
			if err := plus(acc.Tuples[rows[0]], t); err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return GroupBy(r, groupCols, []AggSpec{agg})
	}
	return acc, nil
}
