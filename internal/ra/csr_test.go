package ra

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/value"
)

// wantSameBytes asserts two relations are byte-identical: same tuples, same
// order, same value representations. This is the CSR contract — swapping the
// access path must not even reorder the output, let alone change it.
func wantSameBytes(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if !reflect.DeepEqual(got.Tuples[i], want.Tuples[i]) {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestFusedMVJoinCSRBytesMatchHash asserts the CSR MV-kernel output is
// byte-identical to the hash kernel's dense-dict path for every semiring,
// both join directions, and serial as well as parallel probes.
func TestFusedMVJoinCSRBytesMatchHash(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, sr := range semiring.All() {
		for _, workers := range []int{1, 4} {
			for _, dir := range []struct{ aJoin, aKeep int }{{1, 0}, {0, 1}} {
				for trial := 0; trial < 4; trial++ {
					a := randMatrix(rng, 30, 150)
					c := randVector(rng, 30)
					idx := relation.BuildHashIndex(a, []int{dir.aJoin})
					dict := relation.BuildColumnDict(a, dir.aKeep)
					want := FusedMVJoin(a, c, idx, dict, EdgeMat(), NodeVec(), dir.aKeep, sr, workers, nil, nil)
					csr := relation.BuildCSR(a, dir.aJoin, dir.aKeep, 2)
					got := FusedMVJoinCSR(a, c, csr, NodeVec(), sr, workers, nil, nil)
					label := fmt.Sprintf("mv-csr %s workers=%d aJoin=%d trial=%d", sr.Name, workers, dir.aJoin, trial)
					wantSameBytes(t, label, got, want)
				}
			}
		}
	}
}

// TestFusedMMJoinCSRBytesMatchHash mirrors the MV byte-identity test for the
// MM kernel, covering both build-side orientations.
func TestFusedMMJoinCSRBytesMatchHash(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, sr := range semiring.All() {
		for _, workers := range []int{1, 4} {
			for _, csrOnLeft := range []bool{false, true} {
				for trial := 0; trial < 4; trial++ {
					a := randMatrix(rng, 25, 120)
					b := randMatrix(rng, 25, 120)
					var idx *relation.HashIndex
					var csr *relation.CSR
					if csrOnLeft {
						idx = relation.BuildHashIndex(a, []int{1})
						csr = relation.BuildCSR(a, 1, -1, 2)
					} else {
						idx = relation.BuildHashIndex(b, []int{0})
						csr = relation.BuildCSR(b, 0, -1, 2)
					}
					want := FusedMMJoin(a, b, idx, csrOnLeft, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, workers, nil, nil)
					got := FusedMMJoinCSR(a, b, csr, csrOnLeft, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, workers, nil, nil)
					label := fmt.Sprintf("mm-csr %s workers=%d csrOnLeft=%v trial=%d", sr.Name, workers, csrOnLeft, trial)
					wantSameBytes(t, label, got, want)
				}
			}
		}
	}
}

// TestEquiJoinCSRBytesMatchHash asserts the equi-join CSR access path emits
// exactly the bytes of the hash path, including after in-place appends that
// land in the CSR's tail chains.
func TestEquiJoinCSRBytesMatchHash(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 6; trial++ {
		r := randVector(rng, 40)
		s := randMatrix(rng, 40, 200)
		csr := relation.BuildCSR(s, 0, 1, 2)
		for round := 0; round < 2; round++ {
			want := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})
			got := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin, RightCSR: csr})
			wantSameBytes(t, fmt.Sprintf("equi-csr trial=%d round=%d", trial, round), got, want)
			// Append a few edges and extend the CSR in place (tail-chain path).
			for i := 0; i < 15; i++ {
				s.Append(relation.Tuple{
					value.Int(rng.Int63n(40)), value.Int(rng.Int63n(40)), value.Float(float64(rng.Intn(5))),
				})
			}
			csr.Extend(s)
		}
	}
}

// TestEquiJoinCSRStaleFallsBack asserts a CSR that does not cover the right
// side (stale length, wrong key column) is ignored in favor of a hash build.
func TestEquiJoinCSRStaleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	r := randVector(rng, 20)
	s := randMatrix(rng, 20, 80)
	want := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})

	stale := relation.BuildCSR(s, 0, 1, 2)
	s.Append(relation.Tuple{value.Int(3), value.Int(4), value.Float(1)}) // not extended
	fresh := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin})
	got := EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin, RightCSR: stale})
	wantSameBytes(t, "stale csr ignored", got, fresh)
	if got.Len() == want.Len() {
		t.Fatal("append should have changed the join output; test is vacuous")
	}

	wrongCol := relation.BuildCSR(s, 1, 0, 2)
	got = EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin, RightCSR: wrongCol})
	wantSameBytes(t, "wrong-column csr ignored", got, fresh)
}

// TestFusedCSRAfterExtend asserts both fused kernels see rows appended after
// the CSR build (tail chains) identically to fresh hash structures.
func TestFusedCSRAfterExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	sr := semiring.PlusTimes()
	a := randMatrix(rng, 20, 80)
	csrMV := relation.BuildCSR(a, 1, 0, 2)
	csrMM := relation.BuildCSR(a, 1, -1, 2)
	for i := 0; i < 30; i++ {
		a.Append(relation.Tuple{
			value.Int(rng.Int63n(25)), value.Int(rng.Int63n(25)), value.Float(float64(rng.Intn(5))),
		})
	}
	csrMV.Extend(a)
	csrMM.Extend(a)
	c := randVector(rng, 25)
	idx := relation.BuildHashIndex(a, []int{1})
	dict := relation.BuildColumnDict(a, 0)
	wantSameBytes(t, "mv after extend",
		FusedMVJoinCSR(a, c, csrMV, NodeVec(), sr, 1, nil, nil),
		FusedMVJoin(a, c, idx, dict, EdgeMat(), NodeVec(), 0, sr, 1, nil, nil))
	b := randMatrix(rng, 25, 100)
	wantSameBytes(t, "mm after extend",
		FusedMMJoinCSR(b, a, csrMM, false, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, 1, nil, nil),
		FusedMMJoin(b, a, idx, false, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, 1, nil, nil))
}

// benchGraph builds a dense-ID random graph big enough that probe cost
// dominates setup.
func benchGraph(nodes, edges int) (*relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, nodes, edges)
	c := randVector(rng, nodes)
	return a, c
}

func BenchmarkFusedMVJoinHash(b *testing.B) {
	a, c := benchGraph(4096, 32768)
	idx := relation.BuildHashIndex(a, []int{0})
	dict := relation.BuildColumnDict(a, 1)
	sr := semiring.PlusTimes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedMVJoin(a, c, idx, dict, EdgeMat(), NodeVec(), 1, sr, 1, nil, nil)
	}
}

func BenchmarkFusedMVJoinCSR(b *testing.B) {
	a, c := benchGraph(4096, 32768)
	csr := relation.BuildCSR(a, 0, 1, 2)
	sr := semiring.PlusTimes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedMVJoinCSR(a, c, csr, NodeVec(), sr, 1, nil, nil)
	}
}

func BenchmarkFusedMMJoinHash(b *testing.B) {
	a, _ := benchGraph(512, 4096)
	bb, _ := benchGraph(512, 4096)
	idx := relation.BuildHashIndex(bb, []int{0})
	sr := semiring.MinPlus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedMMJoin(a, bb, idx, false, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, 1, nil, nil)
	}
}

func BenchmarkFusedMMJoinCSR(b *testing.B) {
	a, _ := benchGraph(512, 4096)
	bb, _ := benchGraph(512, 4096)
	csr := relation.BuildCSR(bb, 0, -1, 2)
	sr := semiring.MinPlus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedMMJoinCSR(a, bb, csr, false, EdgeMat(), EdgeMat(), 1, 0, 0, 1, sr, 1, nil, nil)
	}
}

func BenchmarkEquiJoinHashCached(b *testing.B) {
	_, r := benchGraph(4096, 1)
	s, _ := benchGraph(4096, 32768)
	idx := relation.BuildHashIndex(s, []int{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin, RightHash: idx})
	}
}

func BenchmarkEquiJoinCSR(b *testing.B) {
	_, r := benchGraph(4096, 1)
	s, _ := benchGraph(4096, 32768)
	csr := relation.BuildCSR(s, 0, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EquiJoin(r, s, EquiJoinSpec{LeftCols: []int{0}, RightCols: []int{0}, Algo: HashJoin, RightCSR: csr})
	}
}
