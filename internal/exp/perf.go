package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
)

// PerfRecord is one machine-readable benchmark measurement, emitted by
// cmd/bench -exp perf -json. The counter fields expose the iteration-aware
// executor's behavior: with fusion on, IndexBuilds stays O(1) per base table
// and TuplesMaterialized drops to zero on the MV-/MM-join path; with
// -nofusion the legacy executor's per-iteration rebuild and materialization
// costs show up directly. Committed BENCH_*.json files pair a -nofusion run
// (before) with a default run (after).
type PerfRecord struct {
	Name               string  `json:"name"`
	Dataset            string  `json:"dataset"`
	Profile            string  `json:"profile"`
	Workers            int     `json:"workers"`
	Fusion             bool    `json:"fusion"`
	Iterations         int     `json:"iterations"`
	NsOp               int64   `json:"ns_op"`
	Millis             float64 `json:"ms"`
	Joins              int64   `json:"joins"`
	GroupBys           int64   `json:"group_bys"`
	IndexBuilds        int64   `json:"index_builds"`
	IndexCacheHits     int64   `json:"index_cache_hits"`
	CSRBuilds          int64   `json:"csr_builds"`
	CSRCacheHits       int64   `json:"csr_cache_hits"`
	TuplesMaterialized int64   `json:"tuples_materialized"`
	// Observed and Spans report the observability A/B: with -observe a
	// counting sink is attached and Spans counts what it saw. Both are
	// omitted from JSON on unobserved runs, keeping the default output
	// byte-compatible with committed BENCH_*.json baselines.
	Observed bool  `json:"observed,omitempty"`
	Spans    int64 `json:"spans,omitempty"`
}

// perfAlgos are the iterative algorithms measured by the perf experiment:
// the fixed-iteration MV-join loops (PR, HITS) and a converging traversal
// (WCC), together covering the executor paths the fused kernels replace.
var perfAlgos = []string{"PR", "HITS", "WCC"}

// perfReps is the number of timed repetitions per (algorithm, profile)
// cell; the record keeps the minimum, which filters scheduler and cache
// noise out of single-shot wall-clock times. Counters are taken from the
// first repetition — they are deterministic per run.
const perfReps = 3

// PerfRecords measures the perf experiment: the named iterative algorithms
// on the Web Google stand-in, across the three profiles, under the config's
// executor knobs. One record per (algorithm, profile).
func PerfRecords(cfg Config) ([]PerfRecord, error) {
	cfg = cfg.defaults()
	d, err := dataset.ByCode("WG")
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Nodes, cfg.Seed)
	byCode := map[string]algos.Algorithm{}
	for _, a := range algos.Registry() {
		byCode[a.Code] = a
	}
	var out []PerfRecord
	for _, code := range perfAlgos {
		a, ok := byCode[code]
		if !ok {
			return nil, fmt.Errorf("perf: unknown algorithm %q", code)
		}
		for _, prof := range profiles() {
			var (
				e       *engine.Engine
				res     *algos.Result
				elapsed time.Duration
				spans   int64
			)
			for rep := 0; rep < perfReps; rep++ {
				re := newEngine(prof, cfg)
				var cs *obs.CountingSink
				if cfg.Observe {
					cs = &obs.CountingSink{}
					re.SetObserver(cs)
				}
				start := time.Now()
				rres, err := a.Run(re, g, algoParams("WG", cfg))
				if err != nil {
					return nil, fmt.Errorf("perf: %s on %s: %w", code, prof.Name, err)
				}
				d := time.Since(start)
				obs.Global.Counter("bench.runs").Inc()
				obs.Global.Histogram("bench.run_us").Observe(d.Microseconds())
				if rep == 0 {
					e, res = re, rres
					if cs != nil {
						spans = cs.Count()
					}
				}
				if rep == 0 || d < elapsed {
					elapsed = d
				}
			}
			out = append(out, PerfRecord{
				Name:               code,
				Dataset:            d.Code,
				Profile:            prof.Name,
				Workers:            cfg.Workers,
				Fusion:             !cfg.NoFusion,
				Iterations:         res.Iterations,
				NsOp:               elapsed.Nanoseconds(),
				Millis:             float64(elapsed.Microseconds()) / 1000.0,
				Joins:              e.Cnt.Joins,
				GroupBys:           e.Cnt.GroupBys,
				IndexBuilds:        e.Cnt.IndexBuilds,
				IndexCacheHits:     e.Cnt.IndexCacheHits,
				CSRBuilds:          e.Cnt.CSRBuilds,
				CSRCacheHits:       e.Cnt.CSRCacheHits,
				TuplesMaterialized: e.Cnt.TuplesMaterialized,
				Observed:           cfg.Observe,
				Spans:              spans,
			})
		}
	}
	return out, nil
}

// PerfJSON renders the records as indented JSON (the -json output format).
func PerfJSON(recs []PerfRecord) (string, error) {
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// PerfTable renders the records as a Table for the default text output.
func PerfTable(recs []PerfRecord) *Table {
	t := &Table{
		Title: "Perf: iterative algorithms under the iteration-aware executor",
		Header: []string{
			"Algorithm", "Profile", "workers", "fusion", "iters", "time (ms)",
			"joins", "aggs", "idx builds", "idx hits", "tuples mat",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Profile,
			fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%v", r.Fusion),
			fmt.Sprintf("%d", r.Iterations), fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.Joins), fmt.Sprintf("%d", r.GroupBys),
			fmt.Sprintf("%d", r.IndexBuilds), fmt.Sprintf("%d", r.IndexCacheHits),
			fmt.Sprintf("%d", r.TuplesMaterialized),
		})
	}
	return t
}
