package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// MotifRecord is one measurement of the motif experiment, emitted by
// cmd/bench -exp motif -json. The experiment counts small cyclic subgraphs
// — triangles, diamonds (directed 4-cycles), and directed 4-cliques — as
// plain multi-relation SELECTs, with the worst-case-optimal multiway join
// on (default) and off (-nowcoj). The cyclic cores are exactly where the
// binary hash-join chain materializes a super-linear intermediate (all
// wedges before closing the triangle) while the generic join's per-variable
// intersection stays within the AGM bound. Committed
// BENCH_motif_on.json/BENCH_motif_off.json pair the two;
// scripts/bench_guard.sh gates on the speedup, on checksum identity (the
// WCOJ path must count exactly what the binary chain counts), and on the
// WCOJProbes counter proving which path actually ran.
type MotifRecord struct {
	Name       string  `json:"name"`
	Profile    string  `json:"profile"`
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	WCOJ       bool    `json:"wcoj"`
	NsOp       int64   `json:"ns_op"`
	Millis     float64 `json:"ms"`
	Count      int64   `json:"count"`
	Checksum   string  `json:"checksum"`
	Joins      int64   `json:"joins"`
	WCOJBuilds int64   `json:"wcoj_builds"`
	WCOJProbes int64   `json:"wcoj_probes"`
}

// motifWorkload is one cyclic-pattern benchmark: a counting query over the
// edge table E (loaded from edges) and the graph's recorded size.
type motifWorkload struct {
	name  string
	query string
	edges *relation.Relation
	nodes int
}

// motifNodes picks the graph size: the configured node count, floored at
// the issue's reference scale so the committed baselines are comparable.
func motifNodes(cfg Config) int {
	if cfg.Nodes < 5000 {
		return 5000
	}
	return cfg.Nodes
}

// Graph shapes are tuned per motif: the binary baseline's intermediate
// grows with a higher power of the degree for each extra cycle edge
// (wedges ~ Σ in·out, open 4-paths ~ Σ d³), and hub nodes raise those
// moments steeply — the generator's Skew is a power-law exponent where
// values just above 1 are extreme and larger values are milder. The
// triangle keeps the heavy skew (binary materializes millions of wedges
// where the generic join intersects adjacency lists directly); the longer
// cycles get a milder exponent so the binary chain stays feasible. The
// experiment measures a crossover, not a timeout.
const (
	motifTriangleDegree = 16
	motifTriangleSkew   = 1.5
	motifDiamondDegree  = 8
	motifDiamondSkew    = 4
	motifCliqueDegree   = 6
	motifCliqueSkew     = 4
)

// motifReps is the number of timed repetitions per cell; the record keeps
// the minimum (the least-disturbed repetition). Counters and checksums come
// from the first repetition. Three not five: the binary diamond/clique
// cells are the slow side of the crossover and dominate the wall clock.
const motifReps = 3

// Counting queries. count(*) keeps the output one row while still pinning
// the full multiplicity of the match — any missed or duplicated binding
// changes the count, and the checksum folds the rendered count.
const (
	triangleSQL = "select count(*) from E e1, E e2, E e3 " +
		"where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"
	diamondSQL = "select count(*) from E e1, E e2, E e3, E e4 " +
		"where e1.T = e2.F and e2.T = e3.F and e3.T = e4.F and e4.T = e1.F"
	clique4SQL = "select count(*) from E e1, E e2, E e3, E e4, E e5, E e6 " +
		"where e1.F = e2.F and e2.F = e3.F and e1.T = e4.F and e4.F = e5.F " +
		"and e2.T = e4.T and e4.T = e6.F and e3.T = e5.T and e5.T = e6.T"
)

// motifCliquePlants is the number of directed 4-cliques planted into the
// clique graph: the pattern needs a transitive tournament on four nodes,
// which a sparse random graph essentially never produces — a zero count
// would make the checksum gate vacuous. The planted node quadruples come
// from a deterministic LCG over the seed, so both committed baselines see
// the same graph.
const motifCliquePlants = 40

// plantCliques appends the six edges of a directed 4-clique (a transitive
// tournament a→b→c→d with all shortcuts) for k random node quadruples.
func plantCliques(edges *relation.Relation, n, k int, seed int64) {
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() int64 {
		x = x*6364136223846793005 + 1442695040888963407
		return int64((x >> 17) % uint64(n))
	}
	for i := 0; i < k; i++ {
		q := [4]int64{next(), next(), next(), next()}
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				if q[a] == q[b] {
					continue // degenerate quadruple: skip the self-loop edge
				}
				edges.AppendVals(value.Int(q[a]), value.Int(q[b]), value.Float(1))
			}
		}
	}
}

func motifWorkloads(cfg Config) []motifWorkload {
	n := motifNodes(cfg)
	gen := func(deg int, skew float64) *relation.Relation {
		g := graph.Generate(graph.GenSpec{
			N: n, M: n * deg, Directed: true, Skew: skew, Seed: cfg.Seed,
		})
		return g.EdgeRelation()
	}
	clique := gen(motifCliqueDegree, motifCliqueSkew)
	plantCliques(clique, n, motifCliquePlants, cfg.Seed)
	return []motifWorkload{
		{name: "TRIANGLE", query: triangleSQL, nodes: n, edges: gen(motifTriangleDegree, motifTriangleSkew)},
		{name: "DIAMOND", query: diamondSQL, nodes: n, edges: gen(motifDiamondDegree, motifDiamondSkew)},
		{name: "CLIQUE4", query: clique4SQL, nodes: n, edges: clique},
	}
}

// motifProfiles are the measured profiles: Oracle- and DB2-like, whose
// planners take the hash-join chain the lowering replaces. The
// PostgreSQL-like profile sort-merges unanalyzed temps and is covered by
// the differential tests instead.
func motifProfiles() []engine.Profile {
	var out []engine.Profile
	for _, p := range profiles() {
		if p.Name != "postgres" {
			out = append(out, p)
		}
	}
	return out
}

// runMotif loads the workload's edge table and times one execution of the
// counting query.
func runMotif(e *engine.Engine, w motifWorkload) (*relation.Relation, time.Duration, error) {
	if _, err := e.LoadBase("E", w.edges); err != nil {
		return nil, 0, err
	}
	sel, err := sql.ParseSelect(w.query)
	if err != nil {
		return nil, 0, err
	}
	x := sql.NewExec(e)
	start := time.Now()
	res, err := x.Run(sel)
	return res, time.Since(start), err
}

// MotifRecords measures the motif experiment: each cyclic counting query on
// the Oracle- and DB2-like profiles, under the config's executor knobs
// (cfg.NoWCOJ selects the binary-chain baseline). One record per
// (workload, profile).
func MotifRecords(cfg Config) ([]MotifRecord, error) {
	cfg = cfg.defaults()
	var out []MotifRecord
	for _, w := range motifWorkloads(cfg) {
		for _, prof := range motifProfiles() {
			var (
				e       *engine.Engine
				rel     *relation.Relation
				elapsed time.Duration
			)
			for rep := 0; rep < motifReps; rep++ {
				re := newEngine(prof, cfg)
				r, d, err := runMotif(re, w)
				if err != nil {
					return nil, fmt.Errorf("motif: %s on %s: %w", w.name, prof.Name, err)
				}
				if rep == 0 {
					e, rel = re, r
				}
				if rep == 0 || d < elapsed {
					elapsed = d
				}
			}
			rec := MotifRecord{
				Name:       w.name,
				Profile:    prof.Name,
				Nodes:      w.nodes,
				Edges:      w.edges.Len(),
				WCOJ:       !cfg.NoWCOJ,
				NsOp:       elapsed.Nanoseconds(),
				Millis:     float64(elapsed.Microseconds()) / 1000.0,
				Checksum:   RelChecksum(rel),
				Joins:      e.Cnt.Joins,
				WCOJBuilds: e.Cnt.WCOJBuilds,
				WCOJProbes: e.Cnt.WCOJProbes,
			}
			if rel.Len() == 1 && len(rel.Tuples[0]) == 1 && rel.Tuples[0][0].K == value.KindInt {
				rec.Count = rel.Tuples[0][0].I
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// MotifJSON renders the records as indented JSON (the -json output format).
func MotifJSON(recs []MotifRecord) (string, error) {
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// MotifTable renders the records as a Table for the default text output.
func MotifTable(recs []MotifRecord) *Table {
	t := &Table{
		Title: "Motif counting: worst-case-optimal multiway join vs binary hash-join chain",
		Header: []string{
			"Motif", "Profile", "wcoj", "time (ms)", "count",
			"checksum", "joins", "wcoj builds", "wcoj probes",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Profile, fmt.Sprintf("%v", r.WCOJ),
			fmt.Sprintf("%.1f", r.Millis), fmt.Sprintf("%d", r.Count),
			r.Checksum, fmt.Sprintf("%d", r.Joins),
			fmt.Sprintf("%d", r.WCOJBuilds), fmt.Sprintf("%d", r.WCOJProbes),
		})
	}
	return t
}
