// Package exp regenerates every table and figure of the paper's evaluation
// (Section 7 and the appendix experiments) on the scaled synthetic
// datasets: the same rows and series, with measured milliseconds in place
// of the authors' testbed numbers.
package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algos"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/ra"
)

// Table is one experiment's output: a title, column headers, and rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Config controls experiment scale; zero values select paper-faithful
// defaults at bench scale.
type Config struct {
	Nodes int   // nodes per scaled dataset (default dataset.DefaultBenchNodes)
	Seed  int64 // generator seed
	Iters int   // fixed iterations for PR/HITS/LP (paper: 15)
	// Workers is the engine's morsel-parallel worker count (<= 1: serial,
	// the paper-faithful shape). cmd/bench exposes it as -workers.
	Workers int
	// NoFusion disables the fused MV-/MM-join kernels and the build-side
	// index cache, restoring the materialize-then-aggregate executor for
	// A/B comparisons. cmd/bench exposes it as -nofusion.
	NoFusion bool
	// NoDelta disables delta-driven semi-naive evaluation in the WITH+
	// compiler: recursive branches re-read the full recursive relation each
	// iteration (the naive loop). cmd/bench exposes it as -nodelta, the A/B
	// baseline for the delta experiment.
	NoDelta bool
	// NoCSR disables the CSR adjacency access path: joins keep the cached
	// hash index. cmd/bench exposes it as -nocsr, the A/B baseline for the
	// csr experiment; results are byte-identical either way.
	NoCSR bool
	// NoVector disables the vectorized batch kernels in the SQL executor:
	// filters, projections, and group-bys run the row-at-a-time closure
	// trees. cmd/bench exposes it as -novector, the A/B baseline for the
	// vector experiment; results are byte-identical either way.
	NoVector bool
	// NoWCOJ disables lowering cyclic equi-join cores to the multiway
	// generic join: cyclic patterns run the binary hash-join chain.
	// cmd/bench exposes it as -nowcoj, the A/B baseline for the motif
	// experiment; results are byte-identical either way.
	NoWCOJ bool
	// Observe attaches a counting span sink to every experiment engine, so
	// the observability hooks' overhead can be measured against an
	// unobserved run of the same experiment. cmd/bench exposes it as
	// -observe.
	Observe bool
}

func (c Config) defaults() Config {
	if c.Nodes == 0 {
		c.Nodes = dataset.DefaultBenchNodes
	}
	if c.Iters == 0 {
		c.Iters = 15
	}
	return c
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// profiles returns the three engine profiles in presentation order.
func profiles() []engine.Profile { return engine.Profiles() }

// newEngine builds an engine for an experiment run, applying the config's
// executor knobs (worker count, fusion on/off) uniformly so every table and
// figure can be regenerated under either executor.
func newEngine(prof engine.Profile, cfg Config) *engine.Engine {
	e := engine.New(prof)
	e.Parallelism = cfg.Workers
	e.DisableFusion = cfg.NoFusion
	e.DisableDelta = cfg.NoDelta
	e.DisableCSR = cfg.NoCSR
	e.DisableVectorized = cfg.NoVector
	e.DisableWCOJ = cfg.NoWCOJ
	if cfg.Observe {
		e.SetObserver(&obs.CountingSink{})
	}
	return e
}

// Table1 reproduces the WITH-clause feature matrix.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: The WITH Clause Supported by RDBMSs",
		Header: []string{"Cat", "Feature", "PostgreSQL", "DB2", "Oracle"},
	}
	pg, db2, or := engine.PostgresLike(true).Features, engine.DB2Like().Features, engine.OracleLike().Features
	mark := func(v string) string {
		switch v {
		case "yes":
			return "yes"
		case "no":
			return "no"
		default:
			return "n/a"
		}
	}
	row := func(cat, name string, f func(engine.FeatureMatrix) string) {
		t.Rows = append(t.Rows, []string{cat, name, mark(f(pg)), mark(f(db2)), mark(f(or))})
	}
	row("A", "Linear Recursion", func(f engine.FeatureMatrix) string { return f.LinearRecursion })
	row("A", "Nonlinear Recursion", func(f engine.FeatureMatrix) string { return f.NonlinearRecursion })
	row("A", "Mutual Recursion", func(f engine.FeatureMatrix) string { return f.MutualRecursion })
	row("B", "Initial Step (multiple queries)", func(f engine.FeatureMatrix) string { return f.MultipleInitialQueries })
	row("B", "Recursive Step (multiple queries)", func(f engine.FeatureMatrix) string { return f.MultipleRecursiveQueries })
	row("C", "Set ops between initial queries", func(f engine.FeatureMatrix) string { return f.SetOpsBetweenInitial })
	row("C", "Set ops across initial & recursive", func(f engine.FeatureMatrix) string { return f.SetOpsAcrossInitRec })
	row("C", "Set ops between recursive queries", func(f engine.FeatureMatrix) string { return f.SetOpsBetweenRec })
	row("D", "Negation", func(f engine.FeatureMatrix) string { return f.Negation })
	row("D", "Aggregate functions", func(f engine.FeatureMatrix) string { return f.AggregateFunctions })
	row("D", "group by, having", func(f engine.FeatureMatrix) string { return f.GroupByHaving })
	row("D", "partition by", func(f engine.FeatureMatrix) string { return f.PartitionBy })
	row("D", "distinct", func(f engine.FeatureMatrix) string { return f.Distinct })
	row("D", "General functions", func(f engine.FeatureMatrix) string { return f.GeneralFunctions })
	row("D", "Analytical functions", func(f engine.FeatureMatrix) string { return f.AnalyticalFunctions })
	row("D", "Subqueries without recursive ref", func(f engine.FeatureMatrix) string { return f.SubqueriesNoRecRef })
	row("D", "Subqueries with recursive ref", func(f engine.FeatureMatrix) string { return f.SubqueriesRecRef })
	row("E", "Infinite loop detection", func(f engine.FeatureMatrix) string { return f.InfiniteLoopDetection })
	row("E", "Cycle detection", func(f engine.FeatureMatrix) string { return f.CycleDetection })
	row("E", "cycle clause", func(f engine.FeatureMatrix) string { return f.CycleClause })
	row("E", "search clause", func(f engine.FeatureMatrix) string { return f.SearchClause })
	return t
}

// Table2 reproduces the graph-algorithm matrix.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: Graph Algorithms",
		Header: []string{"Graph Algorithm", "Aggregation", "linear", "nonlinear", "operations"},
	}
	tick := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, a := range algos.Registry() {
		t.Rows = append(t.Rows, []string{
			a.Name, a.Agg, tick(a.Linear), tick(a.Nonlinear), strings.Join(a.Ops, ", "),
		})
	}
	return t
}

// Table3 reproduces the dataset table, adding the scaled sizes actually
// used by the benchmarks.
func Table3(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Table 3: The Real Datasets (paper statistics + scaled stand-ins)",
		Header: []string{"Graph", "|V|", "|E|", "Diameter", "Avg.Degree", "scaled |V|", "scaled |E|", "scaled avg"},
	}
	for _, d := range dataset.All() {
		g := d.Generate(cfg.Nodes, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", d.Name, d.Code),
			fmt.Sprintf("%d", d.Nodes), fmt.Sprintf("%d", d.Edges),
			fmt.Sprintf("%d", d.Diameter), fmt.Sprintf("%.2f", d.AvgDeg),
			fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%.2f", g.AvgDegree()),
		})
	}
	return t
}

// UnionByUpdateTable reproduces Tables 4 and 5: the four union-by-update
// implementations running PageRank for cfg.Iters iterations on the given
// dataset, across the three profiles.
func UnionByUpdateTable(code string, cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	d, err := dataset.ByCode(code)
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Nodes, cfg.Seed)
	t := &Table{
		Title:  fmt.Sprintf("Tables 4/5: union-by-update implementations, PageRank x%d on %s", cfg.Iters, d.Name),
		Header: []string{"Time (ms)", "Oracle", "DB2", "PostgreSQL"},
	}
	impls := []ra.UBUImpl{ra.UBUUpdateFrom, ra.UBUMerge, ra.UBUFullOuter, ra.UBUReplace}
	for _, impl := range impls {
		row := []string{impl.String()}
		for _, prof := range profiles() {
			// The paper's support matrix: update-from is PostgreSQL-only,
			// merge is Oracle/DB2-only (PostgreSQL 9.4 predates MERGE).
			if (impl == ra.UBUUpdateFrom && prof.Name != "postgres") ||
				(impl == ra.UBUMerge && prof.Name == "postgres") {
				row = append(row, "-")
				continue
			}
			e := newEngine(prof, cfg)
			start := time.Now()
			if _, err := algos.RunPageRank(e, g, algos.Params{Iters: cfg.Iters, UBU: impl}); err != nil {
				return nil, err
			}
			row = append(row, ms(time.Since(start)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AntiJoinTable reproduces Tables 6 and 7: the three anti-join
// implementations running TopoSort on the given dataset across profiles.
func AntiJoinTable(code string, cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	d, err := dataset.ByCode(code)
	if err != nil {
		return nil, err
	}
	// TopoSort needs an acyclic orientation; the scaled DAG mirrors the
	// dataset's size.
	g := graph.GenerateDAG(cfg.Nodes, int(float64(cfg.Nodes)*d.AvgDeg), cfg.Seed+int64(d.Code[0]))
	t := &Table{
		Title:  fmt.Sprintf("Tables 6/7: anti-join implementations, TopoSort on %s (DAG orientation)", d.Name),
		Header: []string{"Time (ms)", "Oracle", "DB2", "PostgreSQL"},
	}
	for _, impl := range []ra.AntiJoinImpl{ra.AntiNotExists, ra.AntiLeftOuter, ra.AntiNotIn} {
		row := []string{impl.String()}
		for _, prof := range profiles() {
			e := newEngine(prof, cfg)
			start := time.Now()
			if _, err := algos.RunTopoSort(e, g, algos.Params{Anti: impl}); err != nil {
				return nil, err
			}
			row = append(row, ms(time.Since(start)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// algoParams returns the paper's per-dataset parameters: k=10 for the
// dense Orkut, 5 elsewhere; KS with 3 labels, depth 4; 15 iterations for
// PR/HITS/LP.
func algoParams(code string, cfg Config) algos.Params {
	k := 5
	if code == "OK" {
		k = 10
	}
	return algos.Params{Iters: cfg.Iters, K: k, Depth: 4, Query: []int32{0, 1, 2}, Seed: cfg.Seed}
}

// GraphAlgosTable reproduces Fig. 7 (undirected=true: 9 algorithms × YT,
// LJ, OK) or Fig. 8 (undirected=false: 10 algorithms × the 6 directed
// datasets): one sub-table per dataset, rows = algorithms, columns =
// profiles, cells = milliseconds.
func GraphAlgosTable(undirected bool, cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var sets []dataset.Info
	var figure string
	if undirected {
		sets = dataset.Undirected()
		figure = "Fig. 7"
	} else {
		sets = dataset.DirectedSets()
		figure = "Fig. 8"
	}
	var out []*Table
	for _, d := range sets {
		g := d.Generate(cfg.Nodes, cfg.Seed)
		t := &Table{
			Title:  fmt.Sprintf("%s: graph algorithms on %s (scaled: %d nodes, %d edges)", figure, d.Name, g.N, g.M()),
			Header: []string{"Algorithm", "Oracle (ms)", "DB2 (ms)", "PostgreSQL (ms)"},
		}
		for _, a := range algos.Benchmarked() {
			if a.DirectedOnly && !d.Directed {
				continue
			}
			row := []string{a.Code}
			for _, prof := range profiles() {
				e := newEngine(prof, cfg)
				p := algoParams(d.Code, cfg)
				start := time.Now()
				if _, err := a.Run(e, g, p); err != nil {
					return nil, fmt.Errorf("%s on %s/%s: %w", a.Code, d.Code, prof.Name, err)
				}
				row = append(row, ms(time.Since(start)))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// CSV renders the table as RFC-4180-style comma-separated values (cells
// containing commas or quotes are quoted), for plotting the figure series
// outside Go.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
