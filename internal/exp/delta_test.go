package exp

import (
	"strings"
	"testing"
)

// TestDeltaRecordsShape runs the delta experiment (frontier evaluation on)
// at the minimum benchmark scale and checks the acceptance-shaped
// invariants: every cell runs with the rewrite enabled, reaches a
// non-trivial fixpoint, and performs zero build-side index rebuilds during
// the accumulation iterations (at most the single initial build).
func TestDeltaRecordsShape(t *testing.T) {
	recs, err := DeltaRecords(Config{Nodes: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 3 profiles.
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for _, r := range recs {
		if !r.Delta {
			t.Errorf("%s/%s: frontier rewrite not enabled", r.Name, r.Profile)
		}
		if r.Nodes < 600 {
			t.Errorf("%s/%s: scale %d under the n>=600 floor", r.Name, r.Profile, r.Nodes)
		}
		if r.Iterations == 0 || r.RowsFinal == 0 || r.DeltaRowsTotal == 0 {
			t.Errorf("%s/%s: degenerate run %+v", r.Name, r.Profile, r)
		}
		if r.IndexBuilds > 1 {
			t.Errorf("%s/%s: %d index builds, want <= 1 (zero rebuilds during accumulation)",
				r.Name, r.Profile, r.IndexBuilds)
		}
	}
	js, err := DeltaJSON(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, `"delta": true`) || !strings.Contains(js, `"delta_rows_total"`) {
		t.Errorf("JSON missing delta fields:\n%s", js[:200])
	}
}
