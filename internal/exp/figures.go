package exp

import (
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/bsp"
	"repro/internal/datalog"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gas"
	"repro/internal/graph"
)

// IndexingTable reproduces Exp-A / Fig. 10: the PostgreSQL-like profile
// with and without temp-table indexes on the four larger datasets (WG, WT,
// PC, OK), across the benchmarked algorithms.
func IndexingTable(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var out []*Table
	for _, code := range []string{"WG", "WT", "PC", "OK"} {
		d, err := dataset.ByCode(code)
		if err != nil {
			return nil, err
		}
		g := d.Generate(cfg.Nodes, cfg.Seed)
		t := &Table{
			Title:  fmt.Sprintf("Fig. 10: indexing effectiveness in PostgreSQL on %s", d.Name),
			Header: []string{"Algorithm", "no index (ms)", "index (ms)", "speedup"},
		}
		for _, a := range algos.Benchmarked() {
			if a.DirectedOnly && !d.Directed {
				continue
			}
			p := algoParams(code, cfg)
			var times [2]time.Duration
			for i, withIdx := range []bool{false, true} {
				e := newEngine(engine.PostgresLike(withIdx), cfg)
				start := time.Now()
				if _, err := a.Run(e, g, p); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", a.Code, code, err)
				}
				times[i] = time.Since(start)
			}
			speedup := float64(times[0]) / float64(times[1])
			t.Rows = append(t.Rows, []string{
				a.Code, ms(times[0]), ms(times[1]), fmt.Sprintf("%.2fx", speedup),
			})
		}
		out = append(out, t)
	}
	return out, nil
}

// VsSystemsTable reproduces Exp-B / Fig. 11: PR, WCC, and SSSP on all 9
// datasets, comparing the RDBMS path (Oracle-like profile, the paper's
// representative) against the PowerGraph-like GAS engine, the
// SociaLite-like Datalog engine, and the Giraph-like BSP engine.
func VsSystemsTable(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var out []*Table
	for _, algo := range []string{"PR", "WCC", "SSSP"} {
		algo := algo
		t := &Table{
			Title:  fmt.Sprintf("Fig. 11: %s — RDBMS vs PowerGraph-like vs SociaLite-like vs Giraph-like", algo),
			Header: []string{"Dataset", "RDBMS (ms)", "GAS (ms)", "Datalog (ms)", "BSP (ms)"},
		}
		for _, d := range dataset.All() {
			g := d.Generate(cfg.Nodes, cfg.Seed)
			row := []string{d.Code}
			// RDBMS path (Oracle-like, the paper's comparison engine).
			e := newEngine(engine.OracleLike(), cfg)
			p := algoParams(d.Code, cfg)
			start := time.Now()
			var err error
			switch algo {
			case "PR":
				_, err = algos.RunPageRank(e, g, p)
			case "WCC":
				_, err = algos.RunWCC(e, g, p)
			case "SSSP":
				_, err = algos.RunSSSP(e, g, p)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, ms(time.Since(start)))
			// PowerGraph-like GAS.
			start = time.Now()
			switch algo {
			case "PR":
				gas.PageRank(g, 0.85, cfg.Iters)
			case "WCC":
				gas.WCC(g)
			case "SSSP":
				gas.SSSP(g, 0)
			}
			row = append(row, ms(time.Since(start)))
			// SociaLite-like Datalog.
			start = time.Now()
			switch algo {
			case "PR":
				datalog.SocialitePageRank(g, 0.85, cfg.Iters)
			case "WCC":
				datalog.SocialiteWCC(g)
			case "SSSP":
				datalog.SocialiteSSSP(g, 0)
			}
			row = append(row, ms(time.Since(start)))
			// Giraph-like BSP.
			start = time.Now()
			switch algo {
			case "PR":
				bsp.PageRank(g, 0.85, cfg.Iters)
			case "WCC":
				bsp.WCC(g)
			case "SSSP":
				bsp.SSSP(g, 0)
			}
			row = append(row, ms(time.Since(start)))
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// WithVsWithPlusPR reproduces Exp-C / Fig. 12: PageRank through plain WITH
// (Fig. 9: partition by + distinct, PostgreSQL only) versus WITH+ (Fig. 3),
// reporting per-iteration running time and accumulated tuples. The tuple
// column is in multiples of n, as the paper plots.
func WithVsWithPlusPR(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	d, err := dataset.ByCode("WG")
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Nodes, cfg.Seed)
	iters := 14 // the paper's recursion depth for this experiment
	legacy, err := algos.RunLegacyPageRank(newEngine(engine.PostgresLike(true), cfg), g, algos.Params{Iters: iters})
	if err != nil {
		return nil, err
	}
	plus, err := algos.RunPageRank(newEngine(engine.PostgresLike(true), cfg), g, algos.Params{Iters: iters})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 12: WITH vs WITH+ PageRank on %s (PostgreSQL profile, n=%d)", d.Name, g.N),
		Header: []string{"Iteration", "with time (ms)", "with+ time (ms)", "with tuples (xn)", "with+ tuples (xn)"},
	}
	n := float64(g.N)
	for i := 0; i < iters; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			ms(legacy.IterTimes[i]), ms(plus.IterTimes[i]),
			fmt.Sprintf("%.0f", float64(legacy.IterRows[i])/n),
			fmt.Sprintf("%.0f", float64(plus.IterRows[i])/n),
		})
	}
	return t, nil
}

// TCAndAPSPTables reproduces Exp-C / Fig. 13: per-iteration times for
// linear TC (WITH+ semi-naive vs PostgreSQL's plain WITH union) and APSP
// by MM-join, on the Wiki Vote stand-in with recursion depth 7.
func TCAndAPSPTables(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	// The paper runs this on Wiki Vote; a degree-preserving scale-down of
	// WV saturates its closure within 2 hops (the diameter does not
	// survive scaling), so the stand-in here keeps WV's skew but a sparser
	// degree so the paper's per-iteration growth across all 7 levels is
	// visible. Documented in EXPERIMENTS.md.
	n := cfg.Nodes / 2
	g := graph.Generate(graph.GenSpec{N: n, M: 3 * n, Directed: true, Skew: 2.4, Seed: cfg.Seed})
	depth := 7
	plus, err := algos.RunTC(newEngine(engine.OracleLike(), cfg), g, algos.Params{Depth: depth})
	if err != nil {
		return nil, err
	}
	legacy, err := algos.RunLegacyTC(newEngine(engine.PostgresLike(true), cfg), g, algos.Params{Depth: depth}, true)
	if err != nil {
		return nil, err
	}
	tc := &Table{
		Title:  fmt.Sprintf("Fig. 13(a): linear TC (sparse WV-skew stand-in, %d nodes), depth %d", n, depth),
		Header: []string{"Iteration", "with+ time (ms)", "with/PostgreSQL time (ms)", "with+ |TC|", "with |TC|"},
	}
	rows := len(plus.IterTimes)
	if len(legacy.IterTimes) > rows {
		rows = len(legacy.IterTimes)
	}
	cell := func(ts []time.Duration, i int) string {
		if i < len(ts) {
			return ms(ts[i])
		}
		return "-"
	}
	count := func(ns []int, i int) string {
		if i < len(ns) {
			return fmt.Sprintf("%d", ns[i])
		}
		return "-"
	}
	for i := 0; i < rows; i++ {
		tc.Rows = append(tc.Rows, []string{
			fmt.Sprintf("%d", i+1),
			cell(plus.IterTimes, i), cell(legacy.IterTimes, i),
			count(plus.IterRows, i), count(legacy.IterRows, i),
		})
	}
	apsp, err := algos.RunAPSP(newEngine(engine.OracleLike(), cfg), g, algos.Params{Depth: depth})
	if err != nil {
		return nil, err
	}
	at := &Table{
		Title:  fmt.Sprintf("Fig. 13(b): APSP by MM-join (sparse WV-skew stand-in, %d nodes), depth %d", n, depth),
		Header: []string{"Iteration", "time (ms)", "|D| pairs"},
	}
	for i := range apsp.IterTimes {
		at.Rows = append(at.Rows, []string{
			fmt.Sprintf("%d", i+1), ms(apsp.IterTimes[i]), fmt.Sprintf("%d", apsp.IterRows[i]),
		})
	}
	return []*Table{tc, at}, nil
}
