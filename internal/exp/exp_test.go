package exp

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// small keeps the structural tests fast; shape assertions use slightly
// larger inputs where needed.
var small = Config{Nodes: 80, Seed: 1, Iters: 4}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(tab.Rows))
	}
	// Every row: category, feature, 3 cells.
	for _, r := range tab.Rows {
		if len(r) != 5 {
			t.Fatalf("row arity %d: %v", len(r), r)
		}
	}
	// Spot-check distinguishing cells against the paper.
	find := func(feature string) []string {
		for _, r := range tab.Rows {
			if r[1] == feature {
				return r
			}
		}
		t.Fatalf("missing feature %q", feature)
		return nil
	}
	if r := find("distinct"); r[2] != "yes" || r[3] != "no" || r[4] != "no" {
		t.Errorf("distinct row wrong: %v", r)
	}
	if r := find("cycle clause"); r[2] != "no" || r[4] != "yes" {
		t.Errorf("cycle row wrong: %v", r)
	}
	if r := find("Negation"); r[2] != "no" || r[3] != "no" || r[4] != "no" {
		t.Errorf("negation row wrong: %v", r)
	}
	s := tab.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "PostgreSQL") {
		t.Error("rendering broken")
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) < 17 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var sawHITS bool
	for _, r := range tab.Rows {
		if r[0] == "HITS" {
			sawHITS = true
			if r[2] != "" || r[3] != "x" {
				t.Errorf("HITS must be nonlinear-only: %v", r)
			}
		}
	}
	if !sawHITS {
		t.Error("HITS missing")
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3(small)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][0], "Youtube") {
		t.Errorf("first dataset: %v", tab.Rows[0])
	}
	// Paper columns preserved.
	if tab.Rows[2][1] != "3072441" || tab.Rows[2][2] != "117185083" {
		t.Errorf("Orkut stats: %v", tab.Rows[2])
	}
}

func cellMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad ms cell %q", s)
	}
	return v
}

func TestUnionByUpdateTableShape(t *testing.T) {
	tab, err := UnionByUpdateTable("WG", Config{Nodes: 400, Seed: 1, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	// Support matrix: update-from only on PostgreSQL; merge not on it.
	if byName["update from"][1] != "-" || byName["update from"][2] != "-" || byName["update from"][3] == "-" {
		t.Errorf("update-from support cells: %v", byName["update from"])
	}
	if byName["merge"][3] != "-" || byName["merge"][1] == "-" {
		t.Errorf("merge support cells: %v", byName["merge"])
	}
	// Shape: merge is slower than full outer join on Oracle (the paper's
	// headline for Tables 4/5). Lenient factor for timing noise.
	mergeMS := cellMS(t, byName["merge"][1])
	fojMS := cellMS(t, byName["full outer join"][1])
	if mergeMS < fojMS*0.9 {
		t.Errorf("expected merge >= full outer join: %.1f vs %.1f", mergeMS, fojMS)
	}
}

func TestAntiJoinTableShape(t *testing.T) {
	tab, err := AntiJoinTable("WG", Config{Nodes: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, c := range r[1:] {
			if cellMS(t, c) < 0 {
				t.Errorf("bad cell %v", r)
			}
		}
	}
}

func TestGraphAlgosTables(t *testing.T) {
	und, err := GraphAlgosTable(true, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(und) != 3 {
		t.Fatalf("undirected datasets = %d", len(und))
	}
	for _, tab := range und {
		if len(tab.Rows) != 9 { // TS skipped on undirected
			t.Errorf("%s: rows = %d, want 9", tab.Title, len(tab.Rows))
		}
	}
	dir, err := GraphAlgosTable(false, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 6 {
		t.Fatalf("directed datasets = %d", len(dir))
	}
	for _, tab := range dir {
		if len(tab.Rows) != 10 {
			t.Errorf("%s: rows = %d, want 10", tab.Title, len(tab.Rows))
		}
	}
}

func TestVsSystemsTable(t *testing.T) {
	tabs, err := VsSystemsTable(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("algorithms = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 9 {
			t.Errorf("%s: datasets = %d", tab.Title, len(tab.Rows))
		}
		// Shape: the specialized engines beat the RDBMS path (Fig. 11's
		// main point) on every dataset at this scale.
		for _, r := range tab.Rows {
			rdbms := cellMS(t, r[1])
			gasMS := cellMS(t, r[2])
			if gasMS > rdbms*2 {
				t.Errorf("%s %s: GAS (%.1fms) unexpectedly much slower than RDBMS (%.1fms)", tab.Title, r[0], gasMS, rdbms)
			}
		}
	}
}

func TestWithVsWithPlusPRShape(t *testing.T) {
	tab, err := WithVsWithPlusPR(Config{Nodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 {
		t.Fatalf("iterations = %d", len(tab.Rows))
	}
	// Fig. 12(b): plain WITH tuples grow linearly (2n, 3n, ...); WITH+
	// stays at n.
	for i, r := range tab.Rows {
		withX, _ := strconv.Atoi(r[3])
		plusX, _ := strconv.Atoi(r[4])
		if withX != i+2 {
			t.Errorf("iteration %d: with tuples = %dxn, want %dxn", i+1, withX, i+2)
		}
		if plusX != 1 {
			t.Errorf("iteration %d: with+ tuples = %dxn, want 1xn", i+1, plusX)
		}
	}
}

func TestTCAndAPSPTables(t *testing.T) {
	tabs, err := TCAndAPSPTables(Config{Nodes: 240, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if len(tabs[0].Rows) == 0 || len(tabs[1].Rows) == 0 {
		t.Error("empty iteration traces")
	}
	// APSP |D| grows monotonically as the matrix densifies (Fig. 13(b)).
	prev := 0
	for _, r := range tabs[1].Rows {
		n, _ := strconv.Atoi(r[2])
		if n < prev {
			t.Errorf("APSP pair count shrank: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestIndexingTableShape(t *testing.T) {
	tabs, err := IndexingTable(Config{Nodes: 150, Seed: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("datasets = %d", len(tabs))
	}
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			if !strings.HasSuffix(r[3], "x") {
				t.Errorf("speedup cell %q", r[3])
			}
		}
	}
}

func TestResourceTable(t *testing.T) {
	tab, err := ResourceTable(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("datasets = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		hit := cellMS(t, r[3])
		if hit < 0 || hit > 100 {
			t.Errorf("%s: hit ratio %v", r[0], r[3])
		}
		if cellMS(t, r[6]) <= 0 {
			t.Errorf("%s: WAL volume should be positive (base-table load logs)", r[0])
		}
	}
}

func TestOperatorCountTable(t *testing.T) {
	tab, err := OperatorCountTable(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("algorithms = %d", len(tab.Rows))
	}
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	// Section 7.2's comparison: HITS performs more joins per iteration
	// than PR.
	prJoins := cellMS(t, rows["PR"][2])
	hitsJoins := cellMS(t, rows["HITS"][2])
	if hitsJoins <= prJoins {
		t.Errorf("HITS joins/iter (%v) should exceed PR's (%v)", hitsJoins, prJoins)
	}
	// PR union-by-updates once per iteration.
	if ubu := cellMS(t, rows["PR"][5]); ubu < 0.9 || ubu > 1.1 {
		t.Errorf("PR ubu/iter = %v, want ~1", ubu)
	}
	// TopoSort uses anti-joins, PR does not.
	if aj := cellMS(t, rows["TS"][4]); aj <= 0 {
		t.Errorf("TS anti-joins/iter = %v", aj)
	}
	if aj := cellMS(t, rows["PR"][4]); aj != 0 {
		t.Errorf("PR anti-joins/iter = %v, want 0", aj)
	}
}

func TestCSVRendering(t *testing.T) {
	tab := Table1()
	rdr := csv.NewReader(strings.NewReader(tab.CSV()))
	records, err := rdr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 22 { // header + 21 rows
		t.Fatalf("csv records = %d", len(records))
	}
	for i, rec := range records {
		if len(rec) != 5 {
			t.Errorf("record %d has %d fields: %v", i, len(rec), rec)
		}
	}
	// The comma-containing feature name survives round-trip.
	found := false
	for _, rec := range records {
		if rec[1] == "group by, having" {
			found = true
		}
	}
	if !found {
		t.Error("quoted cell lost")
	}
}
