package exp

import (
	"strings"
	"testing"
)

// TestPerfRecordsObserveAB checks the observability A/B contract: an
// observed run reports the spans the counting sink saw, while an
// unobserved run's JSON omits the observed/spans fields entirely — so the
// default output stays byte-compatible with committed BENCH_*.json files.
func TestPerfRecordsObserveAB(t *testing.T) {
	small := Config{Nodes: 120, Seed: 1, Iters: 3}

	off, err := PerfRecords(small)
	if err != nil {
		t.Fatal(err)
	}
	offJSON, err := PerfJSON(off)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(offJSON, "observed") || strings.Contains(offJSON, "spans") {
		t.Errorf("unobserved JSON leaked observer fields:\n%s", offJSON)
	}

	small.Observe = true
	on, err := PerfRecords(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(on) != len(off) {
		t.Fatalf("record counts differ: %d vs %d", len(on), len(off))
	}
	for _, r := range on {
		if !r.Observed {
			t.Errorf("%s/%s not marked observed", r.Name, r.Profile)
		}
		if r.Spans <= 0 {
			t.Errorf("%s/%s observed run saw no spans", r.Name, r.Profile)
		}
	}
	onJSON, err := PerfJSON(on)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(onJSON, `"observed": true`) {
		t.Errorf("observed JSON missing marker:\n%s", onJSON)
	}
}
