package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/withplus"
)

// DeltaRecord is one measurement of the delta experiment, emitted by
// cmd/bench -exp delta -json. The experiment runs accumulation-style
// recursion (transitive closure and single-source reachability — the
// workloads where semi-naive evaluation pays) through the WITH+ pipeline
// and reports wall time plus the executor counters that expose the delta
// machinery: with delta on, each iteration probes only the Δ frontier and
// IndexBuilds stays at one per base table (the build side is extended
// incrementally, never rebuilt); with -nodelta every iteration re-reads
// the full recursive relation. Committed BENCH_delta_*.json files pair a
// -nodelta run (before) with a default run (after).
type DeltaRecord struct {
	Name               string  `json:"name"`
	Profile            string  `json:"profile"`
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	Delta              bool    `json:"delta"`
	Iterations         int     `json:"iterations"`
	NsOp               int64   `json:"ns_op"`
	Millis             float64 `json:"ms"`
	RowsFinal          int     `json:"rows_final"`
	DeltaRowsTotal     int64   `json:"delta_rows_total"`
	Joins              int64   `json:"joins"`
	IndexBuilds        int64   `json:"index_builds"`
	IndexCacheHits     int64   `json:"index_cache_hits"`
	CSRBuilds          int64   `json:"csr_builds"`
	CSRCacheHits       int64   `json:"csr_cache_hits"`
	TuplesMaterialized int64   `json:"tuples_materialized"`
	Inserts            int64   `json:"inserts"`
}

// deltaWorkload is one accumulation-recursion benchmark: a graph shape and
// a WITH+ statement over it.
type deltaWorkload struct {
	name  string
	query string
	g     *graph.Graph
}

// deltaNodes picks the delta experiment's graph size: the configured node
// count, floored at 600 so the accumulation loops run long enough for the
// frontier effect to dominate per-iteration fixed costs.
func deltaNodes(cfg Config) int {
	if cfg.Nodes < 600 {
		return 600
	}
	return cfg.Nodes
}

// chainGraph is the worst case for naive accumulation: a path 0→1→…→n-1.
// Reachability from node 0 runs n-1 iterations with a one-row frontier, so
// full evaluation does O(n²) probe work where semi-naive does O(n).
func chainGraph(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(int32(i), int32(i+1), 1)
	}
	return g
}

// reachSQL is single-source reachability (BFS-shaped accumulation): the
// frontier-rewritable form of Eq. (5), growing the reached set by union.
func reachSQL(source int) string {
	return fmt.Sprintf(`
with R(ID) as (
  (select ID from V where ID = %d)
  union all
  (select E.T from R, E where R.ID = E.F))
select ID from R`, source)
}

// tcDepth bounds the transitive-closure workload so its cost scales with
// nodes × depth rather than nodes²; deep enough that the accumulated
// relation dwarfs each iteration's frontier.
const tcDepth = 40

// deltaReps is the number of timed repetitions per cell; the record keeps
// the minimum. Counters come from the first repetition (deterministic).
const deltaReps = 3

func deltaWorkloads(cfg Config) []deltaWorkload {
	n := deltaNodes(cfg)
	return []deltaWorkload{
		{name: "TC", query: algos.TCSQL(tcDepth), g: chainGraph(n)},
		{name: "REACH", query: reachSQL(0), g: chainGraph(n)},
	}
}

// DeltaRecords measures the delta experiment: each accumulation workload on
// every profile, under the config's executor knobs (cfg.NoDelta selects the
// naive baseline). One record per (workload, profile).
func DeltaRecords(cfg Config) ([]DeltaRecord, error) {
	cfg = cfg.defaults()
	var out []DeltaRecord
	for _, w := range deltaWorkloads(cfg) {
		for _, prof := range profiles() {
			var (
				e       *engine.Engine
				trace   *withplus.Trace
				rows    int
				elapsed time.Duration
			)
			for rep := 0; rep < deltaReps; rep++ {
				re := newEngine(prof, cfg)
				if _, err := re.LoadBase("E", w.g.EdgeRelation()); err != nil {
					return nil, err
				}
				if _, err := re.LoadBase("V", w.g.NodeRelation(nil)); err != nil {
					return nil, err
				}
				start := time.Now()
				res, rtrace, err := withplus.Run(re, w.query)
				if err != nil {
					return nil, fmt.Errorf("delta: %s on %s: %w", w.name, prof.Name, err)
				}
				d := time.Since(start)
				if rep == 0 {
					e, trace, rows = re, rtrace, res.Len()
				}
				if rep == 0 || d < elapsed {
					elapsed = d
				}
			}
			var deltaTotal int64
			for _, dr := range trace.DeltaRows {
				deltaTotal += int64(dr)
			}
			out = append(out, DeltaRecord{
				Name:               w.name,
				Profile:            prof.Name,
				Nodes:              w.g.N,
				Edges:              w.g.M(),
				Delta:              trace.DeltaEnabled,
				Iterations:         trace.Iterations,
				NsOp:               elapsed.Nanoseconds(),
				Millis:             float64(elapsed.Microseconds()) / 1000.0,
				RowsFinal:          rows,
				DeltaRowsTotal:     deltaTotal,
				Joins:              e.Cnt.Joins,
				IndexBuilds:        e.Cnt.IndexBuilds,
				IndexCacheHits:     e.Cnt.IndexCacheHits,
				CSRBuilds:          e.Cnt.CSRBuilds,
				CSRCacheHits:       e.Cnt.CSRCacheHits,
				TuplesMaterialized: e.Cnt.TuplesMaterialized,
				Inserts:            e.Cnt.Inserts,
			})
		}
	}
	return out, nil
}

// DeltaJSON renders the records as indented JSON (the -json output format).
func DeltaJSON(recs []DeltaRecord) (string, error) {
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DeltaTable renders the records as a Table for the default text output.
func DeltaTable(recs []DeltaRecord) *Table {
	t := &Table{
		Title: "Delta: semi-naive frontier evaluation vs naive re-evaluation",
		Header: []string{
			"Workload", "Profile", "delta", "iters", "time (ms)",
			"|R| final", "Δ rows", "joins", "idx builds", "idx hits", "tuples mat",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Profile, fmt.Sprintf("%v", r.Delta),
			fmt.Sprintf("%d", r.Iterations), fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.RowsFinal), fmt.Sprintf("%d", r.DeltaRowsTotal),
			fmt.Sprintf("%d", r.Joins), fmt.Sprintf("%d", r.IndexBuilds),
			fmt.Sprintf("%d", r.IndexCacheHits), fmt.Sprintf("%d", r.TuplesMaterialized),
		})
	}
	return t
}
