package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
	"repro/internal/withplus"
)

// VectorRecord is one measurement of the vector experiment, emitted by
// cmd/bench -exp vector -json. The experiment runs the scan-heavy SQL
// shapes the vectorized kernels target — residual filters, computed
// projections, integer-keyed aggregation, and a WITH+ recursion whose
// recursive step carries a non-equi residual filter — with the batch
// kernels on (default) and off (-novector). Committed
// BENCH_vector_on.json/BENCH_vector_off.json pair the two;
// scripts/bench_guard.sh gates on the speedup, on checksum identity (the
// vectorized path must be byte-identical to the row path), and on the
// VectorizedBatches counter proving which path actually ran.
type VectorRecord struct {
	Name              string  `json:"name"`
	Profile           string  `json:"profile"`
	Nodes             int     `json:"nodes"`
	Edges             int     `json:"edges"`
	Vector            bool    `json:"vector"`
	Queries           int     `json:"queries"`
	NsOp              int64   `json:"ns_op"`
	Millis            float64 `json:"ms"`
	RowsFinal         int     `json:"rows_final"`
	Checksum          string  `json:"checksum"`
	VectorizedBatches int64   `json:"vectorized_batches"`
	RowFallbacks      int64   `json:"row_fallbacks"`
}

// vectorWorkload is one scan-heavy benchmark: a plain SELECT executed
// queries times per repetition, or a WITH+ recursion executed once.
type vectorWorkload struct {
	name    string
	query   string
	with    bool // run through the WITH+ compiler instead of plain SELECT
	queries int  // timed executions per repetition
}

// vectorNodes floors the graph size so the per-query scan dominates fixed
// costs (parse, plan, catalog lookups).
func vectorNodes(cfg Config) int {
	if cfg.Nodes < 5000 {
		return 5000
	}
	return cfg.Nodes
}

// vectorAvgDegree shapes the edge table: the experiment measures tuple
// throughput, so the table just needs to be wide enough that per-row costs
// dominate.
const vectorAvgDegree = 16

// vectorReps is the number of timed repetitions per cell; the record keeps
// the minimum (the least-disturbed repetition). Counters and checksums come
// from the first repetition.
const vectorReps = 5

// vectorEdgeRelation builds E(F, T, ew) from the generated graph with
// deterministic pseudo-random weights in [0, 1) — the generator's constant
// 1.0 weights would make every float filter all-or-nothing.
func vectorEdgeRelation(g *graph.Graph, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed + 1))
	r := relation.NewWithCap(graph.EdgeSchema(), len(g.Edges))
	for _, e := range g.Edges {
		r.Tuples = append(r.Tuples, relation.Tuple{
			value.Int(int64(e.F)), value.Int(int64(e.T)), value.Float(rng.Float64()),
		})
	}
	return r
}

func vectorWorkloads() []vectorWorkload {
	return []vectorWorkload{
		// Residual WHERE: one typed column⋈constant kernel and one
		// column⋈column kernel composed by selection-vector refinement.
		{name: "FILTER", queries: 8,
			query: "select F, T from E where ew > 0.7 and F <> T"},
		// Computed projection: arithmetic kernels into one flat output array.
		{name: "PROJECT", queries: 8,
			query: "select F + T as s, ew * 2.0 as w2, F from E"},
		// Integer-keyed aggregation: dense group ids, no per-row map probe.
		{name: "AGG", queries: 8,
			query: "select F, sum(ew) as s, count(*) as n, max(ew) as mx from E group by F"},
		// WITH+ recursion with a non-equi residual in the recursive step: the
		// vectorized filter runs once per iteration inside the loop.
		{name: "REACH", with: true, queries: 1,
			query: `
with R(ID) as (
  (select ID from V where ID = 0)
  union all
  (select E.T from R, E where R.ID = E.F and E.ew > 0.2))
select ID from R`},
	}
}

// runVectorWorkload loads the data and executes the workload's timed loop,
// returning the final relation and total duration.
func runVectorWorkload(e *engine.Engine, w vectorWorkload, edges, nodes *relation.Relation) (*relation.Relation, time.Duration, error) {
	if _, err := e.LoadBase("E", edges); err != nil {
		return nil, 0, err
	}
	if _, err := e.LoadBase("V", nodes); err != nil {
		return nil, 0, err
	}
	if w.with {
		start := time.Now()
		res, _, err := withplus.Run(e, w.query)
		return res, time.Since(start), err
	}
	stmt, err := sql.ParseStatement(w.query)
	if err != nil {
		return nil, 0, err
	}
	q, ok := stmt.(*sql.QueryStmt)
	if !ok {
		return nil, 0, fmt.Errorf("vector: %s is not a plain SELECT", w.name)
	}
	x := sql.NewExec(e)
	var res *relation.Relation
	start := time.Now()
	for i := 0; i < w.queries; i++ {
		res, err = x.Run(q.Select)
		if err != nil {
			return nil, 0, err
		}
	}
	return res, time.Since(start), nil
}

// VectorRecords measures the vector experiment: each scan-heavy workload on
// every profile, under the config's executor knobs (cfg.NoVector selects
// the row-path baseline). One record per (workload, profile).
func VectorRecords(cfg Config) ([]VectorRecord, error) {
	cfg = cfg.defaults()
	n := vectorNodes(cfg)
	g := graph.Generate(graph.GenSpec{
		N: n, M: n * vectorAvgDegree, Directed: true, Skew: 2.5, Seed: cfg.Seed,
	})
	edges := vectorEdgeRelation(g, cfg.Seed)
	nodes := g.NodeRelation(nil)
	var out []VectorRecord
	for _, w := range vectorWorkloads() {
		for _, prof := range profiles() {
			var (
				e       *engine.Engine
				rel     *relation.Relation
				elapsed time.Duration
			)
			for rep := 0; rep < vectorReps; rep++ {
				re := newEngine(prof, cfg)
				r, d, err := runVectorWorkload(re, w, edges, nodes)
				if err != nil {
					return nil, fmt.Errorf("vector: %s on %s: %w", w.name, prof.Name, err)
				}
				if rep == 0 {
					e, rel = re, r
				}
				if rep == 0 || d < elapsed {
					elapsed = d
				}
			}
			out = append(out, VectorRecord{
				Name:              w.name,
				Profile:           prof.Name,
				Nodes:             g.N,
				Edges:             g.M(),
				Vector:            !cfg.NoVector,
				Queries:           w.queries,
				NsOp:              elapsed.Nanoseconds() / int64(w.queries),
				Millis:            float64(elapsed.Microseconds()) / 1000.0,
				RowsFinal:         rel.Len(),
				Checksum:          RelChecksum(rel),
				VectorizedBatches: e.Cnt.VectorizedBatches,
				RowFallbacks:      e.Cnt.RowFallbacks,
			})
		}
	}
	return out, nil
}

// VectorJSON renders the records as indented JSON (the -json output format).
func VectorJSON(recs []VectorRecord) (string, error) {
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// VectorTable renders the records as a Table for the default text output.
func VectorTable(recs []VectorRecord) *Table {
	t := &Table{
		Title: "Vectorized execution: batch kernels vs row-at-a-time closures",
		Header: []string{
			"Workload", "Profile", "vector", "queries", "time (ms)", "ns/query",
			"|R| final", "checksum", "batches", "row fallbacks",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Profile, fmt.Sprintf("%v", r.Vector),
			fmt.Sprintf("%d", r.Queries), fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.NsOp), fmt.Sprintf("%d", r.RowsFinal),
			r.Checksum, fmt.Sprintf("%d", r.VectorizedBatches),
			fmt.Sprintf("%d", r.RowFallbacks),
		})
	}
	return t
}
