package exp

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestChecksumPinned pins the shared checksum scheme to exact outputs: the
// committed BENCH_*.json baselines and the bench_guard gates compare these
// strings byte-for-byte, so a silent change to the fold (separator, hash
// function, rendering) must fail here first.
func TestChecksumPinned(t *testing.T) {
	// FNV-64a of "1\t2" — the canonical single-row fold.
	if got, want := TupleHash(relation.Tuple{value.Int(1), value.Int(2)}), uint64(0x45f44b1818935e67); got != want {
		t.Errorf("TupleHash(1,2) = %#x, want %#x", got, want)
	}
	// The fold is over rendered values, and Float(2) renders "2" exactly
	// like Int(2) — so equal-rendering tuples hash equal across kinds,
	// matching how the query tools print them.
	if TupleHash(relation.Tuple{value.Int(2)}) != TupleHash(relation.Tuple{value.Float(2)}) {
		t.Error("Int(2) and Float(2) both render \"2\" and must fold equal")
	}

	r := relation.New(schema.Cols(value.KindInt, "F", "T"))
	r.AppendVals(value.Int(1), value.Int(2))
	r.AppendVals(value.Int(3), value.Int(4))
	sum := RelChecksum(r)
	if want := "1289cc003a023c78"; sum != want {
		t.Errorf("RelChecksum = %s, want %s", sum, want)
	}

	// Order independence: the same rows reversed fold to the same string.
	rev := relation.New(r.Sch)
	rev.AppendVals(value.Int(3), value.Int(4))
	rev.AppendVals(value.Int(1), value.Int(2))
	if got := RelChecksum(rev); got != sum {
		t.Errorf("reversed rows checksum %s != %s", got, sum)
	}

	// Empty relation: the zero fold.
	if got := RelChecksum(relation.New(r.Sch)); got != "0000000000000000" {
		t.Errorf("empty checksum = %s", got)
	}
}
