package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/withplus"
)

// CSRRecord is one measurement of the CSR experiment, emitted by
// cmd/bench -exp csr -json. The experiment runs frontier-heavy workloads —
// recursions whose per-iteration work is dominated by probing an immutable
// edge table with a frontier — with the CSR adjacency access path on
// (default) and off (-nocsr). Committed BENCH_csr_on.json/BENCH_csr_off.json
// pair the two; scripts/bench_guard.sh gates on the speedup, on checksum
// identity (the CSR path must be byte-identical to the hash path), and on
// CSRBuilds staying ≤ 1 per recursion (one build amortized over every
// iteration, appends extending it in place).
type CSRRecord struct {
	Name           string  `json:"name"`
	Profile        string  `json:"profile"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	CSR            bool    `json:"csr"`
	Iterations     int     `json:"iterations"`
	NsOp           int64   `json:"ns_op"`
	Millis         float64 `json:"ms"`
	RowsFinal      int     `json:"rows_final"`
	Checksum       string  `json:"checksum"`
	Joins          int64   `json:"joins"`
	CSRBuilds      int64   `json:"csr_builds"`
	CSRCacheHits   int64   `json:"csr_cache_hits"`
	IndexBuilds    int64   `json:"index_builds"`
	IndexCacheHits int64   `json:"index_cache_hits"`
}

// csrWorkload is one frontier-heavy benchmark: a name, a graph, and a
// runner that executes it on a fresh engine, returning the final relation
// and the iteration count.
type csrWorkload struct {
	name string
	g    *graph.Graph
	run  func(e *engine.Engine, g *graph.Graph) (*relation.Relation, int, error)
}

// csrNodes picks the experiment's graph size: the configured node count,
// floored high enough that the per-iteration join dominates fixed costs.
func csrNodes(cfg Config) int {
	if cfg.Nodes < 5000 {
		return 5000
	}
	return cfg.Nodes
}

// csrAvgDegree shapes the random graph for the vector workloads. Frontiers
// here are thousands of rows wide (unlike the delta experiment's chains,
// whose one-row frontiers measure the Δ machinery, not the probe path), and
// the fused kernels fold join outputs straight into n dense groups, so the
// per-iteration fixed work is O(n) while probe work scales with the edge
// count — a denser graph makes the access path the dominant cost.
const csrAvgDegree = 16

// csrTCDegree and csrTCDepth shape the transitive-closure workload: the
// accumulated closure grows with reachable pairs, so TC runs on a sparser
// DAG with a shallow recursion bound — frontiers stay thousands of rows
// wide while |TC| stays near-linear instead of saturating toward n² the
// way it does on a strongly connected random graph.
const csrTCDegree = 3
const csrTCDepth = 3

// csrReps is the number of timed repetitions per cell; the record keeps the
// minimum (wall-clock noise on shared machines is one-sided — the fastest
// repetition is the least disturbed one). Counters and checksums come from
// the first repetition.
const csrReps = 5

func csrGraph(cfg Config) *graph.Graph {
	n := csrNodes(cfg)
	return graph.Generate(graph.GenSpec{
		N: n, M: n * csrAvgDegree, Directed: true, Skew: 2.5, Seed: cfg.Seed,
	})
}

func csrTCGraph(cfg Config) *graph.Graph {
	n := csrNodes(cfg) / 2
	return graph.GenerateDAG(n, n*csrTCDegree, cfg.Seed)
}

// runWithPlus loads the graph and executes a WITH+ statement (the SQL
// equi-join frontier path).
func runWithPlus(query string) func(e *engine.Engine, g *graph.Graph) (*relation.Relation, int, error) {
	return func(e *engine.Engine, g *graph.Graph) (*relation.Relation, int, error) {
		if _, err := e.LoadBase("E", g.EdgeRelation()); err != nil {
			return nil, 0, err
		}
		if _, err := e.LoadBase("V", g.NodeRelation(nil)); err != nil {
			return nil, 0, err
		}
		res, trace, err := withplus.Run(e, query)
		if err != nil {
			return nil, 0, err
		}
		return res, trace.Iterations, nil
	}
}

func csrWorkloads(cfg Config) []csrWorkload {
	g := csrGraph(cfg)
	return []csrWorkload{
		// The SQL frontier path: Δ ⋈ E equi-joins inside WITH+ recursion.
		{name: "REACH", g: g, run: runWithPlus(reachSQL(0))},
		{name: "TC", g: csrTCGraph(cfg), run: runWithPlus(algos.TCSQL(csrTCDepth))},
		// The fused MV-join path: vector × edge-matrix fixpoints.
		{name: "BFS", g: g, run: func(e *engine.Engine, g *graph.Graph) (*relation.Relation, int, error) {
			res, err := algos.RunBFS(e, g, algos.Params{Source: 0})
			if err != nil {
				return nil, 0, err
			}
			return res.Rel, res.Iterations, nil
		}},
		{name: "PR", g: g, run: func(e *engine.Engine, g *graph.Graph) (*relation.Relation, int, error) {
			res, err := algos.RunPageRank(e, g, algos.Params{Iters: cfg.Iters})
			if err != nil {
				return nil, 0, err
			}
			return res.Rel, res.Iterations, nil
		}},
	}
}

// CSRRecords measures the CSR experiment: each frontier-heavy workload on
// every profile, under the config's executor knobs (cfg.NoCSR selects the
// hash-path baseline). One record per (workload, profile). The
// PostgreSQL-like profile plans sort-merge joins for unanalyzed temps, so
// its cells move little either way — the access path is plan-dependent,
// which is the point of keeping them in the table.
func CSRRecords(cfg Config) ([]CSRRecord, error) {
	cfg = cfg.defaults()
	var out []CSRRecord
	for _, w := range csrWorkloads(cfg) {
		g := w.g
		for _, prof := range profiles() {
			var (
				e       *engine.Engine
				rel     *relation.Relation
				iters   int
				elapsed time.Duration
			)
			for rep := 0; rep < csrReps; rep++ {
				re := newEngine(prof, cfg)
				start := time.Now()
				r, it, err := w.run(re, g)
				if err != nil {
					return nil, fmt.Errorf("csr: %s on %s: %w", w.name, prof.Name, err)
				}
				d := time.Since(start)
				if rep == 0 {
					e, rel, iters = re, r, it
				}
				if rep == 0 || d < elapsed {
					elapsed = d
				}
			}
			out = append(out, CSRRecord{
				Name:           w.name,
				Profile:        prof.Name,
				Nodes:          g.N,
				Edges:          g.M(),
				CSR:            !cfg.NoCSR,
				Iterations:     iters,
				NsOp:           elapsed.Nanoseconds(),
				Millis:         float64(elapsed.Microseconds()) / 1000.0,
				RowsFinal:      rel.Len(),
				Checksum:       RelChecksum(rel),
				Joins:          e.Cnt.Joins,
				CSRBuilds:      e.Cnt.CSRBuilds,
				CSRCacheHits:   e.Cnt.CSRCacheHits,
				IndexBuilds:    e.Cnt.IndexBuilds,
				IndexCacheHits: e.Cnt.IndexCacheHits,
			})
		}
	}
	return out, nil
}

// CSRJSON renders the records as indented JSON (the -json output format).
func CSRJSON(recs []CSRRecord) (string, error) {
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// CSRTable renders the records as a Table for the default text output.
func CSRTable(recs []CSRRecord) *Table {
	t := &Table{
		Title: "CSR: adjacency access path vs cached hash index",
		Header: []string{
			"Workload", "Profile", "csr", "iters", "time (ms)", "|R| final",
			"checksum", "joins", "csr builds", "csr hits", "idx builds", "idx hits",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Profile, fmt.Sprintf("%v", r.CSR),
			fmt.Sprintf("%d", r.Iterations), fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.RowsFinal), r.Checksum,
			fmt.Sprintf("%d", r.Joins), fmt.Sprintf("%d", r.CSRBuilds),
			fmt.Sprintf("%d", r.CSRCacheHits), fmt.Sprintf("%d", r.IndexBuilds),
			fmt.Sprintf("%d", r.IndexCacheHits),
		})
	}
	return t
}
