package exp

import (
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// ResourceTable supports the paper's Section 7.2 observation that large
// graphs turn the workload I/O-bound ("the CPU utilization ratio for the
// same graph algorithms over Orkut is only 40%-50%"): it reports, per
// dataset, the buffer-pool hit ratio, simulated-disk page traffic, and
// WAL volume for a PageRank run on the paged-temp-table (DB2-like)
// profile. On the denser datasets the pages-per-millisecond rate rises —
// the mechanical analogue of the paper's dropping CPU utilization.
func ResourceTable(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		Title: "Resource utilization (PageRank, DB2-like profile): the paper's CPU-vs-I/O observation",
		Header: []string{
			"Dataset", "edges", "time (ms)", "pool hit%", "disk reads", "disk writes", "wal KB", "pages/ms",
			"idx builds", "idx hits", "tuples mat",
		},
	}
	for _, d := range dataset.All() {
		g := d.Generate(cfg.Nodes, cfg.Seed)
		e := newEngine(engine.DB2Like(), cfg)
		start := time.Now()
		if _, err := algos.RunPageRank(e, g, algos.Params{Iters: cfg.Iters}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		pool := e.Cat.Pool
		hits, misses := pool.Hits, pool.Misses
		hitPct := 100.0
		if hits+misses > 0 {
			hitPct = 100 * float64(hits) / float64(hits+misses)
		}
		disk := e.Disk()
		pages := disk.Reads + disk.Writes
		perMS := float64(pages) / (float64(elapsed.Microseconds()) / 1000)
		t.Rows = append(t.Rows, []string{
			d.Code, fmt.Sprintf("%d", g.M()), ms(elapsed),
			fmt.Sprintf("%.1f", hitPct),
			fmt.Sprintf("%d", disk.Reads), fmt.Sprintf("%d", disk.Writes),
			fmt.Sprintf("%.0f", float64(e.WAL().Bytes)/1024),
			fmt.Sprintf("%.1f", perMS),
			fmt.Sprintf("%d", e.Cnt.IndexBuilds),
			fmt.Sprintf("%d", e.Cnt.IndexCacheHits),
			fmt.Sprintf("%d", e.Cnt.TuplesMaterialized),
		})
	}
	return t, nil
}

// OperatorCountTable supports Section 7.2's "the number of operations,
// such as join, aggregation, and union-by-update, in an iteration, plays
// an important role": per algorithm, the engine-counter deltas divided by
// the iteration count, on one directed stand-in. PR's 1 MV-join + 1
// union-by-update versus HITS's 2 MV-joins + θ-join + extra aggregation is
// visible directly.
func OperatorCountTable(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	d, err := dataset.ByCode("WG")
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Nodes, cfg.Seed)
	t := &Table{
		Title:  "Operator counts per iteration (Section 7.2), Web Google stand-in",
		Header: []string{"Algorithm", "iters", "joins/iter", "aggs/iter", "anti-joins/iter", "ubu/iter"},
	}
	for _, a := range algos.Benchmarked() {
		e := newEngine(engine.OracleLike(), cfg)
		res, err := a.Run(e, g, algoParams("WG", cfg))
		if err != nil {
			return nil, err
		}
		iters := res.Iterations
		if iters == 0 {
			iters = 1
		}
		per := func(n int64) string { return fmt.Sprintf("%.1f", float64(n)/float64(iters)) }
		t.Rows = append(t.Rows, []string{
			a.Code, fmt.Sprintf("%d", res.Iterations),
			per(e.Cnt.Joins), per(e.Cnt.GroupBys), per(e.Cnt.AntiJoins), per(e.Cnt.UBUs),
		})
	}
	return t, nil
}
