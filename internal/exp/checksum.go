// Checksum helpers shared by the experiment records and the bench gates.
// The csr, vector, motif, and concurrent experiments all pin result
// checksums in their committed baselines; one definition here keeps the
// scheme from drifting between them (scripts/bench_guard.sh compares these
// strings byte-for-byte across on/off runs).
package exp

import (
	"fmt"
	"hash/fnv"

	"repro/internal/relation"
)

// TupleHash is the FNV-64a hash of one tuple's rendered values, tab
// separated — the row fold every experiment checksum builds on.
func TupleHash(tu relation.Tuple) uint64 {
	h := fnv.New64a()
	for j, v := range tu {
		if j > 0 {
			h.Write([]byte{'\t'})
		}
		h.Write([]byte(v.String()))
	}
	return h.Sum64()
}

// RelChecksum folds a relation's rows order-independently (XOR of the row
// hashes) into a fixed-width hex string: morsel-parallel row orderings hash
// equal, any value difference does not.
func RelChecksum(r *relation.Relation) string {
	var sum uint64
	for _, tu := range r.Tuples {
		sum ^= TupleHash(tu)
	}
	return fmt.Sprintf("%016x", sum)
}
