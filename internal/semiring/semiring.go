// Package semiring defines the algebraic structure (⊕, ⊙, 0, 1) over which
// MM-join and MV-join compute. The paper (Section 4.1, citing Kepner &
// Gilbert) uses semirings as the umbrella under which many graph algorithms
// become matrix computations: BFS is (max, *), shortest paths are (min, +),
// PageRank-style propagation is (+, *), and so on.
package semiring

import (
	"math"

	"repro/internal/value"
)

// Semiring packages the addition ⊕ (the aggregate over a group), the
// multiplication ⊙ (applied while joining), and the two identities.
type Semiring struct {
	Name string
	// Plus is ⊕: combines two accumulated values. It must be commutative
	// and associative with Zero as identity.
	Plus func(a, b value.Value) value.Value
	// Times is ⊙: combines a matrix entry with a matrix/vector entry.
	Times func(a, b value.Value) value.Value
	// Zero is the ⊕-identity (also the ⊙-annihilator).
	Zero value.Value
	// One is the ⊙-identity.
	One value.Value
}

func mustAdd(a, b value.Value) value.Value {
	v, err := value.Add(a, b)
	if err != nil {
		return value.Null
	}
	return v
}

func mustMul(a, b value.Value) value.Value {
	v, err := value.Mul(a, b)
	if err != nil {
		return value.Null
	}
	return v
}

// PlusTimes is the standard (+, *) semiring over floats, used by PageRank,
// HITS, SimRank, and Markov clustering.
func PlusTimes() Semiring {
	return Semiring{
		Name:  "plus-times",
		Plus:  mustAdd,
		Times: mustMul,
		Zero:  value.Float(0),
		One:   value.Float(1),
	}
}

// MinPlus is the tropical (min, +) semiring used by Bellman-Ford and
// Floyd-Warshall shortest distances; Zero is +Inf.
func MinPlus() Semiring {
	return Semiring{
		Name:  "min-plus",
		Plus:  value.Min,
		Times: mustAdd,
		Zero:  value.Float(math.Inf(1)),
		One:   value.Float(0),
	}
}

// MaxTimes is the (max, *) semiring used by BFS reachability (Eq. (5)):
// visited flags propagate along edges and max keeps any 1.
func MaxTimes() Semiring {
	return Semiring{
		Name:  "max-times",
		Plus:  value.Max,
		Times: mustMul,
		Zero:  value.Float(0),
		One:   value.Float(1),
	}
}

// MinTimes is the (min, *) semiring used by weakly-connected components
// (Eq. (6)): the smallest reachable label wins. Zero is +Inf.
func MinTimes() Semiring {
	return Semiring{
		Name:  "min-times",
		Plus:  value.Min,
		Times: mustMul,
		Zero:  value.Float(math.Inf(1)),
		One:   value.Float(1),
	}
}

// OrAnd is the boolean semiring (∨, ∧) of plain reachability / transitive
// closure membership.
func OrAnd() Semiring {
	return Semiring{
		Name: "or-and",
		Plus: func(a, b value.Value) value.Value {
			return value.Bool(a.AsBool() || b.AsBool())
		},
		Times: func(a, b value.Value) value.Value {
			return value.Bool(a.AsBool() && b.AsBool())
		},
		Zero: value.Bool(false),
		One:  value.Bool(true),
	}
}

// MaxMin is the bottleneck (max, min) semiring of widest-path problems.
func MaxMin() Semiring {
	return Semiring{
		Name:  "max-min",
		Plus:  value.Max,
		Times: value.Min,
		Zero:  value.Float(math.Inf(-1)),
		One:   value.Float(math.Inf(1)),
	}
}

// ByName returns a built-in semiring by name, or false.
func ByName(name string) (Semiring, bool) {
	switch name {
	case "plus-times":
		return PlusTimes(), true
	case "min-plus":
		return MinPlus(), true
	case "max-times":
		return MaxTimes(), true
	case "min-times":
		return MinTimes(), true
	case "or-and":
		return OrAnd(), true
	case "max-min":
		return MaxMin(), true
	}
	return Semiring{}, false
}

// All returns every built-in semiring (used by property tests of the
// semiring laws).
func All() []Semiring {
	return []Semiring{PlusTimes(), MinPlus(), MaxTimes(), MinTimes(), OrAnd(), MaxMin()}
}
