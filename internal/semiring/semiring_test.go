package semiring

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// sample draws values appropriate for a semiring (booleans for or-and,
// small non-negative floats otherwise so min-plus/min-times stay finite).
func sample(sr Semiring, rng *rand.Rand) value.Value {
	if sr.Name == "or-and" {
		return value.Bool(rng.Intn(2) == 1)
	}
	return value.Float(float64(rng.Intn(8)) + 0.5)
}

func eq(a, b value.Value) bool {
	if a.K == value.KindFloat && b.K == value.KindFloat {
		if math.IsInf(a.F, 1) && math.IsInf(b.F, 1) {
			return true
		}
		if math.IsInf(a.F, -1) && math.IsInf(b.F, -1) {
			return true
		}
		return math.Abs(a.F-b.F) < 1e-12
	}
	return a.Equal(b)
}

func TestSemiringLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sr := range All() {
		sr := sr
		t.Run(sr.Name, func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				a, b, c := sample(sr, rng), sample(sr, rng), sample(sr, rng)
				// ⊕ commutative, associative, identity Zero.
				if !eq(sr.Plus(a, b), sr.Plus(b, a)) {
					t.Fatalf("plus not commutative on %v,%v", a, b)
				}
				if !eq(sr.Plus(sr.Plus(a, b), c), sr.Plus(a, sr.Plus(b, c))) {
					t.Fatalf("plus not associative on %v,%v,%v", a, b, c)
				}
				if !eq(sr.Plus(a, sr.Zero), a) {
					t.Fatalf("zero not ⊕-identity for %v: got %v", a, sr.Plus(a, sr.Zero))
				}
				// ⊙ associative with identity One.
				if !eq(sr.Times(sr.Times(a, b), c), sr.Times(a, sr.Times(b, c))) {
					t.Fatalf("times not associative on %v,%v,%v", a, b, c)
				}
				if !eq(sr.Times(a, sr.One), a) || !eq(sr.Times(sr.One, a), a) {
					t.Fatalf("one not ⊙-identity for %v", a)
				}
				// Distributivity: a⊙(b⊕c) = (a⊙b)⊕(a⊙c).
				left := sr.Times(a, sr.Plus(b, c))
				right := sr.Plus(sr.Times(a, b), sr.Times(a, c))
				if !eq(left, right) {
					t.Fatalf("not left-distributive on %v,%v,%v: %v vs %v", a, b, c, left, right)
				}
				// Zero annihilates (for min-plus, Inf+x = Inf; etc.).
				if !eq(sr.Times(a, sr.Zero), sr.Zero) {
					t.Fatalf("zero does not annihilate %v: %v", a, sr.Times(a, sr.Zero))
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, sr := range All() {
		got, ok := ByName(sr.Name)
		if !ok || got.Name != sr.Name {
			t.Errorf("ByName(%q) failed", sr.Name)
		}
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("ByName should reject unknown names")
	}
}

func TestSpecificValues(t *testing.T) {
	pt := PlusTimes()
	if got := pt.Plus(value.Float(1), value.Float(2)); !eq(got, value.Float(3)) {
		t.Errorf("plus-times ⊕: %v", got)
	}
	mp := MinPlus()
	if got := mp.Times(value.Float(2), value.Float(3)); !eq(got, value.Float(5)) {
		t.Errorf("min-plus ⊙ should be +: %v", got)
	}
	if got := mp.Plus(value.Float(2), mp.Zero); !eq(got, value.Float(2)) {
		t.Errorf("min with Inf: %v", got)
	}
	oa := OrAnd()
	if got := oa.Plus(value.Bool(false), value.Bool(true)); !got.AsBool() {
		t.Errorf("or-and ⊕: %v", got)
	}
}
