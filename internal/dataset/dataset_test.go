package dataset

import (
	"strings"
	"testing"
)

func TestRegistryMatchesTable3(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("want 9 datasets, got %d", len(all))
	}
	if len(Undirected()) != 3 || len(DirectedSets()) != 6 {
		t.Error("3 undirected + 6 directed expected")
	}
	// Spot-check the paper's numbers.
	ok, err := ByCode("OK")
	if err != nil || ok.Edges != 117185083 || ok.Directed {
		t.Errorf("Orkut row wrong: %+v %v", ok, err)
	}
	pc, err := ByCode("PC")
	if err != nil || pc.Nodes != 3774768 || pc.Diameter != 22 || !pc.Directed {
		t.Errorf("Patent row wrong: %+v %v", pc, err)
	}
	gp, _ := ByCode("GP")
	if gp.AvgDeg != 254.12 {
		t.Errorf("Google+ avg degree: %v", gp.AvgDeg)
	}
	if _, err := ByCode("XX"); err == nil {
		t.Error("unknown code should error")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Code = "MUTATED"
	b := All()
	if b[0].Code == "MUTATED" {
		t.Error("All must return a copy")
	}
}

func TestGenerateScaledShape(t *testing.T) {
	for _, d := range All() {
		g := d.Generate(300, 1)
		if g.N != 300 {
			t.Errorf("%s: N=%d", d.Code, g.N)
		}
		if g.Directed != d.Directed {
			t.Errorf("%s: directedness mismatch", d.Code)
		}
		// Average degree within 40% of the real dataset (dup/self-loop
		// rejection bites on the densest specs).
		target := d.AvgDeg
		got := g.AvgDegree()
		if got < target*0.6 || got > target*1.4 {
			t.Errorf("%s: avg degree %.2f, want ≈%.2f", d.Code, got, target)
		}
		if g.NodeW == nil || g.Labels == nil {
			t.Errorf("%s: attributes missing", d.Code)
		}
	}
}

func TestGenerateDefaultsAndDeterminism(t *testing.T) {
	d, _ := ByCode("WV")
	g1 := d.Generate(0, 7)
	if g1.N != DefaultBenchNodes {
		t.Errorf("default nodes = %d", g1.N)
	}
	g2 := d.Generate(0, 7)
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("nondeterministic")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestDatasetsDifferWithSameSeed(t *testing.T) {
	wv, _ := ByCode("WV")
	wg, _ := ByCode("WG")
	a, b := wv.Generate(200, 5), wg.Generate(200, 5)
	if len(a.Edges) == len(b.Edges) {
		same := true
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different datasets with same seed should differ")
		}
	}
}

func TestString(t *testing.T) {
	d, _ := ByCode("YT")
	s := d.String()
	for _, want := range []string{"YT", "Youtube", "1134890", "2987624"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
