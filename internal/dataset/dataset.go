// Package dataset mirrors the paper's 9 SNAP datasets (Table 3). The true
// SNAP statistics are kept for reporting; since the raw downloads are not
// available offline, each dataset has a deterministic synthetic generator
// matched to its directedness, average degree, and degree skew, scaled down
// so benchmarks finish in seconds. Scale-independent properties (who wins,
// crossover behaviour) are preserved; absolute sizes are not.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Info describes one dataset: the paper's real statistics plus the
// generator parameters for its scaled synthetic stand-in.
type Info struct {
	Code     string // the paper's abbreviation (YT, LJ, ...)
	Name     string
	Nodes    int64 // |V| in the paper (Table 3)
	Edges    int64 // |E| in the paper
	Diameter int
	AvgDeg   float64
	Directed bool
	Skew     float64 // generator power-law exponent
}

// The paper's Table 3, in presentation order: 3 undirected then 6 directed.
var registry = []Info{
	{Code: "YT", Name: "Youtube", Nodes: 1134890, Edges: 2987624, Diameter: 20, AvgDeg: 5.27, Directed: false, Skew: 2.2},
	{Code: "LJ", Name: "LiveJournal", Nodes: 3997962, Edges: 34681189, Diameter: 17, AvgDeg: 17.35, Directed: false, Skew: 2.3},
	{Code: "OK", Name: "Orkut", Nodes: 3072441, Edges: 117185083, Diameter: 9, AvgDeg: 76.22, Directed: false, Skew: 2.6},
	{Code: "WV", Name: "Wiki Vote", Nodes: 7115, Edges: 103689, Diameter: 7, AvgDeg: 29.14, Directed: true, Skew: 2.4},
	{Code: "TT", Name: "Twitter", Nodes: 81306, Edges: 1768149, Diameter: 7, AvgDeg: 51.69, Directed: true, Skew: 2.5},
	{Code: "WG", Name: "Web Google", Nodes: 875713, Edges: 5105039, Diameter: 21, AvgDeg: 11.66, Directed: true, Skew: 2.3},
	{Code: "WT", Name: "Wiki Talk", Nodes: 2394385, Edges: 5021410, Diameter: 9, AvgDeg: 4.19, Directed: true, Skew: 2.1},
	{Code: "GP", Name: "Google+", Nodes: 107614, Edges: 13673453, Diameter: 6, AvgDeg: 254.12, Directed: true, Skew: 2.8},
	{Code: "PC", Name: "U.S. Patent Citation", Nodes: 3774768, Edges: 16518948, Diameter: 22, AvgDeg: 8.75, Directed: true, Skew: 2.2},
}

// All returns every dataset in the paper's order.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Undirected returns the 3 undirected datasets (Fig. 7's x-axis).
func Undirected() []Info { return filter(false) }

// DirectedSets returns the 6 directed datasets (Fig. 8's x-axis).
func DirectedSets() []Info { return filter(true) }

func filter(directed bool) []Info {
	var out []Info
	for _, d := range registry {
		if d.Directed == directed {
			out = append(out, d)
		}
	}
	return out
}

// ByCode returns the dataset with the given abbreviation.
func ByCode(code string) (Info, error) {
	for _, d := range registry {
		if d.Code == code {
			return d, nil
		}
	}
	codes := make([]string, len(registry))
	for i, d := range registry {
		codes[i] = d.Code
	}
	sort.Strings(codes)
	return Info{}, fmt.Errorf("dataset: unknown code %q (have %v)", code, codes)
}

// DefaultBenchNodes is the node count datasets are scaled to for benchmark
// runs. Relative sizes between datasets are preserved via average degree.
const DefaultBenchNodes = 1500

// Generate builds the scaled synthetic stand-in with roughly `nodes` nodes
// and the dataset's real average degree. Node weights in [0,20] (MNM) and
// 8 labels (LP/KS) are always attached, as the paper generates them
// randomly for the algorithms that need them.
func (d Info) Generate(nodes int, seed int64) *graph.Graph {
	if nodes <= 0 {
		nodes = DefaultBenchNodes
	}
	m := int(float64(nodes) * d.AvgDeg)
	maxM := nodes * (nodes - 1) / 2 // unique pairs
	if d.Directed {
		maxM = nodes * (nodes - 1)
	}
	if m > maxM {
		m = maxM
	}
	return graph.Generate(graph.GenSpec{
		N: nodes, M: m, Directed: d.Directed, Skew: d.Skew,
		Seed:          seed + int64(len(d.Code))*1009 + int64(d.Code[0])*31 + int64(d.Code[1]),
		MaxNodeWeight: 20, NumLabels: 8,
	})
}

// String renders the dataset as its Table 3 row.
func (d Info) String() string {
	return fmt.Sprintf("%s (%s): |V|=%d |E|=%d diam=%d avg=%.2f directed=%v",
		d.Code, d.Name, d.Nodes, d.Edges, d.Diameter, d.AvgDeg, d.Directed)
}
