// Package gas implements a PowerGraph-like Gather-Apply-Scatter engine:
// vertex programs run over active sets, gathering over in-edges, applying
// an update, and scattering activation along out-edges. It is the
// PowerGraph baseline of the paper's Exp-B (Fig. 11).
package gas

import (
	"math"

	"repro/internal/graph"
)

// Program is a GAS vertex program over float64 vertex state.
type Program struct {
	// Init returns the initial vertex value.
	Init func(v int32) float64
	// Gather combines the contribution of in-edge (u→v) given u's value.
	Gather func(uVal, w float64) float64
	// Sum merges two gather results (must be commutative/associative).
	Sum func(a, b float64) float64
	// GatherZero is the identity of Sum.
	GatherZero float64
	// Apply computes the new value of v from its old value and the
	// gathered total (total is GatherZero when v has no in-edges).
	Apply func(v int32, old, total float64) float64
	// ActivateOnChange scatters activation to out-neighbours when the
	// value changed by more than Tolerance.
	Tolerance float64
}

// Engine executes GAS programs on one graph.
type Engine struct {
	g   *graph.Graph
	out *graph.CSR
	in  *graph.CSR
}

// New prepares an engine (builds both adjacency directions).
func New(g *graph.Graph) *Engine {
	return &Engine{g: g, out: graph.BuildCSR(g, false), in: graph.BuildCSR(g, true)}
}

// Run executes the program until no vertices are active or maxIters is
// reached (0 = unbounded). Returns the vertex values and supersteps used.
func (e *Engine) Run(p Program, maxIters int) ([]float64, int) {
	n := e.g.N
	val := make([]float64, n)
	for v := 0; v < n; v++ {
		val[v] = p.Init(int32(v))
	}
	frontier := make([]int32, n)
	for v := range frontier {
		frontier[v] = int32(v)
	}
	iters := 0
	for len(frontier) > 0 {
		if maxIters > 0 && iters >= maxIters {
			break
		}
		iters++
		// Gather+Apply for active vertices against the current values,
		// synchronously (PowerGraph's sync engine).
		newVal := make([]float64, len(frontier))
		for i, v := range frontier {
			total := p.GatherZero
			ns, ws := e.in.Neighbors(v), e.in.Weights(v)
			for j, u := range ns {
				total = p.Sum(total, p.Gather(val[u], ws[j]))
			}
			newVal[i] = p.Apply(v, val[v], total)
		}
		var next []int32
		nextActive := make([]bool, n)
		for i, v := range frontier {
			changed := math.Abs(newVal[i]-val[v]) > p.Tolerance
			val[v] = newVal[i]
			if !changed {
				continue
			}
			// Scatter: activate out-neighbours.
			for _, u := range e.out.Neighbors(v) {
				if !nextActive[u] {
					nextActive[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return val, iters
}

// PageRank runs the paper's fixed-iteration PageRank on the GAS engine,
// gathering rank/outdeg along in-edges (the share is encoded as the edge
// weight, PowerGraph-style).
func PageRank(g *graph.Graph, c float64, iters int) ([]float64, int) {
	outdeg := g.OutDegrees()
	wg := graph.New(g.N, g.Directed)
	for _, ed := range g.Edges {
		wg.AddEdge(ed.F, ed.T, 1/float64(outdeg[ed.F]))
	}
	e := New(wg)
	n := float64(g.N)
	return e.Run(Program{
		Init:       func(int32) float64 { return 1 / n },
		Gather:     func(uVal, w float64) float64 { return uVal * w },
		Sum:        func(a, b float64) float64 { return a + b },
		GatherZero: 0,
		Apply: func(v int32, old, total float64) float64 {
			return c*total + (1-c)/n
		},
		Tolerance: -1, // always scatter: fixed-iteration dense run
	}, iters)
}

// WCC computes weakly-connected components (min-label flooding) on the GAS
// engine over the symmetrized graph. Returns labels and supersteps.
func WCC(g *graph.Graph) ([]float64, int) {
	e := New(g.Symmetrize())
	return e.Run(Program{
		Init:       func(v int32) float64 { return float64(v) },
		Gather:     func(uVal, w float64) float64 { return uVal },
		Sum:        math.Min,
		GatherZero: math.Inf(1),
		Apply: func(v int32, old, total float64) float64 {
			return math.Min(old, total)
		},
		Tolerance: 0,
	}, 0)
}

// SSSP computes single-source shortest distances on the GAS engine.
func SSSP(g *graph.Graph, src int32) ([]float64, int) {
	e := New(g)
	return e.Run(Program{
		Init: func(v int32) float64 {
			if v == src {
				return 0
			}
			return math.Inf(1)
		},
		Gather:     func(uVal, w float64) float64 { return uVal + w },
		Sum:        math.Min,
		GatherZero: math.Inf(1),
		Apply: func(v int32, old, total float64) float64 {
			return math.Min(old, total)
		},
		Tolerance: 0,
	}, 0)
}
