package gas

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/refimpl"
)

func testGraph(seed int64) *graph.Graph {
	return graph.Generate(graph.GenSpec{N: 120, M: 500, Directed: true, Skew: 2.2, Seed: seed})
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(1)
	want := refimpl.PageRank(g, 0.85, 15)
	got, iters := PageRank(g, 0.85, 15)
	if iters != 15 {
		t.Errorf("iters = %d", iters)
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestWCCMatchesReference(t *testing.T) {
	g := testGraph(2)
	want := refimpl.WCC(g)
	got, iters := WCC(g)
	for v := range want {
		if int64(got[v]) != want[v] {
			t.Fatalf("label[%d] = %v, want %d", v, got[v], want[v])
		}
	}
	if iters < 1 {
		t.Error("no supersteps recorded")
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g := testGraph(3)
	for i := range g.Edges {
		g.Edges[i].W = float64(1 + i%5)
	}
	want := refimpl.BellmanFord(g, 0)
	got, _ := SSSP(g, 0)
	for v := range want {
		if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestActiveSetShrinks(t *testing.T) {
	// A long chain: SSSP's frontier is one vertex wide, so supersteps ≈
	// chain length, and the engine terminates without a bound.
	g := graph.New(50, true)
	for i := int32(0); i < 49; i++ {
		g.AddEdge(i, i+1, 1)
	}
	dist, iters := SSSP(g, 0)
	if dist[49] != 49 {
		t.Errorf("chain end dist = %v", dist[49])
	}
	if iters < 49 {
		t.Errorf("iters = %d, want ≥ 49 (frontier advances one hop per step)", iters)
	}
}

func TestMaxItersBounds(t *testing.T) {
	g := testGraph(4)
	_, iters := PageRank(g, 0.85, 3)
	if iters != 3 {
		t.Errorf("bounded run used %d supersteps", iters)
	}
}
