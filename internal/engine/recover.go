package engine

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/govern"
	"repro/internal/storage"
)

// RecoveryReport summarizes what Recover rebuilt and what it threw away.
type RecoveryReport struct {
	// Tables are the base tables alive after recovery, sorted.
	Tables []string
	// Records is the number of committed records replayed.
	Records int
	// Discarded counts readable records past the last commit marker — the
	// torn tail of statements in flight at the crash.
	Discarded int
	// Corrupt is non-nil when the log image was physically damaged
	// (truncated or bit-flipped); it locates the first bad frame. Recovery
	// still succeeds with the intact committed prefix.
	Corrupt *storage.CorruptError
}

// String summarizes the report.
func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("recovered %d tables from %d records (%d discarded)", len(r.Tables), r.Records, r.Discarded)
	if r.Corrupt != nil {
		s += fmt.Sprintf("; log damaged: %v", r.Corrupt)
	}
	return s
}

// Recover rebuilds the engine's committed base-table state from the WAL, as
// a restart after a crash would. The disk, buffer pool, and catalog are
// recreated from scratch; the log's committed prefix — every record up to
// and including the last commit marker — is replayed in order, and
// everything after it (statements in flight at the crash, or frames past a
// physical corruption) is discarded. Temporary tables are unlogged by
// design, so none survive.
//
// Recovery doubles as a checkpoint: the log is truncated and the replay
// re-logs every surviving mutation, ending with a fresh commit marker — so
// a crash during or immediately after recovery recovers to the same state.
//
// The catalog's retry policy survives recovery; a scripted fault plan does
// not (the chaos harness recovers with a clean substrate, as a restarted
// process would).
func (e *Engine) Recover() (rep *RecoveryReport, err error) {
	defer govern.RecoverTo(&err)
	var recs []storage.Record
	var corrupt *storage.CorruptError
	if err := e.wal.ReplayRecords(func(r storage.Record) { recs = append(recs, r) }); err != nil {
		var ce *storage.CorruptError
		if !errors.As(err, &ce) {
			return nil, err
		}
		corrupt = ce
	}
	last := -1
	for i, r := range recs {
		if r.Op == storage.OpCommit {
			last = i
		}
	}
	committed := recs[:last+1]
	discarded := len(recs) - len(committed)

	retry := e.Cat.Retry
	e.disk = storage.NewDisk()
	e.pool = storage.NewBufferPool(e.disk, e.frames)
	e.wal.Truncate()
	e.Cat = catalog.New(e.pool, e.wal)
	e.Cat.Retry = retry

	replayed := 0
	for _, r := range committed {
		switch r.Op {
		case storage.OpCreate:
			sch, derr := storage.DecodeSchema(r.Payload)
			if derr != nil {
				return nil, fmt.Errorf("engine: recover create %q: %w", r.Table, derr)
			}
			if _, cerr := e.Cat.Create(r.Table, sch, catalog.StorePagedLogged, false); cerr != nil {
				return nil, fmt.Errorf("engine: recover: %w", cerr)
			}
		case storage.OpInsert:
			t, gerr := e.Cat.Get(r.Table)
			if gerr != nil {
				return nil, fmt.Errorf("engine: recover insert into unknown table %q", r.Table)
			}
			tu, _, derr := storage.DecodeTuple(r.Payload)
			if derr != nil {
				return nil, fmt.Errorf("engine: recover insert into %q: %w", r.Table, derr)
			}
			if ierr := t.Insert(tu); ierr != nil {
				return nil, fmt.Errorf("engine: recover: %w", ierr)
			}
		case storage.OpTruncate:
			t, gerr := e.Cat.Get(r.Table)
			if gerr != nil {
				return nil, fmt.Errorf("engine: recover truncate of unknown table %q", r.Table)
			}
			if terr := t.Truncate(); terr != nil {
				return nil, fmt.Errorf("engine: recover: %w", terr)
			}
		case storage.OpDrop:
			if derr := e.Cat.Drop(r.Table); derr != nil {
				return nil, fmt.Errorf("engine: recover: %w", derr)
			}
		case storage.OpCommit, storage.OpNote:
			continue
		default:
			return nil, fmt.Errorf("engine: recover: unknown record op %v", r.Op)
		}
		replayed++
	}
	for _, name := range e.Cat.Names() {
		t, gerr := e.Cat.Get(name)
		if gerr != nil {
			return nil, gerr
		}
		t.Analyze()
	}
	e.Commit()
	return &RecoveryReport{
		Tables:    e.Cat.Names(),
		Records:   replayed,
		Discarded: discarded,
		Corrupt:   corrupt,
	}, nil
}
