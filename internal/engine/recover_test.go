package engine

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func dump(t *testing.T, e *Engine, name string) string {
	t.Helper()
	r, err := e.Rel(name)
	if err != nil {
		t.Fatalf("materialize %s: %v", name, err)
	}
	var b strings.Builder
	for i := 0; i < r.Len(); i++ {
		b.WriteString(r.At(i).String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRecoverRestoresCommittedState(t *testing.T) {
	e := New(OracleLike())
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}, {1, 2}, {2, 0}})); err != nil {
		t.Fatal(err)
	}
	want := dump(t, e, "E")
	// A temp table and its data must NOT survive recovery.
	tmp, err := e.CreateTemp("scratch", schema.Cols(value.KindInt, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Insert(relation.Tuple{value.Int(7)}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("intact log reported corrupt: %v", rep.Corrupt)
	}
	if len(rep.Tables) != 1 || rep.Tables[0] != "E" {
		t.Fatalf("want tables [E], got %v", rep.Tables)
	}
	if got := dump(t, e, "E"); got != want {
		t.Fatalf("E diverged:\ngot:\n%swant:\n%s", got, want)
	}
	if e.Cat.Has("scratch") {
		t.Fatal("temp table survived recovery")
	}
	// Statistics are rebuilt so plan choice behaves as after a fresh load.
	tab, _ := e.Cat.Get("E")
	if !tab.Stats.Analyzed || tab.Stats.Rows != 3 {
		t.Fatalf("stats not rebuilt: %+v", tab.Stats)
	}
}

// TestRecoverDiscardsTornTail: base-table mutations after the last commit
// marker (a statement in flight at the crash) are discarded.
func TestRecoverDiscardsTornTail(t *testing.T) {
	e := New(OracleLike())
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}, {1, 2}})); err != nil {
		t.Fatal(err)
	}
	want := dump(t, e, "E")
	// Mutate the base table directly without committing — the torn tail.
	tab, _ := e.Cat.Get("E")
	if err := tab.Insert(relation.Tuple{value.Int(9), value.Int(9), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 {
		t.Fatal("uncommitted insert should be visible pre-crash")
	}
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discarded == 0 {
		t.Fatal("the uncommitted insert should be counted as discarded")
	}
	if got := dump(t, e, "E"); got != want {
		t.Fatalf("torn tail not discarded:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRecoverFromBitFlip: physical corruption in the middle of the log
// truncates replay at the damaged frame and reports where it was.
func TestRecoverFromBitFlip(t *testing.T) {
	e := New(OracleLike())
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}})); err != nil {
		t.Fatal(err)
	}
	afterFirst := dump(t, e, "E")
	if _, err := e.LoadBase("F", edgeRel([][2]int64{{5, 6}, {6, 7}})); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the image, landing after E's records (E is create +
	// insert + commit; damage something in F's frames).
	img := e.WAL().Snapshot()
	img[3*len(img)/4] ^= 0x10
	e.WAL().Load(img)
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == nil {
		t.Fatal("bit flip not reported")
	}
	if rep.Corrupt.Record < 3 {
		t.Fatalf("corruption located before E's committed records: %+v", rep.Corrupt)
	}
	// E (fully committed before the damage) must be intact.
	if got := dump(t, e, "E"); got != afterFirst {
		t.Fatalf("committed prefix lost:\ngot:\n%swant:\n%s", got, afterFirst)
	}
}

// TestRecoverIsCheckpoint: recovery truncates and re-logs, so recovering
// twice in a row is stable (a crash during recovery recovers to the same
// state), and the second report discards nothing.
func TestRecoverIsCheckpoint(t *testing.T) {
	e := New(OracleLike())
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}, {1, 2}, {2, 0}})); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Cat.Get("E")
	_ = tab.Insert(relation.Tuple{value.Int(8), value.Int(8), value.Float(1)}) // torn
	rep1, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := dump(t, e, "E")
	rep2, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Discarded != 0 {
		t.Fatalf("second recovery discarded %d records from a checkpointed log", rep2.Discarded)
	}
	if rep2.Records != rep1.Records {
		t.Fatalf("checkpoint changed the committed record count: %d vs %d", rep2.Records, rep1.Records)
	}
	if got := dump(t, e, "E"); got != want {
		t.Fatalf("double recovery diverged:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRecoverReplaysTruncateAndDrop: committed TRUNCATE and DROP TABLE are
// part of the replayed history, not just inserts.
func TestRecoverReplaysTruncateAndDrop(t *testing.T) {
	e := New(OracleLike())
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LoadBase("G", edgeRel([][2]int64{{3, 4}})); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Cat.Get("E")
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := e.Cat.Drop("G"); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || rep.Tables[0] != "E" {
		t.Fatalf("want tables [E], got %v", rep.Tables)
	}
	tab, _ = e.Cat.Get("E")
	if tab.Rows() != 0 {
		t.Fatalf("committed truncate not replayed: %d rows", tab.Rows())
	}
	if e.Cat.Has("G") {
		t.Fatal("committed drop not replayed")
	}
}

// TestRecoverPreservesRetryNotFaultPlan: the retry policy (configuration)
// survives a restart; the scripted fault plan (test instrumentation) does
// not.
func TestRecoverPreservesRetryNotFaultPlan(t *testing.T) {
	e := New(OracleLike())
	e.Cat.Retry = storage.RetryPolicy{Attempts: 4}
	e.Cat.FaultPlan = &storage.FaultPlan{EveryNth: 1000}
	if _, err := e.LoadBase("E", edgeRel([][2]int64{{0, 1}})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if e.Cat.Retry.Attempts != 4 {
		t.Fatal("retry policy lost across recovery")
	}
	if e.Cat.FaultPlan != nil {
		t.Fatal("fault plan must not survive recovery")
	}
}

// TestRecoverEmptyLog: recovering a fresh engine is a no-op that reports an
// empty catalog.
func TestRecoverEmptyLog(t *testing.T) {
	e := New(DB2Like())
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 0 || rep.Records != 0 || rep.Corrupt != nil {
		t.Fatalf("unexpected report for empty log: %+v", rep)
	}
	if !strings.Contains(rep.String(), "recovered 0 tables") {
		t.Fatalf("report string: %q", rep.String())
	}
}
