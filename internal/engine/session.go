package engine

// NewSession returns a session engine over the same database: it shares the
// root's base tables (through a session overlay catalog), buffer pool, WAL,
// and simulated disk, but carries its own counters, governor, observer,
// limits, and temp-table namespace. Statements on a session engine read
// shared tables through a per-statement snapshot (see BeginStatement), so
// concurrent sessions never observe each other's half-applied writes; temps
// the session creates live in its overlay and are invisible to every other
// session, which is what lets N `WITH+` recursions run their `R`/`R__delta`
// working tables simultaneously.
//
// label names the session in per-session metrics
// (`engine.statements{session=label}`); it should be unique per session and
// bounded in cardinality (connection IDs, not request IDs).
//
// Plan-shaping knobs (Parallelism, DisableFusion, DisableDelta) and Limits
// are copied from the root at creation; the session may change its own copy
// (e.g. per-session budgets) without affecting anyone else.
func (e *Engine) NewSession(label string) *Engine {
	root := e
	if e.root != nil {
		root = e.root
	}
	return &Engine{
		Prof:          root.Prof,
		Cat:           root.Cat.Session(),
		Parallelism:   root.Parallelism,
		DisableFusion: root.DisableFusion,
		DisableDelta:  root.DisableDelta,
		Limits:        root.Limits,
		disk:          root.disk,
		pool:          root.pool,
		wal:           root.wal,
		frames:        root.frames,
		session:       label,
		root:          root,
	}
}

// Session returns the session label ("" on the root engine).
func (e *Engine) Session() string { return e.session }

// Root returns the engine this session was created from, or the receiver
// itself on a root engine.
func (e *Engine) Root() *Engine {
	if e.root != nil {
		return e.root
	}
	return e
}

// CloseSession drops every temp table the session still holds in its overlay
// (abandoned recursion working tables, PSM temps), releasing their buffer
// frames. Safe to call on a root engine, where it is a no-op: the root's
// temps belong to the benchmark harness, not to a connection.
func (e *Engine) CloseSession() {
	if e.root == nil {
		return
	}
	for _, name := range e.Cat.TempNames() {
		_ = e.Cat.Drop(name)
	}
}
