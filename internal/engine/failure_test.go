package engine

import (
	"errors"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/storage"
	"repro/internal/value"
)

// Failure injection: storage faults must surface as errors from every
// engine operation, never as silent data loss or panics.

func faultTable(t *testing.T, e *Engine, name string, failAfter int) {
	t.Helper()
	tab, err := e.Cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tab.Store = &storage.FaultyStore{Inner: tab.Store, FailAfter: failAfter}
}

func loadSmall(t *testing.T, e *Engine) {
	t.Helper()
	r := edgeRel([][2]int64{{0, 1}, {1, 2}, {2, 0}})
	if _, err := e.LoadBase("E", r); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFaultPropagates(t *testing.T) {
	e := New(DB2Like())
	loadSmall(t, e)
	tab, _ := e.CreateTemp("V", schema.Cols(value.KindInt, "x"))
	tab.Store = &storage.FaultyStore{Inner: tab.Store, FailAfter: 2} // truncate + 1 insert
	one := relation.New(tab.Sch)
	one.AppendVals(value.Int(1))
	if err := e.StoreInto("V", one); err != nil {
		t.Fatalf("first ops within budget should pass: %v", err)
	}
	two := relation.New(tab.Sch)
	two.AppendVals(value.Int(2))
	two.AppendVals(value.Int(3))
	err := e.StoreInto("V", two)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
}

func TestMaterializeFault(t *testing.T) {
	e := New(DB2Like())
	loadSmall(t, e)
	tab, _ := e.Cat.Get("E")
	// Invalidate the cache, then make the store fail on scan.
	tab.Insert(relation.Tuple{value.Int(5), value.Int(6), value.Float(1)})
	tab.Store = &storage.FaultyStore{Inner: tab.Store}
	if _, err := e.Rel("E"); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("materialize should surface the fault, got %v", err)
	}
	// Engine ops that materialize also fail cleanly.
	v, _ := e.CreateTemp("V", schema.Cols(value.KindInt, "ID", "vw"))
	_ = v
	vt, _ := e.Cat.Get("V")
	if _, err := e.Join(tab, vt, []int{1}, []int{0}); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("join should surface the fault, got %v", err)
	}
	if _, err := e.MVJoin(tab, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes()); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("mv-join should surface the fault, got %v", err)
	}
	if _, err := e.AntiJoin(tab, vt, []int{0}, []int{0}, ra.AntiLeftOuter); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("anti-join should surface the fault, got %v", err)
	}
}

func TestUnionByUpdateFault(t *testing.T) {
	e := New(OracleLike())
	tab, _ := e.CreateTemp("V", schema.Cols(value.KindInt, "ID", "vw"))
	init := relation.New(tab.Sch)
	init.AppendVals(value.Int(1), value.Int(10))
	if err := e.StoreInto("V", init); err != nil {
		t.Fatal(err)
	}
	// Fail on the next store access (materialize during UBU).
	faultTable(t, e, "V", 0)
	_, err := e.UnionByUpdate("V", init, []int{0}, ra.UBUFullOuter)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("union-by-update should surface the fault, got %v", err)
	}
}

func TestTruncateFault(t *testing.T) {
	e := New(OracleLike())
	tab, _ := e.CreateTemp("V", schema.Cols(value.KindInt, "x"))
	tab.Store = &storage.FaultyStore{Inner: tab.Store, FailAfter: 0}
	one := relation.New(tab.Sch)
	one.AppendVals(value.Int(1))
	if err := e.StoreInto("V", one); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("store-into should fail at truncate, got %v", err)
	}
}
