// Package engine executes relational-algebra programs over a catalog, with
// per-profile plan choices modeled on the three RDBMSs the paper evaluates.
package engine

import (
	"repro/internal/catalog"
	"repro/internal/ra"
)

// Profile describes one RDBMS-like configuration. The profiles differ in
// real mechanisms, not constants:
//
//   - OracleLike: temporary tables live in memory (Auto Memory Management),
//     inserts are direct-path (no logging), and the optimizer picks hash
//     join + hash aggregation regardless of temp-table statistics.
//   - DB2Like: hash join + hash aggregation too, but temporary tables are
//     paged through the buffer pool, so every iteration pays tuple
//     encode/decode and page I/O.
//   - PostgresLike: temporary tables are paged AND the optimizer lacks
//     statistics for them, so it falls back to sort-merge joins — resorting
//     inputs every iteration. Building a temp-table index lets the merge
//     join read one side in index order (Exp-A's 10–50% improvement).
type Profile struct {
	Name string
	// TempStore is the physical storage for temporary tables.
	TempStore catalog.StoreKind
	// BaseJoin is the join algorithm for analyzed tables.
	BaseJoin ra.JoinAlgo
	// TempJoin is the join algorithm when an input lacks statistics.
	TempJoin ra.JoinAlgo
	// UseTempIndexes builds sorted indexes on temp-table join keys and
	// upgrades merge joins to index-merge joins (PostgreSQL with the
	// PSM-built indexes of Exp-A).
	UseTempIndexes bool
	// Features is the WITH-clause feature matrix row set (Table 1).
	Features FeatureMatrix
}

// FeatureMatrix records which recursive-WITH features a system supports —
// the content of the paper's Table 1. Values: "yes", "no", "n/a".
type FeatureMatrix struct {
	LinearRecursion    string
	NonlinearRecursion string
	MutualRecursion    string

	MultipleInitialQueries   string
	MultipleRecursiveQueries string

	SetOpsBetweenInitial string
	SetOpsAcrossInitRec  string
	SetOpsBetweenRec     string

	Negation            string
	AggregateFunctions  string
	GroupByHaving       string
	PartitionBy         string
	Distinct            string
	GeneralFunctions    string
	AnalyticalFunctions string
	SubqueriesNoRecRef  string
	SubqueriesRecRef    string

	InfiniteLoopDetection string
	CycleDetection        string
	CycleClause           string
	SearchClause          string
}

// OracleLike returns the Oracle-11gR2-like profile.
func OracleLike() Profile {
	return Profile{
		Name:           "oracle",
		TempStore:      catalog.StoreMem,
		BaseJoin:       ra.HashJoin,
		TempJoin:       ra.HashJoin,
		UseTempIndexes: false,
		Features: FeatureMatrix{
			LinearRecursion: "yes", NonlinearRecursion: "no", MutualRecursion: "no",
			MultipleInitialQueries: "yes", MultipleRecursiveQueries: "no",
			SetOpsBetweenInitial: "yes", SetOpsAcrossInitRec: "no", SetOpsBetweenRec: "n/a",
			Negation: "no", AggregateFunctions: "no", GroupByHaving: "no",
			PartitionBy: "yes", Distinct: "no", GeneralFunctions: "yes",
			AnalyticalFunctions: "yes", SubqueriesNoRecRef: "yes", SubqueriesRecRef: "no",
			InfiniteLoopDetection: "yes", CycleDetection: "yes",
			CycleClause: "yes", SearchClause: "yes",
		},
	}
}

// DB2Like returns the DB2-10.5-like profile.
func DB2Like() Profile {
	return Profile{
		Name:           "db2",
		TempStore:      catalog.StorePaged,
		BaseJoin:       ra.HashJoin,
		TempJoin:       ra.HashJoin,
		UseTempIndexes: false,
		Features: FeatureMatrix{
			LinearRecursion: "yes", NonlinearRecursion: "no", MutualRecursion: "no",
			MultipleInitialQueries: "yes", MultipleRecursiveQueries: "yes",
			SetOpsBetweenInitial: "yes", SetOpsAcrossInitRec: "no", SetOpsBetweenRec: "no",
			Negation: "no", AggregateFunctions: "no", GroupByHaving: "no",
			PartitionBy: "yes", Distinct: "no", GeneralFunctions: "no",
			AnalyticalFunctions: "no", SubqueriesNoRecRef: "yes", SubqueriesRecRef: "no",
			InfiniteLoopDetection: "no", CycleDetection: "no",
			CycleClause: "no", SearchClause: "no",
		},
	}
}

// PostgresLike returns the PostgreSQL-9.4-like profile. withIndexes turns on
// the temp-table indexes the paper builds in PSM for PostgreSQL (Exp-A).
func PostgresLike(withIndexes bool) Profile {
	return Profile{
		Name:           "postgres",
		TempStore:      catalog.StorePaged,
		BaseJoin:       ra.HashJoin,
		TempJoin:       ra.SortMergeJoin,
		UseTempIndexes: withIndexes,
		Features: FeatureMatrix{
			LinearRecursion: "yes", NonlinearRecursion: "no", MutualRecursion: "no",
			MultipleInitialQueries: "yes", MultipleRecursiveQueries: "no",
			SetOpsBetweenInitial: "yes", SetOpsAcrossInitRec: "yes", SetOpsBetweenRec: "n/a",
			Negation: "no", AggregateFunctions: "no", GroupByHaving: "no",
			PartitionBy: "yes", Distinct: "yes", GeneralFunctions: "yes",
			AnalyticalFunctions: "yes", SubqueriesNoRecRef: "yes", SubqueriesRecRef: "no",
			InfiniteLoopDetection: "no", CycleDetection: "no",
			CycleClause: "no", SearchClause: "no",
		},
	}
}

// Profiles returns the three profiles in the paper's presentation order,
// with PostgreSQL configured as in the main experiments (indexes built).
func Profiles() []Profile {
	return []Profile{OracleLike(), DB2Like(), PostgresLike(true)}
}
