package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)


// TestSessionSharesBaseTables: sessions read the root's base tables, keep
// their temps private, count their own statements, and CloseSession reaps
// leftover temps without touching the root.
func TestSessionSharesBaseTables(t *testing.T) {
	root := New(OracleLike())
	if _, err := root.LoadBase("E", edgeRel([][2]int64{{1, 2}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	s := root.NewSession("s1")
	defer s.Cat.Release()

	r, err := s.Rel("E")
	if err != nil || r.Len() != 2 {
		t.Fatalf("session read of shared base = %v, %v", r, err)
	}
	if s.Root() != root || root.Root() != root {
		t.Error("Root() wiring wrong")
	}
	if s.Session() != "s1" || root.Session() != "" {
		t.Error("session labels wrong")
	}

	if _, err := s.CreateTemp("scratch", schema.Cols(value.KindInt, "x")); err != nil {
		t.Fatal(err)
	}
	if root.Cat.Has("scratch") {
		t.Error("session temp visible from the root")
	}
	s2 := root.NewSession("s2")
	if s2.Cat.Has("scratch") {
		t.Error("session temp visible from a sibling session")
	}
	s2.CloseSession()
	s2.Cat.Release()

	// Session counters are private; the root's stay untouched.
	if _, err := s.Rel("E"); err != nil {
		t.Fatal(err)
	}
	if root.Cnt.Snapshot() != (CountersSnapshot{}) && root.Cnt.Snapshot().Joins != 0 {
		t.Error("session work leaked into root counters")
	}

	s.CloseSession()
	if s.Cat.Has("scratch") {
		t.Error("CloseSession left the temp behind")
	}
	if !root.Cat.Has("E") {
		t.Error("CloseSession touched shared tables")
	}
}

// TestEnsureBaseRace: concurrent sessions racing EnsureBase on one name get
// one generator call and one shared table — the check-then-load cycle the
// named table lock exists for.
func TestEnsureBaseRace(t *testing.T) {
	root := New(OracleLike())
	var gens int32
	const sessions = 16
	tables := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.NewSession(fmt.Sprintf("s%d", i))
			defer s.Cat.Release()
			defer s.CloseSession()
			tab, err := s.EnsureBase("PR_E", func() *relation.Relation {
				atomic.AddInt32(&gens, 1)
				return edgeRel([][2]int64{{1, 2}})
			})
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = fmt.Sprintf("%p", tab)
		}(i)
	}
	wg.Wait()
	if gens != 1 {
		t.Fatalf("generator ran %d times, want 1", gens)
	}
	for i := 1; i < sessions; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("sessions got different tables: %s vs %s", tables[i], tables[0])
		}
	}
}

// TestStatementSnapshotIsolation: within one session statement, every read
// of a shared table serves the image pinned at first touch, even if another
// session appends mid-statement; the next statement sees the new rows.
func TestStatementSnapshotIsolation(t *testing.T) {
	root := New(OracleLike())
	if _, err := root.LoadBase("E", edgeRel([][2]int64{{1, 2}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	reader := root.NewSession("r")
	defer reader.Cat.Release()
	writer := root.NewSession("w")
	defer writer.Cat.Release()

	end := reader.BeginStatement(context.Background())
	r1, err := reader.Rel("E")
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.AppendInto("E", edgeRel([][2]int64{{3, 4}})); err != nil {
		t.Fatal(err)
	}
	r2, err := reader.Rel("E")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 2 || r2.Len() != 2 {
		t.Fatalf("mid-statement reads saw %d then %d rows, want 2 and 2", r1.Len(), r2.Len())
	}
	end()

	end = reader.BeginStatement(context.Background())
	r3, err := reader.Rel("E")
	end()
	if err != nil || r3.Len() != 3 {
		t.Fatalf("next statement saw %d rows, want 3 (%v)", r3.Len(), err)
	}

	// The root engine never snapshots: it reads the live table directly.
	if live, _ := root.Rel("E"); live.Len() != 3 {
		t.Fatalf("root read %d rows, want 3", live.Len())
	}
}
