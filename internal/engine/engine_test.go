package engine

import (
	"math"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/storage"
	"repro/internal/value"
)

func edgeRel(edges [][2]int64) *relation.Relation {
	r := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	for _, e := range edges {
		r.AppendVals(value.Int(e[0]), value.Int(e[1]), value.Float(1))
	}
	return r
}

func nodeRel(n int, w func(i int) float64) *relation.Relation {
	r := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat},
	})
	for i := 0; i < n; i++ {
		r.AppendVals(value.Int(int64(i)), value.Float(w(i)))
	}
	return r
}

func allProfiles() []Profile {
	return []Profile{OracleLike(), DB2Like(), PostgresLike(false), PostgresLike(true)}
}

func TestProfilesTable1Shape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("want 3 profiles, got %d", len(ps))
	}
	for _, p := range ps {
		if p.Features.LinearRecursion != "yes" {
			t.Errorf("%s: all RDBMSs support linear recursion", p.Name)
		}
		if p.Features.NonlinearRecursion != "no" || p.Features.MutualRecursion != "no" {
			t.Errorf("%s: none support nonlinear/mutual recursion", p.Name)
		}
		if p.Features.Negation != "no" || p.Features.AggregateFunctions != "no" {
			t.Errorf("%s: negation/aggregation forbidden in recursive WITH", p.Name)
		}
	}
	// Distinguishing cells from Table 1.
	if ps[0].Features.CycleDetection != "yes" {
		t.Error("Oracle detects cycles")
	}
	if ps[1].Features.MultipleRecursiveQueries != "yes" {
		t.Error("DB2 allows multiple recursive queries")
	}
	if ps[2].Features.Distinct != "yes" {
		t.Error("PostgreSQL allows distinct")
	}
}

func TestCreateLoadAndMaterialize(t *testing.T) {
	for _, prof := range allProfiles() {
		e := New(prof)
		r := edgeRel([][2]int64{{0, 1}, {1, 2}})
		tab, err := e.LoadBase("E", r)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if !tab.Stats.Analyzed || tab.Rows() != 2 {
			t.Errorf("%s: base table not analyzed/loaded: %+v", prof.Name, tab.Stats)
		}
		got, err := e.Rel("E")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(r) {
			t.Errorf("%s: materialized base differs", prof.Name)
		}
		if _, err := e.Rel("missing"); err == nil {
			t.Error("missing table should error")
		}
	}
}

func TestBaseTableLoggedTempNot(t *testing.T) {
	e := New(DB2Like())
	r := edgeRel([][2]int64{{0, 1}, {1, 2}, {2, 0}})
	if _, err := e.LoadBase("E", r); err != nil {
		t.Fatal(err)
	}
	// A loaded base table logs its create, one record per insert, and the
	// commit marker delimiting the load.
	if e.WAL().Records != 5 {
		t.Errorf("base load should log create+3 inserts+commit, got %d records", e.WAL().Records)
	}
	if e.WAL().Commits != 1 {
		t.Errorf("base load should commit once, got %d", e.WAL().Commits)
	}
	tmp, err := e.CreateTemp("V", nodeRel(2, func(int) float64 { return 0 }).Sch)
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.InsertRelation(nodeRel(2, func(int) float64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if e.WAL().Records != 5 {
		t.Errorf("temp inserts must bypass the log, got %d records", e.WAL().Records)
	}
	e.Commit()
	if e.WAL().Commits != 1 {
		t.Error("temp-only activity must not arm a commit marker")
	}
}

func TestOracleTempInMemoryOthersPaged(t *testing.T) {
	or := New(OracleLike())
	tab, _ := or.CreateTemp("t", schema.Cols(value.KindInt, "x"))
	tab.Insert(relation.Tuple{value.Int(1)})
	if _, ok := tab.Store.(*storage.MemStore); !ok {
		t.Errorf("oracle temp should be memory-backed, got %T", tab.Store)
	}
	if tab.Store.BytesUsed() == 0 {
		t.Error("memory-backed temp must still report its footprint to the governor")
	}
	pg := New(PostgresLike(false))
	tab2, _ := pg.CreateTemp("t", schema.Cols(value.KindInt, "x"))
	tab2.Insert(relation.Tuple{value.Int(1)})
	if _, ok := tab2.Store.(*storage.PagedStore); !ok {
		t.Errorf("postgres temp should be paged, got %T", tab2.Store)
	}
	if tab2.Store.BytesUsed() == 0 {
		t.Error("postgres temp should report resident pages")
	}
}

func TestJoinSpecSelection(t *testing.T) {
	type tc struct {
		prof     Profile
		wantBase ra.JoinAlgo
		wantTemp ra.JoinAlgo
	}
	cases := []tc{
		{OracleLike(), ra.HashJoin, ra.HashJoin},
		{DB2Like(), ra.HashJoin, ra.HashJoin},
		{PostgresLike(false), ra.HashJoin, ra.SortMergeJoin},
		{PostgresLike(true), ra.HashJoin, ra.IndexMergeJoin},
	}
	for _, c := range cases {
		e := New(c.prof)
		base1, _ := e.LoadBase("A", edgeRel([][2]int64{{0, 1}}))
		base2, _ := e.LoadBase("B", edgeRel([][2]int64{{1, 2}}))
		bv1, err := base1.NewView()
		if err != nil {
			t.Fatal(err)
		}
		bv2, err := base2.NewView()
		if err != nil {
			t.Fatal(err)
		}
		spec, err := e.joinSpec(bv1, bv2, []int{1}, []int{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Algo != c.wantBase {
			t.Errorf("%s base join = %s, want %s", c.prof.Name, spec.Algo, c.wantBase)
		}
		tmp, _ := e.CreateTemp("V", nodeRel(1, func(int) float64 { return 0 }).Sch)
		tmp.InsertRelation(nodeRel(1, func(int) float64 { return 0 }))
		tv, err := tmp.NewView()
		if err != nil {
			t.Fatal(err)
		}
		spec, err = e.joinSpec(bv1, tv, []int{1}, []int{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Algo != c.wantTemp {
			t.Errorf("%s temp join = %s, want %s", c.prof.Name, spec.Algo, c.wantTemp)
		}
		if c.prof.UseTempIndexes && (spec.LeftIdx == nil || spec.RightIdx == nil) {
			t.Errorf("%s should supply indexes", c.prof.Name)
		}
	}
}

func TestEnsureTemp(t *testing.T) {
	e := New(OracleLike())
	sch := schema.Cols(value.KindInt, "x")
	t1, err := e.EnsureTemp("t", sch)
	if err != nil {
		t.Fatal(err)
	}
	t1.Insert(relation.Tuple{value.Int(1)})
	t2, err := e.EnsureTemp("t", sch)
	if err != nil || t2 != t1 {
		t.Error("EnsureTemp should return the existing compatible table")
	}
	t3, err := e.EnsureTemp("t", schema.Cols(value.KindInt, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 || t3.Rows() != 0 {
		t.Error("EnsureTemp should rebuild on schema change")
	}
}

func TestStoreAndAppendInto(t *testing.T) {
	e := New(DB2Like())
	sch := schema.Cols(value.KindInt, "x")
	if _, err := e.CreateTemp("t", sch); err != nil {
		t.Fatal(err)
	}
	one := relation.New(sch)
	one.AppendVals(value.Int(1))
	if err := e.StoreInto("t", one); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendInto("t", one); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Rel("t")
	if got.Len() != 2 {
		t.Errorf("append after store = %d rows", got.Len())
	}
	if err := e.StoreInto("t", one); err != nil {
		t.Fatal(err)
	}
	got, _ = e.Rel("t")
	if got.Len() != 1 {
		t.Errorf("store should truncate first: %d rows", got.Len())
	}
	if err := e.StoreInto("missing", one); err == nil {
		t.Error("missing table should error")
	}
}

// pageRankViaEngine runs the MV-join + union-by-update loop of Eq. (9) on an
// engine, returning the final ranks.
func pageRankViaEngine(t *testing.T, e *Engine, edges [][2]int64, n, iters int, ubu ra.UBUImpl) map[int64]float64 {
	t.Helper()
	if _, err := e.LoadBase("E", edgeRel(edges)); err != nil {
		t.Fatal(err)
	}
	vsch := schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}}
	if _, err := e.CreateTemp("V", vsch); err != nil {
		t.Fatal(err)
	}
	// Out-degree-normalized edge weights baked into E', as the paper's PR
	// setup does via ew.
	eRel, _ := e.Rel("E")
	deg := map[int64]int{}
	for _, tu := range eRel.Tuples {
		deg[tu[0].AsInt()]++
	}
	norm := relation.New(eRel.Sch)
	for _, tu := range eRel.Tuples {
		norm.AppendVals(tu[0], tu[1], value.Float(1.0/float64(deg[tu[0].AsInt()])))
	}
	if _, err := e.LoadBase("En", norm); err != nil {
		t.Fatal(err)
	}
	init := nodeRel(n, func(int) float64 { return 1.0 / float64(n) })
	if err := e.StoreInto("V", init); err != nil {
		t.Fatal(err)
	}
	eT, _ := e.Cat.Get("En")
	vT, _ := e.Cat.Get("V")
	const c = 0.85
	for it := 0; it < iters; it++ {
		mv, err := e.MVJoin(eT, vT, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
		if err != nil {
			t.Fatal(err)
		}
		// f1: c*sum + (1-c)/n, then nodes with no in-edges get (1-c)/n via UBU
		// against a base of (1-c)/n.
		next := relation.New(init.Sch)
		for i := 0; i < n; i++ {
			next.AppendVals(value.Int(int64(i)), value.Float((1-c)/float64(n)))
		}
		scaled, err := ra.Project(mv, []ra.OutCol{
			{Col: init.Sch[0], Expr: ra.ColExpr(0)},
			{Col: init.Sch[1], Expr: func(tu relation.Tuple) (value.Value, error) {
				return value.Float(c*tu[1].AsFloat() + (1-c)/float64(n)), nil
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := ra.UnionByUpdate(next, scaled, []int{0}, ra.UBUFullOuter, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.UnionByUpdate("V", merged, []int{0}, ubu); err != nil {
			t.Fatal(err)
		}
		vT, _ = e.Cat.Get("V")
	}
	out, _ := e.Rel("V")
	res := map[int64]float64{}
	for _, tu := range out.Tuples {
		res[tu[0].AsInt()] = tu[1].AsFloat()
	}
	return res
}

func TestPageRankSameAcrossProfilesAndUBUImpls(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 1}, {3, 2}, {1, 3}}
	var ref map[int64]float64
	for _, prof := range allProfiles() {
		for _, ubu := range []ra.UBUImpl{ra.UBUMerge, ra.UBUFullOuter, ra.UBUUpdateFrom, ra.UBUReplace} {
			got := pageRankViaEngine(t, New(prof), edges, 4, 10, ubu)
			if ref == nil {
				ref = got
				continue
			}
			for id, w := range ref {
				if math.Abs(got[id]-w) > 1e-12 {
					t.Fatalf("%s/%s: PR[%d]=%g, want %g", prof.Name, ubu, id, got[id], w)
				}
			}
		}
	}
	// Sanity: ranks sum to ~1.
	var sum float64
	for _, w := range ref {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PR sum = %g", sum)
	}
}

func TestUnionByUpdateReplaceKeepsTableKind(t *testing.T) {
	e := New(PostgresLike(false))
	sch := schema.Cols(value.KindInt, "x")
	if _, err := e.CreateTemp("t", sch); err != nil {
		t.Fatal(err)
	}
	repl := relation.New(sch)
	repl.AppendVals(value.Int(5))
	if _, err := e.UnionByUpdate("t", repl, nil, ra.UBUReplace); err != nil {
		t.Fatal(err)
	}
	tab, err := e.Cat.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Temp || tab.Rows() != 1 {
		t.Errorf("replaced table wrong: temp=%v rows=%d", tab.Temp, tab.Rows())
	}
	if tab.Store.BytesUsed() == 0 {
		t.Error("postgres replacement temp should still be paged")
	}
}

func TestAntiJoinViaEngine(t *testing.T) {
	e := New(OracleLike())
	v := relation.New(schema.Cols(value.KindInt, "ID"))
	for i := int64(0); i < 5; i++ {
		v.AppendVals(value.Int(i))
	}
	eRel := edgeRel([][2]int64{{0, 1}, {1, 2}})
	vt, _ := e.LoadBase("V", v)
	et, _ := e.LoadBase("E", eRel)
	// Nodes with no incoming edge: V ▷ E on V.ID = E.T → {0, 3, 4}.
	for _, impl := range []ra.AntiJoinImpl{ra.AntiNotExists, ra.AntiLeftOuter, ra.AntiNotIn} {
		got, err := e.AntiJoin(vt, et, []int{0}, []int{1}, impl)
		if err != nil {
			t.Fatal(err)
		}
		ids := map[int64]bool{}
		for _, tu := range got.Tuples {
			ids[tu[0].AsInt()] = true
		}
		if len(ids) != 3 || !ids[0] || !ids[3] || !ids[4] {
			t.Errorf("%s: roots = %v", impl, ids)
		}
	}
	if e.Cnt.AntiJoins != 3 {
		t.Errorf("anti-join counter = %d", e.Cnt.AntiJoins)
	}
}

func TestCountersAdvance(t *testing.T) {
	e := New(OracleLike())
	a, _ := e.LoadBase("A", edgeRel([][2]int64{{0, 1}}))
	b, _ := e.LoadBase("B", edgeRel([][2]int64{{1, 2}}))
	if _, err := e.Join(a, b, []int{1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MMJoin(a, b, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, semiring.MinPlus()); err != nil {
		t.Fatal(err)
	}
	if e.Cnt.Joins != 2 || e.Cnt.GroupBys != 1 || e.Cnt.Inserts != 2 {
		t.Errorf("counters: %+v", e.Cnt)
	}
	if e.String() != "engine(oracle)" {
		t.Errorf("String = %q", e.String())
	}
}
