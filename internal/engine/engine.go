package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/storage"
	"repro/internal/value"
)

// Counters accumulate execution statistics for experiments and tests. All
// increments go through atomic adds so the morsel-parallel probe paths are
// race-clean; read the fields directly only after the operations being
// measured have returned.
type Counters struct {
	Joins     int64
	GroupBys  int64
	AntiJoins int64
	UBUs      int64
	Inserts   int64
	// IndexBuilds counts hash- or sorted-index construction; IndexCacheHits
	// counts joins served from the catalog's version-keyed index caches.
	// In an iterative algorithm over an immutable base table, builds are
	// O(1) per table and every further iteration is a hit.
	IndexBuilds    int64
	IndexCacheHits int64
	// CSRBuilds and CSRCacheHits account the CSR adjacency access path the
	// same way: a build per (table version, column triple), a hit for every
	// join served from the cached CSR. Joins taken via CSR charge these
	// counters instead of IndexBuilds/IndexCacheHits.
	CSRBuilds    int64
	CSRCacheHits int64
	// TuplesMaterialized counts tuples allocated for join intermediates
	// (the EquiJoin output feeding GroupBy, plain engine joins). The fused
	// MV-/MM-join kernels contribute zero here — the point of fusion.
	TuplesMaterialized int64
	// VectorizedBatches counts batches executed by the vectorized operator
	// kernels (selection-vector filters, batch projections, integer-keyed
	// group-bys); RowFallbacks counts the batches among them that carried at
	// least one row-fallback subtree (an expression shape without a
	// dedicated kernel, run row-at-a-time inside the batch loop). With
	// DisableVectorized both stay zero.
	VectorizedBatches int64
	RowFallbacks      int64
	// WCOJBuilds counts per-execution hash-trie builds inside the
	// worst-case-optimal multiway join (atoms served from a cached CSR
	// contribute to CSRBuilds/CSRCacheHits instead); WCOJProbes counts its
	// candidate-intersection probes. Both stay zero with DisableWCOJ, which
	// is how the differential tests prove which path ran.
	WCOJBuilds int64
	WCOJProbes int64
	// Commits counts WAL commit markers requested by this engine. Session
	// engines carry their own Counters, so the shared log's write traffic
	// is attributed per session here even though the WAL itself is shared.
	Commits int64
}

func (c *Counters) add(field *int64, n int64) { atomic.AddInt64(field, n) }

// CountersSnapshot is a point-in-time copy of the execution counters, read
// with atomic loads so it is safe to take while statements run. This is the
// public face of Counters: graphsql.DB.Stats returns it, so callers never
// touch the live atomics.
type CountersSnapshot struct {
	Joins              int64 `json:"joins"`
	GroupBys           int64 `json:"group_bys"`
	AntiJoins          int64 `json:"anti_joins"`
	UBUs               int64 `json:"ubus"`
	Inserts            int64 `json:"inserts"`
	IndexBuilds        int64 `json:"index_builds"`
	IndexCacheHits     int64 `json:"index_cache_hits"`
	CSRBuilds          int64 `json:"csr_builds"`
	CSRCacheHits       int64 `json:"csr_cache_hits"`
	TuplesMaterialized int64 `json:"tuples_materialized"`
	VectorizedBatches  int64 `json:"vectorized_batches"`
	RowFallbacks       int64 `json:"row_fallbacks"`
	WCOJBuilds         int64 `json:"wcoj_builds"`
	WCOJProbes         int64 `json:"wcoj_probes"`
	Commits            int64 `json:"commits"`
}

// Snapshot reads every counter atomically.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Joins:              atomic.LoadInt64(&c.Joins),
		GroupBys:           atomic.LoadInt64(&c.GroupBys),
		AntiJoins:          atomic.LoadInt64(&c.AntiJoins),
		UBUs:               atomic.LoadInt64(&c.UBUs),
		Inserts:            atomic.LoadInt64(&c.Inserts),
		IndexBuilds:        atomic.LoadInt64(&c.IndexBuilds),
		IndexCacheHits:     atomic.LoadInt64(&c.IndexCacheHits),
		CSRBuilds:          atomic.LoadInt64(&c.CSRBuilds),
		CSRCacheHits:       atomic.LoadInt64(&c.CSRCacheHits),
		TuplesMaterialized: atomic.LoadInt64(&c.TuplesMaterialized),
		VectorizedBatches:  atomic.LoadInt64(&c.VectorizedBatches),
		RowFallbacks:       atomic.LoadInt64(&c.RowFallbacks),
		WCOJBuilds:         atomic.LoadInt64(&c.WCOJBuilds),
		WCOJProbes:         atomic.LoadInt64(&c.WCOJProbes),
		Commits:            atomic.LoadInt64(&c.Commits),
	}
}

// Engine is one RDBMS instance: a profile, a catalog over its own buffer
// pool and WAL, and execution helpers that apply the profile's plan choices.
type Engine struct {
	Prof Profile
	Cat  *catalog.Catalog
	Cnt  Counters

	// Parallelism is the worker count for the morsel-parallel probe paths
	// (fused MV-/MM-join, hash-join probe partitioning). Values <= 1 run
	// serial, keeping the paper-shape experiments byte-for-byte unchanged;
	// cmd/bench exposes it as -workers.
	Parallelism int

	// DisableFusion forces the materialize-then-aggregate MV-/MM-join plan
	// and fresh per-join index builds — the pre-fusion executor — for A/B
	// measurements (cmd/bench -nofusion).
	DisableFusion bool

	// DisableCSR turns off the CSR adjacency access path: every join that
	// would extend over a cached CSR probes the hash index instead — the
	// A/B baseline for cmd/bench -nocsr. Results are byte-identical either
	// way; only the access path (and the CSR vs index counters) change.
	DisableCSR bool

	// DisableDelta turns off delta-driven semi-naive evaluation in the
	// WITH+ compiler: every recursive branch re-reads the full recursive
	// relation each iteration (the naive loop) — the A/B baseline for
	// cmd/bench -nodelta. It does not affect result correctness, only the
	// amount of work per iteration.
	DisableDelta bool

	// DisableVectorized turns off the vectorized operator kernels in the
	// SQL executor (selection-vector filters, batch projections, the
	// integer-keyed vector group-by): every filter, projection, and
	// aggregation runs the row-at-a-time closures — the A/B baseline for
	// cmd/bench -novector. Results are byte-identical either way; only the
	// execution shape (and the vectorized/row-fallback counters) change.
	DisableVectorized bool

	// DisableWCOJ turns off the worst-case-optimal multiway join: cyclic
	// equi-join cores that would lower to the generic-join operator run the
	// left-deep binary join chain instead — the A/B baseline for cmd/bench
	// -nowcoj and the differential suite. Results are bag-identical either
	// way; only the intermediate sizes (and the WCOJ counters) change.
	DisableWCOJ bool

	// Limits are the per-statement resource budgets; BeginStatement arms a
	// governor with them. The zero value means ungoverned.
	Limits govern.Limits

	gov    *govern.Governor
	sink   obs.Sink
	disk   *storage.Disk
	pool   *storage.BufferPool
	wal    *storage.WAL
	frames int

	// session labels a per-session engine created by NewSession ("" on the
	// root engine). Session engines share the root's catalog (through a
	// per-session overlay), buffer pool, WAL, and disk, but carry their own
	// counters, governor, observer, and limits — per-session accounting.
	session string
	// snap is the statement snapshot of a session engine's statement in
	// flight: reads of shared (root-owned) tables pin a view per table at
	// first touch. nil on root engines and between statements, making the
	// single-session read path identical to the pre-session engine.
	snap *catalog.Snapshot
	// root points at the engine this session was created from (nil on the
	// root itself).
	root *Engine
}

// DefaultBufferFrames sizes the buffer pool; large enough that the working
// set of the scaled datasets fits, as the paper configures each system with
// most of RAM.
const DefaultBufferFrames = 4096

// New returns an engine with the given profile.
func New(prof Profile) *Engine {
	return NewWithFrames(prof, DefaultBufferFrames)
}

// NewWithFrames returns an engine whose buffer pool holds the given number
// of frames — the memory_target / shared_buffers knob the paper tunes per
// system. Small pools thrash on paged temp tables (the I/O-bound regime of
// Section 7.2).
func NewWithFrames(prof Profile, frames int) *Engine {
	disk := storage.NewDisk()
	pool := storage.NewBufferPool(disk, frames)
	wal := storage.NewWAL()
	return &Engine{
		Prof:   prof,
		Cat:    catalog.New(pool, wal),
		disk:   disk,
		pool:   pool,
		wal:    wal,
		frames: frames,
	}
}

// WAL exposes the engine's write-ahead log (for experiments that measure
// logging volume).
func (e *Engine) WAL() *storage.WAL { return e.wal }

// Disk exposes the simulated disk (for I/O counters).
func (e *Engine) Disk() *storage.Disk { return e.disk }

// BeginStatement arms a per-statement resource governor from ctx and the
// engine's Limits. Every operator the statement runs checkpoints against it:
// cancellation, deadline, and budget violations surface as typed errors at
// the engine boundary. The returned func ends the statement — releasing the
// governor and restoring the previous one (statements may nest through the
// PSM loop driver) — and must be called exactly once, normally by defer.
func (e *Engine) BeginStatement(ctx context.Context) func() {
	prev := e.gov
	g := govern.New(ctx, e.Limits)
	e.gov = g
	prevSnap := e.snap
	if e.session != "" && prevSnap == nil {
		// Session engines read shared tables through a statement snapshot;
		// nested statements (the PSM loop driver) share the outer pin so one
		// top-level statement sees one version per table.
		e.snap = catalog.NewSnapshot()
	}
	obs.Global.Counter("engine.statements").Inc()
	if e.session != "" {
		// Per-session label. Cardinality is bounded by the number of
		// sessions actually opened, so keep labels to long-lived sessions.
		obs.Global.Counter("engine.statements{session=" + e.session + "}").Inc()
	}
	start := time.Now()
	return func() {
		g.Close()
		e.gov = prev
		e.snap = prevSnap
		obs.Global.Histogram("engine.statement_us").Observe(time.Since(start).Microseconds())
	}
}

// BeginObserved is BeginStatement plus a statement-scoped span sink: sink
// receives every operator span the statement emits, and the previous sink
// (a persistent one installed by SetObserver, or none) is restored when the
// statement ends. A nil sink inherits the current one, so BeginObserved(ctx,
// nil) is exactly BeginStatement. Statements on one engine are sequential
// (the graphsql layer serializes them), which is what makes the swap sound.
func (e *Engine) BeginObserved(ctx context.Context, sink obs.Sink) func() {
	prevSink := e.sink
	if sink != nil {
		e.sink = sink
	}
	end := e.BeginStatement(ctx)
	return func() {
		end()
		e.sink = prevSink
	}
}

// SetObserver installs a persistent span sink that stays attached across
// statements (the benchmark harness runs algorithms without statement
// boundaries). nil detaches. Per-statement sinks from BeginObserved shadow
// it for their statement's duration.
func (e *Engine) SetObserver(sink obs.Sink) { e.sink = sink }

// Observer returns the currently attached sink (nil when unobserved).
func (e *Engine) Observer() obs.Sink { return e.sink }

// Observing reports whether a sink is attached — the guard every hook
// checks before constructing a span or reading the clock.
func (e *Engine) Observing() bool { return e.sink != nil }

// Emit delivers a completed span to the attached sink, if any. Callers
// outside the engine (the SQL executor, the PSM loop driver) build their
// spans only after checking Observing, preserving the zero-cost contract.
func (e *Engine) Emit(sp obs.Span) {
	if e.sink != nil {
		e.sink.Span(sp)
	}
}

// Gov returns the governor of the statement in flight, or nil when
// ungoverned. Nil is safe to use: every govern method is a no-op on it.
func (e *Engine) Gov() *govern.Governor { return e.gov }

// CheckStatement is the coarse checkpoint for statement and iteration
// boundaries: context/budget state plus the resident temp-table footprint
// against the memory budget (the fed-by-BytesUsed accounting the governor
// can't see from inside an operator).
func (e *Engine) CheckStatement() error {
	if err := e.gov.Check(); err != nil {
		return err
	}
	resident := e.Cat.TempBytes()
	obs.Global.Gauge("engine.temp_bytes").Set(resident)
	return e.gov.CheckMem(resident)
}

// Commit appends a commit marker delimiting the base-table mutations logged
// so far — the boundary Recover replays to. Elided when nothing was logged
// since the last marker, so temp-only statements stay free. The call is
// charged to this engine's Commits counter, which on a session engine
// attributes shared-WAL traffic per session.
func (e *Engine) Commit() {
	e.Cnt.add(&e.Cnt.Commits, 1)
	e.wal.AppendCommit()
}

// CreateBase creates a logged, paged base table.
func (e *Engine) CreateBase(name string, sch schema.Schema) (*catalog.Table, error) {
	return e.Cat.Create(name, sch, catalog.StorePagedLogged, false)
}

// CreateTemp creates a temporary table with the profile's temp storage
// (in-memory for OracleLike, paged-unlogged otherwise).
func (e *Engine) CreateTemp(name string, sch schema.Schema) (*catalog.Table, error) {
	return e.Cat.Create(name, sch, e.Prof.TempStore, true)
}

// EnsureTemp returns the named temp table, creating (or truncating and
// re-shaping) it as needed — the CREATE TEMPORARY TABLE IF NOT EXISTS used
// by the PSM procedures.
func (e *Engine) EnsureTemp(name string, sch schema.Schema) (*catalog.Table, error) {
	if e.Cat.Has(name) {
		t, err := e.Cat.Get(name)
		if err != nil {
			return nil, err
		}
		if !t.Sch.UnionCompatible(sch) {
			if err := e.Cat.Drop(name); err != nil {
				return nil, err
			}
			return e.CreateTemp(name, sch)
		}
		return t, nil
	}
	return e.CreateTemp(name, sch)
}

// LoadBase creates a base table from a relation and analyzes it. The load
// commits as one unit: a crash mid-load leaves no trace of the table after
// Recover.
func (e *Engine) LoadBase(name string, r *relation.Relation) (t *catalog.Table, err error) {
	defer govern.RecoverTo(&err)
	t, err = e.CreateBase(name, r.Sch)
	if err != nil {
		return nil, err
	}
	if err := t.InsertRelation(r); err != nil {
		return nil, err
	}
	e.Cnt.add(&e.Cnt.Inserts, int64(r.Len()))
	t.Analyze()
	e.Commit()
	return t, nil
}

// view returns the engine's read view of t: on a session engine with a
// statement in flight, reads of shared (root-owned) tables are pinned in
// the statement snapshot; the session's own temps — and everything on a
// root engine — serve the live table, preserving read-your-own-writes for
// recursion working tables and the exact single-session fast path.
func (e *Engine) view(t *catalog.Table) (*catalog.View, error) {
	if e.snap != nil && !e.Cat.Owns(t) {
		return e.snap.View(t)
	}
	return t.NewView()
}

// viewOf resolves a name to its read view.
func (e *Engine) viewOf(name string) (*catalog.View, error) {
	t, err := e.Cat.Get(name)
	if err != nil {
		return nil, err
	}
	return e.view(t)
}

// snapForget drops the statement snapshot's pinned view of name (if any)
// after this session wrote the table, so later reads in the same statement
// see the session's own write.
func (e *Engine) snapForget(name string) {
	if e.snap != nil {
		e.snap.Forget(name)
	}
}

// Rel materializes the named table (snapshot-pinned on session engines).
func (e *Engine) Rel(name string) (*relation.Relation, error) {
	v, err := e.viewOf(name)
	if err != nil {
		return nil, err
	}
	return v.Rel, nil
}

// RelAnalyzed materializes the named table and reports whether its
// optimizer statistics are current, both from the same read view — the
// resolution step of the SQL executor's FROM chain.
func (e *Engine) RelAnalyzed(name string) (*relation.Relation, bool, error) {
	v, err := e.viewOf(name)
	if err != nil {
		return nil, false, err
	}
	return v.Rel, v.Analyzed, nil
}

// EnsureBase returns the named base table, loading it from gen exactly once
// even when many sessions race on the first use — the check-then-load made
// atomic under the catalog's named lock. gen is only invoked by the loading
// session.
func (e *Engine) EnsureBase(name string, gen func() *relation.Relation) (*catalog.Table, error) {
	unlock := e.Cat.LockTable(name)
	defer unlock()
	if e.Cat.Has(name) {
		return e.Cat.Get(name)
	}
	return e.LoadBase(name, gen())
}

// StoreInto truncates the table and inserts r (the PSM "truncate + insert
// ... select" step between iterations). Base-table targets commit on
// success; temp targets log nothing so the commit is elided.
func (e *Engine) StoreInto(name string, r *relation.Relation) (err error) {
	defer govern.RecoverTo(&err)
	t, err := e.Cat.Get(name)
	if err != nil {
		return err
	}
	e.snapForget(name)
	if err := t.Truncate(); err != nil {
		return err
	}
	e.Cnt.add(&e.Cnt.Inserts, int64(r.Len()))
	if err := t.InsertRelation(r); err != nil {
		return err
	}
	e.Commit()
	return nil
}

// AppendInto inserts r into the table without truncating (UNION ALL
// accumulation).
func (e *Engine) AppendInto(name string, r *relation.Relation) (err error) {
	defer govern.RecoverTo(&err)
	t, err := e.Cat.Get(name)
	if err != nil {
		return err
	}
	e.snapForget(name)
	e.Cnt.add(&e.Cnt.Inserts, int64(r.Len()))
	if err := t.InsertRelation(r); err != nil {
		return err
	}
	e.Commit()
	return nil
}

// ensureHashIndex serves a view's build-side hash index (the table's shared
// version-keyed cache while the pinned version is current, a view-private
// build afterwards), charging the build or the cache hit to the counters
// and reporting which happened.
func (e *Engine) ensureHashIndex(v *catalog.View, cols []int) (*relation.HashIndex, bool, error) {
	idx, hit, err := v.EnsureHashIndex(cols)
	if err != nil {
		return nil, false, err
	}
	if hit {
		e.Cnt.add(&e.Cnt.IndexCacheHits, 1)
	} else {
		e.Cnt.add(&e.Cnt.IndexBuilds, 1)
	}
	return idx, hit, nil
}

// ensureCSR serves a view's CSR adjacency index (shared cache at the pinned
// version, view-private build afterwards — same serving rules as
// ensureHashIndex), charging the build or the hit to the CSR counters and
// the process-wide metrics registry.
func (e *Engine) ensureCSR(v *catalog.View, srcCol, dstCol, wCol int) (*relation.CSR, bool, error) {
	csr, hit, err := v.EnsureCSR(srcCol, dstCol, wCol)
	if err != nil {
		return nil, false, err
	}
	if hit {
		e.Cnt.add(&e.Cnt.CSRCacheHits, 1)
		obs.Global.Counter("engine.csr_cache_hits").Inc()
	} else {
		e.Cnt.add(&e.Cnt.CSRBuilds, 1)
		obs.Global.Counter("engine.csr_builds").Inc()
	}
	return csr, hit, nil
}

// csrUsable is the kernel chooser's cost rule for the CSR access path: the
// build side must be an edge-shaped table whose CSR is affordable — a base
// table or an analyzed one (stable across the recursion, so one build
// amortizes over every iteration, exactly like the cached hash index) or
// already carrying a current-version CSR (peeked, never built here — a sunk
// cost is free). An unanalyzed temp rewritten every iteration (e.g.
// Floyd-Warshall's working matrix) fails every arm and keeps the hash path:
// a CSR built per iteration would cost more than the probes it saves.
func (e *Engine) csrUsable(v *catalog.View, srcCol, dstCol, wCol int) bool {
	if e.DisableFusion || e.DisableCSR {
		return false
	}
	return !v.Temp || v.Analyzed || v.CSR(srcCol, dstCol, wCol) != nil
}

// BuildSideCSR serves the named table's cached CSR on the single join
// column for executors that join over materialized relations (the SQL
// executor's FROM chain), under the same cost rule as the engine's own
// joins. Returns nil — callers fall back to BuildSideHash — when the key is
// not a single column, the CSR is not affordable, or the access path is
// disabled.
func (e *Engine) BuildSideCSR(name string, cols []int) *relation.CSR {
	if len(cols) != 1 {
		return nil
	}
	v, err := e.viewOf(name)
	if err != nil {
		return nil
	}
	if !e.csrUsable(v, cols[0], -1, -1) {
		return nil
	}
	csr, _, err := e.ensureCSR(v, cols[0], -1, -1)
	if err != nil {
		return nil
	}
	return csr
}

// BuildSideHash serves the named table's cached build-side hash index on
// cols for executors that join over materialized relations rather than
// catalog tables (the SQL executor's FROM chain). The build or hit is
// charged to the counters like any other index access. Returns nil when the
// table is unknown or fusion (and with it the index cache) is disabled —
// callers fall back to a fresh per-join build.
func (e *Engine) BuildSideHash(name string, cols []int) *relation.HashIndex {
	if e.DisableFusion {
		return nil
	}
	v, err := e.viewOf(name)
	if err != nil {
		return nil
	}
	idx, _, err := e.ensureHashIndex(v, cols)
	if err != nil {
		return nil
	}
	return idx
}

// joinSpec resolves the physical algorithm and the pre-built indexes for an
// equi-join between two tables: sorted indexes for
// PostgreSQL-with-temp-indexes, and the cached build-side hash index for
// the hash-join profiles (built once per table version, hit thereafter).
// sp, when non-nil, is attached to the spec so the join loops record their
// phase timings and index provenance into it.
func (e *Engine) joinSpec(a, b *catalog.View, aCols, bCols []int, sp *obs.Span) (ra.EquiJoinSpec, error) {
	spec := ra.EquiJoinSpec{LeftCols: aCols, RightCols: bCols, Gov: e.gov, Span: sp}
	if a.Analyzed && b.Analyzed {
		spec.Algo = e.Prof.BaseJoin
	} else {
		spec.Algo = e.Prof.TempJoin
	}
	if spec.Algo == ra.SortMergeJoin && e.Prof.UseTempIndexes {
		spec.Algo = ra.IndexMergeJoin
		li, err := e.ensureSortedIndex(a, aCols)
		if err != nil {
			return spec, err
		}
		ri, err := e.ensureSortedIndex(b, bCols)
		if err != nil {
			return spec, err
		}
		spec.LeftIdx, spec.RightIdx = li, ri
	}
	if spec.Algo == ra.HashJoin && !e.DisableFusion {
		if len(bCols) == 1 && e.csrUsable(b, bCols[0], -1, -1) {
			// CSR access path: no hash build at all; csrJoin stamps the
			// span's Algo when it runs.
			csr, hit, err := e.ensureCSR(b, bCols[0], -1, -1)
			if err != nil {
				return spec, err
			}
			spec.RightCSR = csr
			if sp != nil {
				sp.IndexBuilt, sp.IndexCacheHit = !hit, hit
			}
		} else {
			ri, hit, err := e.ensureHashIndex(b, bCols)
			if err != nil {
				return spec, err
			}
			spec.RightHash = ri
			if sp != nil {
				sp.IndexBuilt, sp.IndexCacheHit = !hit, hit
			}
		}
	}
	if sp != nil {
		sp.Algo = spec.Algo.String()
	}
	return spec, nil
}

// ensureSortedIndex mirrors ensureHashIndex for the sorted (B+-tree
// stand-in) index cache.
func (e *Engine) ensureSortedIndex(v *catalog.View, cols []int) (*relation.SortedIndex, error) {
	idx, hit, err := v.EnsureSortedIndex(cols)
	if err != nil {
		return nil, err
	}
	if hit {
		e.Cnt.add(&e.Cnt.IndexCacheHits, 1)
	} else {
		e.Cnt.add(&e.Cnt.IndexBuilds, 1)
	}
	return idx, nil
}

// Join computes the equi-join of two tables under the profile's plan. With
// Parallelism > 1 and a hash plan, the probe side is partitioned across
// workers over the shared build-side index.
func (e *Engine) Join(a, b *catalog.Table, aCols, bCols []int) (out *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	av, err := e.view(a)
	if err != nil {
		return nil, err
	}
	bv, err := e.view(b)
	if err != nil {
		return nil, err
	}
	ar, br := av.Rel, bv.Rel
	var sp *obs.Span
	if e.sink != nil {
		sp = &obs.Span{Op: "join", Note: av.Name + " ⋈ " + bv.Name, Start: time.Now()}
	}
	spec, err := e.joinSpec(av, bv, aCols, bCols, sp)
	if err != nil {
		return nil, err
	}
	e.Cnt.add(&e.Cnt.Joins, 1)
	if e.Parallelism > 1 && spec.Algo == ra.HashJoin {
		out = ra.EquiJoinParallel(ar, br, spec, e.Parallelism)
	} else {
		out = ra.EquiJoin(ar, br, spec)
	}
	if err := e.ChargeMaterialized(out); err != nil {
		return nil, err
	}
	if sp != nil {
		sp.LeftRows, sp.RightRows, sp.OutRows = int64(ar.Len()), int64(br.Len()), int64(out.Len())
		sp.BytesMaterialized = int64(out.Len()) * int64(out.Sch.Arity()) * 16
		sp.Dur = time.Since(sp.Start)
		e.Emit(*sp)
	}
	return out, nil
}

// ChargeMaterialized counts a join intermediate and charges its estimated
// footprint to the statement's memory budget (16 bytes per value slot — the
// Value struct's order of magnitude — so MaxBytes caps runaway
// intermediates, not exact allocations). The SQL executor calls it after
// every join it runs outside the engine's own operator wrappers.
func (e *Engine) ChargeMaterialized(r *relation.Relation) error {
	e.Cnt.add(&e.Cnt.TuplesMaterialized, int64(r.Len()))
	return e.gov.ChargeBytes(int64(r.Len()) * int64(r.Sch.Arity()) * 16)
}

// MVJoin computes the aggregate-join of a matrix table and a vector table
// (Eq. (4)) under the profile's plan. On the hash-join profiles the fused
// kernel runs: a cached hash index on the matrix side's join column (built
// once per table version — for the immutable edge table, once per
// algorithm) is probed by the iteration's vector, and products fold
// straight into the group table without materializing the join.
func (e *Engine) MVJoin(a, c *catalog.Table, ac ra.MatCols, cc ra.VecCols, aJoin, aKeep int, sr semiring.Semiring) (out *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	av, err := e.view(a)
	if err != nil {
		return nil, err
	}
	cv, err := e.view(c)
	if err != nil {
		return nil, err
	}
	ar, cr := av.Rel, cv.Rel
	e.Cnt.add(&e.Cnt.Joins, 1)
	e.Cnt.add(&e.Cnt.GroupBys, 1)
	var sp *obs.Span
	if e.sink != nil {
		sp = &obs.Span{Op: "mv-join", Note: av.Name + " ⋈ " + cv.Name, Start: time.Now()}
	}
	if e.fusible(av, cv) {
		var out *relation.Relation
		var hit bool
		var algo string
		if e.csrUsable(av, aJoin, aKeep, ac.W) {
			// CSR access path: one structure carries the adjacency, the
			// group dictionary (Dst), and the weight column.
			var csr *relation.CSR
			csr, hit, err = e.ensureCSR(av, aJoin, aKeep, ac.W)
			if err != nil {
				return nil, err
			}
			out = ra.FusedMVJoinCSR(ar, cr, csr, cc, sr, e.Parallelism, e.gov, sp)
			algo = "fused-csr"
		} else {
			var idx *relation.HashIndex
			idx, hit, err = e.ensureHashIndex(av, []int{aJoin})
			if err != nil {
				return nil, err
			}
			// The group-column dictionary rides the same per-version cache as
			// the index; it is an executor memo, not a user-visible index, so it
			// is not charged to the IndexBuilds counter.
			dict, _, err := av.EnsureColumnDict(aKeep)
			if err != nil {
				return nil, err
			}
			out = ra.FusedMVJoin(ar, cr, idx, dict, ac, cc, aKeep, sr, e.Parallelism, e.gov, sp)
			algo = "fused-hash"
		}
		out.Sch = schema.Schema{
			{Name: "ID", Type: ar.Sch[aKeep].Type},
			{Name: "vw"},
		}
		if sp != nil {
			sp.Algo = algo
			sp.IndexBuilt, sp.IndexCacheHit = !hit, hit
			sp.LeftRows, sp.RightRows, sp.OutRows = int64(ar.Len()), int64(cr.Len()), int64(out.Len())
			sp.Dur = time.Since(sp.Start)
			e.Emit(*sp)
		}
		return out, nil
	}
	spec, err := e.joinSpec(av, cv, []int{aJoin}, []int{cc.ID}, sp)
	if err != nil {
		return nil, err
	}
	out, err = e.mvJoinWithSpec(ar, cr, ac, cc, aJoin, aKeep, sr, spec)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.LeftRows, sp.RightRows, sp.OutRows = int64(ar.Len()), int64(cr.Len()), int64(out.Len())
		sp.Dur = time.Since(sp.Start)
		e.Emit(*sp)
	}
	return out, nil
}

// MMJoin computes the aggregate-join of two matrix tables (Eq. (3)) under
// the profile's plan, fused on the hash-join profiles like MVJoin. The
// build side is the analyzed (base) table when exactly one side is — its
// cached index survives iterations — else the right side, matching the
// hash join's build/probe orientation.
func (e *Engine) MMJoin(a, b *catalog.Table, ac, bc ra.MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring) (out *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	av, err := e.view(a)
	if err != nil {
		return nil, err
	}
	bv, err := e.view(b)
	if err != nil {
		return nil, err
	}
	ar, br := av.Rel, bv.Rel
	e.Cnt.add(&e.Cnt.Joins, 1)
	e.Cnt.add(&e.Cnt.GroupBys, 1)
	var sp *obs.Span
	if e.sink != nil {
		sp = &obs.Span{Op: "mm-join", Note: av.Name + " ⋈ " + bv.Name, Start: time.Now()}
	}
	if e.fusible(av, bv) {
		idxOnLeft := av.Analyzed && !bv.Analyzed
		bldView, bldJoin, bldW := bv, bJoin, bc.W
		if idxOnLeft {
			bldView, bldJoin, bldW = av, aJoin, ac.W
		}
		var out *relation.Relation
		var hit bool
		var algo string
		if e.csrUsable(bldView, bldJoin, -1, bldW) {
			var csr *relation.CSR
			csr, hit, err = e.ensureCSR(bldView, bldJoin, -1, bldW)
			if err != nil {
				return nil, err
			}
			out = ra.FusedMMJoinCSR(ar, br, csr, idxOnLeft, ac, bc, aJoin, aKeep, bJoin, bKeep, sr, e.Parallelism, e.gov, sp)
			algo = "fused-csr"
		} else {
			var idx *relation.HashIndex
			idx, hit, err = e.ensureHashIndex(bldView, []int{bldJoin})
			if err != nil {
				return nil, err
			}
			out = ra.FusedMMJoin(ar, br, idx, idxOnLeft, ac, bc, aJoin, aKeep, bJoin, bKeep, sr, e.Parallelism, e.gov, sp)
			algo = "fused-hash"
		}
		out.Sch = schema.Schema{
			{Name: "F", Type: ar.Sch[aKeep].Type},
			{Name: "T", Type: br.Sch[bKeep].Type},
			{Name: "ew"},
		}
		if sp != nil {
			sp.Algo = algo
			sp.IndexBuilt, sp.IndexCacheHit = !hit, hit
			sp.LeftRows, sp.RightRows, sp.OutRows = int64(ar.Len()), int64(br.Len()), int64(out.Len())
			sp.Dur = time.Since(sp.Start)
			e.Emit(*sp)
		}
		return out, nil
	}
	spec, err := e.joinSpec(av, bv, []int{aJoin}, []int{bJoin}, sp)
	if err != nil {
		return nil, err
	}
	out, err = e.mmJoinWithSpec(ar, br, ac, bc, aJoin, aKeep, bJoin, bKeep, sr, spec)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.LeftRows, sp.RightRows, sp.OutRows = int64(ar.Len()), int64(br.Len()), int64(out.Len())
		sp.Dur = time.Since(sp.Start)
		e.Emit(*sp)
	}
	return out, nil
}

// fusible reports whether the profile's plan for this table pair is a hash
// join — the only plan the fused kernels implement. The sort-merge plans of
// the PostgreSQL-like profile keep the materializing path so the paper's
// plan-choice experiments (Fig. 10) still measure what they measured.
func (e *Engine) fusible(a, b *catalog.View) bool {
	if e.DisableFusion {
		return false
	}
	if a.Analyzed && b.Analyzed {
		return e.Prof.BaseJoin == ra.HashJoin
	}
	return e.Prof.TempJoin == ra.HashJoin
}

// AntiJoin computes r ▷ s between two tables with the chosen SQL
// implementation.
func (e *Engine) AntiJoin(r, s *catalog.Table, rCols, sCols []int, impl ra.AntiJoinImpl) (out *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	rv, err := e.view(r)
	if err != nil {
		return nil, err
	}
	sv, err := e.view(s)
	if err != nil {
		return nil, err
	}
	rr, sr := rv.Rel, sv.Rel
	e.Cnt.add(&e.Cnt.AntiJoins, 1)
	var sp *obs.Span
	if e.sink != nil {
		sp = &obs.Span{Op: "anti-join", Note: rv.Name + " ▷ " + sv.Name + " (" + impl.String() + ")", Start: time.Now()}
	}
	out = ra.AntiJoin(rr, sr, rCols, sCols, impl, e.gov)
	if sp != nil {
		sp.LeftRows, sp.RightRows, sp.OutRows = int64(rr.Len()), int64(sr.Len()), int64(out.Len())
		sp.Dur = time.Since(sp.Start)
		e.Emit(*sp)
	}
	return out, nil
}

// UnionByUpdate updates the target table in place from relation s using the
// chosen implementation, including the physical write pattern each
// implementation implies:
//
//   - merge / update from: compute the updated image, rewrite the table;
//   - full outer join: compute the joined image, rewrite the table;
//   - drop/alter: drop the old table and store s under the old name.
//
// It returns the changed-row delta: the result rows that differ from the
// table's previous content. An empty delta means the update was a no-op, so
// fixpoint loops can detect convergence without cloning the table and
// bag-comparing the images — and the delta doubles as the changed frontier a
// semi-naive iteration feeds forward.
func (e *Engine) UnionByUpdate(target string, s *relation.Relation, keyCols []int, impl ra.UBUImpl) (delta *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	t, err := e.Cat.Get(target)
	if err != nil {
		return nil, err
	}
	if !e.Cat.Owns(t) {
		// UBU is read-modify-write; concurrent sessions updating one shared
		// table serialize on its named lock so neither works from a stale
		// image. Session-private temps (the common recursion case) skip the
		// lock — no other session can reach them.
		unlock := e.Cat.LockTable(target)
		defer unlock()
		if t, err = e.Cat.Get(target); err != nil {
			return nil, err
		}
		// After the write, this statement must read its own result, not the
		// pre-write pinned image.
		defer e.snapForget(target)
	}
	e.Cnt.add(&e.Cnt.UBUs, 1)
	var sp *obs.Span
	if e.sink != nil {
		sp = &obs.Span{Op: "union-by-update", Note: target + " (" + impl.String() + ")", RightRows: int64(s.Len()), Start: time.Now()}
		defer func() {
			if err == nil {
				sp.Dur = time.Since(sp.Start)
				e.Emit(*sp)
			}
		}()
	}
	cur, err := t.Materialize()
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.LeftRows = int64(cur.Len())
	}
	if impl == ra.UBUReplace {
		// The delta of the attribute-less form: everything when the content
		// moved, nothing when the rewrite was an identical image.
		if cur.Len() == s.Len() && cur.Equal(s) {
			delta = relation.New(t.Sch)
		} else {
			delta = s
		}
		temp := t.Temp
		sch := t.Sch
		if err := e.Cat.Drop(target); err != nil {
			return nil, err
		}
		kind := e.Prof.TempStore
		if !temp {
			kind = catalog.StorePagedLogged
		}
		nt, err := e.Cat.Create(target, sch, kind, temp)
		if err != nil {
			return nil, err
		}
		e.Cnt.add(&e.Cnt.Inserts, int64(s.Len()))
		if err := nt.InsertRelation(s); err != nil {
			return nil, err
		}
		e.Commit()
		if sp != nil {
			sp.OutRows = int64(s.Len())
		}
		return delta, nil
	}
	if impl == ra.UBUMerge {
		// MERGE is row-at-a-time DML: each matched update writes an undo
		// record of the old row image (temporary tables bypass the redo
		// log, but updates still produce undo) — the per-row cost behind
		// the paper's Tables 4/5 gap against the set-based alternatives.
		idx := relation.BuildHashIndex(cur, keyCols)
		var scratch []byte
		for _, st := range s.Tuples {
			e.gov.MustStep(1)
			idx.ProbeEach(st, keyCols, func(row int) bool {
				scratch = storage.EncodeTuple(scratch[:0], cur.Tuples[row])
				// Undo images are notes: pure logging cost, skipped by
				// recovery (redo replays the committed row images instead).
				e.wal.AppendNote(scratch)
				return true
			})
		}
	}
	updated, delta, err := ra.UnionByUpdateDelta(cur, s, keyCols, impl, e.gov)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.OutRows = int64(updated.Len())
	}
	return delta, e.StoreInto(target, updated)
}

// mvJoinWithSpec mirrors ra.MVJoin but honors a caller-supplied join spec —
// the materializing (non-fused) plan, counting the join intermediate. With
// Parallelism > 1 on a hash plan it runs the partitioned probe and parallel
// ⊕-group-by instead of the serial operators.
func (e *Engine) mvJoinWithSpec(ar, cr *relation.Relation, ac ra.MatCols, cc ra.VecCols, aJoin, aKeep int, sr semiring.Semiring, spec ra.EquiJoinSpec) (*relation.Relation, error) {
	var joined *relation.Relation
	if e.Parallelism > 1 && spec.Algo == ra.HashJoin {
		joined = ra.EquiJoinParallel(ar, cr, spec, e.Parallelism)
	} else {
		joined = ra.EquiJoin(ar, cr, spec)
	}
	if err := e.ChargeMaterialized(joined); err != nil {
		return nil, err
	}
	if spec.Span != nil {
		spec.Span.BytesMaterialized = int64(joined.Len()) * int64(joined.Sch.Arity()) * 16
	}
	cOff := ar.Sch.Arity()
	agg := ra.SemiringAgg(schema.Column{Name: "vw"}, sr, func(t relation.Tuple) (value.Value, error) {
		return sr.Times(t[ac.W], t[cOff+cc.W]), nil
	})
	out, err := e.groupBySpec(joined, []int{aKeep}, agg, sr, 1)
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "ID", Type: ar.Sch[aKeep].Type},
		{Name: "vw"},
	}
	return out, nil
}

// mmJoinWithSpec mirrors ra.MMJoin but honors a caller-supplied join spec;
// see mvJoinWithSpec.
func (e *Engine) mmJoinWithSpec(ar, br *relation.Relation, ac, bc ra.MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring, spec ra.EquiJoinSpec) (*relation.Relation, error) {
	var joined *relation.Relation
	if e.Parallelism > 1 && spec.Algo == ra.HashJoin {
		joined = ra.EquiJoinParallel(ar, br, spec, e.Parallelism)
	} else {
		joined = ra.EquiJoin(ar, br, spec)
	}
	if err := e.ChargeMaterialized(joined); err != nil {
		return nil, err
	}
	if spec.Span != nil {
		spec.Span.BytesMaterialized = int64(joined.Len()) * int64(joined.Sch.Arity()) * 16
	}
	bOff := ar.Sch.Arity()
	agg := ra.SemiringAgg(schema.Column{Name: "ew"}, sr, func(t relation.Tuple) (value.Value, error) {
		return sr.Times(t[ac.W], t[bOff+bc.W]), nil
	})
	out, err := e.groupBySpec(joined, []int{aKeep, bOff + bKeep}, agg, sr, 2)
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "F", Type: ar.Sch[aKeep].Type},
		{Name: "T", Type: br.Sch[bKeep].Type},
		{Name: "ew"},
	}
	return out, nil
}

// groupBySpec runs the ⊕-group-by of the materializing MV-/MM-join plan,
// parallel when Parallelism > 1. aggCol is the aggregate's position in the
// output tuples (== number of group columns).
func (e *Engine) groupBySpec(joined *relation.Relation, groupCols []int, agg ra.AggSpec, sr semiring.Semiring, aggCol int) (*relation.Relation, error) {
	if e.Parallelism > 1 {
		return ra.SemiringGroupByParallel(joined, groupCols, agg, func(acc, t relation.Tuple) error {
			a, b := acc[aggCol], t[aggCol]
			switch {
			case b.IsNull():
			case a.IsNull():
				acc[aggCol] = b
			default:
				acc[aggCol] = sr.Plus(a, b)
			}
			return nil
		}, e.Parallelism)
	}
	return ra.GroupBy(joined, groupCols, []ra.AggSpec{agg})
}

// CountJoin charges one join to the execution counters (atomically). The
// SQL executor calls it for the joins it drives through ra directly.
func (e *Engine) CountJoin() { e.Cnt.add(&e.Cnt.Joins, 1) }

// CountGroupBy charges one group-by to the execution counters (atomically).
func (e *Engine) CountGroupBy() { e.Cnt.add(&e.Cnt.GroupBys, 1) }

// CountVectorizedBatch charges one vectorized operator batch, plus a row
// fallback when the batch's compiled kernel tree carried a row-at-a-time
// subtree. Both feed the process-wide metrics registry (MetricsJSON) so
// operators can see which path served their statements.
func (e *Engine) CountVectorizedBatch(fellBack bool) {
	e.Cnt.add(&e.Cnt.VectorizedBatches, 1)
	obs.Global.Counter("engine.vectorized_batches").Inc()
	if fellBack {
		e.Cnt.add(&e.Cnt.RowFallbacks, 1)
		obs.Global.Counter("engine.row_fallbacks").Inc()
	}
}

// CountWCOJ charges one worst-case-optimal multiway join: the join itself
// (so Joins counts physical join operators regardless of arity), its trie
// builds, and its intersection probes — all feeding the process-wide
// metrics registry like the other access-path counters.
func (e *Engine) CountWCOJ(builds, probes int64) {
	e.Cnt.add(&e.Cnt.Joins, 1)
	e.Cnt.add(&e.Cnt.WCOJBuilds, builds)
	e.Cnt.add(&e.Cnt.WCOJProbes, probes)
	obs.Global.Counter("engine.wcoj_joins").Inc()
	obs.Global.Counter("engine.wcoj_builds").Add(builds)
	obs.Global.Counter("engine.wcoj_probes").Add(probes)
}

// WCOJEdgeCSR serves the named table's cached (srcCol, dstCol) CSR as the
// sorted backing for a binary atom of the worst-case-optimal join, under
// the same cost rule as the binary joins' build-side CSR (csrUsable) and
// the same version-keyed serving rules (shared cache at the pinned
// snapshot version, view-private build afterwards). Returns nil — the
// operator falls back to a per-execution trie build — when the CSR is not
// affordable or the access path is disabled.
func (e *Engine) WCOJEdgeCSR(name string, srcCol, dstCol int) *relation.CSR {
	v, err := e.viewOf(name)
	if err != nil {
		return nil
	}
	if !e.csrUsable(v, srcCol, dstCol, -1) {
		return nil
	}
	csr, _, err := e.ensureCSR(v, srcCol, dstCol, -1)
	if err != nil {
		return nil
	}
	return csr
}

// String describes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("engine(%s)", e.Prof.Name)
}
