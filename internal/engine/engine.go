package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/storage"
	"repro/internal/value"
)

// Counters accumulate execution statistics for experiments and tests.
type Counters struct {
	Joins     int64
	GroupBys  int64
	AntiJoins int64
	UBUs      int64
	Inserts   int64
}

// Engine is one RDBMS instance: a profile, a catalog over its own buffer
// pool and WAL, and execution helpers that apply the profile's plan choices.
type Engine struct {
	Prof Profile
	Cat  *catalog.Catalog
	Cnt  Counters

	disk *storage.Disk
	pool *storage.BufferPool
	wal  *storage.WAL
}

// DefaultBufferFrames sizes the buffer pool; large enough that the working
// set of the scaled datasets fits, as the paper configures each system with
// most of RAM.
const DefaultBufferFrames = 4096

// New returns an engine with the given profile.
func New(prof Profile) *Engine {
	return NewWithFrames(prof, DefaultBufferFrames)
}

// NewWithFrames returns an engine whose buffer pool holds the given number
// of frames — the memory_target / shared_buffers knob the paper tunes per
// system. Small pools thrash on paged temp tables (the I/O-bound regime of
// Section 7.2).
func NewWithFrames(prof Profile, frames int) *Engine {
	disk := storage.NewDisk()
	pool := storage.NewBufferPool(disk, frames)
	wal := storage.NewWAL()
	return &Engine{
		Prof: prof,
		Cat:  catalog.New(pool, wal),
		disk: disk,
		pool: pool,
		wal:  wal,
	}
}

// WAL exposes the engine's write-ahead log (for experiments that measure
// logging volume).
func (e *Engine) WAL() *storage.WAL { return e.wal }

// Disk exposes the simulated disk (for I/O counters).
func (e *Engine) Disk() *storage.Disk { return e.disk }

// CreateBase creates a logged, paged base table.
func (e *Engine) CreateBase(name string, sch schema.Schema) (*catalog.Table, error) {
	return e.Cat.Create(name, sch, catalog.StorePagedLogged, false)
}

// CreateTemp creates a temporary table with the profile's temp storage
// (in-memory for OracleLike, paged-unlogged otherwise).
func (e *Engine) CreateTemp(name string, sch schema.Schema) (*catalog.Table, error) {
	return e.Cat.Create(name, sch, e.Prof.TempStore, true)
}

// EnsureTemp returns the named temp table, creating (or truncating and
// re-shaping) it as needed — the CREATE TEMPORARY TABLE IF NOT EXISTS used
// by the PSM procedures.
func (e *Engine) EnsureTemp(name string, sch schema.Schema) (*catalog.Table, error) {
	if e.Cat.Has(name) {
		t, err := e.Cat.Get(name)
		if err != nil {
			return nil, err
		}
		if !t.Sch.UnionCompatible(sch) {
			if err := e.Cat.Drop(name); err != nil {
				return nil, err
			}
			return e.CreateTemp(name, sch)
		}
		return t, nil
	}
	return e.CreateTemp(name, sch)
}

// LoadBase creates a base table from a relation and analyzes it.
func (e *Engine) LoadBase(name string, r *relation.Relation) (*catalog.Table, error) {
	t, err := e.CreateBase(name, r.Sch)
	if err != nil {
		return nil, err
	}
	if err := t.InsertRelation(r); err != nil {
		return nil, err
	}
	e.Cnt.Inserts += int64(r.Len())
	t.Analyze()
	return t, nil
}

// Rel materializes the named table.
func (e *Engine) Rel(name string) (*relation.Relation, error) {
	t, err := e.Cat.Get(name)
	if err != nil {
		return nil, err
	}
	return t.Materialize()
}

// StoreInto truncates the table and inserts r (the PSM "truncate + insert
// ... select" step between iterations).
func (e *Engine) StoreInto(name string, r *relation.Relation) error {
	t, err := e.Cat.Get(name)
	if err != nil {
		return err
	}
	if err := t.Truncate(); err != nil {
		return err
	}
	e.Cnt.Inserts += int64(r.Len())
	return t.InsertRelation(r)
}

// AppendInto inserts r into the table without truncating (UNION ALL
// accumulation).
func (e *Engine) AppendInto(name string, r *relation.Relation) error {
	t, err := e.Cat.Get(name)
	if err != nil {
		return err
	}
	e.Cnt.Inserts += int64(r.Len())
	return t.InsertRelation(r)
}

// joinSpec resolves the physical algorithm and (for PostgreSQL-with-indexes)
// the sorted indexes for an equi-join between two tables.
func (e *Engine) joinSpec(a, b *catalog.Table, aCols, bCols []int) (ra.EquiJoinSpec, error) {
	spec := ra.EquiJoinSpec{LeftCols: aCols, RightCols: bCols}
	if a.Stats.Analyzed && b.Stats.Analyzed {
		spec.Algo = e.Prof.BaseJoin
		return spec, nil
	}
	spec.Algo = e.Prof.TempJoin
	if spec.Algo == ra.SortMergeJoin && e.Prof.UseTempIndexes {
		spec.Algo = ra.IndexMergeJoin
		li, err := a.EnsureIndex(aCols)
		if err != nil {
			return spec, err
		}
		ri, err := b.EnsureIndex(bCols)
		if err != nil {
			return spec, err
		}
		spec.LeftIdx, spec.RightIdx = li, ri
	}
	return spec, nil
}

// Join computes the equi-join of two tables under the profile's plan.
func (e *Engine) Join(a, b *catalog.Table, aCols, bCols []int) (*relation.Relation, error) {
	ar, err := a.Materialize()
	if err != nil {
		return nil, err
	}
	br, err := b.Materialize()
	if err != nil {
		return nil, err
	}
	spec, err := e.joinSpec(a, b, aCols, bCols)
	if err != nil {
		return nil, err
	}
	e.Cnt.Joins++
	return ra.EquiJoin(ar, br, spec), nil
}

// MVJoin computes the aggregate-join of a matrix table and a vector table
// (Eq. (4)) under the profile's plan.
func (e *Engine) MVJoin(a, c *catalog.Table, ac ra.MatCols, cc ra.VecCols, aJoin, aKeep int, sr semiring.Semiring) (*relation.Relation, error) {
	ar, err := a.Materialize()
	if err != nil {
		return nil, err
	}
	cr, err := c.Materialize()
	if err != nil {
		return nil, err
	}
	spec, err := e.joinSpec(a, c, []int{aJoin}, []int{cc.ID})
	if err != nil {
		return nil, err
	}
	e.Cnt.Joins++
	e.Cnt.GroupBys++
	return mvJoinWithSpec(ar, cr, ac, cc, aJoin, aKeep, sr, spec)
}

// MMJoin computes the aggregate-join of two matrix tables (Eq. (3)) under
// the profile's plan.
func (e *Engine) MMJoin(a, b *catalog.Table, ac, bc ra.MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring) (*relation.Relation, error) {
	ar, err := a.Materialize()
	if err != nil {
		return nil, err
	}
	br, err := b.Materialize()
	if err != nil {
		return nil, err
	}
	spec, err := e.joinSpec(a, b, []int{aJoin}, []int{bJoin})
	if err != nil {
		return nil, err
	}
	e.Cnt.Joins++
	e.Cnt.GroupBys++
	return mmJoinWithSpec(ar, br, ac, bc, aJoin, aKeep, bJoin, bKeep, sr, spec)
}

// AntiJoin computes r ▷ s between two tables with the chosen SQL
// implementation.
func (e *Engine) AntiJoin(r, s *catalog.Table, rCols, sCols []int, impl ra.AntiJoinImpl) (*relation.Relation, error) {
	rr, err := r.Materialize()
	if err != nil {
		return nil, err
	}
	sr, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	e.Cnt.AntiJoins++
	return ra.AntiJoin(rr, sr, rCols, sCols, impl), nil
}

// UnionByUpdate updates the target table in place from relation s using the
// chosen implementation, including the physical write pattern each
// implementation implies:
//
//   - merge / update from: compute the updated image, rewrite the table;
//   - full outer join: compute the joined image, rewrite the table;
//   - drop/alter: drop the old table and store s under the old name.
func (e *Engine) UnionByUpdate(target string, s *relation.Relation, keyCols []int, impl ra.UBUImpl) error {
	t, err := e.Cat.Get(target)
	if err != nil {
		return err
	}
	e.Cnt.UBUs++
	if impl == ra.UBUReplace {
		temp := t.Temp
		sch := t.Sch
		if err := e.Cat.Drop(target); err != nil {
			return err
		}
		kind := e.Prof.TempStore
		if !temp {
			kind = catalog.StorePagedLogged
		}
		nt, err := e.Cat.Create(target, sch, kind, temp)
		if err != nil {
			return err
		}
		e.Cnt.Inserts += int64(s.Len())
		return nt.InsertRelation(s)
	}
	cur, err := t.Materialize()
	if err != nil {
		return err
	}
	if impl == ra.UBUMerge {
		// MERGE is row-at-a-time DML: each matched update writes an undo
		// record of the old row image (temporary tables bypass the redo
		// log, but updates still produce undo) — the per-row cost behind
		// the paper's Tables 4/5 gap against the set-based alternatives.
		idx := relation.BuildHashIndex(cur, keyCols)
		var scratch []byte
		for _, st := range s.Tuples {
			for _, row := range idx.Probe(st, keyCols) {
				scratch = storage.EncodeTuple(scratch[:0], cur.Tuples[row])
				e.wal.Append(scratch)
			}
		}
	}
	updated, err := ra.UnionByUpdate(cur, s, keyCols, impl)
	if err != nil {
		return err
	}
	return e.StoreInto(target, updated)
}

// mvJoinWithSpec mirrors ra.MVJoin but honors a caller-supplied join spec.
func mvJoinWithSpec(ar, cr *relation.Relation, ac ra.MatCols, cc ra.VecCols, aJoin, aKeep int, sr semiring.Semiring, spec ra.EquiJoinSpec) (*relation.Relation, error) {
	joined := ra.EquiJoin(ar, cr, spec)
	cOff := ar.Sch.Arity()
	out, err := ra.GroupBy(joined, []int{aKeep}, []ra.AggSpec{
		ra.SemiringAgg(schema.Column{Name: "vw"}, sr, func(t relation.Tuple) (value.Value, error) {
			return sr.Times(t[ac.W], t[cOff+cc.W]), nil
		}),
	})
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "ID", Type: ar.Sch[aKeep].Type},
		{Name: "vw"},
	}
	return out, nil
}

// mmJoinWithSpec mirrors ra.MMJoin but honors a caller-supplied join spec.
func mmJoinWithSpec(ar, br *relation.Relation, ac, bc ra.MatCols, aJoin, aKeep, bJoin, bKeep int, sr semiring.Semiring, spec ra.EquiJoinSpec) (*relation.Relation, error) {
	joined := ra.EquiJoin(ar, br, spec)
	bOff := ar.Sch.Arity()
	out, err := ra.GroupBy(joined, []int{aKeep, bOff + bKeep}, []ra.AggSpec{
		ra.SemiringAgg(schema.Column{Name: "ew"}, sr, func(t relation.Tuple) (value.Value, error) {
			return sr.Times(t[ac.W], t[bOff+bc.W]), nil
		}),
	})
	if err != nil {
		return nil, err
	}
	out.Sch = schema.Schema{
		{Name: "F", Type: ar.Sch[aKeep].Type},
		{Name: "T", Type: br.Sch[bKeep].Type},
		{Name: "ew"},
	}
	return out, nil
}

// String describes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("engine(%s)", e.Prof.Name)
}
