package engine

import (
	"math"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/semiring"
	"repro/internal/value"
)

func cycleEdges(n int) [][2]int64 {
	var out [][2]int64
	for i := int64(0); i < int64(n); i++ {
		out = append(out, [2]int64{i, (i + 1) % int64(n)})
		out = append(out, [2]int64{i, (i + 3) % int64(n)})
	}
	return out
}

func mvMap(r *relation.Relation) map[int64]float64 {
	m := make(map[int64]float64, r.Len())
	for _, t := range r.Tuples {
		m[t[0].AsInt()] = t[1].AsFloat()
	}
	return m
}

func mmMap(r *relation.Relation) map[[2]int64]float64 {
	m := make(map[[2]int64]float64, r.Len())
	for _, t := range r.Tuples {
		m[[2]int64{t[0].AsInt(), t[1].AsInt()}] = t[2].AsFloat()
	}
	return m
}

// TestMVJoinIndexCacheCounters is the tentpole's acceptance shape in miniature:
// across an iterative MV-join loop the matrix-side CSR is built once
// (CSRBuilds stays at 1) and every further iteration is a cache hit, even
// though the vector table is rewritten between iterations. The hash-index
// counters stay untouched because the CSR access path replaces the index
// build entirely.
func TestMVJoinIndexCacheCounters(t *testing.T) {
	for _, prof := range []Profile{OracleLike(), DB2Like()} {
		e := New(prof)
		if _, err := e.LoadBase("E", edgeRel(cycleEdges(8))); err != nil {
			t.Fatal(err)
		}
		vsch := schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}}
		if _, err := e.CreateTemp("V", vsch); err != nil {
			t.Fatal(err)
		}
		if err := e.StoreInto("V", nodeRel(8, func(int) float64 { return 1 })); err != nil {
			t.Fatal(err)
		}
		et, _ := e.Cat.Get("E")
		vt, _ := e.Cat.Get("V")
		const iters = 5
		for it := 0; it < iters; it++ {
			out, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
			if err != nil {
				t.Fatal(err)
			}
			// Rewrite the vector, as every iteration of Eq. (9) does.
			if err := e.StoreInto("V", out); err != nil {
				t.Fatal(err)
			}
		}
		if e.Cnt.CSRBuilds != 1 {
			t.Errorf("%s: CSRBuilds = %d over %d iterations, want 1 (O(1) per base table)",
				prof.Name, e.Cnt.CSRBuilds, iters)
		}
		if e.Cnt.CSRCacheHits != iters-1 {
			t.Errorf("%s: CSRCacheHits = %d, want %d", prof.Name, e.Cnt.CSRCacheHits, iters-1)
		}
		if e.Cnt.IndexBuilds != 0 {
			t.Errorf("%s: IndexBuilds = %d, want 0 (CSR path replaces the hash build)",
				prof.Name, e.Cnt.IndexBuilds)
		}
		if e.Cnt.TuplesMaterialized != 0 {
			t.Errorf("%s: fused loop materialized %d join tuples, want 0",
				prof.Name, e.Cnt.TuplesMaterialized)
		}
		// An append to the base table extends the cached CSR in place:
		// no rebuild, and the new edge participates in the join.
		if err := e.AppendInto("E", edgeRel([][2]int64{{0, 5}})); err != nil {
			t.Fatal(err)
		}
		if _, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes()); err != nil {
			t.Fatal(err)
		}
		if e.Cnt.CSRBuilds != 1 {
			t.Errorf("%s: CSRBuilds after base append = %d, want 1 (incremental maintenance)",
				prof.Name, e.Cnt.CSRBuilds)
		}
		if e.Cnt.CSRCacheHits != iters {
			t.Errorf("%s: CSRCacheHits after base append = %d, want %d",
				prof.Name, e.Cnt.CSRCacheHits, iters)
		}
		// A destructive rewrite (truncate + store) must still force a rebuild.
		er, err := e.Rel("E")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.StoreInto("E", er.Clone()); err != nil {
			t.Fatal(err)
		}
		if _, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes()); err != nil {
			t.Fatal(err)
		}
		if e.Cnt.CSRBuilds != 2 {
			t.Errorf("%s: CSRBuilds after destructive rewrite = %d, want 2", prof.Name, e.Cnt.CSRBuilds)
		}
		// The A/B switch must restore the hash-index plan with identical output.
		nocsr := New(prof)
		nocsr.DisableCSR = true
		if _, err := nocsr.LoadBase("E", edgeRel(cycleEdges(8))); err != nil {
			t.Fatal(err)
		}
		if _, err := nocsr.CreateTemp("V", vsch); err != nil {
			t.Fatal(err)
		}
		if err := nocsr.StoreInto("V", nodeRel(8, func(int) float64 { return 1 })); err != nil {
			t.Fatal(err)
		}
		het, _ := nocsr.Cat.Get("E")
		hvt, _ := nocsr.Cat.Get("V")
		if _, err := nocsr.MVJoin(het, hvt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes()); err != nil {
			t.Fatal(err)
		}
		if nocsr.Cnt.CSRBuilds != 0 || nocsr.Cnt.IndexBuilds != 1 {
			t.Errorf("%s: DisableCSR engine: CSRBuilds=%d IndexBuilds=%d, want 0/1",
				prof.Name, nocsr.Cnt.CSRBuilds, nocsr.Cnt.IndexBuilds)
		}
	}
}

// TestDisableFusionMaterializesAndRebuilds pins the -nofusion A/B baseline:
// the legacy plan materializes the join intermediate and rebuilds the build
// side every iteration (no cache hits charged).
func TestDisableFusionMaterializesAndRebuilds(t *testing.T) {
	e := New(OracleLike())
	e.DisableFusion = true
	if _, err := e.LoadBase("E", edgeRel(cycleEdges(8))); err != nil {
		t.Fatal(err)
	}
	vsch := schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}}
	if _, err := e.CreateTemp("V", vsch); err != nil {
		t.Fatal(err)
	}
	if err := e.StoreInto("V", nodeRel(8, func(int) float64 { return 1 })); err != nil {
		t.Fatal(err)
	}
	et, _ := e.Cat.Get("E")
	vt, _ := e.Cat.Get("V")
	for it := 0; it < 3; it++ {
		if _, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes()); err != nil {
			t.Fatal(err)
		}
	}
	if e.Cnt.IndexBuilds != 0 || e.Cnt.IndexCacheHits != 0 {
		t.Errorf("disabled fusion must not touch the index cache: builds=%d hits=%d",
			e.Cnt.IndexBuilds, e.Cnt.IndexCacheHits)
	}
	if e.Cnt.TuplesMaterialized == 0 {
		t.Error("legacy plan must count materialized join tuples")
	}
}

// TestFusedMatchesLegacyAcrossProfiles runs the same MV- and MM-joins on a
// fused engine and a DisableFusion engine for every profile and semiring; the
// results must agree (exactly for the discrete semirings, within 1e-9 for the
// float-summing one).
func TestFusedMatchesLegacyAcrossProfiles(t *testing.T) {
	edges := cycleEdges(12)
	for _, prof := range allProfiles() {
		for _, sr := range semiring.All() {
			fused := New(prof)
			legacy := New(prof)
			legacy.DisableFusion = true
			var mvF, mvL map[int64]float64
			var mmF, mmL map[[2]int64]float64
			for _, e := range []*Engine{fused, legacy} {
				if _, err := e.LoadBase("E", edgeRel(edges)); err != nil {
					t.Fatal(err)
				}
				vsch := schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}}
				if _, err := e.CreateTemp("V", vsch); err != nil {
					t.Fatal(err)
				}
				if err := e.StoreInto("V", nodeRel(12, func(i int) float64 { return float64(i%3 + 1) })); err != nil {
					t.Fatal(err)
				}
				et, _ := e.Cat.Get("E")
				vt, _ := e.Cat.Get("V")
				mv, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 1, 0, sr)
				if err != nil {
					t.Fatal(err)
				}
				mm, err := e.MMJoin(et, et, ra.EdgeMat(), ra.EdgeMat(), 1, 0, 0, 1, sr)
				if err != nil {
					t.Fatal(err)
				}
				if e == fused {
					mvF, mmF = mvMap(mv), mmMap(mm)
				} else {
					mvL, mmL = mvMap(mv), mmMap(mm)
				}
			}
			if len(mvF) != len(mvL) || len(mmF) != len(mmL) {
				t.Fatalf("%s/%s: group counts differ (mv %d vs %d, mm %d vs %d)",
					prof.Name, sr.Name, len(mvF), len(mvL), len(mmF), len(mmL))
			}
			for id, w := range mvL {
				if math.Abs(mvF[id]-w) > 1e-9 {
					t.Fatalf("%s/%s: mv[%d] = %g, want %g", prof.Name, sr.Name, id, mvF[id], w)
				}
			}
			for k, w := range mmL {
				if math.Abs(mmF[k]-w) > 1e-9 {
					t.Fatalf("%s/%s: mm[%v] = %g, want %g", prof.Name, sr.Name, k, mmF[k], w)
				}
			}
		}
	}
}

// TestParallelismMatchesSerial runs the fused and legacy paths with
// Parallelism well above 1 and checks against the serial engine.
func TestParallelismMatchesSerial(t *testing.T) {
	edges := cycleEdges(40)
	for _, nofusion := range []bool{false, true} {
		serial := New(OracleLike())
		par := New(OracleLike())
		par.Parallelism = 4
		serial.DisableFusion = nofusion
		par.DisableFusion = nofusion
		var mvS, mvP map[int64]float64
		for _, e := range []*Engine{serial, par} {
			if _, err := e.LoadBase("E", edgeRel(edges)); err != nil {
				t.Fatal(err)
			}
			vsch := schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}}
			if _, err := e.CreateTemp("V", vsch); err != nil {
				t.Fatal(err)
			}
			if err := e.StoreInto("V", nodeRel(40, func(i int) float64 { return float64(i) })); err != nil {
				t.Fatal(err)
			}
			et, _ := e.Cat.Get("E")
			vt, _ := e.Cat.Get("V")
			mv, err := e.MVJoin(et, vt, ra.EdgeMat(), ra.NodeVec(), 0, 1, semiring.PlusTimes())
			if err != nil {
				t.Fatal(err)
			}
			if e == serial {
				mvS = mvMap(mv)
			} else {
				mvP = mvMap(mv)
			}
			// The plain table join takes the partitioned-probe path too.
			jo, err := e.Join(et, vt, []int{1}, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			if jo.Len() != len(edges) {
				t.Fatalf("parallel join rows = %d, want %d", jo.Len(), len(edges))
			}
		}
		if len(mvS) != len(mvP) {
			t.Fatalf("nofusion=%v: group counts differ", nofusion)
		}
		for id, w := range mvS {
			if math.Abs(mvP[id]-w) > 1e-9 {
				t.Fatalf("nofusion=%v: mv[%d] = %g, want %g", nofusion, id, mvP[id], w)
			}
		}
	}
}

// TestEnsureTempReshapeDropsStaleState re-creates a temp table with a new
// shape via EnsureTemp and checks the old table's cached index cannot leak
// into plans against the new one.
func TestEnsureTempReshapeDropsStaleState(t *testing.T) {
	e := New(OracleLike())
	sch2 := schema.Cols(value.KindInt, "a", "b")
	t1, err := e.EnsureTemp("t", sch2)
	if err != nil {
		t.Fatal(err)
	}
	t1.Insert(relation.Tuple{value.Int(1), value.Int(2)})
	if _, _, err := t1.EnsureHashIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	t2, err := e.EnsureTemp("t", schema.Cols(value.KindInt, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if t2 == t1 {
		t.Fatal("re-shape must produce a fresh table")
	}
	if t2.HashIndex([]int{0}) != nil {
		t.Error("fresh table must not inherit the old hash index")
	}
	if t2.Rows() != 0 {
		t.Error("fresh table must start empty")
	}
	// And the compatible path keeps the same table with its version intact.
	t3, err := e.EnsureTemp("t", schema.Cols(value.KindInt, "x", "y", "z"))
	if err != nil || t3 != t2 {
		t.Error("union-compatible EnsureTemp must return the existing table")
	}
}
