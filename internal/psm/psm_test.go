package psm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func intRel(vals ...int64) *relation.Relation {
	r := relation.New(schema.Cols(value.KindInt, "x"))
	for _, v := range vals {
		r.Append(relation.Tuple{value.Int(v)})
	}
	return r
}

func TestProcCreateInsertLoop(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	proc := &Proc{
		Name: "F_test",
		Steps: []Stmt{
			&CreateTemp{Table: "acc", Sch: schema.Cols(value.KindInt, "x")},
			&InsertSelect{
				Table: "acc",
				Query: func(ctx *Ctx) (*relation.Relation, error) { return intRel(0), nil },
			},
			&Loop{
				MaxIter: 100,
				Body: []Stmt{
					&InsertSelect{
						Table:   "acc",
						SetCond: "C1",
						Label:   "select max+1",
						Query: func(ctx *Ctx) (*relation.Relation, error) {
							if ctx.Iteration >= 5 {
								return intRel(), nil // empty → C1 false
							}
							return intRel(int64(ctx.Iteration)), nil
						},
					},
					&ExitIf{
						Label: "C1 is false",
						Cond:  func(ctx *Ctx) (bool, error) { return !ctx.Conds["C1"], nil },
					},
				},
			},
		},
	}
	if err := proc.Call(eng); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Rel("acc")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 { // 0 plus iterations 1..4
		t.Errorf("rows = %d, want 5", out.Len())
	}
}

func TestLoopMaxIterStops(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	runs := 0
	proc := &Proc{Steps: []Stmt{
		&Loop{MaxIter: 3, Body: []Stmt{
			&Do{Label: "count", Fn: func(ctx *Ctx) error { runs++; return nil }},
		}},
	}}
	if err := proc.Call(eng); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("runs = %d", runs)
	}
}

func TestInsertSelectTruncateMode(t *testing.T) {
	eng := engine.New(engine.DB2Like())
	ct := &CreateTemp{Table: "t", Sch: schema.Cols(value.KindInt, "x")}
	ctx := &Ctx{Eng: eng, Conds: map[string]bool{}}
	if err := ct.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	app := &InsertSelect{Table: "t", Query: func(*Ctx) (*relation.Relation, error) { return intRel(1, 2), nil }}
	if err := app.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	if err := app.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	r, _ := eng.Rel("t")
	if r.Len() != 4 {
		t.Errorf("append mode rows = %d", r.Len())
	}
	tr := &InsertSelect{Table: "t", Truncate: true, Query: func(*Ctx) (*relation.Relation, error) { return intRel(9), nil }}
	if err := tr.Exec(ctx); err != nil {
		t.Fatal(err)
	}
	r, _ = eng.Rel("t")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 9 {
		t.Errorf("truncate mode rows = %v", r)
	}
}

func TestErrorsPropagate(t *testing.T) {
	eng := engine.New(engine.OracleLike())
	boom := fmt.Errorf("boom")
	proc := &Proc{Steps: []Stmt{
		&Do{Label: "fail", Fn: func(*Ctx) error { return boom }},
	}}
	if err := proc.Call(eng); err != boom {
		t.Errorf("err = %v", err)
	}
	proc2 := &Proc{Steps: []Stmt{
		&Loop{MaxIter: 2, Body: []Stmt{
			&ExitIf{Label: "bad cond", Cond: func(*Ctx) (bool, error) { return false, boom }},
		}},
	}}
	if err := proc2.Call(eng); err != boom {
		t.Errorf("loop cond err = %v", err)
	}
	proc3 := &Proc{Steps: []Stmt{
		&InsertSelect{Table: "missing", Query: func(*Ctx) (*relation.Relation, error) { return intRel(1), nil }},
	}}
	if err := proc3.Call(eng); err == nil {
		t.Error("insert into missing table should fail")
	}
}

func TestRendering(t *testing.T) {
	proc := &Proc{Name: "F_Q", Steps: []Stmt{
		&CreateTemp{Table: "t", Sch: schema.Cols(value.KindInt, "x")},
		&Loop{MaxIter: 10, Body: []Stmt{
			&InsertSelect{Table: "t", Truncate: true, Label: "select ..."},
			&Do{Label: "union-by-update t"},
			&ExitIf{Label: "no change"},
		}},
	}}
	s := proc.String()
	for _, want := range []string{
		"create procedure F_Q", "create temporary table t",
		"loop (maxrecursion 10)", "truncate + insert into t",
		"union-by-update t", "exit when no change", "end loop", "end",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}
