// Chaos harness: drive a full WITH+ PageRank through the PSM loop driver
// while injecting a storage fault at every reachable operation index, and
// assert the failure contract at each one — no panic, a typed error, no
// temp-table debris, stable catalog invariants, and crash recovery restoring
// exactly the committed base tables.
//
// The tests live in package psm_test so they can exercise the compiled
// procedures through repro/internal/withplus (which imports psm).
package psm_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/algos"
	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/withplus"
)

// sweepGraph is a small deterministic digraph: a cycle with chords, so
// PageRank has real mass flow and every node has out-degree >= 1.
func sweepGraph(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), int32((i+1)%n), 1)
		if i%3 == 0 {
			g.AddEdge(int32(i), int32((i+2)%n), 1)
		}
	}
	return g
}

// loadGraphTables loads the base tables the WITH+ algorithm texts expect:
// E(F,T,ew), En (out-degree normalized), and V(ID,vw).
func loadGraphTables(eng *engine.Engine, g *graph.Graph) error {
	if _, err := eng.LoadBase("E", g.EdgeRelation()); err != nil {
		return err
	}
	deg := g.OutDegrees()
	norm := graph.New(g.N, g.Directed)
	for _, e := range g.Edges {
		norm.AddEdge(e.F, e.T, 1/float64(deg[e.F]))
	}
	if _, err := eng.LoadBase("En", norm.EdgeRelation()); err != nil {
		return err
	}
	_, err := eng.LoadBase("V", g.NodeRelation(nil))
	return err
}

// runGoverned executes a WITH+ statement under a statement governor the way
// graphsql.QueryContext does: aborts become errors at this boundary.
func runGoverned(ctx context.Context, eng *engine.Engine, src string) (out *relation.Relation, err error) {
	defer govern.RecoverTo(&err)
	end := eng.BeginStatement(ctx)
	defer end()
	out, _, err = withplus.Run(eng, src)
	return out, err
}

// dumpTable renders a table's content in storage order, schema-independent,
// for exact before/after comparison across recovery.
func dumpTable(t *testing.T, eng *engine.Engine, name string) string {
	t.Helper()
	r, err := eng.Rel(name)
	if err != nil {
		t.Fatalf("materialize %s: %v", name, err)
	}
	var b strings.Builder
	for i := 0; i < r.Len(); i++ {
		b.WriteString(r.At(i).String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFaultSweepPageRank is the fault-injection sweep of the issue: run
// PageRank once cleanly to learn the total operation count N, then re-run it
// N-ish times with a hard fault scripted at every operation index the query
// reaches. Every run must either succeed (the fault landed on an op the
// engine never reached — impossible here, but harmless) or fail with an
// error matching storage.ErrInjected; never panic, never leave temp tables,
// and always leave the committed base tables recoverable from the WAL.
func TestFaultSweepPageRank(t *testing.T) {
	const nodes = 12
	g := sweepGraph(nodes)
	query := algos.PageRankSQL(nodes, 3, 0.85)

	// Clean instrumented run: a zero FaultPlan counts operations without
	// injecting, giving the op-index range the sweep walks.
	eng := engine.New(engine.OracleLike())
	plan := &storage.FaultPlan{}
	eng.Cat.FaultPlan = plan
	if err := loadGraphTables(eng, g); err != nil {
		t.Fatal(err)
	}
	loadOps := plan.Ops()
	wantBase := map[string]string{}
	for _, name := range []string{"E", "En", "V"} {
		wantBase[name] = dumpTable(t, eng, name)
	}
	cleanOut, err := runGoverned(context.Background(), eng, query)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	totalOps := plan.Ops()
	if totalOps <= loadOps {
		t.Fatalf("query consumed no storage ops (load %d, total %d)", loadOps, totalOps)
	}
	t.Logf("sweep range: ops %d..%d (%d injection points), clean result %d rows",
		loadOps+1, totalOps, totalOps-loadOps, cleanOut.Len())

	var failed, succeeded int
	for k := loadOps + 1; k <= totalOps; k++ {
		k := k
		t.Run(fmt.Sprintf("op%03d", k), func(t *testing.T) {
			eng := engine.New(engine.OracleLike())
			eng.Cat.FaultPlan = &storage.FaultPlan{FailAt: k}
			if err := loadGraphTables(eng, g); err != nil {
				t.Fatalf("load reached the injection index: %v", err)
			}
			_, err := runGoverned(context.Background(), eng, query)
			if err == nil {
				succeeded++
			} else {
				failed++
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("fault at op %d surfaced as a foreign error: %v", k, err)
				}
				var pe *govern.PanicError
				if errors.As(err, &pe) {
					t.Fatalf("fault at op %d escaped as a panic: %v", k, err)
				}
			}
			// Contract 1: no temp-table debris, whatever happened.
			if tn := eng.Cat.TempNames(); len(tn) != 0 {
				t.Fatalf("temp tables leaked after fault at op %d: %v", k, tn)
			}
			// Contract 2: the base tables are still cataloged.
			for name := range wantBase {
				if !eng.Cat.Has(name) {
					t.Fatalf("base table %s vanished after fault at op %d", name, k)
				}
			}
			// Contract 3: crash recovery rebuilds exactly the committed
			// base-table state (the graph load), discarding the failed
			// statement entirely.
			rep, rerr := eng.Recover()
			if rerr != nil {
				t.Fatalf("recover after fault at op %d: %v", k, rerr)
			}
			if rep.Corrupt != nil {
				t.Fatalf("recover reported corruption on an intact log: %v", rep.Corrupt)
			}
			for name, want := range wantBase {
				if got := dumpTable(t, eng, name); got != want {
					t.Fatalf("table %s diverged after recovery from fault at op %d:\ngot:\n%swant:\n%s",
						name, k, got, want)
				}
			}
		})
	}
	if failed == 0 {
		t.Fatalf("sweep injected no faults (%d succeeded) — the plan is not wired through", succeeded)
	}
	t.Logf("sweep done: %d faulted, %d unreached", failed, succeeded)
}

// TestTransientFaultsAbsorbedByRetry is the flaky-device end of the fault
// model: every 3rd storage operation fails transiently, the catalog's retry
// policy re-runs it, and the query comes out byte-identical to a clean run.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	const nodes = 12
	g := sweepGraph(nodes)
	query := algos.PageRankSQL(nodes, 3, 0.85)

	clean := engine.New(engine.OracleLike())
	if err := loadGraphTables(clean, g); err != nil {
		t.Fatal(err)
	}
	want, err := runGoverned(context.Background(), clean, query)
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.OracleLike())
	plan := &storage.FaultPlan{EveryNth: 3, Transient: true}
	eng.Cat.FaultPlan = plan
	eng.Cat.Retry = storage.RetryPolicy{Attempts: 3}
	if err := loadGraphTables(eng, g); err != nil {
		t.Fatalf("retry policy should absorb transient load faults: %v", err)
	}
	got, err := runGoverned(context.Background(), eng, query)
	if err != nil {
		t.Fatalf("retry policy should absorb transient query faults: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("no transient faults were injected — the test is vacuous")
	}
	if !got.Equal(want) {
		t.Fatalf("result diverged under transient faults: %d rows vs %d", got.Len(), want.Len())
	}
	t.Logf("absorbed %d transient faults over %d ops", plan.Injected(), plan.Ops())
}

// TestLoopCancellationAtBoundary: a cancelled context stops the PSM loop at
// a statement boundary with context.Canceled, and the procedure's temp
// tables are dropped on the way out.
func TestLoopCancellationAtBoundary(t *testing.T) {
	const nodes = 12
	g := sweepGraph(nodes)
	eng := engine.New(engine.OracleLike())
	if err := loadGraphTables(eng, g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the procedure starts: first checkpoint trips
	_, err := runGoverned(ctx, eng, algos.PageRankSQL(nodes, 15, 0.85))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if tn := eng.Cat.TempNames(); len(tn) != 0 {
		t.Fatalf("temp tables leaked after cancellation: %v", tn)
	}
	// The engine remains usable for the next statement.
	if _, err := runGoverned(context.Background(), eng, algos.PageRankSQL(nodes, 2, 0.85)); err != nil {
		t.Fatalf("engine unusable after a cancelled statement: %v", err)
	}
}
