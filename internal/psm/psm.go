// Package psm implements SQL/PSM-style stored procedures: the target the
// WITH+ compiler emits (the paper's Algorithm 1). A procedure declares
// condition variables, creates temporary tables, and runs a loop of
// insert-select steps with emptiness checks deciding when to exit.
package psm

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
)

// Ctx is the execution context of one procedure call.
type Ctx struct {
	Eng *engine.Engine
	// Conds are the paper's C_i condition variables (emptiness flags).
	Conds map[string]bool
	// Iteration is the current loop iteration (0 before the loop).
	Iteration int

	// created tracks the temp tables this call made, so a failed or
	// cancelled call can drop them instead of leaving debris.
	created []string
}

// Query produces a relation from the current state (a compiled SELECT).
type Query func(ctx *Ctx) (*relation.Relation, error)

// Stmt is one procedure statement.
type Stmt interface {
	Exec(ctx *Ctx) error
	String() string
}

// CreateTemp creates (or re-creates) a temporary table.
type CreateTemp struct {
	Table string
	Sch   schema.Schema
}

// Exec implements Stmt.
func (s *CreateTemp) Exec(ctx *Ctx) error {
	_, err := ctx.Eng.EnsureTemp(s.Table, s.Sch)
	if err == nil {
		ctx.created = append(ctx.created, s.Table)
	}
	return err
}

// String implements Stmt.
func (s *CreateTemp) String() string {
	return fmt.Sprintf("create temporary table %s %s", s.Table, s.Sch)
}

// InsertSelect evaluates a query and inserts the result into a table,
// optionally truncating first (the per-iteration refresh of computed-by
// tables). SetCond, when non-empty, records whether the query produced
// rows in the named condition variable.
type InsertSelect struct {
	Table    string
	Query    Query
	Truncate bool
	SetCond  string
	Label    string // rendered SQL-ish text for display
}

// Exec implements Stmt.
func (s *InsertSelect) Exec(ctx *Ctx) error {
	r, err := s.Query(ctx)
	if err != nil {
		return err
	}
	if s.SetCond != "" {
		ctx.Conds[s.SetCond] = r.Len() > 0
	}
	if s.Truncate {
		return ctx.Eng.StoreInto(s.Table, r)
	}
	return ctx.Eng.AppendInto(s.Table, r)
}

// String implements Stmt.
func (s *InsertSelect) String() string {
	verb := "insert into"
	if s.Truncate {
		verb = "truncate + insert into"
	}
	label := s.Label
	if label == "" {
		label = "select ..."
	}
	return fmt.Sprintf("%s %s %s", verb, s.Table, label)
}

// Do runs an arbitrary compiled step (union-by-update write-back, fixpoint
// snapshots) with a display label.
type Do struct {
	Label string
	Fn    func(ctx *Ctx) error
}

// Exec implements Stmt.
func (s *Do) Exec(ctx *Ctx) error { return s.Fn(ctx) }

// String implements Stmt.
func (s *Do) String() string { return s.Label }

// ExitIf leaves the enclosing loop when the condition holds.
type ExitIf struct {
	Label string
	Cond  func(ctx *Ctx) (bool, error)
}

// Exec implements Stmt (evaluated by Loop).
func (s *ExitIf) Exec(ctx *Ctx) error { return nil }

// String implements Stmt.
func (s *ExitIf) String() string { return "exit when " + s.Label }

// errExit signals loop exit through the interpreter.
type errExit struct{}

func (errExit) Error() string { return "psm: loop exit" }

// Loop runs its body until an ExitIf fires or MaxIter is reached
// (0 = unbounded, the engines' default).
type Loop struct {
	Body    []Stmt
	MaxIter int
}

// Exec implements Stmt. The loop is a cooperative checkpoint site: the
// statement's governor is consulted at every iteration boundary (the coarse
// CheckStatement, which also audits the temp-table memory footprint) and
// before every statement, so a cancelled or over-budget run stops within
// one statement rather than finishing the loop.
func (s *Loop) Exec(ctx *Ctx) error {
	for iter := 1; s.MaxIter <= 0 || iter <= s.MaxIter; iter++ {
		ctx.Iteration = iter
		if err := ctx.Eng.CheckStatement(); err != nil {
			return err
		}
		for _, st := range s.Body {
			if ex, ok := st.(*ExitIf); ok {
				stop, err := ex.Cond(ctx)
				if err != nil {
					return err
				}
				if stop {
					return nil
				}
				continue
			}
			if err := ctx.Eng.Gov().Check(); err != nil {
				return err
			}
			if err := st.Exec(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// String implements Stmt.
func (s *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop (maxrecursion %d)\n", s.MaxIter)
	for _, st := range s.Body {
		b.WriteString("    " + st.String() + "\n")
	}
	b.WriteString("  end loop")
	return b.String()
}

// Proc is a stored procedure: the compiled form of one WITH+ query.
type Proc struct {
	Name  string
	Steps []Stmt
}

// Call executes the procedure on an engine. A failed or cancelled call
// drops every temp table it created before returning — the procedure's
// working state must not outlive an aborted run.
func (p *Proc) Call(eng *engine.Engine) error {
	ctx := &Ctx{Eng: eng, Conds: map[string]bool{}}
	for _, s := range p.Steps {
		if err := s.Exec(ctx); err != nil {
			ctx.dropCreated()
			return err
		}
	}
	return nil
}

// dropCreated removes the call's temp tables, tolerating tables already
// dropped by the procedure itself. Drop failures are ignored: the catalog
// removes the name even when releasing storage fails, which is the
// debris-free invariant the fault sweep asserts.
func (c *Ctx) dropCreated() {
	for _, name := range c.created {
		if c.Eng.Cat.Has(name) {
			_ = c.Eng.Cat.Drop(name)
		}
	}
}

// String renders the procedure body (the shape of Algorithm 1's output).
func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "create procedure %s as begin\n", p.Name)
	for _, s := range p.Steps {
		b.WriteString("  " + s.String() + "\n")
	}
	b.WriteString("end")
	return b.String()
}
