// Package psm implements SQL/PSM-style stored procedures: the target the
// WITH+ compiler emits (the paper's Algorithm 1). A procedure declares
// condition variables, creates temporary tables, and runs a loop of
// insert-select steps with emptiness checks deciding when to exit.
package psm

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
)

// Ctx is the execution context of one procedure call.
type Ctx struct {
	Eng *engine.Engine
	// Conds are the paper's C_i condition variables (emptiness flags).
	Conds map[string]bool
	// Iteration is the current loop iteration (0 before the loop).
	Iteration int

	// Stats, when non-nil, accumulates per-statement execution counts, row
	// counts, and wall time for EXPLAIN ANALYZE. Nil (the default) keeps
	// the interpreter clock-free.
	Stats *ProcStats

	// lastRows is the row count of the most recent InsertSelect's query
	// result, read by the Stats recorder.
	lastRows int64

	// created tracks the temp tables this call made, so a failed or
	// cancelled call can drop them instead of leaving debris.
	created []string
}

// StmtStat aggregates one procedure statement's executions.
type StmtStat struct {
	Execs int64
	Rows  int64
	Dur   time.Duration
}

// ProcStats maps procedure statements (by identity) to their accumulated
// execution stats, plus the loop iteration count — the EXPLAIN ANALYZE
// annotation source for the PSM section of a WITH+ plan.
type ProcStats struct {
	ByStmt     map[Stmt]*StmtStat
	Iterations int
}

// NewProcStats returns an empty stats accumulator.
func NewProcStats() *ProcStats {
	return &ProcStats{ByStmt: map[Stmt]*StmtStat{}}
}

// record charges one execution of s.
func (ps *ProcStats) record(s Stmt, rows int64, dur time.Duration) {
	st := ps.ByStmt[s]
	if st == nil {
		st = &StmtStat{}
		ps.ByStmt[s] = st
	}
	st.Execs++
	st.Rows += rows
	st.Dur += dur
}

// annotate renders the suffix appended to a statement's display line.
func (ps *ProcStats) annotate(s Stmt) string {
	st := ps.ByStmt[s]
	if st == nil {
		return "  [never executed]"
	}
	return fmt.Sprintf("  [execs=%d rows=%d time=%s]", st.Execs, st.Rows, st.Dur.Round(time.Microsecond))
}

// exec runs one statement under ctx, timing and recording it when Stats is
// attached. Loop bodies and top-level steps both route through it.
func (c *Ctx) exec(s Stmt) error {
	if c.Stats == nil {
		return s.Exec(c)
	}
	c.lastRows = 0
	t0 := time.Now()
	err := s.Exec(c)
	c.Stats.record(s, c.lastRows, time.Since(t0))
	return err
}

// SetRows reports how many rows the currently executing statement
// produced, for the Stats annotations. Do-steps (whose closures the
// interpreter cannot see into) call it; InsertSelect reports implicitly.
func (c *Ctx) SetRows(n int64) { c.lastRows = n }

// Query produces a relation from the current state (a compiled SELECT).
type Query func(ctx *Ctx) (*relation.Relation, error)

// Stmt is one procedure statement.
type Stmt interface {
	Exec(ctx *Ctx) error
	String() string
}

// CreateTemp creates (or re-creates) a temporary table.
type CreateTemp struct {
	Table string
	Sch   schema.Schema
}

// Exec implements Stmt.
func (s *CreateTemp) Exec(ctx *Ctx) error {
	_, err := ctx.Eng.EnsureTemp(s.Table, s.Sch)
	if err == nil {
		ctx.created = append(ctx.created, s.Table)
	}
	return err
}

// String implements Stmt.
func (s *CreateTemp) String() string {
	return fmt.Sprintf("create temporary table %s %s", s.Table, s.Sch)
}

// InsertSelect evaluates a query and inserts the result into a table,
// optionally truncating first (the per-iteration refresh of computed-by
// tables). SetCond, when non-empty, records whether the query produced
// rows in the named condition variable.
type InsertSelect struct {
	Table    string
	Query    Query
	Truncate bool
	SetCond  string
	Label    string // rendered SQL-ish text for display
}

// Exec implements Stmt.
func (s *InsertSelect) Exec(ctx *Ctx) error {
	r, err := s.Query(ctx)
	if err != nil {
		return err
	}
	ctx.lastRows = int64(r.Len())
	if s.SetCond != "" {
		ctx.Conds[s.SetCond] = r.Len() > 0
	}
	if s.Truncate {
		return ctx.Eng.StoreInto(s.Table, r)
	}
	return ctx.Eng.AppendInto(s.Table, r)
}

// String implements Stmt.
func (s *InsertSelect) String() string {
	verb := "insert into"
	if s.Truncate {
		verb = "truncate + insert into"
	}
	label := s.Label
	if label == "" {
		label = "select ..."
	}
	return fmt.Sprintf("%s %s %s", verb, s.Table, label)
}

// Do runs an arbitrary compiled step (union-by-update write-back, fixpoint
// snapshots) with a display label.
type Do struct {
	Label string
	Fn    func(ctx *Ctx) error
}

// Exec implements Stmt.
func (s *Do) Exec(ctx *Ctx) error { return s.Fn(ctx) }

// String implements Stmt.
func (s *Do) String() string { return s.Label }

// ExitIf leaves the enclosing loop when the condition holds.
type ExitIf struct {
	Label string
	Cond  func(ctx *Ctx) (bool, error)
}

// Exec implements Stmt (evaluated by Loop).
func (s *ExitIf) Exec(ctx *Ctx) error { return nil }

// String implements Stmt.
func (s *ExitIf) String() string { return "exit when " + s.Label }

// errExit signals loop exit through the interpreter.
type errExit struct{}

func (errExit) Error() string { return "psm: loop exit" }

// Loop runs its body until an ExitIf fires or MaxIter is reached
// (0 = unbounded, the engines' default).
type Loop struct {
	Body    []Stmt
	MaxIter int
}

// Exec implements Stmt. The loop is a cooperative checkpoint site: the
// statement's governor is consulted at every iteration boundary (the coarse
// CheckStatement, which also audits the temp-table memory footprint) and
// before every statement, so a cancelled or over-budget run stops within
// one statement rather than finishing the loop.
//
// The loop is also the observability subsystem's iteration clock: with a
// sink attached it emits one "iteration" span per completed iteration, and
// with ctx.Stats attached it times every body statement. Unobserved runs
// pay one pointer check per iteration and none per tuple.
func (s *Loop) Exec(ctx *Ctx) error {
	observed := ctx.Eng.Observing()
	for iter := 1; s.MaxIter <= 0 || iter <= s.MaxIter; iter++ {
		ctx.Iteration = iter
		var iterStart time.Time
		if observed {
			iterStart = time.Now()
		}
		if err := ctx.Eng.CheckStatement(); err != nil {
			return err
		}
		for _, st := range s.Body {
			if ex, ok := st.(*ExitIf); ok {
				stop, err := ex.Cond(ctx)
				if err != nil {
					return err
				}
				if stop {
					return nil
				}
				continue
			}
			if err := ctx.Eng.Gov().Check(); err != nil {
				return err
			}
			// An iteration counts once it does real work; an exit condition
			// firing first leaves the count at the previous iteration.
			if ctx.Stats != nil {
				ctx.Stats.Iterations = iter
			}
			if err := ctx.exec(st); err != nil {
				return err
			}
		}
		if observed {
			ctx.Eng.Emit(obs.Span{
				Op:        "iteration",
				Note:      fmt.Sprintf("psm loop iteration %d", iter),
				Iteration: iter,
				Start:     iterStart,
				Dur:       time.Since(iterStart),
			})
		}
	}
	return nil
}

// String implements Stmt.
func (s *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop (maxrecursion %d)\n", s.MaxIter)
	for _, st := range s.Body {
		b.WriteString("    " + st.String() + "\n")
	}
	b.WriteString("  end loop")
	return b.String()
}

// Proc is a stored procedure: the compiled form of one WITH+ query.
type Proc struct {
	Name  string
	Steps []Stmt
}

// Call executes the procedure on an engine. A failed or cancelled call
// drops every temp table it created before returning — the procedure's
// working state must not outlive an aborted run.
func (p *Proc) Call(eng *engine.Engine) error {
	return p.call(eng, nil)
}

// CallWithStats executes the procedure while timing every statement,
// returning the accumulated per-statement stats (also on error, for
// partial-execution diagnostics). The EXPLAIN ANALYZE entry point.
func (p *Proc) CallWithStats(eng *engine.Engine) (*ProcStats, error) {
	stats := NewProcStats()
	return stats, p.call(eng, stats)
}

func (p *Proc) call(eng *engine.Engine, stats *ProcStats) error {
	ctx := &Ctx{Eng: eng, Conds: map[string]bool{}, Stats: stats}
	for _, s := range p.Steps {
		if err := ctx.exec(s); err != nil {
			ctx.dropCreated()
			return err
		}
	}
	return nil
}

// dropCreated removes the call's temp tables, tolerating tables already
// dropped by the procedure itself. Drop failures are ignored: the catalog
// removes the name even when releasing storage fails, which is the
// debris-free invariant the fault sweep asserts.
func (c *Ctx) dropCreated() {
	for _, name := range c.created {
		if c.Eng.Cat.Has(name) {
			_ = c.Eng.Cat.Drop(name)
		}
	}
}

// String renders the procedure body (the shape of Algorithm 1's output).
func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "create procedure %s as begin\n", p.Name)
	for _, s := range p.Steps {
		b.WriteString("  " + s.String() + "\n")
	}
	b.WriteString("end")
	return b.String()
}

// StringWithStats renders the procedure annotated with the execution stats
// of a CallWithStats run: each statement line carries its execution count,
// accumulated rows, and wall time, and the loop header reports how many
// iterations actually ran.
func (p *Proc) StringWithStats(ps *ProcStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "create procedure %s as begin\n", p.Name)
	for _, s := range p.Steps {
		b.WriteString("  " + stmtStringWithStats(s, ps) + "\n")
	}
	b.WriteString("end")
	return b.String()
}

func stmtStringWithStats(s Stmt, ps *ProcStats) string {
	if l, ok := s.(*Loop); ok {
		var b strings.Builder
		fmt.Fprintf(&b, "loop (maxrecursion %d, ran %d iterations)\n", l.MaxIter, ps.Iterations)
		for _, st := range l.Body {
			b.WriteString("    " + st.String() + annotFor(st, ps) + "\n")
		}
		b.WriteString("  end loop")
		return b.String()
	}
	return s.String() + annotFor(s, ps)
}

// annotFor suppresses annotation on exit conditions (evaluated inline by
// the loop, not timed as statements).
func annotFor(s Stmt, ps *ProcStats) string {
	if _, ok := s.(*ExitIf); ok {
		return ""
	}
	return ps.annotate(s)
}
