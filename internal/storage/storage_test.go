package storage

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestCodecRoundTrip(t *testing.T) {
	tuples := []relation.Tuple{
		{value.Int(42), value.Float(3.14), value.Str("hello"), value.Bool(true), value.Null},
		{},
		{value.Str("")},
		{value.Int(-1), value.Int(math.MaxInt64), value.Int(math.MinInt64)},
		{value.Float(math.Inf(1)), value.Float(math.Inf(-1))},
	}
	var buf []byte
	for _, in := range tuples {
		buf = EncodeTuple(buf[:0], in)
		out, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !out.Equal(in) {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		in := relation.Tuple{value.Int(i), value.Float(fl), value.Str(s), value.Bool(b), value.Null}
		buf := EncodeTuple(nil, in)
		out, _, err := DecodeTuple(buf)
		if err != nil {
			return false
		}
		// NaN breaks Equal; compare bits for the float slot.
		if math.IsNaN(fl) {
			return math.IsNaN(out[1].F)
		}
		return out.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecCorruptInput(t *testing.T) {
	good := EncodeTuple(nil, relation.Tuple{value.Int(1), value.Str("abc")})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeTuple(good[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("empty input not detected")
	}
	bad := append([]byte{}, good...)
	bad[1] = 200 // invalid kind byte
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Error("invalid kind not detected")
	}
}

func TestPageInsertAndRead(t *testing.T) {
	var p Page
	p.Reset()
	if p.NumSlots() != 0 {
		t.Fatal("fresh page not empty")
	}
	recs := [][]byte{[]byte("alpha"), []byte("b"), make([]byte, 100)}
	for i, r := range recs {
		slot, ok := p.Insert(r)
		if !ok || slot != i {
			t.Fatalf("insert %d failed (slot=%d ok=%v)", i, slot, ok)
		}
	}
	for i, r := range recs {
		got, err := p.Record(i)
		if err != nil || string(got) != string(r) {
			t.Errorf("record %d mismatch: %q vs %q (%v)", i, got, r, err)
		}
	}
	if _, err := p.Record(3); err == nil {
		t.Error("out-of-range slot should error")
	}
	if _, err := p.Record(-1); err == nil {
		t.Error("negative slot should error")
	}
}

func TestPageFillsUp(t *testing.T) {
	var p Page
	p.Reset()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		n++
	}
	// 8192 bytes / (1000+4 slot) ≈ 8 records.
	if n != 8 {
		t.Errorf("page held %d 1000-byte records, want 8", n)
	}
	if _, ok := p.Insert([]byte("x")); !ok {
		t.Error("small record should still fit after big ones stop fitting")
	}
}

func TestPageRejectsOversized(t *testing.T) {
	var p Page
	p.Reset()
	if _, ok := p.Insert(make([]byte, PageSize)); ok {
		t.Error("page-sized record must not fit (header+slot overhead)")
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	src := make([]byte, PageSize)
	src[0], src[PageSize-1] = 0xAB, 0xCD
	if err := d.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, PageSize)
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0xAB || dst[PageSize-1] != 0xCD {
		t.Error("disk round trip corrupted data")
	}
	if err := d.Read(PageID(999), dst); err == nil {
		t.Error("read of unallocated page should error")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Errorf("counters: reads=%d writes=%d", d.Reads, d.Writes)
	}
	d.Free(id)
	if d.NumPages() != 0 {
		t.Error("free should release page")
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		id, p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Insert([]byte{byte(i + 1)})
		if err := bp.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Pool capacity 2, so page 0 must have been evicted and written back.
	p, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(0)
	if err != nil || rec[0] != 1 {
		t.Errorf("evicted page lost data: %v %v", rec, err)
	}
	bp.Unpin(ids[0], false)
	if bp.Misses == 0 {
		t.Error("expected at least one miss after eviction")
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 1)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	// Page is still pinned; a second page cannot be placed.
	if _, _, err := bp.NewPage(); err == nil {
		t.Error("expected pool-exhausted error while all frames pinned")
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bp.NewPage(); err != nil {
		t.Errorf("after unpin, new page should fit: %v", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 2)
	if err := bp.Unpin(PageID(5), false); err == nil {
		t.Error("unpin of unfetched page should error")
	}
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	if err := bp.Unpin(id, false); err == nil {
		t.Error("unpin underflow should error")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4)
	id, p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Insert([]byte("persist"))
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Verify on-disk image directly.
	raw := make([]byte, PageSize)
	if err := d.Read(id, raw); err != nil {
		t.Fatal(err)
	}
	var fresh Page
	fresh.SetBytes(raw)
	rec, err := fresh.Record(0)
	if err != nil || string(rec) != "persist" {
		t.Errorf("flushed page content: %q %v", rec, err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	w := NewWAL()
	msgs := []string{"one", "two", "three"}
	for _, m := range msgs {
		w.AppendInsert("e", []byte(m))
	}
	w.Sync()
	var got []Record
	if err := w.ReplayRecords(func(r Record) { got = append(got, r) }); err != nil {
		t.Fatalf("replay reported corruption: %v", err)
	}
	if len(got) != 3 || string(got[0].Payload) != "one" || string(got[2].Payload) != "three" {
		t.Errorf("replay = %v", got)
	}
	for i, r := range got {
		if r.Op != OpInsert || r.Table != "e" {
			t.Errorf("record %d: op=%v table=%q", i, r.Op, r.Table)
		}
	}
	if w.Records != 3 || w.Syncs != 1 || w.Bytes == 0 {
		t.Errorf("counters: %+v", w)
	}
	w.Truncate()
	if w.Records != 0 || w.Bytes != 0 {
		t.Error("truncate should reset counters")
	}
}

func TestWALCommitMarkers(t *testing.T) {
	w := NewWAL()
	w.AppendCommit() // nothing pending: elided
	if w.Commits != 0 || w.Records != 0 {
		t.Fatalf("empty commit not elided: %+v", w)
	}
	w.AppendInsert("e", []byte("x"))
	w.AppendCommit()
	w.AppendCommit() // second marker in a row: elided again
	if w.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", w.Commits)
	}
	var ops []Op
	if err := w.ReplayRecords(func(r Record) { ops = append(ops, r.Op) }); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0] != OpInsert || ops[1] != OpCommit {
		t.Errorf("ops = %v", ops)
	}
	// Notes are cost-accounting only: they never arm a commit marker.
	w.AppendNote([]byte("undo image"))
	w.AppendCommit()
	if w.Commits != 1 {
		t.Error("note-only statement must not produce a commit marker")
	}
}

func TestWALSnapshotLoadRoundTrip(t *testing.T) {
	w := NewWAL()
	w.AppendCreate("v", []byte{0})
	w.AppendInsert("v", []byte("t1"))
	w.AppendCommit()
	img := w.Snapshot()
	w2 := NewWAL()
	w2.Load(img)
	if w2.Records != 3 {
		t.Fatalf("loaded Records = %d, want 3", w2.Records)
	}
	var got []Op
	if err := w2.ReplayRecords(func(r Record) { got = append(got, r.Op) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != OpCreate || got[2] != OpCommit {
		t.Errorf("ops = %v", got)
	}
}

func TestWALDetectsBitFlip(t *testing.T) {
	w := NewWAL()
	w.AppendInsert("e", []byte("aaaa"))
	w.AppendInsert("e", []byte("bbbb"))
	w.AppendInsert("e", []byte("cccc"))
	// Flip one payload bit in the middle record.
	frameLen := len(w.buf) / 3
	w.buf[frameLen+frameLen/2] ^= 0x01
	var seen int
	err := w.Replay(func([]byte) { seen++ })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Record != 1 {
		t.Errorf("corruption located at record %d, want 1", ce.Record)
	}
	if ce.Offset != int64(frameLen) {
		t.Errorf("corruption located at offset %d, want %d", ce.Offset, frameLen)
	}
	if seen != 1 {
		t.Errorf("replay delivered %d records before the bad frame, want 1", seen)
	}
}

func TestWALDetectsTruncation(t *testing.T) {
	w := NewWAL()
	w.AppendInsert("e", []byte("aaaa"))
	w.AppendInsert("e", []byte("bbbb"))
	whole := w.Snapshot()
	frameLen := len(whole) / 2
	// Every proper prefix that cuts into the second frame must locate the
	// tear at record 1 and still deliver the intact first record.
	for cut := frameLen + 1; cut < len(whole); cut++ {
		w2 := NewWAL()
		w2.Load(whole[:cut])
		var seen int
		err := w2.Replay(func([]byte) { seen++ })
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut %d: want *CorruptError, got %v", cut, err)
		}
		if ce.Record != 1 || ce.Offset != int64(frameLen) {
			t.Errorf("cut %d: located record %d offset %d, want 1/%d", cut, ce.Record, ce.Offset, frameLen)
		}
		if seen != 1 {
			t.Errorf("cut %d: delivered %d intact records, want 1", cut, seen)
		}
	}
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	sch := schema.Schema{
		{Name: "src", Type: value.KindInt},
		{Name: "rank", Type: value.KindFloat},
		{Name: "label", Type: value.KindString},
	}
	buf := EncodeSchema(nil, sch)
	out, err := DecodeSchema(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Name != "src" || out[2].Type != value.KindString {
		t.Errorf("round trip = %v", out)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeSchema(buf[:cut]); err == nil {
			t.Errorf("schema truncation at %d not detected", cut)
		}
	}
}

func TestFaultPlanModes(t *testing.T) {
	// FailAt: exactly one fault at the scripted index, shared across stores.
	plan := &FaultPlan{FailAt: 3}
	a := &FaultyStore{Inner: NewMemStore(), Plan: plan}
	b := &FaultyStore{Inner: NewMemStore(), Plan: plan}
	tu := relation.Tuple{value.Int(1)}
	if err := a.Insert(tu); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(tu); err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(tu); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 should fault, got %v", err)
	}
	if err := a.Insert(tu); err != nil {
		t.Fatalf("op 4 should pass, got %v", err)
	}
	if plan.Ops() != 4 || plan.Injected() != 1 {
		t.Errorf("ops=%d injected=%d", plan.Ops(), plan.Injected())
	}

	// EveryNth.
	nth := &FaultyStore{Inner: NewMemStore(), Plan: &FaultPlan{EveryNth: 2}}
	var faults int
	for i := 0; i < 10; i++ {
		if err := nth.Insert(tu); err != nil {
			faults++
		}
	}
	if faults != 5 {
		t.Errorf("every-2nd plan injected %d of 10, want 5", faults)
	}

	// Transient faults match both sentinels.
	tr := &FaultyStore{Inner: NewMemStore(), Plan: &FaultPlan{FailAt: 1, Transient: true}}
	err := tr.Insert(tu)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("transient fault must match both sentinels: %v", err)
	}

	// Legacy FailAfter mode still works when Plan is nil.
	legacy := &FaultyStore{Inner: NewMemStore(), FailAfter: 1}
	if err := legacy.Insert(tu); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Insert(tu); !errors.Is(err, ErrInjected) {
		t.Fatalf("legacy mode lost: %v", err)
	}
}

func TestRetryingStoreAbsorbsTransients(t *testing.T) {
	plan := &FaultPlan{EveryNth: 2, Transient: true}
	s := &RetryingStore{
		Inner:  &FaultyStore{Inner: NewMemStore(), Plan: plan},
		Policy: RetryPolicy{Attempts: 3},
	}
	tu := relation.Tuple{value.Int(7)}
	for i := 0; i < 20; i++ {
		if err := s.Insert(tu); err != nil {
			t.Fatalf("insert %d not absorbed: %v", i, err)
		}
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	if plan.Injected() == 0 {
		t.Fatal("plan never injected — test proves nothing")
	}
	var n int
	if err := s.Scan(func(relation.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("scan visited %d, want 20", n)
	}

	// Hard faults are not retried away.
	hard := &RetryingStore{
		Inner:  &FaultyStore{Inner: NewMemStore(), Plan: &FaultPlan{FailAt: 1}},
		Policy: RetryPolicy{Attempts: 5},
	}
	if err := hard.Insert(tu); !errors.Is(err, ErrInjected) {
		t.Fatalf("hard fault should surface, got %v", err)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	calls := 0
	err := RetryPolicy{Attempts: 4, Backoff: time.Microsecond}.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Exhausted attempts return the transient error.
	calls = 0
	err = RetryPolicy{Attempts: 2}.Do(func() error { calls++; return ErrTransient })
	if !errors.Is(err, ErrTransient) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func storeRoundTrip(t *testing.T, s TupleStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var want []relation.Tuple
	for i := 0; i < 500; i++ {
		tu := relation.Tuple{value.Int(int64(i)), value.Float(rng.Float64()), value.Str("node")}
		want = append(want, tu)
		if err := s.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	i := 0
	err := s.Scan(func(tu relation.Tuple) bool {
		if !tu.Equal(want[i]) {
			t.Errorf("tuple %d mismatch: %v vs %v", i, tu, want[i])
		}
		i++
		return true
	})
	if err != nil || i != 500 {
		t.Fatalf("scan visited %d, err %v", i, err)
	}
	// Early-exit scan.
	i = 0
	s.Scan(func(relation.Tuple) bool { i++; return i < 10 })
	if i != 10 {
		t.Errorf("early-exit scan visited %d", i)
	}
	if err := s.Truncate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("truncate should empty the store")
	}
	n := 0
	s.Scan(func(relation.Tuple) bool { n++; return true })
	if n != 0 {
		t.Error("scan after truncate returned tuples")
	}
}

func TestMemStore(t *testing.T) { storeRoundTrip(t, NewMemStore()) }

func TestPagedStoreUnlogged(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 8)
	storeRoundTrip(t, NewPagedStore(bp, nil, "t"))
}

func TestPagedStoreLogged(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 8)
	w := NewWAL()
	s := NewPagedStore(bp, w, "t")
	storeRoundTrip(t, s)
	// 500 inserts plus the truncate at the end of the round trip.
	if w.Records != 501 {
		t.Errorf("WAL should hold one record per mutation, got %d", w.Records)
	}
	inserts, truncates := 0, 0
	if err := w.ReplayRecords(func(r Record) {
		if r.Table != "t" {
			t.Errorf("record names table %q", r.Table)
		}
		switch r.Op {
		case OpInsert:
			inserts++
		case OpTruncate:
			truncates++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if inserts != 500 || truncates != 1 {
		t.Errorf("inserts=%d truncates=%d", inserts, truncates)
	}
}

func TestPagedStoreSurvivesEviction(t *testing.T) {
	// Tiny pool forces constant eviction; data must survive.
	bp := NewBufferPool(NewDisk(), 2)
	s := NewPagedStore(bp, nil, "t")
	for i := 0; i < 2000; i++ {
		if err := s.Insert(relation.Tuple{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	s.Scan(func(tu relation.Tuple) bool { sum += tu[0].AsInt(); return true })
	if want := int64(2000) * 1999 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if s.BytesUsed() == 0 {
		t.Error("paged store should report page bytes")
	}
	s.Truncate()
	if bp.Disk().NumPages() != 0 {
		t.Error("truncate should free pages on disk")
	}
}

func TestPagedStoreRejectsHugeTuple(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 2)
	s := NewPagedStore(bp, nil, "t")
	huge := relation.Tuple{value.Str(string(make([]byte, PageSize)))}
	if err := s.Insert(huge); err == nil {
		t.Error("oversized tuple should be rejected")
	}
}

func TestCodecHostileInputs(t *testing.T) {
	// Regressions found by fuzzing: huge arity and string-length varints
	// must be rejected before allocation, not trusted.
	hostile := [][]byte{
		[]byte("\xd7\xdd\x95\xb0:{\xff"), // arity 15670275799
		{1, byte(value.KindString), 0xfa, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0x7a}, // length overflows int
		{2, byte(value.KindInt)}, // arity beyond data
	}
	for i, data := range hostile {
		if _, _, err := DecodeTuple(data); err == nil {
			t.Errorf("hostile input %d accepted", i)
		}
	}
}

func TestWALHostileFrames(t *testing.T) {
	w := NewWAL()
	// A frame claiming a huge record length must fail replay, not panic.
	w.buf = []byte{0xfa, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0x7a, 1, 2, 3, 4}
	if err := w.Replay(func([]byte) {}); err == nil {
		t.Error("hostile frame accepted")
	}
	w.buf = []byte{5, 0, 0, 0} // length 5 but only a checksum left
	if err := w.Replay(func([]byte) {}); err == nil {
		t.Error("short frame accepted")
	}
}
