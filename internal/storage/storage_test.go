package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestCodecRoundTrip(t *testing.T) {
	tuples := []relation.Tuple{
		{value.Int(42), value.Float(3.14), value.Str("hello"), value.Bool(true), value.Null},
		{},
		{value.Str("")},
		{value.Int(-1), value.Int(math.MaxInt64), value.Int(math.MinInt64)},
		{value.Float(math.Inf(1)), value.Float(math.Inf(-1))},
	}
	var buf []byte
	for _, in := range tuples {
		buf = EncodeTuple(buf[:0], in)
		out, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !out.Equal(in) {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		in := relation.Tuple{value.Int(i), value.Float(fl), value.Str(s), value.Bool(b), value.Null}
		buf := EncodeTuple(nil, in)
		out, _, err := DecodeTuple(buf)
		if err != nil {
			return false
		}
		// NaN breaks Equal; compare bits for the float slot.
		if math.IsNaN(fl) {
			return math.IsNaN(out[1].F)
		}
		return out.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecCorruptInput(t *testing.T) {
	good := EncodeTuple(nil, relation.Tuple{value.Int(1), value.Str("abc")})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeTuple(good[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("empty input not detected")
	}
	bad := append([]byte{}, good...)
	bad[1] = 200 // invalid kind byte
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Error("invalid kind not detected")
	}
}

func TestPageInsertAndRead(t *testing.T) {
	var p Page
	p.Reset()
	if p.NumSlots() != 0 {
		t.Fatal("fresh page not empty")
	}
	recs := [][]byte{[]byte("alpha"), []byte("b"), make([]byte, 100)}
	for i, r := range recs {
		slot, ok := p.Insert(r)
		if !ok || slot != i {
			t.Fatalf("insert %d failed (slot=%d ok=%v)", i, slot, ok)
		}
	}
	for i, r := range recs {
		got, err := p.Record(i)
		if err != nil || string(got) != string(r) {
			t.Errorf("record %d mismatch: %q vs %q (%v)", i, got, r, err)
		}
	}
	if _, err := p.Record(3); err == nil {
		t.Error("out-of-range slot should error")
	}
	if _, err := p.Record(-1); err == nil {
		t.Error("negative slot should error")
	}
}

func TestPageFillsUp(t *testing.T) {
	var p Page
	p.Reset()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		n++
	}
	// 8192 bytes / (1000+4 slot) ≈ 8 records.
	if n != 8 {
		t.Errorf("page held %d 1000-byte records, want 8", n)
	}
	if _, ok := p.Insert([]byte("x")); !ok {
		t.Error("small record should still fit after big ones stop fitting")
	}
}

func TestPageRejectsOversized(t *testing.T) {
	var p Page
	p.Reset()
	if _, ok := p.Insert(make([]byte, PageSize)); ok {
		t.Error("page-sized record must not fit (header+slot overhead)")
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	src := make([]byte, PageSize)
	src[0], src[PageSize-1] = 0xAB, 0xCD
	if err := d.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, PageSize)
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0xAB || dst[PageSize-1] != 0xCD {
		t.Error("disk round trip corrupted data")
	}
	if err := d.Read(PageID(999), dst); err == nil {
		t.Error("read of unallocated page should error")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Errorf("counters: reads=%d writes=%d", d.Reads, d.Writes)
	}
	d.Free(id)
	if d.NumPages() != 0 {
		t.Error("free should release page")
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		id, p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Insert([]byte{byte(i + 1)})
		if err := bp.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Pool capacity 2, so page 0 must have been evicted and written back.
	p, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(0)
	if err != nil || rec[0] != 1 {
		t.Errorf("evicted page lost data: %v %v", rec, err)
	}
	bp.Unpin(ids[0], false)
	if bp.Misses == 0 {
		t.Error("expected at least one miss after eviction")
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 1)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	// Page is still pinned; a second page cannot be placed.
	if _, _, err := bp.NewPage(); err == nil {
		t.Error("expected pool-exhausted error while all frames pinned")
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bp.NewPage(); err != nil {
		t.Errorf("after unpin, new page should fit: %v", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 2)
	if err := bp.Unpin(PageID(5), false); err == nil {
		t.Error("unpin of unfetched page should error")
	}
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	if err := bp.Unpin(id, false); err == nil {
		t.Error("unpin underflow should error")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4)
	id, p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Insert([]byte("persist"))
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Verify on-disk image directly.
	raw := make([]byte, PageSize)
	if err := d.Read(id, raw); err != nil {
		t.Fatal(err)
	}
	var fresh Page
	fresh.SetBytes(raw)
	rec, err := fresh.Record(0)
	if err != nil || string(rec) != "persist" {
		t.Errorf("flushed page content: %q %v", rec, err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	w := NewWAL()
	msgs := []string{"one", "two", "three"}
	for _, m := range msgs {
		w.Append([]byte(m))
	}
	w.Sync()
	var got []string
	if !w.Replay(func(rec []byte) { got = append(got, string(rec)) }) {
		t.Fatal("replay reported corruption")
	}
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Errorf("replay = %v", got)
	}
	if w.Records != 3 || w.Syncs != 1 || w.Bytes == 0 {
		t.Errorf("counters: %+v", w)
	}
	w.Truncate()
	if w.Records != 0 || w.Bytes != 0 {
		t.Error("truncate should reset counters")
	}
}

func TestWALDetectsCorruption(t *testing.T) {
	w := NewWAL()
	w.Append([]byte("payload"))
	w.buf[len(w.buf)-1] ^= 0xFF
	if w.Replay(func([]byte) {}) {
		t.Error("corrupted record should fail replay")
	}
}

func storeRoundTrip(t *testing.T, s TupleStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var want []relation.Tuple
	for i := 0; i < 500; i++ {
		tu := relation.Tuple{value.Int(int64(i)), value.Float(rng.Float64()), value.Str("node")}
		want = append(want, tu)
		if err := s.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	i := 0
	err := s.Scan(func(tu relation.Tuple) bool {
		if !tu.Equal(want[i]) {
			t.Errorf("tuple %d mismatch: %v vs %v", i, tu, want[i])
		}
		i++
		return true
	})
	if err != nil || i != 500 {
		t.Fatalf("scan visited %d, err %v", i, err)
	}
	// Early-exit scan.
	i = 0
	s.Scan(func(relation.Tuple) bool { i++; return i < 10 })
	if i != 10 {
		t.Errorf("early-exit scan visited %d", i)
	}
	if err := s.Truncate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("truncate should empty the store")
	}
	n := 0
	s.Scan(func(relation.Tuple) bool { n++; return true })
	if n != 0 {
		t.Error("scan after truncate returned tuples")
	}
}

func TestMemStore(t *testing.T) { storeRoundTrip(t, NewMemStore()) }

func TestPagedStoreUnlogged(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 8)
	storeRoundTrip(t, NewPagedStore(bp, nil))
}

func TestPagedStoreLogged(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 8)
	w := NewWAL()
	s := NewPagedStore(bp, w)
	storeRoundTrip(t, s)
	if w.Records != 500 {
		t.Errorf("WAL should hold one record per insert, got %d", w.Records)
	}
}

func TestPagedStoreSurvivesEviction(t *testing.T) {
	// Tiny pool forces constant eviction; data must survive.
	bp := NewBufferPool(NewDisk(), 2)
	s := NewPagedStore(bp, nil)
	for i := 0; i < 2000; i++ {
		if err := s.Insert(relation.Tuple{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	s.Scan(func(tu relation.Tuple) bool { sum += tu[0].AsInt(); return true })
	if want := int64(2000) * 1999 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if s.BytesUsed() == 0 {
		t.Error("paged store should report page bytes")
	}
	s.Truncate()
	if bp.Disk().NumPages() != 0 {
		t.Error("truncate should free pages on disk")
	}
}

func TestPagedStoreRejectsHugeTuple(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 2)
	s := NewPagedStore(bp, nil)
	huge := relation.Tuple{value.Str(string(make([]byte, PageSize)))}
	if err := s.Insert(huge); err == nil {
		t.Error("oversized tuple should be rejected")
	}
}

func TestCodecHostileInputs(t *testing.T) {
	// Regressions found by fuzzing: huge arity and string-length varints
	// must be rejected before allocation, not trusted.
	hostile := [][]byte{
		[]byte("\xd7\xdd\x95\xb0:{\xff"), // arity 15670275799
		{1, byte(value.KindString), 0xfa, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0x7a}, // length overflows int
		{2, byte(value.KindInt)}, // arity beyond data
	}
	for i, data := range hostile {
		if _, _, err := DecodeTuple(data); err == nil {
			t.Errorf("hostile input %d accepted", i)
		}
	}
}

func TestWALHostileFrames(t *testing.T) {
	w := NewWAL()
	// A frame claiming a huge record length must fail replay, not panic.
	w.buf = []byte{0xfa, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0xd1, 0xb1, 0x7a, 1, 2, 3, 4}
	if w.Replay(func([]byte) {}) {
		t.Error("hostile frame accepted")
	}
	w.buf = []byte{5, 0, 0, 0} // length 5 but only a checksum left
	if w.Replay(func([]byte) {}) {
		t.Error("short frame accepted")
	}
}
