package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of a page in bytes.
const PageSize = 8192

// pageHeaderSize holds numSlots (2 bytes) and freeOffset (2 bytes).
const pageHeaderSize = 4

// slotSize holds offset (2 bytes) and length (2 bytes) per record.
const slotSize = 4

// Page is a slotted page: records grow from the header forward, the slot
// directory grows from the end backward.
//
//	[numSlots][freeOff][record0][record1]...  ...[slot1][slot0]
type Page struct {
	buf [PageSize]byte
}

// Reset makes the page empty.
func (p *Page) Reset() {
	binary.LittleEndian.PutUint16(p.buf[0:], 0)
	binary.LittleEndian.PutUint16(p.buf[2:], pageHeaderSize)
}

// NumSlots returns the number of records stored.
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[0:]))
}

func (p *Page) freeOff() int {
	return int(binary.LittleEndian.Uint16(p.buf[2:]))
}

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p *Page) FreeSpace() int {
	free := PageSize - slotSize*p.NumSlots() - p.freeOff() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores a record, returning its slot number, or false if the page is
// full. Records larger than the page are rejected.
func (p *Page) Insert(rec []byte) (int, bool) {
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	slot := p.NumSlots()
	off := p.freeOff()
	copy(p.buf[off:], rec)
	slotPos := PageSize - slotSize*(slot+1)
	binary.LittleEndian.PutUint16(p.buf[slotPos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[slotPos+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p.buf[0:], uint16(slot+1))
	binary.LittleEndian.PutUint16(p.buf[2:], uint16(off+len(rec)))
	return slot, true
}

// Record returns the bytes of the record in the given slot. The returned
// slice aliases page memory and must not be retained across page writes.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", slot, p.NumSlots())
	}
	slotPos := PageSize - slotSize*(slot+1)
	off := int(binary.LittleEndian.Uint16(p.buf[slotPos:]))
	l := int(binary.LittleEndian.Uint16(p.buf[slotPos+2:]))
	return p.buf[off : off+l], nil
}

// Bytes returns the raw page image.
func (p *Page) Bytes() []byte { return p.buf[:] }

// SetBytes overwrites the page image (used when reading from disk).
func (p *Page) SetBytes(b []byte) {
	copy(p.buf[:], b)
}
