package storage

import (
	"fmt"

	"repro/internal/relation"
)

// TupleStore is the physical storage behind a table. MemStore keeps tuples
// as Go values (an in-memory RDBMS / Oracle-AMM-style temp space);
// PagedStore serializes tuples into buffer-pool pages (a disk-based temp
// space), paying encode/decode and page-management costs on every access.
type TupleStore interface {
	// Insert appends one tuple.
	Insert(t relation.Tuple) error
	// Scan calls fn for every tuple until fn returns false.
	Scan(fn func(t relation.Tuple) bool) error
	// Len returns the number of stored tuples.
	Len() int
	// Truncate removes all tuples.
	Truncate() error
	// BytesUsed reports the storage footprint: resident pages for
	// PagedStore, an estimated heap footprint for MemStore. Either way it
	// feeds the resource governor's memory budget.
	BytesUsed() int64
}

// MemStore stores tuples in a slice.
type MemStore struct {
	tuples []relation.Tuple
	bytes  int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Insert implements TupleStore.
func (s *MemStore) Insert(t relation.Tuple) error {
	s.tuples = append(s.tuples, t)
	s.bytes += tupleFootprint(t)
	return nil
}

// tupleFootprint estimates a tuple's heap cost: 16 bytes per value slot
// (the Value struct's order of magnitude) plus string payloads — the same
// scale the engine charges for join intermediates, so the governor's
// MaxBytes compares like with like.
func tupleFootprint(t relation.Tuple) int64 {
	n := int64(len(t)) * 16
	for _, v := range t {
		n += int64(len(v.S))
	}
	return n
}

// Scan implements TupleStore.
func (s *MemStore) Scan(fn func(t relation.Tuple) bool) error {
	for _, t := range s.tuples {
		if !fn(t) {
			return nil
		}
	}
	return nil
}

// Len implements TupleStore.
func (s *MemStore) Len() int { return len(s.tuples) }

// Truncate implements TupleStore.
func (s *MemStore) Truncate() error {
	s.tuples = s.tuples[:0]
	s.bytes = 0
	return nil
}

// BytesUsed implements TupleStore.
func (s *MemStore) BytesUsed() int64 { return s.bytes }

// PagedStore stores tuples encoded into slotted pages managed by a buffer
// pool. An optional WAL receives one record per insert (base tables log;
// temporary tables bypass the redo log, as the paper notes all three RDBMSs
// do — but they still pay the page I/O).
type PagedStore struct {
	pool    *BufferPool
	wal     *WAL   // nil for non-logged tables
	name    string // table name stamped on WAL records (logged stores)
	pages   []PageID
	n       int
	scratch []byte
}

// NewPagedStore returns an empty paged store over pool. wal may be nil
// (unlogged temp storage); name identifies the table in WAL records and is
// ignored when wal is nil.
func NewPagedStore(pool *BufferPool, wal *WAL, name string) *PagedStore {
	return &PagedStore{pool: pool, wal: wal, name: name}
}

// Insert implements TupleStore.
func (s *PagedStore) Insert(t relation.Tuple) error {
	s.scratch = EncodeTuple(s.scratch[:0], t)
	rec := s.scratch
	if len(rec) > PageSize-pageHeaderSize-slotSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds page capacity", len(rec))
	}
	if s.wal != nil {
		s.wal.AppendInsert(s.name, rec)
	}
	if len(s.pages) > 0 {
		last := s.pages[len(s.pages)-1]
		p, err := s.pool.Fetch(last)
		if err != nil {
			return err
		}
		if _, ok := p.Insert(rec); ok {
			s.n++
			return s.pool.Unpin(last, true)
		}
		if err := s.pool.Unpin(last, false); err != nil {
			return err
		}
	}
	id, p, err := s.pool.NewPage()
	if err != nil {
		return err
	}
	if _, ok := p.Insert(rec); !ok {
		s.pool.Unpin(id, false)
		return fmt.Errorf("storage: fresh page rejected %d-byte record", len(rec))
	}
	s.pages = append(s.pages, id)
	s.n++
	return s.pool.Unpin(id, true)
}

// Scan implements TupleStore.
func (s *PagedStore) Scan(fn func(t relation.Tuple) bool) error {
	for _, id := range s.pages {
		p, err := s.pool.Fetch(id)
		if err != nil {
			return err
		}
		stop := false
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, err := p.Record(slot)
			if err != nil {
				s.pool.Unpin(id, false)
				return err
			}
			t, _, err := DecodeTuple(rec)
			if err != nil {
				s.pool.Unpin(id, false)
				return err
			}
			if !fn(t) {
				stop = true
				break
			}
		}
		if err := s.pool.Unpin(id, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Len implements TupleStore.
func (s *PagedStore) Len() int { return s.n }

// Truncate implements TupleStore. Logged stores record the truncation so
// recovery replays it in sequence with the inserts around it.
func (s *PagedStore) Truncate() error {
	for _, id := range s.pages {
		s.pool.Drop(id)
	}
	s.pages = nil
	s.n = 0
	if s.wal != nil {
		s.wal.AppendTruncate(s.name)
	}
	return nil
}

// BytesUsed implements TupleStore.
func (s *PagedStore) BytesUsed() int64 { return int64(len(s.pages)) * PageSize }
