// Package storage provides the disk-shaped substrate beneath base and
// temporary tables: a tuple codec, slotted pages, an LRU buffer pool over a
// simulated disk, and a write-ahead log.
//
// The substrate does real serialization and page management work so that the
// engine profiles reproduce the paper's I/O effects (temp-table logging,
// buffer pressure on large graphs) mechanically rather than with timers.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// EncodeTuple appends the binary encoding of t to dst and returns the
// extended slice. The format is self-describing: for each value a kind byte
// followed by the payload (8-byte fixed for numerics, length-prefixed for
// strings).
func EncodeTuple(dst []byte, t relation.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.K))
		switch v.K {
		case value.KindNull:
		case value.KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
		case value.KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case value.KindBool:
			dst = append(dst, byte(v.I))
		case value.KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// DecodeTuple decodes one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (relation.Tuple, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("storage: corrupt tuple header")
	}
	// Every encoded value takes at least one byte, so an arity beyond the
	// remaining input is corruption — checked before allocating, or a
	// hostile page image could demand an enormous tuple.
	if n > uint64(len(buf)-sz) {
		return nil, 0, fmt.Errorf("storage: corrupt tuple arity %d for %d bytes", n, len(buf)-sz)
	}
	off := sz
	t := make(relation.Tuple, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("storage: truncated tuple")
		}
		k := value.Kind(buf[off])
		off++
		switch k {
		case value.KindNull:
			t[i] = value.Null
		case value.KindInt:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated int")
			}
			t[i] = value.Int(int64(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case value.KindFloat:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated float")
			}
			t[i] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case value.KindBool:
			if off >= len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated bool")
			}
			t[i] = value.Bool(buf[off] != 0)
			off++
		case value.KindString:
			l, lsz := binary.Uvarint(buf[off:])
			// Check against the remaining length in uint64 space first: a
			// huge l would overflow int and slip past the bounds check.
			if lsz <= 0 || l > uint64(len(buf)-off-lsz) {
				return nil, 0, fmt.Errorf("storage: truncated string")
			}
			off += lsz
			t[i] = value.Str(string(buf[off : off+int(l)]))
			off += int(l)
		default:
			return nil, 0, fmt.Errorf("storage: unknown kind %d", k)
		}
	}
	return t, off, nil
}

// EncodeSchema appends the binary encoding of sch to dst: arity, then per
// column a kind byte and a length-prefixed bare name. Table qualifiers are
// not persisted — materialization re-qualifies with the table name.
func EncodeSchema(dst []byte, sch schema.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sch)))
	for _, c := range sch {
		dst = append(dst, byte(c.Type))
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
	}
	return dst
}

// DecodeSchema decodes one EncodeSchema image (used by WAL recovery to
// rebuild logged tables).
func DecodeSchema(buf []byte) (schema.Schema, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return nil, fmt.Errorf("storage: corrupt schema header")
	}
	off := sz
	sch := make(schema.Schema, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("storage: truncated schema column")
		}
		k := value.Kind(buf[off])
		off++
		l, lsz := binary.Uvarint(buf[off:])
		if lsz <= 0 || l > uint64(len(buf)-off-lsz) {
			return nil, fmt.Errorf("storage: truncated schema column name")
		}
		off += lsz
		sch[i] = schema.Column{Name: string(buf[off : off+int(l)]), Type: k}
		off += int(l)
	}
	return sch, nil
}
