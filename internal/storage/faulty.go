package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// ErrInjected is the failure FaultyStore returns.
var ErrInjected = fmt.Errorf("storage: injected fault")

// ErrTransient marks a fault that a retry may clear (a flaky device rather
// than a corrupt one). Retry policies match it with errors.Is.
var ErrTransient = errors.New("storage: transient fault")

// transientFault wraps ErrInjected so it matches both sentinels.
type transientFault struct{}

func (transientFault) Error() string { return "storage: injected fault (transient)" }
func (transientFault) Is(target error) bool {
	return target == ErrInjected || target == ErrTransient
}

// FaultPlan scripts fault injection across every store that shares it: one
// global operation counter, so "inject at operation index k" means the k-th
// storage operation anywhere in the engine — the knob the chaos sweep
// turns. The zero plan injects nothing and just counts. Counters are
// atomics; morsel-parallel statements may tick concurrently.
type FaultPlan struct {
	// FailAt injects one fault at exactly the FailAt-th operation
	// (1-based). 0 disables.
	FailAt int64
	// EveryNth injects a fault on every Nth operation. 0 disables.
	EveryNth int64
	// Transient makes injected faults retryable: the returned error
	// matches ErrTransient and the operation index is still consumed, so
	// an immediate retry of the same logical operation passes.
	Transient bool

	ops      atomic.Int64
	injected atomic.Int64
}

// Ops returns the operations observed so far.
func (p *FaultPlan) Ops() int64 { return p.ops.Load() }

// Injected returns the faults injected so far.
func (p *FaultPlan) Injected() int64 { return p.injected.Load() }

// tick consumes one operation index and returns the scripted fault, if any.
func (p *FaultPlan) tick() error {
	n := p.ops.Add(1)
	hit := (p.FailAt > 0 && n == p.FailAt) || (p.EveryNth > 0 && n%p.EveryNth == 0)
	if !hit {
		return nil
	}
	p.injected.Add(1)
	if p.Transient {
		return transientFault{}
	}
	return ErrInjected
}

// FaultyStore wraps a TupleStore with fault injection for exercising error
// paths in the catalog, engine, and PSM layers. Two modes:
//
//   - legacy: FailAfter > 0 and Plan == nil — every operation after the
//     first FailAfter successful ones fails;
//   - scripted: Plan != nil — faults follow the shared plan (fail-at-index,
//     every-Nth, transient), with one operation counter across all stores
//     sharing the plan.
type FaultyStore struct {
	Inner     TupleStore
	FailAfter int
	Plan      *FaultPlan
	ops       int
}

func (s *FaultyStore) tick() error {
	if s.Plan != nil {
		return s.Plan.tick()
	}
	s.ops++
	if s.ops > s.FailAfter {
		return ErrInjected
	}
	return nil
}

// Insert implements TupleStore.
func (s *FaultyStore) Insert(t relation.Tuple) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Insert(t)
}

// Scan implements TupleStore.
func (s *FaultyStore) Scan(fn func(t relation.Tuple) bool) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Scan(fn)
}

// Len implements TupleStore.
func (s *FaultyStore) Len() int { return s.Inner.Len() }

// Truncate implements TupleStore.
func (s *FaultyStore) Truncate() error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Truncate()
}

// BytesUsed implements TupleStore.
func (s *FaultyStore) BytesUsed() int64 { return s.Inner.BytesUsed() }

// RetryPolicy retries transient storage faults with exponential backoff.
type RetryPolicy struct {
	// Attempts is the total tries per operation (1 = no retry; 0 disables
	// the policy entirely).
	Attempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it. 0 retries immediately (the in-memory substrate has no
	// real device to wait for, so tests use 0).
	Backoff time.Duration
}

// Do runs fn, retrying while it fails with an error matching ErrTransient.
// The final error — transient or not — is returned as-is.
func (p RetryPolicy) Do(fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.Backoff
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = fn(); err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
	}
	return err
}

// RetryingStore wraps a TupleStore with a RetryPolicy, absorbing transient
// faults from the layer below (a FaultyStore in tests, a flaky device in
// the deployment story). Scan is retried whole: the inner scan either
// failed before its first callback or the callback positions are
// idempotent reads, and the wrapped stores re-iterate from the start.
type RetryingStore struct {
	Inner  TupleStore
	Policy RetryPolicy
}

// Insert implements TupleStore.
func (s *RetryingStore) Insert(t relation.Tuple) error {
	return s.Policy.Do(func() error { return s.Inner.Insert(t) })
}

// Scan implements TupleStore.
func (s *RetryingStore) Scan(fn func(t relation.Tuple) bool) error {
	return s.Policy.Do(func() error { return s.Inner.Scan(fn) })
}

// Len implements TupleStore.
func (s *RetryingStore) Len() int { return s.Inner.Len() }

// Truncate implements TupleStore.
func (s *RetryingStore) Truncate() error {
	return s.Policy.Do(func() error { return s.Inner.Truncate() })
}

// BytesUsed implements TupleStore.
func (s *RetryingStore) BytesUsed() int64 { return s.Inner.BytesUsed() }
