package storage

import (
	"fmt"

	"repro/internal/relation"
)

// FaultyStore wraps a TupleStore and starts failing after FailAfter
// successful operations — failure injection for exercising error paths in
// the catalog, engine, and PSM layers.
type FaultyStore struct {
	Inner     TupleStore
	FailAfter int
	ops       int
}

// ErrInjected is the failure FaultyStore returns.
var ErrInjected = fmt.Errorf("storage: injected fault")

func (s *FaultyStore) tick() error {
	s.ops++
	if s.ops > s.FailAfter {
		return ErrInjected
	}
	return nil
}

// Insert implements TupleStore.
func (s *FaultyStore) Insert(t relation.Tuple) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Insert(t)
}

// Scan implements TupleStore.
func (s *FaultyStore) Scan(fn func(t relation.Tuple) bool) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Scan(fn)
}

// Len implements TupleStore.
func (s *FaultyStore) Len() int { return s.Inner.Len() }

// Truncate implements TupleStore.
func (s *FaultyStore) Truncate() error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.Inner.Truncate()
}

// BytesUsed implements TupleStore.
func (s *FaultyStore) BytesUsed() int64 { return s.Inner.BytesUsed() }
