package storage

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// FuzzDecodeTuple: arbitrary bytes must decode or error, never panic, and
// valid encodings must round-trip.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(EncodeTuple(nil, relation.Tuple{value.Int(1), value.Str("x"), value.Null}))
	f.Add([]byte{0})
	f.Add([]byte{1, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tu, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Re-encode and re-decode: must be stable.
		enc := EncodeTuple(nil, tu)
		back, _, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(tu) {
			t.Fatalf("arity changed: %d vs %d", len(back), len(tu))
		}
	})
}
