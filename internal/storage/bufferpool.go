package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// PageID identifies a page on the simulated disk.
type PageID int64

// Disk is an in-memory page array standing in for the data files. Reads and
// writes copy full page images, which is the real work a disk-backed table
// performs (minus the seek time).
type Disk struct {
	mu     sync.Mutex
	pages  map[PageID][]byte
	nextID PageID

	Reads  int64 // page reads served
	Writes int64 // page writes performed
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{pages: make(map[PageID][]byte)}
}

// Allocate reserves a new zeroed page and returns its ID.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.pages[id] = make([]byte, PageSize)
	return id
}

// Read copies the page image into dst.
func (d *Disk) Read(id PageID, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(dst, p)
	d.Reads++
	return nil
}

// Write copies src onto the page image.
func (d *Disk) Write(id PageID, src []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(p, src)
	d.Writes++
	return nil
}

// Free releases a page.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pages, id)
}

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

type frame struct {
	id    PageID
	page  Page
	pins  int
	dirty bool
	lru   *list.Element
}

// BufferPool caches pages in a bounded number of frames with LRU eviction.
// Unpinned dirty pages are written back on eviction and on FlushAll.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds unpinned frames

	Hits   int64
	Misses int64
}

// NewBufferPool returns a pool of the given frame capacity over disk.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// NewPage allocates a fresh page on disk, pins it, and returns it reset.
func (bp *BufferPool) NewPage() (PageID, *Page, error) {
	id := bp.disk.Allocate()
	p, err := bp.Fetch(id)
	if err != nil {
		return 0, nil, err
	}
	p.Reset()
	bp.mu.Lock()
	bp.frames[id].dirty = true
	bp.mu.Unlock()
	return id, p, nil
}

// Fetch pins the page and returns it, reading from disk on a miss. Callers
// must Unpin when done.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.Hits++
		if f.pins == 0 && f.lru != nil {
			bp.lru.Remove(f.lru)
			f.lru = nil
		}
		f.pins++
		return &f.page, nil
	}
	bp.Misses++
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, pins: 1}
	if err := bp.disk.Read(id, f.page.Bytes()); err != nil {
		return nil, err
	}
	bp.frames[id] = f
	return &f.page, nil
}

// Unpin releases one pin; dirty marks the page as modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of unfetched page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin underflow on page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		f.lru = bp.lru.PushFront(f)
	}
	return nil
}

// evictLocked removes the least recently used unpinned frame, writing it
// back if dirty. Caller holds bp.mu.
func (bp *BufferPool) evictLocked() error {
	el := bp.lru.Back()
	if el == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", bp.capacity)
	}
	f := el.Value.(*frame)
	bp.lru.Remove(el)
	if f.dirty {
		if err := bp.disk.Write(f.id, f.page.Bytes()); err != nil {
			return err
		}
	}
	delete(bp.frames, f.id)
	return nil
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.Write(f.id, f.page.Bytes()); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Drop removes a page from the pool (without write-back) and frees it on
// disk; used by TRUNCATE/DROP of paged tables.
func (bp *BufferPool) Drop(id PageID) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		if f.lru != nil {
			bp.lru.Remove(f.lru)
		}
		delete(bp.frames, id)
	}
	bp.mu.Unlock()
	bp.disk.Free(id)
}
