package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// WAL is a write-ahead log. Records are framed with a length prefix and a
// checksum and accumulated in memory. Beyond reproducing the paper's "it
// still needs to log" cost (per-record encoding and copying), the log now
// carries enough structure to recover: every record is typed (insert,
// truncate, create, drop, commit marker, note), mutations name their table,
// and commit markers delimit the transactions engine.Recover replays —
// records after the last commit marker are a torn tail and are discarded.
type WAL struct {
	mu      sync.Mutex
	buf     []byte
	pending int64 // mutation records since the last commit marker
	Records int64
	Bytes   int64
	Syncs   int64
	Commits int64
}

// Op types a WAL record.
type Op byte

// The record types. Notes are cost-accounting payloads (undo images of
// row-at-a-time DML); recovery skips them.
const (
	OpInsert Op = iota + 1
	OpTruncate
	OpCreate
	OpDrop
	OpCommit
	OpNote
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpTruncate:
		return "truncate"
	case OpCreate:
		return "create"
	case OpDrop:
		return "drop"
	case OpCommit:
		return "commit"
	case OpNote:
		return "note"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Record is one decoded WAL record. Payload is the encoded tuple for
// OpInsert, the encoded schema for OpCreate, and opaque bytes for OpNote.
type Record struct {
	Op      Op
	Table   string
	Payload []byte
}

// CorruptError reports where log corruption was found: the index of the
// first bad record and its byte offset in the log image.
type CorruptError struct {
	Record int   // 0-based index of the corrupt record
	Offset int64 // byte offset of the corrupt frame
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: WAL corrupt at record %d (offset %d): %s", e.Record, e.Offset, e.Reason)
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{} }

// Counters returns the record/byte/sync/commit counts in one locked read.
// Use it instead of the exported fields whenever sessions may be appending
// concurrently; the bare fields are only safe to read quiesced.
func (w *WAL) Counters() (records, bytes, syncs, commits int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Records, w.Bytes, w.Syncs, w.Commits
}

// appendFrame frames and appends one record body.
func (w *WAL) appendFrame(rec []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rec)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, walSum(rec))
	w.buf = append(w.buf, rec...)
	w.Records++
	w.Bytes = int64(len(w.buf))
}

func walSum(rec []byte) uint32 {
	var sum uint32
	for _, b := range rec {
		sum = sum*31 + uint32(b)
	}
	return sum
}

// body builds a typed record body: op byte, then for table-scoped ops a
// length-prefixed table name, then the payload.
func body(op Op, table string, payload []byte) []byte {
	b := make([]byte, 0, 1+binary.MaxVarintLen64+len(table)+len(payload))
	b = append(b, byte(op))
	if op != OpCommit && op != OpNote {
		b = binary.AppendUvarint(b, uint64(len(table)))
		b = append(b, table...)
	}
	return append(b, payload...)
}

// AppendInsert logs one tuple insert (payload: EncodeTuple bytes) into table.
func (w *WAL) AppendInsert(table string, tuple []byte) {
	w.appendFrame(body(OpInsert, table, tuple))
	w.mu.Lock()
	w.pending++
	w.mu.Unlock()
}

// AppendTruncate logs a table truncation.
func (w *WAL) AppendTruncate(table string) {
	w.appendFrame(body(OpTruncate, table, nil))
	w.mu.Lock()
	w.pending++
	w.mu.Unlock()
}

// AppendCreate logs a logged table's creation (payload: EncodeSchema bytes).
func (w *WAL) AppendCreate(table string, sch []byte) {
	w.appendFrame(body(OpCreate, table, sch))
	w.mu.Lock()
	w.pending++
	w.mu.Unlock()
}

// AppendDrop logs a logged table's drop.
func (w *WAL) AppendDrop(table string) {
	w.appendFrame(body(OpDrop, table, nil))
	w.mu.Lock()
	w.pending++
	w.mu.Unlock()
}

// AppendNote logs an opaque cost-accounting record (e.g. a MERGE undo
// image). Recovery skips notes; they exist for their logging cost and
// volume counters.
func (w *WAL) AppendNote(payload []byte) {
	w.appendFrame(body(OpNote, "", payload))
}

// AppendCommit appends a commit marker and counts a log flush (Sync),
// delimiting the mutations recovery may replay. It is elided when no
// mutation record has been logged since the previous marker, so statement
// boundaries that touched only unlogged (temporary) tables cost nothing.
func (w *WAL) AppendCommit() {
	w.mu.Lock()
	if w.pending == 0 {
		w.mu.Unlock()
		return
	}
	w.pending = 0
	w.mu.Unlock()
	w.appendFrame(body(OpCommit, "", nil))
	w.mu.Lock()
	w.Commits++
	w.Syncs++
	w.mu.Unlock()
}

// Sync simulates a log flush boundary without a commit marker.
func (w *WAL) Sync() {
	w.mu.Lock()
	w.Syncs++
	w.mu.Unlock()
}

// Truncate discards the log contents (after a checkpoint).
func (w *WAL) Truncate() {
	w.mu.Lock()
	w.buf = w.buf[:0]
	w.pending = 0
	w.Records = 0
	w.Bytes = 0
	w.mu.Unlock()
}

// Snapshot returns a copy of the framed log image — the bytes that would
// survive a crash. Load the copy into a fresh WAL to simulate restart.
func (w *WAL) Snapshot() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Load replaces the log contents with a (possibly torn or corrupt) image,
// as read back after a crash. Counters reflect the readable prefix.
func (w *WAL) Load(img []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf[:0], img...)
	w.Bytes = int64(len(w.buf))
	w.pending = 0
	// Count the well-formed frames so Records stays meaningful.
	n := int64(0)
	_ = replayFrames(w.buf, func(rec []byte) { n++ })
	w.Records = n
}

// Replay iterates over every framed record, verifying checksums, and calls
// fn with each record body. It stops at the first bad frame and returns a
// *CorruptError locating it (fn has already seen the intact prefix); a
// fully intact log returns nil.
func (w *WAL) Replay(fn func(rec []byte)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return replayFrames(w.buf, fn)
}

func replayFrames(buf []byte, fn func(rec []byte)) error {
	offset := int64(0)
	for idx := 0; len(buf) > 0; idx++ {
		l, n := binary.Uvarint(buf)
		// Bounds-check in uint64 space: a corrupt huge length must not
		// overflow the int arithmetic (same class as the codec's check).
		if n <= 0 {
			return &CorruptError{Record: idx, Offset: offset, Reason: "bad length varint"}
		}
		if n+4 > len(buf) || l > uint64(len(buf)-n-4) {
			return &CorruptError{Record: idx, Offset: offset, Reason: fmt.Sprintf("frame of %d bytes exceeds remaining log", l)}
		}
		buf = buf[n:]
		want := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		rec := buf[:l]
		if walSum(rec) != want {
			return &CorruptError{Record: idx, Offset: offset, Reason: "checksum mismatch"}
		}
		fn(rec)
		buf = buf[l:]
		offset += int64(n) + 4 + int64(l)
	}
	return nil
}

// ReplayRecords decodes every record into its typed form. Framing errors
// surface as *CorruptError exactly as Replay reports them; a record body
// that cannot be decoded is reported the same way. Payload slices are
// copied, so callers may retain them across a later Truncate.
func (w *WAL) ReplayRecords(fn func(r Record)) error {
	idx := -1
	var bad *CorruptError
	err := w.Replay(func(rec []byte) {
		idx++
		if bad != nil {
			return
		}
		r, ok := decodeRecord(rec)
		if !ok {
			bad = &CorruptError{Record: idx, Reason: "undecodable record body"}
			return
		}
		fn(r)
	})
	if err != nil {
		return err
	}
	if bad != nil {
		return bad
	}
	return nil
}

func decodeRecord(rec []byte) (Record, bool) {
	if len(rec) == 0 {
		return Record{}, false
	}
	op := Op(rec[0])
	rec = rec[1:]
	switch op {
	case OpCommit:
		return Record{Op: op}, true
	case OpNote:
		return Record{Op: op, Payload: append([]byte(nil), rec...)}, true
	case OpInsert, OpTruncate, OpCreate, OpDrop:
		l, n := binary.Uvarint(rec)
		if n <= 0 || l > uint64(len(rec)-n) {
			return Record{}, false
		}
		table := string(rec[n : n+int(l)])
		rest := rec[n+int(l):]
		return Record{Op: op, Table: table, Payload: append([]byte(nil), rest...)}, true
	}
	return Record{}, false
}
