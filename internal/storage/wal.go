package storage

import (
	"encoding/binary"
	"sync"
)

// WAL is a write-ahead log. Records are framed with a length prefix and a
// checksum and accumulated in memory; the point of the WAL in this
// reproduction is its *cost* (per-record encoding and copying, the work the
// paper's "it still needs to log" remark refers to), plus enough structure
// to verify framing in tests.
type WAL struct {
	mu      sync.Mutex
	buf     []byte
	Records int64
	Bytes   int64
	Syncs   int64
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{} }

// Append frames and appends one record.
func (w *WAL) Append(rec []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rec)))
	var sum uint32
	for _, b := range rec {
		sum = sum*31 + uint32(b)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, sum)
	w.buf = append(w.buf, rec...)
	w.Records++
	w.Bytes = int64(len(w.buf))
}

// Sync simulates a log flush boundary (a transaction commit).
func (w *WAL) Sync() {
	w.mu.Lock()
	w.Syncs++
	w.mu.Unlock()
}

// Truncate discards the log contents (after a checkpoint).
func (w *WAL) Truncate() {
	w.mu.Lock()
	w.buf = w.buf[:0]
	w.Records = 0
	w.Bytes = 0
	w.mu.Unlock()
}

// Replay iterates over every framed record, verifying checksums, and calls
// fn with each record body. It returns false if a frame is corrupt.
func (w *WAL) Replay(fn func(rec []byte)) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := w.buf
	for len(buf) > 0 {
		l, n := binary.Uvarint(buf)
		// Bounds-check in uint64 space: a corrupt huge length must not
		// overflow the int arithmetic (same class as the codec's check).
		if n <= 0 || n+4 > len(buf) || l > uint64(len(buf)-n-4) {
			return false
		}
		buf = buf[n:]
		want := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		rec := buf[:l]
		var sum uint32
		for _, b := range rec {
			sum = sum*31 + uint32(b)
		}
		if sum != want {
			return false
		}
		fn(rec)
		buf = buf[l:]
	}
	return true
}
