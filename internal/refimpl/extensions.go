package refimpl

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// This file covers the remaining rows of the paper's Table 2:
// Markov-Clustering, K-truss, and Graph-Bisimulation.

// MarkovClustering runs MCL with expansion (matrix squaring), inflation
// with exponent r, pruning below eps, for at most maxIters rounds, on the
// column-normalized adjacency matrix with self-loops. It returns a cluster
// label per node (the attractor row that claims the node's column).
// Dense implementation intended for small graphs.
func MarkovClustering(g *graph.Graph, r float64, eps float64, maxIters int) []int {
	n := g.N
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1 // self loops keep the chain aperiodic (standard MCL)
	}
	for _, e := range g.Edges {
		m[e.F][e.T] = 1
		m[e.T][e.F] = 1 // MCL operates on the undirected structure
	}
	normalizeCols(m)
	for it := 0; it < maxIters; it++ {
		// Expansion: M ← M·M.
		nx := make([][]float64, n)
		for i := range nx {
			nx[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if m[i][k] == 0 {
					continue
				}
				mik := m[i][k]
				for j := 0; j < n; j++ {
					if m[k][j] != 0 {
						nx[i][j] += mik * m[k][j]
					}
				}
			}
		}
		// Inflation: entrywise power r, then column normalization and
		// pruning.
		for i := range nx {
			for j := range nx[i] {
				if nx[i][j] > 0 {
					nx[i][j] = math.Pow(nx[i][j], r)
				}
			}
		}
		normalizeCols(nx)
		changed := false
		for i := range nx {
			for j := range nx[i] {
				if nx[i][j] < eps {
					nx[i][j] = 0
				}
				if math.Abs(nx[i][j]-m[i][j]) > 1e-9 {
					changed = true
				}
			}
		}
		normalizeCols(nx)
		m = nx
		if !changed {
			break
		}
	}
	// Cluster per column: the row holding the column's maximum mass.
	out := make([]int, n)
	for j := 0; j < n; j++ {
		best, bestV := j, -1.0
		for i := 0; i < n; i++ {
			if m[i][j] > bestV {
				best, bestV = i, m[i][j]
			}
		}
		out[j] = best
	}
	return out
}

func normalizeCols(m [][]float64) {
	n := len(m)
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += m[i][j]
		}
		if sum == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			m[i][j] /= sum
		}
	}
}

// KTruss returns, per undirected edge (canonical a<b key a<<32|b), whether
// it survives k-truss peeling: every remaining edge must participate in at
// least k-2 triangles among remaining edges.
func KTruss(g *graph.Graph, k int) map[int64]bool {
	adj := make(map[int32]map[int32]bool, g.N)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[int32]bool{}
		}
		adj[a][b] = true
	}
	for _, e := range g.Edges {
		addEdge(e.F, e.T)
		addEdge(e.T, e.F)
	}
	need := k - 2
	for {
		removed := false
		type edge struct{ a, b int32 }
		var doomed []edge
		for a, ns := range adj {
			for b := range ns {
				if a >= b {
					continue
				}
				// Triangle support: common neighbours of a and b.
				small, large := adj[a], adj[b]
				if len(small) > len(large) {
					small, large = large, small
				}
				support := 0
				for c := range small {
					if large[c] {
						support++
					}
				}
				if support < need {
					doomed = append(doomed, edge{a, b})
				}
			}
		}
		for _, e := range doomed {
			delete(adj[e.a], e.b)
			delete(adj[e.b], e.a)
			removed = true
		}
		if !removed {
			break
		}
	}
	out := map[int64]bool{}
	for a, ns := range adj {
		for b := range ns {
			if a < b {
				out[int64(a)<<32|int64(b)] = true
			}
		}
	}
	return out
}

// Bisimulation computes the maximal graph bisimulation partition by
// signature refinement: two nodes stay in the same block iff they have the
// same label and the same set of successor blocks. Labels default to a
// single block when g.Labels is nil. Returns a canonical block id per node
// (the smallest node ID in the block) and the number of refinement rounds.
func Bisimulation(g *graph.Graph) ([]int64, int) {
	out := graph.BuildCSR(g, false)
	block := make([]int64, g.N)
	for i := range block {
		if g.Labels != nil {
			block[i] = int64(g.Labels[i])
		}
	}
	canonicalize(block)
	rounds := 0
	for {
		rounds++
		type sigKey struct {
			own  int64
			succ string
		}
		sigs := make(map[sigKey][]int32)
		order := make([]sigKey, 0)
		for v := int32(0); int(v) < g.N; v++ {
			succ := map[int64]bool{}
			for _, u := range out.Neighbors(v) {
				succ[block[u]] = true
			}
			keys := make([]int64, 0, len(succ))
			for b := range succ {
				keys = append(keys, b)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			var sb []byte
			for _, b := range keys {
				for s := 0; s < 8; s++ {
					sb = append(sb, byte(b>>(8*s)))
				}
			}
			key := sigKey{own: block[v], succ: string(sb)}
			if _, ok := sigs[key]; !ok {
				order = append(order, key)
			}
			sigs[key] = append(sigs[key], v)
		}
		next := make([]int64, g.N)
		for _, key := range order {
			members := sigs[key]
			id := int64(members[0])
			for _, v := range members {
				if int64(v) < id {
					id = int64(v)
				}
			}
			for _, v := range members {
				next[v] = id
			}
		}
		same := true
		for i := range block {
			if block[i] != next[i] {
				same = false
				break
			}
		}
		block = next
		if same {
			return block, rounds
		}
	}
}

// canonicalize rewrites block labels to the smallest member ID per block.
func canonicalize(block []int64) {
	min := map[int64]int64{}
	for i, b := range block {
		if cur, ok := min[b]; !ok || int64(i) < cur {
			min[b] = int64(i)
		}
	}
	for i, b := range block {
		block[i] = min[b]
	}
}
