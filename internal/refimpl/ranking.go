package refimpl

import (
	"math"

	"repro/internal/graph"
)

// PageRank runs the paper's fixed-iteration PageRank (Eq. (9)):
// vw ← c · Σ_in (vw/outdeg) + (1−c)/n, starting from the uniform vector.
func PageRank(g *graph.Graph, c float64, iters int) []float64 {
	n := g.N
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	outdeg := g.OutDegrees()
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		base := (1 - c) / float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			if outdeg[e.F] > 0 {
				next[e.T] += c * pr[e.F] / float64(outdeg[e.F])
			}
		}
		pr, next = next, pr
	}
	return pr
}

// RWR runs Random-Walk-with-Restart (Eq. (10)): vw ← c · Σ_in (vw/outdeg)
// + (1−c) · restart, where restart is the restart distribution P.
func RWR(g *graph.Graph, c float64, restart []float64, iters int) []float64 {
	n := g.N
	v := make([]float64, n)
	copy(v, restart)
	outdeg := g.OutDegrees()
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = (1 - c) * restart[i]
		}
		for _, e := range g.Edges {
			if outdeg[e.F] > 0 {
				next[e.T] += c * v[e.F] / float64(outdeg[e.F])
			}
		}
		v, next = next, v
	}
	return v
}

// HITS runs the paper's HITS (Eq. (12)): per iteration, authority from
// previous hubs, hubs from new authorities, then joint 2-norm
// normalization. Returns (hub, authority).
func HITS(g *graph.Graph, iters int) (hub, auth []float64) {
	n := g.N
	hub = make([]float64, n)
	auth = make([]float64, n)
	for i := 0; i < n; i++ {
		hub[i], auth[i] = 1, 1
	}
	for it := 0; it < iters; it++ {
		prevHub := make([]float64, n)
		copy(prevHub, hub)
		// a(v) = Σ_{u→v} h(u)·w
		for i := range auth {
			auth[i] = 0
		}
		for _, e := range g.Edges {
			auth[e.T] += prevHub[e.F] * e.W
		}
		// h(u) = Σ_{u→v} a(v)·w
		for i := range hub {
			hub[i] = 0
		}
		for _, e := range g.Edges {
			hub[e.F] += auth[e.T] * e.W
		}
		var nh, na float64
		for i := 0; i < n; i++ {
			nh += hub[i] * hub[i]
			na += auth[i] * auth[i]
		}
		nh, na = math.Sqrt(nh), math.Sqrt(na)
		for i := 0; i < n; i++ {
			if nh > 0 {
				hub[i] /= nh
			}
			if na > 0 {
				auth[i] /= na
			}
		}
	}
	return hub, auth
}

// SimRank computes the SimRank similarity matrix with decay c for the given
// number of iterations (Eq. (11)'s fixpoint process): s(a,b) =
// max((1−c)·[PᵀSP](a,b), I(a,b)) per the paper's matrix formulation, where
// P is the column-normalized in-neighbour matrix. Intended for small graphs.
func SimRank(g *graph.Graph, c float64, iters int) [][]float64 {
	n := g.N
	in := graph.BuildCSR(g, true)
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		s[i][i] = 1
	}
	for it := 0; it < iters; it++ {
		ns := make([][]float64, n)
		for i := range ns {
			ns[i] = make([]float64, n)
		}
		for a := 0; a < n; a++ {
			ia := in.Neighbors(int32(a))
			for b := 0; b < n; b++ {
				if a == b {
					ns[a][b] = 1
					continue
				}
				ib := in.Neighbors(int32(b))
				if len(ia) == 0 || len(ib) == 0 {
					continue
				}
				sum := 0.0
				for _, u := range ia {
					for _, v := range ib {
						sum += s[u][v]
					}
				}
				ns[a][b] = (1 - c) * sum / (float64(len(ia)) * float64(len(ib)))
			}
		}
		s = ns
	}
	return s
}
