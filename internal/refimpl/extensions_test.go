package refimpl

import (
	"testing"

	"repro/internal/graph"
)

func clique(n int32, offset int32, g *graph.Graph) {
	for a := int32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddUndirected(a+offset, b+offset, 1)
		}
	}
}

func TestMarkovClusteringTwoCommunities(t *testing.T) {
	g := graph.New(10, false)
	clique(5, 0, g)
	clique(5, 5, g)
	g.AddUndirected(0, 5, 1)
	c := MarkovClustering(g, 2, 1e-6, 50)
	if len(c) != 10 {
		t.Fatalf("labels = %d", len(c))
	}
	for i := 1; i < 5; i++ {
		if c[i] != c[0] {
			t.Errorf("left clique split: %v", c)
		}
		if c[i+5] != c[5] {
			t.Errorf("right clique split: %v", c)
		}
	}
	if c[0] == c[5] {
		t.Error("bridged cliques should separate")
	}
	// A single clique is one cluster.
	one := graph.New(4, false)
	clique(4, 0, one)
	c = MarkovClustering(one, 2, 1e-6, 50)
	for i := 1; i < 4; i++ {
		if c[i] != c[0] {
			t.Errorf("single clique split: %v", c)
		}
	}
}

func TestKTrussBasics(t *testing.T) {
	g := graph.New(6, false)
	clique(4, 0, g) // 4-clique: every edge in 2 triangles
	g.AddUndirected(3, 4, 1)
	g.AddUndirected(4, 5, 1)
	k4 := KTruss(g, 4)
	if len(k4) != 6 { // the 4-clique's edges survive the 4-truss
		t.Errorf("4-truss edges = %d, want 6", len(k4))
	}
	if k4[int64(3)<<32|4] {
		t.Error("pendant edge must not survive")
	}
	if len(KTruss(g, 5)) != 0 {
		t.Error("5-truss of a 4-clique must be empty")
	}
	// k=2 keeps everything (support >= 0).
	if len(KTruss(g, 2)) != 8 {
		t.Errorf("2-truss = %d, want all 8 undirected edges", len(KTruss(g, 2)))
	}
}

func TestBisimulationTreeAndLabels(t *testing.T) {
	// A two-level star: leaves are bisimilar.
	g := graph.New(5, true)
	for i := int32(1); i < 5; i++ {
		g.AddEdge(0, i, 1)
	}
	blocks, rounds := Bisimulation(g)
	if rounds < 1 {
		t.Fatal("no rounds")
	}
	for i := 2; i < 5; i++ {
		if blocks[i] != blocks[1] {
			t.Errorf("leaves should share a block: %v", blocks)
		}
	}
	if blocks[0] == blocks[1] {
		t.Error("root must differ from leaves")
	}
	// Labels split otherwise-bisimilar nodes.
	g.Labels = []int32{0, 1, 1, 2, 2}
	blocks, _ = Bisimulation(g)
	if blocks[1] == blocks[3] {
		t.Error("differently labeled leaves must split")
	}
	if blocks[1] != blocks[2] || blocks[3] != blocks[4] {
		t.Errorf("same-label leaves should share: %v", blocks)
	}
}

func TestBisimulationCycleVsChain(t *testing.T) {
	// On a cycle every node looks alike; on a chain the distance to the
	// sink distinguishes nodes.
	cyc := graph.New(4, true)
	for i := int32(0); i < 4; i++ {
		cyc.AddEdge(i, (i+1)%4, 1)
	}
	blocks, _ := Bisimulation(cyc)
	for i := 1; i < 4; i++ {
		if blocks[i] != blocks[0] {
			t.Errorf("cycle nodes should all be bisimilar: %v", blocks)
		}
	}
	chain := graph.New(4, true)
	for i := int32(0); i < 3; i++ {
		chain.AddEdge(i, i+1, 1)
	}
	blocks, _ = Bisimulation(chain)
	seen := map[int64]bool{}
	for _, b := range blocks {
		seen[b] = true
	}
	if len(seen) != 4 {
		t.Errorf("chain nodes are pairwise non-bisimilar: %v", blocks)
	}
}
