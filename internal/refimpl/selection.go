package refimpl

import (
	"repro/internal/graph"
)

// KCore returns, for each node, whether it survives k-core peeling with the
// paper's strict threshold: nodes whose degree is > k are kept (Section 7's
// KC description), where degree is counted on the symmetrized graph.
func KCore(g *graph.Graph, k int) []bool {
	sym := g.Symmetrize()
	csr := graph.BuildCSR(sym, false)
	alive := make([]bool, g.N)
	deg := make([]int, g.N)
	for i := 0; i < g.N; i++ {
		alive[i] = true
		deg[i] = csr.Degree(int32(i))
	}
	queue := []int32{}
	for i := 0; i < g.N; i++ {
		if deg[i] <= k {
			alive[i] = false
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range csr.Neighbors(v) {
			if !alive[u] {
				continue
			}
			deg[u]--
			if deg[u] <= k {
				alive[u] = false
				queue = append(queue, u)
			}
		}
	}
	return alive
}

// MIS computes a maximal independent set with the random-priority parallel
// algorithm the paper uses [Métivier et al.]: per round every remaining
// node draws a priority (the shared graph.Priority stream); nodes whose
// priority is a strict local minimum join the set; they and their
// neighbours leave the graph. Works on the symmetrized structure. Returns
// membership flags.
func MIS(g *graph.Graph, seed int64) []bool {
	inSet, _ := misRun(g, seed)
	return inSet
}

// MISRounds reports how many rounds the random-priority MIS needs (the
// paper notes 4–6 on its datasets).
func MISRounds(g *graph.Graph, seed int64) int {
	_, rounds := misRun(g, seed)
	return rounds
}

func misRun(g *graph.Graph, seed int64) ([]bool, int) {
	sym := graph.BuildCSR(g.Symmetrize(), false)
	inSet := make([]bool, g.N)
	removed := make([]bool, g.N)
	remaining := g.N
	rounds := 0
	for iter := 0; remaining > 0; iter++ {
		rounds++
		r := make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			if !removed[v] {
				r[v] = graph.Priority(seed, iter, int32(v))
			}
		}
		var chosen []int32
		for v := int32(0); int(v) < g.N; v++ {
			if removed[v] {
				continue
			}
			best := true
			for _, u := range sym.Neighbors(v) {
				if removed[u] {
					continue
				}
				// Strict local minimum: ties exclude both nodes this
				// round (they redraw next round), so the relational
				// implementation can match without an id tie-break.
				if r[u] <= r[v] {
					best = false
					break
				}
			}
			if best {
				chosen = append(chosen, v)
			}
		}
		for _, v := range chosen {
			if removed[v] {
				continue
			}
			inSet[v] = true
			removed[v] = true
			remaining--
			for _, u := range sym.Neighbors(v) {
				if !removed[u] {
					removed[u] = true
					remaining--
				}
			}
		}
	}
	return inSet, rounds
}

// LabelPropagation runs synchronous label propagation for the given number
// of iterations: each node adopts the most frequent label among its
// in-neighbours (ties broken toward the smallest label); nodes without
// in-neighbours keep their label. Initial labels default to node IDs when
// g.Labels is nil.
func LabelPropagation(g *graph.Graph, iters int) []int32 {
	labels := make([]int32, g.N)
	if g.Labels != nil {
		copy(labels, g.Labels)
	} else {
		for i := range labels {
			labels[i] = int32(i)
		}
	}
	in := graph.BuildCSR(g, true)
	next := make([]int32, g.N)
	for it := 0; it < iters; it++ {
		for v := int32(0); int(v) < g.N; v++ {
			ns := in.Neighbors(v)
			if len(ns) == 0 {
				next[v] = labels[v]
				continue
			}
			counts := make(map[int32]int, len(ns))
			for _, u := range ns {
				counts[labels[u]]++
			}
			best, bestN := labels[v], -1
			for l, n := range counts {
				if n > bestN || (n == bestN && l < best) {
					best, bestN = l, n
				}
			}
			next[v] = best
		}
		labels, next = next, labels
	}
	return labels
}

// MNM computes a maximal node matching with the paper's handshake
// algorithm [Preis-style]: every live node points at its maximum-weight
// live neighbour (ties toward the smaller ID); mutual pointers match and
// leave the graph; repeat until no new pairs form. Returns match[v] = u or
// -1. Node weights default to the node ID when g.NodeW is nil.
func MNM(g *graph.Graph) []int64 {
	match, _ := mnmRun(g)
	return match
}

// MNMRounds reports the number of handshake rounds until no pair forms
// (the paper observes 1 on PC and 18 on GP).
func MNMRounds(g *graph.Graph) int {
	_, rounds := mnmRun(g)
	return rounds
}

func mnmRun(g *graph.Graph) ([]int64, int) {
	w := g.NodeW
	if w == nil {
		w = make([]float64, g.N)
		for i := range w {
			w[i] = float64(i)
		}
	}
	sym := graph.BuildCSR(g.Symmetrize(), false)
	match := make([]int64, g.N)
	for i := range match {
		match[i] = -1
	}
	rounds := 0
	for {
		rounds++
		choice := make([]int64, g.N)
		for v := int32(0); int(v) < g.N; v++ {
			choice[v] = -1
			if match[v] >= 0 {
				continue
			}
			bestW, bestU := -1.0, int64(-1)
			for _, u := range sym.Neighbors(v) {
				if match[u] >= 0 {
					continue
				}
				if w[u] > bestW || (w[u] == bestW && int64(u) < bestU) {
					bestW, bestU = w[u], int64(u)
				}
			}
			choice[v] = bestU
		}
		paired := 0
		for v := 0; v < g.N; v++ {
			u := choice[v]
			if u < 0 || match[v] >= 0 || match[u] >= 0 {
				continue
			}
			if choice[u] == int64(v) {
				match[v], match[u] = u, int64(v)
				paired++
			}
		}
		if paired == 0 {
			return match, rounds
		}
	}
}

// KeywordSearch finds the roots of depth-bounded Steiner trees for a
// keyword query: node v's indicator bitmask ORs in its out-neighbours'
// masks each round; after depth rounds the nodes with a full mask are the
// roots (the paper's KS with 3 labels, depth 4). query holds the wanted
// label values.
func KeywordSearch(g *graph.Graph, query []int32, depth int) []bool {
	masks := make([]uint32, g.N)
	full := uint32(1)<<len(query) - 1
	for v := 0; v < g.N; v++ {
		for qi, q := range query {
			if g.Labels != nil && g.Labels[v] == q {
				masks[v] |= 1 << qi
			}
		}
	}
	out := graph.BuildCSR(g, false)
	for it := 0; it < depth; it++ {
		next := make([]uint32, g.N)
		copy(next, masks)
		for v := int32(0); int(v) < g.N; v++ {
			for _, u := range out.Neighbors(v) {
				next[v] |= masks[u]
			}
		}
		masks = next
	}
	roots := make([]bool, g.N)
	for v := range roots {
		roots[v] = masks[v] == full
	}
	return roots
}
