// Package refimpl provides plain-Go reference implementations of every
// graph algorithm the paper evaluates. They are the ground truth the
// relational implementations are property-tested against, and they double
// as the "graph algorithm as access method" the paper proposes as future
// work for RDBMS internals.
package refimpl

import (
	"math"

	"repro/internal/graph"
)

// BFS returns, for each node, 1 if reachable from src and 0 otherwise
// (the vw vector of Eq. (5) at fixpoint).
func BFS(g *graph.Graph, src int32) []float64 {
	visited := make([]float64, g.N)
	visited[src] = 1
	csr := graph.BuildCSR(g, false)
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range csr.Neighbors(v) {
			if visited[u] == 0 {
				visited[u] = 1
				queue = append(queue, u)
			}
		}
	}
	return visited
}

// BFSLevels returns hop distances from src (-1 when unreachable).
func BFSLevels(g *graph.Graph, src int32) []int {
	lvl := make([]int, g.N)
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[src] = 0
	csr := graph.BuildCSR(g, false)
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range csr.Neighbors(v) {
			if lvl[u] < 0 {
				lvl[u] = lvl[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return lvl
}

// WCC returns the weakly-connected component label of every node: the
// smallest node ID in its component (matching Eq. (6)'s fixpoint).
func WCC(g *graph.Graph) []int64 {
	label := make([]int64, g.N)
	for i := range label {
		label[i] = -1
	}
	sym := graph.BuildCSR(g.Symmetrize(), false)
	for i := 0; i < g.N; i++ {
		if label[i] >= 0 {
			continue
		}
		// BFS from i; i is the smallest unvisited ID, so it labels the
		// whole component.
		label[i] = int64(i)
		queue := []int32{int32(i)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range sym.Neighbors(v) {
				if label[u] < 0 {
					label[u] = int64(i)
					queue = append(queue, u)
				}
			}
		}
	}
	return label
}

// BellmanFord returns single-source shortest distances from src (+Inf when
// unreachable).
func BellmanFord(g *graph.Graph, src int32) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for _, e := range g.Edges {
			if d := dist[e.F] + e.W; d < dist[e.T] {
				dist[e.T] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// FloydWarshall returns the all-pairs shortest-distance matrix (+Inf when
// unreachable, 0 on the diagonal). Intended for small graphs.
func FloydWarshall(g *graph.Graph) [][]float64 {
	n := g.N
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges {
		if e.W < d[e.F][e.T] {
			d[e.F][e.T] = e.W
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
	return d
}

// TransitiveClosure returns reachability pairs (u,v) where v is reachable
// from u by a path of 1..depth edges (depth<=0 means unbounded). Pairs
// (s,s) appear when s lies on a cycle, as SQL's TC of Fig. 1 produces. The
// result is a set keyed by u<<32|v, matching the linear-recursion TC with
// the paper's recursion-depth threshold d (Exp-C).
func TransitiveClosure(g *graph.Graph, depth int) map[int64]bool {
	if depth <= 0 {
		depth = g.N
	}
	out := make(map[int64]bool)
	csr := graph.BuildCSR(g, false)
	for s := int32(0); s < int32(g.N); s++ {
		// One-or-more-step reachability: seed with the out-neighbours so a
		// cycle through s re-discovers s itself.
		lvl := make(map[int32]int)
		var queue []int32
		for _, u := range csr.Neighbors(s) {
			if _, ok := lvl[u]; !ok {
				lvl[u] = 1
				queue = append(queue, u)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if lvl[v] >= depth {
				continue
			}
			for _, u := range csr.Neighbors(v) {
				if _, ok := lvl[u]; !ok {
					lvl[u] = lvl[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for v := range lvl {
			out[int64(s)<<32|int64(v)] = true
		}
	}
	return out
}

// TopoSort returns Kahn levels: level[v] is the iteration in which v is
// removed (sources first), matching Eq. (13); level -1 means the node sits
// on or behind a cycle and is never sorted.
func TopoSort(g *graph.Graph) []int {
	level := make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	indeg := g.InDegrees()
	csr := graph.BuildCSR(g, false)
	var frontier []int32
	for i := 0; i < g.N; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, int32(i))
			level[i] = 0
		}
	}
	for l := 1; len(frontier) > 0; l++ {
		var next []int32
		for _, v := range frontier {
			for _, u := range csr.Neighbors(v) {
				indeg[u]--
				if indeg[u] == 0 {
					level[u] = l
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return level
}

// DiameterEstimate estimates the diameter by running BFS from sample seed
// nodes and taking the maximum eccentricity observed (the HADI-style
// estimate the paper cites for Diameter-Estimation). samples<=0 uses all
// nodes on small graphs.
func DiameterEstimate(g *graph.Graph, samples int) int {
	if samples <= 0 || samples > g.N {
		samples = g.N
	}
	step := g.N / samples
	if step == 0 {
		step = 1
	}
	best := 0
	for s := 0; s < g.N; s += step {
		lvl := BFSLevels(g, int32(s))
		for _, l := range lvl {
			if l > best {
				best = l
			}
		}
	}
	return best
}
