package refimpl

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// chain: 0→1→2→3, plus isolated 4.
func chain() *graph.Graph {
	g := graph.New(5, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	return g
}

func TestBFS(t *testing.T) {
	got := BFS(chain(), 1)
	want := []float64{0, 1, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BFS[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBFSLevels(t *testing.T) {
	got := BFSLevels(chain(), 0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWCC(t *testing.T) {
	g := graph.New(6, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1) // weakly connects 2 to {0,1}
	g.AddEdge(3, 4, 1)
	got := WCC(g)
	want := []int64{0, 0, 0, 3, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("WCC[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBellmanFord(t *testing.T) {
	g := graph.New(4, true)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 1, 1)
	g.AddEdge(1, 3, 1)
	got := BellmanFord(g, 0)
	want := []float64{0, 3, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !math.IsInf(BellmanFord(chain(), 0)[4], 1) {
		t.Error("unreachable node should be +Inf")
	}
}

func TestFloydWarshallMatchesBellmanFord(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 30, M: 90, Directed: true, Skew: 2.0, Seed: 12})
	fw := FloydWarshall(g)
	for s := int32(0); s < 30; s += 7 {
		bf := BellmanFord(g, s)
		for v := 0; v < 30; v++ {
			a, b := fw[s][v], bf[v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("fw[%d][%d]=%v != bf=%v", s, v, a, b)
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := chain()
	tc := TransitiveClosure(g, 0)
	if len(tc) != 6 { // 0→{1,2,3}, 1→{2,3}, 2→{3}
		t.Errorf("|TC| = %d, want 6", len(tc))
	}
	if !tc[int64(0)<<32|3] || tc[int64(3)<<32|0] {
		t.Error("TC membership wrong")
	}
	// Depth bound 1 keeps only direct edges.
	tc1 := TransitiveClosure(g, 1)
	if len(tc1) != 3 {
		t.Errorf("|TC depth 1| = %d, want 3", len(tc1))
	}
	// Cycle does not loop forever; every node reaches all three including
	// itself (SQL TC semantics).
	c := graph.New(3, true)
	c.AddEdge(0, 1, 1)
	c.AddEdge(1, 2, 1)
	c.AddEdge(2, 0, 1)
	if got := TransitiveClosure(c, 0); len(got) != 9 {
		t.Errorf("cycle TC = %d, want 9", len(got))
	}
	if got := TransitiveClosure(c, 0); !got[int64(1)<<32|1] {
		t.Error("cycle node should reach itself")
	}
}

func TestTopoSort(t *testing.T) {
	g := graph.New(5, true)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	got := TopoSort(g)
	want := []int{0, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Cycle members are never sorted.
	c := graph.New(3, true)
	c.AddEdge(0, 1, 1)
	c.AddEdge(1, 0, 1)
	c.AddEdge(1, 2, 1)
	got = TopoSort(c)
	if got[0] != -1 || got[1] != -1 || got[2] != -1 {
		t.Errorf("cycle toposort = %v, want all -1", got)
	}
	// Edges off the cycle still sort.
	c2 := graph.New(3, true)
	c2.AddEdge(0, 1, 1)
	c2.AddEdge(1, 0, 1)
	c2.AddEdge(2, 0, 1)
	got = TopoSort(c2)
	if got[2] != 0 || got[0] != -1 {
		t.Errorf("partial cycle toposort = %v", got)
	}
}

func TestDiameterEstimate(t *testing.T) {
	g := chain()
	if d := DiameterEstimate(g, 0); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
	if d := DiameterEstimate(g, 2); d > 3 || d < 0 {
		t.Errorf("sampled diameter = %d out of range", d)
	}
}

func TestPageRankProperties(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 50, M: 250, Directed: true, Skew: 2.0, Seed: 4})
	pr := PageRank(g, 0.85, 30)
	sum := 0.0
	for _, p := range pr {
		if p <= 0 {
			t.Fatal("ranks must be positive")
		}
		sum += p
	}
	// With dangling nodes mass can dip below 1 but not exceed it.
	if sum > 1+1e-9 || sum < 0.2 {
		t.Errorf("PR mass = %v", sum)
	}
	// A node with more in-links from the hub outranks an isolated one.
	star := graph.New(4, true)
	star.AddEdge(1, 0, 1)
	star.AddEdge(2, 0, 1)
	star.AddEdge(3, 0, 1)
	p := PageRank(star, 0.85, 20)
	if p[0] <= p[1] {
		t.Errorf("hub target should outrank leaves: %v", p)
	}
}

func TestRWRGeneralizesPageRank(t *testing.T) {
	g := graph.Generate(graph.GenSpec{N: 20, M: 80, Directed: true, Skew: 2.0, Seed: 8})
	uniform := make([]float64, g.N)
	for i := range uniform {
		uniform[i] = 1.0 / float64(g.N)
	}
	pr := PageRank(g, 0.85, 15)
	rwr := RWR(g, 0.85, uniform, 15)
	for i := range pr {
		if math.Abs(pr[i]-rwr[i]) > 1e-12 {
			t.Fatalf("RWR with uniform restart should equal PR: %v vs %v", rwr[i], pr[i])
		}
	}
	// Personalized restart concentrates mass near the restart node.
	point := make([]float64, g.N)
	point[0] = 1
	pers := RWR(g, 0.85, point, 30)
	if pers[0] < 0.1 {
		t.Errorf("restart node mass too low: %v", pers[0])
	}
}

func TestHITS(t *testing.T) {
	// 0 and 1 both point at 2 and 3: 0,1 are hubs; 2,3 are authorities.
	g := graph.New(4, true)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	hub, auth := HITS(g, 20)
	if hub[0] <= auth[0] || auth[2] <= hub[2] {
		t.Errorf("hub/auth separation failed: hub=%v auth=%v", hub, auth)
	}
	// Normalized: 2-norms are 1.
	var nh, na float64
	for i := 0; i < 4; i++ {
		nh += hub[i] * hub[i]
		na += auth[i] * auth[i]
	}
	if math.Abs(nh-1) > 1e-9 || math.Abs(na-1) > 1e-9 {
		t.Errorf("norms: %v %v", nh, na)
	}
}

func TestSimRank(t *testing.T) {
	// 1 and 2 have the same single in-neighbour 0 → maximal similarity.
	g := graph.New(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(3, 2, 1)
	s := SimRank(g, 0.2, 10)
	if s[1][1] != 1 {
		t.Error("self-similarity must be 1")
	}
	if s[1][2] <= 0 || s[1][2] > 1 {
		t.Errorf("s(1,2) = %v", s[1][2])
	}
	if s[0][3] != 0 {
		t.Errorf("nodes with no in-neighbours have similarity 0, got %v", s[0][3])
	}
	if s[1][2] != s[2][1] {
		t.Error("SimRank must be symmetric")
	}
}

func TestKCore(t *testing.T) {
	// A 4-clique plus a pendant: with k=2, clique survives, pendant doesn't.
	g := graph.New(5, false)
	for a := int32(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddUndirected(a, b, 1)
		}
	}
	g.AddUndirected(3, 4, 1)
	alive := KCore(g, 2)
	want := []bool{true, true, true, true, false}
	for i := range want {
		if alive[i] != want[i] {
			t.Errorf("alive[%d] = %v, want %v", i, alive[i], want[i])
		}
	}
	// Peeling cascades: chain all dies for k=1 (degree > 1 required).
	if got := KCore(chain(), 1); got[0] || got[1] || got[2] || got[3] {
		t.Errorf("chain 1-core (strict) should be empty: %v", got)
	}
}

func misIsValid(t *testing.T, g *graph.Graph, inSet []bool) {
	t.Helper()
	sym := graph.BuildCSR(g.Symmetrize(), false)
	for v := int32(0); int(v) < g.N; v++ {
		if inSet[v] {
			for _, u := range sym.Neighbors(v) {
				if inSet[u] {
					t.Fatalf("MIS not independent: %d and %d", v, u)
				}
			}
			continue
		}
		// Maximality: some neighbour is in the set.
		ok := false
		for _, u := range sym.Neighbors(v) {
			if inSet[u] {
				ok = true
				break
			}
		}
		if !ok && sym.Degree(v) > 0 {
			t.Fatalf("MIS not maximal at %d", v)
		}
		if sym.Degree(v) == 0 && !inSet[v] {
			t.Fatalf("isolated node %d must join the MIS", v)
		}
	}
}

func TestMISValidOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Generate(graph.GenSpec{N: 120, M: 500, Directed: false, Skew: 2.0, Seed: seed})
		misIsValid(t, g, MIS(g, seed))
		if r := MISRounds(g, seed); r < 1 || r > 20 {
			t.Errorf("MIS rounds = %d", r)
		}
	}
}

func TestLabelPropagation(t *testing.T) {
	// Two triangles with uniform internal labels stay stable.
	g := graph.New(6, false)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 1)
	g.AddUndirected(0, 2, 1)
	g.AddUndirected(3, 4, 1)
	g.AddUndirected(4, 5, 1)
	g.AddUndirected(3, 5, 1)
	g.Labels = []int32{7, 7, 7, 9, 9, 9}
	got := LabelPropagation(g, 5)
	want := []int32{7, 7, 7, 9, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Default labels are node IDs; isolated node keeps its own.
	iso := graph.New(2, true)
	if l := LabelPropagation(iso, 3); l[0] != 0 || l[1] != 1 {
		t.Errorf("default labels: %v", l)
	}
}

func TestMNMValidMatching(t *testing.T) {
	for seed := int64(1); seed < 5; seed++ {
		g := graph.Generate(graph.GenSpec{N: 100, M: 400, Directed: false, Skew: 2.0, Seed: seed, MaxNodeWeight: 20})
		match := MNM(g)
		sym := graph.BuildCSR(g.Symmetrize(), false)
		for v := 0; v < g.N; v++ {
			u := match[v]
			if u < 0 {
				continue
			}
			if match[u] != int64(v) {
				t.Fatalf("matching not symmetric: %d->%d->%d", v, u, match[u])
			}
			adjacent := false
			for _, w := range sym.Neighbors(int32(v)) {
				if int64(w) == u {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("matched pair %d-%d not adjacent", v, u)
			}
		}
		// Maximality: no two unmatched adjacent nodes.
		for v := int32(0); int(v) < g.N; v++ {
			if match[v] >= 0 {
				continue
			}
			for _, u := range sym.Neighbors(v) {
				if match[u] < 0 {
					t.Fatalf("unmatched adjacent pair %d-%d", v, u)
				}
			}
		}
		if r := MNMRounds(g); r < 1 {
			t.Errorf("rounds = %d", r)
		}
	}
}

func TestKeywordSearch(t *testing.T) {
	// 0→1, 0→2; labels: 1 has "5", 2 has "6", 0 has "4".
	g := graph.New(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.Labels = []int32{4, 5, 6, 4}
	roots := KeywordSearch(g, []int32{4, 5, 6}, 2)
	if !roots[0] {
		t.Error("node 0 reaches all three keywords")
	}
	if roots[1] || roots[2] || roots[3] {
		t.Errorf("only node 0 is a root: %v", roots)
	}
	// Depth bound matters: chain 0→1→2 with labels 4,5,6 needs depth 2.
	c := graph.New(3, true)
	c.AddEdge(0, 1, 1)
	c.AddEdge(1, 2, 1)
	c.Labels = []int32{4, 5, 6}
	if got := KeywordSearch(c, []int32{4, 5, 6}, 1); got[0] {
		t.Error("depth 1 cannot reach keyword 6")
	}
	if got := KeywordSearch(c, []int32{4, 5, 6}, 2); !got[0] {
		t.Error("depth 2 reaches all keywords")
	}
}
