// Package catalog manages named base and temporary tables over the storage
// substrate, with the per-table statistics whose presence or absence drives
// plan choice in the engine (the paper attributes PostgreSQL's plans on
// temporary tables to missing statistics).
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Stats carries optimizer statistics for a table. Temporary tables start
// with Analyzed=false; base tables are analyzed on load.
type Stats struct {
	Rows     int
	Analyzed bool
}

// Table is a named relation with physical storage, optional sorted and hash
// indexes, and statistics.
type Table struct {
	Name  string
	Sch   schema.Schema
	Store storage.TupleStore
	Temp  bool
	Kind  StoreKind
	Stats Stats

	// version counts writes: every write (insert, truncate, rename) bumps
	// it. Cached access structures are keyed on it, so an index built for
	// one version is never served after the table changes — the mechanism
	// behind iteration-aware join execution: a hash index built on an
	// immutable base table survives every iteration of a WITH+ loop.
	// Appends are special-cased (noteAppend): the version moves forward
	// *with* the materialization cache, hash indexes, and column dicts, so
	// accumulation-only recursion never rebuilds its build sides;
	// destructive writes drop everything (invalidate).
	version uint64

	indexes     map[string]*relation.SortedIndex
	hashIndexes map[string]hashIndexEntry
	dicts       map[int]dictEntry
	cache       *relation.Relation // materialization cache, invalidated on write
}

// hashIndexEntry pairs a cached build-side hash index with the table version
// it was built at. The map is dropped wholesale on invalidation; the stored
// version is a second line of defense against serving a stale index.
type hashIndexEntry struct {
	idx     *relation.HashIndex
	version uint64
}

// dictEntry caches a column dictionary the same way hashIndexEntry caches a
// hash index: dropped on invalidation, version-checked on serve.
type dictEntry struct {
	dict    *relation.ColumnDict
	version uint64
}

// Catalog is a set of tables sharing a buffer pool and WAL.
//
// FaultPlan and Retry, when set, wrap every store the catalog creates from
// that point on: faults are injected below the retry layer, so transient
// faults are absorbed and hard faults surface to the engine. Wrapping at the
// catalog is what lets the chaos sweep reach temp tables created mid-
// procedure — they do not exist yet when the test starts.
type Catalog struct {
	Pool *storage.BufferPool
	WAL  *storage.WAL

	FaultPlan *storage.FaultPlan
	Retry     storage.RetryPolicy

	tables map[string]*Table
}

// New returns an empty catalog over the given pool and log.
func New(pool *storage.BufferPool, wal *storage.WAL) *Catalog {
	return &Catalog{Pool: pool, WAL: wal, tables: make(map[string]*Table)}
}

// StoreKind selects the physical storage for a new table.
type StoreKind int

// The available store kinds.
const (
	// StoreMem keeps tuples in memory (Oracle-AMM-like temp space).
	StoreMem StoreKind = iota
	// StorePaged serializes tuples into buffer-pool pages, unlogged
	// (temp tables bypass the redo log in all three RDBMSs).
	StorePaged
	// StorePagedLogged additionally appends every insert to the WAL
	// (base tables; "it still needs to log").
	StorePagedLogged
)

// Create adds a table. It fails if the name exists.
func (c *Catalog) Create(name string, sch schema.Schema, kind StoreKind, temp bool) (*Table, error) {
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	var store storage.TupleStore
	switch kind {
	case StoreMem:
		store = storage.NewMemStore()
	case StorePaged:
		store = storage.NewPagedStore(c.Pool, nil, name)
	case StorePagedLogged:
		store = storage.NewPagedStore(c.Pool, c.WAL, name)
	default:
		return nil, fmt.Errorf("catalog: unknown store kind %d", kind)
	}
	if c.FaultPlan != nil {
		store = &storage.FaultyStore{Inner: store, Plan: c.FaultPlan}
	}
	if c.Retry.Attempts > 1 {
		store = &storage.RetryingStore{Inner: store, Policy: c.Retry}
	}
	if kind == StorePagedLogged && c.WAL != nil {
		c.WAL.AppendCreate(name, storage.EncodeSchema(nil, sch))
	}
	t := &Table{Name: name, Sch: sch, Store: store, Temp: temp, Kind: kind}
	c.tables[name] = t
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Has reports whether the table exists.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Drop removes a table, releasing its storage. The table leaves the catalog
// even when releasing storage fails — an injected fault mid-procedure must
// not strand a half-dropped table in the namespace (the chaos sweep asserts
// no temp-table debris survives a failed run).
func (c *Catalog) Drop(name string) error {
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	err := t.Store.Truncate()
	if t.Kind == StorePagedLogged && c.WAL != nil {
		c.WAL.AppendDrop(name)
	}
	return err
}

// RenameTable renames old to new (the ALTER TABLE ... RENAME used by the
// drop/alter union-by-update implementation). The new name must be free.
// The rename invalidates the table's caches: the materialization cache holds
// a schema qualified with the old name, and any column references resolved
// against it would silently keep resolving post-rename.
func (c *Catalog) RenameTable(old, new string) error {
	t, ok := c.tables[old]
	if !ok {
		return fmt.Errorf("catalog: no table %q", old)
	}
	if _, ok := c.tables[new]; ok {
		return fmt.Errorf("catalog: table %q already exists", new)
	}
	delete(c.tables, old)
	t.Name = new
	t.invalidate()
	c.tables[new] = t
	return nil
}

// Names returns all table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TempNames returns the names of temporary tables, sorted.
func (c *Catalog) TempNames() []string {
	var out []string
	for n, t := range c.tables {
		if t.Temp {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TempBytes reports the storage footprint of all temporary tables — the
// resident-memory figure the resource governor checks against MaxBytes at
// statement checkpoints.
func (c *Catalog) TempBytes() int64 {
	var n int64
	for _, t := range c.tables {
		if t.Temp {
			n += t.Store.BytesUsed()
		}
	}
	return n
}

// Insert appends one tuple to the table.
func (t *Table) Insert(tu relation.Tuple) error {
	if len(tu) != t.Sch.Arity() {
		return fmt.Errorf("catalog: insert arity %d into %s%s", len(tu), t.Name, t.Sch)
	}
	if err := t.Store.Insert(tu); err != nil {
		t.invalidate()
		return err
	}
	t.noteAppend([]relation.Tuple{tu})
	t.Stats.Rows++
	return nil
}

// InsertRelation bulk-appends all tuples of r.
func (t *Table) InsertRelation(r *relation.Relation) error {
	if !r.Sch.UnionCompatible(t.Sch) {
		return fmt.Errorf("catalog: insert arity %d into %s%s", r.Sch.Arity(), t.Name, t.Sch)
	}
	for _, tu := range r.Tuples {
		if err := t.Store.Insert(tu.Clone()); err != nil {
			// The store may hold a prefix of r; drop the caches rather than
			// leave them diverged from storage.
			t.invalidate()
			return err
		}
	}
	t.noteAppend(r.Tuples)
	t.Stats.Rows += r.Len()
	return nil
}

// noteAppend is the append-aware alternative to invalidate: the version still
// bumps (appends are writes — statistics go stale, sorted indexes drop), but
// the materialization cache, hash indexes, and column dictionaries move
// forward *with* the version instead of being discarded. The cache header is
// extended in place so every reader holding it — including cached hash
// indexes, whose validity the join executor checks by identity against the
// probe-time materialization — observes the appended rows without a rebuild.
// This is what keeps build-side indexes alive across the accumulation-only
// iterations of semi-naive recursion; destructive writes (truncate, rename)
// keep the full invalidation.
func (t *Table) noteAppend(tuples []relation.Tuple) {
	if t.cache == nil {
		// Nothing materialized since the last write, so no current-version
		// access structure can exist either.
		t.invalidate()
		return
	}
	t.version++
	for _, tu := range tuples {
		t.cache.Tuples = append(t.cache.Tuples, tu.Clone())
	}
	from := t.cache.Len() - len(tuples)
	for key, e := range t.hashIndexes {
		if e.version != t.version-1 {
			delete(t.hashIndexes, key)
			continue
		}
		for row := from; row < t.cache.Len(); row++ {
			e.idx.Add(row)
		}
		t.hashIndexes[key] = hashIndexEntry{idx: e.idx, version: t.version}
	}
	for col, e := range t.dicts {
		if e.version != t.version-1 {
			delete(t.dicts, col)
			continue
		}
		e.dict.Extend(t.cache)
		t.dicts[col] = dictEntry{dict: e.dict, version: t.version}
	}
	// Sorted indexes have no cheap extension: appended rows break the order.
	t.indexes = nil
	t.Stats.Analyzed = false
}

// Truncate removes all tuples and invalidates indexes and statistics.
func (t *Table) Truncate() error {
	t.invalidate()
	t.Stats.Rows = 0
	return t.Store.Truncate()
}

// Materialize scans the store into a relation qualified with the table
// name. The result is cached until the next write; paged tables pay decode
// cost on every (re)materialization.
func (t *Table) Materialize() (*relation.Relation, error) {
	if t.cache != nil {
		return t.cache, nil
	}
	out := relation.NewWithCap(t.Sch.Qualify(t.Name), t.Store.Len())
	err := t.Store.Scan(func(tu relation.Tuple) bool {
		out.Tuples = append(out.Tuples, tu.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	t.cache = out
	return out, nil
}

// Rows returns the stored tuple count.
func (t *Table) Rows() int { return t.Store.Len() }

// Analyze marks statistics as current (ANALYZE / RUNSTATS).
func (t *Table) Analyze() {
	t.Stats.Rows = t.Store.Len()
	t.Stats.Analyzed = true
}

func indexKey(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// EnsureIndex builds (or returns a cached) sorted index on the columns.
func (t *Table) EnsureIndex(cols []int) (*relation.SortedIndex, error) {
	key := indexKey(cols)
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	r, err := t.Materialize()
	if err != nil {
		return nil, err
	}
	idx := relation.BuildSortedIndex(r, cols)
	if t.indexes == nil {
		t.indexes = make(map[string]*relation.SortedIndex)
	}
	t.indexes[key] = idx
	return idx, nil
}

// Index returns a previously built index on cols, or nil.
func (t *Table) Index(cols []int) *relation.SortedIndex {
	return t.indexes[indexKey(cols)]
}

// Version returns the table's write counter. It increases monotonically on
// every content or identity change (insert, truncate, rename).
func (t *Table) Version() uint64 { return t.version }

// EnsureHashIndex returns a build-side hash index on cols, building it only
// when no index for the current table version is cached. hit reports whether
// the cache served the request — the counter feed for the engine's
// IndexBuilds/IndexCacheHits statistics. For an immutable base table inside
// an iterative algorithm this makes the hash join's build phase run once per
// table instead of once per iteration.
func (t *Table) EnsureHashIndex(cols []int) (idx *relation.HashIndex, hit bool, err error) {
	key := indexKey(cols)
	if e, ok := t.hashIndexes[key]; ok && e.version == t.version {
		return e.idx, true, nil
	}
	r, err := t.Materialize()
	if err != nil {
		return nil, false, err
	}
	built := relation.BuildHashIndex(r, cols)
	if t.hashIndexes == nil {
		t.hashIndexes = make(map[string]hashIndexEntry)
	}
	t.hashIndexes[key] = hashIndexEntry{idx: built, version: t.version}
	return built, false, nil
}

// HashIndex returns a previously built hash index on cols valid for the
// current table version, or nil.
func (t *Table) HashIndex(cols []int) *relation.HashIndex {
	if e, ok := t.hashIndexes[indexKey(cols)]; ok && e.version == t.version {
		return e.idx
	}
	return nil
}

// EnsureColumnDict returns a dictionary encoding of the column, built only
// when none is cached for the current table version. hit reports whether the
// cache served the request. The fused aggregate-join kernels use the dict of
// the build side's group column, so like the hash index it is built once per
// version of an immutable base table and reused by every iteration.
func (t *Table) EnsureColumnDict(col int) (dict *relation.ColumnDict, hit bool, err error) {
	if e, ok := t.dicts[col]; ok && e.version == t.version {
		return e.dict, true, nil
	}
	r, err := t.Materialize()
	if err != nil {
		return nil, false, err
	}
	built := relation.BuildColumnDict(r, col)
	if t.dicts == nil {
		t.dicts = make(map[int]dictEntry)
	}
	t.dicts[col] = dictEntry{dict: built, version: t.version}
	return built, false, nil
}

// ColumnDict returns a previously built dictionary on col valid for the
// current table version, or nil.
func (t *Table) ColumnDict(col int) *relation.ColumnDict {
	if e, ok := t.dicts[col]; ok && e.version == t.version {
		return e.dict
	}
	return nil
}

func (t *Table) invalidate() {
	t.version++
	t.cache = nil
	t.indexes = nil
	t.hashIndexes = nil
	t.dicts = nil
	t.Stats.Analyzed = false
}
