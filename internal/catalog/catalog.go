// Package catalog manages named base and temporary tables over the storage
// substrate, with the per-table statistics whose presence or absence drives
// plan choice in the engine (the paper attributes PostgreSQL's plans on
// temporary tables to missing statistics).
//
// Concurrency model. A Catalog is safe for concurrent use by many sessions:
// the name→table map is guarded by a read/write mutex, and every Table
// guards its storage, caches, and statistics with its own mutex. Session
// catalogs (see Session) overlay a private temp-table namespace on a shared
// root, so concurrent recursions never collide on working-table names.
// Cached materializations are copy-on-write for shared (non-temp) tables:
// a write bumps the version and drops the caches, while readers holding the
// old materialization (pinned in a View) keep a consistent image. Temporary
// tables — private to one session by construction — keep the cheaper
// in-place append path that incremental index maintenance relies on.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Stats carries optimizer statistics for a table. Temporary tables start
// with Analyzed=false; base tables are analyzed on load.
type Stats struct {
	Rows     int
	Analyzed bool
}

// Table is a named relation with physical storage, optional sorted and hash
// indexes, and statistics. All methods are safe for concurrent use; the
// exported fields other than Stats are immutable after creation (Name moves
// only through Catalog.RenameTable, which is restricted to session-private
// tables in concurrent settings). Read Stats through Analyzed/Info when the
// table may be shared.
type Table struct {
	Name  string
	Sch   schema.Schema
	Store storage.TupleStore
	Temp  bool
	Kind  StoreKind
	Stats Stats

	// mu guards version, the caches below, Stats, and all Store mutations.
	// Scans run under it too, so a paged store's page walk never interleaves
	// with a writer reusing the encode scratch buffer.
	mu sync.Mutex

	// owner is the catalog the table was created in — the root for base
	// tables, a session overlay for that session's temps. The engine uses it
	// to decide whether a read needs snapshot pinning (shared table) or can
	// serve the live cache (session-private).
	owner *Catalog

	// version counts writes: every write (insert, truncate, rename) bumps
	// it. Cached access structures are keyed on it, so an index built for
	// one version is never served after the table changes — the mechanism
	// behind iteration-aware join execution: a hash index built on an
	// immutable base table survives every iteration of a WITH+ loop.
	// Appends to temporary tables are special-cased (noteAppend): the
	// version moves forward *with* the materialization cache, hash indexes,
	// and column dicts, so accumulation-only recursion never rebuilds its
	// build sides. Appends to shared base tables and destructive writes
	// drop everything (invalidate) — copy-on-write from the point of view
	// of concurrent readers, whose pinned caches survive untouched.
	version uint64

	indexes     map[string]*relation.SortedIndex
	hashIndexes map[string]hashIndexEntry
	dicts       map[int]dictEntry
	csrs        map[string]csrEntry
	cache       *relation.Relation // materialization cache, invalidated on write
}

// hashIndexEntry pairs a cached build-side hash index with the table version
// it was built at. The map is dropped wholesale on invalidation; the stored
// version is a second line of defense against serving a stale index.
type hashIndexEntry struct {
	idx     *relation.HashIndex
	version uint64
}

// dictEntry caches a column dictionary the same way hashIndexEntry caches a
// hash index: dropped on invalidation, version-checked on serve.
type dictEntry struct {
	dict    *relation.ColumnDict
	version uint64
}

// csrEntry caches a CSR adjacency index under the same rules: dropped on
// invalidation, version-checked on serve, extended in place (tail chains) on
// the append fast path.
type csrEntry struct {
	csr     *relation.CSR
	version uint64
}

// Catalog is a set of tables sharing a buffer pool and WAL.
//
// FaultPlan and Retry, when set, wrap every store the catalog creates from
// that point on: faults are injected below the retry layer, so transient
// faults are absorbed and hard faults surface to the engine. Wrapping at the
// catalog is what lets the chaos sweep reach temp tables created mid-
// procedure — they do not exist yet when the test starts.
type Catalog struct {
	Pool *storage.BufferPool
	WAL  *storage.WAL

	FaultPlan *storage.FaultPlan
	Retry     storage.RetryPolicy

	mu     sync.RWMutex
	tables map[string]*Table

	// parent is the shared root for session overlay catalogs (nil on the
	// root itself). Temp tables live in the overlay; base tables and lookups
	// that miss locally fall through to the root.
	parent *Catalog

	// named write locks, kept on the root so every session contends on the
	// same lock for the same table name (idempotent base loads, union-by-
	// update read-modify-write cycles).
	lmu   sync.Mutex
	locks map[string]*sync.Mutex

	// sessions counts live session overlays (root only, atomic). While it is
	// zero no snapshot can be pinned anywhere, so appends to shared tables may
	// extend cached structures in place — the exact single-session fast path;
	// once a session exists, shared-table appends switch to copy-on-write
	// invalidation. Session() increments it, Release() decrements.
	sessions int64

	// Property-graph definitions (root only, shared like non-temp DDL);
	// see graph.go.
	gmu    sync.Mutex
	graphs map[string]*GraphDef
}

// New returns an empty catalog over the given pool and log.
func New(pool *storage.BufferPool, wal *storage.WAL) *Catalog {
	return &Catalog{Pool: pool, WAL: wal, tables: make(map[string]*Table)}
}

// Session returns a per-session overlay catalog: temp tables created through
// it are private to the session (shadowing nothing — creation fails on a
// name the root already holds), while base tables and name lookups fall
// through to the shared root. The overlay inherits the root's pool, WAL,
// and fault-injection configuration at call time.
func (c *Catalog) Session() *Catalog {
	root := c.root()
	atomic.AddInt64(&root.sessions, 1)
	return &Catalog{
		Pool:      root.Pool,
		WAL:       root.WAL,
		FaultPlan: root.FaultPlan,
		Retry:     root.Retry,
		tables:    make(map[string]*Table),
		parent:    root,
	}
}

// Release retires a session overlay: the root's live-session count drops,
// and when it reaches zero shared-table appends regain the in-place
// extension fast path. Call exactly once per Session(); no-op on the root.
func (c *Catalog) Release() {
	if c.parent != nil {
		atomic.AddInt64(&c.parent.sessions, -1)
	}
}

// concurrent reports whether any session overlay is live on this catalog's
// root — the moment shared-table caches must stop being mutated in place.
func (c *Catalog) concurrent() bool {
	return atomic.LoadInt64(&c.root().sessions) > 0
}

func (c *Catalog) root() *Catalog {
	if c.parent != nil {
		return c.parent
	}
	return c
}

// Owns reports whether t was created in this catalog (as opposed to a
// parent it is shared with). Session engines use it to decide between live
// reads of their private temps and snapshot-pinned reads of shared tables.
func (c *Catalog) Owns(t *Table) bool { return t != nil && t.owner == c }

// LockTable acquires a process-wide named lock for the table name, shared
// across every session of the same root catalog, and returns the unlock
// func. It serializes multi-step read-modify-write cycles that per-table
// mutexes cannot make atomic: idempotent base-table loads (check-then-load)
// and union-by-update rewrites of shared tables.
func (c *Catalog) LockTable(name string) func() {
	r := c.root()
	r.lmu.Lock()
	if r.locks == nil {
		r.locks = make(map[string]*sync.Mutex)
	}
	m, ok := r.locks[name]
	if !ok {
		m = &sync.Mutex{}
		r.locks[name] = m
	}
	r.lmu.Unlock()
	m.Lock()
	return m.Unlock
}

// StoreKind selects the physical storage for a new table.
type StoreKind int

// The available store kinds.
const (
	// StoreMem keeps tuples in memory (Oracle-AMM-like temp space).
	StoreMem StoreKind = iota
	// StorePaged serializes tuples into buffer-pool pages, unlogged
	// (temp tables bypass the redo log in all three RDBMSs).
	StorePaged
	// StorePagedLogged additionally appends every insert to the WAL
	// (base tables; "it still needs to log").
	StorePagedLogged
)

// Create adds a table. It fails if the name exists. On a session overlay,
// non-temp tables are created in the shared root; temp tables are created
// locally and must not shadow a root name.
func (c *Catalog) Create(name string, sch schema.Schema, kind StoreKind, temp bool) (*Table, error) {
	if c.parent != nil && !temp {
		return c.parent.Create(name, sch, kind, temp)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if c.parent != nil && c.parent.Has(name) {
		return nil, fmt.Errorf("catalog: table %q already exists (shared)", name)
	}
	var store storage.TupleStore
	switch kind {
	case StoreMem:
		store = storage.NewMemStore()
	case StorePaged:
		store = storage.NewPagedStore(c.Pool, nil, name)
	case StorePagedLogged:
		store = storage.NewPagedStore(c.Pool, c.WAL, name)
	default:
		return nil, fmt.Errorf("catalog: unknown store kind %d", kind)
	}
	if c.FaultPlan != nil {
		store = &storage.FaultyStore{Inner: store, Plan: c.FaultPlan}
	}
	if c.Retry.Attempts > 1 {
		store = &storage.RetryingStore{Inner: store, Policy: c.Retry}
	}
	if kind == StorePagedLogged && c.WAL != nil {
		c.WAL.AppendCreate(name, storage.EncodeSchema(nil, sch))
	}
	t := &Table{Name: name, Sch: sch, Store: store, Temp: temp, Kind: kind, owner: c}
	c.tables[name] = t
	return t, nil
}

// Get returns the named table, consulting the session overlay first and
// falling through to the shared root.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	if c.parent != nil {
		return c.parent.Get(name)
	}
	return nil, fmt.Errorf("catalog: no table %q", name)
}

// Has reports whether the table exists in this catalog or its root.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	_, ok := c.tables[name]
	c.mu.RUnlock()
	if ok {
		return true
	}
	if c.parent != nil {
		return c.parent.Has(name)
	}
	return false
}

// Drop removes a table, releasing its storage. The table leaves the catalog
// even when releasing storage fails — an injected fault mid-procedure must
// not strand a half-dropped table in the namespace (the chaos sweep asserts
// no temp-table debris survives a failed run). On a session overlay, a name
// not held locally is dropped from the shared root.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	if !ok {
		c.mu.Unlock()
		if c.parent != nil {
			return c.parent.Drop(name)
		}
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	c.mu.Unlock()
	t.mu.Lock()
	err := t.Store.Truncate()
	t.mu.Unlock()
	if t.Kind == StorePagedLogged && c.WAL != nil {
		c.WAL.AppendDrop(name)
	}
	return err
}

// RenameTable renames old to new (the ALTER TABLE ... RENAME used by the
// drop/alter union-by-update implementation). The new name must be free in
// the catalog holding the table. The rename invalidates the table's caches:
// the materialization cache holds a schema qualified with the old name, and
// any column references resolved against it would silently keep resolving
// post-rename. Renaming a table shared between sessions is not
// concurrency-safe (readers identify pinned views by name); the engine only
// renames session-private temps.
func (c *Catalog) RenameTable(old, new string) error {
	c.mu.Lock()
	t, ok := c.tables[old]
	if !ok {
		c.mu.Unlock()
		if c.parent != nil {
			return c.parent.RenameTable(old, new)
		}
		return fmt.Errorf("catalog: no table %q", old)
	}
	if _, ok := c.tables[new]; ok {
		c.mu.Unlock()
		return fmt.Errorf("catalog: table %q already exists", new)
	}
	delete(c.tables, old)
	t.mu.Lock()
	t.Name = new
	t.invalidateLocked()
	t.mu.Unlock()
	c.tables[new] = t
	c.mu.Unlock()
	return nil
}

// Names returns all table names visible to this catalog (overlay plus
// root), sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	if c.parent != nil {
		out = append(out, c.parent.Names()...)
	}
	sort.Strings(out)
	return out
}

// TempNames returns the names of this catalog's own temporary tables,
// sorted. On a session overlay that is exactly the session's private temps:
// cleanup paths iterate it, and must not reach across sessions.
func (c *Catalog) TempNames() []string {
	c.mu.RLock()
	var out []string
	for n, t := range c.tables {
		if t.Temp {
			out = append(out, n)
		}
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// TempBytes reports the storage footprint of this catalog's own temporary
// tables — the resident-memory figure the resource governor checks against
// MaxBytes at statement checkpoints. Session overlays account only their
// private temps, which is what makes the governor's memory budget
// per-session.
func (c *Catalog) TempBytes() int64 {
	c.mu.RLock()
	tabs := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		if t.Temp {
			tabs = append(tabs, t)
		}
	}
	c.mu.RUnlock()
	var n int64
	for _, t := range tabs {
		t.mu.Lock()
		n += t.Store.BytesUsed()
		t.mu.Unlock()
	}
	return n
}

// Insert appends one tuple to the table.
func (t *Table) Insert(tu relation.Tuple) error {
	if len(tu) != t.Sch.Arity() {
		return fmt.Errorf("catalog: insert arity %d into %s%s", len(tu), t.Name, t.Sch)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.Store.Insert(tu); err != nil {
		t.invalidateLocked()
		return err
	}
	t.noteAppendLocked([]relation.Tuple{tu})
	t.Stats.Rows++
	return nil
}

// InsertRelation bulk-appends all tuples of r.
func (t *Table) InsertRelation(r *relation.Relation) error {
	if !r.Sch.UnionCompatible(t.Sch) {
		return fmt.Errorf("catalog: insert arity %d into %s%s", r.Sch.Arity(), t.Name, t.Sch)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tu := range r.Tuples {
		if err := t.Store.Insert(tu.Clone()); err != nil {
			// The store may hold a prefix of r; drop the caches rather than
			// leave them diverged from storage.
			t.invalidateLocked()
			return err
		}
	}
	t.noteAppendLocked(r.Tuples)
	t.Stats.Rows += r.Len()
	return nil
}

// noteAppendLocked is the append-aware alternative to invalidate for
// session-private temporary tables: the version still bumps (appends are
// writes — statistics go stale, sorted indexes drop), but the
// materialization cache, hash indexes, and column dictionaries move forward
// *with* the version instead of being discarded. The cache header is
// extended in place so every reader holding it — including cached hash
// indexes, whose validity the join executor checks by identity against the
// probe-time materialization — observes the appended rows without a rebuild.
// This is what keeps build-side indexes alive across the accumulation-only
// iterations of semi-naive recursion.
//
// Tables reachable by other sessions take the invalidation path instead once
// any session overlay is live: their cached materialization and indexes may
// be held by concurrent readers, so they are never mutated in place — the
// write installs nothing and the next reader rebuilds at the new version,
// while pinned views keep the old, internally consistent image
// (copy-on-write). Session-overlay temps are private by construction and
// always extend in place; with zero live sessions no snapshot can be pinned,
// so every table does. Destructive writes (truncate, rename) invalidate for
// every table kind.
func (t *Table) noteAppendLocked(tuples []relation.Tuple) {
	private := t.owner != nil && t.owner.parent != nil
	if t.cache == nil || (!private && t.owner != nil && t.owner.concurrent()) {
		// Nothing materialized since the last write (so no current-version
		// access structure can exist), or the table is reachable by live
		// sessions and in-place extension would race with their readers.
		t.invalidateLocked()
		return
	}
	t.version++
	for _, tu := range tuples {
		t.cache.Tuples = append(t.cache.Tuples, tu.Clone())
	}
	from := t.cache.Len() - len(tuples)
	for key, e := range t.hashIndexes {
		if e.version != t.version-1 {
			delete(t.hashIndexes, key)
			continue
		}
		for row := from; row < t.cache.Len(); row++ {
			e.idx.Add(row)
		}
		t.hashIndexes[key] = hashIndexEntry{idx: e.idx, version: t.version}
	}
	for col, e := range t.dicts {
		if e.version != t.version-1 {
			delete(t.dicts, col)
			continue
		}
		e.dict.Extend(t.cache)
		t.dicts[col] = dictEntry{dict: e.dict, version: t.version}
	}
	for key, e := range t.csrs {
		if e.version != t.version-1 {
			delete(t.csrs, key)
			continue
		}
		e.csr.Extend(t.cache)
		t.csrs[key] = csrEntry{csr: e.csr, version: t.version}
	}
	// Sorted indexes have no cheap extension: appended rows break the order.
	t.indexes = nil
	t.Stats.Analyzed = false
}

// Truncate removes all tuples and invalidates indexes and statistics.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.invalidateLocked()
	t.Stats.Rows = 0
	return t.Store.Truncate()
}

// Materialize scans the store into a relation qualified with the table
// name. The result is cached until the next write; paged tables pay decode
// cost on every (re)materialization. Callers must treat the result as
// immutable: for shared tables it may be served concurrently to other
// sessions.
func (t *Table) Materialize() (*relation.Relation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.materializeLocked()
}

func (t *Table) materializeLocked() (*relation.Relation, error) {
	if t.cache != nil {
		return t.cache, nil
	}
	out := relation.NewWithCap(t.Sch.Qualify(t.Name), t.Store.Len())
	err := t.Store.Scan(func(tu relation.Tuple) bool {
		out.Tuples = append(out.Tuples, tu.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	t.cache = out
	return out, nil
}

// Rows returns the stored tuple count.
func (t *Table) Rows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Store.Len()
}

// Analyze marks statistics as current (ANALYZE / RUNSTATS).
func (t *Table) Analyze() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Stats.Rows = t.Store.Len()
	t.Stats.Analyzed = true
}

// Analyzed reports whether statistics are current, without racing a
// concurrent Analyze or invalidation.
func (t *Table) Analyzed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Stats.Analyzed
}

// Info returns the name, rendered schema, row count, and temp flag in one
// locked read — the catalog-listing snapshot (e.g. graphsql.DB.Tables)
// that must not race concurrent loads.
func (t *Table) Info() (name, sch string, rows int, temp bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Name, t.Sch.String(), t.Store.Len(), t.Temp
}

func indexKey(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// EnsureIndex builds (or returns a cached) sorted index on the columns.
func (t *Table) EnsureIndex(cols []int) (*relation.SortedIndex, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, _, err := t.ensureSortedIndexLocked(cols, t.version)
	return idx, err
}

func (t *Table) ensureSortedIndexLocked(cols []int, ver uint64) (*relation.SortedIndex, bool, error) {
	key := indexKey(cols)
	// The sorted-index map is dropped on every write, so presence implies
	// the current version; the explicit check keeps View serving honest.
	if idx, ok := t.indexes[key]; ok && t.version == ver {
		return idx, true, nil
	}
	r, err := t.materializeLocked()
	if err != nil {
		return nil, false, err
	}
	idx := relation.BuildSortedIndex(r, cols)
	if t.indexes == nil {
		t.indexes = make(map[string]*relation.SortedIndex)
	}
	t.indexes[key] = idx
	return idx, false, nil
}

// Index returns a previously built index on cols, or nil.
func (t *Table) Index(cols []int) *relation.SortedIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.indexes[indexKey(cols)]
}

// Version returns the table's write counter. It increases monotonically on
// every content or identity change (insert, truncate, rename).
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// EnsureHashIndex returns a build-side hash index on cols, building it only
// when no index for the current table version is cached. hit reports whether
// the cache served the request — the counter feed for the engine's
// IndexBuilds/IndexCacheHits statistics. For an immutable base table inside
// an iterative algorithm this makes the hash join's build phase run once per
// table instead of once per iteration.
func (t *Table) EnsureHashIndex(cols []int) (idx *relation.HashIndex, hit bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureHashIndexLocked(cols, t.version)
}

func (t *Table) ensureHashIndexLocked(cols []int, ver uint64) (*relation.HashIndex, bool, error) {
	key := indexKey(cols)
	if e, ok := t.hashIndexes[key]; ok && e.version == ver && t.version == ver {
		return e.idx, true, nil
	}
	r, err := t.materializeLocked()
	if err != nil {
		return nil, false, err
	}
	built := relation.BuildHashIndex(r, cols)
	if t.hashIndexes == nil {
		t.hashIndexes = make(map[string]hashIndexEntry)
	}
	t.hashIndexes[key] = hashIndexEntry{idx: built, version: t.version}
	return built, false, nil
}

// HashIndex returns a previously built hash index on cols valid for the
// current table version, or nil.
func (t *Table) HashIndex(cols []int) *relation.HashIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.hashIndexes[indexKey(cols)]; ok && e.version == t.version {
		return e.idx
	}
	return nil
}

// EnsureColumnDict returns a dictionary encoding of the column, built only
// when none is cached for the current table version. hit reports whether the
// cache served the request. The fused aggregate-join kernels use the dict of
// the build side's group column, so like the hash index it is built once per
// version of an immutable base table and reused by every iteration.
func (t *Table) EnsureColumnDict(col int) (dict *relation.ColumnDict, hit bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureColumnDictLocked(col, t.version)
}

func (t *Table) ensureColumnDictLocked(col int, ver uint64) (*relation.ColumnDict, bool, error) {
	if e, ok := t.dicts[col]; ok && e.version == ver && t.version == ver {
		return e.dict, true, nil
	}
	r, err := t.materializeLocked()
	if err != nil {
		return nil, false, err
	}
	built := relation.BuildColumnDict(r, col)
	if t.dicts == nil {
		t.dicts = make(map[int]dictEntry)
	}
	t.dicts[col] = dictEntry{dict: built, version: t.version}
	return built, false, nil
}

// ColumnDict returns a previously built dictionary on col valid for the
// current table version, or nil.
func (t *Table) ColumnDict(col int) *relation.ColumnDict {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.dicts[col]; ok && e.version == t.version {
		return e.dict
	}
	return nil
}

// csrKey identifies a CSR by its column triple; dstCol and wCol may be -1.
func csrKey(srcCol, dstCol, wCol int) string {
	return fmt.Sprintf("%d,%d,%d", srcCol, dstCol, wCol)
}

// EnsureCSR returns a CSR adjacency index grouping rows by srcCol (dstCol
// and wCol optionally dict-encode the target and weight columns; pass -1 to
// skip), building it only when none is cached for the current table version.
// hit reports whether the cache served the request — the counter feed for
// the engine's CSRBuilds/CSRCacheHits statistics. Like the hash-index cache,
// an immutable edge table inside an iterative algorithm builds its CSR once
// and serves every iteration's adjacency extends from it; appends to
// session-private temps extend it in place (noteAppend).
func (t *Table) EnsureCSR(srcCol, dstCol, wCol int) (csr *relation.CSR, hit bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureCSRLocked(srcCol, dstCol, wCol, t.version)
}

func (t *Table) ensureCSRLocked(srcCol, dstCol, wCol int, ver uint64) (*relation.CSR, bool, error) {
	key := csrKey(srcCol, dstCol, wCol)
	if e, ok := t.csrs[key]; ok && e.version == ver && t.version == ver {
		return e.csr, true, nil
	}
	r, err := t.materializeLocked()
	if err != nil {
		return nil, false, err
	}
	built := relation.BuildCSR(r, srcCol, dstCol, wCol)
	if t.csrs == nil {
		t.csrs = make(map[string]csrEntry)
	}
	t.csrs[key] = csrEntry{csr: built, version: t.version}
	return built, false, nil
}

// CSR returns a previously built CSR on the column triple valid for the
// current table version, or nil. The engine's kernel chooser peeks with it:
// a cached CSR makes the access path free even when the table would not
// justify a fresh build.
func (t *Table) CSR(srcCol, dstCol, wCol int) *relation.CSR {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.csrs[csrKey(srcCol, dstCol, wCol)]; ok && e.version == t.version {
		return e.csr
	}
	return nil
}

func (t *Table) invalidateLocked() {
	t.version++
	t.cache = nil
	t.indexes = nil
	t.hashIndexes = nil
	t.dicts = nil
	t.csrs = nil
	t.Stats.Analyzed = false
}
