package catalog

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func newCat() *Catalog {
	disk := storage.NewDisk()
	return New(storage.NewBufferPool(disk, 64), storage.NewWAL())
}

func sch() schema.Schema { return schema.Cols(value.KindInt, "a", "b") }

func tu(a, b int64) relation.Tuple { return relation.Tuple{value.Int(a), value.Int(b)} }

func TestCreateGetDrop(t *testing.T) {
	c := newCat()
	tab, err := c.Create("t", sch(), StoreMem, true)
	if err != nil || tab.Name != "t" || !tab.Temp {
		t.Fatalf("create: %v %v", tab, err)
	}
	if _, err := c.Create("t", sch(), StoreMem, true); err == nil {
		t.Error("duplicate create should fail")
	}
	if !c.Has("t") || c.Has("x") {
		t.Error("Has wrong")
	}
	got, err := c.Get("t")
	if err != nil || got != tab {
		t.Error("Get wrong")
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if c.Has("t") {
		t.Error("dropped table still present")
	}
	if err := c.Drop("t"); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := c.Get("t"); err == nil {
		t.Error("Get after drop should fail")
	}
	if _, err := c.Create("bad", sch(), StoreKind(99), false); err == nil {
		t.Error("unknown store kind should fail")
	}
}

func TestRenameTable(t *testing.T) {
	c := newCat()
	c.Create("old", sch(), StoreMem, false)
	c.Create("other", sch(), StoreMem, false)
	if err := c.RenameTable("old", "other"); err == nil {
		t.Error("rename onto existing name should fail")
	}
	if err := c.RenameTable("old", "new"); err != nil {
		t.Fatal(err)
	}
	if c.Has("old") || !c.Has("new") {
		t.Error("rename did not move the entry")
	}
	tab, _ := c.Get("new")
	if tab.Name != "new" {
		t.Error("table name not updated")
	}
	if err := c.RenameTable("ghost", "x"); err == nil {
		t.Error("rename of missing table should fail")
	}
}

func TestNamesAndTempNames(t *testing.T) {
	c := newCat()
	c.Create("b", sch(), StoreMem, false)
	c.Create("a", sch(), StoreMem, true)
	c.Create("c", sch(), StorePaged, true)
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	temps := c.TempNames()
	if len(temps) != 2 || temps[0] != "a" || temps[1] != "c" {
		t.Errorf("TempNames = %v", temps)
	}
}

func TestInsertArityChecks(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	if err := tab.Insert(relation.Tuple{value.Int(1)}); err == nil {
		t.Error("wrong arity insert should fail")
	}
	bad := relation.New(schema.Cols(value.KindInt, "only"))
	if err := tab.InsertRelation(bad); err == nil {
		t.Error("wrong arity bulk insert should fail")
	}
}

func TestMaterializeCachingAndInvalidation(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StorePaged, true)
	tab.Insert(tu(1, 2))
	r1, err := tab.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := tab.Materialize()
	if r1 != r2 {
		t.Error("materialization should be cached between writes")
	}
	if r1.Sch[0].Table != "t" {
		t.Error("materialized schema should be qualified with table name")
	}
	tab.Insert(tu(3, 4))
	r3, _ := tab.Materialize()
	if r3 != r1 || r3.Len() != 2 {
		t.Error("append should extend the cache in place, not drop it")
	}
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	r4, _ := tab.Materialize()
	if r4 == r1 || r4.Len() != 0 {
		t.Error("truncate should invalidate the cache")
	}
}

func TestAnalyzeAndStats(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, false)
	tab.Insert(tu(1, 1))
	if tab.Stats.Analyzed {
		t.Error("insert should clear analyzed flag")
	}
	tab.Analyze()
	if !tab.Stats.Analyzed || tab.Stats.Rows != 1 {
		t.Errorf("stats after analyze: %+v", tab.Stats)
	}
	tab.Insert(tu(2, 2))
	if tab.Stats.Analyzed {
		t.Error("stats must go stale on write")
	}
}

func TestEnsureIndexLifecycle(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(3, 0))
	tab.Insert(tu(1, 1))
	idx, err := tab.EnsureIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tuple(0)[0].AsInt() != 1 {
		t.Error("index not sorted")
	}
	idx2, _ := tab.EnsureIndex([]int{0})
	if idx2 != idx {
		t.Error("index should be cached")
	}
	if tab.Index([]int{0}) != idx || tab.Index([]int{1}) != nil {
		t.Error("Index lookup wrong")
	}
	tab.Insert(tu(0, 2))
	if tab.Index([]int{0}) != nil {
		t.Error("write should invalidate indexes")
	}
	idx3, _ := tab.EnsureIndex([]int{0})
	if idx3.Len() != 3 {
		t.Error("rebuilt index should cover all rows")
	}
}

func TestTruncateResetsEverything(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StorePaged, true)
	tab.Insert(tu(1, 1))
	tab.EnsureIndex([]int{0})
	tab.Analyze()
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 0 || tab.Stats.Rows != 0 || tab.Stats.Analyzed || tab.Index([]int{0}) != nil {
		t.Error("truncate should clear rows, stats, and indexes")
	}
}

func TestVersionBumpsOnEveryWrite(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	v0 := tab.Version()
	tab.Insert(tu(1, 1))
	v1 := tab.Version()
	if v1 <= v0 {
		t.Error("Insert must bump the version")
	}
	r := relation.New(sch())
	r.Append(tu(2, 2))
	tab.InsertRelation(r)
	v2 := tab.Version()
	if v2 <= v1 {
		t.Error("InsertRelation must bump the version")
	}
	tab.Truncate()
	v3 := tab.Version()
	if v3 <= v2 {
		t.Error("Truncate must bump the version")
	}
	if err := c.RenameTable("t", "u"); err != nil {
		t.Fatal(err)
	}
	if tab.Version() <= v3 {
		t.Error("RenameTable must bump the version")
	}
}

func TestEnsureHashIndexLifecycle(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(3, 0))
	tab.Insert(tu(1, 1))
	idx, hit, err := tab.EnsureHashIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first build must be a miss")
	}
	idx2, hit, _ := tab.EnsureHashIndex([]int{0})
	if !hit || idx2 != idx {
		t.Error("second request must hit the cache with the same index")
	}
	if tab.HashIndex([]int{0}) != idx || tab.HashIndex([]int{1}) != nil {
		t.Error("HashIndex lookup wrong")
	}
	tab.Insert(tu(0, 2))
	if tab.HashIndex([]int{0}) != idx {
		t.Error("append must keep the hash index cached")
	}
	idx3, hit, _ := tab.EnsureHashIndex([]int{0})
	if !hit || idx3 != idx {
		t.Error("post-append request must hit the incrementally maintained index")
	}
	if idx3.Rel().Len() != 3 {
		t.Error("extended index must cover all rows")
	}
	if rows := idx3.Probe(tu(0, 99), []int{0}); len(rows) != 1 || rows[0] != 2 {
		t.Errorf("extended index must find the appended row, got %v", rows)
	}
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tab.HashIndex([]int{0}) != nil {
		t.Error("truncate must invalidate the hash-index cache")
	}
}

func TestEnsureColumnDictLifecycle(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(7, 0))
	tab.Insert(tu(5, 1))
	tab.Insert(tu(7, 2))
	d, hit, err := tab.EnsureColumnDict(0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first build must be a miss")
	}
	if len(d.Keys) != 2 || d.Ords[0] != d.Ords[2] || d.Ords[0] == d.Ords[1] {
		t.Errorf("dict encoding wrong: keys=%v ords=%v", d.Keys, d.Ords)
	}
	d2, hit, _ := tab.EnsureColumnDict(0)
	if !hit || d2 != d {
		t.Error("second request must hit the cache with the same dict")
	}
	tab.Insert(tu(9, 3))
	if tab.ColumnDict(0) != d {
		t.Error("append must keep the dict cached")
	}
	d3, hit, _ := tab.EnsureColumnDict(0)
	if !hit || d3 != d {
		t.Error("post-append request must hit the incrementally extended dict")
	}
	if len(d3.Ords) != 4 || len(d3.Keys) != 3 {
		t.Errorf("extended dict must cover all rows: keys=%v ords=%v", d3.Keys, d3.Ords)
	}
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tab.ColumnDict(0) != nil {
		t.Error("truncate must invalidate the dict cache")
	}
}

func TestAppendAndInvalidationIndexCacheContract(t *testing.T) {
	build := func(tab *Table) {
		tab.EnsureIndex([]int{0})
		tab.EnsureHashIndex([]int{0})
		tab.EnsureColumnDict(0)
	}
	checkDropped := func(t *testing.T, tab *Table, op string) {
		t.Helper()
		if tab.Index([]int{0}) != nil {
			t.Errorf("%s left a stale sorted index", op)
		}
		if tab.HashIndex([]int{0}) != nil {
			t.Errorf("%s left a stale hash index", op)
		}
		if tab.ColumnDict(0) != nil {
			t.Errorf("%s left a stale column dict", op)
		}
	}
	// Appends extend the hash index and column dict incrementally; only the
	// sorted index (no cheap extension) is dropped.
	checkExtended := func(t *testing.T, tab *Table, op string, rows int) {
		t.Helper()
		if tab.Index([]int{0}) != nil {
			t.Errorf("%s left a stale sorted index", op)
		}
		idx := tab.HashIndex([]int{0})
		if idx == nil {
			t.Fatalf("%s dropped the hash index instead of extending it", op)
		}
		if idx.Rel().Len() != rows {
			t.Errorf("%s: hash index covers %d rows, want %d", op, idx.Rel().Len(), rows)
		}
		d := tab.ColumnDict(0)
		if d == nil {
			t.Fatalf("%s dropped the column dict instead of extending it", op)
		}
		if len(d.Ords) != rows {
			t.Errorf("%s: dict covers %d rows, want %d", op, len(d.Ords), rows)
		}
	}
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(1, 1))

	build(tab)
	tab.Insert(tu(2, 2))
	checkExtended(t, tab, "Insert", 2)

	build(tab)
	r := relation.New(sch())
	r.Append(tu(3, 3))
	tab.InsertRelation(r)
	checkExtended(t, tab, "InsertRelation", 3)

	build(tab)
	tab.Truncate()
	checkDropped(t, tab, "Truncate")

	tab.Insert(tu(4, 4))
	build(tab)
	if err := c.RenameTable("t", "t2"); err != nil {
		t.Fatal(err)
	}
	checkDropped(t, tab, "RenameTable")
}

func TestRenameInvalidatesMaterializationCache(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("old", sch(), StoreMem, false)
	tab.Insert(tu(1, 1))
	r, err := tab.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sch[0].Table != "old" {
		t.Fatalf("qualified table = %q", r.Sch[0].Table)
	}
	if err := c.RenameTable("old", "new"); err != nil {
		t.Fatal(err)
	}
	r2, err := tab.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Sch[0].Table != "new" {
		t.Errorf("materialization after rename still qualified %q", r2.Sch[0].Table)
	}
}
