package catalog

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func newCat() *Catalog {
	disk := storage.NewDisk()
	return New(storage.NewBufferPool(disk, 64), storage.NewWAL())
}

func sch() schema.Schema { return schema.Cols(value.KindInt, "a", "b") }

func tu(a, b int64) relation.Tuple { return relation.Tuple{value.Int(a), value.Int(b)} }

func TestCreateGetDrop(t *testing.T) {
	c := newCat()
	tab, err := c.Create("t", sch(), StoreMem, true)
	if err != nil || tab.Name != "t" || !tab.Temp {
		t.Fatalf("create: %v %v", tab, err)
	}
	if _, err := c.Create("t", sch(), StoreMem, true); err == nil {
		t.Error("duplicate create should fail")
	}
	if !c.Has("t") || c.Has("x") {
		t.Error("Has wrong")
	}
	got, err := c.Get("t")
	if err != nil || got != tab {
		t.Error("Get wrong")
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if c.Has("t") {
		t.Error("dropped table still present")
	}
	if err := c.Drop("t"); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := c.Get("t"); err == nil {
		t.Error("Get after drop should fail")
	}
	if _, err := c.Create("bad", sch(), StoreKind(99), false); err == nil {
		t.Error("unknown store kind should fail")
	}
}

func TestRenameTable(t *testing.T) {
	c := newCat()
	c.Create("old", sch(), StoreMem, false)
	c.Create("other", sch(), StoreMem, false)
	if err := c.RenameTable("old", "other"); err == nil {
		t.Error("rename onto existing name should fail")
	}
	if err := c.RenameTable("old", "new"); err != nil {
		t.Fatal(err)
	}
	if c.Has("old") || !c.Has("new") {
		t.Error("rename did not move the entry")
	}
	tab, _ := c.Get("new")
	if tab.Name != "new" {
		t.Error("table name not updated")
	}
	if err := c.RenameTable("ghost", "x"); err == nil {
		t.Error("rename of missing table should fail")
	}
}

func TestNamesAndTempNames(t *testing.T) {
	c := newCat()
	c.Create("b", sch(), StoreMem, false)
	c.Create("a", sch(), StoreMem, true)
	c.Create("c", sch(), StorePaged, true)
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	temps := c.TempNames()
	if len(temps) != 2 || temps[0] != "a" || temps[1] != "c" {
		t.Errorf("TempNames = %v", temps)
	}
}

func TestInsertArityChecks(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	if err := tab.Insert(relation.Tuple{value.Int(1)}); err == nil {
		t.Error("wrong arity insert should fail")
	}
	bad := relation.New(schema.Cols(value.KindInt, "only"))
	if err := tab.InsertRelation(bad); err == nil {
		t.Error("wrong arity bulk insert should fail")
	}
}

func TestMaterializeCachingAndInvalidation(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StorePaged, true)
	tab.Insert(tu(1, 2))
	r1, err := tab.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := tab.Materialize()
	if r1 != r2 {
		t.Error("materialization should be cached between writes")
	}
	if r1.Sch[0].Table != "t" {
		t.Error("materialized schema should be qualified with table name")
	}
	tab.Insert(tu(3, 4))
	r3, _ := tab.Materialize()
	if r3 == r1 || r3.Len() != 2 {
		t.Error("write should invalidate the cache")
	}
}

func TestAnalyzeAndStats(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, false)
	tab.Insert(tu(1, 1))
	if tab.Stats.Analyzed {
		t.Error("insert should clear analyzed flag")
	}
	tab.Analyze()
	if !tab.Stats.Analyzed || tab.Stats.Rows != 1 {
		t.Errorf("stats after analyze: %+v", tab.Stats)
	}
	tab.Insert(tu(2, 2))
	if tab.Stats.Analyzed {
		t.Error("stats must go stale on write")
	}
}

func TestEnsureIndexLifecycle(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(3, 0))
	tab.Insert(tu(1, 1))
	idx, err := tab.EnsureIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tuple(0)[0].AsInt() != 1 {
		t.Error("index not sorted")
	}
	idx2, _ := tab.EnsureIndex([]int{0})
	if idx2 != idx {
		t.Error("index should be cached")
	}
	if tab.Index([]int{0}) != idx || tab.Index([]int{1}) != nil {
		t.Error("Index lookup wrong")
	}
	tab.Insert(tu(0, 2))
	if tab.Index([]int{0}) != nil {
		t.Error("write should invalidate indexes")
	}
	idx3, _ := tab.EnsureIndex([]int{0})
	if idx3.Len() != 3 {
		t.Error("rebuilt index should cover all rows")
	}
}

func TestTruncateResetsEverything(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StorePaged, true)
	tab.Insert(tu(1, 1))
	tab.EnsureIndex([]int{0})
	tab.Analyze()
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 0 || tab.Stats.Rows != 0 || tab.Stats.Analyzed || tab.Index([]int{0}) != nil {
		t.Error("truncate should clear rows, stats, and indexes")
	}
}
