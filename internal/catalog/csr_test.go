package catalog

import (
	"sync"
	"testing"

	"repro/internal/relation"
)

// TestEnsureCSRLifecycle pins the CSR cache contract at the Table level,
// mirroring TestAppendAndInvalidationIndexCacheContract: appends extend the
// cached CSR in place at the bumped version (same instance, more rows);
// destructive writes (truncate, rename) drop it.
func TestEnsureCSRLifecycle(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("t", sch(), StoreMem, true)
	tab.Insert(tu(1, 2))

	csr, hit, err := tab.EnsureCSR(0, 1, -1)
	if err != nil || hit || csr == nil {
		t.Fatalf("first build: csr=%v hit=%v err=%v", csr, hit, err)
	}
	if csr.Len() != 1 {
		t.Fatalf("csr covers %d rows, want 1", csr.Len())
	}
	if _, hit, _ := tab.EnsureCSR(0, 1, -1); !hit {
		t.Error("second request should hit the cache")
	}
	if tab.CSR(0, 1, -1) != csr {
		t.Error("peek should see the cached CSR")
	}
	if tab.CSR(1, 0, -1) != nil {
		t.Error("peek on a different column triple should miss")
	}

	// In-place append: same CSR instance, extended to the new rows.
	tab.Insert(tu(1, 3))
	got, hit, err := tab.EnsureCSR(0, 1, -1)
	if err != nil || !hit {
		t.Fatalf("post-append request: hit=%v err=%v", hit, err)
	}
	if got != csr {
		t.Fatal("append rebuilt the CSR instead of extending it")
	}
	if got.Len() != 2 {
		t.Fatalf("extended csr covers %d rows, want 2", got.Len())
	}
	r := relation.New(sch())
	r.Append(tu(2, 1))
	tab.InsertRelation(r)
	if got, hit, _ := tab.EnsureCSR(0, 1, -1); !hit || got != csr || got.Len() != 3 {
		t.Fatalf("InsertRelation: hit=%v same=%v rows=%d, want extended in place to 3",
			hit, got == csr, got.Len())
	}

	// Destructive writes drop the CSR.
	tab.Truncate()
	if tab.CSR(0, 1, -1) != nil {
		t.Error("Truncate left a stale CSR")
	}
	tab.Insert(tu(4, 5))
	tab.EnsureCSR(0, 1, -1)
	if err := c.RenameTable("t", "t2"); err != nil {
		t.Fatal(err)
	}
	if tab.CSR(0, 1, -1) != nil {
		t.Error("RenameTable left a stale CSR")
	}
}

// TestSnapshotPinsCSR is the concurrent-sessions contract for the CSR
// cache: a snapshot-pinned reader keeps serving the CSR of its pinned
// version while a writer moves the table past it — the reader never
// observes the writer's rows through the adjacency index.
func TestSnapshotPinsCSR(t *testing.T) {
	root := newCat()
	tab, err := root.Create("t", sch(), StoreMem, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(tu(1, 2))
	tab.Insert(tu(1, 3))

	s := root.Session() // a live session forces writers onto the COW path
	defer s.Release()

	snap := NewSnapshot()
	v, err := snap.View(tab)
	if err != nil {
		t.Fatal(err)
	}
	csr, hit, err := v.EnsureCSR(0, 1, -1)
	if err != nil || hit || csr == nil {
		t.Fatalf("pinned build: csr=%v hit=%v err=%v", csr, hit, err)
	}
	if csr.Len() != 2 {
		t.Fatalf("pinned csr covers %d rows, want 2", csr.Len())
	}
	if _, hit, _ := v.EnsureCSR(0, 1, -1); !hit {
		t.Error("second pinned request should hit")
	}

	// A writer appends after the pin: the shared cache moves on, the pinned
	// view must keep (or privately rebuild) a 2-row CSR.
	tab.Insert(tu(1, 4))
	pinned, _, err := v.EnsureCSR(0, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Len() != 2 {
		t.Fatalf("pinned reader observed the writer's CSR bump: %d rows, want 2", pinned.Len())
	}
	if !pinned.Covers(v.Rel) {
		t.Error("pinned CSR no longer covers the pinned materialization")
	}
	if _, hit, _ := v.EnsureCSR(0, 1, -1); !hit {
		t.Error("post-bump re-request should hit the view-private cache")
	}
	if got := v.CSR(0, 1, -1); got == nil || got.Len() != 2 {
		t.Errorf("view peek after bump: %v, want the 2-row private CSR", got)
	}

	// A fresh view sees the writer's rows.
	fresh, err := tab.NewView()
	if err != nil {
		t.Fatal(err)
	}
	fcsr, _, err := fresh.EnsureCSR(0, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if fcsr.Len() != 3 {
		t.Errorf("fresh view's csr covers %d rows, want 3", fcsr.Len())
	}
}

// TestSnapshotCSRConcurrentWriter races a committing writer against a
// snapshot-pinned reader that keeps probing its CSR; meaningful under
// -race. The reader must always see exactly its pinned two rows.
func TestSnapshotCSRConcurrentWriter(t *testing.T) {
	root := newCat()
	tab, err := root.Create("t", sch(), StoreMem, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(tu(1, 2))
	tab.Insert(tu(2, 3))

	s := root.Session()
	defer s.Release()

	snap := NewSnapshot()
	v, err := snap.View(tab)
	if err != nil {
		t.Fatal(err)
	}

	const writes = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			tab.Insert(tu(int64(i%7), int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		var buf []int32
		for i := 0; i < writes; i++ {
			csr, _, err := v.EnsureCSR(0, 1, -1)
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			if csr.Len() != 2 {
				t.Errorf("pinned reader saw %d rows, want 2", csr.Len())
				return
			}
			rows := 0
			for ord := int32(0); ord < int32(csr.NumSrc()); ord++ {
				buf = csr.EdgeRows(ord, buf[:0])
				rows += len(buf)
			}
			if rows != 2 {
				t.Errorf("pinned CSR enumerates %d edges, want 2", rows)
				return
			}
		}
	}()
	wg.Wait()

	fresh, err := tab.NewView()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rel.Len() != 2+writes {
		t.Fatalf("fresh view has %d rows, want %d", fresh.Rel.Len(), 2+writes)
	}
	fcsr, _, err := fresh.EnsureCSR(0, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if fcsr.Len() != 2+writes {
		t.Errorf("fresh csr covers %d rows, want %d", fcsr.Len(), 2+writes)
	}
}
