package catalog

import (
	"sync"

	"repro/internal/relation"
)

// View is a statement-consistent read handle on one table: the
// materialization, analyzed flag, and version captured in a single locked
// read. Index and dictionary requests are served from the table's shared
// version-keyed caches while the table still is at the pinned version —
// so concurrent sessions share one build of each index — and fall back to
// view-private builds over the pinned materialization once a writer has
// moved the table on. Either way every structure a View serves is
// consistent with View.Rel, which is what the join executor's identity
// checks (index.Rel() == probe-time relation) require.
type View struct {
	// Rel is the pinned materialization. Immutable for shared tables; for
	// a session's own temp tables it is the live cache, which the same
	// session may extend in place between statements' operator calls (the
	// incremental index maintenance path).
	Rel *relation.Relation
	// Name and Analyzed are the table identity and optimizer-statistics
	// flag at pin time; Temp distinguishes session temporaries from base
	// tables (the kernel chooser's CSR affordability rule reads it).
	Name     string
	Analyzed bool
	Temp     bool

	tab *Table
	ver uint64

	// view-private caches, used only after the table moved past ver.
	mu     sync.Mutex
	hash   map[string]*relation.HashIndex
	sorted map[string]*relation.SortedIndex
	dicts  map[int]*relation.ColumnDict
	csrs   map[string]*relation.CSR
}

// NewView captures a read view of the table at its current version.
func (t *Table) NewView() (*View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, err := t.materializeLocked()
	if err != nil {
		return nil, err
	}
	return &View{Rel: r, Name: t.Name, Analyzed: t.Stats.Analyzed, Temp: t.Temp, tab: t, ver: t.version}, nil
}

// Version returns the table version the view is pinned at.
func (v *View) Version() uint64 { return v.ver }

// EnsureHashIndex returns a build-side hash index on cols consistent with
// v.Rel. While the table is still at the pinned version the shared cache
// serves (or stores) the index; afterwards the build is private to the
// view. hit reports whether any cache — shared or private — served the
// request.
func (v *View) EnsureHashIndex(cols []int) (*relation.HashIndex, bool, error) {
	t := v.tab
	t.mu.Lock()
	if t.version == v.ver {
		defer t.mu.Unlock()
		return t.ensureHashIndexLocked(cols, v.ver)
	}
	t.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	key := indexKey(cols)
	if idx, ok := v.hash[key]; ok {
		return idx, true, nil
	}
	idx := relation.BuildHashIndex(v.Rel, cols)
	if v.hash == nil {
		v.hash = make(map[string]*relation.HashIndex)
	}
	v.hash[key] = idx
	return idx, false, nil
}

// EnsureSortedIndex mirrors EnsureHashIndex for the sorted (B+-tree
// stand-in) index cache.
func (v *View) EnsureSortedIndex(cols []int) (*relation.SortedIndex, bool, error) {
	t := v.tab
	t.mu.Lock()
	if t.version == v.ver {
		defer t.mu.Unlock()
		return t.ensureSortedIndexLocked(cols, v.ver)
	}
	t.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	key := indexKey(cols)
	if idx, ok := v.sorted[key]; ok {
		return idx, true, nil
	}
	idx := relation.BuildSortedIndex(v.Rel, cols)
	if v.sorted == nil {
		v.sorted = make(map[string]*relation.SortedIndex)
	}
	v.sorted[key] = idx
	return idx, false, nil
}

// EnsureColumnDict mirrors EnsureHashIndex for the column-dictionary cache.
func (v *View) EnsureColumnDict(col int) (*relation.ColumnDict, bool, error) {
	t := v.tab
	t.mu.Lock()
	if t.version == v.ver {
		defer t.mu.Unlock()
		return t.ensureColumnDictLocked(col, v.ver)
	}
	t.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	if d, ok := v.dicts[col]; ok {
		return d, true, nil
	}
	d := relation.BuildColumnDict(v.Rel, col)
	if v.dicts == nil {
		v.dicts = make(map[int]*relation.ColumnDict)
	}
	v.dicts[col] = d
	return d, false, nil
}

// EnsureCSR mirrors EnsureHashIndex for the CSR adjacency-index cache: a
// snapshot-pinned reader keeps its own CSR over the pinned materialization
// once a writer moves the table past the pinned version, so it never
// observes the writer's extended or rebuilt CSR.
func (v *View) EnsureCSR(srcCol, dstCol, wCol int) (*relation.CSR, bool, error) {
	t := v.tab
	t.mu.Lock()
	if t.version == v.ver {
		defer t.mu.Unlock()
		return t.ensureCSRLocked(srcCol, dstCol, wCol, v.ver)
	}
	t.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	key := csrKey(srcCol, dstCol, wCol)
	if c, ok := v.csrs[key]; ok {
		return c, true, nil
	}
	c := relation.BuildCSR(v.Rel, srcCol, dstCol, wCol)
	if v.csrs == nil {
		v.csrs = make(map[string]*relation.CSR)
	}
	v.csrs[key] = c
	return c, false, nil
}

// CSR peeks for a CSR on the column triple that is already consistent with
// the view — the shared cache at the pinned version, or a view-private build
// — without building one. The kernel chooser uses it to treat an
// already-paid CSR as free.
func (v *View) CSR(srcCol, dstCol, wCol int) *relation.CSR {
	t := v.tab
	t.mu.Lock()
	if t.version == v.ver {
		if e, ok := t.csrs[csrKey(srcCol, dstCol, wCol)]; ok && e.version == v.ver {
			t.mu.Unlock()
			return e.csr
		}
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.csrs[csrKey(srcCol, dstCol, wCol)]
}

// Snapshot is the per-statement catalog snapshot a session engine arms at
// statement start: the first read of each shared table pins a View at the
// table's then-current version, and every further read of that name within
// the statement is served from the same View — scans, cached
// materializations, hash indexes, and column dicts all at one version,
// regardless of concurrent writers. Writers never block on a snapshot:
// they bump versions copy-on-write and the snapshot keeps the old image.
type Snapshot struct {
	mu    sync.Mutex
	views map[string]*View
}

// NewSnapshot returns an empty statement snapshot.
func NewSnapshot() *Snapshot { return &Snapshot{} }

// View returns the statement's pinned view of t, pinning it on first use.
// Views are keyed by name: a table dropped and recreated mid-statement by
// another session keeps serving the image pinned at first touch.
func (s *Snapshot) View(t *Table) (*View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[t.Name]; ok {
		return v, nil
	}
	v, err := t.NewView()
	if err != nil {
		return nil, err
	}
	if s.views == nil {
		s.views = make(map[string]*View)
	}
	s.views[t.Name] = v
	return v, nil
}

// Forget drops the pinned view of name, so the statement's next read of it
// re-pins at the current version — the read-your-own-writes rule for the
// rare statement that writes a shared table it also reads.
func (s *Snapshot) Forget(name string) {
	s.mu.Lock()
	delete(s.views, name)
	s.mu.Unlock()
}
