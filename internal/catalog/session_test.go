package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// TestSessionOverlay pins the namespace rules: temps are private to the
// session that created them, base tables are shared through fall-through,
// and a session's non-temp DDL lands in the shared root.
func TestSessionOverlay(t *testing.T) {
	root := newCat()
	base, err := root.Create("base", sch(), StoreMem, false)
	if err != nil {
		t.Fatal(err)
	}
	base.Insert(tu(1, 2))

	s1, s2 := root.Session(), root.Session()
	defer s1.Release()
	defer s2.Release()

	// Shared base visible through the overlay, same object.
	got, err := s1.Get("base")
	if err != nil || got != base {
		t.Fatalf("session Get(base) = %v, %v", got, err)
	}

	// Same-named temps coexist, one per session, invisible elsewhere.
	if _, err := s1.Create("tmp", sch(), StoreMem, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Create("tmp", sch(), StoreMem, true); err != nil {
		t.Fatalf("second session's same-named temp: %v", err)
	}
	if root.Has("tmp") {
		t.Error("session temp leaked into the root namespace")
	}
	t1, _ := s1.Get("tmp")
	t2, _ := s2.Get("tmp")
	if t1 == t2 {
		t.Error("sessions share a temp table object")
	}

	// A temp may not shadow a shared name, and session temps stay out of
	// the root's listings.
	if _, err := s1.Create("base", sch(), StoreMem, true); err == nil {
		t.Error("temp shadowing a shared table should fail")
	}
	if names := root.TempNames(); len(names) != 0 {
		t.Errorf("root lists session temps: %v", names)
	}
	if names := s1.TempNames(); len(names) != 1 || names[0] != "tmp" {
		t.Errorf("session TempNames = %v", names)
	}

	// Non-temp DDL from a session is shared DDL.
	if _, err := s1.Create("published", sch(), StoreMem, false); err != nil {
		t.Fatal(err)
	}
	if !root.Has("published") || !s2.Has("published") {
		t.Error("session's base CREATE not visible everywhere")
	}

	// Dropping one session's temp leaves its namesake alone.
	if err := s1.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	if s1.Has("tmp") || !s2.Has("tmp") {
		t.Error("drop crossed session namespaces")
	}
}

// TestSessionCountGatesInPlaceAppend pins the copy-on-write gate: while no
// sessions are live, appends to a warm base table extend its caches in
// place (the incremental index maintenance fast path); once any session is
// live, a pinned view could exist, so the same append must invalidate and
// rebuild instead.
func TestSessionCountGatesInPlaceAppend(t *testing.T) {
	root := newCat()
	tab, err := root.Create("t", sch(), StoreMem, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(tu(1, 2))

	warm := func() {
		if _, err := tab.Materialize(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.EnsureHashIndex([]int{0}); err != nil {
			t.Fatal(err)
		}
	}

	// Zero live sessions: the index rides the append to the new version.
	warm()
	tab.Insert(tu(3, 4))
	if _, hit, _ := tab.EnsureHashIndex([]int{0}); !hit {
		t.Error("single-session append should extend the hash index in place")
	}

	// One live session: the same append must invalidate.
	s := root.Session()
	warm()
	tab.Insert(tu(5, 6))
	if _, hit, _ := tab.EnsureHashIndex([]int{0}); hit {
		t.Error("append with live sessions must invalidate shared caches")
	}

	// Overlay-private temps stay on the fast path even with sessions live.
	tmp, err := s.Create("tmp", sch(), StoreMem, true)
	if err != nil {
		t.Fatal(err)
	}
	tmp.Insert(tu(1, 1))
	if _, err := tmp.Materialize(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tmp.EnsureHashIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	tmp.Insert(tu(2, 2))
	if _, hit, _ := tmp.EnsureHashIndex([]int{0}); !hit {
		t.Error("session-private temp append should extend in place")
	}

	// Releasing the last session reopens the in-place gate.
	s.Release()
	warm()
	tab.Insert(tu(7, 8))
	if _, hit, _ := tab.EnsureHashIndex([]int{0}); !hit {
		t.Error("append after last release should extend in place again")
	}
}

// TestSnapshotPinsViews pins statement-snapshot semantics: the first touch
// of a table pins its image; concurrent writers move the table on without
// disturbing the pinned view; Forget re-pins at the current version.
func TestSnapshotPinsViews(t *testing.T) {
	root := newCat()
	tab, err := root.Create("t", sch(), StoreMem, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(tu(1, 2))
	tab.Insert(tu(3, 4))

	s := root.Session() // a live session forces writers onto the COW path
	defer s.Release()

	snap := NewSnapshot()
	v, err := snap.View(tab)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rel.Len() != 2 {
		t.Fatalf("pinned view has %d rows, want 2", v.Rel.Len())
	}

	// A writer appends after the pin: the snapshot must keep the old image,
	// a fresh view must see the new one.
	tab.Insert(tu(5, 6))
	again, err := snap.View(tab)
	if err != nil {
		t.Fatal(err)
	}
	if again != v || again.Rel.Len() != 2 {
		t.Errorf("snapshot re-read returned %d rows at a different pin, want the original 2", again.Rel.Len())
	}
	fresh, err := tab.NewView()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rel.Len() != 3 {
		t.Errorf("fresh view has %d rows, want 3", fresh.Rel.Len())
	}

	// Index requests on the moved-past view build privately but stay
	// consistent with the pinned materialization.
	idx, hit, err := v.EnsureHashIndex([]int{0})
	if err != nil || hit {
		t.Fatalf("first private index build: hit=%v err=%v", hit, err)
	}
	if idx == nil {
		t.Fatal("no index built")
	}
	if _, hit, _ := v.EnsureHashIndex([]int{0}); !hit {
		t.Error("second request should hit the view-private cache")
	}

	// Forget is read-your-own-writes: the next touch re-pins.
	snap.Forget("t")
	repinned, err := snap.View(tab)
	if err != nil {
		t.Fatal(err)
	}
	if repinned.Rel.Len() != 3 {
		t.Errorf("re-pinned view has %d rows, want 3", repinned.Rel.Len())
	}
}

// TestCatalogListingRace drives Names/TempNames/Has while another goroutine
// churns DDL — the unsafe-map-iteration regression test; fails under -race
// if listings walk the live map unlocked.
func TestCatalogListingRace(t *testing.T) {
	root := newCat()
	root.Create("base", sch(), StoreMem, false)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := root.Session()
		defer s.Release()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("t%d", i%8)
			if s.Has(name) {
				s.Drop(name)
			} else {
				s.Create(name, sch(), StoreMem, true)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		root.Names()
		root.TempNames()
		root.Has("base")
		s2 := root.Session()
		s2.Names()
		s2.Release()
	}
	close(stop)
	wg.Wait()
}
