package catalog

import (
	"fmt"
	"sort"
)

// Property-graph definitions (CREATE PROPERTY GRAPH) are catalog metadata:
// named views over existing vertex/edge tables. Like non-temp DDL they are
// shared across sessions — a session overlay stores and resolves them on
// the root, so a graph created through one session is immediately visible
// to all. Definitions are immutable once created (drop + recreate to
// change), which is what makes sharing them a plain map under a mutex
// safe: readers hold *GraphDef snapshots that no writer mutates.

// GraphVertex is one vertex table of a property graph.
type GraphVertex struct {
	Table string
	Key   string
}

// GraphEdge is one edge table: SrcKey/DstKey columns reference the keys of
// SrcTable/DstTable vertex tables.
type GraphEdge struct {
	Table    string
	SrcKey   string
	SrcTable string
	DstKey   string
	DstTable string
}

// GraphDef is an immutable property-graph definition.
type GraphDef struct {
	Name     string
	Vertices []GraphVertex
	Edges    []GraphEdge
}

// Vertex returns the vertex table entry by table name.
func (d *GraphDef) Vertex(table string) (GraphVertex, bool) {
	for _, v := range d.Vertices {
		if v.Table == table {
			return v, true
		}
	}
	return GraphVertex{}, false
}

// Edge returns the edge table entry by table name.
func (d *GraphDef) Edge(table string) (GraphEdge, bool) {
	for _, e := range d.Edges {
		if e.Table == table {
			return e, true
		}
	}
	return GraphEdge{}, false
}

// CreateGraph registers a property-graph definition. Graph names are a
// namespace of their own (a graph may share its name with a table). On a
// session overlay the definition is created in the shared root, mirroring
// non-temp DDL.
func (c *Catalog) CreateGraph(d *GraphDef) error {
	r := c.root()
	r.gmu.Lock()
	defer r.gmu.Unlock()
	if r.graphs == nil {
		r.graphs = make(map[string]*GraphDef)
	}
	if _, ok := r.graphs[d.Name]; ok {
		return fmt.Errorf("catalog: property graph %q already exists", d.Name)
	}
	r.graphs[d.Name] = d
	return nil
}

// GetGraph resolves a property-graph definition (shared on the root).
func (c *Catalog) GetGraph(name string) (*GraphDef, error) {
	r := c.root()
	r.gmu.Lock()
	d, ok := r.graphs[name]
	r.gmu.Unlock()
	if !ok {
		return nil, fmt.Errorf("catalog: no property graph %q", name)
	}
	return d, nil
}

// DropGraph removes a property-graph definition.
func (c *Catalog) DropGraph(name string) error {
	r := c.root()
	r.gmu.Lock()
	defer r.gmu.Unlock()
	if _, ok := r.graphs[name]; !ok {
		return fmt.Errorf("catalog: no property graph %q", name)
	}
	delete(r.graphs, name)
	return nil
}

// GraphNames lists the defined property graphs, sorted.
func (c *Catalog) GraphNames() []string {
	r := c.root()
	r.gmu.Lock()
	defer r.gmu.Unlock()
	names := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
