package sql

import (
	"fmt"
	"strings"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file compiles the SQL expression AST into the vectorized kernels of
// package ra — the batch counterpart of expr.go. Every node with a
// dedicated kernel (literals, column reads, arithmetic, comparisons,
// three-valued AND/OR/NOT, IS NULL) compiles to one closure dispatch per
// batch; any other subtree (function calls, IN, EXISTS) compiles through
// the row compiler and runs row-at-a-time inside the batch loop. The
// fallback is tracked per compilation so the executor can charge the
// RowFallbacks counter and EXPLAIN ANALYZE can pin which path ran.
// Semantics are identical to the row path by construction: the kernels
// reuse the same value.* operations and the same three-valued logic, and
// FuzzVectorVsRow holds the two paths byte-identical.

// compileVecExpr compiles an expression into a batch kernel over sch.
// fellBack reports whether any subtree compiled through the row path.
func (x *Exec) compileVecExpr(e Expr, sch schema.Schema) (ex ra.VecExpr, fellBack bool, err error) {
	switch n := e.(type) {
	case *Lit:
		return ra.VecConstExpr(n.Val), false, nil
	case *ColRef:
		idx, err := sch.Resolve(n.Table, n.Name)
		if err != nil {
			return nil, false, err
		}
		return ra.VecColExpr(idx), false, nil
	case *Unary:
		inner, fb, err := x.compileVecExpr(n.X, sch)
		if err != nil {
			return nil, false, err
		}
		switch n.Op {
		case "-":
			return ra.VecNeg(inner), fb, nil
		case "not":
			return ra.VecNot(inner), fb, nil
		}
		return nil, false, fmt.Errorf("sql: unknown unary operator %q", n.Op)
	case *Binary:
		l, lfb, err := x.compileVecExpr(n.L, sch)
		if err != nil {
			return nil, false, err
		}
		r, rfb, err := x.compileVecExpr(n.R, sch)
		if err != nil {
			return nil, false, err
		}
		fb := lfb || rfb
		switch n.Op {
		case "+", "-", "*", "/", "%":
			generic := ra.VecArith(n.Op, l, r)
			// Column/constant operands get the typed kernels (which fall
			// back to generic per batch if the column isn't dense).
			lc, lIsCol := n.L.(*ColRef)
			rc, rIsCol := n.R.(*ColRef)
			lLit, lIsLit := n.L.(*Lit)
			rLit, rIsLit := n.R.(*Lit)
			switch {
			case lIsCol && rIsCol:
				li, err := sch.Resolve(lc.Table, lc.Name)
				if err != nil {
					return nil, false, err
				}
				ri, err := sch.Resolve(rc.Table, rc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.VecArithCols(n.Op, li, ri, generic), fb, nil
			case lIsCol && rIsLit:
				li, err := sch.Resolve(lc.Table, lc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.VecArithColConst(n.Op, li, rLit.Val, true, generic), fb, nil
			case lIsLit && rIsCol:
				ri, err := sch.Resolve(rc.Table, rc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.VecArithColConst(n.Op, ri, lLit.Val, false, generic), fb, nil
			}
			return generic, fb, nil
		case "and":
			return ra.VecAnd(l, r), fb, nil
		case "or":
			return ra.VecOr(l, r), fb, nil
		}
		if op, ok := ra.CmpOpFromString(n.Op); ok {
			return ra.VecCompareExpr(op, l, r), fb, nil
		}
		return nil, false, fmt.Errorf("sql: unknown operator %q", n.Op)
	case *IsNullExpr:
		inner, fb, err := x.compileVecExpr(n.X, sch)
		if err != nil {
			return nil, false, err
		}
		return ra.VecIsNull(inner, n.Negated), fb, nil
	}
	// No dedicated kernel (FuncCall, IN, EXISTS, future shapes): compile the
	// whole subtree through the row path and run it inside the batch loop.
	rowEx, err := x.compileExpr(e, sch)
	if err != nil {
		return nil, false, err
	}
	return ra.VecFallbackExpr(rowEx), true, nil
}

// compileVecPred compiles a predicate into a selection kernel: the
// conjunction splits into per-conjunct kernels composed by selection-vector
// refinement, so each conjunct only touches rows surviving the previous
// ones. UNKNOWN filters the row out, as compilePred does.
func (x *Exec) compileVecPred(e Expr, sch schema.Schema) (ra.VecPred, bool, error) {
	conjuncts := splitAnd(e)
	preds := make([]ra.VecPred, 0, len(conjuncts))
	fellBack := false
	for _, c := range conjuncts {
		p, fb, err := x.compileVecConjunct(c, sch)
		if err != nil {
			return nil, false, err
		}
		fellBack = fellBack || fb
		preds = append(preds, p)
	}
	return ra.AndSel(preds...), fellBack, nil
}

// flipCmp mirrors a comparison when its operands swap sides (k < col ⇔
// col > k).
func flipCmp(op ra.CmpOp) ra.CmpOp {
	switch op {
	case ra.CmpLt:
		return ra.CmpGt
	case ra.CmpLe:
		return ra.CmpGe
	case ra.CmpGt:
		return ra.CmpLt
	case ra.CmpGe:
		return ra.CmpLe
	}
	return op
}

// compileVecConjunct compiles one conjunct, recognizing the hot comparison
// shapes (column ⋈ constant, column ⋈ column) as direct selection kernels.
func (x *Exec) compileVecConjunct(c Expr, sch schema.Schema) (ra.VecPred, bool, error) {
	if b, ok := c.(*Binary); ok {
		if op, isCmp := ra.CmpOpFromString(b.Op); isCmp {
			lc, lIsCol := b.L.(*ColRef)
			rc, rIsCol := b.R.(*ColRef)
			lLit, lIsLit := b.L.(*Lit)
			rLit, rIsLit := b.R.(*Lit)
			switch {
			case lIsCol && rIsLit:
				li, err := sch.Resolve(lc.Table, lc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.SelCompareColConst(li, op, rLit.Val), false, nil
			case lIsLit && rIsCol:
				ri, err := sch.Resolve(rc.Table, rc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.SelCompareColConst(ri, flipCmp(op), lLit.Val), false, nil
			case lIsCol && rIsCol:
				li, err := sch.Resolve(lc.Table, lc.Name)
				if err != nil {
					return nil, false, err
				}
				ri, err := sch.Resolve(rc.Table, rc.Name)
				if err != nil {
					return nil, false, err
				}
				return ra.SelCompareColCol(li, ri, op), false, nil
			}
			l, lfb, err := x.compileVecExpr(b.L, sch)
			if err != nil {
				return nil, false, err
			}
			r, rfb, err := x.compileVecExpr(b.R, sch)
			if err != nil {
				return nil, false, err
			}
			return ra.SelCompare(op, l, r), lfb || rfb, nil
		}
	}
	ex, fb, err := x.compileVecExpr(c, sch)
	if err != nil {
		return nil, false, err
	}
	return ra.SelFromExpr(ex), fb, nil
}

// compileVecAggs compiles the collected aggregate calls into vector
// aggregate specs. ok reports whether every aggregate is vectorizable (it
// always is for the supported five; kept for future shapes); fellBack
// reports row-fallback argument subtrees.
func (x *Exec) compileVecAggs(aggCalls []*FuncCall, sch schema.Schema) (specs []ra.VecAggSpec, fellBack, ok bool, err error) {
	specs = make([]ra.VecAggSpec, len(aggCalls))
	for i, f := range aggCalls {
		col := schema.Column{Name: aggName(i), Type: value.KindFloat}
		var arg ra.VecExpr
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, false, false, fmt.Errorf("sql: aggregate %s takes one argument", f.Name)
			}
			var fb bool
			arg, fb, err = x.compileVecExpr(f.Args[0], sch)
			if err != nil {
				return nil, false, false, err
			}
			fellBack = fellBack || fb
		}
		var kind ra.VecAggKind
		switch strings.ToLower(f.Name) {
		case "sum":
			kind = ra.VecSum
		case "min":
			kind = ra.VecMin
		case "max":
			kind = ra.VecMax
		case "avg":
			kind = ra.VecAvg
		case "count":
			col.Type = value.KindInt
			kind = ra.VecCount
			if f.Star {
				kind = ra.VecCountStar
			}
		default:
			return nil, false, false, nil
		}
		specs[i] = ra.VecAggSpec{Col: col, Kind: kind, Arg: arg}
	}
	return specs, fellBack, true, nil
}

// vecPathNote annotates an analyzed plan node with the path that ran.
func vecPathNote(fellBack bool) string {
	if fellBack {
		return " (vectorized, row fallback)"
	}
	return " (vectorized)"
}

// selectVec runs a vectorized filter and charges the batch.
func (x *Exec) selectVec(input *relation.Relation, pred ra.VecPred, fellBack bool) (*relation.Relation, error) {
	out, err := ra.SelectVec(input, pred)
	if err != nil {
		return nil, err
	}
	x.Eng.CountVectorizedBatch(fellBack)
	return out, nil
}

// projectVecOuts runs a vectorized projection, charging the batch to the
// counters and the freshly allocated output values to the statement's
// memory budget (16 bytes per value slot, the governor's coarse unit) — the
// per-batch accounting the row path never had.
func (x *Exec) projectVecOuts(rel *relation.Relation, outs []ra.VecOutCol, fellBack bool) (*relation.Relation, error) {
	out, err := ra.ProjectVec(rel, outs)
	if err != nil {
		return nil, err
	}
	x.Eng.CountVectorizedBatch(fellBack)
	if err := x.Eng.Gov().ChargeBytes(int64(out.Len()) * int64(out.Sch.Arity()) * 16); err != nil {
		return nil, err
	}
	return out, nil
}
