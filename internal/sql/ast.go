package sql

import (
	"strings"

	"repro/internal/value"
)

// Expr is a SQL expression node.
type Expr interface{ exprNode() }

// ColRef references a (possibly qualified) column.
type ColRef struct{ Table, Name string }

// Lit is a literal constant.
type Lit struct{ Val value.Value }

// Unary applies "-" or "not".
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an infix operator: arithmetic (+,-,*,/,%), comparison
// (=,<>,<,<=,>,>=), or logic (and, or).
type Binary struct {
	Op   string
	L, R Expr
}

// FuncCall is a function application; Star marks count(*). Aggregate
// functions (sum, count, min, max, avg) are recognized by name.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// InExpr is "x [not] in (subquery | list)".
type InExpr struct {
	X       Expr
	Sub     *SelectStmt
	List    []Expr
	Negated bool
}

// ExistsExpr is "[not] exists (subquery)".
type ExistsExpr struct {
	Sub     *SelectStmt
	Negated bool
}

// IsNullExpr is "x is [not] null".
type IsNullExpr struct {
	X       Expr
	Negated bool
}

func (*ColRef) exprNode()     {}
func (*Lit) exprNode()        {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*FuncCall) exprNode()   {}
func (*InExpr) exprNode()     {}
func (*ExistsExpr) exprNode() {}
func (*IsNullExpr) exprNode() {}

// AggFuncs lists the aggregate function names.
var AggFuncs = map[string]bool{"sum": true, "count": true, "min": true, "max": true, "avg": true}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return AggFuncs[strings.ToLower(f.Name)] }

// SelectItem is one entry of the select list; Star selects everything.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// JoinKind distinguishes the explicit join forms.
type JoinKind int

// The join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinFullOuter
)

// TableRef is one FROM entry: a named table, a subquery, or an explicit
// join of two refs.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt

	// GraphTable is set for GRAPH_TABLE(...) references until
	// ExpandStatement compiles them away (into Sub, or a WITH+ recursion).
	GraphTable *GraphTableRef

	Join  *TableRef // left side when this is a join node
	Right *TableRef
	Kind  JoinKind
	On    Expr
}

// IsJoin reports whether the ref is an explicit join node.
func (t *TableRef) IsJoin() bool { return t.Join != nil }

// DisplayName returns the alias or name used to qualify columns.
func (t *TableRef) DisplayName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a (possibly compound) query block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []*TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none

	// Set operation chaining: this block {SetOp next}.
	SetOp string // "", "union", "union all", "except", "intersect"
	Next  *SelectStmt
}

// Walk visits every expression in the statement (including nested
// subqueries when deep is true), calling fn on each node.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		Walk(x.X, fn)
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *InExpr:
		Walk(x.X, fn)
		for _, a := range x.List {
			Walk(a, fn)
		}
	case *IsNullExpr:
		Walk(x.X, fn)
	}
}

// ReferencedTables collects every base-relation name a statement touches,
// including nested subqueries in FROM, WHERE and the set-op chain; used to
// build the dependency graph of Definition 9.1.
func ReferencedTables(s *SelectStmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	var visitStmt func(st *SelectStmt)
	var visitRef func(t *TableRef)
	visitRef = func(t *TableRef) {
		if t == nil {
			return
		}
		if t.IsJoin() {
			visitRef(t.Join)
			visitRef(t.Right)
			return
		}
		if t.Sub != nil {
			visitStmt(t.Sub)
			return
		}
		add(t.Name)
	}
	visitExpr := func(e Expr) {
		Walk(e, func(n Expr) {
			switch x := n.(type) {
			case *InExpr:
				if x.Sub != nil {
					visitStmt(x.Sub)
				}
			case *ExistsExpr:
				if x.Sub != nil {
					visitStmt(x.Sub)
				}
			}
		})
	}
	visitStmt = func(st *SelectStmt) {
		if st == nil {
			return
		}
		for _, f := range st.From {
			visitRef(f)
		}
		for _, it := range st.Items {
			visitExpr(it.Expr)
		}
		visitExpr(st.Where)
		visitExpr(st.Having)
		for _, g := range st.GroupBy {
			visitExpr(g)
		}
		visitStmt(st.Next)
	}
	visitStmt(s)
	return out
}

// VisitSelects calls fn on s and every nested SelectStmt — FROM subqueries,
// IN/EXISTS subqueries anywhere an expression appears, and every arm of the
// set-operation chain — depth-first.
func VisitSelects(s *SelectStmt, fn func(*SelectStmt)) {
	if s == nil {
		return
	}
	fn(s)
	var visitRef func(t *TableRef)
	visitRef = func(t *TableRef) {
		if t == nil {
			return
		}
		if t.IsJoin() {
			visitRef(t.Join)
			visitRef(t.Right)
			return
		}
		VisitSelects(t.Sub, fn)
	}
	visitExpr := func(e Expr) {
		Walk(e, func(n Expr) {
			switch x := n.(type) {
			case *InExpr:
				VisitSelects(x.Sub, fn)
			case *ExistsExpr:
				VisitSelects(x.Sub, fn)
			}
		})
	}
	for _, f := range s.From {
		visitRef(f)
	}
	for _, it := range s.Items {
		visitExpr(it.Expr)
	}
	visitExpr(s.Where)
	visitExpr(s.Having)
	for _, g := range s.GroupBy {
		visitExpr(g)
	}
	for _, o := range s.OrderBy {
		visitExpr(o.Expr)
	}
	VisitSelects(s.Next, fn)
}

// CountTableRefs counts how many times the named table occurs as a FROM
// reference anywhere in the statement tree. Unlike ReferencedTables it does
// not dedup: the linearity test of the semi-naive frontier rewrite needs to
// tell one occurrence of the recursive relation from two ("from R a, R b").
func CountTableRefs(s *SelectStmt, name string) int {
	n := 0
	VisitSelects(s, func(st *SelectStmt) {
		var visitRef func(t *TableRef)
		visitRef = func(t *TableRef) {
			if t == nil {
				return
			}
			if t.IsJoin() {
				visitRef(t.Join)
				visitRef(t.Right)
				return
			}
			if t.Sub == nil && t.Name == name {
				n++
			}
		}
		for _, f := range st.From {
			visitRef(f)
		}
	})
	return n
}

// HasAggregatesDeep reports whether an aggregate call appears anywhere in
// the statement tree, including FROM/IN/EXISTS subqueries and the set-op
// chain — the conservative test the frontier rewrite uses (HasAggregates
// only inspects the top-level select list and HAVING).
func (s *SelectStmt) HasAggregatesDeep() bool {
	found := false
	VisitSelects(s, func(st *SelectStmt) {
		if st.HasAggregates() {
			found = true
		}
	})
	return found
}

// HasLimitDeep reports whether any block in the statement tree carries a
// LIMIT — a non-monotone construct that disqualifies a recursive branch
// from reading the Δ frontier.
func (s *SelectStmt) HasLimitDeep() bool {
	found := false
	VisitSelects(s, func(st *SelectStmt) {
		if st.Limit >= 0 {
			found = true
		}
	})
	return found
}

// HasAggregates reports whether any select item or the HAVING clause
// contains an aggregate call.
func (s *SelectStmt) HasAggregates() bool {
	found := false
	check := func(e Expr) {
		Walk(e, func(n Expr) {
			if f, ok := n.(*FuncCall); ok && f.IsAggregate() {
				found = true
			}
		})
	}
	for _, it := range s.Items {
		check(it.Expr)
	}
	check(s.Having)
	return found
}

// UsesNegation reports whether the statement uses a negation-like
// construct (NOT IN, NOT EXISTS, EXCEPT, DISTINCT counts per the paper's
// Table 1 discussion) against the given relation name ("" = any).
func (s *SelectStmt) UsesNegation(rel string) bool {
	found := false
	check := func(e Expr) {
		Walk(e, func(n Expr) {
			switch x := n.(type) {
			case *InExpr:
				if x.Negated && x.Sub != nil && (rel == "" || contains(ReferencedTables(x.Sub), rel)) {
					found = true
				}
			case *ExistsExpr:
				if x.Negated && x.Sub != nil && (rel == "" || contains(ReferencedTables(x.Sub), rel)) {
					found = true
				}
			}
		})
	}
	check(s.Where)
	check(s.Having)
	for cur := s; cur != nil; cur = cur.Next {
		if cur.SetOp == "except" && cur.Next != nil && (rel == "" || contains(ReferencedTables(cur.Next), rel)) {
			found = true
		}
	}
	return found
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
