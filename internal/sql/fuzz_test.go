package sql

import (
	"testing"

	"repro/internal/engine"
)

// Fuzz targets: the lexer/parser and executor must never panic on
// arbitrary input — they return errors. Seeds run as part of the normal
// test suite; `go test -fuzz=FuzzParseStatement ./internal/sql` explores
// further.

func FuzzParseStatement(f *testing.F) {
	seeds := []string{
		"select 1",
		"select a, b from t where a = 1 and b <> 'x' group by a having count(*) > 2 order by a desc limit 3",
		"select * from a, b left outer join c on a.x = c.y",
		"with R(a) as ((select 1) union all (select a + 1 from R) maxrecursion 5) select a from R",
		"insert into t values (1, 'two', 3.0, null), (4, '', 0.5e3, true)",
		"create temporary table t (a int, b varchar(12))",
		"select a from t where a not in select b from s",
		"select distinct coalesce(a, b) from t union select c from u except select d from v",
		"((select 1))",
		"select 'unterminated",
		"select a..b from t",
		"with R as",
		"select ((((((1))))))",
		"select -1e309, +2, not not true",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		st, err := ParseStatement(input)
		if err != nil {
			return
		}
		// Parsed statements must also execute or fail cleanly against an
		// empty engine.
		x := NewExec(engine.New(engine.OracleLike()))
		if _, ok := st.(*WithQueryStmt); ok {
			return // withplus handles these; covered by its own fuzz
		}
		_, _ = x.ExecStatement(st)
	})
}

func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"select * from t", "'a''b'", "1.5e-3 <> >= <=", "-- comment\nx"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := Tokenize(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}

// FuzzMatchParser pins the graph surface: parsing never panics, and for
// every statement the renderer can print, parse → String → reparse →
// String is a fixed point.
func FuzzMatchParser(f *testing.F) {
	seeds := []string{
		"create property graph g (vertex tables (V key (ID)), edge tables (E source key (F) references V destination key (T) references V))",
		"create property graph g (vertex tables (V key (ID), W key (K)))",
		"drop property graph g",
		"select * from graph_table(g match (a)-[e]->(b) columns (a.ID aid, b.ID bid)) gt",
		"select * from graph_table(g match (a)-[e1]->(b)<-[e2]-(c) where b.name = 'x' columns (a.ID x, c.ID y))",
		"select * from graph_table(g match (a)-[e]->{1,4}(b) columns (a.ID s, b.ID d)) gt where s < d",
		"select * from graph_table(g match (a)-[]->{1,}(b) columns (a.ID s, b.ID d))",
		"select * from graph_table(g match any shortest (a)-[e]->(b) where a.ID = 1 columns (b.ID d, path_cost() c))",
		"select * from graph_table(g match walk (a:V)-[e:E]->(b:V) columns (a.ID x))",
		"select * from graph_table(g match trail (a)-[e]->(b) columns (a.ID x))",
		"select * from graph_table(g match all shortest (a)-[e]->(b) columns (a.ID x))",
		"select * from graph_table(g match (a)-[e]->{2,3}(b) columns (a.ID x))",
		"select * from graph_table(g match (a)-[e]->{1,0}(b) columns (a.ID x))",
		"select * from graph_table(g match (a) columns (a.ID x))",
		"select * from graph_table(",
		"create property graph",
		"graph_table(g)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := ParseStatement(input)
		if err != nil {
			return
		}
		r1, ok := StatementString(st)
		if !ok {
			return // statement kind the renderer does not cover
		}
		st2, err := ParseStatement(r1)
		if err != nil {
			t.Fatalf("rendered statement does not reparse: %q: %v", r1, err)
		}
		r2, ok := StatementString(st2)
		if !ok {
			t.Fatalf("reparse changed statement kind: %q", r1)
		}
		if r1 != r2 {
			t.Fatalf("render not a fixed point:\n 1: %s\n 2: %s", r1, r2)
		}
	})
}
