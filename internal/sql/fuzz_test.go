package sql

import (
	"testing"

	"repro/internal/engine"
)

// Fuzz targets: the lexer/parser and executor must never panic on
// arbitrary input — they return errors. Seeds run as part of the normal
// test suite; `go test -fuzz=FuzzParseStatement ./internal/sql` explores
// further.

func FuzzParseStatement(f *testing.F) {
	seeds := []string{
		"select 1",
		"select a, b from t where a = 1 and b <> 'x' group by a having count(*) > 2 order by a desc limit 3",
		"select * from a, b left outer join c on a.x = c.y",
		"with R(a) as ((select 1) union all (select a + 1 from R) maxrecursion 5) select a from R",
		"insert into t values (1, 'two', 3.0, null), (4, '', 0.5e3, true)",
		"create temporary table t (a int, b varchar(12))",
		"select a from t where a not in select b from s",
		"select distinct coalesce(a, b) from t union select c from u except select d from v",
		"((select 1))",
		"select 'unterminated",
		"select a..b from t",
		"with R as",
		"select ((((((1))))))",
		"select -1e309, +2, not not true",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		st, err := ParseStatement(input)
		if err != nil {
			return
		}
		// Parsed statements must also execute or fail cleanly against an
		// empty engine.
		x := NewExec(engine.New(engine.OracleLike()))
		if _, ok := st.(*WithQueryStmt); ok {
			return // withplus handles these; covered by its own fuzz
		}
		_, _ = x.ExecStatement(st)
	})
}

func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"select * from t", "'a''b'", "1.5e-3 <> >= <=", "-- comment\nx"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := Tokenize(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
