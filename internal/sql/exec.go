package sql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Exec evaluates SELECT statements against an engine's catalog. Override
// maps names to in-flight relations (the recursive working table and
// computed-by deltas the WITH+ runtime maintains); overrides shadow catalog
// tables and always count as statistics-free temporaries for plan choice.
type Exec struct {
	Eng      *engine.Engine
	Override map[string]*relation.Relation

	// Delta marks Override entries that bind a semi-naive Δ frontier in
	// place of the full recursive relation. It changes nothing about
	// resolution — only the scan label in analyzed plans, so EXPLAIN
	// ANALYZE shows which scans read the frontier.
	Delta map[string]bool

	// analyze makes the executor build an annotated plan tree (actual rows
	// and per-node wall time) alongside the result — the EXPLAIN ANALYZE
	// mode. Off (the default) no node is allocated and no clock is read.
	analyze bool
}

// NewExec returns an executor over eng.
func NewExec(eng *engine.Engine) *Exec {
	return &Exec{Eng: eng, Override: map[string]*relation.Relation{}, Delta: map[string]bool{}}
}

// Run evaluates a (possibly compound) statement.
func (x *Exec) Run(s *SelectStmt) (*relation.Relation, error) {
	r, _, err := x.run(s)
	return r, err
}

// RunAnalyzed evaluates the statement and also returns the executed plan
// tree annotated with actual output rows and per-node wall time.
func (x *Exec) RunAnalyzed(s *SelectStmt) (*relation.Relation, *obs.PlanNode, error) {
	prev := x.analyze
	x.analyze = true
	defer func() { x.analyze = prev }()
	return x.run(s)
}

func (x *Exec) run(s *SelectStmt) (*relation.Relation, *obs.PlanNode, error) {
	left, plan, err := x.runOne(s)
	if err != nil {
		return nil, nil, err
	}
	for cur := s; cur.Next != nil; cur = cur.Next {
		var t0 time.Time
		if x.analyze {
			t0 = time.Now()
		}
		right, rplan, err := x.runOne(cur.Next)
		if err != nil {
			return nil, nil, err
		}
		if !left.Sch.UnionCompatible(right.Sch) {
			return nil, nil, fmt.Errorf("sql: set operation arity mismatch (%d vs %d)", left.Sch.Arity(), right.Sch.Arity())
		}
		switch cur.SetOp {
		case "union all":
			left = ra.UnionAll(left, right)
		case "union":
			left = ra.Union(left, right)
		case "except":
			left = ra.Difference(ra.Distinct(left), right)
		case "intersect":
			left = ra.Intersect(left, right)
		default:
			return nil, nil, fmt.Errorf("sql: unknown set op %q", cur.SetOp)
		}
		if x.analyze {
			plan = obs.NewPlanNode(cur.SetOp, int64(left.Len()), time.Since(t0), plan, rplan)
		}
	}
	return left, plan, nil
}

// source is one resolved FROM input.
type source struct {
	rel      *relation.Relation
	analyzed bool
	name     string // display name for qualification
	table    string // catalog table name when resolved from the catalog ("" otherwise)
}

func (x *Exec) resolve(name string) (*relation.Relation, bool, error) {
	if r, ok := x.Override[name]; ok {
		return r, false, nil
	}
	return x.Eng.RelAnalyzed(name)
}

func (x *Exec) resolveRef(t *TableRef) (source, error) {
	if t.GraphTable != nil {
		return source{}, fmt.Errorf("sql: unexpanded GRAPH_TABLE reference to graph %q (run ExpandStatement first)", t.GraphTable.Graph)
	}
	if t.IsJoin() {
		rel, err := x.evalJoinRef(t)
		return source{rel: rel, analyzed: false, name: t.DisplayName()}, err
	}
	if t.Sub != nil {
		rel, err := x.Run(t.Sub)
		if err != nil {
			return source{}, err
		}
		if t.Alias != "" {
			rel = ra.Rename(rel, t.Alias, nil)
		}
		return source{rel: rel, name: t.DisplayName()}, nil
	}
	rel, analyzed, err := x.resolve(t.Name)
	if err != nil {
		return source{}, err
	}
	table := t.Name
	if _, ok := x.Override[t.Name]; ok {
		table = "" // an override is not the catalog table of the same name
	}
	// Re-qualify under the alias (ρ) without copying tuples.
	rel = &relation.Relation{Sch: rel.Sch.Qualify(t.DisplayName()), Tuples: rel.Tuples}
	return source{rel: rel, analyzed: analyzed, name: t.DisplayName(), table: table}, nil
}

// evalJoinRef evaluates explicit LEFT/FULL OUTER/INNER JOIN nodes.
func (x *Exec) evalJoinRef(t *TableRef) (*relation.Relation, error) {
	l, err := x.resolveRef(t.Join)
	if err != nil {
		return nil, err
	}
	r, err := x.resolveRef(t.Right)
	if err != nil {
		return nil, err
	}
	combined := l.rel.Sch.Concat(r.rel.Sch)
	lCols, rCols, residual, err := equiCols(t.On, l.rel.Sch, r.rel.Sch)
	if err != nil {
		return nil, err
	}
	if len(lCols) == 0 && t.Kind != JoinInner {
		return nil, fmt.Errorf("sql: outer join requires equality conditions")
	}
	var out *relation.Relation
	switch t.Kind {
	case JoinLeftOuter:
		out = ra.LeftOuterJoin(l.rel, r.rel, lCols, rCols, x.Eng.Gov())
	case JoinFullOuter:
		out = ra.FullOuterJoin(l.rel, r.rel, lCols, rCols, x.Eng.Gov())
	default:
		out = ra.EquiJoin(l.rel, r.rel, ra.EquiJoinSpec{
			LeftCols: lCols, RightCols: rCols, Algo: x.algoFor(l.analyzed && r.analyzed),
			Gov: x.Eng.Gov(),
		})
	}
	if err := x.Eng.ChargeMaterialized(out); err != nil {
		return nil, err
	}
	if residual != nil {
		if x.Eng.DisableVectorized {
			pred, err := x.compilePred(residual, combined)
			if err != nil {
				return nil, err
			}
			return ra.Select(out, pred)
		}
		pred, fellBack, err := x.compileVecPred(residual, combined)
		if err != nil {
			return nil, err
		}
		return x.selectVec(out, pred, fellBack)
	}
	return out, nil
}

func (x *Exec) algoFor(allAnalyzed bool) ra.JoinAlgo {
	if allAnalyzed {
		return x.Eng.Prof.BaseJoin
	}
	a := x.Eng.Prof.TempJoin
	if a == ra.SortMergeJoin && x.Eng.Prof.UseTempIndexes {
		return ra.IndexMergeJoin
	}
	return a
}

// equiCols splits a join condition into equi-join column pairs (left-side
// column = right-side column) plus a residual conjunction.
func equiCols(on Expr, lSch, rSch schema.Schema) (lCols, rCols []int, residual Expr, err error) {
	if on == nil {
		return nil, nil, nil, nil
	}
	conjuncts := splitAnd(on)
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if ok && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				li, lerr := lSch.Resolve(lc.Table, lc.Name)
				ri, rerr := rSch.Resolve(rc.Table, rc.Name)
				if lerr == nil && rerr == nil {
					lCols = append(lCols, li)
					rCols = append(rCols, ri)
					continue
				}
				// Maybe swapped sides.
				li, lerr = lSch.Resolve(rc.Table, rc.Name)
				ri, rerr = rSch.Resolve(lc.Table, lc.Name)
				if lerr == nil && rerr == nil {
					lCols = append(lCols, li)
					rCols = append(rCols, ri)
					continue
				}
			}
		}
		residual = andJoin(residual, c)
	}
	return lCols, rCols, residual, nil
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

func andJoin(a, b Expr) Expr {
	if a == nil {
		return b
	}
	return &Binary{Op: "and", L: a, R: b}
}

func (x *Exec) runOne(s *SelectStmt) (*relation.Relation, *obs.PlanNode, error) {
	// Resolve FROM (no FROM = one empty tuple, for "select 1+1").
	var input *relation.Relation
	var plan *obs.PlanNode
	var allAnalyzed = true
	if len(s.From) == 0 {
		input = relation.New(schema.Schema{})
		input.Append(relation.Tuple{})
		if x.analyze {
			plan = obs.NewPlanNode("values (one row)", 1, 0)
		}
	} else {
		srcs := make([]source, len(s.From))
		var scans []*obs.PlanNode
		if x.analyze {
			scans = make([]*obs.PlanNode, len(s.From))
		}
		for i, f := range s.From {
			var t0 time.Time
			if x.analyze {
				t0 = time.Now()
			}
			src, err := x.resolveRef(f)
			if err != nil {
				return nil, nil, err
			}
			srcs[i] = src
			allAnalyzed = allAnalyzed && src.analyzed
			if x.analyze {
				scans[i] = obs.NewPlanNode(x.refLabel(f), int64(src.rel.Len()), time.Since(t0))
			}
		}
		var conjuncts []Expr
		if s.Where != nil {
			conjuncts = splitAnd(s.Where)
		}
		used := make([]bool, len(conjuncts))
		// A cyclic equi-join core lowers to the worst-case-optimal multiway
		// join; the remaining (tail) sources fold onto its result through
		// the ordinary binary loop below.
		var wplan *wcojPlan
		if !x.Eng.DisableWCOJ {
			schemas := make([]schema.Schema, len(srcs))
			for i := range srcs {
				schemas[i] = srcs[i].rel.Sch
			}
			wplan = chooseWCOJ(schemas, conjuncts, used)
		}
		var remaining []int
		if wplan != nil {
			for _, ci := range wplan.Conjuncts {
				used[ci] = true
			}
			var t0 time.Time
			observing := x.Eng.Observing()
			if x.analyze || observing {
				t0 = time.Now()
			}
			atoms := make([]ra.WCOJAtom, len(wplan.Core))
			for k, si := range wplan.Core {
				atoms[k] = ra.WCOJAtom{Rel: srcs[si].rel, VarCols: wplan.Atoms[k].VarCols}
				// A table-backed binary atom reuses the cached (src, dst)
				// CSR as its sorted backing instead of building a trie.
				if srcs[si].table != "" {
					if sc, dc, ok := wplan.Atoms[k].csrShape(); ok {
						atoms[k].CSR = x.Eng.WCOJEdgeCSR(srcs[si].table, sc, dc)
					}
				}
			}
			var stats ra.WCOJStats
			input, stats = ra.WCOJ(ra.WCOJSpec{
				Atoms:   atoms,
				NumVars: wplan.NumVars,
				Order:   wplan.Order,
				Gov:     x.Eng.Gov(),
			})
			x.Eng.CountWCOJ(stats.Builds, stats.Probes)
			if observing {
				sp := obs.Span{Op: "join", Algo: "wcoj", Note: "sql multiway generic join", Start: t0, OutRows: int64(input.Len()), Dur: time.Since(t0)}
				sp.BytesMaterialized = int64(input.Len()) * int64(input.Sch.Arity()) * 16
				x.Eng.Emit(sp)
			}
			if x.analyze {
				label := fmt.Sprintf("multiway generic join on %s via wcoj", strings.Join(wplan.Keys, " and "))
				children := make([]*obs.PlanNode, len(wplan.Core))
				for k, si := range wplan.Core {
					children[k] = scans[si]
				}
				plan = obs.NewPlanNode(label, int64(input.Len()), time.Since(t0), children...)
			}
			if err := x.Eng.ChargeMaterialized(input); err != nil {
				return nil, nil, err
			}
			inCore := make([]bool, len(srcs))
			for _, si := range wplan.Core {
				inCore[si] = true
			}
			for i := range srcs {
				if !inCore[i] {
					remaining = append(remaining, i)
				}
			}
		} else {
			input = srcs[0].rel
			if x.analyze {
				plan = scans[0]
			}
			for i := 1; i < len(srcs); i++ {
				remaining = append(remaining, i)
			}
		}
		for _, i := range remaining {
			next := srcs[i]
			var lCols, rCols []int
			var keys []string
			for ci, c := range conjuncts {
				if used[ci] {
					continue
				}
				b, ok := c.(*Binary)
				if !ok || b.Op != "=" {
					continue
				}
				lc, lok := b.L.(*ColRef)
				rc, rok := b.R.(*ColRef)
				if !lok || !rok {
					continue
				}
				li, lerr := input.Sch.Resolve(lc.Table, lc.Name)
				ri, rerr := next.rel.Sch.Resolve(rc.Table, rc.Name)
				if lerr != nil || rerr != nil {
					li, lerr = input.Sch.Resolve(rc.Table, rc.Name)
					ri, rerr = next.rel.Sch.Resolve(lc.Table, lc.Name)
				}
				if lerr == nil && rerr == nil {
					lCols = append(lCols, li)
					rCols = append(rCols, ri)
					used[ci] = true
					if x.analyze {
						keys = append(keys, ExprString(c))
					}
				}
			}
			var t0 time.Time
			observing := x.Eng.Observing()
			if x.analyze || observing {
				t0 = time.Now()
			}
			leftRows := int64(input.Len())
			if len(lCols) > 0 {
				algo := x.algoFor(allAnalyzed)
				var sp *obs.Span
				if observing {
					sp = &obs.Span{Op: "join", Algo: algo.String(), Note: "sql equi-join", Start: t0}
				}
				spec := ra.EquiJoinSpec{
					LeftCols: lCols, RightCols: rCols,
					Algo: algo,
					Gov:  x.Eng.Gov(),
					Span: sp,
				}
				// A plain catalog table on the build side can serve its
				// cached access structures: a covering CSR adjacency index
				// replaces the hash build entirely on single-column keys,
				// else the cached hash index serves. Both are built once per
				// table version and extended in place on appends, so the
				// recursive loop's immutable build sides never rebuild
				// (either structure is revalidated against the probe-time
				// rows inside the join).
				viaCSR := false
				if algo == ra.HashJoin && next.table != "" {
					if csr := x.Eng.BuildSideCSR(next.table, rCols); csr != nil {
						spec.RightCSR = csr
						viaCSR = true
					} else {
						spec.RightHash = x.Eng.BuildSideHash(next.table, rCols)
					}
				}
				input = ra.EquiJoin(input, next.rel, spec)
				x.Eng.CountJoin()
				if sp != nil {
					sp.LeftRows, sp.RightRows, sp.OutRows = leftRows, int64(next.rel.Len()), int64(input.Len())
					sp.BytesMaterialized = int64(input.Len()) * int64(input.Sch.Arity()) * 16
					sp.Dur = time.Since(t0)
					x.Eng.Emit(*sp)
				}
				if x.analyze {
					label := fmt.Sprintf("%s join on %s", algo, strings.Join(keys, " and "))
					if viaCSR {
						label += " via csr"
					}
					plan = obs.NewPlanNode(label, int64(input.Len()), time.Since(t0), plan, scans[i])
				}
			} else {
				input = ra.Product(input, next.rel)
				if x.analyze {
					plan = obs.NewPlanNode("nested-loop product", int64(input.Len()), time.Since(t0), plan, scans[i])
				}
			}
			if err := x.Eng.ChargeMaterialized(input); err != nil {
				return nil, nil, err
			}
		}
		// The WCOJ lowering joins core sources first, so when a tail source
		// precedes a core source in FROM order the concatenated columns are
		// permuted relative to the binary plan. Restore FROM order so
		// "select *" output stays byte-identical across the two paths.
		if wplan != nil {
			input = restoreFromOrder(input, srcs, append(append([]int{}, wplan.Core...), remaining...))
		}
		// Residual WHERE conjuncts.
		var residual Expr
		for ci, c := range conjuncts {
			if !used[ci] {
				residual = andJoin(residual, c)
			}
		}
		if residual != nil {
			var t0 time.Time
			if x.analyze {
				t0 = time.Now()
			}
			label := "filter " + ExprString(residual)
			if x.Eng.DisableVectorized {
				pred, err := x.compilePred(residual, input.Sch)
				if err != nil {
					return nil, nil, err
				}
				var serr error
				input, serr = ra.Select(input, pred)
				if serr != nil {
					return nil, nil, serr
				}
			} else {
				pred, fellBack, err := x.compileVecPred(residual, input.Sch)
				if err != nil {
					return nil, nil, err
				}
				var serr error
				input, serr = x.selectVec(input, pred, fellBack)
				if serr != nil {
					return nil, nil, serr
				}
				label += vecPathNote(fellBack)
			}
			if x.analyze {
				plan = obs.NewPlanNode(label, int64(input.Len()), time.Since(t0), plan)
			}
		}
	}

	var out *relation.Relation
	var err error
	var t0 time.Time
	if x.analyze {
		t0 = time.Now()
	}
	if len(s.GroupBy) > 0 || s.HasAggregates() {
		var aggNote string
		out, aggNote, err = x.runAggregate(s, input)
		if err == nil && x.analyze {
			keys := make([]string, len(s.GroupBy))
			for i, g := range s.GroupBy {
				keys[i] = ExprString(g)
			}
			label := "hash aggregate (single group)"
			if len(keys) > 0 {
				label = "hash aggregate on (" + strings.Join(keys, ", ") + ")"
			}
			plan = obs.NewPlanNode(label+aggNote, int64(out.Len()), time.Since(t0), plan)
		}
	} else {
		out, err = x.project(s, input)
	}
	if err != nil {
		return nil, nil, err
	}
	if s.Distinct {
		if x.analyze {
			t0 = time.Now()
		}
		out = ra.Distinct(out)
		if x.analyze {
			plan = obs.NewPlanNode("distinct", int64(out.Len()), time.Since(t0), plan)
		}
	}
	if len(s.OrderBy) > 0 {
		cols := make([]int, len(s.OrderBy))
		desc := make([]bool, len(s.OrderBy))
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			cr, ok := o.Expr.(*ColRef)
			if !ok {
				return nil, nil, fmt.Errorf("sql: order by supports column references only")
			}
			idx, rerr := out.Sch.Resolve(cr.Table, cr.Name)
			if rerr != nil {
				return nil, nil, rerr
			}
			cols[i] = idx
			desc[i] = o.Desc
			parts[i] = ExprString(o.Expr)
			if o.Desc {
				parts[i] += " desc"
			}
		}
		if x.analyze {
			t0 = time.Now()
		}
		out = ra.OrderBy(out, cols, desc)
		if x.analyze {
			plan = obs.NewPlanNode("sort by "+strings.Join(parts, ", "), int64(out.Len()), time.Since(t0), plan)
		}
	}
	if s.Limit >= 0 {
		out = ra.Limit(out, s.Limit)
		if x.analyze {
			plan = obs.NewPlanNode(fmt.Sprintf("limit %d", s.Limit), int64(out.Len()), 0, plan)
		}
	}
	return out, plan, nil
}

// refLabel names a FROM item for a plan node. Labels deliberately omit row
// counts (unlike EXPLAIN's scan lines): the analyze plans of a WITH+ loop
// are merged structurally across iterations, and the working table's row
// count changes every iteration — actual rows live in the node's Rows
// field, accumulated across loops.
func (x *Exec) refLabel(t *TableRef) string {
	switch {
	case t.IsJoin():
		kind := map[JoinKind]string{JoinInner: "inner", JoinLeftOuter: "left outer", JoinFullOuter: "full outer"}[t.Kind]
		return fmt.Sprintf("%s join on %s", kind, ExprString(t.On))
	case t.Sub != nil:
		return "subquery " + t.DisplayName()
	default:
		if _, ok := x.Override[t.Name]; ok {
			if x.Delta[t.Name] {
				return fmt.Sprintf("scan %s (Δ frontier, no statistics)", t.DisplayName())
			}
			return fmt.Sprintf("scan %s (working table, no statistics)", t.DisplayName())
		}
		tab, err := x.Eng.Cat.Get(t.Name)
		if err != nil {
			return "scan " + t.DisplayName()
		}
		stats := "no statistics"
		if tab.Analyzed() {
			stats = "analyzed"
		}
		kind := "base"
		if tab.Temp {
			kind = "temp"
		}
		return fmt.Sprintf("scan %s (%s table, %s)", t.DisplayName(), kind, stats)
	}
}

// project evaluates the select list without aggregation.
func (x *Exec) project(s *SelectStmt, input *relation.Relation) (*relation.Relation, error) {
	if !x.Eng.DisableVectorized {
		var outs []ra.VecOutCol
		fellBack := false
		for i, it := range s.Items {
			if it.Star {
				for ci := range input.Sch {
					outs = append(outs, ra.VecOutCol{Col: input.Sch[ci], Expr: ra.VecColExpr(ci)})
				}
				continue
			}
			ex, fb, err := x.compileVecExpr(it.Expr, input.Sch)
			if err != nil {
				return nil, err
			}
			fellBack = fellBack || fb
			outs = append(outs, ra.VecOutCol{Col: outColName(it, i, input.Sch), Expr: ex})
		}
		return x.projectVecOuts(input, outs, fellBack)
	}
	var outs []ra.OutCol
	for i, it := range s.Items {
		if it.Star {
			for ci := range input.Sch {
				ci := ci
				outs = append(outs, ra.OutCol{Col: input.Sch[ci], Expr: ra.ColExpr(ci)})
			}
			continue
		}
		ex, err := x.compileExpr(it.Expr, input.Sch)
		if err != nil {
			return nil, err
		}
		outs = append(outs, ra.OutCol{Col: outColName(it, i, input.Sch), Expr: ex})
	}
	return ra.Project(input, outs)
}

func outColName(it SelectItem, i int, sch schema.Schema) schema.Column {
	var col schema.Column
	// Infer the type from a column reference (including the internal
	// __aggN references that aggregate rewriting produces).
	if cr, ok := it.Expr.(*ColRef); ok {
		if idx, err := sch.Resolve(cr.Table, cr.Name); err == nil {
			col.Type = sch[idx].Type
		}
	}
	if it.Alias != "" {
		col.Name = it.Alias
		return col
	}
	if cr, ok := it.Expr.(*ColRef); ok {
		// Keep the qualifier so ORDER BY / outer queries can still resolve
		// the qualified form.
		col.Table, col.Name = cr.Table, cr.Name
		return col
	}
	col.Name = fmt.Sprintf("col%d", i+1)
	return col
}

// runAggregate handles GROUP BY / global aggregates: aggregates inside the
// select list are computed per group, then the outer expressions are
// evaluated over (group keys ++ aggregate results). pathNote reports which
// aggregation path ran, for the analyzed plan label: the vectorized
// group-by when its key shape qualifies, else the row hash aggregate.
func (x *Exec) runAggregate(s *SelectStmt, input *relation.Relation) (*relation.Relation, string, error) {
	groupCols := make([]int, len(s.GroupBy))
	virtual := schema.Schema{}
	// Group-by expressions that are not plain column references are
	// computed into appended key columns first.
	var extended []ra.OutCol
	for i, g := range s.GroupBy {
		if cr, ok := g.(*ColRef); ok {
			idx, err := input.Sch.Resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, "", err
			}
			groupCols[i] = idx
			virtual = append(virtual, input.Sch[idx])
			continue
		}
		ex, err := x.compileExpr(g, input.Sch)
		if err != nil {
			return nil, "", err
		}
		col := schema.Column{Name: fmt.Sprintf("__key%d", i)}
		groupCols[i] = input.Sch.Arity() + len(extended)
		extended = append(extended, ra.OutCol{Col: col, Expr: ex})
		virtual = append(virtual, col)
	}
	if len(extended) > 0 {
		outs := make([]ra.OutCol, 0, input.Sch.Arity()+len(extended))
		for ci := range input.Sch {
			outs = append(outs, ra.OutCol{Col: input.Sch[ci], Expr: ra.ColExpr(ci)})
		}
		outs = append(outs, extended...)
		var err error
		input, err = ra.Project(input, outs)
		if err != nil {
			return nil, "", err
		}
	}
	// Collect aggregate calls across select items and having.
	var aggCalls []*FuncCall
	collect := func(e Expr) Expr {
		return rewrite(e, func(n Expr) Expr {
			if f, ok := n.(*FuncCall); ok && f.IsAggregate() {
				for i, prev := range aggCalls {
					if prev == f {
						return &ColRef{Name: aggName(i)}
					}
				}
				aggCalls = append(aggCalls, f)
				return &ColRef{Name: aggName(len(aggCalls) - 1)}
			}
			return n
		})
	}
	// Select items and HAVING may repeat a group-by expression verbatim
	// ("select b0+b1 from t group by b0+b1"): such subtrees resolve to the
	// computed key column.
	replaceKeys := func(e Expr) Expr {
		return rewrite(e, func(n Expr) Expr {
			for i, g := range s.GroupBy {
				if _, isCol := g.(*ColRef); !isCol && exprEqual(n, g) {
					return &ColRef{Name: fmt.Sprintf("__key%d", i)}
				}
			}
			return n
		})
	}
	items := make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		if it.Star {
			return nil, "", fmt.Errorf("sql: select * cannot be combined with aggregation")
		}
		alias := it.Alias
		if alias == "" {
			// A bare aggregate select item is named after its function.
			if f, ok := it.Expr.(*FuncCall); ok && f.IsAggregate() {
				alias = strings.ToLower(f.Name)
			}
		}
		items[i] = SelectItem{Expr: replaceKeys(collect(it.Expr)), Alias: alias}
	}
	var having Expr
	if s.Having != nil {
		having = replaceKeys(collect(s.Having))
	}
	// The vectorized group-by runs when its key shape qualifies (zero or
	// one dense integer key column); otherwise the row hash aggregate runs.
	var grouped *relation.Relation
	var pathNote string
	if !x.Eng.DisableVectorized {
		vspecs, vfb, ok, err := x.compileVecAggs(aggCalls, input.Sch)
		if err != nil {
			return nil, "", err
		}
		if ok {
			g, handled, err := ra.GroupByVec(input, groupCols, vspecs)
			if err != nil {
				return nil, "", err
			}
			if handled {
				grouped = g
				pathNote = vecPathNote(vfb)
				x.Eng.CountVectorizedBatch(vfb)
				if err := x.Eng.Gov().ChargeBytes(int64(g.Len()) * int64(g.Sch.Arity()) * 16); err != nil {
					return nil, "", err
				}
			}
		}
	}
	// Build the row aggregate specs against the input schema (the names and
	// types also complete the virtual schema both paths project from).
	specs := make([]ra.AggSpec, len(aggCalls))
	for i, f := range aggCalls {
		col := schema.Column{Name: aggName(i), Type: value.KindFloat}
		var argExpr ra.Expr
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, "", fmt.Errorf("sql: aggregate %s takes one argument", f.Name)
			}
			var err error
			argExpr, err = x.compileExpr(f.Args[0], input.Sch)
			if err != nil {
				return nil, "", err
			}
		}
		switch strings.ToLower(f.Name) {
		case "sum":
			specs[i] = ra.Sum(col, argExpr)
		case "min":
			specs[i] = ra.MinAgg(col, argExpr)
		case "max":
			specs[i] = ra.MaxAgg(col, argExpr)
		case "avg":
			specs[i] = ra.Avg(col, argExpr)
		case "count":
			col.Type = value.KindInt
			specs[i] = ra.Count(col, argExpr)
		default:
			return nil, "", fmt.Errorf("sql: unknown aggregate %q", f.Name)
		}
		virtual = append(virtual, col)
	}
	if grouped == nil {
		var err error
		grouped, err = ra.GroupBy(input, groupCols, specs)
		if err != nil {
			return nil, "", err
		}
		if !x.Eng.DisableVectorized {
			pathNote = " (row path)"
		}
	}
	grouped.Sch = virtual
	x.Eng.CountGroupBy()
	if having != nil {
		if x.Eng.DisableVectorized {
			pred, err := x.compilePred(having, virtual)
			if err != nil {
				return nil, "", err
			}
			grouped, err = ra.Select(grouped, pred)
			if err != nil {
				return nil, "", err
			}
		} else {
			pred, fellBack, err := x.compileVecPred(having, virtual)
			if err != nil {
				return nil, "", err
			}
			grouped, err = x.selectVec(grouped, pred, fellBack)
			if err != nil {
				return nil, "", err
			}
		}
	}
	if !x.Eng.DisableVectorized {
		var outs []ra.VecOutCol
		fellBack := false
		for i, it := range items {
			ex, fb, err := x.compileVecExpr(it.Expr, virtual)
			if err != nil {
				return nil, "", err
			}
			fellBack = fellBack || fb
			outs = append(outs, ra.VecOutCol{Col: outColName(it, i, virtual), Expr: ex})
		}
		out, err := x.projectVecOuts(grouped, outs, fellBack)
		return out, pathNote, err
	}
	var outs []ra.OutCol
	for i, it := range items {
		ex, err := x.compileExpr(it.Expr, virtual)
		if err != nil {
			return nil, "", err
		}
		outs = append(outs, ra.OutCol{Col: outColName(it, i, virtual), Expr: ex})
	}
	out, err := ra.Project(grouped, outs)
	return out, pathNote, err
}

func aggName(i int) string { return fmt.Sprintf("__agg%d", i) }

// rewrite applies fn bottom-up, rebuilding nodes whose children changed.
func rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Unary:
		return fn(&Unary{Op: x.Op, X: rewrite(x.X, fn)})
	case *Binary:
		return fn(&Binary{Op: x.Op, L: rewrite(x.L, fn), R: rewrite(x.R, fn)})
	case *FuncCall:
		// Aggregates are replaced whole; do not descend into them first.
		if x.IsAggregate() {
			return fn(x)
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewrite(a, fn)
		}
		return fn(&FuncCall{Name: x.Name, Args: args, Star: x.Star})
	case *IsNullExpr:
		return fn(&IsNullExpr{X: rewrite(x.X, fn), Negated: x.Negated})
	case *InExpr:
		return fn(&InExpr{X: rewrite(x.X, fn), Sub: x.Sub, List: x.List, Negated: x.Negated})
	default:
		return fn(e)
	}
}

// exprEqual reports structural equality of two expressions (used to match
// select-list subtrees against group-by expressions).
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Table == y.Table && x.Name == y.Name
	case *Lit:
		y, ok := b.(*Lit)
		return ok && x.Val.Equal(y.Val)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *FuncCall:
		y, ok := b.(*FuncCall)
		if !ok || x.Name != y.Name || x.Star != y.Star || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		y, ok := b.(*IsNullExpr)
		return ok && x.Negated == y.Negated && exprEqual(x.X, y.X)
	}
	return false
}
