package sql

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// testDB loads E(F,T,ew) and V(ID,vw) into a fresh Oracle-like engine.
func testDB(t *testing.T) *Exec {
	t.Helper()
	e := engine.New(engine.OracleLike())
	eRel := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	for _, row := range [][3]float64{{0, 1, 1}, {0, 2, 2}, {1, 2, 1}, {2, 3, 5}, {3, 1, 1}} {
		eRel.AppendVals(value.Int(int64(row[0])), value.Int(int64(row[1])), value.Float(row[2]))
	}
	if _, err := e.LoadBase("E", eRel); err != nil {
		t.Fatal(err)
	}
	vRel := relation.New(schema.Schema{
		{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat},
	})
	for i := 0; i < 4; i++ {
		vRel.AppendVals(value.Int(int64(i)), value.Float(float64(10*i)))
	}
	if _, err := e.LoadBase("V", vRel); err != nil {
		t.Fatal(err)
	}
	return NewExec(e)
}

func mustRun(t *testing.T, x *Exec, q string) *relation.Relation {
	t.Helper()
	s, err := ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	r, err := x.Run(s)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return r
}

func TestLexer(t *testing.T) {
	toks, err := Tokenize("SELECT a.b, 'it''s' FROM t WHERE x <> 1.5e2 -- comment\n AND y >= 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "select" || kinds[0] != TokKeyword {
		t.Errorf("keyword lowering failed: %v", texts[0])
	}
	found := false
	for i, tx := range texts {
		if tx == "it's" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Error("escaped string not lexed")
	}
	for _, tx := range []string{"<>", ">=", "1.5e2"} {
		ok := false
		for _, got := range texts {
			if got == tx {
				ok = true
			}
		}
		if !ok {
			t.Errorf("token %q missing from %v", tx, texts)
		}
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Tokenize("a ~ b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a from",
		"select a from t where",
		"select a from t limit x",
		"select a from t extra garbage",
		"select a in from t",
	}
	for _, q := range bad {
		if _, err := ParseSelect(q); err == nil {
			t.Errorf("%q should fail to parse", q)
		}
	}
}

func TestSimpleSelect(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select F, T from E where ew > 1")
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	r = mustRun(t, x, "select * from V")
	if r.Len() != 4 || r.Sch.Arity() != 2 {
		t.Fatalf("star select: %v", r.Sch)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select ID, vw * 2 + 1 as dbl from V where ID = 2")
	if r.Len() != 1 || r.At(0)[1].AsFloat() != 41 {
		t.Fatalf("expr projection: %v", r)
	}
	if r.Sch[1].Name != "dbl" {
		t.Errorf("alias lost: %v", r.Sch)
	}
	r = mustRun(t, x, "select sqrt(vw) from V where ID = 1")
	if r.At(0)[0].AsFloat() != math.Sqrt(10) {
		t.Errorf("sqrt: %v", r)
	}
	r = mustRun(t, x, "select coalesce(null, 7) c, least(3,1,2) l, greatest(3,1,2) g, abs(0-4) a")
	row := r.At(0)
	if row[0].AsInt() != 7 || row[1].AsInt() != 1 || row[2].AsInt() != 3 || row[3].AsInt() != 4 {
		t.Errorf("scalar functions: %v", row)
	}
}

func TestJoinViaWhere(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select E.F, V.vw from E, V where E.T = V.ID and E.F = 0")
	if r.Len() != 2 {
		t.Fatalf("join rows = %d", r.Len())
	}
	for _, tu := range r.Tuples {
		if tu[0].AsInt() != 0 {
			t.Errorf("filter lost: %v", tu)
		}
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	x := testDB(t)
	// Two-hop paths: E1.T = E2.F.
	r := mustRun(t, x, "select E1.F, E2.T from E as E1, E as E2 where E1.T = E2.F")
	if r.Len() != 5 {
		t.Fatalf("two-hop paths = %d, want 5", r.Len())
	}
}

func TestExplicitJoins(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select V.ID, E.F from V left outer join E on V.ID = E.F where E.F is null")
	// Node 1,2,3 have out-edges; 0 has; actually all of 0..3 have out-edges
	// except... E sources are {0,1,2,3}: none null. Use E.T side instead.
	if r.Len() != 0 {
		t.Fatalf("unexpected unmatched sources: %v", r)
	}
	r = mustRun(t, x, "select V.ID from V left outer join E on V.ID = E.T where E.T is null")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 0 {
		t.Fatalf("anti-join via left outer join: %v", r)
	}
	r = mustRun(t, x, "select coalesce(a.ID, b.ID) from (select ID from V where ID < 2) a full outer join (select ID from V where ID > 0) b on a.ID = b.ID")
	if r.Len() != 4 {
		t.Fatalf("full outer join rows = %d", r.Len())
	}
}

func TestGroupByAggregates(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select F, sum(ew) s, count(*) c, min(ew) mn, max(ew) mx, avg(ew) av from E group by F order by F")
	if r.Len() != 4 {
		t.Fatalf("groups = %d", r.Len())
	}
	first := r.At(0) // F=0: ew 1,2
	if first[1].AsFloat() != 3 || first[2].AsInt() != 2 || first[3].AsFloat() != 1 || first[4].AsFloat() != 2 || first[5].AsFloat() != 1.5 {
		t.Errorf("aggregates for F=0: %v", first)
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	// The Fig. 3 pattern: c*sum(W*ew) + (1-c)/n nested around an aggregate.
	x := testDB(t)
	r := mustRun(t, x, "select E.T, 0.5 * sum(vw * ew) + 0.25 from E, V where E.F = V.ID group by E.T order by E.T")
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	// E.T=2: edges 0→2 (ew 2, vw 0) and 1→2 (ew 1, vw 10): 0.5*10+0.25.
	var got float64
	for _, tu := range r.Tuples {
		if tu[0].AsInt() == 2 {
			got = tu[1].AsFloat()
		}
	}
	if got != 5.25 {
		t.Errorf("nested aggregate = %v, want 5.25", got)
	}
}

func TestGlobalAggregate(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select count(*), sum(ew) from E")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 5 || r.At(0)[1].AsFloat() != 10 {
		t.Fatalf("global agg: %v", r)
	}
	// max(L)+1 over empty relation (the TopoSort L_n step) yields NULL+1=NULL.
	x.Override["Empty"] = relation.New(schema.Cols(value.KindInt, "L"))
	r = mustRun(t, x, "select max(L) + 1 from Empty")
	if r.Len() != 1 || !r.At(0)[0].IsNull() {
		t.Fatalf("empty max: %v", r)
	}
}

func TestHaving(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select F, count(*) c from E group by F having count(*) > 1")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 0 {
		t.Fatalf("having: %v", r)
	}
}

func TestDistinctOrderLimit(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select distinct T from E order by T desc limit 2")
	if r.Len() != 2 || r.At(0)[0].AsInt() != 3 || r.At(1)[0].AsInt() != 2 {
		t.Fatalf("distinct/order/limit: %v", r)
	}
}

func TestInSubqueryAndNotIn(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select ID from V where ID in (select T from E)")
	if r.Len() != 3 {
		t.Fatalf("in-subquery rows = %d", r.Len())
	}
	r = mustRun(t, x, "select ID from V where ID not in (select T from E)")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 0 {
		t.Fatalf("not-in rows: %v", r)
	}
	// Paper-style bare subquery without parentheses (Fig. 5).
	r = mustRun(t, x, "select ID from V where ID not in select T from E")
	if r.Len() != 1 {
		t.Fatalf("bare not-in: %v", r)
	}
	r = mustRun(t, x, "select ID from V where ID in (1, 3)")
	if r.Len() != 2 {
		t.Fatalf("in-list rows = %d", r.Len())
	}
}

func TestExists(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select ID from V where exists (select * from E where F = 0)")
	if r.Len() != 4 {
		t.Fatalf("exists: %d", r.Len())
	}
	r = mustRun(t, x, "select ID from V where not exists (select * from E where ew > 100)")
	if r.Len() != 4 {
		t.Fatalf("not exists: %d", r.Len())
	}
	r = mustRun(t, x, "select ID from V where exists (select * from E where ew > 100)")
	if r.Len() != 0 {
		t.Fatalf("false exists: %d", r.Len())
	}
}

func TestSetOperations(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "(select F from E) union (select T from E)")
	if r.Len() != 4 {
		t.Fatalf("union: %d", r.Len())
	}
	r = mustRun(t, x, "(select F from E) union all (select T from E)")
	if r.Len() != 10 {
		t.Fatalf("union all: %d", r.Len())
	}
	r = mustRun(t, x, "(select T from E) except (select F from E)")
	if r.Len() != 0 {
		t.Fatalf("except: %v", r)
	}
	r = mustRun(t, x, "(select ID from V where ID < 2) intersect (select ID from V where ID > 0)")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 1 {
		t.Fatalf("intersect: %v", r)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	x := testDB(t)
	r := mustRun(t, x, "select s.F from (select F, sum(ew) tot from E group by F) s where s.tot > 2")
	if r.Len() != 2 {
		t.Fatalf("from-subquery: %v", r)
	}
}

func TestNullThreeValuedLogic(t *testing.T) {
	x := testDB(t)
	nr := relation.New(schema.Schema{{Name: "a", Type: value.KindInt}})
	nr.Append(relation.Tuple{value.Null})
	nr.Append(relation.Tuple{value.Int(1)})
	x.Override["N"] = nr
	if r := mustRun(t, x, "select a from N where a = a"); r.Len() != 1 {
		t.Errorf("NULL = NULL must be UNKNOWN: %v", r)
	}
	if r := mustRun(t, x, "select a from N where a is null"); r.Len() != 1 {
		t.Errorf("is null: %v", r)
	}
	if r := mustRun(t, x, "select a from N where a is not null"); r.Len() != 1 {
		t.Errorf("is not null: %v", r)
	}
	// NOT IN against a set with NULL is empty.
	if r := mustRun(t, x, "select ID from V where ID not in (select a from N)"); r.Len() != 0 {
		t.Errorf("NAAJ semantics: %v", r)
	}
}

func TestOverrideShadowsCatalog(t *testing.T) {
	x := testDB(t)
	small := relation.New(schema.Schema{{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat}})
	small.AppendVals(value.Int(99), value.Float(0))
	x.Override["V"] = small
	r := mustRun(t, x, "select ID from V")
	if r.Len() != 1 || r.At(0)[0].AsInt() != 99 {
		t.Fatalf("override not used: %v", r)
	}
}

func TestReferencedTablesAndNegationDetection(t *testing.T) {
	s, err := ParseSelect("select a from X, Y where a not in (select b from Z) and exists (select * from W)")
	if err != nil {
		t.Fatal(err)
	}
	refs := ReferencedTables(s)
	want := []string{"X", "Y", "Z", "W"}
	if len(refs) != 4 {
		t.Fatalf("refs = %v", refs)
	}
	for _, w := range want {
		if !contains(refs, w) {
			t.Errorf("missing %s in %v", w, refs)
		}
	}
	if !s.UsesNegation("Z") || s.UsesNegation("W") || s.UsesNegation("X") {
		t.Error("negation detection wrong")
	}
	s2, _ := ParseSelect("select a from X except select a from Y")
	if !s2.UsesNegation("Y") {
		t.Error("except should count as negation")
	}
}

func TestAggregateOutsideGroupContextFails(t *testing.T) {
	x := testDB(t)
	s, err := ParseSelect("select F from E where sum(ew) > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(s); err == nil {
		t.Error("aggregate in WHERE must fail")
	}
}

func TestUnknownTableAndFunction(t *testing.T) {
	x := testDB(t)
	if _, err := x.Run(mustParse(t, "select a from NoSuch")); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := x.Run(mustParse(t, "select nosuchfn(1) from V")); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := x.Run(mustParse(t, "select zz from V")); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := x.Run(mustParse(t, "(select ID from V) union (select F, T from E)")); err == nil {
		t.Error("arity mismatch in set op should fail")
	}
}

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCrossProfileJoinPlans(t *testing.T) {
	// The same query must return identical results on all profiles even
	// though the physical join differs.
	q := "select E.F, V.vw from E, V where E.T = V.ID order by E.F, V.vw"
	var ref string
	for _, prof := range []engine.Profile{engine.OracleLike(), engine.DB2Like(), engine.PostgresLike(true)} {
		e := engine.New(prof)
		eRel := relation.New(schema.Schema{
			{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
			{Name: "ew", Type: value.KindFloat},
		})
		for i := int64(0); i < 30; i++ {
			eRel.AppendVals(value.Int(i%7), value.Int(i%5), value.Float(1))
		}
		if _, err := e.LoadBase("E", eRel); err != nil {
			t.Fatal(err)
		}
		vRel := relation.New(schema.Schema{
			{Name: "ID", Type: value.KindInt}, {Name: "vw", Type: value.KindFloat},
		})
		for i := int64(0); i < 5; i++ {
			vRel.AppendVals(value.Int(i), value.Float(float64(i)))
		}
		// Store V as a *temp* table so plan choice diverges by profile.
		tmp, err := e.CreateTemp("V", vRel.Sch)
		if err != nil {
			t.Fatal(err)
		}
		if err := tmp.InsertRelation(vRel); err != nil {
			t.Fatal(err)
		}
		got := mustRun(t, NewExec(e), q).String()
		if ref == "" {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("%s: result differs:\n%s\nvs\n%s", prof.Name, got, ref)
		}
	}
	if !strings.Contains(ref, "(") {
		t.Error("sanity: reference result empty")
	}
}

func TestGroupByExpression(t *testing.T) {
	x := testDB(t)
	// Group on a computed expression, repeated verbatim in the select list
	// and in HAVING.
	r := mustRun(t, x, "select F + T s, count(*) c from E group by F + T order by s")
	if r.Len() == 0 {
		t.Fatal("no groups")
	}
	total := int64(0)
	for _, tu := range r.Tuples {
		total += tu[1].AsInt()
	}
	if total != 5 {
		t.Fatalf("group counts sum to %d, want 5", total)
	}
	r = mustRun(t, x, "select F + T s from E group by F + T having count(*) > 1")
	// E rows: (0,1),(0,2),(1,2),(2,3),(3,1): sums 1,2,3,5,4 — all distinct.
	if r.Len() != 0 {
		t.Fatalf("having over expression groups: %v", r)
	}
	// Mixed column + expression keys.
	r = mustRun(t, x, "select F, T % 2 parity, count(*) c from E group by F, T % 2 order by F")
	if r.Len() != 5 {
		t.Fatalf("mixed keys groups = %d", r.Len())
	}
}

func TestExplainSelect(t *testing.T) {
	x := testDB(t)
	plan, err := x.ExplainSelect(mustParse(t, "select E.F, sum(vw) s from E, V where E.T = V.ID and vw > 5 group by E.F order by s desc limit 3"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"limit 3", "sort by s desc", "hash aggregate on (E.F)",
		"hash join on (E.T = V.ID)", "filter (vw > 5)",
		"scan E (base table, 5 rows, analyzed)",
		"scan V (base table, 4 rows, analyzed)",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// Temp tables show the profile's fallback algorithm.
	pg := engine.New(engine.PostgresLike(false))
	eRel := relation.New(schema.Schema{
		{Name: "F", Type: value.KindInt}, {Name: "T", Type: value.KindInt},
		{Name: "ew", Type: value.KindFloat},
	})
	if _, err := pg.LoadBase("E", eRel); err != nil {
		t.Fatal(err)
	}
	tmp, _ := pg.CreateTemp("W", schema.Cols(value.KindInt, "ID"))
	_ = tmp
	xp := NewExec(pg)
	plan, err = xp.ExplainSelect(mustParse(t, "select E.F from E, W where E.T = W.ID"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sort-merge join") {
		t.Errorf("postgres temp plan should pick sort-merge:\n%s", plan)
	}
	if !strings.Contains(plan, "temp table") {
		t.Errorf("plan should mark temp tables:\n%s", plan)
	}
}

func TestExplainSelectShapes(t *testing.T) {
	x := testDB(t)
	plan, err := x.ExplainSelect(mustParse(t, "(select F from E) union (select T from E)"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "union") {
		t.Errorf("set op missing:\n%s", plan)
	}
	plan, err = x.ExplainSelect(mustParse(t, "select s.F from (select F from E where ew > 1) s"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "subquery s:") || !strings.Contains(plan, "filter (ew > 1)") {
		t.Errorf("subquery plan wrong:\n%s", plan)
	}
	plan, err = x.ExplainSelect(mustParse(t, "select V.ID from V left outer join E on V.ID = E.T"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "left outer join on (V.ID = E.T)") {
		t.Errorf("outer join plan wrong:\n%s", plan)
	}
	plan, err = x.ExplainSelect(mustParse(t, "select 1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "values (one row)") {
		t.Errorf("no-from plan wrong:\n%s", plan)
	}
	if _, err := x.ExplainSelect(mustParse(t, "select a from Ghost")); err == nil {
		t.Error("explain of unknown table should fail")
	}
}

func TestExprString(t *testing.T) {
	cases := map[string]string{
		"select a + b * 2 from V":                "(a + (b * 2))",
		"select not a from V":                    "not a",
		"select a in (1, 2) from V":              "a in (1, 2)",
		"select a not in select b from W from V": "a not in (subquery)",
		"select exists (select 1) from V":        "exists (subquery)",
		"select a is not null from V":            "a is not null",
		"select coalesce(a, 'x') from V":         "coalesce(a, 'x')",
		"select count(*) c from V group by a":    "count(*)",
	}
	for q, want := range cases {
		s, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if got := ExprString(s.Items[0].Expr); got != want {
			t.Errorf("%q rendered as %q, want %q", q, got, want)
		}
	}
}
