package sql

import "strconv"

// This file parses the enhanced recursive WITH clause of Section 6 (Fig. 4):
//
//	with [recursive] R(cols) as (
//	    subquery
//	    { union all | union | union by update [cols] } subquery ...
//	    [ maxrecursion N ]
//	)
//	final-select
//
// where each subquery may carry a "computed by" block defining local
// relations (Fig. 5, Fig. 6):
//
//	select ... computed by
//	    Name[(cols)] as select ...;
//	    Name2 as select ...;

// ComputedDef is one "Name(cols) as select" definition in a computed by
// block.
type ComputedDef struct {
	Name  string
	Cols  []string
	Query *SelectStmt
}

// WithBranch is one subquery of the WITH body plus its computed-by
// definitions.
type WithBranch struct {
	Query    *SelectStmt
	Computed []ComputedDef
}

// WithSetOp separates two branches.
type WithSetOp int

// The branch separators.
const (
	WithUnionAll WithSetOp = iota
	WithUnion
	WithUnionByUpdate
)

// String names the separator.
func (o WithSetOp) String() string {
	switch o {
	case WithUnionAll:
		return "union all"
	case WithUnion:
		return "union"
	case WithUnionByUpdate:
		return "union by update"
	}
	return "?"
}

// WithStmt is a parsed WITH+ statement.
type WithStmt struct {
	Recursive bool
	RecName   string
	RecCols   []string
	Branches  []WithBranch
	Ops       []WithSetOp // len = len(Branches)-1
	UBUCols   []string    // key columns of union by update (nil = replace-all form)
	MaxRec    int         // 0 = unbounded
	Final     *SelectStmt
}

// HasUBU reports whether any separator is union by update.
func (w *WithStmt) HasUBU() bool {
	for _, op := range w.Ops {
		if op == WithUnionByUpdate {
			return true
		}
	}
	return false
}

// ParseWith parses a complete WITH+ statement.
func ParseWith(src string) (*WithStmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	w, err := p.parseWith()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().Text)
	}
	return w, nil
}

func (p *Parser) parseWith() (*WithStmt, error) {
	if !p.acceptKw("with") {
		return nil, p.errf("expected with, found %q", p.peek().Text)
	}
	w := &WithStmt{}
	w.Recursive = p.acceptKw("recursive")
	name := p.advance()
	if name.Kind != TokIdent {
		return nil, p.errf("expected recursive relation name, found %q", name.Text)
	}
	w.RecName = name.Text
	if p.accept(TokOp, "(") {
		for {
			c := p.advance()
			if c.Kind != TokIdent {
				return nil, p.errf("expected column name, found %q", c.Text)
			}
			w.RecCols = append(w.RecCols, c.Text)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokKeyword, "as"); err != nil {
		return nil, err
	}
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	// First branch.
	br, err := p.parseWithBranch()
	if err != nil {
		return nil, err
	}
	w.Branches = append(w.Branches, br)
	for {
		switch {
		case p.peekKw("union"):
			p.advance()
			switch {
			case p.acceptKw("all"):
				w.Ops = append(w.Ops, WithUnionAll)
			case p.acceptKw("by"):
				if err := p.expect(TokKeyword, "update"); err != nil {
					return nil, err
				}
				w.Ops = append(w.Ops, WithUnionByUpdate)
				// Optional key column list (bare identifiers, Fig. 3).
				for p.peek().Kind == TokIdent {
					w.UBUCols = append(w.UBUCols, p.advance().Text)
					if !p.accept(TokOp, ",") {
						break
					}
				}
			default:
				w.Ops = append(w.Ops, WithUnion)
			}
			br, err := p.parseWithBranch()
			if err != nil {
				return nil, err
			}
			w.Branches = append(w.Branches, br)
		case p.peekKw("maxrecursion"):
			p.advance()
			n := p.advance()
			if n.Kind != TokNumber {
				return nil, p.errf("maxrecursion needs a number, found %q", n.Text)
			}
			v, err := strconv.Atoi(n.Text)
			if err != nil || v < 0 {
				return nil, p.errf("bad maxrecursion %q", n.Text)
			}
			w.MaxRec = v
		default:
			goto done
		}
	}
done:
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	final, err := p.parseSetOps()
	if err != nil {
		return nil, err
	}
	w.Final = final
	return w, nil
}

// parseWithBranch parses one subquery, optionally parenthesized, with an
// optional computed by block.
func (p *Parser) parseWithBranch() (WithBranch, error) {
	var br WithBranch
	paren := p.accept(TokOp, "(")
	q, err := p.parseSelectCore()
	if err != nil {
		return br, err
	}
	br.Query = q
	if p.acceptKw("computed") {
		if err := p.expect(TokKeyword, "by"); err != nil {
			return br, err
		}
		for {
			def, err := p.parseComputedDef()
			if err != nil {
				return br, err
			}
			br.Computed = append(br.Computed, def)
			if !p.accept(TokOp, ";") {
				break
			}
			// Allow a trailing semicolon before ')'.
			if !p.peekIdentStart() {
				break
			}
		}
	}
	if paren {
		if err := p.expect(TokOp, ")"); err != nil {
			return br, err
		}
	}
	return br, nil
}

func (p *Parser) peekIdentStart() bool { return p.peek().Kind == TokIdent }

func (p *Parser) parseComputedDef() (ComputedDef, error) {
	var def ComputedDef
	name := p.advance()
	if name.Kind != TokIdent {
		return def, p.errf("expected computed-by relation name, found %q", name.Text)
	}
	def.Name = name.Text
	if p.accept(TokOp, "(") {
		for {
			c := p.advance()
			if c.Kind != TokIdent {
				return def, p.errf("expected column name, found %q", c.Text)
			}
			def.Cols = append(def.Cols, c.Text)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return def, err
		}
	}
	if err := p.expect(TokKeyword, "as"); err != nil {
		return def, err
	}
	q, err := p.parseSelectCore()
	if err != nil {
		return def, err
	}
	def.Query = q
	return def, nil
}
