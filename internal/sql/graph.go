package sql

// SQL/PGQ-style property graphs: CREATE PROPERTY GRAPH / DROP PROPERTY
// GRAPH DDL and the GRAPH_TABLE(g MATCH ... COLUMNS (...)) table
// expression. The pattern language covers what the engine can compile
// faithfully: fixed-length patterns (equi-join trees), {1,n} walk
// quantifiers and ANY SHORTEST (WITH+ recursions; see graphexpand.go).
// Path modes the engine would silently mis-execute as walk semantics —
// TRAIL, ACYCLIC, SIMPLE — are rejected at parse time with a typed error
// naming the construct; naming an edge variable under a quantifier is
// fine, but referencing it (a group variable) is rejected at expansion.
//
// None of the graph words (property, graph, vertex, edge, tables, key,
// source, destination, references, match, columns, any, shortest, walk,
// graph_table) are lexer keywords: like explain/analyze they are matched
// context-sensitively, so existing queries using them as identifiers keep
// parsing.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// UnsupportedGraphError reports a SQL/PGQ construct the compiler refuses
// by design (TRAIL/ACYCLIC/SIMPLE path modes, group variables, general
// quantifiers). It is a parse-time error: callers surface it through the
// same channel as syntax errors.
type UnsupportedGraphError struct{ Construct string }

func (e *UnsupportedGraphError) Error() string {
	return fmt.Sprintf("sql: unsupported SQL/PGQ construct: %s", e.Construct)
}

// GraphVertexDef is one entry of VERTEX TABLES: a table exposed as a
// vertex set, identified by its key column.
type GraphVertexDef struct {
	Table string
	Key   string
}

// GraphEdgeDef is one entry of EDGE TABLES: a table exposed as an edge
// set, with SOURCE/DESTINATION key columns referencing vertex tables.
type GraphEdgeDef struct {
	Table    string
	SrcKey   string
	SrcTable string
	DstKey   string
	DstTable string
}

// CreateGraphStmt is CREATE PROPERTY GRAPH.
type CreateGraphStmt struct {
	Name     string
	Vertices []GraphVertexDef
	Edges    []GraphEdgeDef
}

// DropGraphStmt is DROP PROPERTY GRAPH.
type DropGraphStmt struct{ Name string }

func (*CreateGraphStmt) stmtNode() {}
func (*DropGraphStmt) stmtNode()   {}

// GraphNode is one "(v)" or "(v:Table)" pattern element.
type GraphNode struct {
	Var   string
	Label string // vertex table name ("" = the graph's only vertex table)
}

// GraphEdge is one "-[e]->" / "<-[e]-" pattern element, optionally
// quantified "{1,n}" / "{1,}".
type GraphEdge struct {
	Var        string
	Label      string // edge table name ("" = the graph's only edge table)
	Right      bool   // true for -[..]->, false for <-[..]-
	Quantified bool
	Lo, Hi     int // Hi == 0 with Quantified set means unbounded
}

// GraphPattern is a linear path pattern: Nodes joined by Edges
// (len(Edges) == len(Nodes)-1), optionally under ANY SHORTEST.
type GraphPattern struct {
	Shortest bool
	Nodes    []GraphNode
	Edges    []GraphEdge
}

// Variable reports whether the pattern needs recursion: ANY SHORTEST or a
// quantifier spanning more than one hop.
func (p *GraphPattern) Variable() bool {
	if p.Shortest {
		return true
	}
	for _, e := range p.Edges {
		if e.Quantified && !(e.Lo == 1 && e.Hi == 1) {
			return true
		}
	}
	return false
}

// GraphTableRef is a GRAPH_TABLE(...) FROM entry before expansion against
// the catalog's graph definitions (see ExpandStatement).
type GraphTableRef struct {
	Graph   string
	Pattern *GraphPattern
	Where   Expr
	Columns []SelectItem
}

// ---------------------------------------------------------------------------
// Parsing. Graph words are context-sensitive: matched case-insensitively
// against identifier or keyword tokens, never reserved.

func (p *Parser) peekWord(w string) bool {
	t := p.peek()
	return (t.Kind == TokIdent || t.Kind == TokKeyword) && strings.ToLower(t.Text) == w
}

func (p *Parser) acceptWord(w string) bool {
	if p.peekWord(w) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return p.errf("expected %q, found %q", w, p.peek().Text)
	}
	return nil
}

// peekAt returns the token i positions ahead (EOF-padded).
func (p *Parser) peekAt(i int) Token {
	if p.pos+i < len(p.toks) {
		return p.toks[p.pos+i]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) ident(what string) (string, error) {
	t := p.advance()
	if t.Kind != TokIdent {
		return "", p.errf("expected %s, found %q", what, t.Text)
	}
	return t.Text, nil
}

// parseCreateGraph parses CREATE PROPERTY GRAPH g (VERTEX TABLES (...),
// EDGE TABLES (...)). The leading "create" is still pending.
func (p *Parser) parseCreateGraph() (Statement, error) {
	p.advance() // create
	p.advance() // property
	if err := p.expectWord("graph"); err != nil {
		return nil, err
	}
	name, err := p.ident("graph name")
	if err != nil {
		return nil, err
	}
	st := &CreateGraphStmt{Name: name}
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptWord("vertex"):
			if err := p.expectWord("tables"); err != nil {
				return nil, err
			}
			if err := p.parenList(func() error {
				v, err := p.parseVertexDef()
				if err != nil {
					return err
				}
				st.Vertices = append(st.Vertices, v)
				return nil
			}); err != nil {
				return nil, err
			}
		case p.acceptWord("edge"):
			if err := p.expectWord("tables"); err != nil {
				return nil, err
			}
			if err := p.parenList(func() error {
				e, err := p.parseEdgeDef()
				if err != nil {
					return err
				}
				st.Edges = append(st.Edges, e)
				return nil
			}); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected VERTEX TABLES or EDGE TABLES, found %q", p.peek().Text)
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if len(st.Vertices) == 0 {
		return nil, p.errf("property graph %q declares no vertex tables", st.Name)
	}
	return st, nil
}

// parenList parses "(" item {"," item} ")".
func (p *Parser) parenList(item func() error) error {
	if err := p.expect(TokOp, "("); err != nil {
		return err
	}
	for {
		if err := item(); err != nil {
			return err
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return p.expect(TokOp, ")")
}

// parseKeyCol parses KEY (col).
func (p *Parser) parseKeyCol() (string, error) {
	if err := p.expectWord("key"); err != nil {
		return "", err
	}
	var col string
	err := p.parenList(func() error {
		if col != "" {
			return &UnsupportedGraphError{Construct: "composite keys"}
		}
		c, err := p.ident("key column")
		if err != nil {
			return err
		}
		col = c
		return nil
	})
	return col, err
}

func (p *Parser) parseVertexDef() (GraphVertexDef, error) {
	table, err := p.ident("vertex table name")
	if err != nil {
		return GraphVertexDef{}, err
	}
	key, err := p.parseKeyCol()
	if err != nil {
		return GraphVertexDef{}, err
	}
	return GraphVertexDef{Table: table, Key: key}, nil
}

func (p *Parser) parseEdgeDef() (GraphEdgeDef, error) {
	var d GraphEdgeDef
	var err error
	if d.Table, err = p.ident("edge table name"); err != nil {
		return d, err
	}
	if err = p.expectWord("source"); err != nil {
		return d, err
	}
	if d.SrcKey, err = p.parseKeyCol(); err != nil {
		return d, err
	}
	if err = p.expectWord("references"); err != nil {
		return d, err
	}
	if d.SrcTable, err = p.ident("vertex table name"); err != nil {
		return d, err
	}
	if err = p.expectWord("destination"); err != nil {
		return d, err
	}
	if d.DstKey, err = p.parseKeyCol(); err != nil {
		return d, err
	}
	if err = p.expectWord("references"); err != nil {
		return d, err
	}
	if d.DstTable, err = p.ident("vertex table name"); err != nil {
		return d, err
	}
	return d, nil
}

// parseGraphTable parses GRAPH_TABLE(g MATCH pattern [WHERE expr] COLUMNS
// (...)) [alias]. The "graph_table" identifier is still pending; callers
// have verified a "(" follows it.
func (p *Parser) parseGraphTable() (*TableRef, error) {
	p.advance() // graph_table
	p.advance() // (
	graph, err := p.ident("graph name")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("match"); err != nil {
		return nil, err
	}
	pat, err := p.parseGraphPattern()
	if err != nil {
		return nil, err
	}
	gt := &GraphTableRef{Graph: graph, Pattern: pat}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		gt.Where = e
	}
	if err := p.expectWord("columns"); err != nil {
		return nil, err
	}
	if err := p.parenList(func() error {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		if item.Star {
			return p.errf("COLUMNS (*) is not supported; list expressions explicitly")
		}
		gt.Columns = append(gt.Columns, item)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	ref := &TableRef{GraphTable: gt}
	p.acceptKw("as")
	if p.peek().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

func (p *Parser) parseGraphPattern() (*GraphPattern, error) {
	pat := &GraphPattern{}
	// Path-mode prefix. WALK (the default) is the one mode the join/WITH+
	// lowering implements; the others would need dedup on edges or nodes
	// along each path and must not silently execute as walk.
	switch {
	case p.peekWord("trail") || p.peekWord("acyclic") || p.peekWord("simple"):
		return nil, &UnsupportedGraphError{Construct: "path mode " + strings.ToUpper(p.peek().Text)}
	case p.peekKw("all") && strings.ToLower(p.peekAt(1).Text) == "shortest":
		return nil, &UnsupportedGraphError{Construct: "path mode ALL SHORTEST (use ANY SHORTEST)"}
	case p.peekWord("shortest"):
		return nil, &UnsupportedGraphError{Construct: "bare SHORTEST (use ANY SHORTEST)"}
	case p.acceptWord("walk"): // explicit default
	case p.peekWord("any") && strings.ToLower(p.peekAt(1).Text) == "shortest":
		p.advance()
		p.advance()
		pat.Shortest = true
	}
	n, err := p.parseGraphNode()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "-" && t.Text != "<") {
			return pat, nil
		}
		e, err := p.parseGraphEdge()
		if err != nil {
			return nil, err
		}
		n, err := p.parseGraphNode()
		if err != nil {
			return nil, err
		}
		pat.Edges = append(pat.Edges, e)
		pat.Nodes = append(pat.Nodes, n)
	}
}

func (p *Parser) parseGraphNode() (GraphNode, error) {
	if err := p.expect(TokOp, "("); err != nil {
		return GraphNode{}, err
	}
	var n GraphNode
	if p.peek().Kind == TokIdent {
		n.Var = p.advance().Text
	}
	if p.accept(TokOp, ":") {
		lbl, err := p.ident("vertex table label")
		if err != nil {
			return GraphNode{}, err
		}
		n.Label = lbl
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return GraphNode{}, err
	}
	return n, nil
}

// parseGraphEdge parses -[e:E]-> or <-[e:E]-, with an optional {1,n}
// quantifier. Bare arrows without brackets are not accepted ("--" starts a
// SQL comment).
func (p *Parser) parseGraphEdge() (GraphEdge, error) {
	var e GraphEdge
	left := p.accept(TokOp, "<")
	if err := p.expect(TokOp, "-"); err != nil {
		return e, err
	}
	if err := p.expect(TokOp, "["); err != nil {
		return e, err
	}
	if p.peek().Kind == TokIdent {
		e.Var = p.advance().Text
	}
	if p.accept(TokOp, ":") {
		lbl, err := p.ident("edge table label")
		if err != nil {
			return e, err
		}
		e.Label = lbl
	}
	if err := p.expect(TokOp, "]"); err != nil {
		return e, err
	}
	if err := p.expect(TokOp, "-"); err != nil {
		return e, err
	}
	if left {
		e.Right = false
	} else {
		if err := p.expect(TokOp, ">"); err != nil {
			return e, err
		}
		e.Right = true
	}
	if p.accept(TokOp, "{") {
		e.Quantified = true
		lo := p.advance()
		if lo.Kind != TokNumber {
			return e, p.errf("quantifier needs a number, found %q", lo.Text)
		}
		n, err := strconv.Atoi(lo.Text)
		if err != nil {
			return e, p.errf("bad quantifier bound %q", lo.Text)
		}
		e.Lo = n
		if p.accept(TokOp, ",") {
			if p.peek().Kind == TokNumber {
				hi, err := strconv.Atoi(p.advance().Text)
				if err != nil {
					return e, p.errf("bad quantifier bound")
				}
				e.Hi = hi
			} // else {1,} = unbounded, Hi stays 0
		} else {
			e.Hi = e.Lo
		}
		if err := p.expect(TokOp, "}"); err != nil {
			return e, err
		}
		if e.Lo != 1 {
			return e, &UnsupportedGraphError{
				Construct: fmt.Sprintf("quantifier {%d,...} (lower bound must be 1)", e.Lo),
			}
		}
		if e.Hi != 0 && e.Hi < e.Lo {
			return e, p.errf("empty quantifier {%d,%d}", e.Lo, e.Hi)
		}
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Rendering. Every renderer emits text the parser accepts back, so
// parse → String → reparse is a fixed point (FuzzMatchParser pins this).

// String renders the DDL in canonical form (vertex tables before edge
// tables).
func (s *CreateGraphStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "create property graph %s (vertex tables (", s.Name)
	for i, v := range s.Vertices {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s key (%s)", v.Table, v.Key)
	}
	b.WriteString(")")
	if len(s.Edges) > 0 {
		b.WriteString(", edge tables (")
		for i, e := range s.Edges {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s source key (%s) references %s destination key (%s) references %s",
				e.Table, e.SrcKey, e.SrcTable, e.DstKey, e.DstTable)
		}
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

// String renders the DDL.
func (s *DropGraphStmt) String() string { return "drop property graph " + s.Name }

// String renders the node element.
func (n GraphNode) String() string {
	if n.Label == "" {
		return "(" + n.Var + ")"
	}
	return "(" + n.Var + ":" + n.Label + ")"
}

// String renders the edge element with its direction and quantifier.
func (e GraphEdge) String() string {
	inner := "[" + e.Var
	if e.Label != "" {
		inner += ":" + e.Label
	}
	inner += "]"
	quant := ""
	if e.Quantified {
		switch {
		case e.Hi == 0:
			quant = fmt.Sprintf("{%d,}", e.Lo)
		case e.Hi == e.Lo:
			quant = fmt.Sprintf("{%d}", e.Lo)
		default:
			quant = fmt.Sprintf("{%d,%d}", e.Lo, e.Hi)
		}
	}
	if e.Right {
		return "-" + inner + "->" + quant
	}
	return "<-" + inner + "-" + quant
}

// String renders the pattern.
func (p *GraphPattern) String() string {
	var b strings.Builder
	if p.Shortest {
		b.WriteString("any shortest ")
	}
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(p.Edges[i-1].String())
		}
		b.WriteString(n.String())
	}
	return b.String()
}

// String renders the full GRAPH_TABLE expression.
func (g *GraphTableRef) String() string {
	var b strings.Builder
	b.WriteString("graph_table(")
	b.WriteString(g.Graph)
	b.WriteString(" match ")
	b.WriteString(g.Pattern.String())
	if g.Where != nil {
		b.WriteString(" where ")
		b.WriteString(exprSQL(g.Where))
	}
	b.WriteString(" columns (")
	for i, it := range g.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(selectItemSQL(it))
	}
	b.WriteString("))")
	return b.String()
}

// exprSQL renders an expression in reparseable form: unlike ExprString
// (plan labels, lossy for subqueries) it fully renders IN/EXISTS
// subqueries and escapes string literals. Nested expressions are
// parenthesized, so precedence never needs reconstructing.
func exprSQL(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *Lit:
		return litSQL(x.Val)
	case *Unary:
		return "(" + x.Op + " " + exprSQL(x.X) + ")"
	case *Binary:
		return "(" + exprSQL(x.L) + " " + x.Op + " " + exprSQL(x.R) + ")"
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprSQL(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *InExpr:
		neg := ""
		if x.Negated {
			neg = " not"
		}
		if x.Sub != nil {
			return "(" + exprSQL(x.X) + neg + " in (" + selectSQL(x.Sub) + "))"
		}
		items := make([]string, len(x.List))
		for i, a := range x.List {
			items[i] = exprSQL(a)
		}
		return "(" + exprSQL(x.X) + neg + " in (" + strings.Join(items, ", ") + "))"
	case *ExistsExpr:
		if x.Negated {
			return "(not exists (" + selectSQL(x.Sub) + "))"
		}
		return "(exists (" + selectSQL(x.Sub) + "))"
	case *IsNullExpr:
		if x.Negated {
			return "(" + exprSQL(x.X) + " is not null)"
		}
		return "(" + exprSQL(x.X) + " is null)"
	}
	return "?"
}

func litSQL(v value.Value) string {
	switch v.K {
	case value.KindNull:
		return "null"
	case value.KindBool:
		if v.AsBool() {
			return "true"
		}
		return "false"
	case value.KindInt:
		return strconv.FormatInt(v.I, 10)
	case value.KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case value.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return "null"
}

func selectItemSQL(it SelectItem) string {
	if it.Star {
		return "*"
	}
	s := exprSQL(it.Expr)
	if it.Alias != "" {
		s += " as " + it.Alias
	}
	return s
}

// selectSQL renders a (possibly compound) select block chain.
func selectSQL(s *SelectStmt) string {
	var b strings.Builder
	op := ""
	for blk := s; blk != nil; blk = blk.Next {
		if op != "" {
			b.WriteString(" " + op + " ")
		}
		b.WriteString(selectBlockSQL(blk))
		op = blk.SetOp
	}
	return b.String()
}

func selectBlockSQL(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(selectItemSQL(it))
	}
	if len(s.From) > 0 {
		b.WriteString(" from ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tableRefSQL(f))
		}
	}
	if s.Where != nil {
		b.WriteString(" where " + exprSQL(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(exprSQL(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" having " + exprSQL(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" order by ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(exprSQL(o.Expr))
			if o.Desc {
				b.WriteString(" desc")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" limit " + strconv.Itoa(s.Limit))
	}
	return b.String()
}

func tableRefSQL(t *TableRef) string {
	switch {
	case t.IsJoin():
		kind := map[JoinKind]string{
			JoinInner: "inner", JoinLeftOuter: "left outer", JoinFullOuter: "full outer",
		}[t.Kind]
		s := tableRefSQL(t.Join) + " " + kind + " join " + tableRefSQL(t.Right)
		if t.On != nil {
			s += " on " + exprSQL(t.On)
		}
		return s
	case t.GraphTable != nil:
		s := t.GraphTable.String()
		if t.Alias != "" {
			s += " " + t.Alias
		}
		return s
	case t.Sub != nil:
		s := "(" + selectSQL(t.Sub) + ")"
		if t.Alias != "" {
			s += " " + t.Alias
		}
		return s
	default:
		s := t.Name
		if t.Alias != "" {
			s += " " + t.Alias
		}
		return s
	}
}

// StatementString renders a statement back to parseable SQL text, for the
// statement kinds round-tripped by FuzzMatchParser. The second result is
// false for statement kinds without a renderer (INSERT, CREATE TABLE, ...).
func StatementString(st Statement) (string, bool) {
	switch s := st.(type) {
	case *CreateGraphStmt:
		return s.String(), true
	case *DropGraphStmt:
		return s.String(), true
	case *QueryStmt:
		return selectSQL(s.Select), true
	case *ExplainStmt:
		inner, ok := StatementString(s.Target)
		if !ok {
			return "", false
		}
		if s.Analyze {
			return "explain analyze " + inner, true
		}
		return "explain " + inner, true
	}
	return "", false
}
