// Package sql implements the SQL subset the paper's workloads need: SELECT
// with joins (inner, left/full outer), WHERE, GROUP BY / HAVING, ORDER BY,
// LIMIT, DISTINCT, scalar and aggregate functions, IN / NOT IN / EXISTS /
// NOT EXISTS subqueries, and set operations — plus a recursive-descent
// parser and an executor over the engine. The WITH+ extension of Section 6
// is layered on top in package withplus.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// The token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // punctuation and operators
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string // keywords are lower-cased
	Pos  int
}

var keywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"group": true, "by": true, "having": true, "order": true, "limit": true,
	"as": true, "and": true, "or": true, "not": true, "in": true,
	"exists": true, "is": true, "null": true, "union": true, "all": true,
	"update": true, "with": true, "recursive": true, "computed": true,
	"maxrecursion": true, "left": true, "right": true, "full": true,
	"outer": true, "inner": true, "join": true, "on": true, "asc": true,
	"desc": true, "except": true, "intersect": true, "true": true,
	"false": true, "between": true, "like": true, "case": true,
	"when": true, "then": true, "else": true, "end": true, "over": true,
	"partition": true, "insert": true, "into": true, "values": true,
	"create": true, "table": true, "temporary": true, "drop": true,
	"truncate": true,
}

// Lexer tokenizes an input string.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// ErrLex reports a lexical error with position.
type ErrLex struct {
	Pos int
	Msg string
}

func (e *ErrLex) Error() string { return fmt.Sprintf("sql: lex error at %d: %s", e.Pos, e.Msg) }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		lower := strings.ToLower(text)
		if keywords[lower] {
			return Token{Kind: TokKeyword, Text: lower, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	case unicode.IsDigit(rune(c)):
		sawDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !sawDot {
				sawDot = true
				l.pos++
				continue
			}
			if !unicode.IsDigit(rune(ch)) && ch != 'e' && ch != 'E' {
				break
			}
			if ch == 'e' || ch == 'E' {
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{}, &ErrLex{Pos: start, Msg: "unterminated string"}
	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return Token{Kind: TokOp, Text: two, Pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '.', ';', '*', '+', '-', '/', '%', '=', '<', '>',
			'[', ']', '{', '}', ':':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, &ErrLex{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Tokenize scans the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
