package sql

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/value"
)

func execStmt(t *testing.T, x *Exec, q string) {
	t.Helper()
	st, err := ParseStatement(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	if _, err := x.ExecStatement(st); err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
}

func TestCreateInsertSelectLifecycle(t *testing.T) {
	x := NewExec(engine.New(engine.OracleLike()))
	execStmt(t, x, "create table users (uid int, name varchar(32), score float, active bool)")
	execStmt(t, x, "insert into users values (1, 'ada', 9.5, true), (2, 'bob', 4.0, false)")
	execStmt(t, x, "insert into users values (3, 'eve', 1 + 2.5, true)")
	r := mustRun(t, x, "select name, score from users where active = true order by score desc")
	if r.Len() != 2 || r.At(0)[0].S != "ada" || r.At(1)[1].AsFloat() != 3.5 {
		t.Fatalf("lifecycle result: %v", r)
	}
	// INSERT ... SELECT.
	execStmt(t, x, "create table vips (uid int, name varchar)")
	execStmt(t, x, "insert into vips select uid, name from users where score > 3.6")
	r = mustRun(t, x, "select count(*) from vips")
	if r.At(0)[0].AsInt() != 2 {
		t.Fatalf("insert-select count: %v", r)
	}
	// TRUNCATE and DROP.
	execStmt(t, x, "truncate table vips")
	r = mustRun(t, x, "select count(*) from vips")
	if r.At(0)[0].AsInt() != 0 {
		t.Fatal("truncate failed")
	}
	execStmt(t, x, "drop table vips")
	if x.Eng.Cat.Has("vips") {
		t.Fatal("drop failed")
	}
}

func TestCreateTemporaryTable(t *testing.T) {
	x := NewExec(engine.New(engine.PostgresLike(false)))
	execStmt(t, x, "create temporary table scratch (x int)")
	tab, err := x.Eng.Cat.Get("scratch")
	if err != nil || !tab.Temp {
		t.Fatalf("temp table: %v %v", tab, err)
	}
	if tab.Store.BytesUsed() != 0 {
		// Paged store only grows after inserts.
		t.Fatal("fresh temp should be empty")
	}
	execStmt(t, x, "insert into scratch values (1)")
	if tab.Store.BytesUsed() == 0 {
		t.Fatal("postgres temp should be paged")
	}
}

func TestStatementParseErrors(t *testing.T) {
	bad := []string{
		"create table (x int)",
		"create table t (x nosuchtype)",
		"create table t (x int",
		"insert into",
		"insert t values (1)",
		"insert into t values 1",
		"drop t",
		"garbage statement",
		"truncate",
	}
	for _, q := range bad {
		if _, err := ParseStatement(q); err == nil {
			t.Errorf("%q should fail to parse", q)
		}
	}
}

func TestStatementExecErrors(t *testing.T) {
	x := NewExec(engine.New(engine.OracleLike()))
	for _, q := range []string{
		"insert into ghost values (1)",
		"drop table ghost",
		"truncate table ghost",
	} {
		st, err := ParseStatement(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := x.ExecStatement(st); err == nil {
			t.Errorf("%q should fail at execution", q)
		}
	}
	// Arity mismatch.
	execStmt(t, x, "create table t (a int, b int)")
	st, _ := ParseStatement("insert into t values (1)")
	if _, err := x.ExecStatement(st); err == nil {
		t.Error("arity mismatch should fail")
	}
	st, _ = ParseStatement("insert into t select 1")
	if _, err := x.ExecStatement(st); err == nil {
		t.Error("insert-select arity mismatch should fail")
	}
	// WITH+ statements are rejected by ExecStatement.
	st, err := ParseStatement("with R(x) as ((select a from t) union all (select x from R, t where x = a)) select x from R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ExecStatement(st); err == nil {
		t.Error("WITH+ must be routed through withplus")
	}
}

func TestInsertSelectKeepsBaseAnalyzed(t *testing.T) {
	x := NewExec(engine.New(engine.OracleLike()))
	execStmt(t, x, "create table t (a int)")
	tab, _ := x.Eng.Cat.Get("t")
	tab.Analyze()
	execStmt(t, x, "insert into t select 7")
	if !tab.Stats.Analyzed {
		t.Error("explicit DML should re-analyze base tables")
	}
	if tab.Rows() != 1 || tab.Stats.Rows != 1 {
		t.Errorf("rows: %d / %d", tab.Rows(), tab.Stats.Rows)
	}
}

func TestParseStatementDispatch(t *testing.T) {
	cases := map[string]string{
		"select 1":                                  "*sql.QueryStmt",
		"(select 1) union (select 2)":               "*sql.QueryStmt",
		"create table t (a int)":                    "*sql.CreateTableStmt",
		"insert into t values (1)":                  "*sql.InsertStmt",
		"drop table t":                              "*sql.DropTableStmt",
		"truncate table t":                          "*sql.TruncateStmt",
		"with R(a) as ((select 1)) select a from R": "*sql.WithQueryStmt",
	}
	for q, want := range cases {
		st, err := ParseStatement(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if got := typeName(st); got != want {
			t.Errorf("%q parsed as %s, want %s", q, got, want)
		}
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *QueryStmt:
		return "*sql.QueryStmt"
	case *CreateTableStmt:
		return "*sql.CreateTableStmt"
	case *InsertStmt:
		return "*sql.InsertStmt"
	case *DropTableStmt:
		return "*sql.DropTableStmt"
	case *TruncateStmt:
		return "*sql.TruncateStmt"
	case *WithQueryStmt:
		return "*sql.WithQueryStmt"
	}
	return "?"
}

func TestInsertNullAndExpressions(t *testing.T) {
	x := NewExec(engine.New(engine.OracleLike()))
	execStmt(t, x, "create table t (a int, b float)")
	execStmt(t, x, "insert into t values (null, 2 * 3.5)")
	r := mustRun(t, x, "select a, b from t")
	if !r.At(0)[0].IsNull() || r.At(0)[1].AsFloat() != 7 {
		t.Fatalf("row: %v", r.At(0))
	}
	if r.At(0)[1].K != value.KindFloat {
		t.Error("type should be float")
	}
}

func TestAnalyzeSwitchesTempTablePlan(t *testing.T) {
	// The Exp-A story in reverse: a PostgreSQL temp table joins by
	// sort-merge until ANALYZE provides statistics, after which the
	// optimizer picks the hash join it uses for base tables.
	x := NewExec(engine.New(engine.PostgresLike(false)))
	execStmt(t, x, "create table E (F int, T int)")
	tab, _ := x.Eng.Cat.Get("E")
	tab.Analyze()
	execStmt(t, x, "create temporary table W (ID int)")
	execStmt(t, x, "insert into W values (1), (2)")
	plan, err := x.ExplainSelect(mustParse(t, "select E.F from E, W where E.T = W.ID"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sort-merge join") {
		t.Fatalf("pre-analyze plan should be sort-merge:\n%s", plan)
	}
	execStmt(t, x, "analyze W")
	plan, err = x.ExplainSelect(mustParse(t, "select E.F from E, W where E.T = W.ID"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hash join") {
		t.Fatalf("post-analyze plan should be hash:\n%s", plan)
	}
	if _, err := ParseStatement("analyze"); err == nil {
		t.Error("analyze without table should fail")
	}
	st, _ := ParseStatement("analyze ghost")
	if _, err := x.ExecStatement(st); err == nil {
		t.Error("analyze of missing table should fail")
	}
}
