package sql

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Differential tests for the vectorized compiler: the batch kernels must be
// observationally identical to the row path on every expression the SQL
// surface can produce. FuzzVectorVsRow generates expression ASTs from fuzz
// bytes and holds ra.Select/ra.Project against ra.SelectVec/ra.ProjectVec;
// the deterministic tests below run whole statements through two executors
// with DisableVectorized toggled.

// fuzzRelation builds a 64-row table with two dense int columns, a dense
// float column, and a messy column mixing NULL, ints, floats, and strings —
// the shapes that exercise both the typed kernels and the generic paths.
func fuzzRelation(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(schema.Schema{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "f", Type: value.KindFloat},
		{Name: "m", Type: value.KindInt},
	})
	for i := 0; i < 64; i++ {
		var m value.Value
		switch rng.Intn(5) {
		case 0:
			m = value.Null
		case 1:
			m = value.Str("x")
		case 2:
			m = value.Float(rng.Float64() * 3)
		default:
			m = value.Int(int64(rng.Intn(7) - 3))
		}
		r.AppendVals(
			value.Int(int64(rng.Intn(10))),
			value.Int(int64(rng.Intn(10)-5)),
			value.Float(rng.Float64()*4-2),
			m,
		)
	}
	return r
}

// exprGen derives an expression AST from a byte program; out of bytes means
// zeroes, so every program terminates in column-0 leaves.
type exprGen struct {
	prog []byte
	pos  int
}

func (g *exprGen) next() byte {
	if g.pos >= len(g.prog) {
		return 0
	}
	b := g.prog[g.pos]
	g.pos++
	return b
}

var fuzzCols = []string{"a", "b", "f", "m"}

func (g *exprGen) leaf() Expr {
	if g.next()%2 == 0 {
		return &ColRef{Name: fuzzCols[int(g.next())%len(fuzzCols)]}
	}
	switch g.next() % 4 {
	case 0:
		return &Lit{Val: value.Int(int64(g.next()%7) - 3)}
	case 1:
		return &Lit{Val: value.Float(float64(g.next()) / 16.0)}
	case 2:
		return &Lit{Val: value.Str("x")}
	default:
		return &Lit{Val: value.Null}
	}
}

func (g *exprGen) expr(depth int) Expr {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.next() % 9 {
	case 0, 1:
		return g.leaf()
	case 2:
		return &Unary{Op: "-", X: g.expr(depth - 1)}
	case 3:
		return &Unary{Op: "not", X: g.expr(depth - 1)}
	case 4:
		ops := []string{"+", "-", "*", "/", "%"}
		return &Binary{Op: ops[int(g.next())%len(ops)], L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 5:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return &Binary{Op: ops[int(g.next())%len(ops)], L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 6:
		op := "and"
		if g.next()%2 == 1 {
			op = "or"
		}
		return &Binary{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 7:
		return &IsNullExpr{X: g.expr(depth - 1), Negated: g.next()%2 == 1}
	default:
		// Scalar functions have no dedicated kernel: this covers the
		// row-fallback path inside an otherwise vectorized tree.
		if g.next()%2 == 0 {
			return &FuncCall{Name: "abs", Args: []Expr{g.expr(depth - 1)}}
		}
		return &FuncCall{Name: "coalesce", Args: []Expr{g.expr(depth - 1), g.expr(depth - 1)}}
	}
}

// sameVal is value equality with NaN = NaN (a float kernel and the row path
// must produce bitwise-compatible results, and NaN != NaN would mask that).
func sameVal(a, b value.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == value.KindFloat && math.IsNaN(a.F) && math.IsNaN(b.F) {
		return true
	}
	return a == b
}

// FuzzVectorVsRow is the differential oracle for the vectorized compiler:
// for every generated expression, if the row path succeeds the vector path
// must succeed with byte-identical output. When the row path errors the
// comparison is skipped — selection-vector refinement means later conjuncts
// see fewer rows, so the vector path's error set is a subset of the row
// path's, and it may legitimately succeed where the row path fails.
func FuzzVectorVsRow(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{4, 0, 0, 0, 1, 1, 5, 2, 0, 2, 1, 0})    // arithmetic + comparison
	f.Add(int64(3), []byte{6, 0, 5, 3, 0, 3, 1, 1, 7, 1, 0, 3})    // and/or over comparisons
	f.Add(int64(4), []byte{8, 0, 2, 0, 1, 8, 1, 0, 2, 0, 3})       // abs/coalesce fallback
	f.Add(int64(5), []byte{4, 3, 0, 3, 0, 1, 2})                   // division / modulo by column
	f.Add(int64(6), []byte{7, 0, 0, 3, 5, 1, 0, 3, 1, 1, 3})       // is null over messy column
	f.Add(int64(7), []byte{5, 4, 0, 6, 1, 3, 2, 0, 0, 0, 5, 1, 1}) // nested logic under comparison
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		rel := fuzzRelation(seed%16 + 1)
		sch := rel.Sch
		x := NewExec(engine.New(engine.OracleLike()))
		g := &exprGen{prog: prog}
		e := g.expr(4)

		// Predicate differential: WHERE semantics.
		rowPred, rerr := x.compilePred(e, sch)
		if rerr != nil {
			t.Fatalf("row compile failed on generated expr: %v", rerr)
		}
		vecPred, _, verr := x.compileVecPred(e, sch)
		if verr != nil {
			t.Fatalf("row path compiled but vector did not: %v", verr)
		}
		rowOut, rowErr := ra.Select(rel, rowPred)
		vecOut, vecErr := ra.SelectVec(rel, vecPred)
		if rowErr == nil {
			if vecErr != nil {
				t.Fatalf("row select succeeded, vector failed: %v", vecErr)
			}
			compareRels(t, "select", rowOut, vecOut)
		}

		// Expression differential: projection semantics.
		rowEx, rerr := x.compileExpr(e, sch)
		if rerr != nil {
			t.Fatalf("row compile failed on generated expr: %v", rerr)
		}
		vecEx, _, verr := x.compileVecExpr(e, sch)
		if verr != nil {
			t.Fatalf("row path compiled but vector did not: %v", verr)
		}
		want := make([]value.Value, 0, rel.Len())
		for _, tup := range rel.Tuples {
			v, err := rowEx(tup)
			if err != nil {
				return // row path errors: nothing to compare
			}
			want = append(want, v)
		}
		col := schema.Column{Name: "o", Type: value.KindFloat}
		got, vecErr := ra.ProjectVec(rel, []ra.VecOutCol{{Col: col, Expr: vecEx}})
		if vecErr != nil {
			t.Fatalf("row projection succeeded, vector failed: %v", vecErr)
		}
		if got.Len() != len(want) {
			t.Fatalf("projection rows: row %d vector %d", len(want), got.Len())
		}
		for i, tup := range got.Tuples {
			if !sameVal(tup[0], want[i]) {
				t.Fatalf("projection row %d: row path %v vector %v", i, want[i], tup[0])
			}
		}
	})
}

// compareRels requires identical schema-width, length, and values in order.
func compareRels(t *testing.T, what string, want, got *relation.Relation) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s rows: row path %d vector %d", what, want.Len(), got.Len())
	}
	for i := range want.Tuples {
		if len(want.Tuples[i]) != len(got.Tuples[i]) {
			t.Fatalf("%s row %d arity: row path %d vector %d", what, i, len(want.Tuples[i]), len(got.Tuples[i]))
		}
		for j := range want.Tuples[i] {
			if !sameVal(want.Tuples[i][j], got.Tuples[i][j]) {
				t.Fatalf("%s row %d col %d: row path %v vector %v", what, i, j, want.Tuples[i][j], got.Tuples[i][j])
			}
		}
	}
}

// vecTestDB loads a table with dense and messy columns into a fresh engine.
func vecTestDB(t *testing.T, prof engine.Profile, disable bool) *Exec {
	t.Helper()
	e := engine.New(prof)
	e.DisableVectorized = disable
	if _, err := e.LoadBase("T", fuzzRelation(7)); err != nil {
		t.Fatal(err)
	}
	return NewExec(e)
}

// TestVecRowStatementParity runs whole statements through a vectorized and a
// row-path executor on every profile and requires identical rendered output,
// with the counters proving which path ran.
func TestVecRowStatementParity(t *testing.T) {
	queries := []struct {
		q        string
		fallback bool // expects RowFallbacks > 0 on the vectorized engine
	}{
		{q: "select a, b from T where f > 0.5 and a <> b"},
		{q: "select a + b as s, f * 2.0 as w, a from T"},
		{q: "select a, sum(f) as s, count(*) as n, max(f) as mx from T group by a"},
		{q: "select a, min(b) as mn, avg(f) as av from T group by a having count(*) > 2"},
		{q: "select a from T where m is null"},
		{q: "select a from T where m is not null and m > 0"},
		{q: "select b % 3 as r, a / 2 as h from T where b <> 0"},
		{q: "select a from T where coalesce(m, 0) > 1", fallback: true},
		{q: "select abs(b) as ab from T", fallback: true},
		{q: "select count(*) as n from T"},
		{q: "select sum(a + b) as s from T where not (f < 0.0 or a = b)"},
	}
	for _, prof := range engine.Profiles() {
		for _, tc := range queries {
			vec := vecTestDB(t, prof, false)
			row := vecTestDB(t, prof, true)
			wantRel := mustRun(t, row, tc.q)
			gotRel := mustRun(t, vec, tc.q)
			if want, got := wantRel.String(), gotRel.String(); want != got {
				t.Errorf("%s / %q:\nrow path:\n%s\nvectorized:\n%s", prof.Name, tc.q, want, got)
			}
			if row.Eng.Cnt.VectorizedBatches != 0 {
				t.Errorf("%s / %q: DisableVectorized engine ran %d batches", prof.Name, tc.q, row.Eng.Cnt.VectorizedBatches)
			}
			if vec.Eng.Cnt.VectorizedBatches == 0 {
				t.Errorf("%s / %q: vectorized engine ran no batches", prof.Name, tc.q)
			}
			if tc.fallback && vec.Eng.Cnt.RowFallbacks == 0 {
				t.Errorf("%s / %q: expected a row fallback, counter is 0", prof.Name, tc.q)
			}
			if !tc.fallback && vec.Eng.Cnt.RowFallbacks != 0 {
				t.Errorf("%s / %q: unexpected row fallbacks: %d", prof.Name, tc.q, vec.Eng.Cnt.RowFallbacks)
			}
		}
	}
}

// TestVecCompileAggsUnknown pins the forward-compat escape hatch: an
// unrecognized aggregate reports ok=false (row path takes over) rather than
// erroring.
func TestVecCompileAggsUnknown(t *testing.T) {
	x := NewExec(engine.New(engine.OracleLike()))
	sch := fuzzRelation(1).Sch
	_, _, ok, err := x.compileVecAggs([]*FuncCall{{Name: "median", Args: []Expr{&ColRef{Name: "a"}}}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unknown aggregate must report ok=false")
	}
}
