package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser tokenizes src and returns a parser.
func NewParser(src string) (*Parser, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseSelect parses a complete (possibly compound) SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	s, err := p.parseSetOps()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().Text)
	}
	return s, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the token if it matches (keyword/op text lower-cased).
func (p *Parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && t.Text == text {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %q", text, p.peek().Text)
	}
	return nil
}

// acceptKw consumes a keyword.
func (p *Parser) acceptKw(kw string) bool { return p.accept(TokKeyword, kw) }

// peekKw reports whether the next token is the keyword.
func (p *Parser) peekKw(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

// parseSetOps parses select {UNION [ALL]|EXCEPT|INTERSECT select}*.
func (p *Parser) parseSetOps() (*SelectStmt, error) {
	s, err := p.parseSelectBlock()
	if err != nil {
		return nil, err
	}
	cur := s
	for {
		var op string
		switch {
		case p.peekKw("union"):
			p.advance()
			op = "union"
			if p.acceptKw("all") {
				op = "union all"
			}
		case p.peekKw("except"):
			p.advance()
			op = "except"
		case p.peekKw("intersect"):
			p.advance()
			op = "intersect"
		default:
			return s, nil
		}
		next, err := p.parseSelectBlock()
		if err != nil {
			return nil, err
		}
		cur.SetOp = op
		cur.Next = next
		cur = next
	}
}

// parseSelectBlock parses one select, allowing a parenthesized block.
func (p *Parser) parseSelectBlock() (*SelectStmt, error) {
	if p.accept(TokOp, "(") {
		s, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*SelectStmt, error) {
	if !p.acceptKw("select") {
		return nil, p.errf("expected select, found %q", p.peek().Text)
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.acceptKw("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.acceptKw("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKw("order") {
		if err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKw("desc") {
				it.Desc = true
			} else {
				p.acceptKw("asc")
			}
			s.OrderBy = append(s.OrderBy, it)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		t := p.advance()
		if t.Kind != TokNumber {
			return nil, p.errf("limit needs a number, found %q", t.Text)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errf("bad limit %q", t.Text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("as") {
		t := p.advance()
		if t.Kind != TokIdent {
			return SelectItem{}, p.errf("expected alias, found %q", t.Text)
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.advance().Text
	}
	return item, nil
}

// parseTableRef parses: base [alias] | (subquery) alias, with optional
// LEFT/FULL OUTER JOIN chains.
func (p *Parser) parseTableRef() (*TableRef, error) {
	ref, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.peekKw("left"):
			p.advance()
			p.acceptKw("outer")
			kind = JoinLeftOuter
		case p.peekKw("full"):
			p.advance()
			p.acceptKw("outer")
			kind = JoinFullOuter
		case p.peekKw("inner"):
			p.advance()
			kind = JoinInner
		case p.peekKw("join"):
			kind = JoinInner
		default:
			return ref, nil
		}
		if err := p.expect(TokKeyword, "join"); err != nil {
			return nil, err
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &TableRef{Join: ref, Right: right, Kind: kind}
		if p.acceptKw("on") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		ref = join
	}
}

func (p *Parser) parseTablePrimary() (*TableRef, error) {
	if p.accept(TokOp, "(") {
		sub, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		ref := &TableRef{Sub: sub}
		p.acceptKw("as")
		if p.peek().Kind == TokIdent {
			ref.Alias = p.advance().Text
		}
		return ref, nil
	}
	if t := p.peek(); t.Kind == TokIdent && strings.ToLower(t.Text) == "graph_table" &&
		p.peekAt(1).Kind == TokOp && p.peekAt(1).Text == "(" {
		return p.parseGraphTable()
	}
	t := p.advance()
	if t.Kind != TokIdent {
		return nil, p.errf("expected table name, found %q", t.Text)
	}
	ref := &TableRef{Name: t.Text}
	if p.acceptKw("as") {
		a := p.advance()
		if a.Kind != TokIdent {
			return nil, p.errf("expected alias, found %q", a.Text)
		}
		ref.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

// Expression grammar: or → and → not → comparison → additive →
// multiplicative → unary → primary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.peekKw("not") && !p.nextIsNotExists() {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

// nextIsNotExists looks ahead for "not exists" which parseComparison's
// primary handles.
func (p *Parser) nextIsNotExists() bool {
	if p.pos+1 < len(p.toks) {
		n := p.toks[p.pos+1]
		return n.Kind == TokKeyword && n.Text == "exists"
	}
	return false
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: IS [NOT] NULL, [NOT] IN.
	for {
		switch {
		case p.peekKw("is"):
			p.advance()
			neg := p.acceptKw("not")
			if err := p.expect(TokKeyword, "null"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Negated: neg}
		case p.peekKw("not") && p.nextIsIn():
			p.advance()
			p.advance() // in
			in, err := p.parseInTail(l, true)
			if err != nil {
				return nil, err
			}
			l = in
		case p.peekKw("in"):
			p.advance()
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		default:
			goto ops
		}
	}
ops:
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.Text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) nextIsIn() bool {
	if p.pos+1 < len(p.toks) {
		n := p.toks[p.pos+1]
		return n.Kind == TokKeyword && n.Text == "in"
	}
	return false
}

// parseInTail parses the target of IN: a parenthesized subquery or list,
// or (paper style, Fig. 5) a bare "select ..." without parentheses.
func (p *Parser) parseInTail(x Expr, negated bool) (Expr, error) {
	if p.peekKw("select") {
		sub, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		return &InExpr{X: x, Sub: sub, Negated: negated}, nil
	}
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	if p.peekKw("select") {
		sub, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: x, Sub: sub, Negated: negated}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return &InExpr{X: x, List: list, Negated: negated}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.accept(TokOp, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Lit{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Lit{Val: value.Int(i)}, nil
	case t.Kind == TokString:
		p.advance()
		return &Lit{Val: value.Str(t.Text)}, nil
	case t.Kind == TokKeyword && t.Text == "null":
		p.advance()
		return &Lit{Val: value.Null}, nil
	case t.Kind == TokKeyword && t.Text == "true":
		p.advance()
		return &Lit{Val: value.Bool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "false":
		p.advance()
		return &Lit{Val: value.Bool(false)}, nil
	case t.Kind == TokKeyword && t.Text == "exists":
		p.advance()
		if err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	case t.Kind == TokKeyword && t.Text == "not":
		p.advance()
		if err := p.expect(TokKeyword, "exists"); err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSetOps()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub, Negated: true}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.advance()
		// Function call?
		if p.accept(TokOp, "(") {
			f := &FuncCall{Name: strings.ToLower(t.Text)}
			if p.accept(TokOp, "*") {
				f.Star = true
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			if !p.accept(TokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			}
			return f, nil
		}
		// Qualified column?
		if p.accept(TokOp, ".") {
			n := p.advance()
			if n.Kind != TokIdent {
				return nil, p.errf("expected column after %q.", t.Text)
			}
			return &ColRef{Table: t.Text, Name: n.Text}, nil
		}
		return &ColRef{Name: t.Text}, nil
	}
	return nil, p.errf("unexpected token %q", t.Text)
}
