package sql

import (
	"sort"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
)

// This file decides when a SELECT's FROM/WHERE lowers to the worst-case-
// optimal multiway join instead of the left-deep binary chain. The rule is
// structural: build the join hypergraph (one hyperedge per FROM source,
// vertices = variable classes formed by cross-source equality conjuncts),
// GYO-reduce it, and if a stalled core of at least three relations remains
// the pattern is cyclic — exactly the shapes (triangles, 4-cliques,
// diamonds) where binary join trees materialize intermediates that exceed
// the output by the AGM gap. The cyclic core runs through ra.WCOJ; dangling
// tail sources (the acyclic ears GYO removed) join onto the core result
// through the ordinary binary loop, and conjuncts that never formed
// cross-source variables stay residual filters — so the split consumes
// precisely the conjuncts the binary plan would have used as keys, and the
// output bag is identical either way.

// wcojAtomPlan is one core source with its variable bindings.
type wcojAtomPlan struct {
	Src     int
	VarCols []ra.WCOJVarCol
}

// csrShape reports the (srcCol, dstCol) a cached CSR must have to serve as
// this atom's sorted backing: a binary atom whose two variables map to one
// column each, source column first in elimination order. Variable ids are
// assigned in elimination order, so the smaller id leads.
func (p wcojAtomPlan) csrShape() (srcCol, dstCol int, ok bool) {
	if len(p.VarCols) != 2 || p.VarCols[0].Var == p.VarCols[1].Var {
		return 0, 0, false
	}
	a, b := p.VarCols[0], p.VarCols[1]
	if a.Var < b.Var {
		return a.Col, b.Col, true
	}
	return b.Col, a.Col, true
}

// wcojPlan is the lowering decision: the cyclic core (ascending source
// indexes), its atoms, the variable count (ids 0..NumVars-1 assigned in
// elimination order, so Order is the identity), the consumed conjunct
// indexes, and their rendered forms for EXPLAIN.
type wcojPlan struct {
	Core      []int
	Atoms     []wcojAtomPlan
	NumVars   int
	Order     []int
	Conjuncts []int
	Keys      []string
}

// scol identifies one column of one FROM source.
type scol struct{ src, col int }

// chooseWCOJ inspects the resolved source schemas and the WHERE conjuncts
// and returns the lowering plan for a cyclic equi-join core, or nil to keep
// the binary chain (acyclic pattern, fewer than three core relations, or a
// column reference whose resolution is ambiguous — the conservative bail
// that keeps behavior identical to the binary path). Conjuncts already
// marked used are ignored.
func chooseWCOJ(schemas []schema.Schema, conjuncts []Expr, used []bool) *wcojPlan {
	if len(schemas) < 3 {
		return nil
	}
	// resolveIn finds the unique source a column reference resolves in.
	// Ambiguity — within a source or across sources — aborts the chooser:
	// the binary path's prefix-based resolution could differ, and identical
	// behavior matters more than a faster plan for a malformed query.
	ambiguous := false
	resolveIn := func(c *ColRef) (scol, bool) {
		hit := scol{-1, -1}
		n := 0
		for i, sch := range schemas {
			idx, err := sch.Resolve(c.Table, c.Name)
			if err != nil {
				if _, amb := err.(*schema.ErrAmbiguous); amb {
					ambiguous = true
				}
				continue
			}
			hit = scol{i, idx}
			n++
		}
		if n > 1 {
			ambiguous = true
		}
		return hit, n == 1
	}

	// Union-find over source columns, one union per eligible conjunct: an
	// unused "=" between column references of two different sources.
	parent := make(map[scol]scol)
	var find func(x scol) scol
	find = func(x scol) scol {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	type edge struct {
		ci   int
		a, b scol
	}
	var edges []edge
	for ci, c := range conjuncts {
		if used[ci] {
			continue
		}
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		ls, lok := resolveIn(lc)
		rs, rok := resolveIn(rc)
		if ambiguous {
			return nil
		}
		if !lok || !rok || ls.src == rs.src {
			continue
		}
		rootA, rootB := find(ls), find(rs)
		if rootA != rootB {
			parent[rootA] = rootB
		}
		edges = append(edges, edge{ci: ci, a: ls, b: rs})
	}
	if len(edges) < 3 {
		return nil
	}

	// Per-source variable sets (class roots) for the hypergraph.
	classCols := make(map[scol][]scol) // root -> member columns
	addMember := func(m scol) {
		r := find(m)
		for _, have := range classCols[r] {
			if have == m {
				return
			}
		}
		classCols[r] = append(classCols[r], m)
	}
	for _, e := range edges {
		addMember(e.a)
		addMember(e.b)
	}
	srcVars := make([]map[scol]bool, len(schemas))
	for i := range srcVars {
		srcVars[i] = make(map[scol]bool)
	}
	for root, members := range classCols {
		for _, m := range members {
			srcVars[m.src][root] = true
		}
	}

	// GYO ear reduction: drop variables left in fewer than two live
	// sources, then remove any source whose effective variable set is
	// contained in another's (ties remove the higher index). An empty
	// fixpoint means the hypergraph is acyclic; survivors are the cyclic
	// core.
	alive := make([]bool, len(schemas))
	for i := range schemas {
		alive[i] = len(srcVars[i]) > 0
	}
	eff := make([]map[scol]bool, len(schemas))
	for {
		occ := make(map[scol]int)
		for i := range schemas {
			if !alive[i] {
				continue
			}
			for v := range srcVars[i] {
				occ[v]++
			}
		}
		changed := false
		for i := range schemas {
			if !alive[i] {
				continue
			}
			eff[i] = make(map[scol]bool)
			for v := range srcVars[i] {
				if occ[v] >= 2 {
					eff[i][v] = true
				}
			}
			if len(eff[i]) == 0 {
				alive[i] = false
				changed = true
			}
		}
		if changed {
			continue
		}
	ears:
		for i := range schemas {
			if !alive[i] {
				continue
			}
			for j := range schemas {
				if j == i || !alive[j] {
					continue
				}
				subset := true
				for v := range eff[i] {
					if !eff[j][v] {
						subset = false
						break
					}
				}
				if !subset {
					continue
				}
				if len(eff[i]) == len(eff[j]) && i < j {
					continue // equal sets: remove the higher index
				}
				alive[i] = false
				changed = true
				break ears
			}
		}
		if !changed {
			break
		}
	}
	var core []int
	inCore := make([]bool, len(schemas))
	for i := range schemas {
		if alive[i] {
			core = append(core, i)
			inCore[i] = true
		}
	}
	if len(core) < 3 {
		return nil
	}

	// Surviving variables: classes present in at least two core sources.
	// Assign ids in elimination order — most core occurrences first, ties by
	// first appearance scanning core sources and their columns in order.
	coreOcc := make(map[scol]int)
	for _, s := range core {
		for v := range srcVars[s] {
			coreOcc[v]++
		}
	}
	type varInfo struct {
		root  scol
		occ   int
		first scol
	}
	var vars []varInfo
	seen := make(map[scol]bool)
	for _, s := range core {
		// Deterministic first-appearance: scan this source's columns
		// ascending and claim unseen surviving classes.
		for col := 0; col < schemas[s].Arity(); col++ {
			root := find(scol{s, col})
			if _, isClass := classCols[root]; !isClass {
				continue
			}
			if coreOcc[root] < 2 || seen[root] {
				continue
			}
			seen[root] = true
			vars = append(vars, varInfo{root: root, occ: coreOcc[root], first: scol{s, col}})
		}
	}
	sort.SliceStable(vars, func(i, j int) bool { return vars[i].occ > vars[j].occ })
	varID := make(map[scol]int)
	for id, v := range vars {
		varID[v.root] = id
	}
	if len(vars) == 0 {
		return nil
	}

	plan := &wcojPlan{Core: core, NumVars: len(vars)}
	plan.Order = make([]int, len(vars))
	for i := range plan.Order {
		plan.Order[i] = i
	}
	for _, s := range core {
		ap := wcojAtomPlan{Src: s}
		for col := 0; col < schemas[s].Arity(); col++ {
			if id, ok := varID[find(scol{s, col})]; ok {
				ap.VarCols = append(ap.VarCols, ra.WCOJVarCol{Var: id, Col: col})
			}
		}
		plan.Atoms = append(plan.Atoms, ap)
	}
	// Consume exactly the conjuncts whose endpoints both sit in the core:
	// the keys the binary chain would have used joining core sources.
	for _, e := range edges {
		if inCore[e.a.src] && inCore[e.b.src] {
			plan.Conjuncts = append(plan.Conjuncts, e.ci)
			plan.Keys = append(plan.Keys, ExprString(conjuncts[e.ci]))
		}
	}
	if len(plan.Conjuncts) < 3 {
		return nil // a cycle needs at least three in-core keys
	}
	return plan
}

// planSchemas returns the qualified schemas of the FROM items when every
// item is a plain named reference (catalog table or override) — the only
// shapes the no-execution EXPLAIN path can resolve without running
// subqueries. ok=false keeps the binary-only description.
func (x *Exec) planSchemas(from []*TableRef) ([]schema.Schema, bool) {
	out := make([]schema.Schema, len(from))
	for i, t := range from {
		if t.IsJoin() || t.Sub != nil || t.GraphTable != nil {
			return nil, false
		}
		if r, ok := x.Override[t.Name]; ok {
			out[i] = r.Sch.Qualify(t.DisplayName())
			continue
		}
		tab, err := x.Eng.Cat.Get(t.Name)
		if err != nil {
			return nil, false
		}
		out[i] = tab.Sch.Qualify(t.DisplayName())
	}
	return out, true
}

// restoreFromOrder permutes the joined relation's columns from the actual
// join order (core sources first, then tails in FROM order) back to FROM
// order, so downstream projection and "select *" see the same column layout
// the binary chain produces. An identity order returns the input untouched.
func restoreFromOrder(r *relation.Relation, srcs []source, order []int) *relation.Relation {
	identity := true
	for i, s := range order {
		if s != i {
			identity = false
			break
		}
	}
	if identity {
		return r
	}
	offs := make([]int, len(srcs))
	pos := 0
	for _, s := range order {
		offs[s] = pos
		pos += srcs[s].rel.Sch.Arity()
	}
	perm := make([]int, 0, r.Sch.Arity())
	for s := range srcs {
		for c := 0; c < srcs[s].rel.Sch.Arity(); c++ {
			perm = append(perm, offs[s]+c)
		}
	}
	sch := make(schema.Schema, len(perm))
	for i, p := range perm {
		sch[i] = r.Sch[p]
	}
	out := relation.NewWithCap(sch, r.Len())
	for _, tu := range r.Tuples {
		nt := make(relation.Tuple, len(perm))
		for i, p := range perm {
			nt[i] = tu[p]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}
