package sql

import (
	"reflect"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// planFor parses a full SELECT and runs the chooser over the given
// qualified schemas and its WHERE conjuncts.
func planFor(t *testing.T, schemas []schema.Schema, query string) *wcojPlan {
	t.Helper()
	s, err := ParseSelect(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	var conjuncts []Expr
	if s.Where != nil {
		conjuncts = splitAnd(s.Where)
	}
	return chooseWCOJ(schemas, conjuncts, make([]bool, len(conjuncts)))
}

func edgeSchemas(aliases ...string) []schema.Schema {
	out := make([]schema.Schema, len(aliases))
	for i, a := range aliases {
		out[i] = schema.Cols(value.KindInt, "F", "T").Qualify(a)
	}
	return out
}

// TestChooseWCOJ is the table-driven chooser contract: acyclic patterns
// stay on binary joins (nil plan), cyclic cores lower with the right
// sources, and mixed queries split core from dangling tails.
func TestChooseWCOJ(t *testing.T) {
	vSchema := schema.Cols(value.KindInt, "ID").Qualify("v")
	cases := []struct {
		name     string
		schemas  []schema.Schema
		query    string
		wantCore []int // nil = keep binary
		wantVars int
		wantKeys int // consumed conjuncts
	}{
		{
			name:    "two_sources_never_lower",
			schemas: edgeSchemas("e1", "e2"),
			query:   "select * from E e1, E e2 where e1.T = e2.F and e1.F = e2.T",
		},
		{
			name:    "chain_is_acyclic",
			schemas: edgeSchemas("e1", "e2", "e3"),
			query:   "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F",
		},
		{
			name:    "star_is_acyclic",
			schemas: edgeSchemas("e1", "e2", "e3", "e4"),
			query:   "select * from E e1, E e2, E e3, E e4 where e1.F = e2.F and e1.F = e3.F and e1.F = e4.F",
		},
		{
			name:     "triangle_lowers",
			schemas:  edgeSchemas("e1", "e2", "e3"),
			query:    "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F",
			wantCore: []int{0, 1, 2},
			wantVars: 3,
			wantKeys: 3,
		},
		{
			name:     "four_cycle_lowers",
			schemas:  edgeSchemas("e1", "e2", "e3", "e4"),
			query:    "select * from E e1, E e2, E e3, E e4 where e1.T = e2.F and e2.T = e3.F and e3.T = e4.F and e4.T = e1.F",
			wantCore: []int{0, 1, 2, 3},
			wantVars: 4,
			wantKeys: 4,
		},
		{
			name:    "clique4_lowers",
			schemas: edgeSchemas("e1", "e2", "e3", "e4", "e5", "e6"),
			// Directed 4-clique on (a,b,c,d): e1=(a,b) e2=(a,c) e3=(a,d)
			// e4=(b,c) e5=(b,d) e6=(c,d).
			query: "select * from E e1, E e2, E e3, E e4, E e5, E e6 where " +
				"e1.F = e2.F and e2.F = e3.F and e1.T = e4.F and e4.F = e5.F and " +
				"e2.T = e4.T and e4.T = e6.F and e3.T = e5.T and e5.T = e6.T",
			wantCore: []int{0, 1, 2, 3, 4, 5},
			wantVars: 4,
			wantKeys: 8,
		},
		{
			name:     "triangle_with_tail_splits",
			schemas:  append(edgeSchemas("e1", "e2", "e3"), vSchema),
			query:    "select * from E e1, E e2, E e3, V v where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and v.ID = e1.F",
			wantCore: []int{0, 1, 2},
			wantVars: 3,
			wantKeys: 3,
		},
		{
			name:     "tail_before_core_splits",
			schemas:  append([]schema.Schema{vSchema}, edgeSchemas("e1", "e2", "e3")...),
			query:    "select * from V v, E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and v.ID = e1.F",
			wantCore: []int{1, 2, 3},
			wantVars: 3,
			wantKeys: 3,
		},
		{
			name:     "same_source_equality_stays_residual",
			schemas:  edgeSchemas("e1", "e2", "e3"),
			query:    "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and e1.F = e1.T",
			wantCore: []int{0, 1, 2},
			wantVars: 3,
			wantKeys: 3,
		},
		{
			name:    "literal_keys_do_not_count",
			schemas: edgeSchemas("e1", "e2", "e3"),
			query:   "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = 1",
		},
		{
			name:    "two_disjoint_pairs_are_acyclic",
			schemas: edgeSchemas("e1", "e2", "e3", "e4"),
			query:   "select * from E e1, E e2, E e3, E e4 where e1.T = e2.F and e1.F = e2.T and e3.T = e4.F and e3.F = e4.T",
		},
		{
			name:    "ambiguous_reference_bails",
			schemas: edgeSchemas("e1", "e2", "e3"),
			query:   "select * from E e1, E e2, E e3 where e1.T = F and e2.T = e3.F and e3.T = e1.F",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := planFor(t, tc.schemas, tc.query)
			if tc.wantCore == nil {
				if p != nil {
					t.Fatalf("expected binary plan, got core %v", p.Core)
				}
				return
			}
			if p == nil {
				t.Fatal("expected a WCOJ lowering, chooser kept binary")
			}
			if !reflect.DeepEqual(p.Core, tc.wantCore) {
				t.Fatalf("core = %v, want %v", p.Core, tc.wantCore)
			}
			if p.NumVars != tc.wantVars {
				t.Fatalf("NumVars = %d, want %d", p.NumVars, tc.wantVars)
			}
			if len(p.Conjuncts) != tc.wantKeys {
				t.Fatalf("consumed %d conjuncts, want %d", len(p.Conjuncts), tc.wantKeys)
			}
			// Every atom must bind at least two variables — GYO would have
			// trimmed it otherwise — and ids must be in range.
			for _, a := range p.Atoms {
				if len(a.VarCols) < 2 {
					t.Fatalf("atom %d binds %d vars", a.Src, len(a.VarCols))
				}
				for _, vc := range a.VarCols {
					if vc.Var < 0 || vc.Var >= p.NumVars {
						t.Fatalf("atom %d has out-of-range var %d", a.Src, vc.Var)
					}
				}
			}
		})
	}
}

// TestChooseWCOJCSRShape pins the CSR-backing shape rule: a two-variable
// binary atom exposes (srcCol, dstCol) in elimination order; anything else
// declines.
func TestChooseWCOJCSRShape(t *testing.T) {
	p := planFor(t, edgeSchemas("e1", "e2", "e3"),
		"select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F")
	if p == nil {
		t.Fatal("triangle must lower")
	}
	for i, a := range p.Atoms {
		sc, dc, ok := a.csrShape()
		if !ok {
			t.Fatalf("atom %d should be CSR-shaped", i)
		}
		if sc == dc || sc < 0 || sc > 1 || dc < 0 || dc > 1 {
			t.Fatalf("atom %d shape (%d,%d) out of range", i, sc, dc)
		}
	}
	if _, _, ok := (wcojAtomPlan{}).csrShape(); ok {
		t.Fatal("empty atom must not be CSR-shaped")
	}
}
