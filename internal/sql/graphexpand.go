package sql

// Compilation of GRAPH_TABLE references against catalog property-graph
// definitions. Fixed-length patterns become equi-join subqueries whose
// scans stay direct base tables wherever possible — vertex tables are
// joined only when non-key properties are referenced, so the CSR kernel
// chooser sees the same build-side shapes as hand-written joins.
// Variable-length quantifiers ({1,n}, {1,}) and ANY SHORTEST lift the
// whole statement into a WITH+ recursion shaped exactly like the
// hand-written Section 6 forms (algos.TCSQL / algos.SSSPSQL), so the
// delta semi-naive rewrite and the Δ-frontier machinery apply unchanged.

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/value"
)

// ExpandStatement resolves every GRAPH_TABLE reference in st. Fixed-length
// patterns are expanded in place (the statement is mutated); a statement
// containing a variable-length or ANY SHORTEST pattern is lifted into a
// *WithQueryStmt whose recursion feeds the pattern and whose final query
// is the original statement. Statements without graph references are
// returned unchanged.
func ExpandStatement(eng *engine.Engine, st Statement) (Statement, error) {
	switch s := st.(type) {
	case *ExplainStmt:
		target, err := ExpandStatement(eng, s.Target)
		if err != nil {
			return nil, err
		}
		if target == s.Target {
			return s, nil
		}
		return &ExplainStmt{Analyze: s.Analyze, Target: target}, nil
	case *QueryStmt:
		x := &graphExpander{eng: eng}
		if err := x.visitSelect(s.Select); err != nil {
			return nil, err
		}
		switch len(x.varlen) {
		case 0:
			return s, nil
		case 1:
			w, err := x.lift(s.Select, x.varlen[0])
			if err != nil {
				return nil, err
			}
			return &WithQueryStmt{With: w}, nil
		default:
			return nil, fmt.Errorf("sql: at most one variable-length MATCH per statement (found %d)", len(x.varlen))
		}
	case *WithQueryStmt:
		x := &graphExpander{eng: eng}
		for _, br := range s.With.Branches {
			if err := x.visitSelect(br.Query); err != nil {
				return nil, err
			}
			for _, cd := range br.Computed {
				if err := x.visitSelect(cd.Query); err != nil {
					return nil, err
				}
			}
		}
		if err := x.visitSelect(s.With.Final); err != nil {
			return nil, err
		}
		if len(x.varlen) > 0 {
			return nil, fmt.Errorf("sql: variable-length MATCH cannot appear inside a WITH+ statement")
		}
		return s, nil
	}
	return st, nil
}

type graphExpander struct {
	eng      *engine.Engine
	varlen   []*TableRef // deferred variable-length / shortest references
	compiled map[*TableRef]bool
}

// flattenStar inlines a compiled GRAPH_TABLE subquery into its enclosing
// block when that block is exactly `select * from (compiled)`: the
// canonical shape the graph-first Match API emits. The output schema is
// unchanged (star copies the subquery's aliases), but the plan shows the
// real join tree instead of an opaque subquery node, and one
// materialization disappears.
func (x *graphExpander) flattenStar(blk *SelectStmt) {
	if len(blk.Items) != 1 || !blk.Items[0].Star || blk.Where != nil ||
		blk.GroupBy != nil || blk.Having != nil || blk.OrderBy != nil ||
		blk.Distinct || blk.Next != nil || len(blk.From) != 1 {
		return
	}
	f := blk.From[0]
	if f.Sub == nil || f.Alias != "" || !x.compiled[f] {
		return
	}
	sub := f.Sub
	if sub.GroupBy != nil || sub.Having != nil || sub.OrderBy != nil ||
		sub.Distinct || sub.Next != nil || sub.Limit != -1 {
		return
	}
	blk.Items, blk.From, blk.Where = sub.Items, sub.From, sub.Where
}

func (x *graphExpander) visitSelect(s *SelectStmt) error {
	for blk := s; blk != nil; blk = blk.Next {
		for _, f := range blk.From {
			if err := x.visitRef(f); err != nil {
				return err
			}
		}
		x.flattenStar(blk)
		exprs := make([]Expr, 0, len(blk.Items)+len(blk.GroupBy)+len(blk.OrderBy)+2)
		for _, it := range blk.Items {
			exprs = append(exprs, it.Expr)
		}
		exprs = append(exprs, blk.Where, blk.Having)
		exprs = append(exprs, blk.GroupBy...)
		for _, o := range blk.OrderBy {
			exprs = append(exprs, o.Expr)
		}
		for _, e := range exprs {
			if err := x.visitExpr(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (x *graphExpander) visitExpr(e Expr) error {
	var err error
	Walk(e, func(n Expr) {
		if err != nil {
			return
		}
		switch v := n.(type) {
		case *InExpr:
			if v.Sub != nil {
				err = x.visitSelect(v.Sub)
			}
		case *ExistsExpr:
			if v.Sub != nil {
				err = x.visitSelect(v.Sub)
			}
		}
	})
	return err
}

func (x *graphExpander) visitRef(t *TableRef) error {
	if t.IsJoin() {
		if err := x.visitRef(t.Join); err != nil {
			return err
		}
		return x.visitRef(t.Right)
	}
	if t.Sub != nil {
		return x.visitSelect(t.Sub)
	}
	if t.GraphTable == nil {
		return nil
	}
	def, err := x.eng.Cat.GetGraph(t.GraphTable.Graph)
	if err != nil {
		return err
	}
	if t.GraphTable.Pattern.Variable() {
		x.varlen = append(x.varlen, t)
		return nil
	}
	sub, err := compileFixed(def, t.GraphTable)
	if err != nil {
		return err
	}
	t.Sub, t.GraphTable = sub, nil
	if x.compiled == nil {
		x.compiled = make(map[*TableRef]bool)
	}
	x.compiled[t] = true
	return nil
}

// lift compiles the single variable-length reference into a WITH+
// recursion: the reference becomes a projection over the recursive
// relation, and the original (mutated) outer select becomes the final
// query.
func (x *graphExpander) lift(outer *SelectStmt, ref *TableRef) (*WithStmt, error) {
	gt := ref.GraphTable
	def, err := x.eng.Cat.GetGraph(gt.Graph)
	if err != nil {
		return nil, err
	}
	var w *WithStmt
	var proj *SelectStmt
	if gt.Pattern.Shortest {
		w, proj, err = compileShortest(x.eng, def, gt)
	} else {
		w, proj, err = compileVarLen(def, gt)
	}
	if err != nil {
		return nil, err
	}
	ref.Sub, ref.GraphTable = proj, nil
	if x.compiled == nil {
		x.compiled = make(map[*TableRef]bool)
	}
	x.compiled[ref] = true
	if len(outer.From) == 1 && outer.From[0] == ref {
		x.flattenStar(outer)
	}
	w.Final = outer
	return w, nil
}

// ---------------------------------------------------------------------------
// Shared resolution helpers.

func resolveVertex(def *catalog.GraphDef, n GraphNode) (catalog.GraphVertex, error) {
	if n.Label == "" {
		if len(def.Vertices) == 1 {
			return def.Vertices[0], nil
		}
		return catalog.GraphVertex{}, fmt.Errorf(
			"sql: graph %q has %d vertex tables; label the node %q", def.Name, len(def.Vertices), n.Var)
	}
	v, ok := def.Vertex(n.Label)
	if !ok {
		return catalog.GraphVertex{}, fmt.Errorf("sql: graph %q has no vertex table %q", def.Name, n.Label)
	}
	return v, nil
}

func resolveEdge(def *catalog.GraphDef, e GraphEdge) (catalog.GraphEdge, error) {
	if e.Label == "" {
		if len(def.Edges) == 1 {
			return def.Edges[0], nil
		}
		return catalog.GraphEdge{}, fmt.Errorf(
			"sql: graph %q has %d edge tables; label the edge", def.Name, len(def.Edges))
	}
	ed, ok := def.Edge(e.Label)
	if !ok {
		return catalog.GraphEdge{}, fmt.Errorf("sql: graph %q has no edge table %q", def.Name, e.Label)
	}
	return ed, nil
}

// andChain conjoins non-nil expressions.
func andChain(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "and", L: out, R: e}
		}
	}
	return out
}

// conjunctsOf flattens an AND tree into conjuncts (nil-safe).
func conjunctsOf(e Expr) []Expr {
	if e == nil {
		return nil
	}
	return splitAnd(e)
}

// rewriteExpr rebuilds e, replacing nodes for which fn returns a non-nil
// expression. fn may also return an error to abort.
func rewriteExpr(e Expr, fn func(Expr) (Expr, error)) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	if r, err := fn(e); err != nil {
		return nil, err
	} else if r != nil {
		return r, nil
	}
	switch x := e.(type) {
	case *ColRef, *Lit:
		return e, nil
	case *Unary:
		sub, err := rewriteExpr(x.X, fn)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: sub}, nil
	case *Binary:
		l, err := rewriteExpr(x.L, fn)
		if err != nil {
			return nil, err
		}
		r, err := rewriteExpr(x.R, fn)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := rewriteExpr(a, fn)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &FuncCall{Name: x.Name, Args: args, Star: x.Star}, nil
	case *IsNullExpr:
		sub, err := rewriteExpr(x.X, fn)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{X: sub, Negated: x.Negated}, nil
	case *InExpr:
		sub, err := rewriteExpr(x.X, fn)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			na, err := rewriteExpr(a, fn)
			if err != nil {
				return nil, err
			}
			list[i] = na
		}
		return &InExpr{X: sub, Sub: x.Sub, List: list, Negated: x.Negated}, nil
	case *ExistsExpr:
		return e, nil
	}
	return e, nil
}

// exprVars collects the pattern-variable qualifiers an expression uses.
func exprVars(e Expr, out map[string]bool) {
	Walk(e, func(n Expr) {
		if c, ok := n.(*ColRef); ok && c.Table != "" {
			out[c.Table] = true
		}
	})
}

// itemAlias derives the output column name of a COLUMNS item.
func itemAlias(it SelectItem) (string, error) {
	if it.Alias != "" {
		return it.Alias, nil
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name, nil
	}
	return "", fmt.Errorf("sql: GRAPH_TABLE COLUMNS expression %s needs an alias", ExprString(it.Expr))
}

// ---------------------------------------------------------------------------
// Fixed-length compilation: pattern → equi-join select.

func compileFixed(def *catalog.GraphDef, gt *GraphTableRef) (*SelectStmt, error) {
	pat := gt.Pattern
	type nodeInfo struct {
		name      string // variable or generated
		vtx       catalog.GraphVertex
		endpoints []Expr // edge endpoint columns incident to this node
		join      bool   // vertex table must be joined
	}
	var nodes []*nodeInfo
	byVar := map[string]*nodeInfo{}
	names := map[string]bool{}

	nodeAt := make([]*nodeInfo, len(pat.Nodes))
	for i, n := range pat.Nodes {
		vtx, err := resolveVertex(def, n)
		if err != nil {
			return nil, err
		}
		if n.Var != "" {
			if prev, ok := byVar[n.Var]; ok {
				if prev.vtx.Table != vtx.Table {
					return nil, fmt.Errorf("sql: pattern variable %q bound to both %q and %q", n.Var, prev.vtx.Table, vtx.Table)
				}
				nodeAt[i] = prev
				continue
			}
		}
		info := &nodeInfo{name: n.Var, vtx: vtx}
		if info.name == "" {
			info.name = fmt.Sprintf("__v%d", i)
		}
		if names[info.name] {
			return nil, fmt.Errorf("sql: duplicate pattern variable %q", info.name)
		}
		names[info.name] = true
		if n.Var != "" {
			byVar[n.Var] = info
		}
		nodes = append(nodes, info)
		nodeAt[i] = info
	}

	// Edge tables: one FROM entry per hop, in pattern order.
	var from []*TableRef
	edgeVars := map[string]bool{}
	var conjuncts []Expr
	for i, e := range pat.Edges {
		ed, err := resolveEdge(def, e)
		if err != nil {
			return nil, err
		}
		alias := e.Var
		if alias == "" {
			alias = fmt.Sprintf("__e%d", i)
		}
		if names[alias] || edgeVars[alias] {
			return nil, fmt.Errorf("sql: duplicate pattern variable %q", alias)
		}
		edgeVars[alias] = true
		from = append(from, &TableRef{Name: ed.Table, Alias: alias})
		srcIdx, dstIdx := i, i+1
		if !e.Right {
			srcIdx, dstIdx = i+1, i
		}
		src, dst := nodeAt[srcIdx], nodeAt[dstIdx]
		if ed.SrcTable != src.vtx.Table {
			return nil, fmt.Errorf("sql: edge table %q starts at %q, pattern binds %q", ed.Table, ed.SrcTable, src.vtx.Table)
		}
		if ed.DstTable != dst.vtx.Table {
			return nil, fmt.Errorf("sql: edge table %q ends at %q, pattern binds %q", ed.Table, ed.DstTable, dst.vtx.Table)
		}
		src.endpoints = append(src.endpoints, &ColRef{Table: alias, Name: ed.SrcKey})
		dst.endpoints = append(dst.endpoints, &ColRef{Table: alias, Name: ed.DstKey})
	}

	// A vertex table is joined only when the query touches a non-key
	// property (or the node is isolated): key accesses rewrite to edge
	// endpoint columns, keeping scans CSR-chooser-eligible and matching
	// what a hand-written join would look like. This leans on the
	// referential integrity CREATE PROPERTY GRAPH declares: every endpoint
	// value appears in its vertex table.
	usesNonKey := map[string]bool{}
	scan := func(e Expr) {
		Walk(e, func(n Expr) {
			if c, ok := n.(*ColRef); ok && c.Table != "" {
				if info, ok := byVar[c.Table]; ok && c.Name != info.vtx.Key {
					usesNonKey[c.Table] = true
				}
			}
		})
	}
	scan(gt.Where)
	for _, it := range gt.Columns {
		scan(it.Expr)
	}
	subst := map[string]Expr{}
	for _, info := range nodes {
		info.join = usesNonKey[info.name] || len(info.endpoints) == 0
		if info.join {
			from = append(from, &TableRef{Name: info.vtx.Table, Alias: info.name})
			for _, ep := range info.endpoints {
				conjuncts = append(conjuncts, &Binary{Op: "=", L: &ColRef{Table: info.name, Name: info.vtx.Key}, R: ep})
			}
		} else {
			for j := 0; j+1 < len(info.endpoints); j++ {
				conjuncts = append(conjuncts, &Binary{Op: "=", L: info.endpoints[j], R: info.endpoints[j+1]})
			}
			subst[info.name] = info.endpoints[0]
		}
	}

	// Substitute key-only node references; validate every qualifier.
	rewrite := func(e Expr) (Expr, error) {
		return rewriteExpr(e, func(n Expr) (Expr, error) {
			switch v := n.(type) {
			case *FuncCall:
				if v.Name == "path_cost" {
					return nil, fmt.Errorf("sql: path_cost() requires ANY SHORTEST")
				}
			case *ColRef:
				if v.Table == "" {
					return nil, nil
				}
				if rep, ok := subst[v.Table]; ok {
					info := byVar[v.Table]
					if v.Name != info.vtx.Key {
						return nil, fmt.Errorf("sql: %s.%s is not available (node not joined)", v.Table, v.Name)
					}
					return rep, nil
				}
				if _, ok := byVar[v.Table]; ok {
					return nil, nil // joined vertex table, resolves by alias
				}
				if edgeVars[v.Table] {
					return nil, nil
				}
				return nil, fmt.Errorf("sql: unknown pattern variable %q", v.Table)
			}
			return nil, nil
		})
	}

	out := &SelectStmt{Limit: -1, From: from}
	for _, it := range gt.Columns {
		alias, err := itemAlias(it)
		if err != nil {
			return nil, err
		}
		e, err := rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, SelectItem{Expr: e, Alias: alias})
	}
	where, err := rewrite(gt.Where)
	if err != nil {
		return nil, err
	}
	out.Where = andChain(append(conjuncts, where)...)
	return out, nil
}

// ---------------------------------------------------------------------------
// Variable-length {1,n} compilation: pattern → transitive-closure WITH+,
// shaped exactly like algos.TCSQL so the delta semi-naive rewrite fires
// (one linear recursive reference, union all, no aggregates).

func compileVarLen(def *catalog.GraphDef, gt *GraphTableRef) (*WithStmt, *SelectStmt, error) {
	pat := gt.Pattern
	if len(pat.Edges) != 1 {
		return nil, nil, &UnsupportedGraphError{Construct: "quantified edge in a multi-edge pattern"}
	}
	e := pat.Edges[0]
	ed, err := resolveEdge(def, e)
	if err != nil {
		return nil, nil, err
	}
	// Under a quantifier the edge variable ranges over every hop of the
	// path — a group variable. Declaring it is harmless; referencing it
	// needs aggregation semantics the recursion does not carry.
	if e.Var != "" {
		used := map[string]bool{}
		exprVars(gt.Where, used)
		for _, it := range gt.Columns {
			exprVars(it.Expr, used)
		}
		if used[e.Var] {
			return nil, nil, &UnsupportedGraphError{
				Construct: fmt.Sprintf("group variable %q (edge variable under a quantifier)", e.Var),
			}
		}
	}
	srcIdx, dstIdx := 0, 1
	if !e.Right {
		srcIdx, dstIdx = 1, 0
	}
	srcNode, dstNode := pat.Nodes[srcIdx], pat.Nodes[dstIdx]
	if srcNode.Var != "" && srcNode.Var == dstNode.Var {
		return nil, nil, &UnsupportedGraphError{Construct: "repeated node variable in a variable-length pattern"}
	}
	srcVtx, err := resolveVertex(def, srcNode)
	if err != nil {
		return nil, nil, err
	}
	dstVtx, err := resolveVertex(def, dstNode)
	if err != nil {
		return nil, nil, err
	}
	if ed.SrcTable != srcVtx.Table || ed.DstTable != dstVtx.Table {
		return nil, nil, fmt.Errorf("sql: edge table %q connects %q to %q, pattern binds %q to %q",
			ed.Table, ed.SrcTable, ed.DstTable, srcVtx.Table, dstVtx.Table)
	}

	rec := def.Name + "__paths"
	// Classify WHERE conjuncts: source-only filters push into the seed
	// branch (the BFS-style "from one source" shape), destination-only
	// filters into the projection; anything else cannot run inside the
	// recursion faithfully.
	var initFilter, finalFilter []Expr
	for _, c := range conjunctsOf(gt.Where) {
		vars := map[string]bool{}
		exprVars(c, vars)
		switch {
		case len(vars) == 1 && srcNode.Var != "" && vars[srcNode.Var]:
			e, err := substEndpoint(c, srcNode.Var, srcVtx.Key, &ColRef{Name: ed.SrcKey})
			if err != nil {
				return nil, nil, err
			}
			initFilter = append(initFilter, e)
		case len(vars) == 1 && dstNode.Var != "" && vars[dstNode.Var]:
			e, err := substEndpoint(c, dstNode.Var, dstVtx.Key, &ColRef{Name: "T"})
			if err != nil {
				return nil, nil, err
			}
			finalFilter = append(finalFilter, e)
		case len(vars) == 0:
			finalFilter = append(finalFilter, c)
		default:
			return nil, nil, &UnsupportedGraphError{
				Construct: fmt.Sprintf("WHERE predicate %s in a variable-length pattern (single-endpoint predicates only)", ExprString(c)),
			}
		}
	}

	// Seed: one-hop pairs, mirroring "select F, T from E".
	init := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{{Expr: &ColRef{Name: ed.SrcKey}}, {Expr: &ColRef{Name: ed.DstKey}}},
		From:  []*TableRef{{Name: ed.Table}},
		Where: andChain(initFilter...),
	}
	// Step: extend the frontier by one hop, mirroring
	// "select TC.F, E.T from TC, E where TC.T = E.F".
	step := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{
			{Expr: &ColRef{Table: rec, Name: "F"}},
			{Expr: &ColRef{Table: ed.Table, Name: ed.DstKey}},
		},
		From: []*TableRef{{Name: rec}, {Name: ed.Table}},
		Where: &Binary{Op: "=",
			L: &ColRef{Table: rec, Name: "T"},
			R: &ColRef{Table: ed.Table, Name: ed.SrcKey}},
	}
	maxRec := 0
	if e.Hi > 0 {
		maxRec = e.Hi - 1
	}
	w := &WithStmt{
		RecName:  rec,
		RecCols:  []string{"F", "T"},
		Branches: []WithBranch{{Query: init}, {Query: step}},
		Ops:      []WithSetOp{WithUnionAll},
		MaxRec:   maxRec,
	}

	proj := &SelectStmt{Limit: -1, From: []*TableRef{{Name: rec}}, Where: andChain(finalFilter...)}
	for _, it := range gt.Columns {
		alias, err := itemAlias(it)
		if err != nil {
			return nil, nil, err
		}
		var e2 Expr
		switch {
		case srcNode.Var != "" && onlyVar(it.Expr, srcNode.Var):
			e2, err = substEndpoint(it.Expr, srcNode.Var, srcVtx.Key, &ColRef{Name: "F"})
		case dstNode.Var != "" && onlyVar(it.Expr, dstNode.Var):
			e2, err = substEndpoint(it.Expr, dstNode.Var, dstVtx.Key, &ColRef{Name: "T"})
		default:
			err = &UnsupportedGraphError{
				Construct: fmt.Sprintf("COLUMNS expression %s in a variable-length pattern (endpoint keys only)", ExprString(it.Expr)),
			}
		}
		if err != nil {
			return nil, nil, err
		}
		proj.Items = append(proj.Items, SelectItem{Expr: e2, Alias: alias})
	}
	return w, proj, nil
}

// onlyVar reports whether every qualified reference in e uses var.
func onlyVar(e Expr, v string) bool {
	vars := map[string]bool{}
	exprVars(e, vars)
	delete(vars, v)
	return len(vars) == 0
}

// substEndpoint replaces v.key with the replacement column; any other
// reference through v (a non-key property) is rejected — variable-length
// recursion only carries endpoint keys.
func substEndpoint(e Expr, v, key string, rep Expr) (Expr, error) {
	return rewriteExpr(e, func(n Expr) (Expr, error) {
		if c, ok := n.(*ColRef); ok && c.Table == v {
			if c.Name != key {
				return nil, &UnsupportedGraphError{
					Construct: fmt.Sprintf("property %s.%s in a variable-length pattern (endpoint keys only)", v, c.Name),
				}
			}
			return rep, nil
		}
		if f, ok := n.(*FuncCall); ok && f.Name == "path_cost" {
			return nil, fmt.Errorf("sql: path_cost() requires ANY SHORTEST")
		}
		return nil, nil
	})
}

// ---------------------------------------------------------------------------
// ANY SHORTEST compilation: single-edge pattern → Bellman-Ford WITH+,
// shaped exactly like algos.SSSPSQL (union-by-update with least/min
// relaxation). The recursion carries (vertex key, distance); destinations
// the fixpoint never reaches keep the 1e18 sentinel — filter with
// path_cost() < 1e18 for reachable-only results.

func compileShortest(eng *engine.Engine, def *catalog.GraphDef, gt *GraphTableRef) (*WithStmt, *SelectStmt, error) {
	pat := gt.Pattern
	if len(pat.Edges) != 1 {
		return nil, nil, &UnsupportedGraphError{Construct: "ANY SHORTEST over a multi-edge pattern"}
	}
	e := pat.Edges[0]
	if e.Quantified {
		return nil, nil, &UnsupportedGraphError{Construct: "quantifier combined with ANY SHORTEST"}
	}
	ed, err := resolveEdge(def, e)
	if err != nil {
		return nil, nil, err
	}
	srcIdx, dstIdx := 0, 1
	if !e.Right {
		srcIdx, dstIdx = 1, 0
	}
	srcNode, dstNode := pat.Nodes[srcIdx], pat.Nodes[dstIdx]
	srcVtx, err := resolveVertex(def, srcNode)
	if err != nil {
		return nil, nil, err
	}
	dstVtx, err := resolveVertex(def, dstNode)
	if err != nil {
		return nil, nil, err
	}
	if srcVtx.Table != dstVtx.Table {
		return nil, nil, &UnsupportedGraphError{Construct: "ANY SHORTEST across different vertex tables"}
	}
	if ed.SrcTable != srcVtx.Table || ed.DstTable != dstVtx.Table {
		return nil, nil, fmt.Errorf("sql: edge table %q connects %q to %q, pattern binds %q to %q",
			ed.Table, ed.SrcTable, ed.DstTable, srcVtx.Table, dstVtx.Table)
	}
	key := dstVtx.Key
	if key == "dist" {
		return nil, nil, fmt.Errorf("sql: vertex key column %q collides with the distance column of ANY SHORTEST", key)
	}

	// The source must be pinned: find the one "src.key = <constant>"
	// conjunct; remaining destination-side conjuncts filter the result.
	var pin Expr
	var finalFilter []Expr
	for _, c := range conjunctsOf(gt.Where) {
		vars := map[string]bool{}
		exprVars(c, vars)
		if srcNode.Var != "" && vars[srcNode.Var] && pin == nil {
			if p := pinLiteral(c, srcNode.Var, srcVtx.Key); p != nil {
				pin = p
				continue
			}
		}
		if len(vars) == 0 || (len(vars) == 1 && dstNode.Var != "" && vars[dstNode.Var]) {
			e2, err := substShortestRef(c, dstNode.Var, key, srcNode.Var, nil)
			if err != nil {
				return nil, nil, err
			}
			finalFilter = append(finalFilter, e2)
			continue
		}
		return nil, nil, &UnsupportedGraphError{
			Construct: fmt.Sprintf("WHERE predicate %s under ANY SHORTEST", ExprString(c)),
		}
	}
	if pin == nil {
		return nil, nil, fmt.Errorf("sql: ANY SHORTEST requires the source pinned with %s.%s = <literal>",
			orAnon(srcNode.Var), srcVtx.Key)
	}

	// Edge weight: the first edge-table column after the endpoint keys
	// (the paper's E(F, T, ew) layout); hop count when the table has none.
	var weight Expr = &Lit{Val: value.Int(1)}
	if tab, err := eng.Cat.Get(ed.Table); err == nil {
		for _, col := range tab.Sch {
			if col.Name != ed.SrcKey && col.Name != ed.DstKey {
				weight = &ColRef{Table: ed.Table, Name: col.Name}
				break
			}
		}
	}

	rec := def.Name + "__dist"
	v := srcVtx.Table
	// Seeds, mirroring "select ID, 0.0 from V where ID = s" union all
	// "select ID, 1e18 from V where ID <> s".
	init1 := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{{Expr: &ColRef{Name: key}}, {Expr: &Lit{Val: value.Float(0)}}},
		From:  []*TableRef{{Name: v}},
		Where: &Binary{Op: "=", L: &ColRef{Name: key}, R: pin},
	}
	init2 := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{{Expr: &ColRef{Name: key}}, {Expr: &Lit{Val: value.Float(1e18)}}},
		From:  []*TableRef{{Name: v}},
		Where: &Binary{Op: "<>", L: &ColRef{Name: key}, R: pin},
	}
	// Relaxation, mirroring "select D.ID, least(D.dist, s.nd) from D,
	// (select E.T tid, min(dist + ew) nd from D, E where D.ID = E.F
	//  group by E.T) s where D.ID = s.tid".
	inner := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{
			{Expr: &ColRef{Table: ed.Table, Name: ed.DstKey}, Alias: "tid"},
			{Expr: &FuncCall{Name: "min", Args: []Expr{
				&Binary{Op: "+", L: &ColRef{Table: rec, Name: "dist"}, R: weight},
			}}, Alias: "nd"},
		},
		From: []*TableRef{{Name: rec}, {Name: ed.Table}},
		Where: &Binary{Op: "=",
			L: &ColRef{Table: rec, Name: key},
			R: &ColRef{Table: ed.Table, Name: ed.SrcKey}},
		GroupBy: []Expr{&ColRef{Table: ed.Table, Name: ed.DstKey}},
	}
	step := &SelectStmt{
		Limit: -1,
		Items: []SelectItem{
			{Expr: &ColRef{Table: rec, Name: key}},
			{Expr: &FuncCall{Name: "least", Args: []Expr{
				&ColRef{Table: rec, Name: "dist"},
				&ColRef{Table: "s", Name: "nd"},
			}}},
		},
		From: []*TableRef{{Name: rec}, {Sub: inner, Alias: "s"}},
		Where: &Binary{Op: "=",
			L: &ColRef{Table: rec, Name: key},
			R: &ColRef{Table: "s", Name: "tid"}},
	}
	w := &WithStmt{
		RecName:  rec,
		RecCols:  []string{key, "dist"},
		Branches: []WithBranch{{Query: init1}, {Query: init2}, {Query: step}},
		Ops:      []WithSetOp{WithUnionAll, WithUnionByUpdate},
		UBUCols:  []string{key},
	}

	proj := &SelectStmt{Limit: -1, From: []*TableRef{{Name: rec}}, Where: andChain(finalFilter...)}
	for _, it := range gt.Columns {
		alias, err := itemAlias(it)
		if err != nil {
			return nil, nil, err
		}
		e2, err := substShortestRef(it.Expr, dstNode.Var, key, srcNode.Var, pin)
		if err != nil {
			return nil, nil, err
		}
		proj.Items = append(proj.Items, SelectItem{Expr: e2, Alias: alias})
	}
	return w, proj, nil
}

// pinLiteral matches "v.key = <constant>" (either orientation) and
// returns the constant expression.
func pinLiteral(c Expr, v, key string) Expr {
	b, ok := c.(*Binary)
	if !ok || b.Op != "=" {
		return nil
	}
	isKey := func(e Expr) bool {
		cr, ok := e.(*ColRef)
		return ok && cr.Table == v && cr.Name == key
	}
	noRefs := func(e Expr) bool {
		vars := map[string]bool{}
		exprVars(e, vars)
		if len(vars) > 0 {
			return false
		}
		ok := true
		Walk(e, func(n Expr) {
			if _, isCol := n.(*ColRef); isCol {
				ok = false
			}
		})
		return ok
	}
	if isKey(b.L) && noRefs(b.R) {
		return b.R
	}
	if isKey(b.R) && noRefs(b.L) {
		return b.L
	}
	return nil
}

// substShortestRef rewrites destination key references to the recursion's
// key column, path_cost() to the distance column, and (when pin is
// non-nil) source key references to the pinned literal.
func substShortestRef(e Expr, dstVar, key, srcVar string, pin Expr) (Expr, error) {
	return rewriteExpr(e, func(n Expr) (Expr, error) {
		switch x := n.(type) {
		case *FuncCall:
			if x.Name == "path_cost" {
				if len(x.Args) != 0 {
					return nil, fmt.Errorf("sql: path_cost() takes no arguments")
				}
				return &ColRef{Name: "dist"}, nil
			}
		case *ColRef:
			if x.Table == "" {
				return nil, nil
			}
			if dstVar != "" && x.Table == dstVar {
				if x.Name != key {
					return nil, &UnsupportedGraphError{
						Construct: fmt.Sprintf("property %s.%s under ANY SHORTEST (endpoint keys only)", x.Table, x.Name),
					}
				}
				return &ColRef{Name: key}, nil
			}
			if srcVar != "" && x.Table == srcVar {
				if pin == nil {
					return nil, &UnsupportedGraphError{
						Construct: fmt.Sprintf("source reference %s.%s in a WHERE predicate under ANY SHORTEST", x.Table, x.Name),
					}
				}
				if x.Name != key {
					return nil, &UnsupportedGraphError{
						Construct: fmt.Sprintf("property %s.%s under ANY SHORTEST (endpoint keys only)", x.Table, x.Name),
					}
				}
				return pin, nil
			}
			return nil, fmt.Errorf("sql: unknown pattern variable %q", x.Table)
		}
		return nil, nil
	})
}

func orAnon(v string) string {
	if v == "" {
		return "<source>"
	}
	return v
}

// ---------------------------------------------------------------------------
// CREATE PROPERTY GRAPH execution.

func (x *Exec) execCreateGraph(s *CreateGraphStmt) error {
	def := &catalog.GraphDef{Name: s.Name}
	vertexKeys := map[string]string{}
	checkCol := func(table, col string) error {
		t, err := x.Eng.Cat.Get(table)
		if err != nil {
			return fmt.Errorf("sql: create property graph %s: %w", s.Name, err)
		}
		if t.Temp {
			return fmt.Errorf("sql: create property graph %s: %q is a temporary table (graphs are shared; define them over base tables)", s.Name, table)
		}
		if t.Sch.IndexOf(col) < 0 {
			return fmt.Errorf("sql: create property graph %s: table %q has no column %q", s.Name, table, col)
		}
		return nil
	}
	for _, v := range s.Vertices {
		if _, dup := vertexKeys[v.Table]; dup {
			return fmt.Errorf("sql: create property graph %s: duplicate vertex table %q", s.Name, v.Table)
		}
		if err := checkCol(v.Table, v.Key); err != nil {
			return err
		}
		vertexKeys[v.Table] = v.Key
		def.Vertices = append(def.Vertices, catalog.GraphVertex{Table: v.Table, Key: v.Key})
	}
	seenEdges := map[string]bool{}
	for _, e := range s.Edges {
		if seenEdges[e.Table] {
			return fmt.Errorf("sql: create property graph %s: duplicate edge table %q", s.Name, e.Table)
		}
		seenEdges[e.Table] = true
		if err := checkCol(e.Table, e.SrcKey); err != nil {
			return err
		}
		if err := checkCol(e.Table, e.DstKey); err != nil {
			return err
		}
		for _, ref := range []string{e.SrcTable, e.DstTable} {
			if _, ok := vertexKeys[ref]; !ok {
				return fmt.Errorf("sql: create property graph %s: edge table %q references %q, which is not a vertex table of the graph", s.Name, e.Table, ref)
			}
		}
		def.Edges = append(def.Edges, catalog.GraphEdge{
			Table: e.Table, SrcKey: e.SrcKey, SrcTable: e.SrcTable,
			DstKey: e.DstKey, DstTable: e.DstTable,
		})
	}
	return x.Eng.Cat.CreateGraph(def)
}
