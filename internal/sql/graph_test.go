package sql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
)

// graphExec builds an engine with the paper's V/E layout plus a property
// graph over it.
func graphExec(t *testing.T) *Exec {
	t.Helper()
	x := NewExec(engine.New(engine.OracleLike()))
	execStmt(t, x, "create table V (ID int, name varchar(16))")
	execStmt(t, x, "create table E (F int, T int, ew float)")
	execStmt(t, x, "insert into V values (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')")
	execStmt(t, x, "insert into E values (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0)")
	execStmt(t, x, `create property graph g (
		vertex tables (V key (ID)),
		edge tables (E source key (F) references V destination key (T) references V))`)
	return x
}

func TestCreateGraphParseRender(t *testing.T) {
	src := "create property graph g (vertex tables (V key (ID)), edge tables (E source key (F) references V destination key (T) references V))"
	st, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cg, ok := st.(*CreateGraphStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if got := cg.String(); got != src {
		t.Fatalf("render mismatch:\n got %s\nwant %s", got, src)
	}
	if _, err := ParseStatement(cg.String()); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestGraphDDLLifecycle(t *testing.T) {
	x := graphExec(t)
	if names := x.Eng.Cat.GraphNames(); len(names) != 1 || names[0] != "g" {
		t.Fatalf("graph names: %v", names)
	}
	// Duplicate name rejected.
	st, err := ParseStatement("create property graph g (vertex tables (V key (ID)))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ExecStatement(st); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate create: %v", err)
	}
	execStmt(t, x, "drop property graph g")
	if names := x.Eng.Cat.GraphNames(); len(names) != 0 {
		t.Fatalf("after drop: %v", names)
	}
	// Validation: missing table, missing column, edge to non-vertex, temp.
	for _, bad := range []string{
		"create property graph h (vertex tables (nosuch key (ID)))",
		"create property graph h (vertex tables (V key (nope)))",
		"create property graph h (vertex tables (V key (ID)), edge tables (E source key (F) references V destination key (T) references W))",
	} {
		st, err := ParseStatement(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if _, err := x.ExecStatement(st); err == nil {
			t.Fatalf("expected validation error for %q", bad)
		}
	}
	execStmt(t, x, "create temporary table TmpV (ID int)")
	st, _ = ParseStatement("create property graph h (vertex tables (TmpV key (ID)))")
	if _, err := x.ExecStatement(st); err == nil || !strings.Contains(err.Error(), "temporary") {
		t.Fatalf("temp vertex table: %v", err)
	}
}

// mustExec runs a full statement (including GRAPH_TABLE expansion)
// through ExecStatement.
func mustExec(t *testing.T, x *Exec, q string) *relation.Relation {
	t.Helper()
	st, err := ParseStatement(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	r, err := x.ExecStatement(st)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return r
}

func TestMatchFixedLengthJoins(t *testing.T) {
	x := graphExec(t)
	// Two-hop pattern over keys only: must match the hand-written join.
	got := mustExec(t, x, `select * from graph_table(g
		match (a)-[e1]->(b)-[e2]->(c)
		columns (a.ID aid, c.ID cid)) order by aid, cid`)
	want := mustRun(t, x, `select e1.F aid, e2.T cid from E e1, E e2
		where e1.T = e2.F order by aid, cid`)
	if got.String() != want.String() {
		t.Fatalf("fixed 2-hop mismatch:\n got %v\nwant %v", got, want)
	}
	// Non-key property forces the vertex join.
	got = mustExec(t, x, `select * from graph_table(g
		match (a)-[e]->(b)
		where b.name = 'c'
		columns (a.ID aid, b.name bname)) gt order by aid`)
	if got.Len() != 2 || got.At(0)[1].S != "c" {
		t.Fatalf("property join: %v", got)
	}
	// Left-directed edge flips source/destination.
	got = mustExec(t, x, `select * from graph_table(g
		match (a)<-[e]-(b)
		columns (a.ID aid, b.ID bid)) order by aid, bid`)
	want = mustRun(t, x, `select E.T aid, E.F bid from E order by aid, bid`)
	if got.String() != want.String() {
		t.Fatalf("left edge mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMatchVarLenLiftsToWith(t *testing.T) {
	x := graphExec(t)
	st, err := ParseStatement(`select * from graph_table(g
		match (a)-[e]->{1,4}(b)
		columns (a.ID src, b.ID dst)) gt`)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := ExpandStatement(x.Eng, st)
	if err != nil {
		t.Fatal(err)
	}
	wq, ok := expanded.(*WithQueryStmt)
	if !ok {
		t.Fatalf("expected WithQueryStmt, got %T", expanded)
	}
	w := wq.With
	if w.RecName != "g__paths" || len(w.Branches) != 2 || w.MaxRec != 3 {
		t.Fatalf("recursion shape: rec=%q branches=%d maxrec=%d", w.RecName, len(w.Branches), w.MaxRec)
	}
	if len(w.Ops) != 1 || w.Ops[0] != WithUnionAll {
		t.Fatalf("ops: %v", w.Ops)
	}
	// Unbounded quantifier → MaxRec 0 (engine default).
	st, _ = ParseStatement(`select * from graph_table(g match (a)-[e]->{1,}(b) columns (a.ID s, b.ID d)) gt`)
	expanded, err = ExpandStatement(x.Eng, st)
	if err != nil {
		t.Fatal(err)
	}
	if expanded.(*WithQueryStmt).With.MaxRec != 0 {
		t.Fatal("unbounded quantifier should leave MaxRec 0")
	}
	// {1,1} stays a plain join (no recursion).
	st, _ = ParseStatement(`select * from graph_table(g match (a)-[e]->{1}(b) columns (a.ID s, b.ID d)) gt`)
	expanded, err = ExpandStatement(x.Eng, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := expanded.(*QueryStmt); !ok {
		t.Fatalf("{1} should stay a query, got %T", expanded)
	}
}

func TestMatchShortestLiftsToUBU(t *testing.T) {
	x := graphExec(t)
	st, err := ParseStatement(`select * from graph_table(g
		match any shortest (a)-[e]->(b)
		where a.ID = 1
		columns (b.ID dst, path_cost() cost)) gt`)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := ExpandStatement(x.Eng, st)
	if err != nil {
		t.Fatal(err)
	}
	w := expanded.(*WithQueryStmt).With
	if w.RecName != "g__dist" || len(w.Branches) != 3 {
		t.Fatalf("shortest shape: rec=%q branches=%d", w.RecName, len(w.Branches))
	}
	if len(w.Ops) != 2 || w.Ops[1] != WithUnionByUpdate || len(w.UBUCols) != 1 || w.UBUCols[0] != "ID" {
		t.Fatalf("ubu shape: ops=%v ubucols=%v", w.Ops, w.UBUCols)
	}
	// Missing source pin is an error.
	st, _ = ParseStatement(`select * from graph_table(g match any shortest (a)-[e]->(b) columns (b.ID d, path_cost() c)) gt`)
	if _, err := ExpandStatement(x.Eng, st); err == nil || !strings.Contains(err.Error(), "pinn") {
		t.Fatalf("unpinned shortest: %v", err)
	}
}

func TestGraphUnsupportedConstructs(t *testing.T) {
	parseErrs := map[string]string{
		`select * from graph_table(g match trail (a)-[e]->(b) columns (a.ID x)) gt`:        "path mode TRAIL",
		`select * from graph_table(g match acyclic (a)-[e]->(b) columns (a.ID x)) gt`:      "path mode ACYCLIC",
		`select * from graph_table(g match simple (a)-[e]->(b) columns (a.ID x)) gt`:       "path mode SIMPLE",
		`select * from graph_table(g match all shortest (a)-[e]->(b) columns (a.ID x)) gt`: "ALL SHORTEST",
		`select * from graph_table(g match shortest (a)-[e]->(b) columns (a.ID x)) gt`:     "bare SHORTEST",
		`create property graph h (vertex tables (V key (ID, name)))`:                       "composite key",
		`select * from graph_table(g match (a)-[e]->{2,3}(b) columns (a.ID x)) gt`:         "lower bound",
	}
	for src, want := range parseErrs {
		_, err := ParseStatement(src)
		var ue *UnsupportedGraphError
		if err == nil || !errors.As(err, &ue) {
			t.Fatalf("%q: expected UnsupportedGraphError, got %v", src, err)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q lacks %q", src, err, want)
		}
	}
	// Expansion-time rejections.
	x := graphExec(t)
	expandErrs := map[string]string{
		`select * from graph_table(g match (a)-[e]->{1,3}(b) columns (e.ew x)) gt`:                          "group variable",
		`select * from graph_table(g match (a)-[e1]->(b)-[e2]->{1,3}(c) columns (a.ID x)) gt`:               "multi-edge",
		`select * from graph_table(g match (a)-[e]->{1,3}(b) where a.name = 'a' columns (a.ID x)) gt`:       "endpoint keys only",
		`select * from graph_table(g match any shortest (a)-[e]->(b) where a.ID = 1 columns (b.name n)) gt`: "endpoint keys only",
	}
	for src, want := range expandErrs {
		st, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		_, err = ExpandStatement(x.Eng, st)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: expansion error %q lacks %q", src, err, want)
		}
	}
}

func TestGraphTableRenderFixedPoint(t *testing.T) {
	srcs := []string{
		`select * from graph_table(g match (a)-[e]->(b) columns (a.ID aid)) gt`,
		`select * from graph_table(g match (a:V)-[e:E]->{1,4}(b:V) where a.ID = 1 columns (b.ID bid)) gt`,
		`select * from graph_table(g match any shortest (a)-[e]->(b) where a.ID = 1 columns (b.ID d, path_cost() c)) gt`,
		`select * from graph_table(g match (a)<-[e]-(b)-[f]->(c) columns (a.ID x, c.ID y)) gt where x < y`,
	}
	for _, src := range srcs {
		st, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		r1, ok := StatementString(st)
		if !ok {
			t.Fatalf("StatementString failed for %q", src)
		}
		st2, err := ParseStatement(r1)
		if err != nil {
			t.Fatalf("reparse %q: %v", r1, err)
		}
		r2, _ := StatementString(st2)
		if r1 != r2 {
			t.Fatalf("render not a fixed point:\n 1: %s\n 2: %s", r1, r2)
		}
	}
}
