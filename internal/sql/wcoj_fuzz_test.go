package sql

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// wcojShapes are the cyclic-pattern templates the fuzzer instantiates over
// fuzz-derived edge relations E and R: triangle, mixed-relation triangle,
// diamond (4-cycle), 4-clique, and a triangle with a dangling tail — the
// 3–4-variable cyclic cores the chooser lowers, plus the split case.
var wcojShapes = []string{
	"select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F",
	"select * from E e1, R r2, E e3 where e1.T = r2.F and r2.T = e3.F and e3.T = e1.F",
	"select count(*) from E e1, R r2, E e3, R r4 where e1.T = r2.F and r2.T = e3.F and e3.T = r4.F and r4.T = e1.F",
	"select count(*) from E e1, E e2, E e3, E e4, E e5, E e6 where e1.F = e2.F and e2.F = e3.F and e1.T = e4.F and e4.F = e5.F and e2.T = e4.T and e4.T = e6.F and e3.T = e5.T and e5.T = e6.T",
	"select * from E e1, E e2, E e3, R r where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and r.F = e1.F",
}

// FuzzWCOJVsBinary derives two small edge relations from the fuzz input,
// instantiates a cyclic pattern, and requires the WCOJ and binary
// executions to be multiset-equal — with the counters proving which path
// each side took. Seeds cover triangle/diamond/4-clique over skewed, dense,
// self-loop, and empty relations.
func FuzzWCOJVsBinary(f *testing.F) {
	f.Add(uint8(0), []byte{0x01, 0x12, 0x20})
	f.Add(uint8(1), []byte{0x01, 0x12, 0x20, 0x33, 0x01})
	f.Add(uint8(2), []byte{0x01, 0x12, 0x23, 0x30, 0x11, 0x22})
	f.Add(uint8(3), []byte{0x01, 0x02, 0x03, 0x12, 0x13, 0x23})
	f.Add(uint8(4), []byte{0x01, 0x12, 0x20, 0x00, 0x77})
	f.Add(uint8(3), []byte{})
	f.Add(uint8(0), []byte{0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, shape uint8, data []byte) {
		if len(data) > 64 {
			return // keep the clique join bounded
		}
		q := wcojShapes[int(shape)%len(wcojShapes)]
		// Each byte is one edge: high nibble → F, low nibble → T, on an
		// 8-node id space. Even positions feed E, odd positions feed R, so
		// the two relations differ but overlap.
		eRel := relation.New(schema.Cols(value.KindInt, "F", "T"))
		rRel := relation.New(schema.Cols(value.KindInt, "F", "T"))
		for i, b := range data {
			tu := []value.Value{value.Int(int64(b >> 4 & 7)), value.Int(int64(b & 7))}
			if i%2 == 0 {
				eRel.AppendVals(tu...)
			} else {
				rRel.AppendVals(tu...)
			}
		}
		e := engine.New(engine.OracleLike())
		if _, err := e.LoadBase("E", eRel); err != nil {
			t.Fatal(err)
		}
		if _, err := e.LoadBase("R", rRel); err != nil {
			t.Fatal(err)
		}
		x := NewExec(e)
		s1, err := ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		before := e.Cnt.Snapshot()
		fast, err := x.Run(s1)
		if err != nil {
			t.Fatal(err)
		}
		mid := e.Cnt.Snapshot()
		e.DisableWCOJ = true
		s2, err := ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := x.Run(s2)
		if err != nil {
			t.Fatal(err)
		}
		after := e.Cnt.Snapshot()
		if after.WCOJProbes != mid.WCOJProbes {
			t.Fatalf("disabled run probed the WCOJ path (%d -> %d)", mid.WCOJProbes, after.WCOJProbes)
		}
		// Non-empty inputs must actually exercise the WCOJ path (empty
		// relations still lower, but may finish without probing).
		if len(data) >= 3 && mid.WCOJProbes == before.WCOJProbes {
			t.Fatalf("WCOJ path did not run on %q", q)
		}
		if !fast.Equal(slow) {
			t.Fatalf("multiset mismatch on %q: wcoj %d rows, binary %d rows\nwcoj:\n%s\nbinary:\n%s",
				q, fast.Len(), slow.Len(), sortedRows(fast), sortedRows(slow))
		}
	})
}
