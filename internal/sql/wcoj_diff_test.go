package sql

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// graphDB loads a random directed graph into E(F,T) and its node list into
// V(ID) on a fresh engine of the given profile, with statistics gathered so
// base-table access paths (CSR, analyzed-join choices) are live.
func graphDB(t *testing.T, prof engine.Profile, n, m int, seed int64) *engine.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eRel := relation.New(schema.Cols(value.KindInt, "F", "T"))
	for i := 0; i < m; i++ {
		eRel.AppendVals(value.Int(rng.Int63n(int64(n))), value.Int(rng.Int63n(int64(n))))
	}
	vRel := relation.New(schema.Cols(value.KindInt, "ID"))
	for i := 0; i < n; i++ {
		vRel.AppendVals(value.Int(int64(i)))
	}
	e := engine.New(prof)
	if _, err := e.LoadBase("E", eRel); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LoadBase("V", vRel); err != nil {
		t.Fatal(err)
	}
	return e
}

// sortedRows renders a relation as sorted tab-separated lines — the
// byte-identical comparison form (the two paths may enumerate in different
// orders; ORDER BY is not part of the queries under test).
func sortedRows(r *relation.Relation) string {
	lines := make([]string, r.Len())
	for i, tu := range r.Tuples {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// cyclicQueries is the differential corpus: every query has a cyclic
// equi-join core, several also carry tail joins, residual filters, or a
// FROM order that forces the post-WCOJ column restore.
var cyclicQueries = []struct {
	name string
	q    string
}{
	{"triangle_star", "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"},
	{"triangle_count", "select count(*) from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"},
	{"triangle_proj", "select e1.F, e2.T from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"},
	{"triangle_residual", "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and e1.F < e2.F"},
	{"diamond_count", "select count(*) from E e1, E e2, E e3, E e4 where e1.T = e2.F and e2.T = e3.F and e3.T = e4.F and e4.T = e1.F"},
	{"clique4_count", "select count(*) from E e1, E e2, E e3, E e4, E e5, E e6 where e1.F = e2.F and e2.F = e3.F and e1.T = e4.F and e4.F = e5.F and e2.T = e4.T and e4.T = e6.F and e3.T = e5.T and e5.T = e6.T"},
	{"triangle_tail", "select * from E e1, E e2, E e3, V v where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and v.ID = e1.F"},
	{"tail_before_core", "select * from V v, E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F and v.ID = e1.F"},
	{"triangle_group", "select e1.F, count(*) from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F group by e1.F"},
}

// TestWCOJDifferential runs every cyclic-pattern query through the WCOJ and
// binary paths (DisableWCOJ A/B) on all three profiles and requires
// byte-identical sorted output, with the counters proving the fast side
// actually took the WCOJ path and the baseline did not.
func TestWCOJDifferential(t *testing.T) {
	for _, prof := range engine.Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			e := graphDB(t, prof, 40, 160, 11)
			x := NewExec(e)
			for _, tc := range cyclicQueries {
				t.Run(tc.name, func(t *testing.T) {
					s, err := ParseSelect(tc.q)
					if err != nil {
						t.Fatal(err)
					}
					e.DisableWCOJ = false
					before := e.Cnt.Snapshot()
					fast, err := x.Run(s)
					if err != nil {
						t.Fatal(err)
					}
					mid := e.Cnt.Snapshot()
					if mid.WCOJProbes == before.WCOJProbes {
						t.Fatalf("WCOJ path did not run (probes %d -> %d)", before.WCOJProbes, mid.WCOJProbes)
					}
					e.DisableWCOJ = true
					s2, err := ParseSelect(tc.q)
					if err != nil {
						t.Fatal(err)
					}
					slow, err := x.Run(s2)
					if err != nil {
						t.Fatal(err)
					}
					after := e.Cnt.Snapshot()
					if after.WCOJProbes != mid.WCOJProbes {
						t.Fatalf("disabled run still probed WCOJ (%d -> %d)", mid.WCOJProbes, after.WCOJProbes)
					}
					e.DisableWCOJ = false
					if fast.Sch.String() != slow.Sch.String() {
						t.Fatalf("schema diverged:\nwcoj:   %s\nbinary: %s", fast.Sch, slow.Sch)
					}
					if got, want := sortedRows(fast), sortedRows(slow); got != want {
						t.Fatalf("output diverged (%d vs %d rows)", fast.Len(), slow.Len())
					}
				})
			}
		})
	}
}

// TestWCOJDifferentialNulls repeats the A/B on a relation containing NULL
// endpoints: value.Equal matches NULL to NULL in the engine's joins, and
// the WCOJ dictionaries must agree.
func TestWCOJDifferentialNulls(t *testing.T) {
	e := engine.New(engine.OracleLike())
	eRel := relation.New(schema.Cols(value.KindInt, "F", "T"))
	vals := []value.Value{value.Int(1), value.Int(2), value.Int(3), value.Null}
	for _, f := range vals {
		for _, to := range vals {
			eRel.AppendVals(f, to)
		}
	}
	if _, err := e.LoadBase("E", eRel); err != nil {
		t.Fatal(err)
	}
	x := NewExec(e)
	q := "select * from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"
	s, _ := ParseSelect(q)
	fast, err := x.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	e.DisableWCOJ = true
	s2, _ := ParseSelect(q)
	slow, err := x.Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sortedRows(fast), sortedRows(slow); got != want {
		t.Fatalf("NULL handling diverged (%d vs %d rows)", fast.Len(), slow.Len())
	}
	if fast.Len() == 0 {
		t.Fatal("expected NULL-cycle matches")
	}
}

// TestWCOJExplainAnalyzeLabel pins the plan label: the executed plan of a
// cyclic query must carry the multiway node with its "via wcoj" marker and
// the core scans as children, and the disabled run must not.
func TestWCOJExplainAnalyzeLabel(t *testing.T) {
	e := graphDB(t, engine.OracleLike(), 20, 60, 3)
	x := NewExec(e)
	q := "select count(*) from E e1, E e2, E e3 where e1.T = e2.F and e2.T = e3.F and e3.T = e1.F"
	s, _ := ParseSelect(q)
	_, plan, err := x.RunAnalyzed(s)
	if err != nil {
		t.Fatal(err)
	}
	report := plan.Render()
	if !strings.Contains(report, "via wcoj") {
		t.Fatalf("plan missing wcoj label:\n%s", report)
	}
	if !strings.Contains(report, "multiway generic join on") {
		t.Fatalf("plan missing multiway node:\n%s", report)
	}
	e.DisableWCOJ = true
	s2, _ := ParseSelect(q)
	_, plan, err = x.RunAnalyzed(s2)
	if err != nil {
		t.Fatal(err)
	}
	if report := plan.Render(); strings.Contains(report, "via wcoj") {
		t.Fatalf("disabled plan still shows wcoj:\n%s", report)
	}
}
