package sql

import (
	"fmt"
	"strings"

	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// compileExpr compiles an expression into a closure over the given schema.
// Uncorrelated subqueries (IN / EXISTS) are evaluated once at compile time,
// matching the engines' restriction that subqueries in the recursive step
// must not reference the recursive relation (Table 1, category D).
func (x *Exec) compileExpr(e Expr, sch schema.Schema) (ra.Expr, error) {
	switch n := e.(type) {
	case *Lit:
		return ra.ConstExpr(n.Val), nil
	case *ColRef:
		idx, err := sch.Resolve(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		return ra.ColExpr(idx), nil
	case *Unary:
		inner, err := x.compileExpr(n.X, sch)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "-":
			return func(t relation.Tuple) (value.Value, error) {
				v, err := inner(t)
				if err != nil {
					return value.Null, err
				}
				return value.Neg(v)
			}, nil
		case "not":
			return func(t relation.Tuple) (value.Value, error) {
				v, err := inner(t)
				if err != nil {
					return value.Null, err
				}
				if v.IsNull() {
					return value.Null, nil
				}
				return value.Bool(!v.AsBool()), nil
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", n.Op)
	case *Binary:
		return x.compileBinary(n, sch)
	case *FuncCall:
		return x.compileFunc(n, sch)
	case *IsNullExpr:
		inner, err := x.compileExpr(n.X, sch)
		if err != nil {
			return nil, err
		}
		neg := n.Negated
		return func(t relation.Tuple) (value.Value, error) {
			v, err := inner(t)
			if err != nil {
				return value.Null, err
			}
			return value.Bool(v.IsNull() != neg), nil
		}, nil
	case *InExpr:
		return x.compileIn(n, sch)
	case *ExistsExpr:
		sub, err := x.Run(n.Sub)
		if err != nil {
			return nil, err
		}
		res := value.Bool((sub.Len() > 0) != n.Negated)
		return ra.ConstExpr(res), nil
	}
	return nil, fmt.Errorf("sql: cannot compile %T", e)
}

func (x *Exec) compileBinary(n *Binary, sch schema.Schema) (ra.Expr, error) {
	l, err := x.compileExpr(n.L, sch)
	if err != nil {
		return nil, err
	}
	r, err := x.compileExpr(n.R, sch)
	if err != nil {
		return nil, err
	}
	pair := func(t relation.Tuple) (value.Value, value.Value, error) {
		lv, err := l(t)
		if err != nil {
			return value.Null, value.Null, err
		}
		rv, err := r(t)
		return lv, rv, err
	}
	switch n.Op {
	case "+":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			return value.Add(lv, rv)
		}, nil
	case "-":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			return value.Sub(lv, rv)
		}, nil
	case "*":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			return value.Mul(lv, rv)
		}, nil
	case "/":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			return value.Div(lv, rv)
		}, nil
	case "%":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			return value.Mod(lv, rv)
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := n.Op
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil // three-valued logic
			}
			c := lv.Compare(rv)
			var ok bool
			switch op {
			case "=":
				ok = c == 0
			case "<>":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			}
			return value.Bool(ok), nil
		}, nil
	case "and":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			// SQL three-valued AND.
			if !lv.IsNull() && !lv.AsBool() || !rv.IsNull() && !rv.AsBool() {
				return value.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.Bool(true), nil
		}, nil
	case "or":
		return func(t relation.Tuple) (value.Value, error) {
			lv, rv, err := pair(t)
			if err != nil {
				return value.Null, err
			}
			if !lv.IsNull() && lv.AsBool() || !rv.IsNull() && rv.AsBool() {
				return value.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.Bool(false), nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", n.Op)
}

func (x *Exec) compileFunc(n *FuncCall, sch schema.Schema) (ra.Expr, error) {
	if n.IsAggregate() {
		return nil, fmt.Errorf("sql: aggregate %s outside GROUP BY context", n.Name)
	}
	args := make([]ra.Expr, len(n.Args))
	for i, a := range n.Args {
		ex, err := x.compileExpr(a, sch)
		if err != nil {
			return nil, err
		}
		args[i] = ex
	}
	evalArgs := func(t relation.Tuple) ([]value.Value, error) {
		vs := make([]value.Value, len(args))
		for i, a := range args {
			v, err := a(t)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		return vs, nil
	}
	name := strings.ToLower(n.Name)
	arity := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("sql: %s takes %d argument(s), got %d", name, want, len(args))
		}
		return nil
	}
	switch name {
	case "sqrt":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (value.Value, error) {
			vs, err := evalArgs(t)
			if err != nil {
				return value.Null, err
			}
			return value.Sqrt(vs[0]), nil
		}, nil
	case "abs":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (value.Value, error) {
			vs, err := evalArgs(t)
			if err != nil {
				return value.Null, err
			}
			return value.Abs(vs[0]), nil
		}, nil
	case "coalesce":
		return func(t relation.Tuple) (value.Value, error) {
			vs, err := evalArgs(t)
			if err != nil {
				return value.Null, err
			}
			return value.Coalesce(vs...), nil
		}, nil
	case "least":
		return func(t relation.Tuple) (value.Value, error) {
			vs, err := evalArgs(t)
			if err != nil {
				return value.Null, err
			}
			out := value.Null
			for _, v := range vs {
				out = value.Min(out, v)
			}
			return out, nil
		}, nil
	case "greatest":
		return func(t relation.Tuple) (value.Value, error) {
			vs, err := evalArgs(t)
			if err != nil {
				return value.Null, err
			}
			out := value.Null
			for _, v := range vs {
				out = value.Max(out, v)
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", name)
}

func (x *Exec) compileIn(n *InExpr, sch schema.Schema) (ra.Expr, error) {
	target, err := x.compileExpr(n.X, sch)
	if err != nil {
		return nil, err
	}
	var set map[uint64][]value.Value
	hasNull := false
	addVal := func(v value.Value) {
		if v.IsNull() {
			hasNull = true
			return
		}
		h := v.Hash()
		set[h] = append(set[h], v)
	}
	set = map[uint64][]value.Value{}
	if n.Sub != nil {
		sub, err := x.Run(n.Sub)
		if err != nil {
			return nil, err
		}
		if sub.Sch.Arity() != 1 {
			return nil, fmt.Errorf("sql: IN subquery must return one column, got %d", sub.Sch.Arity())
		}
		for _, t := range sub.Tuples {
			addVal(t[0])
		}
	} else {
		for _, le := range n.List {
			lit, ok := le.(*Lit)
			if !ok {
				return nil, fmt.Errorf("sql: IN list supports literals only")
			}
			addVal(lit.Val)
		}
	}
	neg := n.Negated
	return func(t relation.Tuple) (value.Value, error) {
		v, err := target(t)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		found := false
		for _, cand := range set[v.Hash()] {
			if cand.Equal(v) {
				found = true
				break
			}
		}
		if found {
			return value.Bool(!neg), nil
		}
		// Three-valued logic: NOT IN over a set containing NULL is UNKNOWN.
		if hasNull {
			return value.Null, nil
		}
		return value.Bool(neg), nil
	}, nil
}

// compilePred wraps compileExpr as a boolean predicate; UNKNOWN (NULL)
// filters the row out, as SQL WHERE does.
func (x *Exec) compilePred(e Expr, sch schema.Schema) (ra.Pred, error) {
	ex, err := x.compileExpr(e, sch)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) (bool, error) {
		v, err := ex(t)
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.AsBool(), nil
	}, nil
}
