package sql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// ExprString renders an expression back to SQL-ish text (used by EXPLAIN
// and error messages).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ColRef:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *Lit:
		if x.Val.K == value.KindString {
			return "'" + x.Val.S + "'"
		}
		return x.Val.String()
	case *Unary:
		if x.Op == "not" {
			return "not " + ExprString(x.X)
		}
		return x.Op + ExprString(x.X)
	case *Binary:
		return "(" + ExprString(x.L) + " " + x.Op + " " + ExprString(x.R) + ")"
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *InExpr:
		op := "in"
		if x.Negated {
			op = "not in"
		}
		if x.Sub != nil {
			return ExprString(x.X) + " " + op + " (subquery)"
		}
		items := make([]string, len(x.List))
		for i, a := range x.List {
			items[i] = ExprString(a)
		}
		return ExprString(x.X) + " " + op + " (" + strings.Join(items, ", ") + ")"
	case *ExistsExpr:
		if x.Negated {
			return "not exists (subquery)"
		}
		return "exists (subquery)"
	case *IsNullExpr:
		if x.Negated {
			return ExprString(x.X) + " is not null"
		}
		return ExprString(x.X) + " is null"
	}
	return fmt.Sprintf("%T", e)
}

// ExplainSelect renders the physical plan the executor would choose for a
// SELECT, without running it: scans with row counts and statistics state,
// the join order with the per-profile physical algorithm, residual
// filters, aggregation, and the final decorations.
func (x *Exec) ExplainSelect(s *SelectStmt) (string, error) {
	var b strings.Builder
	if err := x.explainOne(&b, s, 0); err != nil {
		return "", err
	}
	for cur := s; cur.Next != nil; cur = cur.Next {
		fmt.Fprintf(&b, "%s\n", cur.SetOp)
		if err := x.explainOne(&b, cur.Next, 0); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (x *Exec) explainOne(b *strings.Builder, s *SelectStmt, depth int) error {
	line := func(format string, args ...interface{}) {
		indent(b, depth)
		fmt.Fprintf(b, format+"\n", args...)
	}
	if s.Limit >= 0 {
		line("limit %d", s.Limit)
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = ExprString(o.Expr)
			if o.Desc {
				parts[i] += " desc"
			}
		}
		line("sort by %s", strings.Join(parts, ", "))
	}
	if s.Distinct {
		line("distinct")
	}
	if len(s.GroupBy) > 0 || s.HasAggregates() {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = ExprString(g)
		}
		agg := "hash aggregate"
		if len(keys) > 0 {
			line("%s on (%s)", agg, strings.Join(keys, ", "))
		} else {
			line("%s (single group)", agg)
		}
		if s.Having != nil {
			line("  having %s", ExprString(s.Having))
		}
	}
	// Join tree: first FROM item, then each subsequent item with the
	// chosen algorithm, mirroring runOne's left-deep fold.
	if len(s.From) == 0 {
		line("values (one row)")
		return nil
	}
	allAnalyzed := true
	type src struct {
		desc     string
		analyzed bool
	}
	srcs := make([]src, len(s.From))
	for i, f := range s.From {
		d, analyzed, err := x.describeRef(f, depth+1)
		if err != nil {
			return err
		}
		srcs[i] = src{desc: d, analyzed: analyzed}
		allAnalyzed = allAnalyzed && analyzed
	}
	var conjuncts []Expr
	if s.Where != nil {
		conjuncts = splitAnd(s.Where)
	}
	if len(srcs) == 1 {
		if s.Where != nil {
			line("filter %s", ExprString(s.Where))
		}
		b.WriteString(srcs[0].desc)
		return nil
	}
	// Which conjuncts would drive equi-joins vs become residual filters.
	used := make([]bool, len(conjuncts))
	joinSteps := len(srcs) - 1
	// Mirror runOne's WCOJ lowering: a cyclic core collapses into one
	// multiway join line, leaving only the tail sources as binary steps.
	// Resolvable schemas are required, so the chooser runs only when every
	// FROM item is a plain named reference.
	if !x.Eng.DisableWCOJ {
		if schemas, ok := x.planSchemas(s.From); ok {
			if wp := chooseWCOJ(schemas, conjuncts, used); wp != nil {
				for _, ci := range wp.Conjuncts {
					used[ci] = true
				}
				line("multiway generic join on %s via wcoj", strings.Join(wp.Keys, " and "))
				joinSteps = len(srcs) - len(wp.Core)
			}
		}
	}
	for i := 0; i < joinSteps; i++ {
		var keys []string
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			if bin, ok := c.(*Binary); ok && bin.Op == "=" {
				if _, lok := bin.L.(*ColRef); lok {
					if _, rok := bin.R.(*ColRef); rok {
						keys = append(keys, ExprString(c))
						used[ci] = true
					}
				}
			}
		}
		algo := x.algoFor(allAnalyzed)
		if len(keys) > 0 {
			line("%s join on %s", algo, strings.Join(keys, " and "))
		} else {
			line("nested-loop product")
		}
	}
	var residual []string
	for ci, c := range conjuncts {
		if !used[ci] {
			residual = append(residual, ExprString(c))
		}
	}
	if len(residual) > 0 {
		line("filter %s", strings.Join(residual, " and "))
	}
	for _, sc := range srcs {
		b.WriteString(sc.desc)
	}
	return nil
}

func (x *Exec) describeRef(t *TableRef, depth int) (string, bool, error) {
	var b strings.Builder
	switch {
	case t.IsJoin():
		kind := map[JoinKind]string{JoinInner: "inner", JoinLeftOuter: "left outer", JoinFullOuter: "full outer"}[t.Kind]
		indent(&b, depth)
		fmt.Fprintf(&b, "%s join on %s\n", kind, ExprString(t.On))
		l, _, err := x.describeRef(t.Join, depth+1)
		if err != nil {
			return "", false, err
		}
		r, _, err := x.describeRef(t.Right, depth+1)
		if err != nil {
			return "", false, err
		}
		b.WriteString(l)
		b.WriteString(r)
		return b.String(), false, nil
	case t.Sub != nil:
		indent(&b, depth)
		fmt.Fprintf(&b, "subquery %s:\n", t.DisplayName())
		if err := x.explainOne(&b, t.Sub, depth+1); err != nil {
			return "", false, err
		}
		return b.String(), false, nil
	default:
		if r, ok := x.Override[t.Name]; ok {
			indent(&b, depth)
			fmt.Fprintf(&b, "scan %s (working table, %d rows, no statistics)\n", t.DisplayName(), r.Len())
			return b.String(), false, nil
		}
		tab, err := x.Eng.Cat.Get(t.Name)
		if err != nil {
			return "", false, err
		}
		analyzed := tab.Analyzed()
		stats := "no statistics"
		if analyzed {
			stats = "analyzed"
		}
		kind := "base"
		if tab.Temp {
			kind = "temp"
		}
		indent(&b, depth)
		fmt.Fprintf(&b, "scan %s (%s table, %d rows, %s)\n", t.DisplayName(), kind, tab.Rows(), stats)
		return b.String(), analyzed, nil
	}
}
